//===--- bench_ablation.cpp - Ablations of the design choices ------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the design choices DESIGN.md
/// calls out:
///
///  - the cost of one multi-grain acquireAll/releaseAll round trip as the
///    lock set grows (the paper's "overhead in the multi-grain locking
///    protocol" that makes fine locks a loss on genome);
///  - mode acquire/release on a single node per mode;
///  - TL2 read/write instrumentation per access;
///  - lock inference cost as k grows (the Table 1 column pair);
///  - the effect of the paper's summary optimization (write-region
///    filtering) is visible as near-flat inference cost over call-heavy
///    programs.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "runtime/LockRuntime.h"
#include "stm/Tl2.h"
#include "workloads/ToyPrograms.h"

#include <benchmark/benchmark.h>

using namespace lockin;

static void BM_LockNodeAcquireRelease(benchmark::State &State) {
  rt::LockNode Node;
  rt::Mode M = static_cast<rt::Mode>(State.range(0));
  for (auto _ : State) {
    Node.acquire(M);
    Node.release(M);
  }
  State.SetLabel(rt::modeName(M));
}
BENCHMARK(BM_LockNodeAcquireRelease)->DenseRange(0, 4);

static void BM_AcquireAllFineLocks(benchmark::State &State) {
  rt::LockRuntime RT(8);
  rt::ThreadLockContext Ctx(RT);
  unsigned NumLocks = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    for (unsigned I = 0; I < NumLocks; ++I)
      Ctx.toAcquire(rt::LockDescriptor::fine(I % 8, 100 + I, I % 2 == 0));
    Ctx.acquireAll();
    Ctx.releaseAll();
  }
  State.SetItemsProcessed(State.iterations() * NumLocks);
}
BENCHMARK(BM_AcquireAllFineLocks)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

static void BM_AcquireAllCoarse(benchmark::State &State) {
  rt::LockRuntime RT(8);
  rt::ThreadLockContext Ctx(RT);
  for (auto _ : State) {
    Ctx.toAcquire(rt::LockDescriptor::coarse(3, true));
    Ctx.acquireAll();
    Ctx.releaseAll();
  }
}
BENCHMARK(BM_AcquireAllCoarse);

static void BM_GlobalLockSection(benchmark::State &State) {
  rt::LockRuntime RT(1);
  rt::ThreadLockContext Ctx(RT);
  for (auto _ : State) {
    Ctx.toAcquire(rt::LockDescriptor::global());
    Ctx.acquireAll();
    Ctx.releaseAll();
  }
}
BENCHMARK(BM_GlobalLockSection);

static void BM_StmReadWrite(benchmark::State &State) {
  stm::Stm S;
  int64_t Cells[64] = {};
  unsigned Accesses = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    S.atomically([&](stm::Transaction &Tx) {
      for (unsigned I = 0; I < Accesses; ++I) {
        int64_t V = Tx.read(&Cells[I % 64]);
        Tx.write(&Cells[I % 64], V + 1);
      }
    });
  }
  State.SetItemsProcessed(State.iterations() * Accesses);
}
BENCHMARK(BM_StmReadWrite)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

static void BM_InferenceByK(benchmark::State &State) {
  const std::string &Source =
      workloads::toyProgram("hashtable-2").Source;
  unsigned K = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    CompileOptions Options;
    Options.K = K;
    auto C = compile(Source, Options);
    benchmark::DoNotOptimize(C->ok());
  }
}
BENCHMARK(BM_InferenceByK)->Arg(0)->Arg(3)->Arg(6)->Arg(9);

static void BM_InferenceCallHeavy(benchmark::State &State) {
  // Call-deep synthetic program: exercises summaries + the write-region
  // pass-through filter.
  std::string Source = workloads::generateSyntheticSpec(
      static_cast<unsigned>(State.range(0)), 99);
  for (auto _ : State) {
    CompileOptions Options;
    Options.K = 3;
    auto C = compile(Source, Options);
    benchmark::DoNotOptimize(C->ok());
  }
  State.SetLabel(std::to_string(State.range(0)) + " KLoC");
}
BENCHMARK(BM_InferenceCallHeavy)->Arg(1)->Arg(2)->Unit(
    benchmark::kMillisecond);

BENCHMARK_MAIN();
