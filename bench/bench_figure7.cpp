//===--- bench_figure7.cpp - Figure 7: lock distribution over k ----------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 7: for each k in 0..9, the combined number of
/// inferred locks over all atomic sections of every benchmark program,
/// split into the four categories fine/coarse × ro/rw.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "workloads/ToyPrograms.h"

#include <cstdio>

using namespace lockin;
using namespace lockin::workloads;

int main() {
  std::printf("Figure 7: combined lock census over all benchmark "
              "programs\n\n");
  std::printf("%4s %10s %10s %10s %10s %8s\n", "k", "fine-ro", "fine-rw",
              "coarse-ro", "coarse-rw", "total");
  for (unsigned K = 0; K <= 9; ++K) {
    LockCensus Total;
    for (const ToyProgram &P : concurrentToyPrograms()) {
      CompileOptions Options;
      Options.K = K;
      std::unique_ptr<Compilation> C = compile(P.Source, Options);
      if (!C->ok()) {
        std::fprintf(stderr, "internal error compiling %s:\n%s\n",
                     P.Name.c_str(), C->diagnostics().str().c_str());
        return 1;
      }
      Total += C->inference().census();
    }
    std::printf("%4u %10u %10u %10u %10u %8u\n", K, Total.FineRO,
                Total.FineRW, Total.CoarseRO, Total.CoarseRW,
                Total.total());
  }
  std::printf("\nExpected shape (paper): k=0 is all coarse; small k trades"
              " coarse locks\nfor several fine locks; larger k removes "
              "locks on section-local allocations;\nno benefit beyond "
              "k≈6.\n");
  return 0;
}
