//===--- bench_figure8.cpp - Figure 8: scalability 1..8 threads ----------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 8: simulated execution time of rbtree, hashtable-2,
/// TH, genome, and kmeans at 1, 2, 4, and 8 threads under the four
/// configurations. Each thread performs a fixed number of operations (as
/// in the paper's harness), so flat lines mean perfect scaling is
/// impossible; falling per-op contention shows as sub-linear growth.
///
//===----------------------------------------------------------------------===//

#include "workloads/SimWorkloads.h"

#include <cstdio>

using namespace lockin::workloads;
using namespace lockin::workloads::sim;

namespace {

const unsigned ThreadCounts[] = {1, 2, 4, 8};

void printSeries(const char *Name,
                 const std::function<SimOutcome(LockConfig, unsigned)> &Run) {
  std::printf("%s (millions of cycles)\n", Name);
  std::printf("  %8s %10s %10s %10s %10s\n", "threads", "Global",
              "Coarse", "Fine+Crs", "STM");
  for (unsigned T : ThreadCounts) {
    std::printf("  %8u %10.2f %10.2f %10.2f %10.2f\n", T,
                Run(LockConfig::Global, T).Makespan / 1e6,
                Run(LockConfig::Coarse, T).Makespan / 1e6,
                Run(LockConfig::Fine, T).Makespan / 1e6,
                Run(LockConfig::Stm, T).Makespan / 1e6);
  }
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("Figure 8: simulated scalability (per-thread work fixed)\n\n");

  for (MicroKind K : {MicroKind::RbTree, MicroKind::Hashtable2,
                      MicroKind::TH}) {
    for (bool High : {true, false}) {
      std::string Name = std::string(microKindName(K)) +
                         (High ? "-high" : "-low");
      printSeries(Name.c_str(), [&](LockConfig C, unsigned T) {
        return runMicroSim(K, C, T, High);
      });
    }
  }
  for (StampKind K : {StampKind::Genome, StampKind::Kmeans}) {
    printSeries(stampKindName(K), [&](LockConfig C, unsigned T) {
      return runStampSim(K, C, T);
    });
  }

  std::printf("Expected shapes (paper): Global grows linearly with "
              "threads (full serialization);\nCoarse flattens on "
              "read-heavy (-low) workloads; Fine additionally flattens\n"
              "hashtable-2-high; STM stays nearly flat except where "
              "aborts bite (genome, kmeans).\n");
  return 0;
}
