//===--- bench_mega.cpp - Megaprogram interning/dedup benchmark ----------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the interned-lock-path representation buys on
/// megaprograms. Generates the fuzzer's `mega` family (a layered call
/// DAG over global hubs with one atomic section per function) at 1e5
/// and 1e6 source lines and runs the full analysis in three
/// configurations, each in its own subprocess so peak RSS is honest:
///
///   baseline — front end only (parse → points-to), no lock inference;
///              subtracted from the other two so the ratios measure the
///              analysis-attributable cost, not the shared AST/IR.
///   legacy   — InternSharing=false, DedupSummaries=false: one node per
///              lock construction, deep hashing and equality, one
///              LockSet copy per published summary (the pre-interner
///              representation; the toggle lives only in
///              InferenceOptions and this bench).
///   interned — the default configuration.
///
/// Emits BENCH_mega.json: per size, each configuration's analysis wall
/// time, peak RSS (VmHWM), interner hit rate and dedup counters, plus
/// the legacy/interned ratios the acceptance gate reads. `--quick` runs
/// the 1e5-line size only (the CI mega-smoke step).
///
/// Usage: bench_mega [--quick] [--out PATH]
///        bench_mega --child CONFIG --lines N   (internal)
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "fuzz/Generator.h"
#include "infer/Inference.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "pointsto/Steensgaard.h"
#include "support/Diagnostics.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lockin;

namespace {

/// Peak resident set (VmHWM) of this process in KiB, from
/// /proc/self/status; 0 if unavailable.
uint64_t peakRssKb() {
  std::ifstream In("/proc/self/status");
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("VmHWM:", 0) != 0)
      continue;
    uint64_t Kb = 0;
    std::sscanf(Line.c_str(), "VmHWM: %llu",
                reinterpret_cast<unsigned long long *>(&Kb));
    return Kb;
  }
  return 0;
}

struct ChildResult {
  bool Ok = false;
  uint64_t Lines = 0;
  uint64_t Sections = 0;
  double AnalyzeSeconds = 0;
  double TotalSeconds = 0;
  uint64_t PeakRssKb = 0;
  uint64_t InternerNodes = 0;
  uint64_t InternerHits = 0;
  uint64_t Deduped = 0;
  uint64_t ArenaBytes = 0;
};

/// Child mode: one configuration at one size, results as key=value
/// lines on stdout (the parent parses them; errors go to stderr).
int runChild(const std::string &Config, unsigned Lines) {
  fuzz::GenOptions Gen;
  Gen.F = fuzz::Family::Mega;
  Gen.Seed = 42;
  Gen.MegaLines = Lines;
  std::string Source = fuzz::generateProgram(Gen);

  auto T0 = std::chrono::steady_clock::now();
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  auto Ast = P.parseProgram();
  if (!Ast || Diags.hasErrors() || !runSema(*Ast, Diags)) {
    std::fprintf(stderr, "bench_mega: generated program failed sema\n");
    return 1;
  }
  auto Module = lowerProgram(*Ast, Diags);
  if (!Module || Diags.hasErrors()) {
    std::fprintf(stderr, "bench_mega: generated program failed lowering\n");
    return 1;
  }
  analysis::CallGraph CG(*Module);
  PointsToAnalysis PT(*Module);

  double AnalyzeSeconds = 0;
  uint64_t Sections = 0;
  InferenceStats Stats;
  if (Config != "baseline") {
    InferenceOptions Opts;
    Opts.Jobs = 1;
    // Megaprograms are where the higher-precision k settings matter, and
    // longer paths are exactly what the representation change targets;
    // both configurations analyze at the same k.
    Opts.K = 6;
    Opts.InternSharing = Config == "interned";
    Opts.DedupSummaries = Config == "interned";
    LockInference Inference(*Module, PT, CG, Opts);
    auto A0 = std::chrono::steady_clock::now();
    InferenceResult Result = Inference.run();
    AnalyzeSeconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - A0)
                         .count();
    Sections = Result.sections().size();
    Stats = Inference.stats();
  }
  double TotalSeconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - T0)
                            .count();

  size_t SrcLines = 0;
  for (char C : Source)
    SrcLines += C == '\n';
  std::printf("ok=1\n");
  std::printf("lines=%zu\n", SrcLines);
  std::printf("sections=%llu\n", static_cast<unsigned long long>(Sections));
  std::printf("analyze_seconds=%.6f\n", AnalyzeSeconds);
  std::printf("total_seconds=%.6f\n", TotalSeconds);
  std::printf("peak_rss_kb=%llu\n",
              static_cast<unsigned long long>(peakRssKb()));
  std::printf("interner_nodes=%llu\n",
              static_cast<unsigned long long>(Stats.InternerNodes));
  std::printf("interner_hits=%llu\n",
              static_cast<unsigned long long>(Stats.InternerHits));
  std::printf("summaries_deduped=%llu\n",
              static_cast<unsigned long long>(Stats.Summaries.Deduped));
  std::printf("arena_bytes=%llu\n",
              static_cast<unsigned long long>(Stats.ArenaBytes));
  return 0;
}

bool runConfig(const std::string &Config, unsigned Lines, ChildResult &Out) {
  // popen's shell would resolve /proc/self/exe to itself; resolve the
  // real binary path here instead.
  char Exe[4096];
  ssize_t N = readlink("/proc/self/exe", Exe, sizeof(Exe) - 1);
  if (N <= 0)
    return false;
  Exe[N] = '\0';
  std::string Cmd = std::string("'") + Exe + "' --child " + Config +
                    " --lines " + std::to_string(Lines);
  FILE *Pipe = popen(Cmd.c_str(), "r");
  if (!Pipe)
    return false;
  char Line[256];
  while (std::fgets(Line, sizeof(Line), Pipe)) {
    unsigned long long V = 0;
    double D = 0;
    if (std::sscanf(Line, "ok=%llu", &V) == 1)
      Out.Ok = V != 0;
    else if (std::sscanf(Line, "lines=%llu", &V) == 1)
      Out.Lines = V;
    else if (std::sscanf(Line, "sections=%llu", &V) == 1)
      Out.Sections = V;
    else if (std::sscanf(Line, "analyze_seconds=%lf", &D) == 1)
      Out.AnalyzeSeconds = D;
    else if (std::sscanf(Line, "total_seconds=%lf", &D) == 1)
      Out.TotalSeconds = D;
    else if (std::sscanf(Line, "peak_rss_kb=%llu", &V) == 1)
      Out.PeakRssKb = V;
    else if (std::sscanf(Line, "interner_nodes=%llu", &V) == 1)
      Out.InternerNodes = V;
    else if (std::sscanf(Line, "interner_hits=%llu", &V) == 1)
      Out.InternerHits = V;
    else if (std::sscanf(Line, "summaries_deduped=%llu", &V) == 1)
      Out.Deduped = V;
    else if (std::sscanf(Line, "arena_bytes=%llu", &V) == 1)
      Out.ArenaBytes = V;
  }
  int Status = pclose(Pipe);
  return Out.Ok && Status == 0;
}

void emitConfig(std::ostream &O, const char *Name, const ChildResult &R,
                const ChildResult &Baseline) {
  double OverKb = R.PeakRssKb > Baseline.PeakRssKb
                      ? static_cast<double>(R.PeakRssKb - Baseline.PeakRssKb)
                      : 0;
  O << "    \"" << Name << "\": {\n";
  O << "      \"sections\": " << R.Sections << ",\n";
  O << "      \"analyze_seconds\": " << R.AnalyzeSeconds << ",\n";
  O << "      \"total_seconds\": " << R.TotalSeconds << ",\n";
  O << "      \"peak_rss_kb\": " << R.PeakRssKb << ",\n";
  O << "      \"analysis_rss_kb\": " << OverKb << ",\n";
  O << "      \"interner_nodes\": " << R.InternerNodes << ",\n";
  O << "      \"interner_hits\": " << R.InternerHits << ",\n";
  O << "      \"summaries_deduped\": " << R.Deduped << ",\n";
  O << "      \"arena_bytes\": " << R.ArenaBytes << "\n";
  O << "    }";
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_mega.json";
  std::string ChildConfig;
  unsigned ChildLines = 0;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--child") == 0 && I + 1 < Argc) {
      ChildConfig = Argv[++I];
    } else if (std::strcmp(Argv[I], "--lines") == 0 && I + 1 < Argc) {
      ChildLines = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: bench_mega [--quick] [--out PATH]\n");
      return 2;
    }
  }
  if (!ChildConfig.empty())
    return runChild(ChildConfig, ChildLines);

  std::vector<unsigned> Sizes = Quick ? std::vector<unsigned>{100000}
                                      : std::vector<unsigned>{100000, 1000000};
  std::ostringstream O;
  O << "{\n  \"bench\": \"mega\",\n  \"quick\": " << (Quick ? "true" : "false")
    << ",\n  \"sizes\": [\n";
  bool FirstSize = true;
  bool AllOk = true;
  for (unsigned Lines : Sizes) {
    std::printf("bench_mega: %u lines...\n", Lines);
    ChildResult Baseline, Legacy, Interned;
    if (!runConfig("baseline", Lines, Baseline) ||
        !runConfig("legacy", Lines, Legacy) ||
        !runConfig("interned", Lines, Interned)) {
      std::fprintf(stderr, "bench_mega: child failed at %u lines\n", Lines);
      AllOk = false;
      break;
    }
    double Speedup = Interned.AnalyzeSeconds > 0
                         ? Legacy.AnalyzeSeconds / Interned.AnalyzeSeconds
                         : 0;
    double LegacyOver =
        static_cast<double>(Legacy.PeakRssKb > Baseline.PeakRssKb
                                ? Legacy.PeakRssKb - Baseline.PeakRssKb
                                : 0);
    double InternedOver =
        static_cast<double>(Interned.PeakRssKb > Baseline.PeakRssKb
                                ? Interned.PeakRssKb - Baseline.PeakRssKb
                                : 1);
    double RssRatio = InternedOver > 0 ? LegacyOver / InternedOver : 0;
    double HitRate =
        Interned.InternerNodes + Interned.InternerHits > 0
            ? static_cast<double>(Interned.InternerHits) /
                  static_cast<double>(Interned.InternerNodes +
                                      Interned.InternerHits)
            : 0;
    std::printf("  legacy:   %7.2fs analyze, %8llu KiB peak\n",
                Legacy.AnalyzeSeconds,
                static_cast<unsigned long long>(Legacy.PeakRssKb));
    std::printf("  interned: %7.2fs analyze, %8llu KiB peak "
                "(speedup %.2fx, rss ratio %.2fx, hit rate %.3f, "
                "deduped %llu)\n",
                Interned.AnalyzeSeconds,
                static_cast<unsigned long long>(Interned.PeakRssKb), Speedup,
                RssRatio, HitRate,
                static_cast<unsigned long long>(Interned.Deduped));

    if (!FirstSize)
      O << ",\n";
    FirstSize = false;
    O << "    {\n      \"lines\": " << Baseline.Lines << ",\n";
    emitConfig(O, "baseline", Baseline, Baseline);
    O << ",\n";
    emitConfig(O, "legacy", Legacy, Baseline);
    O << ",\n";
    emitConfig(O, "interned", Interned, Baseline);
    O << ",\n      \"analyze_speedup\": " << Speedup
      << ",\n      \"analysis_rss_ratio\": " << RssRatio
      << ",\n      \"interner_hit_rate\": " << HitRate << "\n    }";
  }
  O << "\n  ]\n}\n";

  if (!AllOk)
    return 1;
  std::ofstream Out(OutPath);
  Out << O.str();
  std::printf("bench_mega: wrote %s\n", OutPath.c_str());
  return 0;
}
