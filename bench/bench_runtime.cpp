//===--- bench_runtime.cpp - Lock runtime microbenchmark -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the §5 runtime itself, independent of any workload data
/// structure: raw LockNode acquire/release cycles (the fast path the
/// atomic-word rewrite targets) and full acquireAll/releaseAll sections
/// across thread counts and access mixes. Emits machine-readable JSON
/// (default `BENCH_runtime.json`) so the performance trajectory of the
/// runtime is tracked from PR to PR.
///
/// Scenarios:
///   uncontended_node_{S,X}  one thread, one LockNode, acquire+release
///   uncontended_section     one thread, one fine rw lock per section
///   read_mostly             90% fine ro / 10% fine rw, 256 addresses
///   write_heavy             30% fine ro / 70% fine rw, 256 addresses
///   mixed_grain             60% fine, 30% coarse ro, 10% coarse rw
///
/// Each multi-threaded scenario runs at 1, 4, and 16 threads and reports
/// throughput (sections/s) plus p50/p99 per-section latency.
///
//===----------------------------------------------------------------------===//

#include "obs/LockProfiler.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "runtime/LockRuntime.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lockin;
using namespace lockin::rt;

namespace {

using Clock = std::chrono::steady_clock;

struct Result {
  std::string Scenario;
  unsigned Threads = 1;
  uint64_t Ops = 0;
  double ThroughputOpsPerSec = 0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
};

uint64_t percentile(std::vector<uint64_t> &Samples, double P) {
  if (Samples.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Samples.size() - 1));
  std::nth_element(Samples.begin(), Samples.begin() + Idx, Samples.end());
  return Samples[Idx];
}

/// Raw single-node acquire/release pairs: the uncontended fast path.
Result benchUncontendedNode(Mode M, const char *Name, uint64_t Ops) {
  LockNode Node;
  // Warm up.
  for (unsigned I = 0; I < 1000; ++I) {
    Node.acquire(M);
    Node.release(M);
  }
  auto Start = Clock::now();
  for (uint64_t I = 0; I < Ops; ++I) {
    Node.acquire(M);
    Node.release(M);
  }
  auto End = Clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();
  Result R;
  R.Scenario = Name;
  R.Ops = Ops;
  R.ThroughputOpsPerSec = static_cast<double>(Ops) / Secs;
  uint64_t AvgNs = static_cast<uint64_t>(Secs * 1e9 / static_cast<double>(Ops));
  R.P50Ns = R.P99Ns = AvgNs; // per-pair timing would dominate; report mean
  return R;
}

/// One full section (toAcquire + acquireAll + releaseAll) per op.
/// Mix: percentage split between fine ro / fine rw / coarse ro / coarse rw.
struct Mix {
  unsigned FineRo = 0, FineRw = 0, CoarseRo = 0, CoarseRw = 0; // sums to 100
};

Result benchSections(const char *Name, unsigned NumThreads, Mix M,
                     uint64_t OpsPerThread, unsigned NumAddrs = 256,
                     bool ObsOn = false) {
  constexpr unsigned NumRegions = 4;
  constexpr uint64_t LatSampleEvery = 16; // power of two
  // Inject a local registry + profiler so both the obs-off and obs-on
  // variants run the same code path (dormant-profiler check included)
  // and the measurement doesn't pollute the process-global registry.
  obs::MetricsRegistry Reg;
  obs::LockProfiler Prof;
  if (ObsOn)
    Prof.setEnabled(true);
  LockRuntime RT(NumRegions, &Reg, &Prof);
  std::vector<std::vector<uint64_t>> Lat(NumThreads);

  // Pregenerate each thread's descriptor stream so the timed loop
  // measures the runtime, not the RNG.
  std::vector<std::vector<LockDescriptor>> Streams(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Rng R(0xbead + T);
    std::vector<LockDescriptor> &S = Streams[T];
    S.reserve(OpsPerThread);
    for (uint64_t I = 0; I < OpsPerThread; ++I) {
      uint64_t Addr = 0x1000 + R.below(NumAddrs) * 8;
      uint32_t Region = static_cast<uint32_t>(Addr / 8 % NumRegions);
      unsigned Roll = static_cast<unsigned>(R.below(100));
      if (Roll < M.FineRo)
        S.push_back(LockDescriptor::fine(Region, Addr, false));
      else if (Roll < M.FineRo + M.FineRw)
        S.push_back(LockDescriptor::fine(Region, Addr, true));
      else if (Roll < M.FineRo + M.FineRw + M.CoarseRo)
        S.push_back(LockDescriptor::coarse(Region, false));
      else
        S.push_back(LockDescriptor::coarse(Region, true));
    }
  }

  std::vector<std::thread> Threads;
  auto Start = Clock::now();
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      ThreadLockContext Ctx(RT);
      const std::vector<LockDescriptor> &S = Streams[T];
      std::vector<uint64_t> &MyLat = Lat[T];
      MyLat.reserve(OpsPerThread / LatSampleEvery + 1);
      for (uint64_t I = 0; I < OpsPerThread; ++I) {
        // Sample latency sparsely so the clock reads don't dominate the
        // throughput measurement (a clock_gettime pair costs more than
        // an uncontended section).
        bool Sample = (I & (LatSampleEvery - 1)) == 0;
        Clock::time_point T0;
        if (Sample)
          T0 = Clock::now();
        Ctx.toAcquire(S[I]);
        Ctx.acquireAll();
        Ctx.releaseAll();
        if (Sample)
          MyLat.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - T0)
                  .count()));
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  auto End = Clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();

  std::vector<uint64_t> All;
  All.reserve(NumThreads * (OpsPerThread / LatSampleEvery + 1));
  for (std::vector<uint64_t> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  Result R;
  R.Scenario = Name;
  R.Threads = NumThreads;
  R.Ops = static_cast<uint64_t>(NumThreads) * OpsPerThread;
  R.ThroughputOpsPerSec = static_cast<double>(R.Ops) / Secs;
  R.P50Ns = percentile(All, 0.50);
  R.P99Ns = percentile(All, 0.99);
  return R;
}

/// Instrumentation overhead on one scenario: the same workload run with
/// the lock profiler dormant vs armed, best-of-N to damp scheduler noise.
struct ObsOverhead {
  std::string Scenario;
  double NsPerOpOff = 0;
  double NsPerOpOn = 0;
  double OverheadPct = 0;
};

ObsOverhead measureObsOverhead(const char *Name, unsigned NumThreads, Mix M,
                               uint64_t OpsPerThread, unsigned NumAddrs) {
  // Paired reps: each rep runs one off and one on leg back to back
  // (order alternating), and the overhead is the median of the per-rep
  // on/off ratios. Pairing cancels slow drift — turbo, thermal, a
  // background task — and the median discards the odd preempted rep,
  // which min-of-N per leg would let bias one side.
  constexpr int Reps = 7;
  std::vector<double> OffNs, OnNs, Ratios;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    bool OnFirst = Rep & 1;
    double Pair[2]; // ns/op: [0] = off, [1] = on
    for (int Leg = 0; Leg < 2; ++Leg) {
      bool On = (Leg == 0) == OnFirst;
      Result R =
          benchSections(Name, NumThreads, M, OpsPerThread, NumAddrs, On);
      Pair[On] = 1e9 / R.ThroughputOpsPerSec;
    }
    OffNs.push_back(Pair[0]);
    OnNs.push_back(Pair[1]);
    Ratios.push_back(Pair[1] / Pair[0]);
  }
  auto Median = [](std::vector<double> &V) {
    std::nth_element(V.begin(), V.begin() + V.size() / 2, V.end());
    return V[V.size() / 2];
  };
  ObsOverhead O;
  O.Scenario = Name;
  O.NsPerOpOff = Median(OffNs);
  O.NsPerOpOn = Median(OnNs);
  O.OverheadPct = (Median(Ratios) - 1.0) * 100.0;
  return O;
}

bool emitJson(const std::vector<Result> &Results,
              const std::vector<ObsOverhead> &Overheads,
              const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::perror("bench_runtime: open output");
    return false;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"runtime\",\n  \"schema\": 1,\n"
               "  \"note\": \"RelWithDebInfo, single-core container "
               "(multi-thread rows oversubscribed); obs_overhead = lock "
               "profiler armed vs dormant, median of paired reps\",\n"
               "  \"results\": [\n");
  for (size_t I = 0; I < Results.size(); ++I) {
    const Result &R = Results[I];
    std::fprintf(F,
                 "    {\"scenario\": \"%s\", \"threads\": %u, \"ops\": %llu, "
                 "\"throughput_ops_per_sec\": %.0f, \"p50_ns\": %llu, "
                 "\"p99_ns\": %llu}%s\n",
                 R.Scenario.c_str(), R.Threads,
                 static_cast<unsigned long long>(R.Ops), R.ThroughputOpsPerSec,
                 static_cast<unsigned long long>(R.P50Ns),
                 static_cast<unsigned long long>(R.P99Ns),
                 I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]%s\n", Overheads.empty() ? "" : ",");
  if (!Overheads.empty()) {
    std::fprintf(F, "  \"obs_enabled\": %s,\n  \"obs_overhead\": [\n",
                 obs::kEnabled ? "true" : "false");
    for (size_t I = 0; I < Overheads.size(); ++I) {
      const ObsOverhead &O = Overheads[I];
      std::fprintf(F,
                   "    {\"scenario\": \"%s\", \"ns_per_op_off\": %.1f, "
                   "\"ns_per_op_on\": %.1f, \"overhead_pct\": %.2f}%s\n",
                   O.Scenario.c_str(), O.NsPerOpOff, O.NsPerOpOn,
                   O.OverheadPct, I + 1 < Overheads.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n");
  }
  std::fprintf(F, "}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_runtime.json";
  uint64_t Scale = 1;   // divide op counts, for smoke runs
  bool WithObs = false; // also measure instrumentation overhead
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "bench_runtime: --out requires a path\n");
        return 2;
      }
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--quick") == 0) {
      Scale = 20;
    } else if (std::strcmp(Argv[I], "--with-obs") == 0) {
      WithObs = true;
    } else {
      std::fprintf(stderr, "bench_runtime: unknown option '%s'\n", Argv[I]);
      std::fprintf(stderr,
                   "usage: bench_runtime [--quick] [--with-obs] [--out "
                   "<path>]\n");
      return 2;
    }
  }

  std::vector<Result> Results;
  std::printf("%-24s %8s %12s %16s %10s %10s\n", "scenario", "threads", "ops",
              "ops/sec", "p50(ns)", "p99(ns)");
  auto Report = [&](Result R) {
    std::printf("%-24s %8u %12llu %16.0f %10llu %10llu\n", R.Scenario.c_str(),
                R.Threads, static_cast<unsigned long long>(R.Ops),
                R.ThroughputOpsPerSec, static_cast<unsigned long long>(R.P50Ns),
                static_cast<unsigned long long>(R.P99Ns));
    Results.push_back(std::move(R));
  };

  Report(benchUncontendedNode(Mode::S, "uncontended_node_S", 2000000 / Scale));
  Report(benchUncontendedNode(Mode::X, "uncontended_node_X", 2000000 / Scale));
  // A 16-address hot set: the steady-state repeat-section case the
  // per-thread leaf cache targets.
  Report(benchSections("uncontended_section", 1, Mix{0, 100, 0, 0},
                       400000 / Scale, 16));

  const Mix ReadMostly{90, 10, 0, 0};
  const Mix WriteHeavy{30, 70, 0, 0};
  const Mix MixedGrain{40, 20, 30, 10};
  for (unsigned Threads : {1u, 4u, 16u}) {
    uint64_t PerThread = 200000 / Threads / Scale;
    Report(benchSections("read_mostly", Threads, ReadMostly, PerThread));
    Report(benchSections("write_heavy", Threads, WriteHeavy, PerThread));
    Report(benchSections("mixed_grain", Threads, MixedGrain, PerThread));
  }

  std::vector<ObsOverhead> Overheads;
  if (WithObs) {
    if (!obs::kEnabled)
      std::fprintf(stderr, "bench_runtime: note: built with LOCKIN_OBS=OFF; "
                           "--with-obs measures the compiled-out stubs\n");
    std::printf("\n%-24s %14s %14s %10s\n", "obs overhead", "off(ns/op)",
                "on(ns/op)", "pct");
    auto ReportObs = [&](ObsOverhead O) {
      std::printf("%-24s %14.1f %14.1f %+9.2f%%\n", O.Scenario.c_str(),
                  O.NsPerOpOff, O.NsPerOpOn, O.OverheadPct);
      Overheads.push_back(std::move(O));
    };
    ReportObs(measureObsOverhead("uncontended_section", 1, Mix{0, 100, 0, 0},
                                 400000 / Scale, 16));
    ReportObs(measureObsOverhead("read_mostly", 4, ReadMostly,
                                 50000 / Scale, 256));
  }

  if (!emitJson(Results, Overheads, OutPath))
    return 1;
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
