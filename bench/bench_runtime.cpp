//===--- bench_runtime.cpp - Lock runtime microbenchmark -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the §5 runtime itself, independent of any workload data
/// structure: raw LockNode acquire/release cycles (the fast path the
/// atomic-word rewrite targets) and full sections — toAcquire /
/// acquireAll / body / releaseAll over real data words — across thread
/// counts and access mixes, with and without the contention-adaptive
/// engine driving the run. Emits machine-readable JSON (default
/// `BENCH_runtime.json`) so the performance trajectory of the runtime is
/// tracked from PR to PR.
///
/// Scenarios:
///   uncontended_node_{S,X}  one thread, one LockNode, acquire+release
///   uncontended_section     one thread, one fine rw lock per section
///   elision                 the same stream locked vs lock-elided (the
///                           MHP never-parallel transform), paired legs
///   read_mostly             90% fine ro / 10% fine rw, 256 addresses
///   write_heavy             30% fine ro / 70% fine rw, 256 addresses
///   mixed_grain             60% fine, 30% coarse ro, 10% coarse rw
///   stripe_scaling          100% fine rw over 8192 addresses, 1 region
///                           (leaf-pressure case the stripe escalation
///                           targets: the 256-entry per-thread leaf
///                           cache misses almost always)
///
/// Each multi-threaded scenario runs at 1, 4, and 16 threads, adaptive
/// off and on, and reports throughput (sections/s) plus p50/p99
/// per-section latency. Adaptive rows run an untimed warmup first so the
/// policy ladder converges before measurement, and report the final
/// backend and striped-region count the policy settled on. Rows also
/// carry an `oversubscribed` flag (threads > hardware concurrency) so a
/// single-core container's 16-thread rows are not misread as scaling
/// results.
///
//===----------------------------------------------------------------------===//

#include "obs/LockProfiler.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "runtime/Adaptive.h"
#include "runtime/LockRuntime.h"
#include "stm/Tl2.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace lockin;
using namespace lockin::rt;

namespace {

using Clock = std::chrono::steady_clock;

/// Keeps the benched data accesses from being optimized away.
std::atomic<uint64_t> GlobalSink{0};

unsigned hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

struct Result {
  std::string Scenario;
  unsigned Threads = 1;
  bool Adaptive = false;
  bool Elided = false;
  bool Oversubscribed = false;
  uint64_t Ops = 0;
  double ThroughputOpsPerSec = 0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  /// Adaptive rows only: where the policy ended up. -1 = n/a.
  int FinalBackend = -1; ///< 0 = lock, 1 = stm
  unsigned StripedRegions = 0;
  uint64_t StmMigrations = 0;
  uint64_t StmFallbacks = 0;
};

uint64_t percentile(std::vector<uint64_t> &Samples, double P) {
  if (Samples.empty())
    return 0;
  size_t Idx = static_cast<size_t>(P * static_cast<double>(Samples.size() - 1));
  std::nth_element(Samples.begin(), Samples.begin() + Idx, Samples.end());
  return Samples[Idx];
}

/// Median-throughput of three runs: single runs on an oversubscribed
/// container are bimodal (a parking convoy forms or it doesn't), and the
/// adaptive-on/off comparison needs rows stable to a few percent.
/// Scheduler convoys on oversubscribed rows are bistable from run to
/// run, so single-shot numbers are useless; report the median rep.
Result medianResult(std::vector<Result> Rs) {
  std::sort(Rs.begin(), Rs.end(), [](const Result &X, const Result &Y) {
    return X.ThroughputOpsPerSec < Y.ThroughputOpsPerSec;
  });
  return Rs[Rs.size() / 2];
}

/// Raw single-node acquire/release pairs: the uncontended fast path.
Result benchUncontendedNode(Mode M, const char *Name, uint64_t Ops) {
  LockNode Node;
  // Warm up.
  for (unsigned I = 0; I < 1000; ++I) {
    Node.acquire(M);
    Node.release(M);
  }
  auto Start = Clock::now();
  for (uint64_t I = 0; I < Ops; ++I) {
    Node.acquire(M);
    Node.release(M);
  }
  auto End = Clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();
  Result R;
  R.Scenario = Name;
  R.Ops = Ops;
  R.ThroughputOpsPerSec = static_cast<double>(Ops) / Secs;
  uint64_t AvgNs = static_cast<uint64_t>(Secs * 1e9 / static_cast<double>(Ops));
  R.P50Ns = R.P99Ns = AvgNs; // per-pair timing would dominate; report mean
  return R;
}

/// One full section per op. Mix: percentage split between fine ro /
/// fine rw / coarse ro / coarse rw.
struct Mix {
  unsigned FineRo = 0, FineRw = 0, CoarseRo = 0, CoarseRw = 0; // sums to 100
};

/// One pregenerated section: the lock it declares and the data word it
/// touches (fine ops index Words, coarse ops index RegionWords).
struct Op {
  LockDescriptor D;
  uint32_t Idx;
};

Result benchSections(const char *Name, unsigned NumThreads, Mix M,
                     uint64_t OpsPerThread, unsigned NumAddrs = 256,
                     bool Adaptive = false, bool ObsOn = false,
                     unsigned NumRegions = 4, bool Elided = false) {
  constexpr uint64_t LatSampleEvery = 16; // power of two
  // Inject a local registry + profiler so both the obs-off and obs-on
  // variants run the same code path (dormant-profiler check included)
  // and the measurement doesn't pollute the process-global registry.
  // The adaptive engine arms/disarms this same profiler on its duty
  // cycle.
  obs::MetricsRegistry Reg;
  obs::LockProfiler Prof;
  if (ObsOn)
    Prof.setEnabled(true);
  LockRuntime RT(NumRegions, &Reg, &Prof);
  stm::Stm StmRt;

  // Every section of the run is one migration domain (they all touch the
  // same address pool, so they are trivially closed under data overlap).
  // Count-based epochs keep the bench deterministic per op count; the
  // warmup below gives the ladder plenty of ticks to converge.
  std::unique_ptr<adaptive::AdaptiveEngine> Eng;
  uint32_t Dom = 0;
  if (Adaptive) {
    adaptive::AdaptiveConfig AC;
    // Rare enough that the dormant-tick cost and the armed node walk
    // stay out of the per-section budget at 1 thread; the warmup below
    // still provides tens of ticks for convergence.
    AC.EveryNSections = 1024;
    Eng = std::make_unique<adaptive::AdaptiveEngine>(RT, AC);
    Dom = Eng->addDomain();
    Eng->bindSection(Dom, /*SectionTag=*/1);
  }

  // The data the sections actually read and write: one word per fine
  // address, one per region for the coarse ops. Lock-mode sections use
  // plain accesses (the locks serialize them); STM-mode sections route
  // through the transaction. The drain gate guarantees the two regimes
  // never overlap.
  std::vector<uint64_t> Words(NumAddrs, 1);
  std::vector<uint64_t> RegionWords(NumRegions, 1);

  std::vector<std::vector<uint64_t>> Lat(NumThreads);

  // Pregenerate each thread's op stream so the timed loop measures the
  // runtime, not the RNG.
  std::vector<std::vector<Op>> Streams(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    Rng R(0xbead + T);
    std::vector<Op> &S = Streams[T];
    S.reserve(OpsPerThread);
    for (uint64_t I = 0; I < OpsPerThread; ++I) {
      uint32_t Idx = static_cast<uint32_t>(R.below(NumAddrs));
      uint64_t Addr = 0x1000 + uint64_t(Idx) * 8;
      uint32_t Region = Idx % NumRegions;
      unsigned Roll = static_cast<unsigned>(R.below(100));
      if (Roll < M.FineRo)
        S.push_back({LockDescriptor::fine(Region, Addr, false), Idx});
      else if (Roll < M.FineRo + M.FineRw)
        S.push_back({LockDescriptor::fine(Region, Addr, true), Idx});
      else if (Roll < M.FineRo + M.FineRw + M.CoarseRo)
        S.push_back({LockDescriptor::coarse(Region, false), Region});
      else
        S.push_back({LockDescriptor::coarse(Region, true), Region});
    }
  }

  // Adaptive rows converge the policy before the clock starts: warmup
  // ops run the full section protocol untimed, then every thread parks
  // at the start line.
  const uint64_t WarmupOps =
      Adaptive ? std::min<uint64_t>(OpsPerThread, 32768) : 0;
  std::atomic<unsigned> Ready{0};
  std::atomic<bool> Go{false};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&, T] {
      ThreadLockContext Ctx(RT);
      uint32_t Slot = 0;
      adaptive::AdaptiveEngine::Gate Gate;
      if (Eng) {
        Slot = Eng->registerThread();
        Gate = Eng->gate(Slot, Dom);
        Ctx.setSectionTag(1); // feed the domain's wait/hold stats
      }
      const std::vector<Op> &S = Streams[T];
      std::vector<uint64_t> &MyLat = Lat[T];
      MyLat.reserve(OpsPerThread / LatSampleEvery + 1);
      uint64_t Sink = 0;

      auto LockBody = [&](const Op &O) {
        // An elided section is the transformed program of a
        // never-parallel section: same body, no lock protocol.
        if (!Elided) {
          Ctx.toAcquire(O.D);
          Ctx.acquireAll();
        }
        if (O.D.K == LockDescriptor::Kind::Fine) {
          if (O.D.Write)
            ++Words[O.Idx];
          else
            Sink += Words[O.Idx];
        } else {
          if (O.D.Write)
            ++RegionWords[O.Idx];
          else
            Sink += RegionWords[O.Idx];
        }
        if (!Elided)
          Ctx.releaseAll();
      };
      auto RunOne = [&](const Op &O) {
        if (!Eng) {
          LockBody(O);
          return;
        }
        Eng->maybeTick(Gate);
        adaptive::Backend B = Eng->enter(Gate);
        if (B == adaptive::Backend::Stm) {
          uint64_t *W = O.D.K == LockDescriptor::Kind::Fine
                            ? &Words[O.Idx]
                            : &RegionWords[O.Idx];
          unsigned Aborts = StmRt.atomically([&](stm::Transaction &Tx) {
            if (O.D.Write)
              Tx.write(W, Tx.read(W) + 1);
            else
              Sink += Tx.read(W);
          });
          Eng->noteStm(Dom, 1, Aborts);
        } else {
          LockBody(O);
        }
        Eng->exit(Gate);
      };

      for (uint64_t I = 0; I < WarmupOps; ++I)
        RunOne(S[I % S.size()]);
      Ready.fetch_add(1, std::memory_order_release);
      while (!Go.load(std::memory_order_acquire))
        std::this_thread::yield();

      for (uint64_t I = 0; I < OpsPerThread; ++I) {
        // Sample latency sparsely so the clock reads don't dominate the
        // throughput measurement (a clock_gettime pair costs more than
        // an uncontended section).
        bool Sample = (I & (LatSampleEvery - 1)) == 0;
        Clock::time_point T0;
        if (Sample)
          T0 = Clock::now();
        RunOne(S[I]);
        if (Sample)
          MyLat.push_back(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  Clock::now() - T0)
                  .count()));
      }
      GlobalSink.fetch_add(Sink, std::memory_order_relaxed);
      if (Eng)
        Eng->unregisterThread(Slot);
    });
  }
  while (Ready.load(std::memory_order_acquire) < NumThreads)
    std::this_thread::yield();
  auto Start = Clock::now();
  Go.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  auto End = Clock::now();
  double Secs = std::chrono::duration<double>(End - Start).count();

  std::vector<uint64_t> All;
  All.reserve(NumThreads * (OpsPerThread / LatSampleEvery + 1));
  for (std::vector<uint64_t> &L : Lat)
    All.insert(All.end(), L.begin(), L.end());
  Result R;
  R.Scenario = Name;
  R.Threads = NumThreads;
  R.Adaptive = Adaptive;
  R.Elided = Elided;
  R.Oversubscribed = NumThreads > hardwareThreads();
  R.Ops = static_cast<uint64_t>(NumThreads) * OpsPerThread;
  R.ThroughputOpsPerSec = static_cast<double>(R.Ops) / Secs;
  R.P50Ns = percentile(All, 0.50);
  R.P99Ns = percentile(All, 0.99);
  if (Eng) {
    R.FinalBackend = static_cast<int>(Eng->domainBackend(Dom));
    for (unsigned Rg = 0; Rg < NumRegions; ++Rg)
      if (RT.regionLayout(Rg))
        ++R.StripedRegions;
    R.StmMigrations = Reg.counter("adaptive.stm_migrations").value();
    R.StmFallbacks = Reg.counter("adaptive.stm_fallbacks").value();
  }
  return R;
}

/// Instrumentation overhead on one scenario: the same workload run with
/// the lock profiler dormant vs armed, paired and order-debiased.
struct ObsOverhead {
  std::string Scenario;
  double NsPerOpOff = 0;
  double NsPerOpOn = 0;
  double OverheadPct = 0;
};

ObsOverhead measureObsOverhead(const char *Name, unsigned NumThreads, Mix M,
                               uint64_t OpsPerThread, unsigned NumAddrs) {
  // Many short legs, off/on order alternating rep to rep, overhead from
  // the ratio of the pooled per-leg medians. Per-rep on/off ratios look
  // attractive but are a trap here: the box's effective clock swings on
  // a timescale SHORTER than one leg, so the two legs of a rep are no
  // more comparable than any two legs, and a median over N/2 noisy
  // ratios loses to a median over N balanced-order leg samples. The
  // alternation keeps each pool position-balanced (first legs run on
  // the hotter clock), which is what makes the pooled medians unbiased.
  constexpr int Reps = 24; // legs are ~20ms; generous reps are cheap
  std::vector<double> OffNs, OnNs;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    bool OnFirst = Rep & 1;
    for (int Leg = 0; Leg < 2; ++Leg) {
      bool On = (Leg == 0) == OnFirst;
      Result R = benchSections(Name, NumThreads, M, OpsPerThread, NumAddrs,
                               /*Adaptive=*/false, On);
      (On ? OnNs : OffNs).push_back(1e9 / R.ThroughputOpsPerSec);
    }
  }
  auto Median = [](std::vector<double> &V) {
    std::nth_element(V.begin(), V.begin() + V.size() / 2, V.end());
    return V[V.size() / 2];
  };
  ObsOverhead O;
  O.Scenario = Name;
  O.NsPerOpOff = Median(OffNs);
  O.NsPerOpOn = Median(OnNs);
  O.OverheadPct = (O.NsPerOpOn / O.NsPerOpOff - 1.0) * 100.0;
  return O;
}

bool emitJson(const std::vector<Result> &Results,
              const std::vector<ObsOverhead> &Overheads,
              const std::string &Path) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::perror("bench_runtime: open output");
    return false;
  }
  std::fprintf(F,
               "{\n  \"bench\": \"runtime\",\n  \"schema\": 3,\n"
               "  \"hw_concurrency\": %u,\n"
               "  \"note\": \"RelWithDebInfo; rows with oversubscribed=true "
               "ran more threads than hardware threads; adaptive rows warm "
               "up untimed until the policy converges and report the final "
               "backend; elided=true rows run the section body with the "
               "lock protocol removed (MHP never-parallel elision); "
               "obs_overhead = lock profiler armed vs dormant, "
               "median of order-alternated paired reps\",\n"
               "  \"results\": [\n",
               hardwareThreads());
  for (size_t I = 0; I < Results.size(); ++I) {
    const Result &R = Results[I];
    std::fprintf(F,
                 "    {\"scenario\": \"%s\", \"threads\": %u, "
                 "\"adaptive\": %s, \"elided\": %s, \"oversubscribed\": %s, "
                 "\"ops\": %llu, "
                 "\"throughput_ops_per_sec\": %.0f, \"p50_ns\": %llu, "
                 "\"p99_ns\": %llu",
                 R.Scenario.c_str(), R.Threads, R.Adaptive ? "true" : "false",
                 R.Elided ? "true" : "false",
                 R.Oversubscribed ? "true" : "false",
                 static_cast<unsigned long long>(R.Ops), R.ThroughputOpsPerSec,
                 static_cast<unsigned long long>(R.P50Ns),
                 static_cast<unsigned long long>(R.P99Ns));
    if (R.FinalBackend >= 0)
      std::fprintf(F, ", \"final_backend\": \"%s\", \"striped_regions\": %u",
                   R.FinalBackend == 1 ? "stm" : "lock", R.StripedRegions);
    std::fprintf(F, "}%s\n", I + 1 < Results.size() ? "," : "");
  }
  std::fprintf(F, "  ]%s\n", Overheads.empty() ? "" : ",");
  if (!Overheads.empty()) {
    std::fprintf(F, "  \"obs_enabled\": %s,\n  \"obs_overhead\": [\n",
                 obs::kEnabled ? "true" : "false");
    for (size_t I = 0; I < Overheads.size(); ++I) {
      const ObsOverhead &O = Overheads[I];
      std::fprintf(F,
                   "    {\"scenario\": \"%s\", \"ns_per_op_off\": %.1f, "
                   "\"ns_per_op_on\": %.1f, \"overhead_pct\": %.2f}%s\n",
                   O.Scenario.c_str(), O.NsPerOpOff, O.NsPerOpOn,
                   O.OverheadPct, I + 1 < Overheads.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n");
  }
  std::fprintf(F, "}\n");
  std::fclose(F);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath = "BENCH_runtime.json";
  uint64_t Scale = 1;   // divide op counts, for smoke runs
  bool WithObs = false; // also measure instrumentation overhead
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--out") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "bench_runtime: --out requires a path\n");
        return 2;
      }
      OutPath = Argv[++I];
    } else if (std::strcmp(Argv[I], "--quick") == 0) {
      Scale = 20;
    } else if (std::strcmp(Argv[I], "--with-obs") == 0) {
      WithObs = true;
    } else {
      std::fprintf(stderr, "bench_runtime: unknown option '%s'\n", Argv[I]);
      std::fprintf(stderr,
                   "usage: bench_runtime [--quick] [--with-obs] [--out "
                   "<path>]\n");
      return 2;
    }
  }

  std::vector<Result> Results;
  std::printf("%-20s %8s %9s %12s %16s %10s %10s %s\n", "scenario", "threads",
              "adaptive", "ops", "ops/sec", "p50(ns)", "p99(ns)", "policy");
  auto Report = [&](Result R) {
    char Policy[64] = "";
    if (R.FinalBackend >= 0)
      std::snprintf(Policy, sizeof(Policy), "%s, %u striped, mig=%llu fb=%llu",
                    R.FinalBackend == 1 ? "stm" : "lock", R.StripedRegions,
                    static_cast<unsigned long long>(R.StmMigrations),
                    static_cast<unsigned long long>(R.StmFallbacks));
    else if (R.Elided)
      std::snprintf(Policy, sizeof(Policy), "elided");
    std::printf("%-20s %8u %9s %12llu %16.0f %10llu %10llu %s\n",
                R.Scenario.c_str(), R.Threads, R.Adaptive ? "on" : "off",
                static_cast<unsigned long long>(R.Ops), R.ThroughputOpsPerSec,
                static_cast<unsigned long long>(R.P50Ns),
                static_cast<unsigned long long>(R.P99Ns), Policy);
    Results.push_back(std::move(R));
  };

  Report(benchUncontendedNode(Mode::S, "uncontended_node_S", 2000000 / Scale));
  Report(benchUncontendedNode(Mode::X, "uncontended_node_X", 2000000 / Scale));
  // A 16-address hot set: the steady-state repeat-section case the
  // per-thread leaf cache targets.
  Report(benchSections("uncontended_section", 1, Mix{0, 100, 0, 0},
                       400000 / Scale, 16));

  // MHP-driven lock elision: the same single-thread section stream run
  // with the full protocol vs with acquire/release removed — what the
  // transform emits for a section the checker proves never parallel
  // with any conflicting code. Paired order-alternated legs, median
  // rep, like the adaptive rows.
  {
    std::vector<Result> Locked, ElidedRs;
    for (unsigned R = 0; R < 24; ++R) {
      bool ElidedFirst = R & 1;
      for (int Leg = 0; Leg < 2; ++Leg) {
        bool E = (Leg == 0) == ElidedFirst;
        (E ? ElidedRs : Locked)
            .push_back(benchSections("elision", 1, Mix{0, 100, 0, 0},
                                     400000 / Scale, 16, /*Adaptive=*/false,
                                     /*ObsOn=*/false, /*NumRegions=*/4,
                                     /*Elided=*/E));
      }
    }
    Report(medianResult(std::move(Locked)));
    Report(medianResult(std::move(ElidedRs)));
  }

  const Mix ReadMostly{90, 10, 0, 0};
  const Mix WriteHeavy{30, 70, 0, 0};
  const Mix MixedGrain{40, 20, 30, 10};
  const Mix AllFineRw{0, 100, 0, 0};
  // The adaptive-off and adaptive-on legs of every row run back to back
  // within each rep: the effective clock of a shared box drifts minute
  // to minute, so legs measured side by side are the only comparable
  // ones. Within-rep drift still penalizes whichever leg runs second
  // (turbo decays over a rep), so the leg ORDER alternates rep to rep
  // and the rep count is even — each leg's median samples first and
  // second position equally, cancelling the order bias.
  auto ReportPaired = [&](const char *Name, unsigned Threads, Mix M,
                          uint64_t PerThread, unsigned NumAddrs,
                          unsigned NumRegions, unsigned Reps) {
    std::vector<Result> Off, On;
    for (unsigned R = 0; R < Reps; ++R) {
      bool OnFirst = R & 1;
      for (int Leg = 0; Leg < 2; ++Leg) {
        bool Adaptive = (Leg == 0) == OnFirst;
        (Adaptive ? On : Off)
            .push_back(benchSections(Name, Threads, M, PerThread, NumAddrs,
                                     Adaptive, /*ObsOn=*/false, NumRegions));
      }
    }
    Report(medianResult(std::move(Off)));
    Report(medianResult(std::move(On)));
  };

  for (unsigned Threads : {1u, 4u, 16u}) {
    uint64_t PerThread = 200000 / Threads / Scale;
    // Even, so leg order stays balanced. The 1-thread rows gate the
    // "adaptation costs <=3% uncontended" budget and their legs are the
    // cheapest, so they get double the samples.
    unsigned Reps = Threads == 1 ? 24 : 12;
    ReportPaired("read_mostly", Threads, ReadMostly, PerThread, 256, 4, Reps);
    ReportPaired("write_heavy", Threads, WriteHeavy, PerThread, 256, 4, Reps);
    ReportPaired("mixed_grain", Threads, MixedGrain, PerThread, 256, 4, Reps);
    ReportPaired("stripe_scaling", Threads, AllFineRw, PerThread, 8192, 1,
                 Reps);
  }

  std::vector<ObsOverhead> Overheads;
  if (WithObs) {
    if (!obs::kEnabled)
      std::fprintf(stderr, "bench_runtime: note: built with LOCKIN_OBS=OFF; "
                           "--with-obs measures the compiled-out stubs\n");
    std::printf("\n%-24s %14s %14s %10s\n", "obs overhead", "off(ns/op)",
                "on(ns/op)", "pct");
    auto ReportObs = [&](ObsOverhead O) {
      std::printf("%-24s %14.1f %14.1f %+9.2f%%\n", O.Scenario.c_str(),
                  O.NsPerOpOff, O.NsPerOpOn, O.OverheadPct);
      Overheads.push_back(std::move(O));
    };
    // Both legs run single-threaded: the overhead being budgeted is the
    // per-op instrumentation cost, and multi-thread legs on an
    // oversubscribed box fold bistable scheduler convoys into whichever
    // leg the convoy lands on, swamping a few-ns delta.
    ReportObs(measureObsOverhead("uncontended_section", 1, Mix{0, 100, 0, 0},
                                 400000 / Scale, 16));
    ReportObs(measureObsOverhead("read_mostly", 1, ReadMostly,
                                 200000 / Scale, 256));
  }

  if (!emitJson(Results, Overheads, OutPath))
    return 1;
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
