//===--- bench_service.cpp - Daemon cold/warm load benchmark -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed-loop load generator for the analysis daemon. Boots an
/// in-process Server on a unix socket, drives it with concurrent client
/// threads (one outstanding request per client), and measures the
/// `analyze` latency distribution in three phases:
///
///   cold  — every request carries force=true, so the full inference
///           runs each time (the exact code path of a cache miss);
///   warm  — normal requests against the primed cache: every section is
///           served from its content-hashed summary;
///   edit  — one request whose source flips a constant in one worker,
///           re-analyzing only the dirty SCC cone.
///
/// The workload is built to be inference-dominated (many sections whose
/// bodies loop over shared pointer chains and a mutually recursive
/// helper pair), because that is the regime the cache targets: the
/// irreducible warm cost is the front half (parse → points-to) plus
/// fingerprinting.
///
/// On top of the closed-loop phases, an **open-loop sweep** drives the
/// epoll service tier the way real load arrives: requests are fired on a
/// fixed schedule (offered rate), pipelined over a pool of connections
/// WITHOUT waiting for responses, and each latency is measured from the
/// request's *scheduled* arrival time — so queueing delay is charged to
/// the server, not silently absorbed by a blocked client (no coordinated
/// omission). The sweep first calibrates the warm closed-loop saturation
/// throughput, then offers fractions of it (0.25x .. 2x). The 2x leg is
/// the graceful-degradation probe: the daemon must shed (answer
/// "overloaded" / deadline-shed) rather than let accepted latency run
/// away — CI gates on shed>0 and bounded accepted p99 there.
///
/// Emits BENCH_service.json (schema 3) with p50/p95/p99/mean latency,
/// throughput, the cold/warm speedup, whether warm output stayed
/// byte-identical to cold — the acceptance gate is identical=true (the
/// speedup is recorded; it sits around 3-4x now that interning made
/// cold inference cheaper) — the open-loop latency-vs-offered-load
/// curve with per-rate shed counts and the speedup of the saturation
/// rate over the thread-per-connection-era 9 rps baseline, plus the
/// request-telemetry view: a per-phase (queue/parse/fingerprint/
/// analyze/render) latency breakdown scraped from the daemon's own
/// `metrics` op, and the telemetry overhead measured by running the
/// warm leg against two daemons in alternating batches, one with
/// ServerOptions::Telemetry off and one with it on (budget: <= 5%;
/// recorded, not gated).
///
/// Usage: bench_service [--quick] [--out PATH]
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Json.h"
#include "service/Protocol.h"
#include "service/Server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lockin;
using namespace lockin::service;

namespace {

/// Inference-heavy synthetic program: \p Workers worker functions of
/// \p SectionsPer atomic sections each; every section loops \p Depth
/// times over \p Chains shared list heads, calling an iterative walker
/// and a mutually recursive helper pair. \p Salt lands in one worker's
/// body so edits dirty exactly that function.
std::string generate(unsigned Workers, unsigned SectionsPer, unsigned Chains,
                     unsigned Depth, int Salt) {
  std::string S = "struct node { node* next; int val; int aux; };\n";
  for (unsigned C = 0; C < Chains; ++C)
    S += "node* head" + std::to_string(C) + ";\n";
  S += "int gsum;\n"
       "int walk(node* p, int n) {\n"
       "  int s = 0;\n"
       "  while (p != null) { s = s + p->val; p->aux = s; p = p->next; }\n"
       "  return s + n;\n"
       "}\n"
       "int recB(node* p, int n) { if (n <= 0) { return 0; } "
       "if (p == null) { return n; } p->val = n; "
       "return recA(p->next, n - 1); }\n"
       "int recA(node* p, int n) { if (n <= 0) { return 0; } "
       "if (p == null) { return n; } gsum = gsum + p->val; "
       "return recB(p->next, n - 1); }\n";
  for (unsigned W = 0; W < Workers; ++W) {
    S += "void worker" + std::to_string(W) + "() {\n";
    for (unsigned M = 0; M < SectionsPer; ++M) {
      // Nested loops force extra abstract-interpretation fixpoint rounds
      // per section at constant statement count: the inference cost per
      // section rises while the front half (parse → points-to), which
      // scales with source bytes, stays put — this is what makes the
      // workload inference-dominated.
      S += "  atomic {\n    int t = " +
           std::to_string(W == 0 && M == 0 ? Salt : 0) +
           ";\n    int i = 0;\n    while (i < " + std::to_string(Depth) +
           ") {\n      int j = 0;\n      while (j < " +
           std::to_string(Depth) + ") {\n        int q = 0;\n"
           "        while (q < " + std::to_string(Depth) + ") {\n"
           "          int r = 0;\n          while (r < " +
           std::to_string(Depth) + ") {\n";
      for (unsigned C = 0; C < Chains; ++C) {
        std::string H = "head" + std::to_string((C + W + M) % Chains);
        S += "            t = t + walk(" + H + ", r);\n";
        S += "            t = t + recA(" + H + ", 3);\n";
        S += "            if (" + H + " != null) { " + H + "->val = t; " + H +
             "->next->aux = t; }\n";
      }
      S += "            r = r + 1;\n          }\n          q = q + 1;\n"
           "        }\n        j = j + 1;\n      }\n"
           "      i = i + 1;\n    }\n    gsum = gsum + t;\n  }\n";
    }
    S += "}\n";
  }
  S += "int main() {\n";
  for (unsigned C = 0; C < Chains; ++C) {
    std::string H = "head" + std::to_string(C);
    S += "  " + H + " = new node;\n  " + H + "->next = new node;\n";
  }
  for (unsigned W = 0; W < Workers; ++W)
    S += "  spawn worker" + std::to_string(W) + "();\n";
  S += "  return 0;\n}\n";
  return S;
}

struct PhaseStats {
  std::vector<double> LatenciesMs;
  double WallSeconds = 0;
  unsigned Errors = 0;
  std::string Report; // one representative report for identity checks

  double quantile(double Q) const {
    if (LatenciesMs.empty())
      return 0;
    std::vector<double> Sorted = LatenciesMs;
    std::sort(Sorted.begin(), Sorted.end());
    size_t Idx = static_cast<size_t>(Q * (Sorted.size() - 1) + 0.5);
    return Sorted[Idx];
  }
  double mean() const {
    if (LatenciesMs.empty())
      return 0;
    double Sum = 0;
    for (double L : LatenciesMs)
      Sum += L;
    return Sum / LatenciesMs.size();
  }
  double throughput() const {
    return WallSeconds > 0 ? LatenciesMs.size() / WallSeconds : 0;
  }
};

/// Closed loop: \p Clients threads, each sending \p PerClient analyze
/// requests for \p Source (same unit — that is the daemon's real usage
/// pattern) and recording each round-trip latency.
PhaseStats runPhase(const std::string &SocketPath, const std::string &Source,
                    unsigned Clients, unsigned PerClient, bool Force) {
  PhaseStats Stats;
  std::mutex Mu;
  auto Wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < Clients; ++T) {
    Threads.emplace_back([&] {
      Client Conn;
      std::string Err;
      if (!Conn.connectUnix(SocketPath, Err)) {
        std::lock_guard<std::mutex> Lock(Mu);
        ++Stats.Errors;
        return;
      }
      for (unsigned I = 0; I < PerClient; ++I) {
        Json Request = Json::object();
        Request.set("op", Json::string("analyze"));
        Request.set("unit", Json::string("bench.atom"));
        Request.set("source", Json::string(Source));
        Request.set("jobs", Json::integer(1));
        if (Force)
          Request.set("force", Json::boolean(true));
        Json Response;
        auto T0 = std::chrono::steady_clock::now();
        bool CallOk = Conn.call(Request, Response, Err);
        double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - T0)
                        .count();
        std::lock_guard<std::mutex> Lock(Mu);
        if (!CallOk || !Response.getBool("ok", false)) {
          ++Stats.Errors;
          continue;
        }
        Stats.LatenciesMs.push_back(Ms);
        if (Stats.Report.empty())
          Stats.Report = Response.getString("report", "");
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  Stats.WallSeconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - Wall0)
                          .count();
  return Stats;
}

Json phaseJson(const PhaseStats &Stats) {
  Json O = Json::object();
  O.set("requests", Json::integer(Stats.LatenciesMs.size()));
  O.set("errors", Json::integer(Stats.Errors));
  O.set("p50_ms", Json::number(Stats.quantile(0.5)));
  O.set("p95_ms", Json::number(Stats.quantile(0.95)));
  O.set("p99_ms", Json::number(Stats.quantile(0.99)));
  O.set("mean_ms", Json::number(Stats.mean()));
  O.set("throughput_rps", Json::number(Stats.throughput()));
  return O;
}

/// Scrapes the daemon's `metrics` op and lifts the request-phase
/// histograms (service.queue_ns, service.phase.*_ns, service.total_ns)
/// into {phase: {count, p50_ms, p95_ms, p99_ms}}.
Json scrapePhaseBreakdown(const std::string &SocketPath) {
  Json Out = Json::object();
  Client Conn;
  std::string Err;
  Json Response;
  Json Request = Json::object();
  Request.set("op", Json::string("metrics"));
  if (!Conn.connectUnix(SocketPath, Err) ||
      !Conn.call(Request, Response, Err) ||
      !Response.getBool("ok", false)) {
    std::fprintf(stderr, "bench_service: metrics scrape: %s\n", Err.c_str());
    return Out;
  }
  const Json *Hists = Response.get("histograms");
  if (!Hists)
    return Out;
  const std::pair<const char *, const char *> Phases[] = {
      {"queue", "service.queue_ns"},
      {"parse", "service.phase.parse_ns"},
      {"fingerprint", "service.phase.fingerprint_ns"},
      {"analyze", "service.phase.analyze_ns"},
      {"render", "service.phase.render_ns"},
      {"total", "service.total_ns"},
  };
  for (const auto &[Label, Metric] : Phases) {
    const Json *H = Hists->get(Metric);
    if (!H)
      continue;
    Json P = Json::object();
    P.set("count",
          Json::integer(static_cast<int64_t>(H->getUint("count", 0))));
    P.set("p50_ms", Json::number(H->getUint("p50", 0) / 1e6));
    P.set("p95_ms", Json::number(H->getUint("p95", 0) / 1e6));
    P.set("p99_ms", Json::number(H->getUint("p99", 0) / 1e6));
    Out.set(Label, std::move(P));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Open-loop load generator
//===----------------------------------------------------------------------===//

/// One connection of the open-loop pool: a writer fires frames at their
/// scheduled times without waiting for responses (the responses come
/// back in order on the same socket), a reader matches them up and
/// charges each response against its request's *scheduled* time.
struct OpenLoopConn {
  int Fd = -1;
  std::vector<std::chrono::steady_clock::time_point> Schedule;
  std::vector<double> AcceptedMs; ///< latency of ok responses
  unsigned Ok = 0, Overloaded = 0, Shed = 0, Errors = 0;

  bool connect(const std::string &Path) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_un Addr{};
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    return ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)) == 0;
  }
  ~OpenLoopConn() {
    if (Fd >= 0)
      ::close(Fd);
  }

  void writerLoop(const std::string &Wire) {
    for (const auto &At : Schedule) {
      std::this_thread::sleep_until(At); // past-due = fire immediately
      size_t Off = 0;
      while (Off < Wire.size()) {
        ssize_t W =
            ::send(Fd, Wire.data() + Off, Wire.size() - Off, MSG_NOSIGNAL);
        if (W < 0) {
          if (errno == EINTR)
            continue;
          return;
        }
        Off += static_cast<size_t>(W);
      }
    }
  }

  void readerLoop() {
    for (const auto &At : Schedule) {
      Json Resp;
      std::string Err;
      if (readJson(Fd, Resp, Err) != 1) {
        ++Errors;
        return; // transport broke; remaining responses are lost
      }
      double Ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - At)
                      .count();
      if (Resp.getBool("ok", false)) {
        ++Ok;
        AcceptedMs.push_back(Ms);
      } else if (Resp.getString("error", "") == "overloaded") {
        ++Overloaded;
      } else if (Resp.getBool("shed", false) ||
                 Resp.getBool("timedOut", false)) {
        ++Shed;
      } else {
        ++Errors;
      }
    }
  }
};

struct OpenLoopResult {
  double OfferedRps = 0, Fraction = 0, WallSeconds = 0;
  unsigned Sent = 0, Ok = 0, Overloaded = 0, Shed = 0, Errors = 0;
  std::vector<double> AcceptedMs;

  double quantile(double Q) const {
    if (AcceptedMs.empty())
      return 0;
    std::vector<double> Sorted = AcceptedMs;
    std::sort(Sorted.begin(), Sorted.end());
    size_t Idx = static_cast<size_t>(Q * (Sorted.size() - 1) + 0.5);
    return Sorted[Idx];
  }
  double mean() const {
    double Sum = 0;
    for (double L : AcceptedMs)
      Sum += L;
    return AcceptedMs.empty() ? 0 : Sum / AcceptedMs.size();
  }
};

/// Offers \p Rps requests/second for \p Seconds (request i scheduled at
/// i/Rps, round-robin over \p NumConns pipelined connections).
OpenLoopResult runOpenLoop(const std::string &SocketPath,
                           const std::string &RequestWire, double Rps,
                           double Seconds, unsigned NumConns) {
  OpenLoopResult R;
  R.OfferedRps = Rps;
  unsigned Total = std::max(1u, static_cast<unsigned>(Rps * Seconds));
  std::vector<std::unique_ptr<OpenLoopConn>> Conns;
  for (unsigned C = 0; C < NumConns; ++C) {
    auto Conn = std::make_unique<OpenLoopConn>();
    if (!Conn->connect(SocketPath)) {
      std::fprintf(stderr, "bench_service: open-loop connect failed\n");
      return R;
    }
    Conns.push_back(std::move(Conn));
  }
  // Start 20ms out so every writer thread is up before the first slot.
  auto T0 = std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  for (unsigned I = 0; I < Total; ++I)
    Conns[I % NumConns]->Schedule.push_back(
        T0 + std::chrono::nanoseconds(
                 static_cast<int64_t>(I * 1e9 / Rps)));

  std::vector<std::thread> Threads;
  for (auto &Conn : Conns) {
    Threads.emplace_back([&Conn, &RequestWire] {
      Conn->writerLoop(RequestWire);
    });
    Threads.emplace_back([&Conn] { Conn->readerLoop(); });
  }
  for (std::thread &T : Threads)
    T.join();
  R.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
          .count();
  R.Sent = Total;
  for (auto &Conn : Conns) {
    R.Ok += Conn->Ok;
    R.Overloaded += Conn->Overloaded;
    R.Shed += Conn->Shed;
    R.Errors += Conn->Errors;
    R.AcceptedMs.insert(R.AcceptedMs.end(), Conn->AcceptedMs.begin(),
                        Conn->AcceptedMs.end());
  }
  return R;
}

Json openLoopRateJson(const OpenLoopResult &R) {
  Json O = Json::object();
  O.set("offered_rps", Json::number(R.OfferedRps));
  O.set("fraction_of_saturation", Json::number(R.Fraction));
  O.set("sent", Json::integer(R.Sent));
  O.set("ok", Json::integer(R.Ok));
  O.set("overloaded", Json::integer(R.Overloaded));
  O.set("shed", Json::integer(R.Shed));
  O.set("errors", Json::integer(R.Errors));
  O.set("achieved_rps",
        Json::number(R.WallSeconds > 0 ? R.Ok / R.WallSeconds : 0));
  O.set("accepted_p50_ms", Json::number(R.quantile(0.5)));
  O.set("accepted_p95_ms", Json::number(R.quantile(0.95)));
  O.set("accepted_p99_ms", Json::number(R.quantile(0.99)));
  O.set("accepted_mean_ms", Json::number(R.mean()));
  return O;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Quick = false;
  std::string OutPath = "BENCH_service.json";
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--quick") == 0) {
      Quick = true;
    } else if (std::strcmp(Argv[I], "--out") == 0 && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: bench_service [--quick] [--out PATH]\n");
      return 2;
    }
  }

  const unsigned Workers = Quick ? 8 : 24;
  const unsigned SectionsPer = Quick ? 8 : 12;
  const unsigned Chains = Quick ? 6 : 10;
  const unsigned Depth = 8;
  // The cold/warm latency phases run a single client so latency is pure
  // service time (no queue wait, no cross-request cache/allocator
  // contention); a separate concurrent phase measures throughput.
  const unsigned Clients = 2;
  const unsigned ColdRequests = Quick ? 4 : 8;
  const unsigned WarmRequests = Quick ? 20 : 40;
  std::string Source = generate(Workers, SectionsPer, Chains, Depth, 0);
  std::string Edited = generate(Workers, SectionsPer, Chains, Depth, 1);

  ServerOptions Opts;
  Opts.UnixSocketPath =
      "/tmp/lockin_bench_" + std::to_string(::getpid()) + ".sock";
  Opts.Workers = 2;
  Opts.QueueDepth = Clients * 2;
  std::string Err;

  std::printf("bench_service: %u workers x %u sections, %u chains, "
              "depth %u (%zu source bytes)\n",
              Workers, SectionsPer, Chains, Depth, Source.size());

  // Two daemons, one process: the measured daemon (telemetry on, the
  // default) and a baseline with request telemetry off (no contexts, no
  // phase spans, no flight records). The warm legs run as alternating
  // batches against both so allocator warm-up and machine noise hit
  // them evenly — a sequential A-then-B comparison systematically
  // flatters whichever leg runs second.
  ServerOptions OffOpts = Opts;
  OffOpts.UnixSocketPath += ".off";
  OffOpts.Telemetry = false;
  Server OffDaemon(OffOpts);
  if (!OffDaemon.start(Err)) {
    std::fprintf(stderr, "bench_service: %s\n", Err.c_str());
    return 1;
  }
  std::thread OffRunner([&OffDaemon] { OffDaemon.run(); });

  Server Daemon(Opts);
  if (!Daemon.start(Err)) {
    std::fprintf(stderr, "bench_service: %s\n", Err.c_str());
    return 1;
  }
  std::thread Runner([&Daemon] { Daemon.run(); });

  // Cold: forced full inference on every request.
  PhaseStats Cold = runPhase(Opts.UnixSocketPath, Source, /*Clients=*/1,
                             ColdRequests, /*Force=*/true);
  std::printf("cold: %zu requests, p50 %.1f ms, p99 %.1f ms, %.1f req/s\n",
              Cold.LatenciesMs.size(), Cold.quantile(0.5),
              Cold.quantile(0.99), Cold.throughput());
  // Prime the baseline daemon with the same forced-cold sequence so
  // both caches (and both daemons' first-touch costs) are paid before
  // the measured warm legs.
  runPhase(OffOpts.UnixSocketPath, Source, /*Clients=*/1, ColdRequests,
           /*Force=*/true);

  // Warm: the cold phases primed every section summary. Alternate
  // batches between the two daemons, flipping the order each rep.
  PhaseStats Warm, WarmOff;
  const unsigned WarmReps = 5;
  const unsigned WarmBatch = std::max(1u, WarmRequests / WarmReps);
  auto Merge = [](PhaseStats &Into, const PhaseStats &From) {
    Into.LatenciesMs.insert(Into.LatenciesMs.end(),
                            From.LatenciesMs.begin(),
                            From.LatenciesMs.end());
    Into.WallSeconds += From.WallSeconds;
    Into.Errors += From.Errors;
    if (Into.Report.empty())
      Into.Report = From.Report;
  };
  for (unsigned Rep = 0; Rep < WarmReps; ++Rep) {
    auto OnBatch = [&] {
      Merge(Warm, runPhase(Opts.UnixSocketPath, Source, /*Clients=*/1,
                           WarmBatch, /*Force=*/false));
    };
    auto OffBatch = [&] {
      Merge(WarmOff, runPhase(OffOpts.UnixSocketPath, Source,
                              /*Clients=*/1, WarmBatch, /*Force=*/false));
    };
    if (Rep % 2) {
      OnBatch();
      OffBatch();
    } else {
      OffBatch();
      OnBatch();
    }
  }
  OffDaemon.requestShutdown();
  OffRunner.join();
  std::printf("warm: %zu requests, p50 %.1f ms, p99 %.1f ms, %.1f req/s\n",
              Warm.LatenciesMs.size(), Warm.quantile(0.5),
              Warm.quantile(0.99), Warm.throughput());
  std::printf("warm (telemetry off): %zu requests, p50 %.1f ms, "
              "mean %.2f ms\n",
              WarmOff.LatenciesMs.size(), WarmOff.quantile(0.5),
              WarmOff.mean());

  // Concurrent warm: closed loop with as many clients as daemon workers.
  PhaseStats WarmConc = runPhase(Opts.UnixSocketPath, Source, Clients,
                                 WarmRequests / Clients, /*Force=*/false);
  std::printf("warm x%u clients: %zu requests, p50 %.1f ms, %.1f req/s\n",
              Clients, WarmConc.LatenciesMs.size(), WarmConc.quantile(0.5),
              WarmConc.throughput());

  // Edit: one constant flipped in worker0 — only its SCC cone re-runs.
  Json EditResponse;
  double EditMs = 0;
  {
    Client Conn;
    if (!Conn.connectUnix(Opts.UnixSocketPath, Err)) {
      std::fprintf(stderr, "bench_service: %s\n", Err.c_str());
      return 1;
    }
    auto T0 = std::chrono::steady_clock::now();
    if (!Conn.analyze("bench.atom", Edited, EditResponse, Err)) {
      std::fprintf(stderr, "bench_service: edit analyze: %s\n", Err.c_str());
      return 1;
    }
    EditMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - T0)
                 .count();
  }
  std::printf("edit: %.1f ms, %llu dirty functions, hits %llu, misses %llu\n",
              EditMs,
              static_cast<unsigned long long>(
                  EditResponse.getUint("dirtyFunctions", 0)),
              static_cast<unsigned long long>(
                  EditResponse.getUint("cacheHits", 0)),
              static_cast<unsigned long long>(
                  EditResponse.getUint("cacheMisses", 0)));

  // Per-phase breakdown from the daemon's own live telemetry, scraped
  // before the drain (the exact path a dashboard would use).
  Json Phases = scrapePhaseBreakdown(Opts.UnixSocketPath);

  Daemon.requestShutdown();
  Runner.join();

  // ---- Open-loop sweep: latency vs offered load on a fresh daemon ----
  // A light unit (warm hits dominated by parse + fingerprint) so the
  // sweep probes the service tier — event loops, admission control,
  // queue — rather than raw inference cost.
  ServerOptions LoadOpts;
  LoadOpts.UnixSocketPath = Opts.UnixSocketPath + ".load";
  LoadOpts.Workers = 2;
  LoadOpts.EventLoops = 2;
  LoadOpts.QueueDepth = 64;
  LoadOpts.RequestTimeoutMs = 1000; // deep-backlog requests are shed
  Server LoadDaemon(LoadOpts);
  if (!LoadDaemon.start(Err)) {
    std::fprintf(stderr, "bench_service: %s\n", Err.c_str());
    return 1;
  }
  std::thread LoadRunner([&LoadDaemon] { LoadDaemon.run(); });

  std::string LoadSource = generate(2, 2, 2, 2, 0);
  // Calibrate: warm closed-loop saturation with a few clients (the first
  // requests prime the cache; their cold cost is amortized away by the
  // request count).
  PhaseStats Calib = runPhase(LoadOpts.UnixSocketPath, LoadSource,
                              /*Clients=*/4, Quick ? 60 : 200,
                              /*Force=*/false);
  double SatRps = Calib.throughput();
  const double BaselineRps = 9.0; // thread-per-connection-era warm rps
  std::printf("open-loop calibration: saturation %.0f req/s "
              "(%.0fx the %.0f rps thread-per-connection baseline)\n",
              SatRps, SatRps / BaselineRps, BaselineRps);

  Json LoadReq = Json::object();
  LoadReq.set("op", Json::string("analyze"));
  LoadReq.set("unit", Json::string("bench.atom"));
  LoadReq.set("source", Json::string(LoadSource));
  LoadReq.set("jobs", Json::integer(1));
  std::string LoadWire;
  appendFrame(LoadWire, LoadReq.str());

  const unsigned LoadConns = 8;
  std::vector<double> Fractions =
      Quick ? std::vector<double>{0.5, 1.0, 2.0}
            : std::vector<double>{0.25, 0.5, 0.75, 1.0, 1.5, 2.0};
  std::vector<OpenLoopResult> Sweep;
  for (double Frac : Fractions) {
    double Rate = std::max(1.0, SatRps * Frac);
    double Secs = std::min(Quick ? 1.0 : 2.5, 20000.0 / Rate);
    OpenLoopResult R =
        runOpenLoop(LoadOpts.UnixSocketPath, LoadWire, Rate, Secs,
                    LoadConns);
    R.Fraction = Frac;
    std::printf("open-loop %.2fx (%.0f req/s): ok %u, overloaded %u, "
                "shed %u, errors %u, accepted p50 %.1f ms p99 %.1f ms\n",
                Frac, Rate, R.Ok, R.Overloaded, R.Shed, R.Errors,
                R.quantile(0.5), R.quantile(0.99));
    Sweep.push_back(std::move(R));
  }
  LoadDaemon.requestShutdown();
  LoadRunner.join();

  bool Identical = !Cold.Report.empty() && Cold.Report == Warm.Report;
  double Speedup = Warm.mean() > 0 ? Cold.mean() / Warm.mean() : 0;
  std::printf("speedup (mean cold / mean warm): %.1fx, identical: %s\n",
              Speedup, Identical ? "true" : "false");
  double OverheadPct =
      WarmOff.mean() > 0 ? (Warm.mean() / WarmOff.mean() - 1.0) * 100.0 : 0;
  std::printf("telemetry overhead (warm mean on vs off): %+.1f%%\n",
              OverheadPct);

  Json Root = Json::object();
  Root.set("schema", Json::integer(3));
  Json Config = Json::object();
  Config.set("quick", Json::boolean(Quick));
  Config.set("workers", Json::integer(Workers));
  Config.set("sections_per_worker", Json::integer(SectionsPer));
  Config.set("chains", Json::integer(Chains));
  Config.set("depth", Json::integer(Depth));
  Config.set("clients", Json::integer(Clients));
  Config.set("source_bytes", Json::integer(Source.size()));
  Config.set("daemon_workers", Json::integer(Opts.Workers));
  Root.set("config", std::move(Config));
  Root.set("cold", phaseJson(Cold));
  Root.set("warm", phaseJson(Warm));
  Root.set("warm_concurrent", phaseJson(WarmConc));
  Json Edit = Json::object();
  Edit.set("latency_ms", Json::number(EditMs));
  Edit.set("dirty_functions",
           Json::integer(EditResponse.getUint("dirtyFunctions", 0)));
  Edit.set("cache_hits", Json::integer(EditResponse.getUint("cacheHits", 0)));
  Edit.set("cache_misses",
           Json::integer(EditResponse.getUint("cacheMisses", 0)));
  Root.set("edit", std::move(Edit));
  Json OpenLoop = Json::object();
  OpenLoop.set("saturation_rps", Json::number(SatRps));
  OpenLoop.set("baseline_rps", Json::number(BaselineRps));
  OpenLoop.set("speedup_vs_baseline",
               Json::number(BaselineRps > 0 ? SatRps / BaselineRps : 0));
  OpenLoop.set("connections", Json::integer(LoadConns));
  OpenLoop.set("daemon_event_loops", Json::integer(LoadOpts.EventLoops));
  OpenLoop.set("daemon_workers", Json::integer(LoadOpts.Workers));
  OpenLoop.set("queue_depth", Json::integer(LoadOpts.QueueDepth));
  Json Rates = Json::array();
  for (const OpenLoopResult &R : Sweep)
    Rates.push(openLoopRateJson(R));
  OpenLoop.set("rates", std::move(Rates));
  Root.set("open_loop", std::move(OpenLoop));
  Root.set("phases", std::move(Phases));
  Json Telemetry = Json::object();
  Telemetry.set("warm_off_mean_ms", Json::number(WarmOff.mean()));
  Telemetry.set("warm_on_mean_ms", Json::number(Warm.mean()));
  Telemetry.set("overhead_pct", Json::number(OverheadPct));
  Root.set("telemetry", std::move(Telemetry));
  Root.set("speedup", Json::number(Speedup));
  Root.set("identical", Json::boolean(Identical));

  std::ofstream Out(OutPath);
  Out << Root.str() << "\n";
  if (!Out) {
    std::fprintf(stderr, "bench_service: cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());

  if (Cold.Errors || Warm.Errors || WarmConc.Errors || WarmOff.Errors ||
      !Identical) {
    std::fprintf(stderr, "bench_service: FAILED (errors or divergence)\n");
    return 1;
  }
  return 0;
}
