//===--- bench_table1.cpp - Table 1: program size and analysis time ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 1 of the paper: program size (KLoC), number of atomic
/// sections, and whole-program analysis time at k = 0 and k = 9. The
/// SPECint2000 rows are reproduced with deterministic synthetic programs
/// of the same size (see DESIGN.md); the STAMP-like and micro rows use
/// the toy-language benchmark implementations.
///
/// Each program is parsed/lowered once; the timed region is the analysis
/// proper (call graph + points-to + SCC-scheduled inference), measured at
/// --jobs 1/2/4/8 to show the parallel schedule. A final column times the
/// concurrency checker (check-mhp .. check-report) at k=9 on top of a
/// precomputed inference — the incremental cost of --check.
///
/// Environment:
///   LOCKIN_TABLE1_SCALE  shrink the synthetic programs (e.g. 0.2)
///   LOCKIN_TABLE1_JSON   also write the measurements as JSON to this path
///
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "check/Check.h"
#include "driver/Compiler.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "workloads/ToyPrograms.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace lockin;
using namespace lockin::workloads;

namespace {

constexpr unsigned JobCounts[] = {1, 2, 4, 8};
constexpr unsigned KValues[] = {0, 9};

double kloc(const std::string &Source) {
  size_t Lines = 1;
  for (char C : Source)
    if (C == '\n')
      ++Lines;
  return static_cast<double>(Lines) / 1000.0;
}

struct Prepared {
  std::unique_ptr<Program> Ast;
  std::unique_ptr<ir::IrModule> Module;
};

/// Parse+sema+lower once per row; the timed analysis runs on the module.
Prepared prepare(const std::string &Source) {
  Prepared Out;
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  Out.Ast = P.parseProgram();
  if (!Out.Ast || !runSema(*Out.Ast, Diags)) {
    std::fprintf(stderr, "internal error: benchmark program invalid:\n%s\n",
                 Diags.str().c_str());
    std::exit(1);
  }
  Out.Module = lowerProgram(*Out.Ast, Diags);
  if (!Out.Module || Diags.hasErrors()) {
    std::fprintf(stderr, "internal error: lowering failed:\n%s\n",
                 Diags.str().c_str());
    std::exit(1);
  }
  return Out;
}

/// The paper's "analysis time": everything after parsing — call graph,
/// points-to, and the lock inference itself. Best of three runs, to damp
/// scheduler noise.
double analysisSeconds(const ir::IrModule &Module, unsigned K,
                       unsigned Jobs) {
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    analysis::CallGraph CG(Module);
    PointsToAnalysis PT(Module);
    InferenceOptions Options;
    Options.K = K;
    Options.Jobs = Jobs;
    LockInference Inference(Module, PT, CG, Options);
    InferenceResult Result = Inference.run();
    auto End = std::chrono::steady_clock::now();
    (void)Result;
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Rep == 0 || Seconds < Best)
      Best = Seconds;
  }
  return Best;
}

struct Measurement {
  std::string Name;
  double Kloc = 0;
  unsigned Sections = 0;
  // Seconds[k index][jobs index].
  double Seconds[2][4] = {};
  // The concurrency checker (check-mhp .. check-report) at k=9, on top
  // of an already-computed inference; best of three.
  double CheckSeconds = 0;
  unsigned CheckFindings = 0;
  uint64_t CheckMhpPairs = 0;
};

/// Checker wall time: the analyses it consumes (call graph, points-to,
/// inference) are computed once outside the clock, so this measures the
/// four check passes themselves — the incremental cost of --check.
void checkerSeconds(const ir::IrModule &Module, unsigned K,
                    Measurement &M) {
  analysis::CallGraph CG(Module);
  PointsToAnalysis PT(Module);
  InferenceOptions Options;
  Options.K = K;
  Options.Jobs = 1;
  LockInference Inference(Module, PT, CG, Options);
  InferenceResult Result = Inference.run();
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    check::CheckReport Report =
        check::Checker::runAll(Module, CG, PT, Result, K);
    auto End = std::chrono::steady_clock::now();
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Rep == 0 || Seconds < M.CheckSeconds)
      M.CheckSeconds = Seconds;
    M.CheckFindings = Report.Stats.Findings;
    M.CheckMhpPairs = Report.Stats.MhpPairs;
  }
}

struct ObsOverhead {
  bool Measured = false;
  std::string Program;
  double SecondsOff = 0;
  double SecondsOn = 0;
  double OverheadPct = 0;
};

void writeJson(const char *Path, double Scale,
               const std::vector<Measurement> &Rows,
               const ObsOverhead &Obs) {
  std::FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path);
    return;
  }
  std::fprintf(Out, "{\n  \"scale\": %g,\n  \"rows\": [\n", Scale);
  for (size_t I = 0; I < Rows.size(); ++I) {
    const Measurement &R = Rows[I];
    std::fprintf(Out,
                 "    {\"name\": \"%s\", \"kloc\": %.1f, \"sections\": %u",
                 R.Name.c_str(), R.Kloc, R.Sections);
    for (size_t KI = 0; KI < 2; ++KI) {
      std::fprintf(Out, ",\n     \"k%u\": {", KValues[KI]);
      for (size_t JI = 0; JI < 4; ++JI)
        std::fprintf(Out, "%s\"jobs%u\": %.4f", JI ? ", " : "",
                     JobCounts[JI], R.Seconds[KI][JI]);
      std::fprintf(Out, "}");
    }
    std::fprintf(Out,
                 ",\n     \"check\": {\"seconds\": %.4f, \"findings\": %u, "
                 "\"mhp_pairs\": %llu}",
                 R.CheckSeconds, R.CheckFindings,
                 static_cast<unsigned long long>(R.CheckMhpPairs));
    std::fprintf(Out, "}%s\n", I + 1 < Rows.size() ? "," : "");
  }
  std::fprintf(Out, "  ]%s\n", Obs.Measured ? "," : "");
  if (Obs.Measured)
    std::fprintf(Out,
                 "  \"obs_overhead\": {\"program\": \"%s\", "
                 "\"seconds_off\": %.4f, \"seconds_on\": %.4f, "
                 "\"overhead_pct\": %.2f}\n",
                 Obs.Program.c_str(), Obs.SecondsOff, Obs.SecondsOn,
                 Obs.OverheadPct);
  std::fprintf(Out, "}\n");
  std::fclose(Out);
}

struct Row {
  std::string Name;
  std::string Source;
};

/// Whole-pipeline (parse..inference) wall time with the event tracer
/// armed or dormant; best of three. Used by --with-obs to report the
/// observability layer's overhead on the compile path.
double compileSeconds(const std::string &Source, bool ObsOn) {
  obs::tracer().setEnabled(ObsOn);
  double Best = 0;
  for (int Rep = 0; Rep < 3; ++Rep) {
    auto Start = std::chrono::steady_clock::now();
    std::unique_ptr<Compilation> C = compile(Source, CompileOptions());
    auto End = std::chrono::steady_clock::now();
    if (!C->ok()) {
      std::fprintf(stderr, "internal error: benchmark program invalid\n");
      std::exit(1);
    }
    double Seconds = std::chrono::duration<double>(End - Start).count();
    if (Rep == 0 || Seconds < Best)
      Best = Seconds;
  }
  obs::tracer().setEnabled(false);
  obs::tracer().clear();
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  bool WithObs = false;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--with-obs") == 0) {
      WithObs = true;
    } else {
      std::fprintf(stderr, "bench_table1: unknown option '%s'\n", Argv[I]);
      std::fprintf(stderr, "usage: bench_table1 [--with-obs]\n");
      return 2;
    }
  }

  double Scale = 1.0;
  if (const char *Env = std::getenv("LOCKIN_TABLE1_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;

  // The SPEC rows: paper sizes in KLoC.
  struct SpecRow {
    const char *Name;
    double Kloc;
  };
  const SpecRow SpecRows[] = {
      {"gzip", 10.3},   {"parser", 14.2}, {"vpr", 20.4}, {"crafty", 21.2},
      {"twolf", 23.1},  {"gap", 71.4},    {"vortex", 71.5},
  };

  std::vector<Row> Rows;
  uint64_t Seed = 1;
  for (const SpecRow &S : SpecRows) {
    unsigned Target =
        static_cast<unsigned>(S.Kloc * Scale + 0.5);
    if (Target == 0)
      Target = 1;
    Rows.push_back({S.Name, generateSyntheticSpec(Target, Seed++)});
  }
  for (const ToyProgram &P : concurrentToyPrograms())
    Rows.push_back({P.Name, P.Source});

  std::printf("Table 1: program size and analysis time (seconds)\n");
  std::printf("(SPEC rows are synthetic stand-ins at %.0f%% scale; see "
              "DESIGN.md)\n\n",
              Scale * 100.0);
  std::printf("%-12s %8s %8s | %10s %10s %10s | %10s %10s %10s | %10s\n",
              "Program", "Size", "Atomic", "k=0 j=1", "k=0 j=4",
              "k=0 j=8", "k=9 j=1", "k=9 j=4", "k=9 j=8", "check k=9");
  std::printf("%-12s %8s %8s |\n", "", "(Kloc)", "sections");

  std::vector<Measurement> Results;
  for (const Row &R : Rows) {
    Prepared P = prepare(R.Source);
    Measurement M;
    M.Name = R.Name;
    M.Kloc = kloc(R.Source);
    M.Sections = P.Module->numAtomicSections();
    for (size_t KI = 0; KI < 2; ++KI)
      for (size_t JI = 0; JI < 4; ++JI)
        M.Seconds[KI][JI] =
            analysisSeconds(*P.Module, KValues[KI], JobCounts[JI]);
    checkerSeconds(*P.Module, KValues[1], M);
    std::printf("%-12s %8.1f %8u | %10.3f %10.3f %10.3f | %10.3f %10.3f "
                "%10.3f | %10.4f\n",
                M.Name.c_str(), M.Kloc, M.Sections, M.Seconds[0][0],
                M.Seconds[0][2], M.Seconds[0][3], M.Seconds[1][0],
                M.Seconds[1][2], M.Seconds[1][3], M.CheckSeconds);
    std::fflush(stdout);
    Results.push_back(std::move(M));
  }

  ObsOverhead Obs;
  if (WithObs) {
    // Pipeline overhead of the tracer: the largest toy program through
    // the full compile (parse..inference) with the tracer armed vs off.
    const Row &Target = Rows.back();
    Obs.Measured = true;
    Obs.Program = Target.Name;
    Obs.SecondsOff = compileSeconds(Target.Source, false);
    Obs.SecondsOn = compileSeconds(Target.Source, true);
    Obs.OverheadPct = (Obs.SecondsOn / Obs.SecondsOff - 1.0) * 100.0;
    std::printf("\nobs overhead (%s, full compile): off %.4fs, on %.4fs "
                "(%+.2f%%)%s\n",
                Obs.Program.c_str(), Obs.SecondsOff, Obs.SecondsOn,
                Obs.OverheadPct,
                obs::kEnabled ? "" : " [built with LOCKIN_OBS=OFF]");
  }

  if (const char *JsonPath = std::getenv("LOCKIN_TABLE1_JSON"))
    writeJson(JsonPath, Scale, Results, Obs);
  return 0;
}
