//===--- bench_table1.cpp - Table 1: program size and analysis time ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 1 of the paper: program size (KLoC), number of atomic
/// sections, and whole-program analysis time at k = 0 and k = 9. The
/// SPECint2000 rows are reproduced with deterministic synthetic programs
/// of the same size (see DESIGN.md); the STAMP-like and micro rows use
/// the toy-language benchmark implementations.
///
/// Set LOCKIN_TABLE1_SCALE (e.g. 0.2) to shrink the synthetic programs
/// for a quick run.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "workloads/ToyPrograms.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

using namespace lockin;
using namespace lockin::workloads;

namespace {

double kloc(const std::string &Source) {
  size_t Lines = 1;
  for (char C : Source)
    if (C == '\n')
      ++Lines;
  return static_cast<double>(Lines) / 1000.0;
}

/// Parse+sema+lower once, then time points-to + inference at \p K
/// (matching the paper's "analysis time", which excludes parsing).
double analysisSeconds(const std::string &Source, unsigned K,
                       unsigned &SectionsOut) {
  DiagnosticEngine Diags;
  Parser P(Source, Diags);
  auto Prog = P.parseProgram();
  if (!Prog || !runSema(*Prog, Diags)) {
    std::fprintf(stderr, "internal error: benchmark program invalid:\n%s\n",
                 Diags.str().c_str());
    std::exit(1);
  }
  auto Module = lowerProgram(*Prog, Diags);
  SectionsOut = Module->numAtomicSections();

  auto Start = std::chrono::steady_clock::now();
  PointsToAnalysis PT(*Module);
  InferenceOptions Options;
  Options.K = K;
  LockInference Inference(*Module, PT, Options);
  InferenceResult Result = Inference.run();
  auto End = std::chrono::steady_clock::now();
  (void)Result;
  return std::chrono::duration<double>(End - Start).count();
}

struct Row {
  std::string Name;
  std::string Source;
};

} // namespace

int main() {
  double Scale = 1.0;
  if (const char *Env = std::getenv("LOCKIN_TABLE1_SCALE"))
    Scale = std::atof(Env);
  if (Scale <= 0)
    Scale = 1.0;

  // The SPEC rows: paper sizes in KLoC.
  struct SpecRow {
    const char *Name;
    double Kloc;
  };
  const SpecRow SpecRows[] = {
      {"gzip", 10.3},   {"parser", 14.2}, {"vpr", 20.4}, {"crafty", 21.2},
      {"twolf", 23.1},  {"gap", 71.4},    {"vortex", 71.5},
  };

  std::vector<Row> Rows;
  uint64_t Seed = 1;
  for (const SpecRow &S : SpecRows) {
    unsigned Target =
        static_cast<unsigned>(S.Kloc * Scale + 0.5);
    if (Target == 0)
      Target = 1;
    Rows.push_back({S.Name, generateSyntheticSpec(Target, Seed++)});
  }
  for (const ToyProgram &P : concurrentToyPrograms())
    Rows.push_back({P.Name, P.Source});

  std::printf("Table 1: program size and analysis time (seconds)\n");
  std::printf("(SPEC rows are synthetic stand-ins at %.0f%% scale; see "
              "DESIGN.md)\n\n",
              Scale * 100.0);
  std::printf("%-12s %8s %8s %12s %12s\n", "Program", "Size", "Atomic",
              "k=0 (s)", "k=9 (s)");
  std::printf("%-12s %8s %8s %12s %12s\n", "", "(Kloc)", "sections", "",
              "");
  for (const Row &R : Rows) {
    unsigned Sections = 0;
    double T0 = analysisSeconds(R.Source, 0, Sections);
    double T9 = analysisSeconds(R.Source, 9, Sections);
    std::printf("%-12s %8.1f %8u %12.3f %12.3f\n", R.Name.c_str(),
                kloc(R.Source), Sections, T0, T9);
    std::fflush(stdout);
  }
  return 0;
}
