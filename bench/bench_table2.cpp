//===--- bench_table2.cpp - Table 2: execution times with 8 threads ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Table 2: execution time of every concurrent benchmark under
/// the four configurations (Global, Coarse k=0, Fine+Coarse k=9, TL2 STM)
/// at 8 threads. Times are simulated makespans (in millions of abstract
/// cycles) from the discrete-event executor, because this host may not
/// have 8 physical cores (see DESIGN.md's substitution table); the
/// *relative* ordering per row is the reproduction target. The real
/// multi-threaded implementations are exercised by tests/test_workloads.
///
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "workloads/SimWorkloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace lockin::workloads;
using namespace lockin::workloads::sim;

namespace {

void printRow(const char *Name, SimOutcome G, SimOutcome C, SimOutcome F,
              SimOutcome S) {
  std::printf("%-18s %10.2f %10.2f %10.2f %10.2f   (STM aborts: %llu)\n",
              Name, G.Makespan / 1e6, C.Makespan / 1e6, F.Makespan / 1e6,
              S.Makespan / 1e6,
              static_cast<unsigned long long>(S.Aborts));
}

} // namespace

int main(int Argc, char **Argv) {
  // --trace-out=FILE drains the simulated op/wait/abort spans into a
  // Chrome trace (pid 2, timestamps in abstract cycles).
  const char *TracePath = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--trace-out=", 12) == 0 && Argv[I][12]) {
      TracePath = Argv[I] + 12;
    } else {
      std::fprintf(stderr, "bench_table2: unknown option '%s'\n", Argv[I]);
      std::fprintf(stderr, "usage: bench_table2 [--trace-out=FILE]\n");
      return 2;
    }
  }
  if (TracePath)
    lockin::obs::tracer().setEnabled(true);

  constexpr unsigned Threads = 8;
  std::printf("Table 2: simulated execution time with %u threads "
              "(millions of cycles)\n\n", Threads);
  std::printf("%-18s %10s %10s %10s %10s\n", "Program", "Global",
              "Coarse", "Fine+Crs", "STM");
  std::printf("%-18s %10s %10s %10s %10s\n", "", "", "(k=0)", "(k=9)",
              "(TL2)");

  for (StampKind K : {StampKind::Genome, StampKind::Vacation,
                      StampKind::Kmeans, StampKind::Bayes,
                      StampKind::Labyrinth}) {
    printRow(stampKindName(K),
             runStampSim(K, LockConfig::Global, Threads),
             runStampSim(K, LockConfig::Coarse, Threads),
             runStampSim(K, LockConfig::Fine, Threads),
             runStampSim(K, LockConfig::Stm, Threads));
  }
  for (MicroKind K : {MicroKind::Hashtable, MicroKind::RbTree,
                      MicroKind::List, MicroKind::Hashtable2,
                      MicroKind::TH}) {
    for (bool High : {true, false}) {
      std::string Name = std::string(microKindName(K)) +
                         (High ? "-high" : "-low");
      printRow(Name.c_str(),
               runMicroSim(K, LockConfig::Global, Threads, High),
               runMicroSim(K, LockConfig::Coarse, Threads, High),
               runMicroSim(K, LockConfig::Fine, Threads, High),
               runMicroSim(K, LockConfig::Stm, Threads, High));
    }
  }

  std::printf("\nExpected shapes (paper, §6.3): Global ≈ Coarse on the "
              "STAMP rows; STM loses badly\non vacation (abort storm) and "
              "wins on labyrinth; read/write coarse locks ≈ 2x over\n"
              "Global on the -low micro rows; fine locks halve "
              "hashtable-2-high; TH's disjoint\nregions give Coarse a "
              "2-4x win over Global.\n");

  if (TracePath) {
    std::ofstream Out(TracePath);
    if (!Out) {
      std::fprintf(stderr, "bench_table2: cannot write %s\n", TracePath);
      return 1;
    }
    lockin::obs::tracer().writeChromeJson(Out);
    std::printf("wrote %s\n", TracePath);
  }
  return 0;
}
