file(REMOVE_RECURSE
  "CMakeFiles/example_hashtable_fine.dir/hashtable_fine.cpp.o"
  "CMakeFiles/example_hashtable_fine.dir/hashtable_fine.cpp.o.d"
  "example_hashtable_fine"
  "example_hashtable_fine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hashtable_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
