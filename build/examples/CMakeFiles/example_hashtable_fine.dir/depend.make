# Empty dependencies file for example_hashtable_fine.
# This may be replaced when dependencies are built.
