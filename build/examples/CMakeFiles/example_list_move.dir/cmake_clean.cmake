file(REMOVE_RECURSE
  "CMakeFiles/example_list_move.dir/list_move.cpp.o"
  "CMakeFiles/example_list_move.dir/list_move.cpp.o.d"
  "example_list_move"
  "example_list_move.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_list_move.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
