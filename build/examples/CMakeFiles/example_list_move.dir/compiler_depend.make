# Empty compiler generated dependencies file for example_list_move.
# This may be replaced when dependencies are built.
