file(REMOVE_RECURSE
  "CMakeFiles/example_stm_vs_locks.dir/stm_vs_locks.cpp.o"
  "CMakeFiles/example_stm_vs_locks.dir/stm_vs_locks.cpp.o.d"
  "example_stm_vs_locks"
  "example_stm_vs_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_stm_vs_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
