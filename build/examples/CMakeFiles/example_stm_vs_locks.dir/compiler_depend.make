# Empty compiler generated dependencies file for example_stm_vs_locks.
# This may be replaced when dependencies are built.
