file(REMOVE_RECURSE
  "CMakeFiles/lockin_driver.dir/Compiler.cpp.o"
  "CMakeFiles/lockin_driver.dir/Compiler.cpp.o.d"
  "liblockin_driver.a"
  "liblockin_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
