file(REMOVE_RECURSE
  "liblockin_driver.a"
)
