# Empty compiler generated dependencies file for lockin_driver.
# This may be replaced when dependencies are built.
