file(REMOVE_RECURSE
  "CMakeFiles/lockinfer.dir/LockInferTool.cpp.o"
  "CMakeFiles/lockinfer.dir/LockInferTool.cpp.o.d"
  "lockinfer"
  "lockinfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockinfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
