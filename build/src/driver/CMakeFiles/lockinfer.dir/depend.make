# Empty dependencies file for lockinfer.
# This may be replaced when dependencies are built.
