file(REMOVE_RECURSE
  "CMakeFiles/lockin_infer.dir/Inference.cpp.o"
  "CMakeFiles/lockin_infer.dir/Inference.cpp.o.d"
  "CMakeFiles/lockin_infer.dir/LockSet.cpp.o"
  "CMakeFiles/lockin_infer.dir/LockSet.cpp.o.d"
  "CMakeFiles/lockin_infer.dir/Transfer.cpp.o"
  "CMakeFiles/lockin_infer.dir/Transfer.cpp.o.d"
  "liblockin_infer.a"
  "liblockin_infer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_infer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
