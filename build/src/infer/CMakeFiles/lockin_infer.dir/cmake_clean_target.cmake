file(REMOVE_RECURSE
  "liblockin_infer.a"
)
