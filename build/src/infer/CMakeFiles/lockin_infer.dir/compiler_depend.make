# Empty compiler generated dependencies file for lockin_infer.
# This may be replaced when dependencies are built.
