file(REMOVE_RECURSE
  "CMakeFiles/lockin_interp.dir/Interp.cpp.o"
  "CMakeFiles/lockin_interp.dir/Interp.cpp.o.d"
  "liblockin_interp.a"
  "liblockin_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
