file(REMOVE_RECURSE
  "liblockin_interp.a"
)
