# Empty dependencies file for lockin_interp.
# This may be replaced when dependencies are built.
