file(REMOVE_RECURSE
  "CMakeFiles/lockin_ir.dir/IrPrinter.cpp.o"
  "CMakeFiles/lockin_ir.dir/IrPrinter.cpp.o.d"
  "CMakeFiles/lockin_ir.dir/Lowering.cpp.o"
  "CMakeFiles/lockin_ir.dir/Lowering.cpp.o.d"
  "liblockin_ir.a"
  "liblockin_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
