file(REMOVE_RECURSE
  "liblockin_ir.a"
)
