# Empty compiler generated dependencies file for lockin_ir.
# This may be replaced when dependencies are built.
