file(REMOVE_RECURSE
  "CMakeFiles/lockin_lang.dir/AstPrinter.cpp.o"
  "CMakeFiles/lockin_lang.dir/AstPrinter.cpp.o.d"
  "CMakeFiles/lockin_lang.dir/Lexer.cpp.o"
  "CMakeFiles/lockin_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/lockin_lang.dir/Parser.cpp.o"
  "CMakeFiles/lockin_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/lockin_lang.dir/Sema.cpp.o"
  "CMakeFiles/lockin_lang.dir/Sema.cpp.o.d"
  "CMakeFiles/lockin_lang.dir/Type.cpp.o"
  "CMakeFiles/lockin_lang.dir/Type.cpp.o.d"
  "liblockin_lang.a"
  "liblockin_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
