file(REMOVE_RECURSE
  "liblockin_lang.a"
)
