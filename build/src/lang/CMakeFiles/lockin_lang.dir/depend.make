# Empty dependencies file for lockin_lang.
# This may be replaced when dependencies are built.
