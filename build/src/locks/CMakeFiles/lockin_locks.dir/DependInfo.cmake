
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/locks/ConcreteLock.cpp" "src/locks/CMakeFiles/lockin_locks.dir/ConcreteLock.cpp.o" "gcc" "src/locks/CMakeFiles/lockin_locks.dir/ConcreteLock.cpp.o.d"
  "/root/repo/src/locks/LockExpr.cpp" "src/locks/CMakeFiles/lockin_locks.dir/LockExpr.cpp.o" "gcc" "src/locks/CMakeFiles/lockin_locks.dir/LockExpr.cpp.o.d"
  "/root/repo/src/locks/LockName.cpp" "src/locks/CMakeFiles/lockin_locks.dir/LockName.cpp.o" "gcc" "src/locks/CMakeFiles/lockin_locks.dir/LockName.cpp.o.d"
  "/root/repo/src/locks/Scheme.cpp" "src/locks/CMakeFiles/lockin_locks.dir/Scheme.cpp.o" "gcc" "src/locks/CMakeFiles/lockin_locks.dir/Scheme.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/lockin_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pointsto/CMakeFiles/lockin_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/lockin_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lockin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
