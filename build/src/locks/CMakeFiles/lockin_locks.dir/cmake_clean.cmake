file(REMOVE_RECURSE
  "CMakeFiles/lockin_locks.dir/ConcreteLock.cpp.o"
  "CMakeFiles/lockin_locks.dir/ConcreteLock.cpp.o.d"
  "CMakeFiles/lockin_locks.dir/LockExpr.cpp.o"
  "CMakeFiles/lockin_locks.dir/LockExpr.cpp.o.d"
  "CMakeFiles/lockin_locks.dir/LockName.cpp.o"
  "CMakeFiles/lockin_locks.dir/LockName.cpp.o.d"
  "CMakeFiles/lockin_locks.dir/Scheme.cpp.o"
  "CMakeFiles/lockin_locks.dir/Scheme.cpp.o.d"
  "liblockin_locks.a"
  "liblockin_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
