file(REMOVE_RECURSE
  "liblockin_locks.a"
)
