# Empty dependencies file for lockin_locks.
# This may be replaced when dependencies are built.
