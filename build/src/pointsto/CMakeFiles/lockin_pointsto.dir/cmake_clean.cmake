file(REMOVE_RECURSE
  "CMakeFiles/lockin_pointsto.dir/Steensgaard.cpp.o"
  "CMakeFiles/lockin_pointsto.dir/Steensgaard.cpp.o.d"
  "liblockin_pointsto.a"
  "liblockin_pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
