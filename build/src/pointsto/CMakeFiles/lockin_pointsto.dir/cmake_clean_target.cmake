file(REMOVE_RECURSE
  "liblockin_pointsto.a"
)
