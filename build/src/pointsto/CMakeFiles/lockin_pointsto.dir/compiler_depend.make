# Empty compiler generated dependencies file for lockin_pointsto.
# This may be replaced when dependencies are built.
