# Empty dependencies file for lockin_pointsto.
# This may be replaced when dependencies are built.
