file(REMOVE_RECURSE
  "CMakeFiles/lockin_runtime.dir/LockRuntime.cpp.o"
  "CMakeFiles/lockin_runtime.dir/LockRuntime.cpp.o.d"
  "liblockin_runtime.a"
  "liblockin_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
