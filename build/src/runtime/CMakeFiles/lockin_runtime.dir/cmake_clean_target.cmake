file(REMOVE_RECURSE
  "liblockin_runtime.a"
)
