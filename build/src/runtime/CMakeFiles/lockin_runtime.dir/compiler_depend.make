# Empty compiler generated dependencies file for lockin_runtime.
# This may be replaced when dependencies are built.
