file(REMOVE_RECURSE
  "CMakeFiles/lockin_stm.dir/Tl2.cpp.o"
  "CMakeFiles/lockin_stm.dir/Tl2.cpp.o.d"
  "liblockin_stm.a"
  "liblockin_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
