file(REMOVE_RECURSE
  "liblockin_stm.a"
)
