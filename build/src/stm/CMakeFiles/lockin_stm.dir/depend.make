# Empty dependencies file for lockin_stm.
# This may be replaced when dependencies are built.
