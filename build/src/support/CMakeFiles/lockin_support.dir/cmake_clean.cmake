file(REMOVE_RECURSE
  "CMakeFiles/lockin_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/lockin_support.dir/Diagnostics.cpp.o.d"
  "liblockin_support.a"
  "liblockin_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
