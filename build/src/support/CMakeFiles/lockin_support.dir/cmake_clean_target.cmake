file(REMOVE_RECURSE
  "liblockin_support.a"
)
