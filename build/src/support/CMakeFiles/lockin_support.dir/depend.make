# Empty dependencies file for lockin_support.
# This may be replaced when dependencies are built.
