
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/MicroBench.cpp" "src/workloads/CMakeFiles/lockin_workloads.dir/MicroBench.cpp.o" "gcc" "src/workloads/CMakeFiles/lockin_workloads.dir/MicroBench.cpp.o.d"
  "/root/repo/src/workloads/SimExec.cpp" "src/workloads/CMakeFiles/lockin_workloads.dir/SimExec.cpp.o" "gcc" "src/workloads/CMakeFiles/lockin_workloads.dir/SimExec.cpp.o.d"
  "/root/repo/src/workloads/SimWorkloads.cpp" "src/workloads/CMakeFiles/lockin_workloads.dir/SimWorkloads.cpp.o" "gcc" "src/workloads/CMakeFiles/lockin_workloads.dir/SimWorkloads.cpp.o.d"
  "/root/repo/src/workloads/Stamp.cpp" "src/workloads/CMakeFiles/lockin_workloads.dir/Stamp.cpp.o" "gcc" "src/workloads/CMakeFiles/lockin_workloads.dir/Stamp.cpp.o.d"
  "/root/repo/src/workloads/ToyPrograms.cpp" "src/workloads/CMakeFiles/lockin_workloads.dir/ToyPrograms.cpp.o" "gcc" "src/workloads/CMakeFiles/lockin_workloads.dir/ToyPrograms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/lockin_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/lockin_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lockin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
