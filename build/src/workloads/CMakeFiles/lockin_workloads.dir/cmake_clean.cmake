file(REMOVE_RECURSE
  "CMakeFiles/lockin_workloads.dir/MicroBench.cpp.o"
  "CMakeFiles/lockin_workloads.dir/MicroBench.cpp.o.d"
  "CMakeFiles/lockin_workloads.dir/SimExec.cpp.o"
  "CMakeFiles/lockin_workloads.dir/SimExec.cpp.o.d"
  "CMakeFiles/lockin_workloads.dir/SimWorkloads.cpp.o"
  "CMakeFiles/lockin_workloads.dir/SimWorkloads.cpp.o.d"
  "CMakeFiles/lockin_workloads.dir/Stamp.cpp.o"
  "CMakeFiles/lockin_workloads.dir/Stamp.cpp.o.d"
  "CMakeFiles/lockin_workloads.dir/ToyPrograms.cpp.o"
  "CMakeFiles/lockin_workloads.dir/ToyPrograms.cpp.o.d"
  "liblockin_workloads.a"
  "liblockin_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockin_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
