file(REMOVE_RECURSE
  "liblockin_workloads.a"
)
