# Empty compiler generated dependencies file for lockin_workloads.
# This may be replaced when dependencies are built.
