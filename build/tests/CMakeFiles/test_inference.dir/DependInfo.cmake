
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_inference.cpp" "tests/CMakeFiles/test_inference.dir/test_inference.cpp.o" "gcc" "tests/CMakeFiles/test_inference.dir/test_inference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/lockin_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lockin_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/lockin_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lockin_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/lockin_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/infer/CMakeFiles/lockin_infer.dir/DependInfo.cmake"
  "/root/repo/build/src/locks/CMakeFiles/lockin_locks.dir/DependInfo.cmake"
  "/root/repo/build/src/pointsto/CMakeFiles/lockin_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/lockin_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/lockin_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lockin_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
