file(REMOVE_RECURSE
  "CMakeFiles/test_pointsto.dir/test_pointsto.cpp.o"
  "CMakeFiles/test_pointsto.dir/test_pointsto.cpp.o.d"
  "test_pointsto"
  "test_pointsto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pointsto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
