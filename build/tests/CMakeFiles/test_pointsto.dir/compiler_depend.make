# Empty compiler generated dependencies file for test_pointsto.
# This may be replaced when dependencies are built.
