//===--- hashtable_fine.cpp - Fine-grain bucket locks (hashtable-2) ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// The paper's hashtable-2 story (§6.3): a put that performs a single
/// shared store gets one fine-grain lock on the bucket cell at k = 9 —
/// including the computed index expression key % 16 traced back to the
/// section entry — while the chain-traversing get keeps coarse read
/// locks. The example then uses the multi-grain runtime library directly
/// (as the compiled program would) to show two puts on different buckets
/// overlapping while a coarse reader excludes them.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "runtime/LockRuntime.h"

#include <cstdio>
#include <thread>

using namespace lockin;

static const char *SourceText = R"(
struct node { node* next; int key; int val; };
struct tab { node** buckets; };

tab* t;

void put(tab* h, int key, int val) {
  atomic {
    node* n = new node;
    n->key = key;
    n->val = val;
    int slot = key % 16;
    n->next = h->buckets[slot];
    h->buckets[slot] = n;
  }
}

int get(tab* h, int key) {
  int r = 0 - 1;
  atomic {
    int slot = key % 16;
    node* c = h->buckets[slot];
    while (c != null) {
      if (c->key == key) { r = c->val; c = null; }
      else { c = c->next; }
    }
  }
  return r;
}

void writer(int base) {
  int i = 0;
  while (i < 100) { put(t, base + i, i); i = i + 1; }
}

int main() {
  t = new tab;
  t->buckets = new node*[16];
  spawn writer(0);
  spawn writer(1000);
  int probe = get(t, 3);
  return 0;
}
)";

int main() {
  std::printf("== hashtable-2: one fine-grain lock for put ==\n\n");

  CompileOptions Options;
  Options.K = 9;
  std::unique_ptr<Compilation> C = compile(SourceText, Options);
  if (!C->ok()) {
    std::fprintf(stderr, "%s", C->diagnostics().str().c_str());
    return 1;
  }
  for (const auto &Section : C->inference().sections())
    std::printf("section #%u (%s): %s\n", Section.SectionId,
                Section.Function->name().c_str(),
                Section.Locks.str().c_str());

  std::printf("\nput's write is protected by the single fine lock\n"
              "  (*((h).buckets))[(key %% 16)]\n"
              "whose index expression is evaluated at section entry — "
              "exactly the paper's\nresult that halves hashtable-2-high "
              "in Fig. 8.\n\n");

  InterpOptions RunOptions;
  RunOptions.Mode = AtomicMode::Inferred;
  InterpResult R = C->run(RunOptions);
  std::printf("checked run: %s\n\n", R.Ok ? "ok" : R.Error.c_str());

  // The runtime library directly (what compiled code links against):
  // puts on different buckets hold region IX + distinct leaf X locks and
  // overlap; a coarse reader takes the region in S and excludes writers.
  std::printf("-- runtime library demo (intention modes) --\n");
  rt::LockRuntime RT(/*NumRegions=*/2);
  rt::ThreadLockContext Put1(RT), Put2(RT), Reader(RT);

  Put1.toAcquire(rt::LockDescriptor::fine(0, /*bucket*/ 3, true));
  Put1.acquireAll(); // root IX, region IX, leaf-3 X
  Put2.toAcquire(rt::LockDescriptor::fine(0, /*bucket*/ 7, true));
  Put2.acquireAll(); // compatible: IX + IX, different leaves
  std::printf("two puts on buckets 3 and 7 hold their locks "
              "concurrently: OK\n");

  std::thread ReaderThread([&] {
    Reader.toAcquire(rt::LockDescriptor::coarse(0, false));
    Reader.acquireAll(); // region S: must wait for both IX holders
    std::printf("coarse reader entered after both puts released\n");
    Reader.releaseAll();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::printf("coarse reader is blocked while puts are in flight "
              "(S vs IX)\n");
  Put1.releaseAll();
  Put2.releaseAll();
  ReaderThread.join();
  return 0;
}
