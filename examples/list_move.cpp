//===--- list_move.cpp - The paper's Figure 1 end to end -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces Figure 1 of the paper: the `move` function that splices one
/// list onto another. Shows how the analysis finds the multi-grain lock
/// set {&(to->head), &(from->head), E} — two fine locks plus the coarse
/// element-region lock E for the unbounded traversal — and demonstrates
/// that concurrent move(l1,l2) / move(l2,l1) runs without the deadlock
/// that per-access fine locking (Fig. 1b) would exhibit.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace lockin;

static const char *SourceText = R"(
struct elem { elem* next; int* data; };
struct list { elem* head; };

list* l1;
list* l2;

// Figure 1(a): the input program.
void move(list* from, list* to) {
  atomic {
    elem* x = to->head;
    elem* y = from->head;
    from->head = null;
    if (x == null) {
      to->head = y;
    } else {
      while (x->next != null)
        x = x->next;
      x->next = y;
    }
  }
}

int length(list* l) {
  int n = 0;
  atomic {
    elem* e = l->head;
    while (e != null) { n = n + 1; e = e->next; }
  }
  return n;
}

void pusher(list* l, int count) {
  int i = 0;
  while (i < count) {
    elem* e = new elem;
    atomic { e->next = l->head; l->head = e; }
    i = i + 1;
  }
}

void mover1() { int i = 0; while (i < 100) { move(l1, l2); i = i + 1; } }
void mover2() { int i = 0; while (i < 100) { move(l2, l1); i = i + 1; } }

int main() {
  l1 = new list;
  l2 = new list;
  pusher(l1, 20);
  pusher(l2, 20);
  spawn mover1();
  spawn mover2();
  return 0;
}
)";

int main() {
  std::printf("== Figure 1: inferring multi-grain locks for move() ==\n\n");

  std::unique_ptr<Compilation> C = compile(SourceText);
  if (!C->ok()) {
    std::fprintf(stderr, "%s", C->diagnostics().str().c_str());
    return 1;
  }

  const auto &Sections = C->inference().sections();
  std::printf("locks inferred for move()'s atomic section:\n  %s\n\n",
              Sections[0].Locks.str().c_str());
  std::printf("reading: (to).head / (from).head are the fine-grain locks "
              "&(to->head) and\n&(from->head) of Fig. 1(c); the coarse "
              "region lock is E, protecting every\nlist element reached "
              "by the unbounded x = x->next traversal (the expression\n"
              "exceeds the k-limit and collapses into the points-to "
              "region lock).\n\n");

  std::printf("running move(l1,l2) concurrently with move(l2,l1) — the "
              "interleaving that\ndeadlocks Fig. 1(b)'s per-access "
              "locking...\n");
  InterpOptions Options;
  Options.Mode = AtomicMode::Inferred;
  InterpResult R = C->run(Options);
  if (!R.Ok) {
    std::printf("FAILED: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("ok: completed %llu steps with every access covered "
              "(%llu checks), no deadlock.\n",
              static_cast<unsigned long long>(R.TotalSteps),
              static_cast<unsigned long long>(R.ProtectionChecks));
  return 0;
}
