//===--- quickstart.cpp - Five-minute tour of the public API -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Quickstart: compile a program with atomic sections, inspect the locks
/// the analysis infers at two precisions (k = 0 and k = 9), print the
/// transformed program, and execute it in the checking interpreter.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>

using namespace lockin;

static const char *SourceText = R"(
struct account { int balance; };

account* a;
account* b;

void transfer(account* from, account* to, int amount) {
  atomic {
    if (from->balance >= amount) {
      from->balance = from->balance - amount;
      to->balance = to->balance + amount;
    }
  }
}

void worker1() {
  int i = 0;
  while (i < 200) { transfer(a, b, 1); i = i + 1; }
}

void worker2() {
  int i = 0;
  while (i < 200) { transfer(b, a, 1); i = i + 1; }
}

int main() {
  a = new account;
  b = new account;
  a->balance = 1000;
  b->balance = 1000;
  spawn worker1();
  spawn worker2();
  return 0;
}
)";

int main() {
  std::printf("== lockin quickstart ==\n\n");

  for (unsigned K : {0u, 9u}) {
    CompileOptions Options;
    Options.K = K;
    std::unique_ptr<Compilation> C = compile(SourceText, Options);
    if (!C->ok()) {
      std::fprintf(stderr, "%s", C->diagnostics().str().c_str());
      return 1;
    }
    std::printf("--- inferred locks at k = %u ---\n", K);
    for (const auto &Section : C->inference().sections())
      std::printf("  section #%u in %s:\n    %s\n", Section.SectionId,
                  Section.Function->name().c_str(),
                  Section.Locks.str().c_str());
    std::printf("\n");
  }

  std::unique_ptr<Compilation> C = compile(SourceText);
  std::printf("--- transformed program (k = 3) ---\n%s\n",
              C->transformedText().c_str());

  // Execute with the inferred locks under the checking semantics: two
  // threads transferring in opposite directions — the classic deadlock
  // scenario the acquireAll protocol avoids.
  InterpOptions Options;
  Options.Mode = AtomicMode::Inferred;
  InterpResult R = C->run(Options);
  std::printf("--- execution ---\n");
  if (!R.Ok) {
    std::printf("run FAILED: %s\n", R.Error.c_str());
    return 1;
  }
  std::printf("ok: %llu interpreter steps, %llu protection checks, "
              "no violations, no deadlock\n",
              static_cast<unsigned long long>(R.TotalSteps),
              static_cast<unsigned long long>(R.ProtectionChecks));
  return 0;
}
