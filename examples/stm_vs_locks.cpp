//===--- stm_vs_locks.cpp - Pessimistic vs optimistic side by side -------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// Runs the rbtree and hashtable-2 micro-benchmarks under all four
/// configurations, twice: with real threads on this host (correctness and
/// raw throughput) and with the simulated 8-way executor (the paper's
/// testbed shape). Prints the per-configuration comparison the paper's
/// §6.3 discusses.
///
//===----------------------------------------------------------------------===//

#include "workloads/MicroBench.h"
#include "workloads/SimWorkloads.h"

#include <cstdio>

using namespace lockin::workloads;

int main() {
  std::printf("== pessimistic (inferred locks) vs optimistic (TL2) ==\n\n");

  const LockConfig Configs[] = {LockConfig::Global, LockConfig::Coarse,
                                LockConfig::Fine, LockConfig::Stm};

  std::printf("-- real threads on this host (4 threads, wall seconds) --\n");
  for (MicroKind Kind : {MicroKind::RbTree, MicroKind::Hashtable2}) {
    for (bool High : {false, true}) {
      std::printf("%-12s %-4s:", microKindName(Kind),
                  High ? "high" : "low");
      for (LockConfig Config : Configs) {
        MicroParams P;
        P.Kind = Kind;
        P.Config = Config;
        P.Threads = 4;
        P.OpsPerThread = 4000;
        P.SectionNops = 50;
        P.High = High;
        MicroResult R = runMicro(P);
        std::printf("  %s=%.3fs", lockConfigName(Config), R.Seconds);
      }
      std::printf("\n");
    }
  }

  std::printf("\n-- simulated 8-way parallelism (millions of cycles) --\n");
  for (MicroKind Kind : {MicroKind::RbTree, MicroKind::Hashtable2}) {
    for (bool High : {false, true}) {
      std::printf("%-12s %-4s:", microKindName(Kind),
                  High ? "high" : "low");
      for (LockConfig Config : Configs) {
        sim::SimOutcome O = sim::runMicroSim(Kind, Config, 8, High);
        std::printf("  %s=%.2fM", lockConfigName(Config),
                    O.Makespan / 1e6);
      }
      std::printf("\n");
    }
  }

  std::printf("\nReading (paper §6.3): read/write coarse locks double "
              "rbtree-low's throughput\nover a global lock; the fine "
              "bucket lock halves hashtable-2-high; TL2 wins the\n"
              "low-contention micros but cannot run irreversible "
              "operations and collapses\nunder hot-word contention "
              "(vacation).\n");
  return 0;
}
