//===--- CallGraph.cpp - Whole-program call graph + SCC schedule ---------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace lockin;
using namespace lockin::analysis;
using namespace lockin::ir;

namespace {

/// Collects the direct callee functions of \p S (calls and spawns) in
/// first-occurrence order.
void collectCallees(const IrStmt *S, std::vector<const IrFunction *> &Out) {
  switch (S->kind()) {
  case IrStmt::Kind::Call:
    Out.push_back(cast<CallStmt>(S)->callee());
    return;
  case IrStmt::Kind::Spawn:
    Out.push_back(cast<SpawnIrStmt>(S)->callee());
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectCallees(Child.get(), Out);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    collectCallees(I->thenStmt(), Out);
    if (I->elseStmt())
      collectCallees(I->elseStmt(), Out);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    collectCallees(W->prelude(), Out);
    collectCallees(W->body(), Out);
    return;
  }
  case IrStmt::Kind::Atomic:
    collectCallees(cast<AtomicIrStmt>(S)->body(), Out);
    return;
  default:
    return;
  }
}

} // namespace

std::vector<const IrFunction *> CallGraph::directCallees(const IrStmt *S) {
  std::vector<const IrFunction *> Out;
  collectCallees(S, Out);
  return Out;
}

CallGraph::CallGraph(const IrModule &M) {
  Funcs.reserve(M.functions().size());
  for (const auto &F : M.functions()) {
    FuncIndex[F.get()] = static_cast<unsigned>(Funcs.size());
    Funcs.push_back(F.get());
  }

  unsigned N = numFunctions();
  Callees.resize(N);
  Callers.resize(N);
  std::vector<const IrFunction *> Direct;
  std::vector<char> Seen(N, 0);
  for (unsigned I = 0; I < N; ++I) {
    if (!Funcs[I]->body())
      continue;
    Direct.clear();
    collectCallees(Funcs[I]->body(), Direct);
    // Deduplicate, keeping first-occurrence order.
    for (const IrFunction *Callee : Direct) {
      unsigned CI = FuncIndex.at(Callee);
      if (!Seen[CI]) {
        Seen[CI] = 1;
        Callees[I].push_back(CI);
      }
    }
    for (unsigned CI : Callees[I])
      Seen[CI] = 0;
  }
  for (unsigned I = 0; I < N; ++I)
    for (unsigned CI : Callees[I])
      Callers[CI].push_back(I);

  runTarjan();

  // Condensation edges, deduplicated. Callee SCC ids are always lower.
  unsigned S = numSccs();
  SccCalleeSccs.resize(S);
  SccCallerSccs.resize(S);
  SccRecursive.assign(S, false);
  std::vector<char> SccSeen(S, 0);
  for (unsigned Scc = 0; Scc < S; ++Scc) {
    if (SccMembers[Scc].size() > 1)
      SccRecursive[Scc] = true;
    for (unsigned FnIdx : SccMembers[Scc]) {
      for (unsigned CI : Callees[FnIdx]) {
        unsigned CScc = SccId[CI];
        if (CScc == Scc) {
          SccRecursive[Scc] = true; // intra-SCC edge (incl. self loops)
          continue;
        }
        assert(CScc < Scc && "SCC ids must be reverse-topological");
        if (!SccSeen[CScc]) {
          SccSeen[CScc] = 1;
          SccCalleeSccs[Scc].push_back(CScc);
        }
      }
    }
    for (unsigned CScc : SccCalleeSccs[Scc])
      SccSeen[CScc] = 0;
  }
  for (unsigned Scc = 0; Scc < S; ++Scc)
    for (unsigned CScc : SccCalleeSccs[Scc])
      SccCallerSccs[CScc].push_back(Scc);

  // Depths in id order: callees (lower ids) are already done.
  SccDepths.assign(S, 0);
  for (unsigned Scc = 0; Scc < S; ++Scc) {
    unsigned D = 0;
    for (unsigned CScc : SccCalleeSccs[Scc])
      D = std::max(D, SccDepths[CScc] + 1);
    SccDepths[Scc] = D;
    MaxDepth = std::max(MaxDepth, D);
  }
}

void CallGraph::runTarjan() {
  // Iterative Tarjan: the synthetic Table-1 programs have call chains
  // thousands of functions deep, so the DFS must not use the C++ stack.
  unsigned N = numFunctions();
  constexpr unsigned None = ~0u;
  std::vector<unsigned> Index(N, None), Low(N, 0);
  std::vector<char> OnStack(N, 0);
  std::vector<unsigned> Stack;
  SccId.assign(N, None);

  struct Frame {
    unsigned Fn;
    unsigned NextEdge;
  };
  std::vector<Frame> Dfs;
  unsigned NextIndex = 0;
  std::vector<std::vector<unsigned>> RevOrderSccs;

  for (unsigned Root = 0; Root < N; ++Root) {
    if (Index[Root] != None)
      continue;
    Dfs.push_back({Root, 0});
    Index[Root] = Low[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;

    while (!Dfs.empty()) {
      Frame &F = Dfs.back();
      if (F.NextEdge < Callees[F.Fn].size()) {
        unsigned Child = Callees[F.Fn][F.NextEdge++];
        if (Index[Child] == None) {
          Index[Child] = Low[Child] = NextIndex++;
          Stack.push_back(Child);
          OnStack[Child] = 1;
          Dfs.push_back({Child, 0});
        } else if (OnStack[Child]) {
          Low[F.Fn] = std::min(Low[F.Fn], Index[Child]);
        }
        continue;
      }
      // F.Fn is finished: pop an SCC if it is a root.
      if (Low[F.Fn] == Index[F.Fn]) {
        std::vector<unsigned> Members;
        while (true) {
          unsigned V = Stack.back();
          Stack.pop_back();
          OnStack[V] = 0;
          Members.push_back(V);
          if (V == F.Fn)
            break;
        }
        RevOrderSccs.push_back(std::move(Members));
      }
      unsigned Done = F.Fn;
      Dfs.pop_back();
      if (!Dfs.empty())
        Low[Dfs.back().Fn] = std::min(Low[Dfs.back().Fn], Low[Done]);
    }
  }

  // Tarjan pops SCCs callees-first already, which is exactly the
  // reverse-topological numbering we promise.
  SccMembers = std::move(RevOrderSccs);
  for (unsigned Scc = 0; Scc < SccMembers.size(); ++Scc) {
    std::sort(SccMembers[Scc].begin(), SccMembers[Scc].end());
    for (unsigned FnIdx : SccMembers[Scc])
      SccId[FnIdx] = Scc;
  }
}

bool CallGraph::mayCall(const IrFunction *F, const IrFunction *G) const {
  unsigned FromScc = SccId[indexOf(F)];
  unsigned ToScc = SccId[indexOf(G)];
  // Same SCC: distinct members mutually reach each other by definition
  // (and such SCCs are recursive); F reaches itself iff the SCC cycles.
  if (FromScc == ToScc)
    return SccRecursive[FromScc];
  if (ToScc > FromScc)
    return false; // callees always have lower SCC ids

  if (ReachMemo.empty())
    ReachMemo.resize(numSccs());
  std::vector<bool> &Reach = ReachMemo[FromScc];
  if (Reach.empty()) {
    Reach.assign(numSccs(), false);
    std::vector<unsigned> Work = {FromScc};
    while (!Work.empty()) {
      unsigned Scc = Work.back();
      Work.pop_back();
      for (unsigned CScc : SccCalleeSccs[Scc]) {
        if (!Reach[CScc]) {
          Reach[CScc] = true;
          Work.push_back(CScc);
        }
      }
    }
  }
  return Reach[ToScc];
}

std::vector<char> CallGraph::upwardClosure(
    const std::vector<unsigned> &SeedSccs) const {
  std::vector<char> Dirty(numSccs(), 0);
  std::vector<unsigned> Work;
  for (unsigned Scc : SeedSccs) {
    if (Scc < numSccs() && !Dirty[Scc]) {
      Dirty[Scc] = 1;
      Work.push_back(Scc);
    }
  }
  while (!Work.empty()) {
    unsigned Scc = Work.back();
    Work.pop_back();
    for (unsigned Caller : SccCallerSccs[Scc]) {
      if (!Dirty[Caller]) {
        Dirty[Caller] = 1;
        Work.push_back(Caller);
      }
    }
  }
  return Dirty;
}

std::vector<bool> CallGraph::reachableClosure(
    const std::vector<const IrFunction *> &Roots) const {
  std::vector<bool> Reach(numFunctions(), false);
  std::vector<unsigned> Work;
  for (const IrFunction *F : Roots) {
    unsigned I = indexOf(F);
    if (!Reach[I]) {
      Reach[I] = true;
      Work.push_back(I);
    }
  }
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    for (unsigned CI : Callees[I]) {
      if (!Reach[CI]) {
        Reach[CI] = true;
        Work.push_back(CI);
      }
    }
  }
  return Reach;
}
