//===--- CallGraph.h - Whole-program call graph + SCC schedule --*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The explicit call graph over the IR and its strongly-connected-component
/// condensation. The interprocedural lock inference is summary-based; the
/// condensation gives it a bottom-up (reverse-topological) schedule in
/// which every callee SCC is fully summarized before its callers run, so
/// non-recursive functions are summarized exactly once and only genuine
/// recursion pays for a fixpoint.
///
/// SCC ids are handed out in reverse topological order: for every call
/// edge F -> G with sccOf(F) != sccOf(G), sccOf(G) < sccOf(F). Iterating
/// SCC ids 0..numSccs()-1 therefore *is* the bottom-up schedule, and SCCs
/// sharing a condensation depth are mutually independent (neither reaches
/// the other), which is what the parallel analysis driver exploits.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_ANALYSIS_CALLGRAPH_H
#define LOCKIN_ANALYSIS_CALLGRAPH_H

#include "ir/Ir.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace analysis {

/// Built once per module; all queries are O(1) (mayCall is O(reachable
/// SCCs) on first use per source SCC, then cached).
class CallGraph {
public:
  explicit CallGraph(const ir::IrModule &M);

  //===--------------------------------------------------------------------===//
  // Function nodes
  //===--------------------------------------------------------------------===//

  unsigned numFunctions() const {
    return static_cast<unsigned>(Funcs.size());
  }
  const ir::IrFunction *function(unsigned Idx) const { return Funcs[Idx]; }
  unsigned indexOf(const ir::IrFunction *F) const {
    return FuncIndex.at(F);
  }

  /// Direct callees of \p FnIdx (call and spawn sites), deduplicated, in
  /// first-occurrence order (deterministic).
  const std::vector<unsigned> &callees(unsigned FnIdx) const {
    return Callees[FnIdx];
  }
  const std::vector<unsigned> &callers(unsigned FnIdx) const {
    return Callers[FnIdx];
  }

  //===--------------------------------------------------------------------===//
  // SCC condensation
  //===--------------------------------------------------------------------===//

  unsigned numSccs() const {
    return static_cast<unsigned>(SccMembers.size());
  }
  unsigned sccOf(unsigned FnIdx) const { return SccId[FnIdx]; }
  unsigned sccOfFunction(const ir::IrFunction *F) const {
    return SccId[indexOf(F)];
  }

  /// Function indices in this SCC, in module order (deterministic).
  const std::vector<unsigned> &sccMembers(unsigned Scc) const {
    return SccMembers[Scc];
  }
  /// Distinct callee SCCs (all with lower ids), deduplicated.
  const std::vector<unsigned> &sccCallees(unsigned Scc) const {
    return SccCalleeSccs[Scc];
  }
  /// Distinct caller SCCs (all with higher ids).
  const std::vector<unsigned> &sccCallers(unsigned Scc) const {
    return SccCallerSccs[Scc];
  }

  /// Condensation depth: 0 for leaf SCCs (no callees), otherwise
  /// 1 + max(depth of callee SCCs). Reaching an SCC strictly increases
  /// depth, so SCCs at equal depth are pairwise unreachable and may be
  /// analyzed concurrently.
  unsigned sccDepth(unsigned Scc) const { return SccDepths[Scc]; }
  unsigned maxDepth() const { return MaxDepth; }

  /// True if the SCC contains a cycle: more than one member, or a single
  /// member that calls itself.
  bool isRecursive(unsigned Scc) const { return SccRecursive[Scc]; }
  bool isRecursiveFunction(const ir::IrFunction *F) const {
    return SccRecursive[SccId[indexOf(F)]];
  }

  /// Transitive may-call: true if some call chain from \p F reaches \p G.
  /// F == G answers true exactly when F can re-enter itself (recursion).
  bool mayCall(const ir::IrFunction *F, const ir::IrFunction *G) const;

  /// The set of functions transitively callable from \p Roots (including
  /// the roots), as a bitmap indexed by function index.
  std::vector<bool>
  reachableClosure(const std::vector<const ir::IrFunction *> &Roots) const;

  /// Dirty-SCC propagation for incremental re-analysis: the SCCs in
  /// \p SeedSccs plus everything that (transitively) calls into them —
  /// the upward cone whose summaries may change when a seed function's
  /// body changes. Returned as a bitmap indexed by SCC id.
  std::vector<char> upwardClosure(const std::vector<unsigned> &SeedSccs) const;

  /// Direct callees of a statement subtree (call and spawn sites), in
  /// first-occurrence order, duplicates included. Used to seed
  /// reachability from atomic-section bodies.
  static std::vector<const ir::IrFunction *>
  directCallees(const ir::IrStmt *S);

private:
  void runTarjan();

  std::vector<const ir::IrFunction *> Funcs;
  std::unordered_map<const ir::IrFunction *, unsigned> FuncIndex;
  std::vector<std::vector<unsigned>> Callees;
  std::vector<std::vector<unsigned>> Callers;

  std::vector<unsigned> SccId;                    // per function
  std::vector<std::vector<unsigned>> SccMembers;  // per SCC
  std::vector<std::vector<unsigned>> SccCalleeSccs;
  std::vector<std::vector<unsigned>> SccCallerSccs;
  std::vector<unsigned> SccDepths;
  std::vector<bool> SccRecursive;
  unsigned MaxDepth = 0;

  /// mayCall memo: per source SCC, the bitmap of reachable SCCs
  /// (including itself only when recursive). Built lazily.
  mutable std::vector<std::vector<bool>> ReachMemo;
};

} // namespace analysis
} // namespace lockin

#endif // LOCKIN_ANALYSIS_CALLGRAPH_H
