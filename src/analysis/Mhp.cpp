//===--- Mhp.cpp - May-happen-in-parallel analysis -----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "analysis/Mhp.h"

#include <cassert>

using namespace lockin;
using namespace lockin::analysis;
using namespace lockin::ir;

namespace {

unsigned countBits(const std::vector<char> &S) {
  unsigned N = 0;
  for (char C : S)
    N += C ? 1 : 0;
  return N;
}

int firstBit(const std::vector<char> &S) {
  for (size_t I = 0; I < S.size(); ++I)
    if (S[I])
      return static_cast<int>(I);
  return -1;
}

/// True if there are a in A and b in B with a != b.
bool distinctPair(const std::vector<char> &A, const std::vector<char> &B) {
  int FA = firstBit(A);
  if (FA < 0)
    return false;
  for (size_t I = 0; I < B.size(); ++I)
    if (B[I] && static_cast<int>(I) != FA)
      return true;
  // B is empty or exactly {FA}; a distinct pair needs a second bit in A.
  if (firstBit(B) < 0)
    return false;
  for (size_t I = FA + 1; I < A.size(); ++I)
    if (A[I])
      return true;
  return false;
}

bool intersects(const std::vector<char> &A, const std::vector<char> &B) {
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I < N; ++I)
    if (A[I] && B[I])
      return true;
  return false;
}

} // namespace

bool MhpAnalysis::unionInto(std::vector<char> &Dst,
                            const std::vector<char> &Src) {
  bool Changed = false;
  if (Dst.size() < Src.size())
    Dst.resize(Src.size(), 0);
  for (size_t I = 0; I < Src.size(); ++I)
    if (Src[I] && !Dst[I]) {
      Dst[I] = 1;
      Changed = true;
    }
  return Changed;
}

MhpAnalysis::MhpAnalysis(const IrModule &M, const CallGraph &CG)
    : Module(M), CG(CG) {
  unsigned N = CG.numFunctions();
  CallOnly.resize(N);
  for (unsigned I = 0; I < N; ++I)
    if (const IrStmt *Body = CG.function(I)->body())
      enumerateSites(Body, CG.function(I), /*InLoop=*/false);

  unsigned S = numSpawnSites();
  EmptySites.assign(S, 0);
  for (unsigned I = 0; I < N; ++I) {
    // Deduplicate call-only edges, keeping first-occurrence order.
    std::vector<unsigned> Dedup;
    std::vector<char> Seen(N, 0);
    for (unsigned CI : CallOnly[I])
      if (!Seen[CI]) {
        Seen[CI] = 1;
        Dedup.push_back(CI);
      }
    CallOnly[I] = std::move(Dedup);
  }

  const IrFunction *Main = M.findFunction("main");
  if (Main)
    Live = CG.reachableClosure({Main});
  else
    Live.assign(N, false);

  buildThreadClosures();
  buildSpawnsIn();
  buildBeforeSets();
  buildMultiplicity();
}

void MhpAnalysis::enumerateSites(const IrStmt *S, const IrFunction *Owner,
                                 bool InLoop) {
  StmtInfo &Info = Stmts[S];
  Info.Owner = Owner;
  switch (S->kind()) {
  case IrStmt::Kind::Spawn: {
    unsigned Id = static_cast<unsigned>(Sites.size());
    Sites.push_back({cast<SpawnIrStmt>(S), Owner, Id, InLoop});
    SiteOf[S] = Id;
    return;
  }
  case IrStmt::Kind::Call:
    CallOnly[CG.indexOf(Owner)].push_back(
        CG.indexOf(cast<CallStmt>(S)->callee()));
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      enumerateSites(Child.get(), Owner, InLoop);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    enumerateSites(I->thenStmt(), Owner, InLoop);
    if (I->elseStmt())
      enumerateSites(I->elseStmt(), Owner, InLoop);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    enumerateSites(W->prelude(), Owner, /*InLoop=*/true);
    enumerateSites(W->body(), Owner, /*InLoop=*/true);
    return;
  }
  case IrStmt::Kind::Atomic:
    enumerateSites(cast<AtomicIrStmt>(S)->body(), Owner, InLoop);
    return;
  default:
    return;
  }
}

void MhpAnalysis::buildThreadClosures() {
  unsigned N = CG.numFunctions();
  unsigned S = numSpawnSites();

  auto callClosure = [&](unsigned Root) {
    std::vector<char> Reach(N, 0);
    std::vector<unsigned> Work = {Root};
    Reach[Root] = 1;
    while (!Work.empty()) {
      unsigned I = Work.back();
      Work.pop_back();
      for (unsigned CI : CallOnly[I])
        if (!Reach[CI]) {
          Reach[CI] = 1;
          Work.push_back(CI);
        }
    }
    return Reach;
  };

  MainClosure.assign(N, 0);
  if (const IrFunction *Main = Module.findFunction("main"))
    MainClosure = callClosure(CG.indexOf(Main));

  ThreadClosure.assign(S, {});
  for (unsigned I = 0; I < S; ++I) {
    // A site may fire only if its owner may execute at all; dead sites
    // spawn no abstract thread.
    if (!Live[CG.indexOf(Sites[I].Owner)]) {
      ThreadClosure[I].assign(N, 0);
      continue;
    }
    ThreadClosure[I] = callClosure(CG.indexOf(Sites[I].Stmt->callee()));
  }

  ThreadsOf.assign(N, std::vector<char>(S, 0));
  for (unsigned T = 0; T < S; ++T)
    for (unsigned F = 0; F < N; ++F)
      if (ThreadClosure[T][F])
        ThreadsOf[F][T] = 1;
}

void MhpAnalysis::buildSpawnsIn() {
  unsigned N = CG.numFunctions();
  unsigned S = numSpawnSites();
  SpawnsIn.assign(N, std::vector<char>(S, 0));
  for (const SpawnSite &Site : Sites)
    SpawnsIn[CG.indexOf(Site.Owner)][Site.Id] = 1;

  // Bottom-up over the condensation: iterating SCC ids ascending is the
  // reverse-topological schedule, and an inner fixpoint handles cycles
  // within a recursive SCC.
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc) {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned F : CG.sccMembers(Scc))
        for (unsigned Callee : CallOnly[F])
          Changed |= unionInto(SpawnsIn[F], SpawnsIn[Callee]);
    }
  }

  // Transitive spawn descendants of each site's thread: the site itself,
  // plus every site a (transitively) spawned thread may fire.
  SpawnDesc.assign(S, std::vector<char>(S, 0));
  for (unsigned I = 0; I < S; ++I)
    SpawnDesc[I][I] = 1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned I = 0; I < S; ++I)
      for (unsigned J = 0; J < S; ++J)
        if (SpawnDesc[I][J])
          Changed |=
              unionInto(SpawnDesc[I],
                        SpawnsIn[CG.indexOf(Sites[J].Stmt->callee())]);
  }
}

void MhpAnalysis::buildBeforeSets() {
  unsigned N = CG.numFunctions();
  unsigned S = numSpawnSites();
  EntryBefore.assign(N, std::vector<char>(S, 0));
  FuncBefore.assign(N, std::vector<char>(S, 0));

  const IrFunction *Main = Module.findFunction("main");
  if (!Main || S == 0)
    return;

  // Forward interprocedural fixpoint over the main thread's call-only
  // closure. All sets grow monotonically and the walk is a deterministic
  // function of EntryBefore, so the first pass in which no entry set
  // widens records the saturated before-sets everywhere.
  bool Changed = true;
  while (Changed) {
    WidenedEntry = false;
    for (unsigned F = 0; F < N; ++F) {
      if (!MainClosure[F] || !CG.function(F)->body())
        continue;
      std::vector<char> B = EntryBefore[F];
      walkBefore(CG.function(F)->body(), F, B);
    }
    Changed = WidenedEntry;
  }
}

void MhpAnalysis::walkBefore(const IrStmt *S, unsigned OwnerIdx,
                             std::vector<char> &B) {
  StmtInfo &Info = Stmts[S];
  unionInto(Info.Before, B);
  unionInto(FuncBefore[OwnerIdx], B);

  switch (S->kind()) {
  case IrStmt::Kind::Call: {
    unsigned Callee = CG.indexOf(cast<CallStmt>(S)->callee());
    WidenedEntry |= unionInto(EntryBefore[Callee], B);
    unionInto(B, SpawnsIn[Callee]);
    return;
  }
  case IrStmt::Kind::Spawn:
    B[SiteOf.at(S)] = 1;
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      walkBefore(Child.get(), OwnerIdx, B);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    std::vector<char> Then = B;
    walkBefore(I->thenStmt(), OwnerIdx, Then);
    if (I->elseStmt())
      walkBefore(I->elseStmt(), OwnerIdx, B);
    unionInto(B, Then);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    // Loop to a local fixpoint so statements in early iterations see the
    // spawns of later ones on re-walk.
    while (true) {
      std::vector<char> Snapshot = B;
      walkBefore(W->prelude(), OwnerIdx, B);
      walkBefore(W->body(), OwnerIdx, B);
      if (B == Snapshot)
        break;
    }
    // The loop's own condition read repeats after each iteration, so the
    // While item overlaps threads spawned inside its body.
    unionInto(Stmts[S].Before, B);
    return;
  }
  case IrStmt::Kind::Atomic:
    walkBefore(cast<AtomicIrStmt>(S)->body(), OwnerIdx, B);
    // A section overlaps threads spawned during its own body (directly or
    // via callees), so its before-set includes the body's spawn effects.
    unionInto(Stmts[S].Before, B);
    return;
  default:
    return;
  }
}

void MhpAnalysis::buildMultiplicity() {
  unsigned N = CG.numFunctions();
  unsigned S = numSpawnSites();

  // Static invocation weights: each call or spawn site targeting F adds
  // one, two when the site sits in a loop. Gathered lexically so the
  // loop-containment of each site is known.
  std::vector<unsigned> Weight(N, 0);
  std::vector<std::vector<unsigned>> Invokers(N); // callee -> owner idxs
  struct SiteRec {
    unsigned Owner, Callee;
    bool InLoop;
  };
  std::vector<SiteRec> InvokeSites;
  for (unsigned F = 0; F < N; ++F) {
    const IrStmt *Body = CG.function(F)->body();
    if (!Body)
      continue;
    // Reuse the statement table: every call/spawn under F was recorded in
    // enumerateSites with its owner; re-walk for loop containment.
    std::vector<std::pair<const IrStmt *, bool>> Work = {{Body, false}};
    while (!Work.empty()) {
      auto [St, InLoop] = Work.back();
      Work.pop_back();
      switch (St->kind()) {
      case IrStmt::Kind::Call:
        InvokeSites.push_back(
            {F, CG.indexOf(cast<CallStmt>(St)->callee()), InLoop});
        break;
      case IrStmt::Kind::Spawn:
        InvokeSites.push_back(
            {F, CG.indexOf(cast<SpawnIrStmt>(St)->callee()), InLoop});
        break;
      case IrStmt::Kind::Seq:
        for (const IrStmtPtr &Child : cast<SeqStmt>(St)->stmts())
          Work.push_back({Child.get(), InLoop});
        break;
      case IrStmt::Kind::If: {
        const auto *I = cast<IfIrStmt>(St);
        Work.push_back({I->thenStmt(), InLoop});
        if (I->elseStmt())
          Work.push_back({I->elseStmt(), InLoop});
        break;
      }
      case IrStmt::Kind::While: {
        const auto *W = cast<WhileIrStmt>(St);
        Work.push_back({W->prelude(), true});
        Work.push_back({W->body(), true});
        break;
      }
      case IrStmt::Kind::Atomic:
        Work.push_back({cast<AtomicIrStmt>(St)->body(), InLoop});
        break;
      default:
        break;
      }
    }
  }
  for (const SiteRec &R : InvokeSites) {
    Weight[R.Callee] += R.InLoop ? 2 : 1;
    Invokers[R.Callee].push_back(R.Owner);
  }

  // MultiExec(F): F's body may run at least twice within one program
  // execution — enough static invocations, recursion, or propagation
  // from a multiply-executed invoker.
  std::vector<char> MultiExec(N, 0);
  for (unsigned F = 0; F < N; ++F)
    if (Weight[F] >= 2 || CG.isRecursiveFunction(CG.function(F)))
      MultiExec[F] = 1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned F = 0; F < N; ++F) {
      if (MultiExec[F])
        continue;
      for (unsigned Owner : Invokers[F])
        if (MultiExec[Owner]) {
          MultiExec[F] = 1;
          Changed = true;
          break;
        }
    }
  }

  SiteMulti.assign(S, 0);
  for (const SpawnSite &Site : Sites) {
    unsigned OwnerIdx = CG.indexOf(Site.Owner);
    unsigned ThreadsRunningOwner =
        (MainClosure[OwnerIdx] ? 1u : 0u) + countBits(ThreadsOf[OwnerIdx]);
    if (Site.InLoop || MultiExec[OwnerIdx] || ThreadsRunningOwner >= 2)
      SiteMulti[Site.Id] = 1;
  }
}

const MhpAnalysis::StmtInfo *MhpAnalysis::infoOf(const IrStmt *S) const {
  auto It = Stmts.find(S);
  return It == Stmts.end() ? nullptr : &It->second;
}

bool MhpAnalysis::reachable(const IrFunction *F) const {
  return Live[CG.indexOf(F)];
}

bool MhpAnalysis::inMainThread(const IrFunction *F) const {
  return MainClosure[CG.indexOf(F)] != 0;
}

const std::vector<char> &
MhpAnalysis::spawnedThreadsOf(const IrFunction *F) const {
  return ThreadsOf[CG.indexOf(F)];
}

bool MhpAnalysis::mayHappenInParallel(const IrStmt *A, const IrStmt *B) const {
  const StmtInfo *IA = infoOf(A), *IB = infoOf(B);
  if (!IA || !IB)
    return false;
  unsigned FA = CG.indexOf(IA->Owner), FB = CG.indexOf(IB->Owner);
  const std::vector<char> &TA = ThreadsOf[FA], &TB = ThreadsOf[FB];
  bool MA = MainClosure[FA] != 0, MB = MainClosure[FB] != 0;

  // Two distinct spawned threads: lifetimes extend to the join at program
  // exit, so coexistence is unconditional.
  if (distinctPair(TA, TB))
    return true;
  // The same spawned thread: parallel only via two live instances.
  for (unsigned T = 0; T < numSpawnSites(); ++T)
    if (T < TA.size() && T < TB.size() && TA[T] && TB[T] && SiteMulti[T])
      return true;
  // Main vs a spawned thread: the spawning chain's root must be able to
  // fire before the main-thread statement runs.
  auto mainVsSpawned = [&](const StmtInfo *MainItem,
                           const std::vector<char> &SpawnedThreads) {
    const std::vector<char> &Before =
        MainItem->Before.empty() ? EmptySites : MainItem->Before;
    for (unsigned S0 = 0; S0 < Before.size(); ++S0)
      if (Before[S0] && intersects(SpawnDesc[S0], SpawnedThreads))
        return true;
    return false;
  };
  if (MA && firstBit(TB) >= 0 && mainVsSpawned(IA, TB))
    return true;
  if (MB && firstBit(TA) >= 0 && mainVsSpawned(IB, TA))
    return true;
  // Main vs main: one thread, sequential.
  return false;
}

bool MhpAnalysis::functionsConcurrent(const IrFunction *F,
                                      const IrFunction *G) const {
  unsigned FA = CG.indexOf(F), FB = CG.indexOf(G);
  const std::vector<char> &TA = ThreadsOf[FA], &TB = ThreadsOf[FB];
  if (distinctPair(TA, TB))
    return true;
  for (unsigned T = 0; T < numSpawnSites(); ++T)
    if (TA[T] && TB[T] && SiteMulti[T])
      return true;
  auto mainVsSpawned = [&](unsigned MainFn, const std::vector<char> &TS) {
    const std::vector<char> &Before = FuncBefore[MainFn];
    for (unsigned S0 = 0; S0 < Before.size(); ++S0)
      if (Before[S0] && intersects(SpawnDesc[S0], TS))
        return true;
    return false;
  };
  if (MainClosure[FA] && firstBit(TB) >= 0 && mainVsSpawned(FA, TB))
    return true;
  if (MainClosure[FB] && firstBit(TA) >= 0 && mainVsSpawned(FB, TA))
    return true;
  return false;
}

bool MhpAnalysis::sccsConcurrent(unsigned SccA, unsigned SccB) const {
  for (unsigned FA : CG.sccMembers(SccA))
    for (unsigned FB : CG.sccMembers(SccB))
      if (functionsConcurrent(CG.function(FA), CG.function(FB)))
        return true;
  return false;
}
