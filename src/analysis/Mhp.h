//===--- Mhp.h - May-happen-in-parallel analysis ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// May-happen-in-parallel (MHP) analysis over the language's fork-join
/// concurrency: `spawn f(...)` creates a thread per dynamic execution of
/// the site, and every spawned thread is joined only when main returns.
/// That join-at-exit discipline makes thread lifetimes maximal, so MHP
/// reduces to three questions the analysis answers statically:
///
///   1. which abstract threads exist (one per static spawn site, plus the
///      main thread), and which functions each may execute — per-thread
///      call-only reachability closures;
///   2. for a statement executing in the main thread, which spawn sites
///      may already have fired when it runs — a forward interprocedural
///      "spawn-sites-before" fixpoint over the structural IR, seeded
///      through the Tarjan condensation's bottom-up schedule (SpawnsIn);
///   3. which spawn sites may create two simultaneously-live threads —
///      loop-contained sites, sites in functions invoked more than once
///      (statically, recursively, or from multiply-executed callers), and
///      sites whose owner runs in more than one thread.
///
/// Queries are conservative (may-analysis): a `true` answer means some
/// interleaving may co-schedule the two statements; `false` is a proof of
/// never-parallel, which is what the lock-elision client requires.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_ANALYSIS_MHP_H
#define LOCKIN_ANALYSIS_MHP_H

#include "analysis/CallGraph.h"
#include "ir/Ir.h"

#include <unordered_map>
#include <vector>

namespace lockin {
namespace analysis {

/// One static `spawn` statement. Site ids are dense and deterministic
/// (module function order, then structural statement order).
struct SpawnSite {
  const ir::SpawnIrStmt *Stmt = nullptr;
  const ir::IrFunction *Owner = nullptr; ///< function containing the spawn
  unsigned Id = 0;
  bool InLoop = false; ///< lexically inside a While in Owner
};

/// Built once per module on top of an existing CallGraph; all queries are
/// table lookups over small per-site bitmaps afterwards.
class MhpAnalysis {
public:
  MhpAnalysis(const ir::IrModule &M, const CallGraph &CG);

  unsigned numSpawnSites() const {
    return static_cast<unsigned>(Sites.size());
  }
  const SpawnSite &spawnSite(unsigned Id) const { return Sites[Id]; }

  /// True if \p F may execute at all (reachable from main through calls
  /// and spawns).
  bool reachable(const ir::IrFunction *F) const;

  /// True if \p F may execute on the main thread (call-only closure).
  bool inMainThread(const ir::IrFunction *F) const;

  /// Bitmap over spawn-site ids: the spawned threads on which \p F may
  /// execute.
  const std::vector<char> &spawnedThreadsOf(const ir::IrFunction *F) const;

  /// May two distinct dynamic instances of the thread spawned at \p Site
  /// be live simultaneously?
  bool multiSpawned(unsigned Site) const { return SiteMulti[Site]; }

  /// May the statements \p A and \p B execute concurrently (on two
  /// different threads, or on two live instances of the same spawned
  /// thread)? Statements identify themselves; ownership is resolved via
  /// the per-thread closures, so a statement in a function reachable from
  /// several threads is considered in every one of them.
  bool mayHappenInParallel(const ir::IrStmt *A, const ir::IrStmt *B) const;

  /// May two dynamic executions of \p S overlap? (Self-MHP: the statement
  /// lives in a function running on two simultaneously-live threads.)
  bool selfParallel(const ir::IrStmt *S) const {
    return mayHappenInParallel(S, S);
  }

  /// Function-granularity projection of the statement query: may any
  /// statement of \p F run concurrently with any statement of \p G?
  bool functionsConcurrent(const ir::IrFunction *F,
                           const ir::IrFunction *G) const;

  /// SCC-granularity projection over the call-graph condensation.
  bool sccsConcurrent(unsigned SccA, unsigned SccB) const;

private:
  struct StmtInfo {
    const ir::IrFunction *Owner = nullptr;
    /// Spawn sites that may have fired before this statement executes on
    /// the main thread (meaningful only when Owner is main-reachable).
    std::vector<char> Before;
  };

  void enumerateSites(const ir::IrStmt *S, const ir::IrFunction *Owner,
                      bool InLoop);
  void buildThreadClosures();
  void buildSpawnsIn();
  void buildBeforeSets();
  void buildMultiplicity();
  void walkBefore(const ir::IrStmt *S, unsigned OwnerIdx,
                  std::vector<char> &B);
  static bool unionInto(std::vector<char> &Dst, const std::vector<char> &Src);

  const StmtInfo *infoOf(const ir::IrStmt *S) const;

  const ir::IrModule &Module;
  const CallGraph &CG;

  std::vector<SpawnSite> Sites;
  std::unordered_map<const ir::IrStmt *, unsigned> SiteOf;

  /// Call-only (no spawn edges) direct callees, per function index.
  std::vector<std::vector<unsigned>> CallOnly;
  /// Full reachability from main (calls + spawns), per function index.
  std::vector<bool> Live;
  /// Main thread's call-only closure, per function index.
  std::vector<char> MainClosure;
  /// Per spawn site: the spawned thread's call-only closure.
  std::vector<std::vector<char>> ThreadClosure;
  /// Per function index: bitmap of spawn sites whose thread may run it.
  std::vector<std::vector<char>> ThreadsOf;
  /// Per function index: spawn sites that may fire during a call to it
  /// (call-only transitive, computed bottom-up over the condensation).
  std::vector<std::vector<char>> SpawnsIn;
  /// Per function index: spawn sites that may have fired before entry to
  /// some main-thread call of it.
  std::vector<std::vector<char>> EntryBefore;
  /// Per spawn site: the site itself plus every site transitively firable
  /// by the spawned thread or its descendants.
  std::vector<std::vector<char>> SpawnDesc;
  /// Per spawn site: may two instances of this thread be live at once?
  std::vector<char> SiteMulti;
  /// Per function index: union of Before over the function's statements.
  std::vector<std::vector<char>> FuncBefore;

  std::unordered_map<const ir::IrStmt *, StmtInfo> Stmts;
  std::vector<char> EmptySites;
  bool WidenedEntry = false;
};

} // namespace analysis
} // namespace lockin

#endif // LOCKIN_ANALYSIS_MHP_H
