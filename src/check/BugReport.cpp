//===--- BugReport.cpp - Concurrency-bug findings and reports ------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "check/BugReport.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace lockin;
using namespace lockin::check;

const char *check::findingKindId(FindingKind K) {
  switch (K) {
  case FindingKind::DataRace:
    return "data-race";
  case FindingKind::LocksetRace:
    return "lockset-race";
  case FindingKind::AtomicityViolation:
    return "atomicity-violation";
  case FindingKind::DeadlockCycle:
    return "deadlock-cycle";
  }
  return "unknown";
}

const char *check::findingKindLevel(FindingKind K) {
  switch (K) {
  case FindingKind::DataRace:
  case FindingKind::LocksetRace:
    return "error";
  case FindingKind::AtomicityViolation:
    return "warning";
  case FindingKind::DeadlockCycle:
    // The deployed protocol (acquireAll) takes every lock atomically, so
    // order cycles are latent, not reachable — worth noting, not fixing.
    return "note";
  }
  return "none";
}

namespace {

std::string dedupKey(const Finding &F) {
  std::string Key = findingKindId(F.Kind);
  std::vector<std::string> Sites;
  for (const FindingSite &S : F.Sites)
    Sites.push_back(S.Function + "@" + S.Loc.str());
  std::sort(Sites.begin(), Sites.end());
  for (const std::string &S : Sites)
    Key += "|" + S;
  Key += "|" + F.LockSignature;
  return Key;
}

/// JSON string escaping (control characters, quotes, backslashes).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

void appendSiteJson(std::ostringstream &Out, const FindingSite &S) {
  Out << "{\"function\":\"" << jsonEscape(S.Function) << "\",\"line\":"
      << S.Loc.Line << ",\"column\":" << S.Loc.Col << ",\"role\":\""
      << jsonEscape(S.Role) << "\"}";
}

} // namespace

void BugReportMgr::add(Finding F) {
  std::string Key = dedupKey(F);
  for (const std::string &K : Keys)
    if (K == Key)
      return;
  Keys.push_back(std::move(Key));
  Findings.push_back(std::move(F));
}

std::vector<Finding> BugReportMgr::take() {
  std::stable_sort(Findings.begin(), Findings.end(),
                   [](const Finding &A, const Finding &B) {
                     if (A.Kind != B.Kind)
                       return static_cast<unsigned>(A.Kind) <
                              static_cast<unsigned>(B.Kind);
                     const SourceLoc &LA =
                         A.Sites.empty() ? SourceLoc() : A.Sites[0].Loc;
                     const SourceLoc &LB =
                         B.Sites.empty() ? SourceLoc() : B.Sites[0].Loc;
                     if (LA.Line != LB.Line)
                       return LA.Line < LB.Line;
                     if (LA.Col != LB.Col)
                       return LA.Col < LB.Col;
                     return A.Message < B.Message;
                   });
  Keys.clear();
  return std::move(Findings);
}

std::string CheckReport::json(const std::string &Artifact) const {
  std::ostringstream Out;
  Out << "{\"tool\":\"lockin-check\",\"module\":\"" << jsonEscape(Artifact)
      << "\",\"summary\":{\"findings\":" << Findings.size()
      << ",\"sections\":" << Stats.Sections
      << ",\"elidedSections\":" << Stats.ElidedSections
      << ",\"bareAccesses\":" << Stats.BareAccesses
      << ",\"spawnSites\":" << Stats.SpawnSites
      << ",\"mhpPairs\":" << Stats.MhpPairs << "},\"findings\":[";
  for (size_t I = 0; I < Findings.size(); ++I) {
    const Finding &F = Findings[I];
    if (I)
      Out << ",";
    Out << "{\"kind\":\"" << findingKindId(F.Kind) << "\",\"level\":\""
        << findingKindLevel(F.Kind) << "\",\"message\":\""
        << jsonEscape(F.Message) << "\",\"locks\":\""
        << jsonEscape(F.LockSignature) << "\",\"locations\":[";
    for (size_t J = 0; J < F.Sites.size(); ++J) {
      if (J)
        Out << ",";
      appendSiteJson(Out, F.Sites[J]);
    }
    Out << "]}";
  }
  Out << "]}";
  return Out.str();
}

std::string CheckReport::sarif(const std::string &Artifact) const {
  // Rules in kind order; results reference them by id and index.
  static const FindingKind Kinds[] = {
      FindingKind::DataRace, FindingKind::LocksetRace,
      FindingKind::AtomicityViolation, FindingKind::DeadlockCycle};
  static const char *Descriptions[] = {
      "Two unprotected accesses to the same abstract location may execute "
      "concurrently with at least one write.",
      "Two atomic sections conflict on an abstract location but hold no "
      "interlocking lock pair.",
      "An access outside every atomic section may interleave with an "
      "atomic section touching the same abstract location.",
      "The hypothetical incremental two-phase acquisition order of the "
      "inferred locks contains a cycle among may-parallel sections."};

  std::ostringstream Out;
  Out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"lockin-check\",\"informationUri\":"
         "\"https://example.invalid/lockin\",\"rules\":[";
  for (size_t I = 0; I < 4; ++I) {
    if (I)
      Out << ",";
    Out << "{\"id\":\"" << findingKindId(Kinds[I])
        << "\",\"shortDescription\":{\"text\":\"" << jsonEscape(Descriptions[I])
        << "\"}}";
  }
  Out << "]}},\"results\":[";
  for (size_t I = 0; I < Findings.size(); ++I) {
    const Finding &F = Findings[I];
    if (I)
      Out << ",";
    Out << "{\"ruleId\":\"" << findingKindId(F.Kind) << "\",\"ruleIndex\":"
        << static_cast<unsigned>(F.Kind) << ",\"level\":\""
        << findingKindLevel(F.Kind) << "\",\"message\":{\"text\":\""
        << jsonEscape(F.Message) << "\"},\"locations\":[";
    for (size_t J = 0; J < F.Sites.size(); ++J) {
      const FindingSite &S = F.Sites[J];
      if (J)
        Out << ",";
      Out << "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\""
          << jsonEscape(Artifact) << "\"},\"region\":{\"startLine\":"
          << (S.Loc.isValid() ? S.Loc.Line : 1u)
          << ",\"startColumn\":" << (S.Loc.isValid() ? S.Loc.Col : 1u)
          << "}},\"message\":{\"text\":\"" << jsonEscape(S.Role) << "\"}}";
    }
    Out << "],\"properties\":{\"locks\":\"" << jsonEscape(F.LockSignature)
        << "\"}}";
  }
  Out << "]}]}";
  return Out.str();
}
