//===--- BugReport.h - Concurrency-bug findings and reports -----*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checker's report layer: `Finding` (one concurrency bug),
/// `BugReportMgr` (dedup by (kind, location set, lock-path signature) and
/// severity ranking), and `CheckReport` (the finished, deterministic
/// report with JSON and SARIF 2.1.0 renderers).
///
/// Rendering is hand-rolled and insertion-ordered: the same module always
/// produces byte-identical reports, which is what the golden tests and
/// the service's warm-cache byte-identity contract rely on.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_CHECK_BUGREPORT_H
#define LOCKIN_CHECK_BUGREPORT_H

#include "pointsto/Steensgaard.h"
#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace lockin {
namespace check {

enum class FindingKind : unsigned char {
  DataRace = 0,          ///< two bare accesses, no protection at all
  LocksetRace = 1,       ///< two sections whose held sets fail to interlock
  AtomicityViolation = 2,///< bare access interleavable with a section
  DeadlockCycle = 3,     ///< cycle in the hypothetical 2PL acquisition order
};

const char *findingKindId(FindingKind K);    ///< "data-race", ...
const char *findingKindLevel(FindingKind K); ///< SARIF level: "error", ...

/// One code location participating in a finding.
struct FindingSite {
  std::string Function;
  SourceLoc Loc;
  std::string Role; ///< e.g. "atomic section #2", "unprotected write"
};

struct Finding {
  FindingKind Kind = FindingKind::DataRace;
  std::string Message;
  std::vector<FindingSite> Sites;
  /// Lock-path signature of the conflicting abstract location(s); part of
  /// the dedup key and rendered for triage.
  std::string LockSignature;
};

/// Collects findings, dedups by (kind, site list, lock signature), and
/// hands back a severity-ranked, deterministically ordered list.
class BugReportMgr {
public:
  void add(Finding F);
  /// Ranked findings: severity first (data-race worst), then location,
  /// then message. Leaves the manager empty.
  std::vector<Finding> take();
  unsigned size() const { return static_cast<unsigned>(Findings.size()); }

private:
  std::vector<Finding> Findings;
  std::vector<std::string> Keys;
};

/// Counters surfaced through --stats, the service metrics, and the
/// report summary.
struct CheckStats {
  unsigned Sections = 0;
  unsigned ElidedSections = 0;
  unsigned BareAccesses = 0;
  unsigned SpawnSites = 0;
  /// Item pairs (sections + bare accesses) that may happen in parallel.
  uint64_t MhpPairs = 0;
  unsigned Findings = 0;
};

/// The finished check: ranked findings plus the projections the fuzz
/// oracle differentially validates against the checking interpreter.
struct CheckReport {
  std::vector<Finding> Findings;
  CheckStats Stats;

  /// Access-model projection: the points-to regions some atomic section
  /// may touch (per its inferred lock set). Every interpreter-observed
  /// protection violation names a region this model must cover.
  bool SectionsCoverAllRegions = false; ///< some section access is ⊤
  std::vector<char> SectionAccessRegions; ///< indexed by RegionId

  bool coversRegion(RegionId R) const {
    return SectionsCoverAllRegions ||
           (R < SectionAccessRegions.size() && SectionAccessRegions[R]);
  }

  /// Deterministic JSON report; \p Artifact names the analyzed input.
  std::string json(const std::string &Artifact) const;
  /// SARIF 2.1.0 (loads in standard viewers); \p Artifact becomes the
  /// result locations' artifact URI.
  std::string sarif(const std::string &Artifact) const;
};

} // namespace check
} // namespace lockin

#endif // LOCKIN_CHECK_BUGREPORT_H
