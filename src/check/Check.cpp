//===--- Check.cpp - MHP + lock-set + lock-order concurrency checker -----------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "check/Check.h"

#include <algorithm>
#include <map>

using namespace lockin;
using namespace lockin::check;
using namespace lockin::ir;

namespace {

/// First conflicting lock pair between two access sets, rendered as a
/// stable signature.
std::string conflictSig(const LockSet &A, const LockSet &B) {
  for (const LockName &La : A.locks())
    for (const LockName &Lb : B.locks())
      if (locksMayConflict(La, Lb)) {
        std::string SA = La.str(), SB = Lb.str();
        return SA <= SB ? SA + " & " + SB : SB + " & " + SA;
      }
  return "";
}

bool anyWrite(const LockSet &S) {
  for (const LockName &L : S.locks())
    if (L.effect() == Effect::RW)
      return true;
  return false;
}

} // namespace

Checker::Checker(const IrModule &M, const analysis::CallGraph &CG,
                 const PointsToAnalysis &PT, const InferenceResult &Inference,
                 unsigned K)
    : Module(M), CG(CG), PT(PT), Inference(Inference), K(K) {}

CheckReport Checker::runAll(const IrModule &M, const analysis::CallGraph &CG,
                            const PointsToAnalysis &PT,
                            const InferenceResult &Inference, unsigned K) {
  Checker C(M, CG, PT, Inference, K);
  C.runMhp();
  C.runLockSet();
  C.runOrder();
  return C.finish();
}

void Checker::runMhp() {
  Mhp = std::make_unique<analysis::MhpAnalysis>(Module, CG);

  TransferContext Ctx{Module, PT, K, *Inference.interner()};
  Bares = collectBareAccesses(Module, CG, Ctx);

  // Items: sections (access = held = the inferred lock set, a Theorem-1
  // abstraction of everything the section and its callees may touch),
  // then bare accesses (held = ∅).
  for (const auto &F : Module.functions()) {
    for (const AtomicIrStmt *A : F->atomicSections()) {
      const InferenceResult::Section &S = Inference.sections()[A->sectionId()];
      Item I;
      I.IsSection = true;
      I.SectionId = A->sectionId();
      I.Stmt = A;
      I.Function = F.get();
      I.Access = &S.Locks;
      I.Held = S.Elided ? &EmptyHeld : &S.Locks;
      Items.push_back(I);
    }
  }
  std::stable_sort(Items.begin(), Items.end(),
                   [](const Item &A, const Item &B) {
                     return A.SectionId < B.SectionId;
                   });
  for (const BareAccess &B : Bares) {
    Item I;
    I.Stmt = B.Stmt;
    I.Function = B.Function;
    I.Access = &B.Accesses;
    I.Held = &EmptyHeld;
    Items.push_back(I);
  }

  Stats.Sections = static_cast<unsigned>(Inference.sections().size());
  Stats.ElidedSections = Inference.elidedCount();
  Stats.BareAccesses = static_cast<unsigned>(Bares.size());
  Stats.SpawnSites = Mhp->numSpawnSites();
  for (size_t I = 0; I < Items.size(); ++I)
    for (size_t J = I; J < Items.size(); ++J)
      if (itemsMhp(Items[I], Items[J]))
        ++Stats.MhpPairs;
}

bool Checker::itemsMhp(const Item &A, const Item &B) const {
  if (A.Stmt == B.Stmt)
    return Mhp->selfParallel(A.Stmt);
  return Mhp->mayHappenInParallel(A.Stmt, B.Stmt);
}

std::string Checker::describe(const Item &I) const {
  if (I.IsSection)
    return "atomic section #" + std::to_string(I.SectionId) + " in " +
           I.Function->name();
  return std::string(anyWrite(*I.Access) ? "unprotected write"
                                         : "unprotected read") +
         " in " + I.Function->name();
}

FindingSite Checker::siteOf(const Item &I, const LockSet &) const {
  FindingSite S;
  S.Function = I.Function->name();
  S.Loc = I.Stmt->loc();
  S.Role = I.IsSection
               ? "atomic section #" + std::to_string(I.SectionId)
               : std::string(anyWrite(*I.Access) ? "unprotected write"
                                                 : "unprotected read");
  return S;
}

void Checker::runLockSet() {
  for (size_t A = 0; A < Items.size(); ++A) {
    for (size_t B = A; B < Items.size(); ++B) {
      const Item &IA = Items[A], &IB = Items[B];
      if (IA.IsSection != IB.IsSection)
        continue; // section-vs-bare pairs are the order pass's atomicity check
      if (!lockSetsMayConflict(*IA.Access, *IB.Access))
        continue;
      if (!itemsMhp(IA, IB))
        continue;
      // Held-lock interlock: a held pair naming overlapping locations
      // interlocks under the multi-granularity runtime (same region node
      // in X/IX, or the same fine leaf at collision). The conflict test
      // is exactly that predicate.
      if (lockSetsMayConflict(*IA.Held, *IB.Held))
        continue;
      Finding F;
      F.Kind = IA.IsSection ? FindingKind::LocksetRace : FindingKind::DataRace;
      F.LockSignature = conflictSig(*IA.Access, *IB.Access);
      F.Sites.push_back(siteOf(IA, *IB.Access));
      if (A != B)
        F.Sites.push_back(siteOf(IB, *IA.Access));
      if (IA.IsSection)
        F.Message = describe(IA) + " and " + describe(IB) +
                    " may run in parallel and conflict on " +
                    F.LockSignature + " with no interlocking lock held";
      else
        F.Message = "possible data race on " + F.LockSignature + ": " +
                    describe(IA) + " (" + IA.Stmt->loc().str() + ")" +
                    (A == B ? " races with itself across threads"
                            : " vs " + describe(IB) + " (" +
                                  IB.Stmt->loc().str() + ")");
      Mgr.add(std::move(F));
    }
  }
}

void Checker::runOrder() {
  // Atomicity violations: a bare access interleavable with a section that
  // touches the same abstract location defeats the section's atomicity
  // even though every lock the section holds is respected.
  for (const Item &IS : Items) {
    if (!IS.IsSection)
      continue;
    for (const Item &IB : Items) {
      if (IB.IsSection)
        continue;
      if (!lockSetsMayConflict(*IS.Access, *IB.Access))
        continue;
      if (!itemsMhp(IS, IB))
        continue;
      Finding F;
      F.Kind = FindingKind::AtomicityViolation;
      F.LockSignature = conflictSig(*IS.Access, *IB.Access);
      F.Sites.push_back(siteOf(IS, *IB.Access));
      F.Sites.push_back(siteOf(IB, *IS.Access));
      F.Message = "atomicity of " + describe(IS) + " may be violated by an " +
                  (anyWrite(*IB.Access) ? std::string("unprotected write")
                                        : std::string("unprotected read")) +
                  " in " + IB.Function->name() + " (" + IB.Stmt->loc().str() +
                  ") touching " + F.LockSignature;
      Mgr.add(std::move(F));
    }
  }

  // Lock-order pass: the hypothetical incremental-2PL acquisition order
  // (locks taken one by one in the set's discovery order). The deployed
  // acquireAll takes the whole set atomically, so a cycle here is a
  // latent deadlock the protocol sidesteps — reported at "note" level.
  std::map<std::string, unsigned> NodeId;
  std::vector<std::string> NodeKey;
  struct Edge {
    unsigned From, To;
    uint32_t SectionId;
  };
  std::vector<Edge> Edges;
  auto nodeOf = [&](const LockName &L) {
    std::string Key = L.withEffect(Effect::RW).str();
    auto [It, New] = NodeId.try_emplace(Key, NodeKey.size());
    if (New)
      NodeKey.push_back(Key);
    return It->second;
  };
  for (const Item &I : Items) {
    if (!I.IsSection || Inference.sectionElided(I.SectionId))
      continue;
    const std::vector<LockName> &Ordered = I.Access->locks();
    for (size_t A = 0; A < Ordered.size(); ++A)
      for (size_t B = A + 1; B < Ordered.size(); ++B) {
        unsigned NA = nodeOf(Ordered[A]), NB = nodeOf(Ordered[B]);
        if (NA != NB)
          Edges.push_back({NA, NB, I.SectionId});
      }
  }

  // SCCs of the order graph (recursive Tarjan; the graph has one node
  // per distinct lock class, which is small by construction).
  unsigned N = static_cast<unsigned>(NodeKey.size());
  std::vector<std::vector<unsigned>> Adj(N);
  for (const Edge &E : Edges)
    Adj[E.From].push_back(E.To);
  std::vector<unsigned> Index(N, ~0u), Low(N, 0), Comp(N, ~0u);
  std::vector<char> OnStack(N, 0);
  std::vector<unsigned> Stack;
  unsigned Next = 0, Comps = 0;
  auto dfs = [&](auto &&Self, unsigned V) -> void {
    Index[V] = Low[V] = Next++;
    Stack.push_back(V);
    OnStack[V] = 1;
    for (unsigned W : Adj[V]) {
      if (Index[W] == ~0u) {
        Self(Self, W);
        Low[V] = std::min(Low[V], Low[W]);
      } else if (OnStack[W]) {
        Low[V] = std::min(Low[V], Index[W]);
      }
    }
    if (Low[V] == Index[V]) {
      while (true) {
        unsigned W = Stack.back();
        Stack.pop_back();
        OnStack[W] = 0;
        Comp[W] = Comps;
        if (W == V)
          break;
      }
      ++Comps;
    }
  };
  for (unsigned V = 0; V < N; ++V)
    if (Index[V] == ~0u)
      dfs(dfs, V);

  std::vector<unsigned> CompSize(Comps, 0);
  for (unsigned V = 0; V < N; ++V)
    ++CompSize[Comp[V]];
  for (unsigned C = 0; C < Comps; ++C) {
    if (CompSize[C] < 2)
      continue;
    // Contributing sections: those with an order edge inside the cycle.
    std::vector<uint32_t> Contributors;
    for (const Edge &E : Edges)
      if (Comp[E.From] == C && Comp[E.To] == C)
        Contributors.push_back(E.SectionId);
    std::sort(Contributors.begin(), Contributors.end());
    Contributors.erase(std::unique(Contributors.begin(), Contributors.end()),
                       Contributors.end());
    // A reachable order inversion needs two of them live at once.
    bool Parallel = false;
    auto stmtOfSection = [&](uint32_t Id) -> const IrStmt * {
      for (const Item &I : Items)
        if (I.IsSection && I.SectionId == Id)
          return I.Stmt;
      return nullptr;
    };
    for (size_t A = 0; A < Contributors.size() && !Parallel; ++A)
      for (size_t B = A + 1; B < Contributors.size() && !Parallel; ++B)
        Parallel = Mhp->mayHappenInParallel(stmtOfSection(Contributors[A]),
                                            stmtOfSection(Contributors[B]));
    if (!Parallel)
      continue;

    std::vector<std::string> CycleKeys;
    for (unsigned V = 0; V < N; ++V)
      if (Comp[V] == C)
        CycleKeys.push_back(NodeKey[V]);
    std::sort(CycleKeys.begin(), CycleKeys.end());
    std::string Sig;
    for (const std::string &Key : CycleKeys)
      Sig += (Sig.empty() ? "" : " <-> ") + Key;

    Finding F;
    F.Kind = FindingKind::DeadlockCycle;
    F.LockSignature = Sig;
    std::string Sections;
    for (uint32_t Id : Contributors) {
      const Item *I = nullptr;
      for (const Item &It : Items)
        if (It.IsSection && It.SectionId == Id)
          I = &It;
      if (!I)
        continue;
      F.Sites.push_back(siteOf(*I, *I->Access));
      Sections += (Sections.empty() ? "#" : ", #") + std::to_string(Id) +
                  " (" + I->Function->name() + ")";
    }
    F.Message = "locks " + Sig + " are needed in conflicting orders by "
                "may-parallel sections " + Sections +
                "; incremental acquisition could deadlock — the runtime's "
                "all-at-once acquireAll avoids this";
    Mgr.add(std::move(F));
  }
}

CheckReport Checker::finish() {
  CheckReport R;
  R.Findings = Mgr.take();
  Stats.Findings = static_cast<unsigned>(R.Findings.size());
  R.Stats = Stats;

  R.SectionAccessRegions.assign(PT.numRegions(), 0);
  for (const InferenceResult::Section &S : Inference.sections()) {
    for (const LockName &L : S.Locks.locks()) {
      if (L.kind() == LockName::Kind::Top)
        R.SectionsCoverAllRegions = true;
      else if (L.region() != InvalidRegion &&
               L.region() < R.SectionAccessRegions.size())
        R.SectionAccessRegions[L.region()] = 1;
    }
  }
  return R;
}
