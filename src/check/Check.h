//===--- Check.h - MHP + lock-set + lock-order concurrency checker -*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lockin-check subsystem: four coordinated passes over the IR, the
/// call-graph condensation, and the inference result, answering the dual
/// of the paper's question — which races, deadlocks, and atomicity
/// violations exist in the program as written, and how well the inferred
/// locking protects it.
///
///   1. runMhp()      — may-happen-in-parallel analysis over spawn/fork-
///                      join; builds the checked item set (atomic sections
///                      abstracted by their inferred lock sets + bare
///                      accesses abstracted by their G locks).
///   2. runLockSet()  — lock-set pass: held-locks-at-access per item; MHP
///                      + location conflict + no interlocking held pair
///                      becomes a data-race (bare/bare) or lockset-race
///                      (section/section) finding.
///   3. runOrder()    — happens-before / lock-order pass: atomicity
///                      violations (bare access interleavable with a
///                      conflicting section) and cycles in the
///                      hypothetical incremental-2PL acquisition-order
///                      graph (latent deadlocks the runtime's atomic
///                      acquireAll sidesteps).
///   4. finish()      — BugReportMgr dedup + severity ranking into a
///                      deterministic CheckReport (JSON / SARIF 2.1.0).
///
/// The passes are split so the driver can time each one through its
/// PassManager; call them in order.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_CHECK_CHECK_H
#define LOCKIN_CHECK_CHECK_H

#include "analysis/CallGraph.h"
#include "analysis/Mhp.h"
#include "check/BugReport.h"
#include "infer/Conflict.h"
#include "infer/Inference.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"

#include <memory>
#include <vector>

namespace lockin {
namespace check {

class Checker {
public:
  /// \p Inference must outlive the checker (items point into its lock
  /// sets); its interner backs the bare-access G locks so lock names
  /// from both sides compare meaningfully.
  Checker(const ir::IrModule &M, const analysis::CallGraph &CG,
          const PointsToAnalysis &PT, const InferenceResult &Inference,
          unsigned K);

  void runMhp();
  void runLockSet();
  void runOrder();
  CheckReport finish();

  /// Convenience: all four passes back to back.
  static CheckReport runAll(const ir::IrModule &M,
                            const analysis::CallGraph &CG,
                            const PointsToAnalysis &PT,
                            const InferenceResult &Inference, unsigned K);

private:
  struct Item {
    bool IsSection = false;
    uint32_t SectionId = 0;
    const ir::IrStmt *Stmt = nullptr; ///< MHP anchor
    const ir::IrFunction *Function = nullptr;
    const LockSet *Access = nullptr; ///< abstract locations touched
    const LockSet *Held = nullptr;   ///< locks held at the access
  };

  bool itemsMhp(const Item &A, const Item &B) const;
  std::string describe(const Item &I) const;
  FindingSite siteOf(const Item &I, const LockSet &ConflictSide) const;

  const ir::IrModule &Module;
  const analysis::CallGraph &CG;
  const PointsToAnalysis &PT;
  const InferenceResult &Inference;
  unsigned K;

  std::unique_ptr<analysis::MhpAnalysis> Mhp;
  std::vector<BareAccess> Bares;
  std::vector<Item> Items;
  LockSet EmptyHeld;

  BugReportMgr Mgr;
  CheckStats Stats;
};

} // namespace check
} // namespace lockin

#endif // LOCKIN_CHECK_CHECK_H
