//===--- Cli.cpp - lockinfer command-line parsing ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"

#include <cstdlib>
#include <cstring>

using namespace lockin;
using namespace lockin::cli;

bool cli::parseUnsigned(const char *Text, unsigned &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || Value > 0xffffffffUL)
    return false;
  Out = static_cast<unsigned>(Value);
  return true;
}

namespace {

bool setString(std::string &Out, const char *Value) {
  if (!Value || !*Value)
    return false;
  Out = Value;
  return true;
}

struct OptionSpec {
  const char *Short;     ///< e.g. "-k", or nullptr
  const char *Long;      ///< e.g. "--jobs", or nullptr
  const char *ValueName; ///< non-null iff the option takes a value
  const char *Help;
  bool (*Apply)(CliOptions &, const char *Value);
};

const OptionSpec Options[] = {
    {"-k", nullptr, "N", "expression-lock depth limit (default 3)",
     [](CliOptions &O, const char *V) { return parseUnsigned(V, O.K); }},
    {"-j", "--jobs", "N",
     "analysis worker threads; 0 = hardware concurrency (default), 1 = "
     "serial",
     [](CliOptions &O, const char *V) { return parseUnsigned(V, O.Jobs); }},
    {nullptr, "--run", nullptr, "execute the program in the interpreter",
     [](CliOptions &O, const char *) { return O.Run = true; }},
    {nullptr, "--global-lock", nullptr,
     "run with one global lock instead of the inferred locks",
     [](CliOptions &O, const char *) { return O.GlobalLock = true; }},
    {nullptr, "--adaptive", nullptr,
     "run with the contention-adaptive hybrid runtime (RW biasing, "
     "striped escalation, STM migration)",
     [](CliOptions &O, const char *) { return O.Adaptive = true; }},
    {nullptr, "--adaptive-epoch-ms", "N",
     "policy epoch period for --adaptive in ms (default 50)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.AdaptiveEpochMs);
     }},
    {nullptr, "--check", nullptr,
     "run the concurrency checker (races, atomicity, lock order) and "
     "print its JSON report",
     [](CliOptions &O, const char *) { return O.Check = true; }},
    {nullptr, "--elide-never-parallel", nullptr,
     "elide lock acquisition for sections whose conflicts can never run "
     "in parallel (MHP-proven)",
     [](CliOptions &O, const char *) { return O.ElideNeverParallel = true; }},
    {nullptr, "--quiet", nullptr, "suppress the transformed-program report",
     [](CliOptions &O, const char *) { return O.Quiet = true; }},
    {nullptr, "--time-passes", nullptr,
     "print per-pass wall times to stderr after compiling",
     [](CliOptions &O, const char *) { return O.TimePasses = true; }},
    {nullptr, "--stats", nullptr,
     "print analysis counters (SCCs, summaries, caches) to stderr",
     [](CliOptions &O, const char *) { return O.Stats = true; }},
    {nullptr, "--trace-out", "FILE",
     "write a Chrome trace-event JSON of the compile + run to FILE",
     [](CliOptions &O, const char *V) { return setString(O.TraceOut, V); }},
    {nullptr, "--metrics-out", "FILE",
     "write the metrics registry as JSON to FILE ('-' = stdout)",
     [](CliOptions &O, const char *V) {
       return setString(O.MetricsOut, V);
     }},
    {nullptr, "--log-level", "LEVEL",
     "structured-log threshold: debug|info|warn|error|off (default info)",
     [](CliOptions &O, const char *V) {
       if (!V)
         return false;
       for (const char *L : {"debug", "info", "warn", "error", "off"})
         if (std::strcmp(V, L) == 0) {
           O.LogLevel = V;
           return true;
         }
       return false;
     }},
    {nullptr, "--profile-locks", nullptr,
     "profile lock contention during --run and print the table",
     [](CliOptions &O, const char *) { return O.ProfileLocks = true; }},
    {nullptr, "--inject-yields", nullptr,
     "inject seeded scheduler yields at shared accesses during --run",
     [](CliOptions &O, const char *) { return O.InjectYields = true; }},
    {nullptr, "--yield-seed", "N",
     "seed for --inject-yields scheduling (default 1)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.YieldSeed);
     }},
    {nullptr, "--serve", nullptr,
     "run as the analysis daemon (needs --socket and/or --port)",
     [](CliOptions &O, const char *) { return O.Serve = true; }},
    {nullptr, "--socket", "PATH", "unix socket path for --serve",
     [](CliOptions &O, const char *V) { return setString(O.Socket, V); }},
    {nullptr, "--port", "N",
     "loopback TCP port for --serve (0 = ephemeral, printed on stdout)",
     [](CliOptions &O, const char *V) {
       unsigned P;
       if (!parseUnsigned(V, P) || P > 65535)
         return false;
       O.Port = static_cast<int>(P);
       return true;
     }},
    {nullptr, "--service-workers", "N",
     "analyze worker threads for --serve (default 2)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.ServiceWorkers) && O.ServiceWorkers > 0;
     }},
    {nullptr, "--queue-depth", "N",
     "bounded analyze queue for --serve; full = overloaded (default 32)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.QueueDepth) && O.QueueDepth > 0;
     }},
    {nullptr, "--request-timeout-ms", "N",
     "per-request deadline for --serve; 0 = none (default)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.RequestTimeoutMs);
     }},
    {nullptr, "--cache-capacity", "N",
     "summary-cache entries for --serve; 0 disables (default 65536)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.CacheCapacity);
     }},
    {nullptr, "--cache-shards", "N",
     "summary-cache mutex+LRU shards for --serve (default 16)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.CacheShards) && O.CacheShards > 0;
     }},
    {nullptr, "--event-loops", "N",
     "epoll event-loop threads for --serve (default 2)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.EventLoops) && O.EventLoops > 0;
     }},
    {nullptr, "--max-inflight", "N",
     "global cap on queued+running analyze jobs for --serve; 0 = only "
     "--queue-depth caps (default)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.MaxInflight);
     }},
    {nullptr, "--tenant-quota", "N",
     "per-tenant inflight analyze cap for --serve; 0 = unlimited (default)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.TenantQuota);
     }},
    {nullptr, "--read-timeout-ms", "N",
     "mid-frame read deadline for --serve (slow-loris defense); 0 = none "
     "(default)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.ReadTimeoutMs);
     }},
    {nullptr, "--service-model", "MODEL",
     "connection model for --serve: eventloop (default) | threads",
     [](CliOptions &O, const char *V) {
       if (!V)
         return false;
       if (std::strcmp(V, "eventloop") != 0 && std::strcmp(V, "threads") != 0)
         return false;
       O.ServiceModel = V;
       return true;
     }},
    {nullptr, "--flightrecord-out", "FILE",
     "write the flight-recorder dump as JSON at drain (--serve)",
     [](CliOptions &O, const char *V) {
       return setString(O.FlightRecordOut, V);
     }},
    {nullptr, "--flightrecord-capacity", "N",
     "completed-request summaries the flight recorder keeps (default 256)",
     [](CliOptions &O, const char *V) {
       return parseUnsigned(V, O.FlightCapacity) && O.FlightCapacity > 0;
     }},
    {nullptr, "--help", nullptr, "show this help",
     [](CliOptions &O, const char *) { return O.Help = true; }},
};

const OptionSpec *findOption(const char *Arg, size_t Len) {
  for (const OptionSpec &Spec : Options)
    if ((Spec.Short && std::strlen(Spec.Short) == Len &&
         std::strncmp(Arg, Spec.Short, Len) == 0) ||
        (Spec.Long && std::strlen(Spec.Long) == Len &&
         std::strncmp(Arg, Spec.Long, Len) == 0))
      return &Spec;
  return nullptr;
}

} // namespace

void cli::usage(std::FILE *To) {
  std::fputs("usage: lockinfer [options] file.atom\noptions:\n", To);
  for (const OptionSpec &Spec : Options) {
    char Flags[48];
    std::snprintf(Flags, sizeof(Flags), "%s%s%s %s",
                  Spec.Short ? Spec.Short : "",
                  Spec.Short && Spec.Long ? ", " : "",
                  Spec.Long ? Spec.Long : "",
                  Spec.ValueName ? Spec.ValueName : "");
    std::fprintf(To, "  %-24s %s\n", Flags, Spec.Help);
  }
}

bool cli::parseArgs(int Argc, const char *const *Argv, CliOptions &Out) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-') {
      if (!Out.Path.empty()) {
        std::fprintf(stderr, "error: multiple input files ('%s' and '%s')\n",
                     Out.Path.c_str(), Arg);
        return false;
      }
      Out.Path = Arg;
      continue;
    }
    // "--opt=value" attaches the value; "--opt value" takes the next arg.
    const char *Eq = std::strchr(Arg, '=');
    size_t NameLen = Eq ? static_cast<size_t>(Eq - Arg) : std::strlen(Arg);
    const OptionSpec *Spec = findOption(Arg, NameLen);
    if (!Spec) {
      std::fprintf(stderr, "error: unknown option '%.*s'\n",
                   static_cast<int>(NameLen), Arg);
      return false;
    }
    const char *Value = nullptr;
    if (Spec->ValueName) {
      if (Eq) {
        Value = Eq + 1;
      } else {
        if (I + 1 >= Argc) {
          std::fprintf(stderr, "error: option '%s' requires a value\n", Arg);
          return false;
        }
        Value = Argv[++I];
      }
    } else if (Eq) {
      std::fprintf(stderr, "error: option '%.*s' takes no value\n",
                   static_cast<int>(NameLen), Arg);
      return false;
    }
    if (!Spec->Apply(Out, Value)) {
      std::fprintf(stderr, "error: invalid value '%s' for option '%.*s'\n",
                   Value ? Value : "", static_cast<int>(NameLen), Arg);
      return false;
    }
  }
  if (Out.Help)
    return true;
  if (Out.Serve) {
    if (Out.Socket.empty() && Out.Port < 0) {
      std::fprintf(stderr,
                   "error: --serve needs --socket PATH and/or --port N\n");
      return false;
    }
    if (!Out.Path.empty()) {
      std::fprintf(stderr, "error: --serve takes no input file\n");
      return false;
    }
    return true;
  }
  if (Out.Path.empty()) {
    std::fprintf(stderr, "error: no input file\n");
    return false;
  }
  return true;
}
