//===--- Cli.h - lockinfer command-line parsing -----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for the lockinfer tool, split out of main() so
/// tests can drive it. Options are described by a single table (spec,
/// value arity, help text); the parser and the usage text are both
/// generated from it. Values are accepted as either a separate argument
/// ("--jobs 4") or attached with '=' ("--jobs=4").
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_CLI_H
#define LOCKIN_DRIVER_CLI_H

#include <cstdio>
#include <string>

namespace lockin {
namespace cli {

struct CliOptions {
  unsigned K = 3;
  unsigned Jobs = 0;
  bool Run = false;
  bool GlobalLock = false;
  /// Contention-adaptive hybrid runtime during --run: start on the
  /// inferred locks, let the policy engine rebias/stripe/migrate.
  bool Adaptive = false;
  unsigned AdaptiveEpochMs = 50; ///< policy epoch period for --adaptive
  /// Run the concurrency checker after inference and print its JSON
  /// report to stdout (after the transformed-program report).
  bool Check = false;
  /// MHP-driven lock elision (InferenceOptions::ElideNeverParallel).
  bool ElideNeverParallel = false;
  bool Quiet = false;
  bool TimePasses = false;
  bool Stats = false;
  bool ProfileLocks = false;
  bool Help = false;
  /// Deterministic-scheduling knobs forwarded to the interpreter during
  /// --run (InterpOptions::InjectYields / YieldSeed).
  bool InjectYields = false;
  unsigned YieldSeed = 1;
  std::string TraceOut;   ///< Chrome trace JSON path; empty = no tracing
  std::string MetricsOut; ///< metrics JSON path; "-" = stdout, empty = off
  /// Structured-log threshold: debug|info|warn|error|off.
  std::string LogLevel = "info";
  std::string Path;

  /// Daemon mode (--serve): listen instead of compiling a file. The
  /// missing-input-file check is skipped when set.
  bool Serve = false;
  std::string Socket;              ///< unix socket path for --serve
  int Port = -1;                   ///< loopback TCP port; -1 = no TCP
  unsigned ServiceWorkers = 2;     ///< analyze worker threads
  unsigned QueueDepth = 32;        ///< bounded analyze queue
  unsigned RequestTimeoutMs = 0;   ///< per-request deadline; 0 = none
  unsigned CacheCapacity = 65536;  ///< summary-cache entries; 0 disables
  unsigned CacheShards = 16;       ///< summary-cache mutex+LRU shards
  unsigned EventLoops = 2;         ///< epoll event-loop threads
  unsigned MaxInflight = 0;        ///< global analyze cap; 0 = queue only
  unsigned TenantQuota = 0;        ///< per-tenant inflight cap; 0 = none
  unsigned ReadTimeoutMs = 0;      ///< mid-frame read deadline; 0 = none
  /// Connection model: "eventloop" (default) or "threads" (the legacy
  /// thread-per-connection reference implementation).
  std::string ServiceModel = "eventloop";
  /// Flight-recorder JSON dump path, written at drain (--serve only).
  std::string FlightRecordOut;
  /// Completed-request summaries the flight recorder retains.
  unsigned FlightCapacity = 256;
};

/// Strict base-10 unsigned parse; rejects empty, trailing junk, overflow.
bool parseUnsigned(const char *Text, unsigned &Out);

/// Prints the generated option table.
void usage(std::FILE *To);

/// Parses \p Argv (argv[0] is skipped) into \p Out. Returns true on
/// success; on failure prints a diagnostic to stderr. --help short-
/// circuits the missing-input check.
bool parseArgs(int Argc, const char *const *Argv, CliOptions &Out);

} // namespace cli
} // namespace lockin

#endif // LOCKIN_DRIVER_CLI_H
