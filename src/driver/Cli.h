//===--- Cli.h - lockinfer command-line parsing -----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line parsing for the lockinfer tool, split out of main() so
/// tests can drive it. Options are described by a single table (spec,
/// value arity, help text); the parser and the usage text are both
/// generated from it. Values are accepted as either a separate argument
/// ("--jobs 4") or attached with '=' ("--jobs=4").
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_CLI_H
#define LOCKIN_DRIVER_CLI_H

#include <cstdio>
#include <string>

namespace lockin {
namespace cli {

struct CliOptions {
  unsigned K = 3;
  unsigned Jobs = 0;
  bool Run = false;
  bool GlobalLock = false;
  bool Quiet = false;
  bool TimePasses = false;
  bool Stats = false;
  bool ProfileLocks = false;
  bool Help = false;
  std::string TraceOut;   ///< Chrome trace JSON path; empty = no tracing
  std::string MetricsOut; ///< metrics JSON path; "-" = stdout, empty = off
  std::string Path;
};

/// Strict base-10 unsigned parse; rejects empty, trailing junk, overflow.
bool parseUnsigned(const char *Text, unsigned &Out);

/// Prints the generated option table.
void usage(std::FILE *To);

/// Parses \p Argv (argv[0] is skipped) into \p Out. Returns true on
/// success; on failure prints a diagnostic to stderr. --help short-
/// circuits the missing-input check.
bool parseArgs(int Argc, const char *const *Argv, CliOptions &Out);

} // namespace cli
} // namespace lockin

#endif // LOCKIN_DRIVER_CLI_H
