//===--- Compiler.cpp - End-to-end pipeline facade ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "check/Check.h"
#include "ir/IrPrinter.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Sema.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"

using namespace lockin;

std::string Compilation::transformedText() const {
  if (!Transformed.empty() || !Module)
    return Transformed;
  // Failure paths skip the transform pass; print on demand.
  const InferenceResult *Result = Inference.get();
  return ir::printIrModule(*Module, [Result](uint32_t SectionId) {
    return Result ? Result->annotate(SectionId) : std::string();
  });
}

std::string Compilation::report() const {
  std::string Out = transformedText();
  if (!Inference)
    return Out;
  char Line[64];
  for (const auto &Section : Inference->sections()) {
    Out += "; section #";
    std::snprintf(Line, sizeof(Line), "%u", Section.SectionId);
    Out += Line;
    Out += " in ";
    Out += Section.Function ? Section.Function->name() : std::string("?");
    Out += ": ";
    Out += Section.Locks.str();
    Out += "\n";
  }
  LockCensus Census = Inference->census();
  std::snprintf(Line, sizeof(Line),
                "fine-ro=%u fine-rw=%u coarse-ro=%u coarse-rw=%u\n",
                Census.FineRO, Census.FineRW, Census.CoarseRO,
                Census.CoarseRW);
  Out += "; locks: ";
  Out += Line;
  return Out;
}

InterpResult Compilation::run(const InterpOptions &Options,
                              const std::string &MainFunction) const {
  return interpret(*Module, *PT, Inference.get(), Options, MainFunction);
}

std::unique_ptr<Compilation> lockin::compile(std::string_view Source,
                                             const CompileOptions &Options) {
  auto C = std::make_unique<Compilation>();
  PassManager PM(Options.Metrics, Options.Trace);

  C->Ast = PM.run("parse", [&] {
    Parser P(Source, C->Diags);
    return P.parseProgram();
  });
  if (!C->Ast || C->Diags.hasErrors()) {
    C->Stats.Passes = PM.timings();
    return C;
  }

  bool SemaOk = PM.run("sema", [&] { return runSema(*C->Ast, C->Diags); });
  if (!SemaOk) {
    C->Stats.Passes = PM.timings();
    return C;
  }

  C->Module = PM.run("lower", [&] { return lowerProgram(*C->Ast, C->Diags); });
  if (!C->Module || C->Diags.hasErrors()) {
    C->Stats.Passes = PM.timings();
    return C;
  }

  C->CG = PM.run("callgraph", [&] {
    return std::make_unique<analysis::CallGraph>(*C->Module);
  });

  C->PT = PM.run("points-to", [&] {
    return std::make_unique<PointsToAnalysis>(*C->Module);
  });

  if (Options.InferLocks) {
    InferenceOptions InferOpts;
    InferOpts.K = Options.K;
    InferOpts.Jobs = Options.Jobs;
    InferOpts.ElideNeverParallel = Options.ElideNeverParallel;
    LockInference Inference(*C->Module, *C->PT, *C->CG, InferOpts);
    C->Inference = PM.run("infer", [&] {
      return std::make_unique<InferenceResult>(Inference.run());
    });
    C->Stats.Inference = Inference.stats();
    C->Stats.HasInference = true;
    if constexpr (obs::kEnabled) {
      const InferenceStats &S = C->Stats.Inference;
      obs::MetricsRegistry &Reg =
          Options.Metrics ? *Options.Metrics : obs::metrics();
      Reg.counter("interner.nodes").add(S.InternerNodes);
      Reg.counter("interner.hits").add(S.InternerHits);
      Reg.counter("summaries.deduped").add(S.Summaries.Deduped);
      Reg.counter("arena.bytes").add(S.ArenaBytes + C->Module->arenaBytes());
    }
  }

  if (Options.Check && C->Inference) {
    check::Checker Chk(*C->Module, *C->CG, *C->PT, *C->Inference, Options.K);
    PM.run("check-mhp", [&] { Chk.runMhp(); });
    PM.run("check-lockset", [&] { Chk.runLockSet(); });
    PM.run("check-order", [&] { Chk.runOrder(); });
    C->Check = PM.run("check-report", [&] {
      return std::make_unique<check::CheckReport>(Chk.finish());
    });
    C->Stats.Check = C->Check->Stats;
    C->Stats.HasCheck = true;
    if constexpr (obs::kEnabled) {
      obs::MetricsRegistry &Reg =
          Options.Metrics ? *Options.Metrics : obs::metrics();
      Reg.counter("check.reports").add(1);
      Reg.counter("check.mhp_pairs").add(C->Check->Stats.MhpPairs);
      Reg.counter("check.elided_sections").add(C->Check->Stats.ElidedSections);
    }
  }

  C->Transformed = PM.run("transform", [&] {
    const InferenceResult *Result = C->Inference.get();
    return ir::printIrModule(*C->Module, [Result](uint32_t SectionId) {
      return Result ? Result->annotate(SectionId) : std::string();
    });
  });

  C->Ok = true;
  C->Stats.Passes = PM.timings();
  return C;
}
