//===--- Compiler.cpp - End-to-end pipeline facade ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "ir/IrPrinter.h"
#include "ir/Lowering.h"
#include "lang/Parser.h"
#include "lang/Sema.h"

using namespace lockin;

std::string Compilation::transformedText() const {
  const InferenceResult *Result = Inference.get();
  return ir::printIrModule(*Module, [Result](uint32_t SectionId) {
    return Result ? Result->annotate(SectionId) : std::string();
  });
}

InterpResult Compilation::run(const InterpOptions &Options,
                              const std::string &MainFunction) const {
  return interpret(*Module, *PT, Inference.get(), Options, MainFunction);
}

std::unique_ptr<Compilation> lockin::compile(std::string_view Source,
                                             const CompileOptions &Options) {
  auto C = std::make_unique<Compilation>();

  Parser P(Source, C->Diags);
  C->Ast = P.parseProgram();
  if (!C->Ast || C->Diags.hasErrors())
    return C;

  if (!runSema(*C->Ast, C->Diags))
    return C;

  C->Module = lowerProgram(*C->Ast, C->Diags);
  if (!C->Module || C->Diags.hasErrors())
    return C;

  C->PT = std::make_unique<PointsToAnalysis>(*C->Module);

  if (Options.InferLocks) {
    InferenceOptions InferOpts;
    InferOpts.K = Options.K;
    LockInference Inference(*C->Module, *C->PT, InferOpts);
    C->Inference = std::make_unique<InferenceResult>(Inference.run());
  }

  C->Ok = true;
  return C;
}
