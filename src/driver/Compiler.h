//===--- Compiler.h - End-to-end pipeline facade ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call façade over the whole pipeline: parse → sema → lower →
/// points-to → lock inference. This is the public entry point examples,
/// tools, tests, and benchmarks use.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_COMPILER_H
#define LOCKIN_DRIVER_COMPILER_H

#include "infer/Inference.h"
#include "interp/Interp.h"
#include "ir/Ir.h"
#include "lang/Ast.h"
#include "pointsto/Steensgaard.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace lockin {

struct CompileOptions {
  /// k of the k-limited expression locks (paper: 0..9).
  unsigned K = 3;
  /// Skip the lock inference (parse/lower/points-to only).
  bool InferLocks = true;
};

/// The result of compiling one program. Owns every phase's output; check
/// ok() before using anything beyond diagnostics().
class Compilation {
public:
  bool ok() const { return Ok; }
  const DiagnosticEngine &diagnostics() const { return Diags; }

  Program &ast() { return *Ast; }
  ir::IrModule &module() { return *Module; }
  const PointsToAnalysis &pointsTo() const { return *PT; }
  const InferenceResult &inference() const { return *Inference; }

  /// The transformed output program: atomic sections shown as
  /// acquireAll({...}) / releaseAll() pairs.
  std::string transformedText() const;

  /// Runs the program in the concurrent interpreter.
  InterpResult run(const InterpOptions &Options,
                   const std::string &MainFunction = "main") const;

private:
  friend std::unique_ptr<Compilation> compile(std::string_view,
                                              const CompileOptions &);
  bool Ok = false;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Ast;
  std::unique_ptr<ir::IrModule> Module;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<InferenceResult> Inference;
};

/// Compiles \p Source; never returns null. On failure the result's
/// diagnostics explain why.
std::unique_ptr<Compilation> compile(std::string_view Source,
                                     const CompileOptions &Options = {});

} // namespace lockin

#endif // LOCKIN_DRIVER_COMPILER_H
