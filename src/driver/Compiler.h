//===--- Compiler.h - End-to-end pipeline facade ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-call façade over the whole pipeline, run as named PassManager
/// passes: parse → sema → lower → callgraph → points-to → infer →
/// transform. This is the public entry point examples, tools, tests, and
/// benchmarks use; per-pass wall times and analysis counters are exposed
/// through pipelineStats().
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_COMPILER_H
#define LOCKIN_DRIVER_COMPILER_H

#include "analysis/CallGraph.h"
#include "check/BugReport.h"
#include "driver/PassManager.h"
#include "infer/Inference.h"
#include "interp/Interp.h"
#include "ir/Ir.h"
#include "lang/Ast.h"
#include "pointsto/Steensgaard.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <string_view>

namespace lockin {

struct CompileOptions {
  /// k of the k-limited expression locks (paper: 0..9).
  unsigned K = 3;
  /// Skip the lock inference (parse/lower/points-to only).
  bool InferLocks = true;
  /// Worker threads for the inference; 0 = hardware concurrency, 1 =
  /// fully serial. Parallel and serial runs produce identical lock sets.
  unsigned Jobs = 0;
  /// Run the concurrency checker (check-mhp → check-lockset → check-order
  /// → check-report passes) after inference; the report is available via
  /// Compilation::checkReport().
  bool Check = false;
  /// MHP-driven lock elision: sections whose conflicts can never run in
  /// parallel keep their inferred lock sets but skip acquisition at run
  /// time. Default off; off is byte-identical to builds without the flag.
  bool ElideNeverParallel = false;
  /// Explicit observability context for the pipeline's pass counters and
  /// spans; null = the process-wide singletons. Concurrent compilations
  /// (the daemon's workers, the re-entrancy test) pass their own so runs
  /// never share mutable tool state.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::Tracer *Trace = nullptr;
};

/// The result of compiling one program. Owns every phase's output; check
/// ok() before using anything beyond diagnostics().
class Compilation {
public:
  bool ok() const { return Ok; }
  const DiagnosticEngine &diagnostics() const { return Diags; }

  Program &ast() { return *Ast; }
  ir::IrModule &module() { return *Module; }
  const analysis::CallGraph &callGraph() const { return *CG; }
  const PointsToAnalysis &pointsTo() const { return *PT; }
  const InferenceResult &inference() const { return *Inference; }

  /// The concurrency checker's report; null unless CompileOptions::Check.
  const check::CheckReport *checkReport() const { return Check.get(); }

  /// Per-pass wall times and analysis counters of this compilation.
  const PipelineStats &pipelineStats() const { return Stats; }

  /// The transformed output program: atomic sections shown as
  /// acquireAll({...}) / releaseAll() pairs.
  std::string transformedText() const;

  /// The tool's standard report: the transformed program followed by one
  /// "; section #N in F: {...}" line per atomic section and the census
  /// line. Golden-file tests compare against exactly this text.
  std::string report() const;

  /// Runs the program in the concurrent interpreter.
  InterpResult run(const InterpOptions &Options,
                   const std::string &MainFunction = "main") const;

private:
  friend std::unique_ptr<Compilation> compile(std::string_view,
                                              const CompileOptions &);
  bool Ok = false;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Ast;
  std::unique_ptr<ir::IrModule> Module;
  std::unique_ptr<analysis::CallGraph> CG;
  std::unique_ptr<PointsToAnalysis> PT;
  std::unique_ptr<InferenceResult> Inference;
  std::unique_ptr<check::CheckReport> Check;
  std::string Transformed;
  PipelineStats Stats;
};

/// Compiles \p Source; never returns null. On failure the result's
/// diagnostics explain why.
std::unique_ptr<Compilation> compile(std::string_view Source,
                                     const CompileOptions &Options = {});

} // namespace lockin

#endif // LOCKIN_DRIVER_COMPILER_H
