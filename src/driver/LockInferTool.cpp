//===--- LockInferTool.cpp - The lockinfer command-line tool -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver: reads a program with atomic sections, infers locks, prints
/// the transformed program and per-section lock sets, and optionally runs
/// it in the checking interpreter — or, with --serve, becomes the
/// analysis daemon (see DESIGN.md "Service & incremental analysis").
///
///   lockinfer [options] file.atom
///   lockinfer --serve --socket /tmp/lockin.sock [--port N] [options]
///
/// Reports (--time-passes, --stats) go to stderr so stdout stays the
/// machine-readable program output; --metrics-out=- explicitly routes the
/// metrics JSON to stdout. --trace-out and --profile-locks arm the
/// observability layer before the pipeline runs and drain it at exit.
///
/// The actual analysis run lives in driver/Tool.h (runAnalysis), which is
/// re-entrant over an explicit context; this file is only the process
/// shell around it.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "driver/Tool.h"
#include "obs/LockProfiler.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lockin;

int main(int Argc, char **Argv) {
  cli::CliOptions Cli;
  if (!cli::parseArgs(Argc, Argv, Cli)) {
    cli::usage(stderr);
    return 2;
  }
  if (Cli.Help) {
    cli::usage(stdout);
    return 0;
  }

  bool WantObs =
      !Cli.TraceOut.empty() || !Cli.MetricsOut.empty() || Cli.ProfileLocks;
  if (WantObs && !obs::kEnabled)
    std::fprintf(stderr,
                 "warning: built with LOCKIN_OBS=OFF; instrumentation "
                 "sites are compiled out and observability output will "
                 "be empty\n");
  // Arm before compiling so pass spans and the run are both captured.
  // Tracing implies the profiler (the per-node wait spans come from it).
  if (!Cli.TraceOut.empty())
    obs::tracer().setEnabled(true);
  if (Cli.ProfileLocks || !Cli.TraceOut.empty())
    obs::lockProfiler().setEnabled(true);

  int Rc;
  if (Cli.Serve) {
    Rc = tool::runServe(Cli);
  } else {
    std::ifstream In(Cli.Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Cli.Path.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();

    tool::ToolContext Ctx; // null obs = the process-wide singletons
    Rc = tool::runAnalysis(Cli, Buffer.str(), Ctx);
    std::fputs(Ctx.Out.c_str(), stdout);
    std::fputs(Ctx.Log.c_str(), stderr);
    if (Rc != 0)
      return Rc;
  }

  if (Cli.ProfileLocks)
    std::fputs(obs::lockProfiler().renderTable().c_str(), stdout);
  if (!Cli.MetricsOut.empty()) {
    if (Cli.MetricsOut == "-") {
      obs::metrics().writeJson(std::cout);
    } else {
      std::ofstream Out(Cli.MetricsOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     Cli.MetricsOut.c_str());
        return 1;
      }
      obs::metrics().writeJson(Out);
    }
  }
  if (!Cli.TraceOut.empty()) {
    std::ofstream Out(Cli.TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Cli.TraceOut.c_str());
      return 1;
    }
    obs::tracer().writeChromeJson(Out);
    if (uint64_t Dropped = obs::tracer().totalDropped())
      std::fprintf(stderr,
                   "note: trace ring buffers dropped %llu oldest events\n",
                   static_cast<unsigned long long>(Dropped));
  }
  return Rc;
}
