//===--- LockInferTool.cpp - The lockinfer command-line tool -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver: reads a program with atomic sections, infers locks, prints
/// the transformed program and per-section lock sets, and optionally runs
/// it in the checking interpreter — or, with --serve, becomes the
/// analysis daemon (see DESIGN.md "Service & incremental analysis").
///
///   lockinfer [options] file.atom
///   lockinfer --serve --socket /tmp/lockin.sock [--port N] [options]
///
/// Reports (--time-passes, --stats) go to stderr so stdout stays the
/// machine-readable program output; --metrics-out=- explicitly routes the
/// metrics JSON to stdout. --trace-out and --profile-locks arm the
/// observability layer before the pipeline runs and drain it at exit.
///
/// The actual analysis run lives in driver/Tool.h (runAnalysis), which is
/// re-entrant over an explicit context; this file is only the process
/// shell around it.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "driver/Tool.h"
#include "obs/LockProfiler.h"
#include "obs/Log.h"
#include "obs/Obs.h"
#include "obs/Trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace lockin;

int main(int Argc, char **Argv) {
  cli::CliOptions Cli;
  if (!cli::parseArgs(Argc, Argv, Cli)) {
    cli::usage(stderr);
    return 2;
  }
  if (Cli.Help) {
    cli::usage(stdout);
    return 0;
  }

  bool WantObs =
      !Cli.TraceOut.empty() || !Cli.MetricsOut.empty() || Cli.ProfileLocks;
  if (WantObs && !obs::kEnabled)
    std::fprintf(stderr,
                 "warning: built with LOCKIN_OBS=OFF; instrumentation "
                 "sites are compiled out and observability output will "
                 "be empty\n");
  // Arm before compiling so pass spans and the run are both captured.
  // Tracing implies the profiler (the per-node wait spans come from it).
  if (!Cli.TraceOut.empty())
    obs::tracer().setEnabled(true);
  if (Cli.ProfileLocks || !Cli.TraceOut.empty())
    obs::lockProfiler().setEnabled(true);
  obs::LogLevel Level = obs::LogLevel::Info;
  obs::parseLogLevel(Cli.LogLevel, Level); // validated by the parser
  obs::log().setLevel(Level);

  if (Cli.Serve)
    // runServe drains the obs outputs itself, after the SIGTERM/shutdown
    // drain completes (the daemon never reaches the code below with a
    // still-armed registry worth snapshotting).
    return tool::runServe(Cli);

  int Rc;
  {
    std::ifstream In(Cli.Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Cli.Path.c_str());
      return 1;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();

    tool::ToolContext Ctx; // null obs = the process-wide singletons
    Rc = tool::runAnalysis(Cli, Buffer.str(), Ctx);
    std::fputs(Ctx.Out.c_str(), stdout);
    std::fputs(Ctx.Log.c_str(), stderr);
    if (Rc != 0)
      return Rc;
  }

  if (int DrainRc = tool::drainObsOutputs(Cli))
    return DrainRc;
  return Rc;
}
