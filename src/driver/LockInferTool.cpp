//===--- LockInferTool.cpp - The lockinfer command-line tool -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver: reads a program with atomic sections, infers locks, prints
/// the transformed program and per-section lock sets, and optionally runs
/// it in the checking interpreter.
///
///   lockinfer [-k N] [--run] [--global-lock] [--quiet] file.atom
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace lockin;

static void usage() {
  std::fprintf(stderr,
               "usage: lockinfer [-k N] [--run] [--global-lock] [--quiet] "
               "file.atom\n");
}

int main(int Argc, char **Argv) {
  unsigned K = 3;
  bool Run = false;
  bool GlobalLock = false;
  bool Quiet = false;
  const char *Path = nullptr;

  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "-k") == 0 && I + 1 < Argc) {
      K = static_cast<unsigned>(std::atoi(Argv[++I]));
    } else if (std::strcmp(Argv[I], "--run") == 0) {
      Run = true;
    } else if (std::strcmp(Argv[I], "--global-lock") == 0) {
      GlobalLock = true;
    } else if (std::strcmp(Argv[I], "--quiet") == 0) {
      Quiet = true;
    } else if (Argv[I][0] == '-') {
      usage();
      return 2;
    } else {
      Path = Argv[I];
    }
  }
  if (!Path) {
    usage();
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Path);
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  CompileOptions Options;
  Options.K = K;
  std::unique_ptr<Compilation> C = compile(Source, Options);
  if (!C->ok()) {
    std::fputs(C->diagnostics().str().c_str(), stderr);
    return 1;
  }

  if (!Quiet) {
    std::printf("%s", C->transformedText().c_str());
    for (const auto &Section : C->inference().sections()) {
      std::printf("; section #%u in %s: %s\n", Section.SectionId,
                  Section.Function ? Section.Function->name().c_str() : "?",
                  Section.Locks.str().c_str());
    }
    LockCensus Census = C->inference().census();
    std::printf("; locks: fine-ro=%u fine-rw=%u coarse-ro=%u coarse-rw=%u\n",
                Census.FineRO, Census.FineRW, Census.CoarseRO,
                Census.CoarseRW);
  }

  if (Run) {
    InterpOptions RunOptions;
    RunOptions.Mode = GlobalLock ? AtomicMode::GlobalLock
                                 : AtomicMode::Inferred;
    InterpResult Result = C->run(RunOptions);
    if (!Result.Ok) {
      std::fprintf(stderr, "run failed: %s\n", Result.Error.c_str());
      return 1;
    }
    std::printf("; run ok, main returned %lld, %llu steps\n",
                static_cast<long long>(Result.MainResult),
                static_cast<unsigned long long>(Result.TotalSteps));
  }
  return 0;
}
