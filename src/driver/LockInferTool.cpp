//===--- LockInferTool.cpp - The lockinfer command-line tool -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI driver: reads a program with atomic sections, infers locks, prints
/// the transformed program and per-section lock sets, and optionally runs
/// it in the checking interpreter.
///
///   lockinfer [options] file.atom
///
/// Options are described by a single table (spec, value arity, help
/// text); the parser and the usage text are both generated from it, and
/// malformed invocations (unknown flags, missing or non-numeric values,
/// several input files) are rejected with a diagnostic.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace lockin;

namespace {

struct CliOptions {
  unsigned K = 3;
  unsigned Jobs = 0;
  bool Run = false;
  bool GlobalLock = false;
  bool Quiet = false;
  bool TimePasses = false;
  bool Stats = false;
  bool Help = false;
  std::string Path;
};

bool parseUnsigned(const char *Text, unsigned &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || Value > 0xffffffffUL)
    return false;
  Out = static_cast<unsigned>(Value);
  return true;
}

struct OptionSpec {
  const char *Short;      ///< e.g. "-k", or nullptr
  const char *Long;       ///< e.g. "--jobs", or nullptr
  const char *ValueName;  ///< non-null iff the option takes a value
  const char *Help;
  bool (*Apply)(CliOptions &, const char *Value);
};

const OptionSpec Options[] = {
    {"-k", nullptr, "N", "expression-lock depth limit (default 3)",
     [](CliOptions &O, const char *V) { return parseUnsigned(V, O.K); }},
    {"-j", "--jobs", "N",
     "analysis worker threads; 0 = hardware concurrency (default), 1 = "
     "serial",
     [](CliOptions &O, const char *V) { return parseUnsigned(V, O.Jobs); }},
    {nullptr, "--run", nullptr, "execute the program in the interpreter",
     [](CliOptions &O, const char *) { return O.Run = true; }},
    {nullptr, "--global-lock", nullptr,
     "run with one global lock instead of the inferred locks",
     [](CliOptions &O, const char *) { return O.GlobalLock = true; }},
    {nullptr, "--quiet", nullptr, "suppress the transformed-program report",
     [](CliOptions &O, const char *) { return O.Quiet = true; }},
    {nullptr, "--time-passes", nullptr,
     "print per-pass wall times after compiling",
     [](CliOptions &O, const char *) { return O.TimePasses = true; }},
    {nullptr, "--stats", nullptr,
     "print analysis counters (SCCs, summaries, caches)",
     [](CliOptions &O, const char *) { return O.Stats = true; }},
    {nullptr, "--help", nullptr, "show this help",
     [](CliOptions &O, const char *) { return O.Help = true; }},
};

void usage(std::FILE *To) {
  std::fputs("usage: lockinfer [options] file.atom\noptions:\n", To);
  for (const OptionSpec &Spec : Options) {
    char Flags[48];
    std::snprintf(Flags, sizeof(Flags), "%s%s%s %s",
                  Spec.Short ? Spec.Short : "",
                  Spec.Short && Spec.Long ? ", " : "",
                  Spec.Long ? Spec.Long : "",
                  Spec.ValueName ? Spec.ValueName : "");
    std::fprintf(To, "  %-22s %s\n", Flags, Spec.Help);
  }
}

const OptionSpec *findOption(const char *Arg) {
  for (const OptionSpec &Spec : Options)
    if ((Spec.Short && std::strcmp(Arg, Spec.Short) == 0) ||
        (Spec.Long && std::strcmp(Arg, Spec.Long) == 0))
      return &Spec;
  return nullptr;
}

/// Returns true on success; on failure prints a diagnostic and usage.
bool parseArgs(int Argc, char **Argv, CliOptions &Out) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-') {
      if (!Out.Path.empty()) {
        std::fprintf(stderr, "error: multiple input files ('%s' and '%s')\n",
                     Out.Path.c_str(), Arg);
        return false;
      }
      Out.Path = Arg;
      continue;
    }
    const OptionSpec *Spec = findOption(Arg);
    if (!Spec) {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return false;
    }
    const char *Value = nullptr;
    if (Spec->ValueName) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: option '%s' requires a value\n", Arg);
        return false;
      }
      Value = Argv[++I];
    }
    if (!Spec->Apply(Out, Value)) {
      std::fprintf(stderr, "error: invalid value '%s' for option '%s'\n",
                   Value ? Value : "", Arg);
      return false;
    }
  }
  if (Out.Help)
    return true;
  if (Out.Path.empty()) {
    std::fprintf(stderr, "error: no input file\n");
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Cli;
  if (!parseArgs(Argc, Argv, Cli)) {
    usage(stderr);
    return 2;
  }
  if (Cli.Help) {
    usage(stdout);
    return 0;
  }

  std::ifstream In(Cli.Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Cli.Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  std::string Source = Buffer.str();

  CompileOptions Options;
  Options.K = Cli.K;
  Options.Jobs = Cli.Jobs;
  std::unique_ptr<Compilation> C = compile(Source, Options);
  if (!C->ok()) {
    std::fputs(C->diagnostics().str().c_str(), stderr);
    return 1;
  }

  if (!Cli.Quiet)
    std::fputs(C->report().c_str(), stdout);
  if (Cli.TimePasses)
    std::fputs(C->pipelineStats().renderTimings().c_str(), stdout);
  if (Cli.Stats)
    std::fputs(C->pipelineStats().renderStats().c_str(), stdout);

  if (Cli.Run) {
    InterpOptions RunOptions;
    RunOptions.Mode = Cli.GlobalLock ? AtomicMode::GlobalLock
                                     : AtomicMode::Inferred;
    InterpResult Result = C->run(RunOptions);
    if (!Result.Ok) {
      std::fprintf(stderr, "run failed: %s\n", Result.Error.c_str());
      return 1;
    }
    std::printf("; run ok, main returned %lld, %llu steps\n",
                static_cast<long long>(Result.MainResult),
                static_cast<unsigned long long>(Result.TotalSteps));
  }
  return 0;
}
