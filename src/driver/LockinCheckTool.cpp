//===--- LockinCheckTool.cpp - The lockin-check command-line tool --------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standalone concurrency-bug checker: compiles a program, runs the four
/// check passes (MHP, lock-set, lock-order, report) over the inference
/// result, and writes the findings as deterministic JSON and/or SARIF
/// 2.1.0.
///
///   lockin-check [options] file.atom
///     -k N                    expression-lock depth limit (default 3)
///     -j, --jobs N            inference worker threads (0 = hw)
///     --json-out FILE         write the JSON report to FILE ('-' = stdout)
///     --sarif-out FILE        write the SARIF report to FILE ('-' = stdout)
///     --elide-never-parallel  enable MHP-driven lock elision
///     --stats                 print per-pass timings + counters to stderr
///
/// With neither --json-out nor --sarif-out the JSON report goes to
/// stdout. Exit codes: 0 = analysis ran (findings do NOT affect the exit
/// code — this is a reporter, not a gate), 1 = compile failure, 2 = usage
/// error.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lockin;

namespace {

struct CheckCliOptions {
  unsigned K = 3;
  unsigned Jobs = 0;
  bool ElideNeverParallel = false;
  bool Stats = false;
  bool Help = false;
  std::string JsonOut;  ///< empty = default (stdout unless --sarif-out)
  std::string SarifOut; ///< empty = off
  std::string Path;
};

void usage(std::FILE *To) {
  std::fputs(
      "usage: lockin-check [options] file.atom\n"
      "options:\n"
      "  -k N                     expression-lock depth limit (default 3)\n"
      "  -j, --jobs N             inference worker threads; 0 = hardware\n"
      "  --json-out FILE          write the JSON report to FILE ('-' = "
      "stdout)\n"
      "  --sarif-out FILE         write SARIF 2.1.0 to FILE ('-' = stdout)\n"
      "  --elide-never-parallel   elide locks for never-parallel sections\n"
      "  --stats                  per-pass timings + counters to stderr\n"
      "  --help                   show this help\n",
      To);
}

bool parseCheckArgs(int Argc, const char *const *Argv, CheckCliOptions &Out) {
  auto value = [&](int &I, const char *Arg) -> const char * {
    const char *Eq = std::strchr(Arg, '=');
    if (Eq)
      return Eq + 1;
    if (I + 1 >= Argc) {
      std::fprintf(stderr, "error: option '%s' requires a value\n", Arg);
      return nullptr;
    }
    return Argv[++I];
  };
  auto matches = [](const char *Arg, const char *Name) {
    size_t Len = std::strlen(Name);
    return std::strncmp(Arg, Name, Len) == 0 &&
           (Arg[Len] == '\0' || Arg[Len] == '=');
  };
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (Arg[0] != '-') {
      if (!Out.Path.empty()) {
        std::fprintf(stderr, "error: multiple input files ('%s' and '%s')\n",
                     Out.Path.c_str(), Arg);
        return false;
      }
      Out.Path = Arg;
    } else if (matches(Arg, "-k")) {
      const char *V = value(I, Arg);
      if (!V || !cli::parseUnsigned(V, Out.K))
        return false;
    } else if (matches(Arg, "-j") || matches(Arg, "--jobs")) {
      const char *V = value(I, Arg);
      if (!V || !cli::parseUnsigned(V, Out.Jobs))
        return false;
    } else if (matches(Arg, "--json-out")) {
      const char *V = value(I, Arg);
      if (!V || !*V)
        return false;
      Out.JsonOut = V;
    } else if (matches(Arg, "--sarif-out")) {
      const char *V = value(I, Arg);
      if (!V || !*V)
        return false;
      Out.SarifOut = V;
    } else if (std::strcmp(Arg, "--elide-never-parallel") == 0) {
      Out.ElideNeverParallel = true;
    } else if (std::strcmp(Arg, "--stats") == 0) {
      Out.Stats = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      Out.Help = true;
      return true;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg);
      return false;
    }
  }
  if (Out.Path.empty()) {
    std::fprintf(stderr, "error: no input file\n");
    return false;
  }
  return true;
}

bool writeReport(const std::string &Dest, const std::string &Text) {
  if (Dest == "-") {
    std::fputs(Text.c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream Out(Dest);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Dest.c_str());
    return false;
  }
  Out << Text << "\n";
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  CheckCliOptions Cli;
  if (!parseCheckArgs(Argc, Argv, Cli)) {
    usage(stderr);
    return 2;
  }
  if (Cli.Help) {
    usage(stdout);
    return 0;
  }

  std::ifstream In(Cli.Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", Cli.Path.c_str());
    return 1;
  }
  std::stringstream Buffer;
  Buffer << In.rdbuf();

  CompileOptions Options;
  Options.K = Cli.K;
  Options.Jobs = Cli.Jobs;
  Options.Check = true;
  Options.ElideNeverParallel = Cli.ElideNeverParallel;
  std::unique_ptr<Compilation> C = compile(Buffer.str(), Options);
  if (!C->ok() || !C->checkReport()) {
    std::fputs(C->diagnostics().str().c_str(), stderr);
    return 1;
  }

  if (Cli.Stats) {
    std::fputs(C->pipelineStats().renderTimings().c_str(), stderr);
    std::fputs(C->pipelineStats().renderStats().c_str(), stderr);
  }

  const check::CheckReport &R = *C->checkReport();
  bool WroteAny = false;
  if (!Cli.JsonOut.empty()) {
    if (!writeReport(Cli.JsonOut, R.json(Cli.Path)))
      return 1;
    WroteAny = true;
  }
  if (!Cli.SarifOut.empty()) {
    if (!writeReport(Cli.SarifOut, R.sarif(Cli.Path)))
      return 1;
    WroteAny = true;
  }
  if (!WroteAny)
    writeReport("-", R.json(Cli.Path));
  return 0;
}
