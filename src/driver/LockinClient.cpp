//===--- LockinClient.cpp - The lockin-client command-line tool ----------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin client for the lockin daemon:
///
///   lockin-client (--socket PATH | --port N) COMMAND [args]
///
///   analyze FILE [--unit NAME] [-k N] [--jobs N] [--force] [--run]
///       Send FILE for analysis; prints the report to stdout and the
///       cache accounting to stderr. --unit defaults to FILE's path —
///       re-analyzing the same unit after an edit is what exercises the
///       incremental path.
///   check FILE [--unit NAME] [-k N] [--jobs N] [--force]
///         [--elide-never-parallel]
///       Analyze + concurrency checker; prints the lockin-check JSON
///       report to stdout. An unchanged module is served from the
///       daemon's per-unit check cache (noted on stderr).
///   invalidate [UNIT]   drop one unit's cached summaries, or everything
///   stats               print the daemon's stats JSON
///   metrics             print the live metrics in Prometheus text format
///   flightrecord        print the last-N completed-request summaries
///   ping                liveness check
///   shutdown            ask the daemon to drain and exit
///
/// Exit codes: 0 ok, 1 daemon-reported failure, 2 usage/transport error.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace lockin;
using namespace lockin::service;

namespace {

void usage(std::FILE *To) {
  std::fputs(
      "usage: lockin-client (--socket PATH | --port N) COMMAND [args]\n"
      "commands:\n"
      "  analyze FILE [--unit NAME] [-k N] [--jobs N] [--force] [--run]\n"
      "  check FILE [--unit NAME] [-k N] [--jobs N] [--force] "
      "[--elide-never-parallel]\n"
      "  invalidate [UNIT]\n"
      "  stats\n"
      "  metrics\n"
      "  flightrecord\n"
      "  ping\n"
      "  shutdown\n",
      To);
}

bool parseUnsignedArg(const char *Text, unsigned &Out) {
  if (!Text || !*Text)
    return false;
  char *End = nullptr;
  unsigned long V = std::strtoul(Text, &End, 10);
  if (End == Text || *End != '\0' || V > 0xffffffffUL)
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Socket;
  int Port = -1;
  std::vector<const char *> Rest;
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--socket") == 0 && I + 1 < Argc) {
      Socket = Argv[++I];
    } else if (std::strcmp(Arg, "--port") == 0 && I + 1 < Argc) {
      unsigned P;
      if (!parseUnsignedArg(Argv[++I], P) || P > 65535) {
        std::fprintf(stderr, "error: bad port '%s'\n", Argv[I]);
        return 2;
      }
      Port = static_cast<int>(P);
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(stdout);
      return 0;
    } else {
      Rest.push_back(Arg);
    }
  }
  if ((Socket.empty() && Port < 0) || Rest.empty()) {
    usage(stderr);
    return 2;
  }

  Client Conn;
  std::string Err;
  bool Connected = Socket.empty() ? Conn.connectTcp(Port, Err)
                                  : Conn.connectUnix(Socket, Err);
  if (!Connected) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }

  std::string Command = Rest[0];
  Json Request = Json::object();
  bool PrintReport = false;
  bool PrintPrometheus = false;
  bool PrintCheck = false;
  if (Command == "analyze" || Command == "check") {
    if (Rest.size() < 2) {
      std::fprintf(stderr, "error: %s needs a FILE\n", Command.c_str());
      return 2;
    }
    std::string Path = Rest[1];
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path.c_str());
      return 2;
    }
    std::stringstream Buffer;
    Buffer << In.rdbuf();

    Request.set("op", Json::string(Command));
    Request.set("unit", Json::string(Path));
    Request.set("source", Json::string(Buffer.str()));
    for (size_t I = 2; I < Rest.size(); ++I) {
      const char *Arg = Rest[I];
      auto NextValue = [&](unsigned &Out) {
        return I + 1 < Rest.size() && parseUnsignedArg(Rest[++I], Out);
      };
      unsigned V;
      if (std::strcmp(Arg, "--unit") == 0 && I + 1 < Rest.size()) {
        Request.set("unit", Json::string(Rest[++I]));
      } else if (std::strcmp(Arg, "-k") == 0 && NextValue(V)) {
        Request.set("k", Json::integer(V));
      } else if (std::strcmp(Arg, "--jobs") == 0 && NextValue(V)) {
        Request.set("jobs", Json::integer(V));
      } else if (std::strcmp(Arg, "--force") == 0) {
        Request.set("force", Json::boolean(true));
      } else if (Command == "analyze" && std::strcmp(Arg, "--run") == 0) {
        Request.set("run", Json::boolean(true));
      } else if (Command == "check" &&
                 std::strcmp(Arg, "--elide-never-parallel") == 0) {
        Request.set("elideNeverParallel", Json::boolean(true));
      } else {
        std::fprintf(stderr, "error: bad %s argument '%s'\n",
                     Command.c_str(), Arg);
        return 2;
      }
    }
    PrintReport = Command == "analyze";
    PrintCheck = Command == "check";
  } else if (Command == "invalidate") {
    Request.set("op", Json::string("invalidate"));
    if (Rest.size() > 1)
      Request.set("unit", Json::string(Rest[1]));
  } else if (Command == "metrics") {
    // The response carries the whole registry as Prometheus text; print
    // that raw so the output pipes straight into promtool / a scraper.
    Request.set("op", Json::string(Command));
    PrintPrometheus = true;
  } else if (Command == "stats" || Command == "ping" ||
             Command == "shutdown" || Command == "flightrecord") {
    Request.set("op", Json::string(Command));
  } else {
    std::fprintf(stderr, "error: unknown command '%s'\n", Command.c_str());
    usage(stderr);
    return 2;
  }

  Json Response;
  if (!Conn.call(Request, Response, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 2;
  }
  if (!Response.getBool("ok", false)) {
    std::fprintf(stderr, "error: %s\n",
                 Response.getString("error", "request failed").c_str());
    return 1;
  }
  if (PrintPrometheus) {
    std::fputs(Response.getString("prometheus", "").c_str(), stdout);
  } else if (PrintCheck) {
    const Json *Check = Response.get("check");
    std::fputs(Check ? Check->str().c_str() : "{}", stdout);
    std::fputc('\n', stdout);
    std::fprintf(
        stderr, "; check: cached=%s hits=%llu misses=%llu sections=%llu\n",
        Response.getBool("checkCached", false) ? "yes" : "no",
        static_cast<unsigned long long>(Response.getUint("cacheHits", 0)),
        static_cast<unsigned long long>(Response.getUint("cacheMisses", 0)),
        static_cast<unsigned long long>(Response.getUint("sections", 0)));
  } else if (PrintReport) {
    std::fputs(Response.getString("report", "").c_str(), stdout);
    std::fprintf(
        stderr, "; cache: hits=%llu misses=%llu sections=%llu\n",
        static_cast<unsigned long long>(Response.getUint("cacheHits", 0)),
        static_cast<unsigned long long>(Response.getUint("cacheMisses", 0)),
        static_cast<unsigned long long>(Response.getUint("sections", 0)));
    if (Response.getBool("runOk", false))
      std::fprintf(
          stderr, "; run ok, main returned %lld, %llu steps\n",
          static_cast<long long>(Response.getInt("mainResult", 0)),
          static_cast<unsigned long long>(Response.getUint("totalSteps", 0)));
  } else {
    std::fputs(Response.str().c_str(), stdout);
    std::fputc('\n', stdout);
  }
  return 0;
}
