//===--- LockinFuzz.cpp - Differential fuzzing driver ---------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `lockin-fuzz` executable: a thin argv shell over
/// fuzz::runCampaign. Every failure the campaign prints carries a
/// one-line invocation of this binary that reproduces it.
///
//===----------------------------------------------------------------------===//

#include "driver/Cli.h"
#include "fuzz/Fuzzer.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

using namespace lockin;

namespace {

void usage(std::FILE *To) {
  std::fprintf(To, R"(usage: lockin-fuzz [options]

Differential fuzzer for the lock-inference pipeline: generates random
well-typed programs with atomic sections and cross-checks analysis
reports and execution backends against each other.

  --mode=M         diff | syntax | replay | all        (default: diff)
  --family=F       seq | commute | stress | all        (default: all)
  --seeds N        number of programs to generate      (default: 100)
  --seed S         run exactly one seed (sets --seeds 1)
  --seed-start S   first seed of the range             (default: 1)
  --budget-ms M    wall-clock budget; with no explicit --seeds the seed
                   range becomes unbounded and the budget is the only stop
  --corpus DIR     write failing reproducers to DIR
  --replay DIR     replay a corpus directory (sets --mode=replay)
  --syntax-seeds DIR  extra *.atom / *.cpp seed inputs for --mode=syntax
  --minimize       delta-debug failures before persisting them
  --strip-locks    fault injection: execute with inferred locks stripped
                   (the oracles must catch it; validates the fuzzer)
  --k K            primary k for execution oracles     (default: 3)
  --jobs J         narrow the report --jobs sweep to {1, J}
  --yield-seed Y   narrow the yield-schedule sweep to {Y}
  --timeout-ms T   per-run hang watchdog               (default: 20000)
  --verbose        log passing programs too
  --help           this text
)");
}

struct Args {
  fuzz::CampaignOptions Options;
  bool SeedsGiven = false;
  bool BudgetGiven = false;
  bool Help = false;
  bool Error = false;
};

/// Accepts "--flag value" and "--flag=value".
bool takeValue(int Argc, const char *const *Argv, int &I,
               const char *Flag, std::string &Out) {
  size_t FlagLen = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, FlagLen) != 0)
    return false;
  if (Argv[I][FlagLen] == '=') {
    Out = Argv[I] + FlagLen + 1;
    return true;
  }
  if (Argv[I][FlagLen] == '\0' && I + 1 < Argc) {
    Out = Argv[++I];
    return true;
  }
  return false;
}

bool parseU64(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t V = 0;
  for (char Ch : Text) {
    if (Ch < '0' || Ch > '9')
      return false;
    uint64_t Next = V * 10 + static_cast<uint64_t>(Ch - '0');
    if (Next < V)
      return false;
    V = Next;
  }
  Out = V;
  return true;
}

Args parseArgs(int Argc, const char *const *Argv) {
  Args A;
  auto Fail = [&](const std::string &Message) {
    std::fprintf(stderr, "lockin-fuzz: %s\n", Message.c_str());
    A.Error = true;
  };
  for (int I = 1; I < Argc && !A.Error; ++I) {
    std::string Value;
    if (std::strcmp(Argv[I], "--help") == 0) {
      A.Help = true;
    } else if (std::strcmp(Argv[I], "--minimize") == 0) {
      A.Options.Minimize = true;
    } else if (std::strcmp(Argv[I], "--strip-locks") == 0) {
      A.Options.StripLocks = true;
    } else if (std::strcmp(Argv[I], "--verbose") == 0) {
      A.Options.Verbose = true;
    } else if (takeValue(Argc, Argv, I, "--mode", Value)) {
      if (Value != "diff" && Value != "syntax" && Value != "replay" &&
          Value != "all")
        Fail("unknown --mode '" + Value + "'");
      A.Options.Mode = Value;
    } else if (takeValue(Argc, Argv, I, "--family", Value)) {
      fuzz::Family F;
      if (Value != "all" && !fuzz::familyFromName(Value, F))
        Fail("unknown --family '" + Value + "'");
      A.Options.FamilyFilter = Value;
    } else if (takeValue(Argc, Argv, I, "--seeds", Value)) {
      if (!parseU64(Value, A.Options.Seeds))
        Fail("bad --seeds '" + Value + "'");
      A.SeedsGiven = true;
    } else if (takeValue(Argc, Argv, I, "--seed-start", Value)) {
      if (!parseU64(Value, A.Options.SeedStart))
        Fail("bad --seed-start '" + Value + "'");
    } else if (takeValue(Argc, Argv, I, "--seed", Value)) {
      if (!parseU64(Value, A.Options.SeedStart))
        Fail("bad --seed '" + Value + "'");
      A.Options.Seeds = 1;
      A.SeedsGiven = true;
    } else if (takeValue(Argc, Argv, I, "--budget-ms", Value)) {
      if (!parseU64(Value, A.Options.BudgetMs))
        Fail("bad --budget-ms '" + Value + "'");
      A.BudgetGiven = true;
    } else if (takeValue(Argc, Argv, I, "--corpus", Value)) {
      A.Options.CorpusDir = Value;
    } else if (takeValue(Argc, Argv, I, "--replay", Value)) {
      A.Options.ReplayDir = Value;
      A.Options.Mode = "replay";
    } else if (takeValue(Argc, Argv, I, "--syntax-seeds", Value)) {
      A.Options.SyntaxSeedDir = Value;
    } else if (takeValue(Argc, Argv, I, "--k", Value)) {
      unsigned K;
      if (!cli::parseUnsigned(Value.c_str(), K) || K > 9)
        Fail("bad --k '" + Value + "' (expected 0..9)");
      else
        A.Options.K = K;
    } else if (takeValue(Argc, Argv, I, "--jobs", Value)) {
      unsigned Jobs;
      if (!cli::parseUnsigned(Value.c_str(), Jobs))
        Fail("bad --jobs '" + Value + "'");
      else
        A.Options.Jobs = Jobs;
    } else if (takeValue(Argc, Argv, I, "--yield-seed", Value)) {
      if (!parseU64(Value, A.Options.YieldSeed))
        Fail("bad --yield-seed '" + Value + "'");
    } else if (takeValue(Argc, Argv, I, "--timeout-ms", Value)) {
      if (!parseU64(Value, A.Options.TimeoutMs))
        Fail("bad --timeout-ms '" + Value + "'");
    } else {
      Fail("unknown argument '" + std::string(Argv[I]) + "'");
    }
  }
  // A budget with no explicit seed count means "fuzz until the clock
  // runs out".
  if (A.BudgetGiven && !A.SeedsGiven)
    A.Options.Seeds = UINT64_MAX;
  if (A.Options.Mode == "replay" && A.Options.ReplayDir.empty()) {
    std::fprintf(stderr, "lockin-fuzz: --mode=replay needs --replay DIR\n");
    A.Error = true;
  }
  return A;
}

} // namespace

int main(int Argc, char **Argv) {
  Args A = parseArgs(Argc, Argv);
  if (A.Help) {
    usage(stdout);
    return 0;
  }
  if (A.Error) {
    usage(stderr);
    return 2;
  }
  fuzz::CampaignResult R = fuzz::runCampaign(A.Options, std::cout);
  return fuzz::campaignExitCode(R);
}
