//===--- PassManager.cpp - Named pipeline passes and their stats ---------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "driver/PassManager.h"

#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Trace.h"

#include <cstdio>

using namespace lockin;

void PassManager::record(std::string Name,
                         std::chrono::steady_clock::time_point Start) {
  auto End = std::chrono::steady_clock::now();
  double Seconds = std::chrono::duration<double>(End - Start).count();
  if constexpr (obs::kEnabled) {
    uint64_t Ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count());
    obs::MetricsRegistry &Reg = Metrics ? *Metrics : obs::metrics();
    Reg.counter("pass." + Name + ".ns").add(Ns);
    obs::Tracer &T = Trace ? *Trace : obs::tracer();
    if (T.enabled()) {
      uint64_t EndNs = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              End.time_since_epoch())
              .count());
      T.span(obs::EventKind::PassSpan, EndNs - Ns, Ns, T.internName(Name));
    }
  }
  Timings.push_back(PassTiming{std::move(Name), Seconds});
}

double PipelineStats::totalSeconds() const {
  double Total = 0;
  for (const PassTiming &P : Passes)
    Total += P.Seconds;
  return Total;
}

double PipelineStats::passSeconds(std::string_view Name) const {
  for (const PassTiming &P : Passes)
    if (P.Name == Name)
      return P.Seconds;
  return 0;
}

std::string PipelineStats::renderTimings() const {
  std::string Out = "; pass timings:\n";
  char Line[128];
  for (const PassTiming &P : Passes) {
    std::snprintf(Line, sizeof(Line), ";   %-10s %10.6fs\n",
                  P.Name.c_str(), P.Seconds);
    Out += Line;
  }
  std::snprintf(Line, sizeof(Line), ";   %-10s %10.6fs\n", "total",
                totalSeconds());
  Out += Line;
  return Out;
}

std::string PipelineStats::renderStats() const {
  if (!HasInference)
    return std::string();
  const InferenceStats &S = Inference;
  char Line[256];
  std::string Out;
  std::snprintf(Line, sizeof(Line),
                "; stats: functions=%u reachable=%u sccs=%u "
                "recursive-sccs=%u depth=%u sections=%u jobs=%u\n",
                S.Functions, S.ReachableFunctions, S.Sccs, S.RecursiveSccs,
                S.CondensationDepth, S.Sections, S.JobsUsed);
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "; summaries: entries=%llu evaluations=%llu "
                "fixpoint-rounds=%llu final-hits=%llu peak-locks=%llu\n",
                static_cast<unsigned long long>(S.Summaries.Entries),
                static_cast<unsigned long long>(S.Summaries.Evaluations),
                static_cast<unsigned long long>(S.Summaries.SccFixpointRounds),
                static_cast<unsigned long long>(S.Summaries.FinalHits),
                static_cast<unsigned long long>(S.Summaries.PeakEntryLocks));
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "; transfer-cache: hits=%llu misses=%llu gen-hits=%llu "
                "gen-misses=%llu\n",
                static_cast<unsigned long long>(S.TransferCacheHits),
                static_cast<unsigned long long>(S.TransferCacheMisses),
                static_cast<unsigned long long>(S.GenCacheHits),
                static_cast<unsigned long long>(S.GenCacheMisses));
  Out += Line;
  std::snprintf(Line, sizeof(Line),
                "; interner: nodes=%llu hits=%llu deduped=%llu "
                "arena-bytes=%llu\n",
                static_cast<unsigned long long>(S.InternerNodes),
                static_cast<unsigned long long>(S.InternerHits),
                static_cast<unsigned long long>(S.Summaries.Deduped),
                static_cast<unsigned long long>(S.ArenaBytes));
  Out += Line;
  if (HasCheck) {
    std::snprintf(Line, sizeof(Line),
                  "; check: findings=%u mhp-pairs=%llu elided=%u "
                  "bare-accesses=%u spawn-sites=%u\n",
                  Check.Findings,
                  static_cast<unsigned long long>(Check.MhpPairs),
                  Check.ElidedSections, Check.BareAccesses,
                  Check.SpawnSites);
    Out += Line;
  }
  return Out;
}
