//===--- PassManager.h - Named pipeline passes and their stats --*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The driver's pipeline is a sequence of named passes
/// (parse → sema → lower → callgraph → points-to → infer → transform).
/// PassManager runs each pass and records its wall time; PipelineStats is
/// the machine-readable record the tool's --time-passes/--stats flags and
/// the benchmarks consume.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_PASSMANAGER_H
#define LOCKIN_DRIVER_PASSMANAGER_H

#include "check/BugReport.h"
#include "infer/Inference.h"

#include <chrono>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace lockin {

namespace obs {
class MetricsRegistry;
class Tracer;
} // namespace obs

struct PassTiming {
  std::string Name;
  double Seconds = 0;
};

/// Everything the pipeline can report about one compilation: per-pass wall
/// times plus the inference engine's counters when the infer pass ran.
struct PipelineStats {
  std::vector<PassTiming> Passes;
  InferenceStats Inference;
  bool HasInference = false;
  check::CheckStats Check;
  bool HasCheck = false;

  double totalSeconds() const;
  /// Seconds of the named pass, or 0 if it did not run.
  double passSeconds(std::string_view Name) const;

  /// "; pass timings:" block for --time-passes.
  std::string renderTimings() const;
  /// "; stats:" block for --stats (empty if no inference ran).
  std::string renderStats() const;
};

/// Runs passes and accumulates their timings, in execution order.
///
/// Observability is an explicit context: pass a registry/tracer to keep a
/// run's counters and spans private (concurrent compilations in the
/// daemon, the re-entrancy test), or default to the process-wide
/// singletons (the CLI tool's behavior).
class PassManager {
public:
  PassManager() = default;
  PassManager(obs::MetricsRegistry *Metrics, obs::Tracer *Trace)
      : Metrics(Metrics), Trace(Trace) {}

  template <typename Fn> auto run(std::string Name, Fn &&Body) {
    auto Start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(Body())>) {
      Body();
      record(std::move(Name), Start);
    } else {
      auto Result = Body();
      record(std::move(Name), Start);
      return Result;
    }
  }

  const std::vector<PassTiming> &timings() const { return Timings; }

private:
  void record(std::string Name,
              std::chrono::steady_clock::time_point Start);

  obs::MetricsRegistry *Metrics = nullptr; ///< null = obs::metrics()
  obs::Tracer *Trace = nullptr;            ///< null = obs::tracer()
  std::vector<PassTiming> Timings;
};

} // namespace lockin

#endif // LOCKIN_DRIVER_PASSMANAGER_H
