//===--- Tool.cpp - Re-entrant lockinfer tool runs ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
//
// runAnalysis only; runServe lives in src/service/ServeTool.cpp so the
// driver library does not depend on the service library (which depends on
// the driver).
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"

#include "driver/Compiler.h"
#include "obs/LockProfiler.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cstdio>
#include <fstream>
#include <iostream>

using namespace lockin;
using namespace lockin::tool;

int tool::drainObsOutputs(const cli::CliOptions &Opts) {
  if (Opts.ProfileLocks)
    std::fputs(obs::lockProfiler().renderTable().c_str(), stdout);
  if (!Opts.MetricsOut.empty()) {
    if (Opts.MetricsOut == "-") {
      obs::metrics().writeJson(std::cout);
    } else {
      std::ofstream Out(Opts.MetricsOut);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     Opts.MetricsOut.c_str());
        return 1;
      }
      obs::metrics().writeJson(Out);
    }
  }
  if (!Opts.TraceOut.empty()) {
    std::ofstream Out(Opts.TraceOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TraceOut.c_str());
      return 1;
    }
    obs::tracer().writeChromeJson(Out);
    if (uint64_t Dropped = obs::tracer().totalDropped())
      std::fprintf(stderr,
                   "note: trace ring buffers dropped %llu oldest events\n",
                   static_cast<unsigned long long>(Dropped));
  }
  return 0;
}

int tool::runAnalysis(const cli::CliOptions &Opts, const std::string &Source,
                      ToolContext &Ctx) {
  CompileOptions Options;
  Options.K = Opts.K;
  Options.Jobs = Opts.Jobs;
  Options.Check = Opts.Check;
  Options.ElideNeverParallel = Opts.ElideNeverParallel;
  Options.Metrics = Ctx.Metrics;
  Options.Trace = Ctx.Trace;
  std::unique_ptr<Compilation> C = compile(Source, Options);
  if (!C->ok()) {
    Ctx.Log += C->diagnostics().str();
    return 1;
  }

  if (!Opts.Quiet)
    Ctx.Out += C->report();
  if (Opts.Check && C->checkReport())
    Ctx.Out += C->checkReport()->json(Opts.Path) + "\n";
  if (Opts.TimePasses)
    Ctx.Log += C->pipelineStats().renderTimings();
  if (Opts.Stats)
    Ctx.Log += C->pipelineStats().renderStats();

  if (Opts.Run) {
    InterpOptions RunOptions;
    RunOptions.Mode = Opts.Adaptive  ? AtomicMode::Adaptive
                      : Opts.GlobalLock ? AtomicMode::GlobalLock
                                        : AtomicMode::Inferred;
    RunOptions.AdaptiveEpochMs = Opts.Adaptive ? Opts.AdaptiveEpochMs : 0;
    RunOptions.InjectYields = Opts.InjectYields;
    RunOptions.YieldSeed = Opts.YieldSeed;
    InterpResult Result = C->run(RunOptions);
    if (!Result.Ok) {
      Ctx.Log += "run failed: " + Result.Error + "\n";
      return 1;
    }
    char Line[96];
    std::snprintf(Line, sizeof(Line),
                  "; run ok, main returned %lld, %llu steps\n",
                  static_cast<long long>(Result.MainResult),
                  static_cast<unsigned long long>(Result.TotalSteps));
    Ctx.Out += Line;
  }
  return 0;
}
