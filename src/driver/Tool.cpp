//===--- Tool.cpp - Re-entrant lockinfer tool runs ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
//
// runAnalysis only; runServe lives in src/service/ServeTool.cpp so the
// driver library does not depend on the service library (which depends on
// the driver).
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"

#include "driver/Compiler.h"

#include <cstdio>

using namespace lockin;
using namespace lockin::tool;

int tool::runAnalysis(const cli::CliOptions &Opts, const std::string &Source,
                      ToolContext &Ctx) {
  CompileOptions Options;
  Options.K = Opts.K;
  Options.Jobs = Opts.Jobs;
  Options.Metrics = Ctx.Metrics;
  Options.Trace = Ctx.Trace;
  std::unique_ptr<Compilation> C = compile(Source, Options);
  if (!C->ok()) {
    Ctx.Log += C->diagnostics().str();
    return 1;
  }

  if (!Opts.Quiet)
    Ctx.Out += C->report();
  if (Opts.TimePasses)
    Ctx.Log += C->pipelineStats().renderTimings();
  if (Opts.Stats)
    Ctx.Log += C->pipelineStats().renderStats();

  if (Opts.Run) {
    InterpOptions RunOptions;
    RunOptions.Mode = Opts.Adaptive  ? AtomicMode::Adaptive
                      : Opts.GlobalLock ? AtomicMode::GlobalLock
                                        : AtomicMode::Inferred;
    RunOptions.AdaptiveEpochMs = Opts.Adaptive ? Opts.AdaptiveEpochMs : 0;
    RunOptions.InjectYields = Opts.InjectYields;
    RunOptions.YieldSeed = Opts.YieldSeed;
    InterpResult Result = C->run(RunOptions);
    if (!Result.Ok) {
      Ctx.Log += "run failed: " + Result.Error + "\n";
      return 1;
    }
    char Line[96];
    std::snprintf(Line, sizeof(Line),
                  "; run ok, main returned %lld, %llu steps\n",
                  static_cast<long long>(Result.MainResult),
                  static_cast<unsigned long long>(Result.TotalSteps));
    Ctx.Out += Line;
  }
  return 0;
}
