//===--- Tool.h - Re-entrant lockinfer tool runs ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tool's one-shot analysis run, factored out of main() over an
/// explicit context: every output the run produces (stdout payload,
/// stderr payload, metrics, trace spans) goes through the ToolContext
/// instead of process globals, so concurrent runs with distinct contexts
/// share nothing mutable. The TSan re-entrancy test drives two
/// runAnalysis calls from two threads; the daemon's workers rely on the
/// same property through service/Incremental.h.
///
/// main() stays a thin shell: parse arguments, read the file, pick
/// runAnalysis or runServe, print the context.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_DRIVER_TOOL_H
#define LOCKIN_DRIVER_TOOL_H

#include "driver/Cli.h"

#include <string>

namespace lockin {

namespace obs {
class MetricsRegistry;
class Tracer;
} // namespace obs

namespace tool {

/// Everything one analysis run reads from and writes to. Null obs
/// pointers fall back to the process-wide singletons (what the CLI tool
/// wants); pass private instances for isolated concurrent runs.
struct ToolContext {
  std::string Out; ///< stdout payload (report, run result line)
  std::string Log; ///< stderr payload (diagnostics, timings, stats)
  obs::MetricsRegistry *Metrics = nullptr;
  obs::Tracer *Trace = nullptr;
};

/// Compiles (and with Opts.Run executes) \p Source. Returns the process
/// exit code; all text lands in \p Ctx. Re-entrant.
int runAnalysis(const cli::CliOptions &Opts, const std::string &Source,
                ToolContext &Ctx);

/// Daemon mode (--serve): listens, serves, drains on SIGTERM/SIGINT or a
/// shutdown request, then returns the exit code.
int runServe(const cli::CliOptions &Opts);

/// Drains the armed process-wide observability outputs: the
/// --profile-locks table to stdout, --metrics-out JSON, --trace-out
/// Chrome JSON (with a dropped-events note on stderr). Shared by the
/// one-shot tool at exit and by runServe after the drain completes, so a
/// SIGTERM'd daemon still writes its snapshots. Returns 0, or 1 when an
/// output file cannot be opened.
int drainObsOutputs(const cli::CliOptions &Opts);

} // namespace tool
} // namespace lockin

#endif // LOCKIN_DRIVER_TOOL_H
