//===--- Corpus.cpp - Reproducer persistence and replay -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace lockin;
using namespace lockin::fuzz;

namespace fs = std::filesystem;

std::string fuzz::renderHeader(const OracleFailure &F, const FuzzConfig &C) {
  std::ostringstream H;
  H << "// lockin-fuzz reproducer\n";
  H << "// oracle: " << F.Oracle << "\n";
  H << "// config: family=" << familyName(C.F) << " seed=" << C.Seed
    << " k=" << C.K << " strip-locks=" << (C.StripLocks ? 1 : 0) << "\n";
  H << "// reproduce: " << F.ReproCmd << "\n";
  // Multi-line details stay inside the comment block.
  std::istringstream Detail(F.Detail);
  std::string Line;
  while (std::getline(Detail, Line))
    H << "// detail: " << Line << "\n";
  return H.str();
}

std::string fuzz::saveReproducer(const std::string &Dir,
                                 const std::string &Name,
                                 const std::string &Header,
                                 const std::string &Source,
                                 std::string &Error) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec) {
    Error = "cannot create corpus directory '" + Dir + "': " + Ec.message();
    return {};
  }
  fs::path Path = fs::path(Dir) / (Name + ".atom");
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out) {
    Error = "cannot open '" + Path.string() + "' for writing";
    return {};
  }
  Out << Header << Source;
  if (!Source.empty() && Source.back() != '\n')
    Out << '\n';
  Out.close();
  if (!Out) {
    Error = "short write to '" + Path.string() + "'";
    return {};
  }
  return Path.string();
}

std::vector<CorpusEntry> fuzz::loadCorpus(const std::string &Dir) {
  std::vector<CorpusEntry> Entries;
  std::error_code Ec;
  fs::directory_iterator It(Dir, Ec), End;
  if (Ec)
    return Entries;
  for (; It != End; It.increment(Ec)) {
    if (Ec)
      break;
    if (!It->is_regular_file() || It->path().extension() != ".atom")
      continue;
    std::ifstream In(It->path(), std::ios::binary);
    if (!In)
      continue;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Entries.push_back({It->path().string(), Buf.str()});
  }
  std::sort(Entries.begin(), Entries.end(),
            [](const CorpusEntry &A, const CorpusEntry &B) {
              return A.Path < B.Path;
            });
  return Entries;
}

FuzzConfig fuzz::configFromHeader(const std::string &Source) {
  FuzzConfig C;
  std::istringstream In(Source);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("//", 0) != 0)
      break; // header block ended
    size_t Tag = Line.find("config:");
    if (Tag == std::string::npos)
      continue;
    std::istringstream Fields(Line.substr(Tag + 7));
    std::string Field;
    while (Fields >> Field) {
      size_t Eq = Field.find('=');
      if (Eq == std::string::npos)
        continue;
      std::string Key = Field.substr(0, Eq);
      std::string Val = Field.substr(Eq + 1);
      if (Key == "family") {
        Family F;
        if (familyFromName(Val, F))
          C.F = F;
      } else if (Key == "seed") {
        C.Seed = std::strtoull(Val.c_str(), nullptr, 10);
      } else if (Key == "k") {
        C.K = static_cast<unsigned>(std::strtoul(Val.c_str(), nullptr, 10));
      }
    }
    break;
  }
  C.StripLocks = false; // see header comment
  return C;
}
