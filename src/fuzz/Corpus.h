//===--- Corpus.h - Reproducer persistence and replay -----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Failing inputs are persisted as `.atom` files whose leading `//`
/// comment block stamps what failed and how to reproduce it:
///
///   // lockin-fuzz reproducer
///   // oracle: exec
///   // config: family=commute seed=42 k=3 strip-locks=1
///   // reproduce: lockin-fuzz --family=commute --seed=42 --k=3 ...
///   // detail: variant 'stm yields=7' diverges ...
///
/// The lexer treats comments as trivia, so reproducers replay through the
/// normal pipeline unmodified. `tests/fuzz-corpus/` holds the checked-in
/// regression corpus: minimized once-failing inputs that the replay ctest
/// target re-runs through every oracle (with fault injection disabled) on
/// every build.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_CORPUS_H
#define LOCKIN_FUZZ_CORPUS_H

#include "fuzz/Oracles.h"

#include <string>
#include <vector>

namespace lockin {
namespace fuzz {

struct CorpusEntry {
  std::string Path;
  std::string Source; ///< full file contents, header included
};

/// Renders the header comment block for a failing input.
std::string renderHeader(const OracleFailure &F, const FuzzConfig &C);

/// Writes Header+Source to Dir/Name.atom (Dir is created if needed).
/// Returns the written path, or "" with \p Error filled on I/O failure.
std::string saveReproducer(const std::string &Dir, const std::string &Name,
                           const std::string &Header,
                           const std::string &Source, std::string &Error);

/// Loads every `*.atom` under \p Dir (sorted by filename).
std::vector<CorpusEntry> loadCorpus(const std::string &Dir);

/// Reconstructs the oracle configuration stamped in an entry's
/// `// config:` line; defaults when absent. StripLocks is always reset to
/// false: replay asserts the corpus passes on the current code, and fault
/// injection would trivially re-fail.
FuzzConfig configFromHeader(const std::string &Source);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_CORPUS_H
