//===--- Fuzzer.cpp - Fuzzing campaign driver -----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "driver/Compiler.h"
#include "fuzz/Corpus.h"
#include "fuzz/Generator.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Mutator.h"
#include "workloads/ToyPrograms.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace lockin;
using namespace lockin::fuzz;

namespace fs = std::filesystem;

FuzzConfig fuzz::configFor(const CampaignOptions &Options, Family F,
                           uint64_t Seed) {
  FuzzConfig C;
  C.F = F;
  C.Seed = Seed;
  C.K = Options.K;
  C.StripLocks = Options.StripLocks;
  C.TimeoutMs = Options.TimeoutMs;
  if (Options.YieldSeed != 0)
    C.YieldSeeds = {Options.YieldSeed};
  if (Options.Jobs != 0)
    C.JobsSweep = {1, Options.Jobs};
  return C;
}

namespace {

/// Re-runs exactly one oracle by name; true when it fails and \p Out is
/// filled. Used by the minimization predicate so shrinking only pays for
/// the oracle that originally fired.
bool runOneOracle(const std::string &Source, const FuzzConfig &C,
                  const std::string &Oracle, OracleFailure &Out) {
  if (Oracle == "frontend") {
    CompileOptions CO;
    CO.K = C.K;
    CO.Jobs = 1;
    auto Comp = compile(Source, CO);
    if (Comp->ok())
      return false;
    Out.Oracle = "frontend";
    Out.Kind = "rejected";
    Out.Detail = Comp->diagnostics().str();
    Out.ReproCmd = reproCommand(C);
    return true;
  }
  if (Oracle == "report")
    return !checkReportDeterminism(Source, C, Out);
  if (Oracle == "exec")
    return !checkExecEquivalence(Source, C, Out);
  if (Oracle == "soundness")
    return !checkSoundness(Source, C, Out);
  return !checkProgram(Source, C, Out);
}

struct Budget {
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  uint64_t LimitMs;
  explicit Budget(uint64_t LimitMs) : LimitMs(LimitMs) {}
  bool expired() const {
    if (LimitMs == 0)
      return false;
    auto Elapsed = std::chrono::steady_clock::now() - Start;
    return std::chrono::duration_cast<std::chrono::milliseconds>(Elapsed)
               .count() >= static_cast<int64_t>(LimitMs);
  }
};

void reportFailure(std::ostream &Log, const OracleFailure &F,
                   const std::string &Where) {
  Log << "FAIL " << Where << " oracle=" << F.Oracle << "\n";
  std::istringstream Detail(F.Detail);
  std::string Line;
  while (std::getline(Detail, Line))
    Log << "  " << Line << "\n";
  Log << "  reproduce: " << F.ReproCmd << "\n";
}

void persistFailure(const CampaignOptions &Options, const FuzzConfig &C,
                    const OracleFailure &F, const std::string &Source,
                    const std::string &Name, CampaignResult &R,
                    std::ostream &Log) {
  if (Options.CorpusDir.empty())
    return;
  std::string Error;
  std::string Path = saveReproducer(Options.CorpusDir, Name,
                                    renderHeader(F, C), Source, Error);
  if (Path.empty()) {
    Log << "  (corpus write failed: " << Error << ")\n";
    return;
  }
  R.SavedPaths.push_back(Path);
  Log << "  saved: " << Path << "\n";
}

std::vector<Family> familiesFor(const std::string &Filter) {
  Family F;
  if (familyFromName(Filter, F))
    return {F};
  return {Family::Seq, Family::Commute, Family::Stress};
}

void runDiffCampaign(const CampaignOptions &Options, const Budget &B,
                     CampaignResult &R, std::ostream &Log) {
  std::vector<Family> Families = familiesFor(Options.FamilyFilter);
  for (uint64_t I = 0; I < Options.Seeds && !B.expired(); ++I) {
    uint64_t Seed = Options.SeedStart + I;
    Family F = Families[Seed % Families.size()];
    FuzzConfig C = configFor(Options, F, Seed);
    std::string Source = generateProgram({F, Seed});
    ++R.Programs;
    OracleFailure Failure;
    if (checkProgram(Source, C, Failure)) {
      if (Options.Verbose)
        Log << "ok   family=" << familyName(F) << " seed=" << Seed << "\n";
      continue;
    }
    ++R.Failures;
    reportFailure(Log, Failure,
                  "family=" + std::string(familyName(F)) +
                      " seed=" + std::to_string(Seed));
    std::string ToSave = Source;
    if (Options.Minimize) {
      ToSave = minimizeFailure(Source, C, Failure);
      Log << "  minimized: " << ToSave.size() << " bytes\n";
    }
    persistFailure(Options, C, Failure, ToSave,
                   Failure.Oracle + "-" + familyName(F) + "-seed" +
                       std::to_string(Seed),
                   R, Log);
    R.FailureList.push_back(Failure);
  }
}

std::vector<std::string> syntaxSeedCorpus(const CampaignOptions &Options) {
  std::vector<std::string> Bases = workloads::syntaxSeedSources();
  if (!Options.SyntaxSeedDir.empty()) {
    std::error_code Ec;
    fs::directory_iterator It(Options.SyntaxSeedDir, Ec), End;
    std::vector<fs::path> Paths;
    for (; !Ec && It != End; It.increment(Ec)) {
      if (!It->is_regular_file())
        continue;
      fs::path P = It->path();
      if (P.extension() == ".atom" || P.extension() == ".cpp")
        Paths.push_back(P);
    }
    std::sort(Paths.begin(), Paths.end());
    for (const fs::path &P : Paths) {
      std::ifstream In(P, std::ios::binary);
      if (!In)
        continue;
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Bases.push_back(Buf.str());
    }
  }
  return Bases;
}

void runSyntaxCampaign(const CampaignOptions &Options, const Budget &B,
                       CampaignResult &R, std::ostream &Log) {
  std::vector<std::string> Bases = syntaxSeedCorpus(Options);
  if (Bases.empty()) {
    Log << "syntax mode: no seed programs found\n";
    return;
  }
  for (uint64_t I = 0; I < Options.Seeds && !B.expired(); ++I) {
    uint64_t Seed = Options.SeedStart + I;
    const std::string &Base = Bases[Seed % Bases.size()];
    std::string Mutant = mutateTokens(Base, Seed);
    ++R.Programs;
    // The oracle: the frontend terminates, and rejection is always
    // accompanied by a diagnostic. A crash here kills the fuzzer itself,
    // which is exactly the signal CI watches for.
    CompileOptions CO;
    CO.K = Options.K;
    CO.Jobs = 1;
    auto Comp = compile(Mutant, CO);
    if (Comp->ok() || Comp->diagnostics().hasErrors()) {
      if (Options.Verbose)
        Log << "ok   syntax seed=" << Seed << "\n";
      continue;
    }
    ++R.Failures;
    OracleFailure F;
    F.Oracle = "syntax";
    F.Detail = "frontend rejected the input without emitting a diagnostic";
    F.ReproCmd = "lockin-fuzz --mode=syntax --seed=" + std::to_string(Seed) +
                 (Options.SyntaxSeedDir.empty()
                      ? std::string()
                      : " --syntax-seeds=" + Options.SyntaxSeedDir);
    reportFailure(Log, F, "syntax seed=" + std::to_string(Seed));
    FuzzConfig C;
    C.Seed = Seed;
    C.K = Options.K;
    persistFailure(Options, C, F, Mutant,
                   "syntax-seed" + std::to_string(Seed), R, Log);
    R.FailureList.push_back(F);
  }
}

void runReplay(const CampaignOptions &Options, CampaignResult &R,
               std::ostream &Log) {
  std::vector<CorpusEntry> Entries = loadCorpus(Options.ReplayDir);
  if (Entries.empty())
    Log << "replay: no .atom entries under '" << Options.ReplayDir << "'\n";
  for (const CorpusEntry &E : Entries) {
    ++R.Programs;
    FuzzConfig C = configFromHeader(E.Source);
    C.TimeoutMs = Options.TimeoutMs;
    CompileOptions CO;
    CO.K = C.K;
    CO.Jobs = 1;
    auto Comp = compile(E.Source, CO);
    if (!Comp->ok()) {
      // Syntax-corpus entries are ill-formed by design; rejection must
      // come with a diagnostic (diagnose-or-accept).
      if (Comp->diagnostics().hasErrors()) {
        if (Options.Verbose)
          Log << "ok   " << E.Path << " (diagnosed)\n";
        continue;
      }
      ++R.Failures;
      OracleFailure F;
      F.Oracle = "syntax";
      F.Detail = "corpus entry rejected without a diagnostic";
      F.ReproCmd = "lockin-fuzz --replay=" + Options.ReplayDir;
      reportFailure(Log, F, E.Path);
      R.FailureList.push_back(F);
      continue;
    }
    OracleFailure Failure;
    if (checkProgram(E.Source, C, Failure)) {
      if (Options.Verbose)
        Log << "ok   " << E.Path << "\n";
      continue;
    }
    ++R.Failures;
    Failure.Detail = "corpus regression (" + E.Path + ")\n" + Failure.Detail;
    reportFailure(Log, Failure, E.Path);
    R.FailureList.push_back(Failure);
  }
}

} // namespace

std::string fuzz::minimizeFailure(const std::string &Source,
                                  const FuzzConfig &C,
                                  const OracleFailure &Original,
                                  unsigned MaxTests) {
  FuzzConfig Quick = C;
  // Shrinking runs the oracle hundreds of times; narrow the sweeps to
  // the essentials and tighten the watchdog so hung candidates don't
  // stall the reduction.
  if (Quick.YieldSeeds.size() > 1)
    Quick.YieldSeeds = {Quick.YieldSeeds.front()};
  if (Quick.Ks.size() > 1)
    Quick.Ks = {Quick.K};
  if (Quick.TimeoutMs > 2000)
    Quick.TimeoutMs = 2000;
  // Candidates routinely acquire runaway loops (a deleted loop-counter
  // increment); a tight step budget fails them in milliseconds rather
  // than leaving each one to the watchdog. Generated programs finish in
  // well under a million steps.
  if (Quick.MaxSteps == 0 || Quick.MaxSteps > 2'000'000)
    Quick.MaxSteps = 2'000'000;
  std::string Oracle = Original.Oracle;
  std::string Kind = Original.Kind;
  auto SameFailure = [Oracle, Kind](const FuzzConfig &Config,
                                    const std::string &Candidate) {
    OracleFailure F;
    return runOneOracle(Candidate, Config, Oracle, F) &&
           F.Oracle == Oracle && F.Kind == Kind;
  };
  auto StillFails = [&Quick, &SameFailure](const std::string &Candidate) {
    return SameFailure(Quick, Candidate);
  };
  // The narrowed config must still reproduce, else shrink with the
  // original one.
  if (!StillFails(Source))
    return minimize(
        Source,
        [&C, &SameFailure](const std::string &Candidate) {
          return SameFailure(C, Candidate);
        },
        MaxTests);
  return minimize(Source, StillFails, MaxTests);
}

CampaignResult fuzz::runCampaign(const CampaignOptions &Options,
                                 std::ostream &Log) {
  CampaignResult R;
  Budget B(Options.BudgetMs);
  if (Options.Mode == "replay") {
    runReplay(Options, R, Log);
  } else if (Options.Mode == "syntax") {
    runSyntaxCampaign(Options, B, R, Log);
  } else if (Options.Mode == "diff") {
    runDiffCampaign(Options, B, R, Log);
  } else { // "all"
    runDiffCampaign(Options, B, R, Log);
    runSyntaxCampaign(Options, B, R, Log);
  }
  Log << "lockin-fuzz: " << R.Programs << " programs, " << R.Failures
      << " failures";
  if (B.expired())
    Log << " (budget exhausted)";
  Log << "\n";
  return R;
}

int fuzz::campaignExitCode(const CampaignResult &R) {
  return R.Failures == 0 ? 0 : 1;
}
