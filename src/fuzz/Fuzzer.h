//===--- Fuzzer.h - Fuzzing campaign driver ---------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign loop behind the `lockin-fuzz` executable. Modes:
///
///  - diff:   generate (Generator.h), check every oracle (Oracles.h),
///            minimize failures (Minimizer.h), persist them (Corpus.h).
///  - syntax: token-mutate valid seed programs (Mutator.h) and assert the
///            frontend diagnoses-or-accepts without crashing.
///  - replay: re-run a corpus directory through the oracles (the
///            regression-corpus ctest target).
///  - all:    diff then syntax.
///
/// The loop stops at --seeds programs or when --budget-ms elapses,
/// whichever comes first. Every failure prints a one-line reproducer.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_FUZZER_H
#define LOCKIN_FUZZ_FUZZER_H

#include "fuzz/Oracles.h"

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace lockin {
namespace fuzz {

struct CampaignOptions {
  std::string Mode = "diff"; ///< diff | syntax | replay | all
  /// Grammar family filter; "all" rotates seq/commute/stress per seed.
  std::string FamilyFilter = "all";
  uint64_t SeedStart = 1;
  uint64_t Seeds = 100;
  /// Wall-clock budget; 0 = unbounded (the seed count is the only limit).
  uint64_t BudgetMs = 0;
  /// Where failing reproducers are written ("" = don't persist).
  std::string CorpusDir;
  /// Corpus directory for --mode=replay.
  std::string ReplayDir;
  /// Extra directory of seed programs (*.atom, *.cpp) for --mode=syntax,
  /// on top of the built-in workload sources.
  std::string SyntaxSeedDir;
  bool Minimize = false;
  /// Fault injection (see FuzzConfig::StripLocks).
  bool StripLocks = false;
  unsigned K = 3;
  /// 0 = the default yield-schedule sweep; nonzero narrows to one seed
  /// (reproducer mode).
  uint64_t YieldSeed = 0;
  /// 0 = the default --jobs sweep; nonzero narrows it (reproducer mode).
  unsigned Jobs = 0;
  /// Per-interpreter-run hang watchdog.
  uint64_t TimeoutMs = 20'000;
  bool Verbose = false;
};

struct CampaignResult {
  uint64_t Programs = 0;
  uint64_t Failures = 0;
  std::vector<OracleFailure> FailureList;
  /// Reproducer files written this campaign.
  std::vector<std::string> SavedPaths;
};

/// Runs the campaign, streaming progress and failures to \p Log.
CampaignResult runCampaign(const CampaignOptions &Options, std::ostream &Log);

/// 0 when the campaign found nothing, 1 otherwise.
int campaignExitCode(const CampaignResult &R);

/// The oracle configuration the campaign uses for (family, seed) under
/// \p Options — also what reproducer commands re-create. Exposed for
/// tests.
FuzzConfig configFor(const CampaignOptions &Options, Family F, uint64_t Seed);

/// Minimizes \p Source w.r.t. the oracle named by \p Original (the
/// failure observed on it): the predicate re-runs just that oracle and
/// requires the same oracle to fail again. Exposed for tests.
std::string minimizeFailure(const std::string &Source, const FuzzConfig &C,
                            const OracleFailure &Original,
                            unsigned MaxTests = 2000);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_FUZZER_H
