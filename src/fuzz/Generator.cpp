//===--- Generator.cpp - Grammar-based program generator ------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "support/Rng.h"

#include <cassert>

using namespace lockin;
using namespace lockin::fuzz;

const char *fuzz::familyName(Family F) {
  switch (F) {
  case Family::Seq:
    return "seq";
  case Family::Commute:
    return "commute";
  case Family::Stress:
    return "stress";
  case Family::LegacySeq:
    return "legacy-seq";
  case Family::LegacyConc:
    return "legacy-conc";
  case Family::Mega:
    return "mega";
  }
  return "?";
}

bool fuzz::familyFromName(const std::string &Name, Family &Out) {
  if (Name == "seq") {
    Out = Family::Seq;
    return true;
  }
  if (Name == "commute") {
    Out = Family::Commute;
    return true;
  }
  if (Name == "stress") {
    Out = Family::Stress;
    return true;
  }
  if (Name == "legacy-seq") {
    Out = Family::LegacySeq;
    return true;
  }
  if (Name == "legacy-conc") {
    Out = Family::LegacyConc;
    return true;
  }
  if (Name == "mega") {
    Out = Family::Mega;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Legacy generators (seed-stable; moved verbatim from the test suite)
//===----------------------------------------------------------------------===//

std::string fuzz::generateSequentialProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string Out = R"(
struct cell { cell* next; int* data; int v; };
cell* g;
int gsum;
cell* mk(int v) {
  cell* c = new cell;
  c->v = v;
  c->data = new int[4];
  return c;
}
int tally(cell* c) {
  int s = 0;
  while (c != null) { s = s + c->v; c = c->next; }
  return s;
}
)";
  Out += "int main() {\n";
  Out += "  g = mk(1);\n";
  Out += "  g->next = mk(2);\n";
  Out += "  int acc = 0;\n";
  Out += "  atomic {\n";
  unsigned Stmts = 3 + static_cast<unsigned>(R.below(5));
  for (unsigned I = 0; I < Stmts; ++I) {
    switch (R.below(7)) {
    case 0:
      Out += "    g->v = g->v + " + std::to_string(R.below(9)) + ";\n";
      break;
    case 1:
      Out += "    { cell* t = g->next; if (t != null) { t->v = " +
             std::to_string(R.below(9)) + "; } }\n";
      break;
    case 2:
      Out += "    gsum = gsum + tally(g);\n";
      break;
    case 3:
      Out += "    { cell* f = mk(" + std::to_string(R.below(9)) +
             "); f->next = g; g = f; }\n";
      break;
    case 4:
      Out += "    g->data[" + std::to_string(R.below(4)) + "] = " +
             std::to_string(R.below(99)) + ";\n";
      break;
    case 5:
      Out += "    { int i = 0; while (i < " + std::to_string(1 + R.below(4)) +
             ") { gsum = gsum + 1; i = i + 1; } }\n";
      break;
    default:
      Out += "    if (gsum % 2 == 0) { g->v = 0; } else { gsum = gsum + "
             "g->v; }\n";
      break;
    }
  }
  Out += "  }\n";
  Out += "  acc = gsum + tally(g);\n";
  Out += "  return acc;\n";
  Out += "}\n";
  return Out;
}

std::string fuzz::generateConcurrentProgram(uint64_t Seed) {
  Rng R(Seed);
  std::string Out = R"(
struct node { node* next; int* slot; int v; };
struct bag { node* head; int* arr; int n; };
bag* B0;
bag* B1;
int G0;
int G1;
int helperBump(bag* b, int d) {
  atomic { b->n = b->n + d; }
  return d;
}
node* helperFind(bag* b, int key) {
  node* cur = b->head;
  while (cur != null && cur->v != key) cur = cur->next;
  return cur;
}
)";

  // A pool of statement templates; %B is a random bag, %K a random
  // constant, %G a random int global.
  const char *Templates[] = {
      "    %B->n = %B->n + %K;\n",
      "    node* f = new node; f->v = %K; f->next = %B->head; "
      "%B->head = f;\n",
      "    node* c = %B->head; while (c != null) { c->v = c->v + 1; "
      "c = c->next; }\n",
      "    node* c = helperFind(%B, %K); if (c != null) { c->v = 0; }\n",
      "    %G = %G + %K;\n",
      "    if (%G > 10) { %B->arr[%G % 8] = %K; } else { %G = %G + 1; }\n",
      "    %B->arr[%K % 8] = %B->arr[(%K + 1) % 8] + 1;\n",
      "    int t = helperBump(%B, 1); %G = %G + t;\n",
      "    node* c = %B->head; if (c != null && c->next != null) "
      "{ c->next->v = %K; }\n",
      "    int* s = %B->arr; s[%K % 8] = s[%K % 8] + 1;\n",
  };
  constexpr unsigned NumTemplates = sizeof(Templates) / sizeof(*Templates);

  auto Instantiate = [&](const char *Template) {
    std::string Text = Template;
    auto ReplaceAll = [&](const std::string &From, const std::string &To) {
      size_t Pos = 0;
      while ((Pos = Text.find(From, Pos)) != std::string::npos) {
        Text.replace(Pos, From.size(), To);
        Pos += To.size();
      }
    };
    ReplaceAll("%B", R.chance(1, 2) ? "B0" : "B1");
    ReplaceAll("%G", R.chance(1, 2) ? "G0" : "G1");
    ReplaceAll("%K", std::to_string(R.below(16)));
    return Text;
  };

  // Two worker functions with 2-3 atomic sections each.
  for (unsigned W = 0; W < 2; ++W) {
    Out += "void worker" + std::to_string(W) + "() {\n";
    Out += "  int round = 0;\n";
    Out += "  while (round < 12) {\n";
    unsigned Sections = 2 + static_cast<unsigned>(R.below(2));
    for (unsigned S = 0; S < Sections; ++S) {
      Out += "  atomic {\n";
      unsigned Stmts = 1 + static_cast<unsigned>(R.below(3));
      for (unsigned I = 0; I < Stmts; ++I) {
        // Each template in its own block: local names stay independent.
        Out += "    {\n";
        Out += Instantiate(Templates[R.below(NumTemplates)]);
        Out += "    }\n";
      }
      Out += "  }\n";
    }
    Out += "    round = round + 1;\n";
    Out += "  }\n";
    Out += "}\n";
  }

  Out += R"(
int main() {
  B0 = new bag;
  B0->arr = new int[8];
  B1 = new bag;
  B1->arr = new int[8];
  node* seed0 = new node; seed0->v = 1; B0->head = seed0;
  node* seed1 = new node; seed1->v = 2; B1->head = seed1;
  spawn worker0();
  spawn worker1();
  return 0;
}
)";
  return Out;
}

//===----------------------------------------------------------------------===//
// The fuzzer's grammar
//===----------------------------------------------------------------------===//

namespace {

/// Declarations shared by all three families: two struct shapes forming a
/// pointer graph (chains with cross links, int arrays at both levels),
/// builders, a read-only traversal, a positional lookup, and an atomic
/// helper so call summaries participate in every generated program.
const char *Preamble = R"(
struct item { item* next; item* peer; int* vals; int a; int b; };
struct hub { item* first; item* second; int* slots; int total; int spare; };
hub* H0;
hub* H1;
int C0;
int C1;
int C2;
item* mkChain(int n, int v) {
  item* head = null;
  int i = 0;
  while (i < n) {
    item* e = new item;
    e->a = v + i;
    e->b = i;
    e->vals = new int[4];
    e->next = head;
    head = e;
    i = i + 1;
  }
  return head;
}
int sumChain(item* it) {
  int s = 0;
  while (it != null) { s = s + it->a + it->b; it = it->next; }
  return s;
}
item* nth(item* it, int n) {
  int i = 0;
  while (it != null && i < n) { it = it->next; i = i + 1; }
  return it;
}
hub* mkHub(int n, int v) {
  hub* h = new hub;
  h->first = mkChain(n, v);
  h->second = mkChain(n, v + 3);
  h->slots = new int[6];
  return h;
}
void addTotal(hub* h, int d) {
  atomic { h->total = h->total + d; }
}
)";

std::string num(uint64_t N) { return std::to_string(N); }

/// One statement of the deterministic (Seq) pool. Everything is
/// null-guarded and in-bounds, indices are constants or provably
/// non-negative, and there is no division: a generated Seq program never
/// faults, so every backend must finish and agree.
std::string seqStmt(Rng &R) {
  std::string B = R.chance(1, 2) ? "H0" : "H1";
  uint64_t K = 1 + R.below(9);
  switch (R.below(10)) {
  case 0:
    return "    " + B + "->total = " + B + "->total + sumChain(" + B +
           "->first);\n";
  case 1:
    return "    { item* t = nth(" + B + "->first, " + num(R.below(4)) +
           "); if (t != null) { t->b = t->b + " + num(K) + "; } }\n";
  case 2:
    return "    " + B + "->slots[" + num(R.below(6)) + "] = " + B +
           "->slots[" + num(R.below(6)) + "] + " + num(K) + ";\n";
  case 3:
    return "    { item* e = new item; e->a = " + num(K) +
           "; e->vals = new int[4]; e->next = " + B + "->first; " + B +
           "->first = e; }\n";
  case 4:
    return "    { int i = 0; while (i < " + num(1 + R.below(4)) +
           ") { C0 = C0 + 2; i = i + 1; } }\n";
  case 5:
    return "    if (C0 % 2 == 0) { " + B + "->total = " + B +
           "->total + 1; } else { C1 = C1 + " + B + "->total; }\n";
  case 6:
    return "    addTotal(" + B + ", " + num(K) + ");\n";
  case 7:
    return "    { item* p = " + B +
           "->first; if (p != null && p->next != null) { p->peer = "
           "p->next->next; } }\n";
  case 8:
    return "    { item* t = nth(" + B + "->second, " + num(R.below(3)) +
           "); if (t != null) { t->vals[" + num(R.below(4)) +
           "] = t->vals[" + num(R.below(4)) + "] + " + num(K) + "; } }\n";
  default:
    return "    C2 = C2 + " + B + "->slots[" + num(R.below(6)) + "];\n";
  }
}

/// One statement of the Commute pool: commutative constant-adds to the
/// fixed shared graph, plus read-only traversals whose results are sunk
/// into branches that provably never fire (the reads still exercise read
/// locks and STM read-set validation). The final reachable heap is
/// therefore identical under every schedule and backend.
std::string commuteStmt(Rng &R) {
  std::string B = R.chance(1, 2) ? "H0" : "H1";
  uint64_t K = 1 + R.below(9);
  switch (R.below(8)) {
  case 0:
    return "    " + B + "->total = " + B + "->total + " + num(K) + ";\n";
  case 1: {
    std::string J = num(R.below(6));
    return "    " + B + "->slots[" + J + "] = " + B + "->slots[" + J +
           "] + " + num(K) + ";\n";
  }
  case 2:
    return "    { item* t = nth(" + B + "->first, " + num(R.below(4)) +
           "); if (t != null) { t->a = t->a + " + num(K) + "; } }\n";
  case 3:
    return "    addTotal(" + B + ", " + num(K) + ");\n";
  case 4:
    return "    { int t = sumChain(" + B +
           "->first); if (t < 0) { C2 = C2 + 0; } }\n";
  case 5:
    return "    { int t = " + B + "->slots[" + num(R.below(6)) +
           "]; if (t < 0) { C2 = C2 + 0; } }\n";
  case 6:
    return "    C0 = C0 + " + num(K) + ";\n";
  default:
    return "    { int i = 0; while (i < " + num(1 + R.below(3)) + ") { " +
           B + "->spare = " + B + "->spare + 1; i = i + 1; } }\n";
  }
}

/// One statement of the Stress pool: structural pushes, traversal
/// writes, cross-links, and branches on shared state. Final heaps are
/// schedule-dependent; only the stuckness oracle applies.
std::string stressStmt(Rng &R) {
  std::string B = R.chance(1, 2) ? "H0" : "H1";
  uint64_t K = 1 + R.below(9);
  switch (R.below(11)) {
  case 0:
    return "    { item* e = new item; e->a = " + num(K) +
           "; e->vals = new int[4]; e->next = " + B + "->first; " + B +
           "->first = e; }\n";
  case 1:
    return "    { item* c = " + B +
           "->first; while (c != null) { c->b = c->b + 1; c = c->next; } "
           "}\n";
  case 2:
    return "    { item* t = nth(" + B + "->first, " + num(R.below(5)) +
           "); if (t != null) { t->peer = " + B + "->second; } }\n";
  case 3:
    return "    " + B + "->slots[C0 % 6] = " + num(K) + ";\n";
  case 4:
    return "    { int t = sumChain(" + B + "->second); C1 = C1 + t; }\n";
  case 5:
    return "    if (" + B + "->total > 8) { " + B + "->first = " + B +
           "->second; } else { " + B + "->total = " + B + "->total + 2; "
           "}\n";
  case 6:
    return "    addTotal(" + B + ", " + num(K) + ");\n";
  case 7:
    return "    { item* t = " + B +
           "->first; if (t != null && t->next != null) { t->next->a = " +
           num(K) + "; } }\n";
  case 8:
    return "    { int i = 0; while (i < " + num(1 + R.below(3)) + ") { " +
           B + "->spare = " + B + "->spare + 1; i = i + 1; } }\n";
  case 9:
    return "    " + B + "->slots[" + num(R.below(6)) + "] = " + B +
           "->slots[" + num(R.below(6)) + "] + 1;\n";
  default:
    return "    C0 = C0 + " + num(K) + ";\n";
  }
}

std::string workerBody(Rng &R, std::string (*Stmt)(Rng &),
                       unsigned Rounds) {
  std::string Out;
  Out += "  int round = 0;\n";
  Out += "  while (round < " + num(Rounds) + ") {\n";
  unsigned Sections = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned S = 0; S < Sections; ++S) {
    Out += "  atomic {\n";
    unsigned Stmts = 1 + static_cast<unsigned>(R.below(3));
    for (unsigned I = 0; I < Stmts; ++I) {
      Out += "    {\n";
      Out += Stmt(R);
      Out += "    }\n";
    }
    Out += "  }\n";
  }
  Out += "    round = round + 1;\n";
  Out += "  }\n";
  return Out;
}

std::string generateSeq(Rng &R) {
  std::string Out = Preamble;
  Out += "int main() {\n";
  Out += "  H0 = mkHub(" + num(2 + R.below(3)) + ", " + num(R.below(5)) +
         ");\n";
  Out += "  H1 = mkHub(" + num(1 + R.below(3)) + ", " + num(R.below(5)) +
         ");\n";
  unsigned Sections = 1 + static_cast<unsigned>(R.below(3));
  for (unsigned S = 0; S < Sections; ++S) {
    Out += "  atomic {\n";
    unsigned Stmts = 3 + static_cast<unsigned>(R.below(5));
    for (unsigned I = 0; I < Stmts; ++I) {
      Out += "    {\n";
      Out += seqStmt(R);
      Out += "    }\n";
    }
    Out += "  }\n";
    if (R.chance(1, 2))
      Out += "  C1 = C1 + sumChain(H0->first);\n";
  }
  Out += "  return C0 + C1 + C2 + H0->total + H1->total + "
         "sumChain(H0->first) + sumChain(H1->second);\n";
  Out += "}\n";
  return Out;
}

std::string generateWorkers(Rng &R, std::string (*Stmt)(Rng &),
                            unsigned MinRounds) {
  std::string Out = Preamble;
  unsigned Workers = 2 + static_cast<unsigned>(R.below(2));
  unsigned Rounds = MinRounds + static_cast<unsigned>(R.below(5));
  for (unsigned W = 0; W < Workers; ++W) {
    Out += "void worker" + num(W) + "() {\n";
    Out += workerBody(R, Stmt, Rounds);
    Out += "}\n";
  }
  Out += "int main() {\n";
  Out += "  H0 = mkHub(" + num(2 + R.below(3)) + ", " + num(R.below(5)) +
         ");\n";
  Out += "  H1 = mkHub(" + num(1 + R.below(3)) + ", " + num(R.below(5)) +
         ");\n";
  for (unsigned W = 0; W < Workers; ++W)
    Out += "  spawn worker" + num(W) + "();\n";
  Out += "  return 0;\n";
  Out += "}\n";
  return Out;
}

/// One statement of the Mega pool over global hub \p B. Deliberately a
/// small pool over few shapes: distinct functions frequently infer
/// structurally identical lock sets (constants never enter a lock path),
/// which is what the summary deduplication layer is built to exploit.
std::string megaStmt(Rng &R, const std::string &B) {
  uint64_t K = 1 + R.below(7);
  // Heavy statements (half the pool) build the long lock paths and index
  // expression trees the k-limit admits; light statements keep region
  // diversity. Sections stay small so per-lock representation costs
  // (hashing, equality, node construction) dominate over set-size
  // effects.
  switch (R.below(10)) {
  case 0:
    return "    " + B + "->total = " + B + "->total + " + num(K) + ";\n";
  case 1: {
    std::string J = num(R.below(6));
    return "    " + B + "->slots[" + J + "] = " + B + "->slots[" + J +
           "] + " + num(K) + ";\n";
  }
  case 2:
    return "    { item* t = nth(" + B + "->first, " + num(R.below(3)) +
           "); if (t != null) { t->a = t->a + " + num(K) + "; } }\n";
  case 3:
    return "    addTotal(" + B + ", " + num(K) + ");\n";
  case 4:
    return "    C" + num(R.below(3)) + " = C" + num(R.below(3)) + " + " +
           num(K) + ";\n";
  case 5:
  case 6:
    // Traversal write: backward substitution of c -> c->next builds the
    // longest paths the k-limit admits (first->next->...->a).
    return "    { item* c = " + B +
           "->first; while (c != null) { c->a = c->a + " + num(K) +
           "; c = c->next; } }\n";
  case 7:
    // Peer-hop traversal: same shape through the second chain.
    return "    { item* c = " + B +
           "->second; while (c != null) { c->b = c->b + " + num(K) +
           "; c = c->next; } }\n";
  default:
    // Loop-indexed slot write: substitution of i -> i + 1 grows index
    // expression trees, the worst case for deep hashing and equality.
    return "    { int i = 0; while (i < " + num(3 + R.below(3)) + ") { " +
           B + "->slots[i] = " + B + "->slots[i] + " + num(K) +
           "; i = i + 1; } }\n";
  }
}

/// The scale family: \p TargetLines of deterministic single-threaded
/// code shaped as a layered, non-recursive call DAG. Every generated
/// function holds one atomic section over one of six global hubs and
/// (above layer 0) calls 2-3 functions of the layer below, so the
/// analysis sees deep summary chains, thousands of sections, and heavy
/// path reuse — the megaprogram profile bench_mega measures.
std::string generateMega(Rng &R, unsigned TargetLines) {
  static const char *HubNames[] = {"H0", "H1", "M0", "M1", "M2", "M3"};
  std::string Out = Preamble;
  Out += "hub* M0;\nhub* M1;\nhub* M2;\nhub* M3;\n";

  constexpr unsigned Layers = 8;
  // ~13 lines per generated function (header, atomic wrapper, statements,
  // downward calls); clamp so every layer exists even for tiny targets.
  unsigned NumFuncs = TargetLines > 13 * Layers ? TargetLines / 13 : Layers;
  unsigned Width = NumFuncs / Layers > 0 ? NumFuncs / Layers : 1;

  for (unsigned L = 0; L < Layers; ++L) {
    for (unsigned I = 0; I < Width; ++I) {
      Out += "void m" + num(L) + "_" + num(I) + "() {\n";
      // Two hubs per section: sections hold locks over several regions
      // and many distinct paths, so the per-lock representation cost is
      // multiplied by realistic set sizes.
      const std::string B1 = HubNames[R.below(6)];
      const std::string B2 = HubNames[R.below(6)];
      // Calls live inside the section: the backward analysis must pull
      // each callee's summary through the call (map/unmap of §4.3), so
      // the whole DAG below a section participates in its lock set.
      Out += "  atomic {\n";
      unsigned Stmts = 3 + static_cast<unsigned>(R.below(4));
      for (unsigned S = 0; S < Stmts; ++S)
        Out += megaStmt(R, S % 2 ? B2 : B1);
      if (L > 0) {
        unsigned Calls = 2 + static_cast<unsigned>(R.below(2));
        for (unsigned C = 0; C < Calls; ++C)
          Out += "    m" + num(L - 1) + "_" + num(R.below(Width)) + "();\n";
      }
      Out += "  }\n";
      Out += "}\n";
    }
  }

  Out += "int main() {\n";
  Out += "  H0 = mkHub(3, 1);\n";
  Out += "  H1 = mkHub(2, 2);\n";
  Out += "  M0 = mkHub(2, 3);\n";
  Out += "  M1 = mkHub(3, 4);\n";
  Out += "  M2 = mkHub(2, 5);\n";
  Out += "  M3 = mkHub(3, 6);\n";
  for (unsigned I = 0; I < Width; ++I)
    Out += "  m" + num(Layers - 1) + "_" + num(I) + "();\n";
  Out += "  return C0 + C1 + C2 + H0->total + M3->total;\n";
  Out += "}\n";
  return Out;
}

} // namespace

std::string fuzz::generateProgram(const GenOptions &Options) {
  Rng R(Options.Seed * 0x9e3779b97f4a7c15ULL + Options.Seed +
        static_cast<uint64_t>(Options.F));
  switch (Options.F) {
  case Family::Seq:
    return generateSeq(R);
  case Family::Commute:
    return generateWorkers(R, commuteStmt, /*MinRounds=*/4);
  case Family::Stress:
    return generateWorkers(R, stressStmt, /*MinRounds=*/6);
  case Family::LegacySeq:
    return generateSequentialProgram(Options.Seed);
  case Family::LegacyConc:
    return generateConcurrentProgram(Options.Seed);
  case Family::Mega:
    return generateMega(R, Options.MegaLines);
  }
  assert(false && "unknown family");
  return {};
}
