//===--- Generator.h - Grammar-based program generator ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzing subsystem's shared generator of well-typed input-language
/// programs with atomic sections. Three grammar families target the three
/// oracles (fuzz/Oracles.h):
///
///  - Seq: deterministic single-threaded programs over struct graphs,
///    arrays, helper calls, branches and loops. Every execution backend
///    must agree on the exact final heap and main's result.
///  - Commute: concurrent programs whose shared mutations are all
///    commutative constant-adds over a fixed pre-built object graph, so
///    the final reachable heap is schedule-invariant and can be compared
///    across lock backends, the STM backend, and yield schedules.
///  - Stress: concurrent programs with structural mutation (pushes,
///    traversal writes, cross-links) whose final heap is legitimately
///    schedule-dependent; they feed the Theorem-1 stuckness oracle only.
///
/// The two legacy generators previously embedded in test_properties.cpp
/// and test_soundness.cpp live here unchanged: they are seed-stable
/// (byte-identical output for the same seed, guarded by tests), so the
/// long-standing property-test seed ranges keep their exact meaning.
///
/// Everything is deterministic in the seed (support/Rng).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_GENERATOR_H
#define LOCKIN_FUZZ_GENERATOR_H

#include <cstdint>
#include <string>

namespace lockin {
namespace fuzz {

/// Grammar family; see file comment. LegacySeq/LegacyConc expose the two
/// verbatim test-suite generators through the same entry point, so
/// property-test failures can print `lockin-fuzz --family=legacy-...`
/// reproducer commands that actually replay.
///
/// Mega is the scale family: a deterministic single-threaded program with
/// a deep layered call DAG over global hubs, one atomic section per
/// generated function (thousands of sections at full size), sized by
/// GenOptions::MegaLines. It exists to exercise megaprogram analysis
/// costs (bench_mega, the mega-smoke CI step); its statements are drawn
/// from a small template pool so many functions infer structurally
/// identical lock sets — the summary-dedup happy path. It is never part
/// of the default campaign rotation.
enum class Family { Seq, Commute, Stress, LegacySeq, LegacyConc, Mega };

/// CLI spelling of \p F ("seq", "commute", "stress", "legacy-seq",
/// "legacy-conc", "mega").
const char *familyName(Family F);

/// Parses a CLI spelling; returns false on unknown names.
bool familyFromName(const std::string &Name, Family &Out);

struct GenOptions {
  Family F = Family::Seq;
  uint64_t Seed = 1;
  /// Approximate source-line target for Family::Mega (ignored by every
  /// other family). The default keeps an explicit `--family=mega` fuzz
  /// run tractable; bench_mega passes 1e5-1e6.
  unsigned MegaLines = 4000;
};

/// Generates one well-typed program of the requested family.
std::string generateProgram(const GenOptions &Options);

/// The original test_properties.cpp generator, verbatim: small
/// single-threaded programs exercising assignments, stores, loads,
/// field/array addressing, allocation, branches, loops, and calls inside
/// one atomic section. Byte-identical output per seed is a compatibility
/// guarantee (the determinism property tests depend on it).
std::string generateSequentialProgram(uint64_t Seed);

/// The original test_soundness.cpp generator, verbatim: random concurrent
/// programs over a fixed shape — shared linked structures and counters,
/// two worker threads executing randomly composed atomic sections. Same
/// byte-identity guarantee as generateSequentialProgram.
std::string generateConcurrentProgram(uint64_t Seed);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_GENERATOR_H
