//===--- Minimizer.cpp - Delta-debugging test-case reduction --------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include <algorithm>
#include <vector>

using namespace lockin;
using namespace lockin::fuzz;

namespace {

std::vector<std::string> splitLines(const std::string &Source) {
  std::vector<std::string> Lines;
  size_t Start = 0;
  while (Start <= Source.size()) {
    size_t End = Source.find('\n', Start);
    if (End == std::string::npos) {
      if (Start < Source.size())
        Lines.push_back(Source.substr(Start));
      break;
    }
    Lines.push_back(Source.substr(Start, End - Start));
    Start = End + 1;
  }
  return Lines;
}

std::string joinLines(const std::vector<std::string> &Lines) {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  return Out;
}

/// Drops empty/whitespace-only lines — free shrinkage, no predicate calls.
std::vector<std::string> dropBlank(const std::vector<std::string> &Lines) {
  std::vector<std::string> Out;
  for (const std::string &L : Lines)
    if (L.find_first_not_of(" \t\r") != std::string::npos)
      Out.push_back(L);
  return Out;
}

} // namespace

std::string fuzz::minimize(const std::string &Source,
                           const FailurePredicate &StillFails,
                           unsigned MaxTests, MinimizeStats *Stats) {
  std::vector<std::string> Best = splitLines(Source);
  unsigned Tests = 0;
  if (Stats) {
    Stats->InitialLines = static_cast<unsigned>(Best.size());
    Stats->PredicateCalls = 0;
  }

  auto Try = [&](const std::vector<std::string> &Candidate) {
    if (Tests >= MaxTests)
      return false;
    ++Tests;
    return StillFails(joinLines(Candidate));
  };

  // Deletes [Start, Start+Len) when the predicate still holds.
  auto TryErase = [&](size_t Start, size_t Len) {
    if (Start + Len > Best.size() || Len >= Best.size())
      return false;
    std::vector<std::string> Candidate;
    Candidate.reserve(Best.size() - Len);
    Candidate.insert(Candidate.end(), Best.begin(),
                     Best.begin() + static_cast<long>(Start));
    Candidate.insert(Candidate.end(),
                     Best.begin() + static_cast<long>(Start + Len),
                     Best.end());
    if (!Try(Candidate))
      return false;
    Best = std::move(Candidate);
    return true;
  };

  {
    std::vector<std::string> NoBlank = dropBlank(Best);
    if (NoBlank.size() < Best.size() && Try(NoBlank))
      Best = std::move(NoBlank);
  }

  // Classic ddmin: try removing complements of an n-way partition,
  // doubling granularity when nothing sticks.
  auto DdminPass = [&] {
    bool Any = false;
    size_t N = 2;
    while (Best.size() >= 2 && Tests < MaxTests) {
      bool Reduced = false;
      size_t Chunk = std::max<size_t>(1, Best.size() / N);
      for (size_t Start = 0; Start < Best.size() && Tests < MaxTests;
           Start += Chunk) {
        if (TryErase(Start, std::min(Chunk, Best.size() - Start))) {
          N = std::max<size_t>(2, N - 1);
          Reduced = Any = true;
          break;
        }
      }
      if (!Reduced) {
        if (Chunk <= 1)
          break; // 1-minimal w.r.t. the partition — done
        N = std::min(Best.size(), N * 2);
      }
    }
    return Any;
  };

  // Aligned chunks miss multi-line syntactic units (a whole function, a
  // while/brace pair), so also slide windows of a few sizes over every
  // offset; single-line deletion is the Size==1 case.
  auto WindowPass = [&] {
    bool Any = false;
    for (size_t Size : {16, 8, 4, 3, 2, 1}) {
      bool Changed = true;
      while (Changed && Tests < MaxTests) {
        Changed = false;
        for (size_t I = 0; I + Size <= Best.size() && Tests < MaxTests;) {
          if (Best.size() > Size && TryErase(I, Size))
            Changed = Any = true;
          else
            ++I;
        }
      }
    }
    return Any;
  };

  // Alternate the passes to a global fixpoint: windows expose new ddmin
  // opportunities and vice versa.
  while (Tests < MaxTests) {
    bool Any = DdminPass();
    Any |= WindowPass();
    if (!Any)
      break;
  }

  if (Stats) {
    Stats->PredicateCalls = Tests;
    Stats->FinalLines = static_cast<unsigned>(Best.size());
  }
  return joinLines(Best);
}
