//===--- Minimizer.h - Delta-debugging test-case reduction ------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-based delta debugging (Zeller's ddmin) over program text: the
/// minimizer repeatedly deletes chunks of lines and keeps any candidate
/// the predicate still flags as failing, converging on a 1-line-minimal
/// reproducer. Candidates that no longer compile are naturally rejected
/// because the original oracle failure cannot reproduce on them — the
/// predicate encodes that, not the minimizer.
///
/// The AST is immutable after parsing (lang/Ast.h), so reduction works on
/// text lines rather than tree nodes; generated programs are one
/// statement per line, which makes line granularity effectively
/// statement granularity.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_MINIMIZER_H
#define LOCKIN_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace lockin {
namespace fuzz {

/// Returns true when \p Candidate still exhibits the original failure.
using FailurePredicate = std::function<bool(const std::string &Candidate)>;

struct MinimizeStats {
  unsigned PredicateCalls = 0;
  unsigned InitialLines = 0;
  unsigned FinalLines = 0;
};

/// Shrinks \p Source to a smaller program for which \p StillFails holds.
/// \p Source itself must satisfy the predicate. At most \p MaxTests
/// predicate evaluations are spent; the best candidate so far is returned
/// when the budget runs out.
std::string minimize(const std::string &Source,
                     const FailurePredicate &StillFails,
                     unsigned MaxTests = 2500,
                     MinimizeStats *Stats = nullptr);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_MINIMIZER_H
