//===--- Mutator.cpp - Token-level mutation for syntax fuzzing ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Mutator.h"

#include "support/Rng.h"

#include <cctype>

using namespace lockin;
using namespace lockin::fuzz;

std::vector<std::string> fuzz::tokenize(const std::string &Source) {
  std::vector<std::string> Tokens;
  size_t I = 0, N = Source.size();
  auto At = [&](size_t Off) {
    return I + Off < N ? Source[I + Off] : '\0';
  };
  while (I < N) {
    char Ch = Source[I];
    if (std::isspace(static_cast<unsigned char>(Ch))) {
      ++I;
      continue;
    }
    if (Ch == '/' && At(1) == '/') {
      while (I < N && Source[I] != '\n')
        ++I;
      continue;
    }
    if (Ch == '/' && At(1) == '*') {
      I += 2;
      while (I < N && !(Source[I] == '*' && At(1) == '/'))
        ++I;
      I = I < N ? I + 2 : N;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(Ch)) || Ch == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Source[I])) ||
                       Source[I] == '_'))
        ++I;
      Tokens.push_back(Source.substr(Start, I - Start));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(Ch))) {
      size_t Start = I;
      while (I < N && std::isdigit(static_cast<unsigned char>(Source[I])))
        ++I;
      Tokens.push_back(Source.substr(Start, I - Start));
      continue;
    }
    // Multi-character operators the language knows.
    static const char *Wide[] = {"->", "==", "!=", "<=", ">=", "&&", "||"};
    bool Matched = false;
    for (const char *Op : Wide) {
      if (Ch == Op[0] && At(1) == Op[1]) {
        Tokens.emplace_back(Op);
        I += 2;
        Matched = true;
        break;
      }
    }
    if (!Matched) {
      Tokens.push_back(std::string(1, Ch));
      ++I;
    }
  }
  return Tokens;
}

std::string fuzz::mutateTokens(const std::string &Source, uint64_t Seed) {
  Rng R(Seed);
  std::vector<std::string> Tokens = tokenize(Source);
  if (Tokens.empty())
    return "atomic"; // something for the frontend to chew on

  // Tokens worth injecting: every structural keyword and separator the
  // parser dispatches on, so edits land in interesting grammar states.
  static const char *Pool[] = {
      "atomic", "spawn", "struct", "while", "if",  "else", "return", "new",
      "int",    "null",  "assert", "{",     "}",   "(",    ")",      "[",
      "]",      ";",     ",",      "*",     "->",  "=",    "==",     "!=",
      "+",      "-",     "<",      "&&",    "999", "x",
  };
  constexpr uint64_t PoolSize = sizeof(Pool) / sizeof(*Pool);

  unsigned Edits = 1 + static_cast<unsigned>(R.below(4));
  for (unsigned E = 0; E < Edits && !Tokens.empty(); ++E) {
    uint64_t At = R.below(Tokens.size());
    switch (R.below(7)) {
    case 0: // delete
      Tokens.erase(Tokens.begin() + static_cast<long>(At));
      break;
    case 1: // duplicate
      Tokens.insert(Tokens.begin() + static_cast<long>(At), Tokens[At]);
      break;
    case 2: // swap with neighbour
      if (At + 1 < Tokens.size())
        std::swap(Tokens[At], Tokens[At + 1]);
      break;
    case 3: // replace with another token from the program
      Tokens[At] = Tokens[R.below(Tokens.size())];
      break;
    case 4: // insert from the pool
      Tokens.insert(Tokens.begin() + static_cast<long>(At),
                    Pool[R.below(PoolSize)]);
      break;
    case 5: // truncate
      if (At > 0)
        Tokens.resize(At);
      break;
    default: { // splice: drop a middle window
      uint64_t To = At + R.below(Tokens.size() - At) + 1;
      Tokens.erase(Tokens.begin() + static_cast<long>(At),
                   Tokens.begin() + static_cast<long>(
                                        std::min<uint64_t>(To, Tokens.size())));
      break;
    }
    }
  }
  if (Tokens.empty())
    return ";";

  std::string Out;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    if (I)
      Out += ' ';
    Out += Tokens[I];
  }
  Out += '\n';
  return Out;
}
