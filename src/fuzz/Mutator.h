//===--- Mutator.h - Token-level mutation for syntax fuzzing ----*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `--mode=syntax` mutator: seeded token-level edits applied to valid
/// programs (delete / duplicate / swap / replace / insert / truncate /
/// splice). The output is usually ill-formed on purpose — the oracle is
/// only that the frontend terminates with diagnose-or-accept semantics:
/// compile() returns, and a rejected program carries at least one
/// diagnostic. Crashes, hangs, and silent rejection are the bugs hunted.
///
/// A tiny standalone scanner (not lang/Lexer) produces the token spans so
/// mutation works even on inputs the real lexer would reject.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_MUTATOR_H
#define LOCKIN_FUZZ_MUTATOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace lockin {
namespace fuzz {

/// Splits \p Source into lexical atoms (identifiers, numbers, multi-char
/// operators, single punctuation), dropping whitespace and comments.
std::vector<std::string> tokenize(const std::string &Source);

/// Applies 1-4 seeded token-level edits to \p Source and renders the
/// result (space-separated; the language is whitespace-insensitive).
/// Deterministic in (Source, Seed).
std::string mutateTokens(const std::string &Source, uint64_t Seed);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_MUTATOR_H
