//===--- Oracles.cpp - Differential oracles over one program --------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracles.h"

#include "driver/Compiler.h"
#include "driver/Tool.h"
#include "infer/SummaryCache.h"
#include "service/Incremental.h"

#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <sstream>
#include <thread>

using namespace lockin;
using namespace lockin::fuzz;

std::string fuzz::reproCommand(const FuzzConfig &C, const char *Extra) {
  std::ostringstream Cmd;
  Cmd << "lockin-fuzz --family=" << familyName(C.F) << " --seed=" << C.Seed
      << " --k=" << C.K;
  if (C.StripLocks)
    Cmd << " --strip-locks";
  if (Extra && *Extra)
    Cmd << ' ' << Extra;
  return Cmd.str();
}

namespace {

/// Error class of an interpreter failure: the text before the first ':'
/// ("protection violation", "null dereference (load)", ...), which is
/// stable across minimization while the operands in the suffix are not.
std::string errorClass(const std::string &Error) {
  size_t Colon = Error.find(':');
  return Colon == std::string::npos ? Error : Error.substr(0, Colon);
}

/// First byte where \p A and \p B diverge, rendered with a little context
/// so the failure message is readable without a diff tool.
std::string firstDivergence(const std::string &A, const std::string &B) {
  size_t N = std::min(A.size(), B.size());
  size_t I = 0;
  while (I < N && A[I] == B[I])
    ++I;
  auto Context = [&](const std::string &S) {
    size_t Lo = I > 40 ? I - 40 : 0;
    return S.substr(Lo, 80);
  };
  std::ostringstream Out;
  Out << "first divergence at byte " << I << " (sizes " << A.size() << " vs "
      << B.size() << ")\n  lhs: ..." << Context(A) << "\n  rhs: ..."
      << Context(B);
  return Out.str();
}

/// Runs \p Body on a detached thread and waits up to \p TimeoutMs for the
/// result. On timeout the run's cancel flag is raised and the thread is
/// given a short grace period to notice; a thread that still hasn't
/// finished (a genuine lock deadlock, parked in the runtime) is
/// abandoned — its keep-alives stay pinned by the shared_ptr captures.
/// Returns false on timeout. TimeoutMs == 0 runs inline.
bool runWithWatchdog(uint64_t TimeoutMs,
                     std::shared_ptr<std::atomic<bool>> Cancel,
                     std::function<InterpResult()> Body, InterpResult &Out) {
  if (TimeoutMs == 0) {
    Out = Body();
    return true;
  }
  auto Done = std::make_shared<std::promise<InterpResult>>();
  std::future<InterpResult> Fut = Done->get_future();
  std::thread([Done, Cancel, Body = std::move(Body)]() mutable {
    Done->set_value(Body());
  }).detach();
  if (Fut.wait_for(std::chrono::milliseconds(TimeoutMs)) ==
      std::future_status::ready) {
    Out = Fut.get();
    return true;
  }
  Cancel->store(true, std::memory_order_release);
  Fut.wait_for(std::chrono::milliseconds(500));
  return false;
}

/// Compiles \p Source at \p K; null plus a filled failure on a frontend
/// rejection (generated programs must always be well-formed).
std::shared_ptr<Compilation> compileOrFail(const std::string &Source,
                                           unsigned K, const FuzzConfig &C,
                                           OracleFailure &Out) {
  CompileOptions Options;
  Options.K = K;
  Options.Jobs = 1;
  std::shared_ptr<Compilation> Comp = compile(Source, Options);
  if (Comp->ok())
    return Comp;
  Out.Oracle = "frontend";
  Out.Kind = "rejected";
  Out.Detail = "generated program rejected by the frontend (k=" +
               std::to_string(K) + "):\n" + Comp->diagnostics().str();
  Out.ReproCmd = reproCommand(C);
  return nullptr;
}

struct ExecVariant {
  std::string Name;
  std::shared_ptr<Compilation> Comp;
  InterpOptions Options;
};

/// Executes one variant under the watchdog, reporting hangs as failures.
bool runVariant(const ExecVariant &V, const FuzzConfig &C, const char *Oracle,
                const char *Extra, InterpResult &R, OracleFailure &Out) {
  std::shared_ptr<Compilation> Comp = V.Comp;
  auto Cancel = std::make_shared<std::atomic<bool>>(false);
  InterpOptions Options = V.Options;
  Options.CancelFlag = Cancel.get();
  if (!runWithWatchdog(
          C.TimeoutMs, Cancel,
          [Comp, Cancel, Options] { return Comp->run(Options); }, R)) {
    Out.Oracle = Oracle;
    Out.Kind = "hang";
    Out.Detail = "hang (deadlock suspected): variant '" + V.Name +
                 "' did not finish within " + std::to_string(C.TimeoutMs) +
                 "ms";
    Out.ReproCmd = reproCommand(C, Extra);
    return false;
  }
  return true;
}

InterpOptions execOptions(const FuzzConfig &C, AtomicMode Mode,
                          uint64_t YieldSeed) {
  InterpOptions Options;
  Options.Mode = Mode;
  Options.Checked = true;
  Options.Revalidate = true;
  Options.InjectYields = YieldSeed != 0;
  Options.YieldSeed = YieldSeed ? YieldSeed : 1;
  Options.FingerprintHeap = true;
  if (C.MaxSteps)
    Options.MaxSteps = C.MaxSteps;
  return Options;
}

} // namespace

bool fuzz::checkReportDeterminism(const std::string &Source,
                                  const FuzzConfig &C, OracleFailure &Out) {
  for (unsigned K : C.Ks) {
    // Reference: the serial tool run.
    std::string Reference;
    for (unsigned Jobs : C.JobsSweep) {
      cli::CliOptions Opts;
      Opts.K = K;
      Opts.Jobs = Jobs;
      tool::ToolContext Ctx;
      int Exit = tool::runAnalysis(Opts, Source, Ctx);
      if (Exit != 0) {
        Out.Oracle = "report";
        Out.Kind = "run-failed";
        Out.Detail = "runAnalysis failed (k=" + std::to_string(K) +
                     ", jobs=" + std::to_string(Jobs) +
                     ", exit=" + std::to_string(Exit) + "):\n" + Ctx.Log;
        Out.ReproCmd = reproCommand(
            C, ("--jobs=" + std::to_string(Jobs)).c_str());
        return false;
      }
      if (Jobs == C.JobsSweep.front()) {
        Reference = Ctx.Out;
      } else if (Ctx.Out != Reference) {
        Out.Oracle = "report";
        Out.Kind = "jobs-divergence";
        Out.Detail = "report differs between --jobs=" +
                     std::to_string(C.JobsSweep.front()) + " and --jobs=" +
                     std::to_string(Jobs) + " at k=" + std::to_string(K) +
                     "\n" + firstDivergence(Reference, Ctx.Out);
        Out.ReproCmd = reproCommand(
            C, ("--jobs=" + std::to_string(Jobs)).c_str());
        return false;
      }
    }

    // Warm-vs-cold service cache: the second analyze must be all hits and
    // byte-identical to the cold report.
    SummaryCache Cache(4096);
    service::IncrementalAnalyzer Analyzer(Cache);
    service::AnalyzeParams Params;
    Params.K = K;
    Params.Jobs = 1;
    service::AnalyzeOutcome Cold = Analyzer.analyze("fuzz", Source, Params);
    service::AnalyzeOutcome Warm = Analyzer.analyze("fuzz", Source, Params);
    if (!Cold.Ok || !Warm.Ok) {
      Out.Oracle = "report";
      Out.Kind = "service-failed";
      Out.Detail = "service analyze failed at k=" + std::to_string(K) + ": " +
                   (Cold.Ok ? Warm.Error : Cold.Error);
      Out.ReproCmd = reproCommand(C);
      return false;
    }
    if (Warm.Sections > 0 && Warm.CacheMisses != 0) {
      Out.Oracle = "report";
      Out.Kind = "cache-miss";
      Out.Detail = "warm service run missed the summary cache at k=" +
                   std::to_string(K) + " (" +
                   std::to_string(Warm.CacheMisses) + " misses / " +
                   std::to_string(Warm.Sections) + " sections)";
      Out.ReproCmd = reproCommand(C);
      return false;
    }
    if (Warm.Report != Cold.Report) {
      Out.Oracle = "report";
      Out.Kind = "warm-divergence";
      Out.Detail = "warm service report differs from cold at k=" +
                   std::to_string(K) + "\n" +
                   firstDivergence(Cold.Report, Warm.Report);
      Out.ReproCmd = reproCommand(C);
      return false;
    }
  }
  return true;
}

bool fuzz::checkExecEquivalence(const std::string &Source, const FuzzConfig &C,
                                OracleFailure &Out) {
  std::shared_ptr<Compilation> Primary = compileOrFail(Source, C.K, C, Out);
  if (!Primary)
    return false;

  // Reference: single global lock, no injected yields.
  ExecVariant Ref{"global-lock reference", Primary,
                  execOptions(C, AtomicMode::GlobalLock, /*YieldSeed=*/0)};
  InterpResult RefResult;
  if (!runVariant(Ref, C, "exec", nullptr, RefResult, Out))
    return false;
  // A deterministic program fault is a legal behavior: the oracle then
  // demands every variant faults with the same error class instead of
  // comparing final heaps (minimized reproducers often fault on purpose).
  bool RefFaulted = !RefResult.Ok;
  std::string RefClass = errorClass(RefResult.Error);

  std::vector<ExecVariant> Variants;
  AtomicMode Inferred = C.StripLocks ? AtomicMode::None : AtomicMode::Inferred;
  for (uint64_t Y : C.YieldSeeds) {
    Variants.push_back({"global-lock yields=" + std::to_string(Y), Primary,
                        execOptions(C, AtomicMode::GlobalLock, Y)});
    Variants.push_back({"inferred k=" + std::to_string(C.K) +
                            " yields=" + std::to_string(Y),
                        Primary, execOptions(C, Inferred, Y)});
    Variants.push_back({"stm yields=" + std::to_string(Y), Primary,
                        execOptions(C, AtomicMode::Stm, Y)});
    // Fourth backend: the contention-adaptive runtime in force-flip
    // stress mode — every migration domain changes backend every few
    // sections, so each seed exercises mid-run lock↔STM migration
    // through the drain gate. Needs inferred locks for the lock side.
    if (!C.StripLocks) {
      ExecVariant Adaptive{"adaptive force-flip yields=" + std::to_string(Y),
                           Primary, execOptions(C, AtomicMode::Adaptive, Y)};
      Adaptive.Options.AdaptiveEveryN = 5;
      Adaptive.Options.AdaptiveForceFlip = true;
      Variants.push_back(std::move(Adaptive));
    }
  }
  // Extra inferred-lock executions across the k sweep (first yield seed).
  for (unsigned K : C.Ks) {
    if (K == C.K)
      continue;
    std::shared_ptr<Compilation> Comp = compileOrFail(Source, K, C, Out);
    if (!Comp)
      return false;
    Variants.push_back({"inferred k=" + std::to_string(K), Comp,
                        execOptions(C, Inferred, C.YieldSeeds.empty()
                                                  ? 0
                                                  : C.YieldSeeds.front())});
  }

  for (const ExecVariant &V : Variants) {
    std::string Extra = "--yield-seed=" + std::to_string(V.Options.YieldSeed);
    InterpResult R;
    if (!runVariant(V, C, "exec", Extra.c_str(), R, Out))
      return false;
    if (RefFaulted) {
      if (R.Ok || errorClass(R.Error) != RefClass) {
        Out.Oracle = "exec";
        Out.Kind = "fault-divergence";
        Out.Detail = "variant '" + V.Name + "' " +
                     (R.Ok ? "succeeded" : "failed with '" + R.Error + "'") +
                     " but the global-lock reference failed with '" +
                     RefResult.Error + "'";
        Out.ReproCmd = reproCommand(C, Extra.c_str());
        return false;
      }
      continue;
    }
    if (!R.Ok) {
      Out.Oracle = "exec";
      Out.Kind = "variant-failed: " + errorClass(R.Error);
      Out.Detail = "variant '" + V.Name + "' failed: " + R.Error;
      Out.ReproCmd = reproCommand(C, Extra.c_str());
      return false;
    }
    if (R.MainResult != RefResult.MainResult ||
        R.HeapFingerprint != RefResult.HeapFingerprint) {
      std::ostringstream D;
      D << "variant '" << V.Name << "' diverges from global-lock reference:\n"
        << "  main result " << R.MainResult << " vs " << RefResult.MainResult
        << "\n  heap fingerprint " << std::hex << R.HeapFingerprint << " vs "
        << RefResult.HeapFingerprint << std::dec << " (" << R.HeapObjects
        << " vs " << RefResult.HeapObjects << " reachable objects)";
      Out.Oracle = "exec";
      Out.Kind = "divergence";
      Out.Detail = D.str();
      Out.ReproCmd = reproCommand(C, Extra.c_str());
      return false;
    }
  }
  return true;
}

bool fuzz::checkSoundness(const std::string &Source, const FuzzConfig &C,
                          OracleFailure &Out) {
  AtomicMode Mode = C.StripLocks ? AtomicMode::None : AtomicMode::Inferred;
  for (unsigned K : C.Ks) {
    std::shared_ptr<Compilation> Comp = compileOrFail(Source, K, C, Out);
    if (!Comp)
      return false;
    for (uint64_t Y : C.YieldSeeds) {
      ExecVariant V{"checked k=" + std::to_string(K) +
                        " yields=" + std::to_string(Y),
                    Comp, execOptions(C, Mode, Y)};
      V.Options.FingerprintHeap = false;
      std::string Extra = "--yield-seed=" + std::to_string(Y);
      InterpResult R;
      if (!runVariant(V, C, "soundness", Extra.c_str(), R, Out))
        return false;
      if (R.Ok)
        continue;
      // Theorem 1 is relative to the atomic semantics: a genuine program
      // fault (null dereference, out-of-bounds, failed assert) that the
      // single-global-lock reference also exhibits is not a stuck state.
      // Protection violations and lock-protocol failures are never
      // benign.
      std::string Class = errorClass(R.Error);
      if (Class != "protection violation" &&
          Class.find("livelock") == std::string::npos) {
        ExecVariant Ref{"global-lock reference", Comp,
                        execOptions(C, AtomicMode::GlobalLock, Y)};
        Ref.Options.FingerprintHeap = false;
        InterpResult RefR;
        if (runVariant(Ref, C, "soundness", Extra.c_str(), RefR, Out) &&
            !RefR.Ok && errorClass(RefR.Error) == Class)
          continue; // program error, same under atomic semantics
      }
      FuzzConfig Narrow = C;
      Narrow.K = K;
      Out.Oracle = "soundness";
      Out.Kind = "stuck: " + Class;
      Out.Detail = "checked execution got stuck (k=" + std::to_string(K) +
                   ", yield-seed=" + std::to_string(Y) + "): " + R.Error;
      Out.ReproCmd = reproCommand(Narrow, Extra.c_str());
      return false;
    }
  }
  return true;
}

bool fuzz::checkCheckerSoundness(const std::string &Source,
                                 const FuzzConfig &C, bool ScheduleInvariant,
                                 OracleFailure &Out) {
  // Leg (a): run with the locks stripped so the checking interpreter can
  // observe real protection violations, and demand the checker's section
  // access model covers every faulted region.
  CompileOptions CheckOpts;
  CheckOpts.K = C.K;
  CheckOpts.Jobs = 1;
  CheckOpts.Check = true;
  std::shared_ptr<Compilation> Checked = compile(Source, CheckOpts);
  if (!Checked->ok() || !Checked->checkReport()) {
    Out.Oracle = "checker";
    Out.Kind = "rejected";
    Out.Detail = "checker compile failed (k=" + std::to_string(C.K) + "):\n" +
                 Checked->diagnostics().str();
    Out.ReproCmd = reproCommand(C);
    return false;
  }
  for (uint64_t Y : C.YieldSeeds) {
    ExecVariant V{"stripped yields=" + std::to_string(Y), Checked,
                  execOptions(C, AtomicMode::None, Y)};
    V.Options.FingerprintHeap = false;
    std::string Extra = "--yield-seed=" + std::to_string(Y);
    InterpResult R;
    if (!runVariant(V, C, "checker", Extra.c_str(), R, Out))
      return false;
    if (R.Ok || errorClass(R.Error) != "protection violation")
      continue;
    size_t Pos = R.Error.find("in region ");
    if (Pos == std::string::npos)
      continue; // violation without a region attribution: nothing to check
    unsigned Region = 0;
    {
      const char *Digits = R.Error.c_str() + Pos + 10;
      while (*Digits >= '0' && *Digits <= '9')
        Region = Region * 10 + static_cast<unsigned>(*Digits++ - '0');
    }
    if (!Checked->checkReport()->coversRegion(Region)) {
      Out.Oracle = "checker";
      Out.Kind = "missed-violation";
      Out.Detail = "interpreter observed '" + R.Error +
                   "' but the checker's section access model does not "
                   "cover region " +
                   std::to_string(Region);
      Out.ReproCmd = reproCommand(C, Extra.c_str());
      return false;
    }
  }

  // Leg (b): elision must be invisible to the checking semantics.
  CompileOptions ElideOpts;
  ElideOpts.K = C.K;
  ElideOpts.Jobs = 1;
  ElideOpts.ElideNeverParallel = true;
  std::shared_ptr<Compilation> Elided = compile(Source, ElideOpts);
  if (!Elided->ok())
    return true; // compile failures are the frontend oracle's business
  if (Elided->inference().elidedCount() == 0)
    return true; // nothing elided: identical to the plain run, done above

  ExecVariant Ref{"global-lock reference", Elided,
                  execOptions(C, AtomicMode::GlobalLock, /*YieldSeed=*/0)};
  InterpResult RefResult;
  if (!runVariant(Ref, C, "checker", nullptr, RefResult, Out))
    return false;
  std::string RefClass = errorClass(RefResult.Error);

  for (uint64_t Y : C.YieldSeeds) {
    ExecVariant V{"elided yields=" + std::to_string(Y), Elided,
                  execOptions(C, AtomicMode::Inferred, Y)};
    std::string Extra = "--yield-seed=" + std::to_string(Y);
    InterpResult R;
    if (!runVariant(V, C, "checker", Extra.c_str(), R, Out))
      return false;
    if (!RefResult.Ok) {
      // Deterministic program faults must stay the same fault.
      if (R.Ok || errorClass(R.Error) != RefClass) {
        Out.Oracle = "checker";
        Out.Kind = "elision-fault-divergence";
        Out.Detail = "elided run " +
                     (R.Ok ? std::string("succeeded")
                           : "failed with '" + R.Error + "'") +
                     " but the global-lock reference failed with '" +
                     RefResult.Error + "'";
        Out.ReproCmd = reproCommand(C, Extra.c_str());
        return false;
      }
      continue;
    }
    if (!R.Ok) {
      Out.Oracle = "checker";
      Out.Kind = "elision-stuck: " + errorClass(R.Error);
      Out.Detail = "elided execution failed (yield-seed=" +
                   std::to_string(Y) + "): " + R.Error;
      Out.ReproCmd = reproCommand(C, Extra.c_str());
      return false;
    }
    if (ScheduleInvariant &&
        (R.MainResult != RefResult.MainResult ||
         R.HeapFingerprint != RefResult.HeapFingerprint)) {
      std::ostringstream D;
      D << "elided execution diverges from global-lock reference "
        << "(yield-seed=" << Y << "):\n  main result " << R.MainResult
        << " vs " << RefResult.MainResult << "\n  heap fingerprint "
        << std::hex << R.HeapFingerprint << " vs " << RefResult.HeapFingerprint
        << std::dec;
      Out.Oracle = "checker";
      Out.Kind = "elision-divergence";
      Out.Detail = D.str();
      Out.ReproCmd = reproCommand(C, Extra.c_str());
      return false;
    }
  }
  return true;
}

bool fuzz::checkProgram(const std::string &Source, const FuzzConfig &C,
                        OracleFailure &Out) {
  // Frontend acceptance (and the analysis pipeline) first: a generated
  // program the compiler rejects is a generator bug worth minimizing too.
  if (!compileOrFail(Source, C.K, C, Out))
    return false;
  if (!checkReportDeterminism(Source, C, Out))
    return false;
  // Stress and LegacyConc heaps are legitimately schedule-dependent;
  // everything else must agree across backends and schedules.
  bool ScheduleInvariant = C.F == Family::Seq || C.F == Family::Commute ||
                           C.F == Family::LegacySeq;
  if (ScheduleInvariant && !checkExecEquivalence(Source, C, Out))
    return false;
  if (!checkSoundness(Source, C, Out))
    return false;
  // Fault-injected runs already execute with the locks stripped; the
  // checker oracle's leg (a) would be redundant and leg (b) meaningless.
  if (C.StripLocks)
    return true;
  return checkCheckerSoundness(Source, C, ScheduleInvariant, Out);
}
