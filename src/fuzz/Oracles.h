//===--- Oracles.h - Differential oracles over one program ------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three cross-configuration oracles the differential fuzzer applies
/// to every generated program:
///
///  1. Report determinism: `tool::runAnalysis` must produce byte-identical
///     reports across --jobs 1/2/4 for every k in the sweep, and the
///     service's warm cache run (every section a SummaryCache hit) must
///     reproduce the cold report byte for byte.
///  2. Execution equivalence: for programs whose final heap is
///     schedule-invariant (Family::Seq, Family::Commute), the inferred-lock
///     execution at every k, the single-global-lock reference, and the STM
///     backend must all finish Ok with the same main() result and the same
///     canonical reachable-heap fingerprint, across a sweep of injected
///     yield schedules.
///  3. Soundness (Theorem 1): under the §4.2 checking interpreter the
///     transformed program never gets stuck (no protection violation) and
///     acquireAll never deadlocks — a watchdog converts a hang into a
///     reported failure instead of a wedged fuzzer.
///
/// Every failure carries a one-line `lockin-fuzz ...` reproducer command.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_FUZZ_ORACLES_H
#define LOCKIN_FUZZ_ORACLES_H

#include "fuzz/Generator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lockin {
namespace fuzz {

/// One program's oracle configuration. The defaults are the sweeps the
/// campaign uses; reproducer commands narrow them to the failing point.
struct FuzzConfig {
  Family F = Family::Seq;
  uint64_t Seed = 1;
  /// Primary k for the execution and soundness oracles.
  unsigned K = 3;
  /// k sweep for report determinism (and extra inferred-lock executions).
  std::vector<unsigned> Ks{0, 2, 9};
  /// --jobs sweep for report determinism.
  std::vector<unsigned> JobsSweep{1, 2, 4};
  /// Injected-yield schedules for the execution/soundness oracles.
  std::vector<uint64_t> YieldSeeds{1, 7, 101};
  /// Fault injection: execute with the inferred locks stripped
  /// (AtomicMode::None) so the checking interpreter must get stuck. Used
  /// to validate that the oracles and the minimizer actually work.
  bool StripLocks = false;
  /// Hang watchdog per interpreter run; 0 runs inline (no watchdog).
  uint64_t TimeoutMs = 20'000;
  /// Per-thread interpreter step budget; 0 keeps the interpreter default.
  /// The minimizer tightens this so candidates with runaway loops (e.g. a
  /// deleted loop-counter increment) fail in milliseconds instead of
  /// spinning until the watchdog fires.
  uint64_t MaxSteps = 0;
};

/// A reported oracle violation.
struct OracleFailure {
  /// "frontend" | "report" | "exec" | "soundness" | "syntax".
  std::string Oracle;
  /// Failure signature within the oracle ("divergence", "hang",
  /// "stuck: protection violation", ...). The minimizer requires
  /// candidates to reproduce the same (Oracle, Kind) pair, so shrinking
  /// cannot drift onto an unrelated failure (e.g. deleting main() makes
  /// every execution fail, but with a different Kind).
  std::string Kind;
  /// Human-readable description of the divergence.
  std::string Detail;
  /// One-line `lockin-fuzz ...` command reproducing this exact failure.
  std::string ReproCmd;
};

/// Renders the one-line reproducer command for \p C; \p Extra (e.g.
/// "--strip-locks") is appended verbatim when non-null.
std::string reproCommand(const FuzzConfig &C, const char *Extra = nullptr);

/// Oracle 1. True when reports agree everywhere; fills \p Out otherwise.
bool checkReportDeterminism(const std::string &Source, const FuzzConfig &C,
                            OracleFailure &Out);

/// Oracle 2. Only meaningful for Seq/Commute programs (Stress heaps are
/// legitimately schedule-dependent; callers skip it there).
bool checkExecEquivalence(const std::string &Source, const FuzzConfig &C,
                          OracleFailure &Out);

/// Oracle 3. Applies to every family.
bool checkSoundness(const std::string &Source, const FuzzConfig &C,
                    OracleFailure &Out);

/// Oracle 4: checker soundness, two legs.
///  (a) The lockin-check access model must cover every protection
///      violation the checking interpreter observes when the program runs
///      with the locks stripped (AtomicMode::None): the faulted region is
///      always part of some section's inferred lock footprint.
///  (b) With ElideNeverParallel on, elided programs still run clean under
///      the §4.2 checking interpreter across the yield-seed sweep, and —
///      when \p ScheduleInvariant — finish heap-equivalent to the
///      global-lock reference.
bool checkCheckerSoundness(const std::string &Source, const FuzzConfig &C,
                           bool ScheduleInvariant, OracleFailure &Out);

/// Runs the oracles appropriate for C.F: frontend acceptance + report
/// determinism always; execution equivalence for Seq/Commute; soundness
/// for every family.
bool checkProgram(const std::string &Source, const FuzzConfig &C,
                  OracleFailure &Out);

} // namespace fuzz
} // namespace lockin

#endif // LOCKIN_FUZZ_ORACLES_H
