//===--- Conflict.cpp - Abstract-location conflict tests -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/Conflict.h"

using namespace lockin;
using namespace lockin::ir;

bool lockin::locksMayConflict(const LockName &A, const LockName &B) {
  if (A.effect() != Effect::RW && B.effect() != Effect::RW)
    return false; // two reads never conflict
  if (A.kind() == LockName::Kind::Top || B.kind() == LockName::Kind::Top)
    return true;
  return A.region() != InvalidRegion && A.region() == B.region();
}

bool lockin::lockSetsMayConflict(const LockSet &A, const LockSet &B) {
  for (const LockName &La : A.locks())
    for (const LockName &Lb : B.locks())
      if (locksMayConflict(La, Lb))
        return true;
  return false;
}

namespace {

/// Collects call/spawn targets lexically outside atomic bodies (the edges
/// a thread can traverse while holding no section locks), and spawn
/// callees anywhere (a spawned thread starts outside every section even
/// when the spawn site itself sits in one).
void collectBareEdges(const IrStmt *S, bool InAtomic,
                      std::vector<const IrFunction *> &BareCallees,
                      std::vector<const IrFunction *> &SpawnCallees) {
  switch (S->kind()) {
  case IrStmt::Kind::Call:
    if (!InAtomic)
      BareCallees.push_back(cast<CallStmt>(S)->callee());
    return;
  case IrStmt::Kind::Spawn:
    SpawnCallees.push_back(cast<SpawnIrStmt>(S)->callee());
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectBareEdges(Child.get(), InAtomic, BareCallees, SpawnCallees);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    collectBareEdges(I->thenStmt(), InAtomic, BareCallees, SpawnCallees);
    if (I->elseStmt())
      collectBareEdges(I->elseStmt(), InAtomic, BareCallees, SpawnCallees);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    collectBareEdges(W->prelude(), InAtomic, BareCallees, SpawnCallees);
    collectBareEdges(W->body(), InAtomic, BareCallees, SpawnCallees);
    return;
  }
  case IrStmt::Kind::Atomic:
    collectBareEdges(cast<AtomicIrStmt>(S)->body(), /*InAtomic=*/true,
                     BareCallees, SpawnCallees);
    return;
  default:
    return;
  }
}

void collectBareStmts(const IrStmt *S, const IrFunction *F,
                      const TransferContext &Ctx,
                      std::vector<BareAccess> &Out) {
  switch (S->kind()) {
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectBareStmts(Child.get(), F, Ctx, Out);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    LockSet Cond;
    genVarRead(I->condVar(), Ctx, Cond);
    if (!Cond.empty())
      Out.push_back({S, F, std::move(Cond)});
    collectBareStmts(I->thenStmt(), F, Ctx, Out);
    if (I->elseStmt())
      collectBareStmts(I->elseStmt(), F, Ctx, Out);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    LockSet Cond;
    genVarRead(W->condVar(), Ctx, Cond);
    if (!Cond.empty())
      Out.push_back({S, F, std::move(Cond)});
    collectBareStmts(W->prelude(), F, Ctx, Out);
    collectBareStmts(W->body(), F, Ctx, Out);
    return;
  }
  case IrStmt::Kind::Atomic:
    return; // the section's own accesses are modeled by its lock set
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(S);
    if (R->value()) {
      LockSet Val;
      genVarRead(R->value(), Ctx, Val);
      if (!Val.empty())
        Out.push_back({S, F, std::move(Val)});
    }
    return;
  }
  case IrStmt::Kind::Assert: {
    LockSet Cond;
    genVarRead(cast<AssertIrStmt>(S)->condVar(), Ctx, Cond);
    if (!Cond.empty())
      Out.push_back({S, F, std::move(Cond)});
    return;
  }
  case IrStmt::Kind::Spawn: {
    LockSet Args;
    for (const ir::Variable *A : cast<SpawnIrStmt>(S)->args())
      genVarRead(A, Ctx, Args);
    if (!Args.empty())
      Out.push_back({S, F, std::move(Args)});
    return;
  }
  default:
    break;
  }
  if (const auto *Inst = dyn_cast<InstStmt>(S)) {
    LockSet Accesses;
    genLocks(Inst, Ctx, Accesses);
    if (Inst->kind() == IrStmt::Kind::Call)
      for (const ir::Variable *A : cast<CallStmt>(Inst)->args())
        genVarRead(A, Ctx, Accesses);
    if (!Accesses.empty())
      Out.push_back({S, F, std::move(Accesses)});
  }
}

} // namespace

std::vector<BareAccess>
lockin::collectBareAccesses(const IrModule &M, const analysis::CallGraph &CG,
                            const TransferContext &Ctx) {
  unsigned N = CG.numFunctions();
  std::vector<std::vector<const IrFunction *>> BareCallees(N);
  std::vector<const IrFunction *> Roots;
  if (const IrFunction *Main = M.findFunction("main"))
    Roots.push_back(Main);
  std::vector<bool> Live =
      Roots.empty() ? std::vector<bool>(N, false) : CG.reachableClosure(Roots);
  for (unsigned I = 0; I < N; ++I) {
    if (!CG.function(I)->body())
      continue;
    std::vector<const IrFunction *> Spawned;
    collectBareEdges(CG.function(I)->body(), /*InAtomic=*/false,
                     BareCallees[I], Spawned);
    // Spawn callees of any live function root new bare contexts: Live is
    // the full call+spawn closure from main, so this covers spawners only
    // reachable through sections or through other spawned threads.
    if (Live[I])
      for (const IrFunction *SF : Spawned)
        Roots.push_back(SF);
  }
  std::vector<char> Bare(N, 0);
  std::vector<unsigned> Work;
  for (const IrFunction *R : Roots) {
    unsigned I = CG.indexOf(R);
    if (!Bare[I]) {
      Bare[I] = 1;
      Work.push_back(I);
    }
  }
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    for (const IrFunction *Callee : BareCallees[I]) {
      unsigned CI = CG.indexOf(Callee);
      if (!Bare[CI]) {
        Bare[CI] = 1;
        Work.push_back(CI);
      }
    }
  }

  std::vector<BareAccess> Out;
  for (unsigned I = 0; I < N; ++I)
    if (Bare[I] && CG.function(I)->body())
      collectBareStmts(CG.function(I)->body(), CG.function(I), Ctx, Out);
  return Out;
}
