//===--- Conflict.h - Abstract-location conflict tests ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared helpers for the concurrency checker and MHP-driven lock
/// elision: may-overlap tests between the abstract locations named by
/// inferred locks, and the enumeration of *bare* accesses — shared-memory
/// accesses a thread can perform without being inside any atomic section.
///
/// A lock name doubles as an access abstraction: the G locks a statement
/// generates name exactly the shared locations it touches (Σ_k fine paths
/// and Σ_≡ regions), so "the lock sets overlap with a write" is a sound
/// may-conflict test between two pieces of code.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_CONFLICT_H
#define LOCKIN_INFER_CONFLICT_H

#include "analysis/CallGraph.h"
#include "infer/LockSet.h"
#include "infer/Transfer.h"
#include "ir/Ir.h"

#include <vector>

namespace lockin {

/// May \p A and \p B name overlapping locations with at least one write?
/// ⊤ overlaps everything; otherwise locations overlap iff their
/// (field-insensitive) points-to regions coincide.
bool locksMayConflict(const LockName &A, const LockName &B);

/// Any cross-pair conflict between the two sets.
bool lockSetsMayConflict(const LockSet &A, const LockSet &B);

/// One statement that may access shared memory outside every atomic
/// section, with the G locks naming what it touches.
struct BareAccess {
  const ir::IrStmt *Stmt = nullptr;
  const ir::IrFunction *Function = nullptr;
  LockSet Accesses;
};

/// Enumerates the bare accesses of \p M: statements lexically outside
/// atomic bodies in functions reachable from main or from a spawn callee
/// without passing through an atomic section. Deterministic (module
/// function order, then structural order).
std::vector<BareAccess> collectBareAccesses(const ir::IrModule &M,
                                            const analysis::CallGraph &CG,
                                            const TransferContext &Ctx);

} // namespace lockin

#endif // LOCKIN_INFER_CONFLICT_H
