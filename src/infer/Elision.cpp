//===--- Elision.cpp - MHP-driven lock elision ---------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// InferenceOptions::ElideNeverParallel: a post-pass over the inference
/// result that marks sections whose locks can be dropped entirely.
///
/// A section S may elide its locks when no conflicting code can run
/// concurrently with it:
///
///   - for every other section T whose lock set names a location
///     overlapping S's (with a write on either side), MHP(S, T) is false;
///   - the same with two dynamic instances of S itself; and
///   - for every bare access B (shared access outside all sections)
///     overlapping S's lock set, MHP(S, B) is false.
///
/// Soundness: the inferred lock set of a section is, by Theorem 1, a
/// superset abstraction of every shared location the section (and its
/// callees) may touch. If no conflicting access can be co-scheduled with
/// any part of S's execution, mutual exclusion is vacuous — S is atomic
/// with or without the locks — so dropping the acquisitions preserves
/// every observable behavior. The never-parallel proof is the MHP
/// analysis's `false`, which is conservative.
///
//===----------------------------------------------------------------------===//

#include "analysis/Mhp.h"
#include "infer/Conflict.h"
#include "infer/Inference.h"

using namespace lockin;
using namespace lockin::ir;

void LockInference::elideNeverParallel(InferenceResult &Result) {
  analysis::MhpAnalysis Mhp(Module, CG);
  std::vector<BareAccess> Bare = collectBareAccesses(Module, CG, Ctx);

  uint64_t Pairs = 0;
  unsigned Elided = 0;
  for (size_t Id = 0; Id < SectionTasks.size(); ++Id) {
    const SectionTask &T = SectionTasks[Id];
    if (!T.Stmt)
      continue;
    const LockSet &Locks = Result.Sections[Id].Locks;
    if (Locks.empty())
      continue; // nothing acquired, nothing to elide

    bool MayRace = false;
    for (size_t Other = 0; Other < SectionTasks.size() && !MayRace; ++Other) {
      const SectionTask &U = SectionTasks[Other];
      if (!U.Stmt)
        continue;
      if (!lockSetsMayConflict(Locks, Result.Sections[Other].Locks))
        continue;
      ++Pairs;
      MayRace = Other == Id ? Mhp.selfParallel(T.Stmt)
                            : Mhp.mayHappenInParallel(T.Stmt, U.Stmt);
    }
    for (size_t B = 0; B < Bare.size() && !MayRace; ++B) {
      if (!lockSetsMayConflict(Locks, Bare[B].Accesses))
        continue;
      ++Pairs;
      MayRace = Mhp.mayHappenInParallel(T.Stmt, Bare[B].Stmt);
    }

    if (!MayRace) {
      Result.Sections[Id].Elided = true;
      ++Elided;
    }
  }

  Stats.ElidedSections = Elided;
  Stats.ElisionMhpPairs = Pairs;
}
