//===--- Inference.cpp - Lock inference for atomic sections -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/Inference.h"

#include "locks/Interner.h"

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <thread>

using namespace lockin;
using namespace lockin::ir;

LockCensus lockin::censusOf(const LockSet &Locks) {
  LockCensus Census;
  for (const LockName &L : Locks) {
    bool RW = L.effect() == Effect::RW || L.isTop();
    if (L.isFine()) {
      if (RW)
        ++Census.FineRW;
      else
        ++Census.FineRO;
    } else {
      if (RW)
        ++Census.CoarseRW;
      else
        ++Census.CoarseRO;
    }
  }
  return Census;
}

LockCensus InferenceResult::census() const {
  LockCensus Census;
  for (const Section &S : Sections)
    Census += censusOf(S.Locks);
  return Census;
}

LockInference::LockInference(const IrModule &Module,
                             const PointsToAnalysis &PT,
                             InferenceOptions Options)
    : Module(Module),
      Interner(std::make_shared<LockInterner>(Options.InternSharing)),
      Ctx{Module, PT, Options.K, *Interner, Options.InternSharing},
      Options(Options),
      OwnedCG(std::make_unique<analysis::CallGraph>(Module)), CG(*OwnedCG),
      Summaries(Module, CG, Ctx, *this, Options.MaxSummaryRounds,
                Options.DedupSummaries) {}

LockInference::LockInference(const IrModule &Module,
                             const PointsToAnalysis &PT,
                             const analysis::CallGraph &ExtCG,
                             InferenceOptions Options)
    : Module(Module),
      Interner(std::make_shared<LockInterner>(Options.InternSharing)),
      Ctx{Module, PT, Options.K, *Interner, Options.InternSharing},
      Options(Options), CG(ExtCG),
      Summaries(Module, CG, Ctx, *this, Options.MaxSummaryRounds,
                Options.DedupSummaries) {}

namespace {

/// Regions of the cells read while evaluating \p Path (deref positions and
/// index variables). Returns false (via \p Ok) if some region is unknown;
/// callers then treat the path as potentially affected.
bool collectPathCellRegions(const LockExpr &Path, const PointsToAnalysis &PT,
                            std::set<RegionId> &Out) {
  RegionId Cur = PT.regionOfVarCell(Path.base());
  for (const LockOp &Op : Path.ops()) {
    switch (Op.K) {
    case LockOp::Kind::Deref:
      if (Cur == InvalidRegion)
        return false;
      Out.insert(Cur);
      Cur = PT.derefRegion(Cur);
      break;
    case LockOp::Kind::Field:
      break;
    case LockOp::Kind::Index: {
      std::vector<const IdxExpr *> Work = {Op.Idx};
      while (!Work.empty()) {
        const IdxExpr *E = Work.back();
        Work.pop_back();
        switch (E->kind()) {
        case IdxExpr::Kind::Const:
          break;
        case IdxExpr::Kind::VarVal: {
          RegionId R = PT.regionOfVarCell(E->var());
          if (R == InvalidRegion)
            return false;
          Out.insert(R);
          break;
        }
        case IdxExpr::Kind::Bin:
          Work.push_back(E->lhs());
          Work.push_back(E->rhs());
          break;
        }
      }
      break;
    }
    }
  }
  return true;
}

/// True if \p Path mentions \p V as its base or inside an index component.
bool pathMentionsVar(const LockExpr &Path, const Variable *V) {
  if (Path.base() == V)
    return true;
  for (const LockOp &Op : Path.ops())
    if (Op.K == LockOp::Kind::Index && Op.Idx->mentionsVar(V))
      return true;
  return false;
}

/// The per-worker transfer memo; analyze() runs deep in call stacks that
/// also pass through FunctionSummaries, so the cache travels as
/// thread-local state instead of a parameter.
thread_local TransferCache *ActiveCache = nullptr;

/// The memo is consulted only while HotDepth > 0 — inside loop-fixpoint
/// re-iterations and recursive-SCC evaluations, where the same
/// (statement, lock) transfers repeat. Straight-line code analyzed once
/// would pay the miss bookkeeping for nothing (measured ~5% hit rate on
/// the DAG-shaped synthetic programs).
thread_local unsigned HotDepth = 0;

struct CacheScope {
  TransferCache *Prev;
  explicit CacheScope(TransferCache *C) : Prev(ActiveCache) {
    ActiveCache = C;
  }
  ~CacheScope() { ActiveCache = Prev; }
};

struct HotScope {
  HotScope() { ++HotDepth; }
  ~HotScope() { --HotDepth; }
};

} // namespace

LockSet LockInference::transferCall(const CallStmt *St,
                                    const LockSet &After) {
  const IrFunction *F = St->callee();
  LockSet Result;
  for (const Variable *Arg : St->args())
    genVarRead(Arg, Ctx, Result);
  if (St->def() && Ctx.isLockableVar(St->def()))
    Result.insert(LockName::fine(LockExpr(St->def()),
                                 Ctx.PT.regionOfVarCell(St->def()),
                                 Effect::RW, Ctx.Interner));

  // The locks for the callee's own (transitive) accesses, expressed at
  // the call site: copy because the store may grow under recursive
  // demands while we unmap.
  {
    LockSet CalleeOwn = Summaries.ownLocks(F);
    for (const LockName &E : CalleeOwn)
      Summaries.unmapLock(E, St, Result);
  }

  const std::set<RegionId> &Writes = Summaries.writeRegions(F);
  auto Unaffected = [&](const LockName &L) {
    if (pathMentionsVar(L.path(), St->def()))
      return false;
    std::set<RegionId> Cells;
    if (!collectPathCellRegions(L.path(), Ctx.PT, Cells))
      return false;
    for (RegionId R : Cells)
      if (Writes.count(R))
        return false;
    return true;
  };

  for (const LockName &L : After) {
    if (!L.isFine()) {
      Result.insert(L);
      continue;
    }
    if (Unaffected(L)) {
      Result.insert(L);
      continue;
    }
    // Map the lock into the callee's frame via def = ret_f.
    LockSet Mapped;
    if (St->def() && F->retVar()) {
      CopyStmt RetCopy(St->def(), F->retVar(), St->loc());
      transferLock(L, &RetCopy, Ctx, Mapped);
    } else {
      Mapped.insert(L);
    }
    for (const LockName &M : Mapped) {
      if (!M.isFine()) {
        Result.insert(M);
        continue;
      }
      // A mapped lock that is unaffected by the body and not rooted in the
      // callee skips the summary entirely.
      if (!lockPathRootedIn(M.path(), F) && Unaffected(M)) {
        Result.insert(M);
        continue;
      }
      const LockSet &EntryLocks = Summaries.summary(F, M);
      for (const LockName &E : EntryLocks)
        Summaries.unmapLock(E, St, Result);
    }
  }
  return Result;
}

LockSet LockInference::transferInst(const InstStmt *St,
                                    const LockSet &After) {
  TransferCache *Cache = HotDepth > 0 ? ActiveCache : nullptr;
  // Whole-set memo first: fixpoint iterations re-apply the same
  // (statement, after-set) pair until convergence, and transferInst is
  // pure in it, so a hit replaces the entire per-lock loop below with one
  // flat copy of the cached result.
  bool Memoable =
      Ctx.FastPaths && Cache && St->stmtId() != IrStmt::InvalidStmtId;
  if (Memoable) {
    if (const LockSet *Memo = Cache->findSet(St->stmtId(), After)) {
      ++Cache->SetHits;
      return *Memo;
    }
    ++Cache->SetMisses;
  }
  LockSet Out;
  if (Cache) {
    Cache->gen(St, Ctx, Out);
    for (const LockName &L : After)
      Cache->apply(L, St, Ctx, Out);
  } else {
    genLocks(St, Ctx, Out);
    for (const LockName &L : After)
      transferLock(L, St, Ctx, Out);
  }
  if (Memoable)
    Cache->storeSet(St->stmtId(), After, Out);
  return Out;
}

LockSet LockInference::analyze(const IrFunction *CurFn, const IrStmt *S,
                               const LockSet &After,
                               const LockSet &ExitSet) {
  switch (S->kind()) {
  case IrStmt::Kind::Call:
    return transferCall(cast<CallStmt>(S), After);
  case IrStmt::Kind::Copy:
  case IrStmt::Kind::ConstInt:
  case IrStmt::Kind::ConstNull:
  case IrStmt::Kind::AddrOf:
  case IrStmt::Kind::FieldAddr:
  case IrStmt::Kind::IndexAddr:
  case IrStmt::Kind::Load:
  case IrStmt::Kind::Store:
  case IrStmt::Kind::Alloc:
  case IrStmt::Kind::IntBin:
  case IrStmt::Kind::Cmp:
    return transferInst(cast<InstStmt>(S), After);
  case IrStmt::Kind::Seq: {
    const auto &Stmts = cast<SeqStmt>(S)->stmts();
    LockSet Cur = After;
    for (size_t I = Stmts.size(); I-- > 0;)
      Cur = analyze(CurFn, Stmts[I].get(), Cur, ExitSet);
    return Cur;
  }
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    LockSet Merged = analyze(CurFn, I->thenStmt(), After, ExitSet);
    if (I->elseStmt())
      Merged.merge(analyze(CurFn, I->elseStmt(), After, ExitSet));
    else
      Merged.merge(After);
    genVarRead(I->condVar(), Ctx, Merged);
    return Merged;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    // Exit edge: locks needed after the loop plus the condition read.
    LockSet Base = After;
    genVarRead(W->condVar(), Ctx, Base);
    // Backward fixpoint: X approximates the locks at the loop head.
    LockSet X = analyze(CurFn, W->prelude(), Base, ExitSet);
    HotScope Hot; // iterations repeat the same transfers: memoize them
    for (unsigned Iter = 0;; ++Iter) {
      if (Iter >= Options.MaxLoopIterations) {
        // Sound fallback; with a bounded k this should be unreachable.
        X.insert(LockName::top());
        break;
      }
      LockSet AfterPrelude = Base;
      AfterPrelude.merge(analyze(CurFn, W->body(), X, ExitSet));
      LockSet NewX = analyze(CurFn, W->prelude(), AfterPrelude, ExitSet);
      if (!X.merge(NewX))
        break;
    }
    return X;
  }
  case IrStmt::Kind::Atomic:
    // Nested sections acquire nothing at runtime (§5.3); the outer
    // section's locks must cover the body, so locks flow through.
    return analyze(CurFn, cast<AtomicIrStmt>(S)->body(), After, ExitSet);
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(S);
    // Control leaves the function: the incoming After is unreachable;
    // the exit set flows through ret_f = value.
    LockSet Out;
    if (R->value() && CurFn && CurFn->retVar()) {
      CopyStmt RetCopy(CurFn->retVar(), R->value(), R->loc());
      for (const LockName &L : ExitSet)
        transferLock(L, &RetCopy, Ctx, Out);
    } else {
      Out = ExitSet;
    }
    if (R->value())
      genVarRead(R->value(), Ctx, Out);
    return Out;
  }
  case IrStmt::Kind::Spawn: {
    LockSet Out = After;
    for (const Variable *Arg : cast<SpawnIrStmt>(S)->args())
      genVarRead(Arg, Ctx, Out);
    return Out;
  }
  case IrStmt::Kind::Assert: {
    LockSet Out = After;
    genVarRead(cast<AssertIrStmt>(S)->condVar(), Ctx, Out);
    return Out;
  }
  }
  assert(false && "unhandled statement kind");
  return After;
}

LockSet LockInference::evaluateEntry(const IrFunction *F,
                                     const LockSet &Exit, bool Hot) {
  if (!Hot)
    return analyze(F, F->body(), Exit, Exit);
  HotScope Scope;
  return analyze(F, F->body(), Exit, Exit);
}

void LockInference::analyzeSection(InferenceResult &Result,
                                   const AtomicIrStmt *A,
                                   const IrFunction *F) {
  LockSet Empty;
  InferenceResult::Section &Section = Result.Sections[A->sectionId()];
  Section.SectionId = A->sectionId();
  Section.Function = F;
  Section.Locks = analyze(F, A->body(), Empty, Empty);
}

void LockInference::foldCacheStats(const TransferCache &Cache) {
  std::lock_guard<std::mutex> Guard(StatsMutex);
  Stats.TransferCacheHits += Cache.Hits;
  Stats.TransferCacheMisses += Cache.Misses;
  Stats.GenCacheHits += Cache.GenHits;
  Stats.GenCacheMisses += Cache.GenMisses;
}

void LockInference::runSerial(const std::vector<char> &WantScc,
                              InferenceResult &Result) {
  TransferCache Cache;
  CacheScope Scope(&Cache);
  // Iterating SCC ids in order IS the bottom-up schedule: every callee
  // SCC is fully summarized (final) before its callers are evaluated, so
  // non-recursive functions are summarized exactly once.
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc)
    if (WantScc[Scc])
      Summaries.prewarmScc(Scc);
  for (const SectionTask &T : SectionTasks)
    if (T.Stmt)
      analyzeSection(Result, T.Stmt, T.Function);
  foldCacheStats(Cache);
}

void LockInference::runParallel(unsigned Jobs,
                                const std::vector<char> &WantScc,
                                InferenceResult &Result) {
  // Phase 1 schedules the prewarm over the condensation DAG by dependency
  // counting: an SCC becomes ready when its last callee SCC finishes, so
  // SCCs at the same condensation depth (pairwise unreachable) run
  // concurrently. Phase 2 fans the independent sections out over the same
  // workers. Determinism: every summary a section can read is final (the
  // phase-1 barrier), final entries are immutable, and final values are
  // least fixpoints of monotone equations — unique regardless of
  // interleaving — so the inferred lock sets match the serial run.
  unsigned NumSccs = CG.numSccs();
  std::mutex QueueMutex;
  std::condition_variable QueueCV;
  std::deque<unsigned> Ready;
  std::vector<unsigned> DepsLeft(NumSccs);
  unsigned RemainingSccs = NumSccs;
  for (unsigned Scc = 0; Scc < NumSccs; ++Scc) {
    DepsLeft[Scc] = static_cast<unsigned>(CG.sccCallees(Scc).size());
    if (DepsLeft[Scc] == 0)
      Ready.push_back(Scc);
  }
  std::atomic<size_t> NextSection{0};

  auto Worker = [&]() {
    TransferCache Cache;
    CacheScope Scope(&Cache);
    while (true) {
      unsigned Scc;
      {
        std::unique_lock<std::mutex> Lock(QueueMutex);
        QueueCV.wait(Lock,
                     [&] { return !Ready.empty() || RemainingSccs == 0; });
        if (Ready.empty())
          break; // RemainingSccs == 0: every prewarm has completed
        Scc = Ready.front();
        Ready.pop_front();
      }
      if (WantScc[Scc])
        Summaries.prewarmScc(Scc);
      {
        std::lock_guard<std::mutex> Lock(QueueMutex);
        --RemainingSccs;
        for (unsigned Caller : CG.sccCallers(Scc))
          if (--DepsLeft[Caller] == 0)
            Ready.push_back(Caller);
        QueueCV.notify_all();
      }
    }
    // Sections write disjoint Result slots, claimed via the atomic
    // ticket.
    size_t I;
    while ((I = NextSection.fetch_add(1)) < SectionTasks.size()) {
      const SectionTask &T = SectionTasks[I];
      if (T.Stmt)
        analyzeSection(Result, T.Stmt, T.Function);
    }
    foldCacheStats(Cache);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Jobs);
  for (unsigned J = 0; J < Jobs; ++J)
    Threads.emplace_back(Worker);
  for (std::thread &T : Threads)
    T.join();
}

InferenceResult LockInference::run() {
  InferenceResult Result;
  Result.Sections.resize(Module.numAtomicSections());
  SectionTasks.assign(Module.numAtomicSections(), SectionTask{});

  // Restrict to the requested sections (incremental re-analysis); empty
  // means all.
  std::vector<char> Selected;
  if (!Options.OnlySections.empty()) {
    Selected.assign(Module.numAtomicSections(), 0);
    for (uint32_t Id : Options.OnlySections)
      if (Id < Selected.size())
        Selected[Id] = 1;
  }

  // Only SCCs reachable from some selected atomic section need summaries.
  std::vector<const IrFunction *> Roots;
  for (const auto &F : Module.functions()) {
    for (const AtomicIrStmt *A : F->atomicSections()) {
      if (!Selected.empty() && !Selected[A->sectionId()])
        continue;
      SectionTasks[A->sectionId()] = SectionTask{A, F.get()};
      std::vector<const IrFunction *> Direct =
          analysis::CallGraph::directCallees(A->body());
      Roots.insert(Roots.end(), Direct.begin(), Direct.end());
    }
  }
  std::vector<bool> Reach = CG.reachableClosure(Roots);
  std::vector<char> WantScc(CG.numSccs(), 0);
  unsigned ReachableFns = 0;
  for (unsigned I = 0; I < CG.numFunctions(); ++I) {
    if (Reach[I]) {
      ++ReachableFns;
      WantScc[CG.sccOf(I)] = 1;
    }
  }

  Stats = InferenceStats{};
  Stats.Functions = CG.numFunctions();
  Stats.ReachableFunctions = ReachableFns;
  Stats.Sccs = CG.numSccs();
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc)
    if (CG.isRecursive(Scc))
      ++Stats.RecursiveSccs;
  Stats.CondensationDepth = CG.maxDepth();
  Stats.Sections = Module.numAtomicSections();

  unsigned Jobs = Options.Jobs;
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  Stats.JobsUsed = Jobs;

  if (Jobs <= 1)
    runSerial(WantScc, Result);
  else
    runParallel(Jobs, WantScc, Result);

  if (Options.ElideNeverParallel && Options.OnlySections.empty())
    elideNeverParallel(Result);

  Stats.Summaries = Summaries.stats();
  LockInterner::Stats IS = Interner->stats();
  Stats.InternerNodes = IS.nodes();
  Stats.InternerHits = IS.hits();
  Stats.ArenaBytes = IS.ArenaBytes;
  Result.Interner = Interner;
  return Result;
}
