//===--- Inference.cpp - Lock inference for atomic sections -------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/Inference.h"

#include <cassert>

using namespace lockin;
using namespace lockin::ir;

LockCensus InferenceResult::census() const {
  LockCensus Census;
  for (const Section &S : Sections) {
    for (const LockName &L : S.Locks) {
      bool RW = L.effect() == Effect::RW || L.isTop();
      if (L.isFine()) {
        if (RW)
          ++Census.FineRW;
        else
          ++Census.FineRO;
      } else {
        if (RW)
          ++Census.CoarseRW;
        else
          ++Census.CoarseRO;
      }
    }
  }
  return Census;
}

LockInference::LockInference(const IrModule &Module,
                             const PointsToAnalysis &PT,
                             InferenceOptions Options)
    : Module(Module), Ctx{Module, PT, Options.K}, Options(Options) {}

namespace {

/// Regions of the cells read while evaluating \p Path (deref positions and
/// index variables). Returns false (via \p Ok) if some region is unknown;
/// callers then treat the path as potentially affected.
bool collectPathCellRegions(const LockExpr &Path, const PointsToAnalysis &PT,
                            std::set<RegionId> &Out) {
  RegionId Cur = PT.regionOfVarCell(Path.base());
  for (const LockOp &Op : Path.ops()) {
    switch (Op.K) {
    case LockOp::Kind::Deref:
      if (Cur == InvalidRegion)
        return false;
      Out.insert(Cur);
      Cur = PT.derefRegion(Cur);
      break;
    case LockOp::Kind::Field:
      break;
    case LockOp::Kind::Index: {
      std::vector<const IdxExpr *> Work = {Op.Idx.get()};
      while (!Work.empty()) {
        const IdxExpr *E = Work.back();
        Work.pop_back();
        switch (E->kind()) {
        case IdxExpr::Kind::Const:
          break;
        case IdxExpr::Kind::VarVal: {
          RegionId R = PT.regionOfVarCell(E->var());
          if (R == InvalidRegion)
            return false;
          Out.insert(R);
          break;
        }
        case IdxExpr::Kind::Bin:
          Work.push_back(E->lhs().get());
          Work.push_back(E->rhs().get());
          break;
        }
      }
      break;
    }
    }
  }
  return true;
}

/// True if \p Path mentions \p V as its base or inside an index component.
bool pathMentionsVar(const LockExpr &Path, const Variable *V) {
  if (Path.base() == V)
    return true;
  for (const LockOp &Op : Path.ops())
    if (Op.K == LockOp::Kind::Index && Op.Idx->mentionsVar(V))
      return true;
  return false;
}

/// True if \p Path is rooted in (or indexes through) a variable owned by
/// \p F; such paths are not expressible in the caller.
bool pathRootedIn(const LockExpr &Path, const IrFunction *F) {
  if (Path.base()->owner() == F)
    return true;
  for (const LockOp &Op : Path.ops()) {
    if (Op.K != LockOp::Kind::Index)
      continue;
    std::vector<const IdxExpr *> Work = {Op.Idx.get()};
    while (!Work.empty()) {
      const IdxExpr *E = Work.back();
      Work.pop_back();
      if (E->kind() == IdxExpr::Kind::VarVal && E->var()->owner() == F)
        return true;
      if (E->kind() == IdxExpr::Kind::Bin) {
        Work.push_back(E->lhs().get());
        Work.push_back(E->rhs().get());
      }
    }
  }
  return false;
}

/// Collects the regions directly written by statements of \p S into
/// \p Writes and the direct callees into \p Callees.
void collectDirectWrites(const IrStmt *S, const PointsToAnalysis &PT,
                         std::set<RegionId> &Writes,
                         std::set<const IrFunction *> &Callees) {
  switch (S->kind()) {
  case IrStmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    RegionId R = PT.derefRegion(PT.regionOfVarCell(St->addr()));
    if (R != InvalidRegion)
      Writes.insert(R);
    return;
  }
  case IrStmt::Kind::Call:
    Callees.insert(cast<CallStmt>(S)->callee());
    break;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectDirectWrites(Child.get(), PT, Writes, Callees);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    collectDirectWrites(I->thenStmt(), PT, Writes, Callees);
    if (I->elseStmt())
      collectDirectWrites(I->elseStmt(), PT, Writes, Callees);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    collectDirectWrites(W->prelude(), PT, Writes, Callees);
    collectDirectWrites(W->body(), PT, Writes, Callees);
    return;
  }
  case IrStmt::Kind::Atomic:
    collectDirectWrites(cast<AtomicIrStmt>(S)->body(), PT, Writes, Callees);
    return;
  default:
    break;
  }
  // Definitions of shared variables write their cells.
  if (const auto *Inst = dyn_cast<InstStmt>(S)) {
    const Variable *Def = Inst->def();
    if (Def && (Def->isGlobal() || Def->isAddressTaken())) {
      RegionId R = PT.regionOfVarCell(Def);
      if (R != InvalidRegion)
        Writes.insert(R);
    }
  }
}

} // namespace

const std::set<RegionId> &
LockInference::writeRegions(const IrFunction *F) {
  if (!WriteRegionsCache.empty())
    return WriteRegionsCache[F];

  // Compute for all functions at once: direct writes, then transitive
  // closure over the call graph.
  std::unordered_map<const IrFunction *, std::set<const IrFunction *>>
      Callees;
  for (const auto &Fn : Module.functions()) {
    std::set<RegionId> Writes;
    std::set<const IrFunction *> Direct;
    if (Fn->body())
      collectDirectWrites(Fn->body(), Ctx.PT, Writes, Direct);
    WriteRegionsCache[Fn.get()] = std::move(Writes);
    Callees[Fn.get()] = std::move(Direct);
  }
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &Fn : Module.functions()) {
      std::set<RegionId> &Mine = WriteRegionsCache[Fn.get()];
      size_t Before = Mine.size();
      for (const IrFunction *Callee : Callees[Fn.get()]) {
        const std::set<RegionId> &Theirs = WriteRegionsCache[Callee];
        Mine.insert(Theirs.begin(), Theirs.end());
      }
      Changed |= Mine.size() != Before;
    }
  }
  return WriteRegionsCache[F];
}

void LockInference::unmapLock(const LockName &L, const CallStmt *Call,
                              LockSet &Out) {
  const IrFunction *F = Call->callee();
  LockSet Cur;
  Cur.insert(L);
  // Reverse of the parameter bindings p_i = a_i.
  for (size_t I = Call->args().size(); I-- > 0;) {
    CopyStmt Binding(F->param(static_cast<unsigned>(I)), Call->args()[I],
                     Call->loc());
    LockSet Next;
    for (const LockName &Lock : Cur)
      transferLock(Lock, &Binding, Ctx, Next);
    Cur = std::move(Next);
  }
  for (const LockName &Lock : Cur) {
    if (Lock.isFine() && pathRootedIn(Lock.path(), F))
      Out.insert(Ctx.coarsen(Lock));
    else
      Out.insert(Lock);
  }
}

LockSet LockInference::transferCall(const CallStmt *St,
                                    const LockSet &After) {
  const IrFunction *F = St->callee();
  LockSet Result;
  for (const Variable *Arg : St->args())
    genVarRead(Arg, Ctx, Result);
  if (St->def() && Ctx.isLockableVar(St->def()))
    Result.insert(LockName::fine(LockExpr(St->def()),
                                 Ctx.PT.regionOfVarCell(St->def()),
                                 Effect::RW));

  // The locks for the callee's own (transitive) accesses, expressed at
  // the call site: copy because unmapLock may recurse into summaries and
  // grow the cache under us.
  {
    LockSet CalleeOwn = ownLocks(F);
    for (const LockName &E : CalleeOwn)
      unmapLock(E, St, Result);
  }

  const std::set<RegionId> &Writes = writeRegions(F);
  auto Unaffected = [&](const LockName &L) {
    if (pathMentionsVar(L.path(), St->def()))
      return false;
    std::set<RegionId> Cells;
    if (!collectPathCellRegions(L.path(), Ctx.PT, Cells))
      return false;
    for (RegionId R : Cells)
      if (Writes.count(R))
        return false;
    return true;
  };

  for (const LockName &L : After) {
    if (!L.isFine()) {
      Result.insert(L);
      continue;
    }
    if (Unaffected(L)) {
      Result.insert(L);
      continue;
    }
    // Map the lock into the callee's frame via def = ret_f.
    LockSet Mapped;
    if (St->def() && F->retVar()) {
      CopyStmt RetCopy(St->def(), F->retVar(), St->loc());
      transferLock(L, &RetCopy, Ctx, Mapped);
    } else {
      Mapped.insert(L);
    }
    for (const LockName &M : Mapped) {
      if (!M.isFine()) {
        Result.insert(M);
        continue;
      }
      // A mapped lock that is unaffected by the body and not rooted in the
      // callee skips the summary entirely.
      if (!pathRootedIn(M.path(), F) && Unaffected(M)) {
        Result.insert(M);
        continue;
      }
      const LockSet &EntryLocks = summary(F, M);
      for (const LockName &E : EntryLocks)
        unmapLock(E, St, Result);
    }
  }
  return Result;
}

const LockSet &LockInference::ownLocks(const IrFunction *F) {
  SummaryEntry &E = OwnLocksCache[F];
  if (E.InProgress || E.Round == CurrentRound)
    return E.Entry;
  E.Round = CurrentRound;
  E.InProgress = true;

  LockSet Empty;
  const IrFunction *PrevFn = CurFn;
  CurFn = F;
  LockSet Before = analyze(F->body(), Empty, Empty);
  CurFn = PrevFn;

  E.InProgress = false;
  if (E.Entry.merge(Before))
    SummariesChanged = true;
  return E.Entry;
}

const LockSet &LockInference::summary(const IrFunction *F,
                                      const LockName &L) {
  SummaryKey Key{F, L};
  SummaryEntry &E = Summaries[Key];
  if (E.InProgress || E.Round == CurrentRound)
    return E.Entry;
  E.Round = CurrentRound;
  E.InProgress = true;

  LockSet ExitSet;
  ExitSet.insert(L);
  const IrFunction *PrevFn = CurFn;
  CurFn = F;
  LockSet Before = analyze(F->body(), ExitSet, ExitSet);
  CurFn = PrevFn;

  // References into std::unordered_map are stable across inserts done by
  // recursive summary queries, so E is still valid here.
  E.InProgress = false;
  if (E.Entry.merge(Before))
    SummariesChanged = true;
  return E.Entry;
}

LockSet LockInference::transferInst(const InstStmt *St,
                                    const LockSet &After) {
  LockSet Out;
  genLocks(St, Ctx, Out);
  for (const LockName &L : After)
    transferLock(L, St, Ctx, Out);
  return Out;
}

LockSet LockInference::analyze(const IrStmt *S, const LockSet &After,
                               const LockSet &ExitSet) {
  switch (S->kind()) {
  case IrStmt::Kind::Call:
    return transferCall(cast<CallStmt>(S), After);
  case IrStmt::Kind::Copy:
  case IrStmt::Kind::ConstInt:
  case IrStmt::Kind::ConstNull:
  case IrStmt::Kind::AddrOf:
  case IrStmt::Kind::FieldAddr:
  case IrStmt::Kind::IndexAddr:
  case IrStmt::Kind::Load:
  case IrStmt::Kind::Store:
  case IrStmt::Kind::Alloc:
  case IrStmt::Kind::IntBin:
  case IrStmt::Kind::Cmp:
    return transferInst(cast<InstStmt>(S), After);
  case IrStmt::Kind::Seq: {
    const auto &Stmts = cast<SeqStmt>(S)->stmts();
    LockSet Cur = After;
    for (size_t I = Stmts.size(); I-- > 0;)
      Cur = analyze(Stmts[I].get(), Cur, ExitSet);
    return Cur;
  }
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    LockSet Merged = analyze(I->thenStmt(), After, ExitSet);
    if (I->elseStmt())
      Merged.merge(analyze(I->elseStmt(), After, ExitSet));
    else
      Merged.merge(After);
    genVarRead(I->condVar(), Ctx, Merged);
    return Merged;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    // Exit edge: locks needed after the loop plus the condition read.
    LockSet Base = After;
    genVarRead(W->condVar(), Ctx, Base);
    // Backward fixpoint: X approximates the locks at the loop head.
    LockSet X = analyze(W->prelude(), Base, ExitSet);
    for (unsigned Iter = 0;; ++Iter) {
      if (Iter >= Options.MaxLoopIterations) {
        // Sound fallback; with a bounded k this should be unreachable.
        X.insert(LockName::top());
        break;
      }
      LockSet AfterPrelude = Base;
      AfterPrelude.merge(analyze(W->body(), X, ExitSet));
      LockSet NewX = analyze(W->prelude(), AfterPrelude, ExitSet);
      if (!X.merge(NewX))
        break;
    }
    return X;
  }
  case IrStmt::Kind::Atomic:
    // Nested sections acquire nothing at runtime (§5.3); the outer
    // section's locks must cover the body, so locks flow through.
    return analyze(cast<AtomicIrStmt>(S)->body(), After, ExitSet);
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(S);
    // Control leaves the function: the incoming After is unreachable;
    // the exit set flows through ret_f = value.
    LockSet Out;
    if (R->value() && CurFn && CurFn->retVar()) {
      CopyStmt RetCopy(CurFn->retVar(), R->value(), R->loc());
      for (const LockName &L : ExitSet)
        transferLock(L, &RetCopy, Ctx, Out);
    } else {
      Out = ExitSet;
    }
    if (R->value())
      genVarRead(R->value(), Ctx, Out);
    return Out;
  }
  case IrStmt::Kind::Spawn: {
    LockSet Out = After;
    for (const Variable *Arg : cast<SpawnIrStmt>(S)->args())
      genVarRead(Arg, Ctx, Out);
    return Out;
  }
  case IrStmt::Kind::Assert: {
    LockSet Out = After;
    genVarRead(cast<AssertIrStmt>(S)->condVar(), Ctx, Out);
    return Out;
  }
  }
  assert(false && "unhandled statement kind");
  return After;
}

InferenceResult LockInference::run() {
  InferenceResult Result;
  Result.Sections.resize(Module.numAtomicSections());

  for (unsigned Round = 1; Round <= Options.MaxSummaryRounds; ++Round) {
    CurrentRound = Round;
    SummariesChanged = false;
    for (const auto &F : Module.functions()) {
      CurFn = F.get();
      for (const AtomicIrStmt *A : F->atomicSections()) {
        LockSet Empty;
        InferenceResult::Section &Section =
            Result.Sections[A->sectionId()];
        Section.SectionId = A->sectionId();
        Section.Function = F.get();
        Section.Locks = analyze(A->body(), Empty, Empty);
      }
    }
    if (!SummariesChanged)
      break;
  }
  return Result;
}
