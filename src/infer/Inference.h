//===--- Inference.h - Lock inference for atomic sections -------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (§4): a whole-program backward
/// dataflow analysis that computes, for every atomic section, a set of
/// locks N such that acquiring N at the entry of the section protects
/// every shared location the section may access (Theorem 1).
///
/// The analysis runs structurally over the IR: sequences compose transfer
/// functions right to left, branches merge with ⊔, loops iterate to a
/// fixpoint (the k-limited lock domain is finite), and calls are handled
/// with function summaries using the map/unmap discipline of §4.3.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_INFERENCE_H
#define LOCKIN_INFER_INFERENCE_H

#include "infer/LockSet.h"
#include "infer/Transfer.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace lockin {

struct InferenceOptions {
  /// The k of the Σ_k expression-lock component; k = 0 disables fine
  /// tracing entirely (every lock is a region lock), matching the paper's
  /// "Only Coarse" configuration.
  unsigned K = 3;
  /// Safety caps; on overflow the analysis falls back to ⊤ (sound).
  unsigned MaxLoopIterations = 64;
  unsigned MaxSummaryRounds = 16;
};

/// Census of inferred locks in the four categories of Figure 7. ⊤ counts
/// as a coarse rw lock.
struct LockCensus {
  unsigned FineRO = 0;
  unsigned FineRW = 0;
  unsigned CoarseRO = 0;
  unsigned CoarseRW = 0;

  unsigned total() const { return FineRO + FineRW + CoarseRO + CoarseRW; }
  LockCensus &operator+=(const LockCensus &Other) {
    FineRO += Other.FineRO;
    FineRW += Other.FineRW;
    CoarseRO += Other.CoarseRO;
    CoarseRW += Other.CoarseRW;
    return *this;
  }
};

/// The per-program analysis output: one lock set per atomic section.
class InferenceResult {
public:
  struct Section {
    uint32_t SectionId = 0;
    const ir::IrFunction *Function = nullptr;
    LockSet Locks;
  };

  const LockSet &sectionLocks(uint32_t SectionId) const {
    return Sections.at(SectionId).Locks;
  }
  const std::vector<Section> &sections() const { return Sections; }

  /// Figure 7 census over all sections.
  LockCensus census() const;

  /// Annotation string for the transformed-program printer
  /// (ir::SectionAnnotator).
  std::string annotate(uint32_t SectionId) const {
    return Sections.at(SectionId).Locks.str();
  }

private:
  friend class LockInference;
  std::vector<Section> Sections;
};

class LockInference {
public:
  LockInference(const ir::IrModule &Module, const PointsToAnalysis &PT,
                InferenceOptions Options = {});

  /// Runs the analysis for every atomic section in the module.
  InferenceResult run();

  /// Exposed for unit tests: locks needed before \p S given locks \p After
  /// needed after it, with an empty exit set.
  LockSet analyzeForTest(const ir::IrStmt *S, const LockSet &After) {
    LockSet Exit;
    return analyze(S, After, Exit);
  }

private:
  LockSet analyze(const ir::IrStmt *S, const LockSet &After,
                  const LockSet &ExitSet);
  LockSet transferInst(const ir::InstStmt *St, const LockSet &After);
  LockSet transferCall(const ir::CallStmt *St, const LockSet &After);

  /// Pushes one lock through the body of \p F: result is the locks needed
  /// at F's entry (in F's naming) to cover L at F's exit. Cached; grows
  /// monotonically across rounds until the global fixpoint.
  const LockSet &summary(const ir::IrFunction *F, const LockName &L);

  /// Locks needed at F's entry to protect every access F (and its
  /// callees) perform — the G-set part of the call transfer, cached like
  /// summaries.
  const LockSet &ownLocks(const ir::IrFunction *F);

  /// Regions possibly written by stores in \p F or its (transitive)
  /// callees; used to skip the summary push-through for unaffected locks.
  const std::set<RegionId> &writeRegions(const ir::IrFunction *F);

  /// Rewrites \p L backward through the parameter bindings p_i = a_i and
  /// coarsens locks still rooted in callee-local state.
  void unmapLock(const LockName &L, const ir::CallStmt *Call, LockSet &Out);

  struct SummaryKey {
    const ir::IrFunction *F;
    LockName L;
    bool operator==(const SummaryKey &Other) const {
      return F == Other.F && L == Other.L;
    }
  };
  struct SummaryKeyHash {
    size_t operator()(const SummaryKey &Key) const {
      return reinterpret_cast<size_t>(Key.F) ^ Key.L.hash();
    }
  };
  struct SummaryEntry {
    LockSet Entry;
    uint32_t Round = ~0u;
    bool InProgress = false;
  };

  const ir::IrModule &Module;
  TransferContext Ctx;
  InferenceOptions Options;
  /// Function whose body is currently being analyzed (for ret_f rewriting
  /// at Return statements).
  const ir::IrFunction *CurFn = nullptr;

  std::unordered_map<SummaryKey, SummaryEntry, SummaryKeyHash> Summaries;
  std::unordered_map<const ir::IrFunction *, SummaryEntry> OwnLocksCache;
  std::unordered_map<const ir::IrFunction *, std::set<RegionId>>
      WriteRegionsCache;
  uint32_t CurrentRound = 0;
  bool SummariesChanged = false;
};

} // namespace lockin

#endif // LOCKIN_INFER_INFERENCE_H
