//===--- Inference.h - Lock inference for atomic sections -------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's primary contribution (§4): a whole-program backward
/// dataflow analysis that computes, for every atomic section, a set of
/// locks N such that acquiring N at the entry of the section protects
/// every shared location the section may access (Theorem 1).
///
/// The analysis runs structurally over the IR: sequences compose transfer
/// functions right to left, branches merge with ⊔, loops iterate to a
/// fixpoint (the k-limited lock domain is finite), and calls are handled
/// with function summaries using the map/unmap discipline of §4.3.
///
/// Interprocedurally the analysis is scheduled by the call graph's SCC
/// condensation (see infer/Summaries.h): callee SCCs are summarized
/// bottom-up before their callers, non-recursive functions exactly once,
/// and independent SCCs concurrently when InferenceOptions::Jobs > 1.
/// Serial and parallel runs produce identical lock sets: every published
/// summary is the least fixpoint of a monotone equation system, which is
/// unique regardless of evaluation order.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_INFERENCE_H
#define LOCKIN_INFER_INFERENCE_H

#include "analysis/CallGraph.h"
#include "infer/LockSet.h"
#include "infer/Summaries.h"
#include "infer/Transfer.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"

#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace lockin {

struct InferenceOptions {
  /// The k of the Σ_k expression-lock component; k = 0 disables fine
  /// tracing entirely (every lock is a region lock), matching the paper's
  /// "Only Coarse" configuration.
  unsigned K = 3;
  /// Safety caps; on overflow the analysis falls back to ⊤ (sound).
  unsigned MaxLoopIterations = 64;
  /// Cap on the per-SCC summary fixpoint rounds (the seed's
  /// MaxSummaryRounds applied per SCC instead of globally).
  unsigned MaxSummaryRounds = 16;
  /// Worker threads for the SCC-scheduled analysis; 0 means
  /// std::thread::hardware_concurrency(). 1 runs fully inline.
  unsigned Jobs = 0;
  /// When non-empty, only these atomic-section ids are analyzed; other
  /// result slots stay default-constructed (null Function, empty Locks).
  /// The incremental service uses this to re-analyze exactly the cache
  /// misses while serving every hit from the content-hashed cache.
  std::vector<uint32_t> OnlySections;
  /// Hash-cons lock paths and index expressions (flyweight sharing).
  /// Off restores the pre-interner costs — one node per construction,
  /// deep hashing/equality — and exists only for bench_mega's
  /// before/after comparison; reports are identical either way.
  bool InternSharing = true;
  /// Share storage of structurally identical final summaries (see
  /// FunctionSummaries); value-neutral, also benchmarked via bench_mega.
  bool DedupSummaries = true;
  /// MHP-driven lock elision: after inference, sections proven
  /// never-parallel with every conflicting section and bare access keep
  /// their inferred lock sets for the record but are marked elided — the
  /// runtime acquires nothing for them. Off by default; when off the
  /// result (and every rendered report) is byte-identical to a build
  /// without this option. Ignored for partial runs (OnlySections), which
  /// lack the whole-program view the proof needs.
  bool ElideNeverParallel = false;
};

/// Counters for --stats and the benchmarks; filled by run().
struct InferenceStats {
  SummaryStats Summaries;
  uint64_t TransferCacheHits = 0;
  uint64_t TransferCacheMisses = 0;
  uint64_t GenCacheHits = 0;
  uint64_t GenCacheMisses = 0;
  unsigned Functions = 0;
  /// Functions transitively callable from some atomic section (the set
  /// the bottom-up prewarm summarizes).
  unsigned ReachableFunctions = 0;
  unsigned Sccs = 0;
  unsigned RecursiveSccs = 0;
  unsigned CondensationDepth = 0;
  unsigned Sections = 0;
  unsigned JobsUsed = 0;
  /// Interner counters (see LockInterner::Stats): distinct nodes created,
  /// constructions answered by an existing node, and arena payload bytes.
  uint64_t InternerNodes = 0;
  uint64_t InternerHits = 0;
  uint64_t ArenaBytes = 0;
  /// MHP-driven elision (InferenceOptions::ElideNeverParallel): sections
  /// whose locks were elided, and the MHP item pairs the proof examined.
  unsigned ElidedSections = 0;
  uint64_t ElisionMhpPairs = 0;
};

/// Census of inferred locks in the four categories of Figure 7. ⊤ counts
/// as a coarse rw lock.
struct LockCensus {
  unsigned FineRO = 0;
  unsigned FineRW = 0;
  unsigned CoarseRO = 0;
  unsigned CoarseRW = 0;

  unsigned total() const { return FineRO + FineRW + CoarseRO + CoarseRW; }
  bool operator==(const LockCensus &Other) const {
    return FineRO == Other.FineRO && FineRW == Other.FineRW &&
           CoarseRO == Other.CoarseRO && CoarseRW == Other.CoarseRW;
  }
  LockCensus &operator+=(const LockCensus &Other) {
    FineRO += Other.FineRO;
    FineRW += Other.FineRW;
    CoarseRO += Other.CoarseRO;
    CoarseRW += Other.CoarseRW;
    return *this;
  }
};

/// Figure 7 census of one lock set (shared by InferenceResult::census and
/// the incremental summary cache, which stores the census per section so
/// warm responses reproduce the report's census line byte for byte).
LockCensus censusOf(const LockSet &Locks);

/// The per-program analysis output: one lock set per atomic section.
class InferenceResult {
public:
  struct Section {
    uint32_t SectionId = 0;
    const ir::IrFunction *Function = nullptr;
    LockSet Locks;
    /// MHP elision proved this section never runs concurrently with any
    /// conflicting code: the runtime acquires none of Locks for it.
    bool Elided = false;
  };

  const LockSet &sectionLocks(uint32_t SectionId) const {
    return Sections.at(SectionId).Locks;
  }
  bool sectionElided(uint32_t SectionId) const {
    return Sections.at(SectionId).Elided;
  }
  unsigned elidedCount() const {
    unsigned N = 0;
    for (const Section &S : Sections)
      N += S.Elided ? 1 : 0;
    return N;
  }
  const std::vector<Section> &sections() const { return Sections; }

  /// The interner every lock name in this result points into; shared with
  /// clients (the concurrency checker) that build comparable lock names.
  const std::shared_ptr<LockInterner> &interner() const { return Interner; }

  /// Figure 7 census over all sections.
  LockCensus census() const;

  /// Annotation string for the transformed-program printer
  /// (ir::SectionAnnotator).
  std::string annotate(uint32_t SectionId) const {
    const Section &S = Sections.at(SectionId);
    return S.Elided ? S.Locks.str() + " [elided: never-parallel]"
                    : S.Locks.str();
  }

private:
  friend class LockInference;
  std::vector<Section> Sections;
  /// Keeps the interner (and with it every LockPathNode the lock sets
  /// point into) alive for as long as the result is held, even after the
  /// LockInference that produced it is gone.
  std::shared_ptr<LockInterner> Interner;
};

class LockInference : public SummaryBodyEvaluator {
public:
  /// Builds (and owns) a fresh call graph for \p Module.
  LockInference(const ir::IrModule &Module, const PointsToAnalysis &PT,
                InferenceOptions Options = {});
  /// Reuses an externally built call graph (the driver's callgraph pass).
  LockInference(const ir::IrModule &Module, const PointsToAnalysis &PT,
                const analysis::CallGraph &CG,
                InferenceOptions Options = {});

  /// Runs the analysis for every atomic section in the module (or the
  /// subset in InferenceOptions::OnlySections).
  InferenceResult run();

  /// Runs the analysis for exactly \p OnlySections (empty = all). May be
  /// called repeatedly on one instance: the summary store persists across
  /// calls, so later batches reuse summaries computed by earlier ones —
  /// the incremental service's batched re-analysis path.
  InferenceResult run(std::vector<uint32_t> OnlySections) {
    Options.OnlySections = std::move(OnlySections);
    return run();
  }

  /// Counters of the last run().
  const InferenceStats &stats() const { return Stats; }

  /// Exposed for unit tests: locks needed before \p S given locks \p After
  /// needed after it, with an empty exit set.
  LockSet analyzeForTest(const ir::IrStmt *S, const LockSet &After) {
    LockSet Exit;
    return analyze(nullptr, S, After, Exit);
  }

  /// SummaryBodyEvaluator: locks at \p F's entry given \p Exit at its
  /// exit. Called by the summary store, possibly from worker threads.
  LockSet evaluateEntry(const ir::IrFunction *F, const LockSet &Exit,
                        bool Hot) override;

private:
  LockSet analyze(const ir::IrFunction *CurFn, const ir::IrStmt *S,
                  const LockSet &After, const LockSet &ExitSet);
  LockSet transferInst(const ir::InstStmt *St, const LockSet &After);
  LockSet transferCall(const ir::CallStmt *St, const LockSet &After);

  void analyzeSection(InferenceResult &Result, const ir::AtomicIrStmt *A,
                      const ir::IrFunction *F);
  /// InferenceOptions::ElideNeverParallel post-pass (Elision.cpp).
  void elideNeverParallel(InferenceResult &Result);
  void runSerial(const std::vector<char> &WantScc, InferenceResult &Result);
  void runParallel(unsigned Jobs, const std::vector<char> &WantScc,
                   InferenceResult &Result);
  void foldCacheStats(const TransferCache &Cache);

  const ir::IrModule &Module;
  /// Declared before Ctx: the context holds a reference into it.
  std::shared_ptr<LockInterner> Interner;
  TransferContext Ctx;
  InferenceOptions Options;
  std::unique_ptr<analysis::CallGraph> OwnedCG;
  const analysis::CallGraph &CG;
  FunctionSummaries Summaries;

  /// Section list in section-id order, filled by run().
  struct SectionTask {
    const ir::AtomicIrStmt *Stmt = nullptr;
    const ir::IrFunction *Function = nullptr;
  };
  std::vector<SectionTask> SectionTasks;

  InferenceStats Stats;
  std::mutex StatsMutex;
};

} // namespace lockin

#endif // LOCKIN_INFER_INFERENCE_H
