//===--- LockSet.cpp - Normalized sets of lock names ---------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/LockSet.h"

#include <algorithm>

using namespace lockin;

bool LockSet::insert(const LockName &L) {
  // Joining effects first keeps the set canonical: Fine(p, ro) + Fine(p, rw)
  // is one lock with rw, not two entries.
  LockName ToAdd = L;
  for (const LockName &Held : Locks) {
    if (Held.sameLockIgnoringEffect(ToAdd)) {
      Effect Joined = effectJoin(Held.effect(), ToAdd.effect());
      if (Joined == Held.effect())
        return false; // already subsumed
      ToAdd = ToAdd.withEffect(Joined);
      break;
    }
  }
  for (const LockName &Held : Locks)
    if (ToAdd.leq(Held))
      return false;
  // Drop everything the new lock subsumes.
  Locks.erase(std::remove_if(Locks.begin(), Locks.end(),
                             [&](const LockName &Held) {
                               return Held.leq(ToAdd);
                             }),
              Locks.end());
  Locks.push_back(std::move(ToAdd));
  return true;
}

bool LockSet::merge(const LockSet &Other) {
  bool Changed = false;
  for (const LockName &L : Other.Locks)
    Changed |= insert(L);
  return Changed;
}

bool LockSet::covers(const LockName &L) const {
  for (const LockName &Held : Locks)
    if (L.leq(Held))
      return true;
  return false;
}

bool LockSet::contains(const LockName &L) const {
  return std::find(Locks.begin(), Locks.end(), L) != Locks.end();
}

bool LockSet::operator==(const LockSet &Other) const {
  if (Locks.size() != Other.Locks.size())
    return false;
  for (const LockName &L : Locks)
    if (!Other.contains(L))
      return false;
  return true;
}

std::string LockSet::str() const {
  std::vector<std::string> Names;
  Names.reserve(Locks.size());
  for (const LockName &L : Locks)
    Names.push_back(L.str());
  std::sort(Names.begin(), Names.end());
  std::string Out = "{";
  for (size_t I = 0; I < Names.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Names[I];
  }
  return Out + "}";
}
