//===--- LockSet.cpp - Normalized sets of lock names ---------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/LockSet.h"

#include <algorithm>

using namespace lockin;

/// Past this size insert() switches from linear scans to the class-hash
/// index. Small sets (the common case in user programs) stay pointer-free
/// and allocation-free.
static constexpr size_t kIndexThreshold = 16;

bool LockSet::insert(const LockName &L) {
  if (Index || Locks.size() >= kIndexThreshold) {
    if (!Index)
      buildIndex();
    return insertIndexed(L);
  }
  // Joining effects first keeps the set canonical: Fine(p, ro) + Fine(p, rw)
  // is one lock with rw, not two entries.
  LockName ToAdd = L;
  for (const LockName &Held : Locks) {
    if (Held.sameLockIgnoringEffect(ToAdd)) {
      Effect Joined = effectJoin(Held.effect(), ToAdd.effect());
      if (Joined == Held.effect())
        return false; // already subsumed
      ToAdd = ToAdd.withEffect(Joined);
      break;
    }
  }
  for (const LockName &Held : Locks)
    if (ToAdd.leq(Held))
      return false;
  // Drop everything the new lock subsumes.
  Locks.erase(std::remove_if(Locks.begin(), Locks.end(),
                             [&](const LockName &Held) {
                               return Held.leq(ToAdd);
                             }),
              Locks.end());
  Locks.push_back(std::move(ToAdd));
  return true;
}

void LockSet::buildIndex() const {
  Index = std::make_unique<IndexT>();
  for (size_t I = 0; I < Locks.size(); ++I)
    indexAdd(Locks[I], static_cast<uint32_t>(I));
}

void LockSet::indexAdd(const LockName &L, uint32_t Pos) const {
  Index->Classes[L.classHash()].push_back(Pos);
  if (L.isTop())
    Index->HasTop = true;
  else if (L.isCoarse())
    Index->CoarseByRegion[L.region()] = Pos;
  else if (L.region() != InvalidRegion)
    Index->FineByRegion[L.region()].push_back(Pos);
}

/// Index-backed insert. The canonical-form invariants make each of the
/// scanning version's three passes answerable by point lookups:
///  - at most one held lock is in ToAdd's sameLockIgnoringEffect class
///    (sets are class-unique), found via Classes;
///  - a non-Top ToAdd can only be covered by Top, by its class entry (ruled
///    out once the effect join says "changed"), or — for a fine lock — by
///    the coarse lock of its region, found via CoarseByRegion;
///  - the locks a non-Top ToAdd subsumes are its class entry plus — for a
///    coarse lock — the fine locks of its region, found via FineByRegion.
/// The purge preserves storage order, so results are byte-identical to the
/// scanning path.
bool LockSet::insertIndexed(const LockName &L) {
  LockName ToAdd = L;
  int32_t ClassPos = -1;
  {
    auto It = Index->Classes.find(L.classHash());
    if (It != Index->Classes.end())
      for (uint32_t P : It->second)
        if (Locks[P].sameLockIgnoringEffect(ToAdd)) {
          ClassPos = static_cast<int32_t>(P);
          break;
        }
  }
  if (ClassPos >= 0) {
    Effect Joined = effectJoin(Locks[ClassPos].effect(), ToAdd.effect());
    if (Joined == Locks[ClassPos].effect())
      return false; // already subsumed
    ToAdd = ToAdd.withEffect(Joined);
  }
  if (Index->HasTop)
    return false; // anything ≤ Top, exactly as ToAdd.leq(Held) scans it
  if (ToAdd.isFine() && ToAdd.region() != InvalidRegion) {
    auto It = Index->CoarseByRegion.find(ToAdd.region());
    if (It != Index->CoarseByRegion.end() &&
        effectLeq(ToAdd.effect(), Locks[It->second].effect()))
      return false;
  }
  // Drop everything the new lock subsumes.
  if (ToAdd.isTop()) {
    Locks.clear();
    Index = std::make_unique<IndexT>();
  } else {
    std::vector<uint32_t> Dead;
    if (ClassPos >= 0)
      Dead.push_back(static_cast<uint32_t>(ClassPos));
    if (ToAdd.isCoarse()) {
      auto It = Index->FineByRegion.find(ToAdd.region());
      if (It != Index->FineByRegion.end())
        for (uint32_t P : It->second)
          if (effectLeq(Locks[P].effect(), ToAdd.effect()))
            Dead.push_back(P);
      std::sort(Dead.begin(), Dead.end());
    }
    purge(Dead);
  }
  Locks.push_back(ToAdd);
  indexAdd(ToAdd, static_cast<uint32_t>(Locks.size() - 1));
  return true;
}

void LockSet::purge(const std::vector<uint32_t> &Dead) {
  if (Dead.empty())
    return;
  size_t D = 0, W = 0;
  for (size_t R = 0; R < Locks.size(); ++R) {
    if (D < Dead.size() && Dead[D] == R) {
      ++D;
      continue;
    }
    if (W != R)
      Locks[W] = Locks[R];
    ++W;
  }
  Locks.erase(Locks.begin() + W, Locks.end());
  buildIndex();
}

bool LockSet::merge(const LockSet &Other) {
  bool Changed = false;
  Locks.reserve(Locks.size() + Other.Locks.size());
  for (const LockName &L : Other.Locks)
    Changed |= insert(L);
  return Changed;
}

bool LockSet::covers(const LockName &L) const {
  for (const LockName &Held : Locks)
    if (L.leq(Held))
      return true;
  return false;
}

bool LockSet::contains(const LockName &L) const {
  return std::find(Locks.begin(), Locks.end(), L) != Locks.end();
}

bool LockSet::operator==(const LockSet &Other) const {
  if (Locks.size() != Other.Locks.size())
    return false;
  for (const LockName &L : Locks)
    if (!Other.contains(L))
      return false;
  return true;
}

size_t LockSet::contentHash() const {
  size_t H = Locks.size();
  for (const LockName &L : Locks)
    H = H * 1099511628211u ^ L.hash();
  return H;
}

bool LockSet::sameSequence(const LockSet &Other) const {
  if (Locks.size() != Other.Locks.size())
    return false;
  for (size_t I = 0; I < Locks.size(); ++I)
    if (!(Locks[I] == Other.Locks[I]))
      return false;
  return true;
}

std::string LockSet::str() const {
  std::vector<std::string> Names;
  Names.reserve(Locks.size());
  for (const LockName &L : Locks)
    Names.push_back(L.str());
  std::sort(Names.begin(), Names.end());
  std::string Out = "{";
  for (size_t I = 0; I < Names.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Names[I];
  }
  return Out + "}";
}
