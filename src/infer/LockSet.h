//===--- LockSet.h - Normalized sets of lock names --------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow fact of the inference: a set of lock names N_p with no
/// internal redundancy, maintaining the invariant of §4.1(b): for any pair
/// l1, l2 in the set, neither l1 < l2 nor l2 < l1. The merge operation is
/// the paper's N1 ⊔ N2: union, dropping locks subsumed by coarser ones.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_LOCKSET_H
#define LOCKIN_INFER_LOCKSET_H

#include "locks/LockName.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockin {

class LockSet {
public:
  /// Inserts \p L, maintaining normalization:
  ///  - if an existing lock is ≥ L, nothing changes;
  ///  - otherwise every existing lock ≤ L is removed and L is added;
  ///  - two locks equal up to effect collapse into one with the joined
  ///    effect (ro ⊔ rw = rw).
  /// Returns true if the set changed.
  bool insert(const LockName &L);

  /// N := N ⊔ Other; returns true if the set changed.
  bool merge(const LockSet &Other);

  /// True if some held lock is ≥ L (i.e. L's protection is already
  /// guaranteed).
  bool covers(const LockName &L) const;

  bool contains(const LockName &L) const;
  bool empty() const { return Locks.empty(); }
  size_t size() const { return Locks.size(); }

  auto begin() const { return Locks.begin(); }
  auto end() const { return Locks.end(); }
  const std::vector<LockName> &locks() const { return Locks; }

  bool operator==(const LockSet &Other) const;

  /// Order-sensitive content hash over the held locks. Stricter than
  /// operator== (which is order-insensitive): equal hashes + sameSequence
  /// imply equal sets, which is what the summary deduplication needs.
  size_t contentHash() const;

  /// Element-wise equality in storage order (stricter than operator==).
  bool sameSequence(const LockSet &Other) const;

  /// Deterministic rendering, sorted by lock text; used in tests and the
  /// transformed-program printer.
  std::string str() const;

  LockSet() = default;
  /// The index is a per-instance cache over Locks; copies start without
  /// one (and rebuild lazily if they grow past the threshold), so copying
  /// a set stays a plain vector copy.
  LockSet(const LockSet &Other) : Locks(Other.Locks) {}
  LockSet(LockSet &&) = default;
  LockSet &operator=(const LockSet &Other) {
    if (this != &Other) {
      Locks = Other.Locks;
      Index.reset();
    }
    return *this;
  }
  LockSet &operator=(LockSet &&) = default;

private:
  /// Large sets answer insert()'s three scans (effect join, coverage,
  /// subsumption purge) by hash lookup instead of O(n) iteration. The
  /// index maps the lock's identity-ignoring-effect class to its position
  /// and tracks coarse locks by region; behaviour (including storage
  /// order, which reports and summary dedup depend on) is byte-identical
  /// to the scanning path. With interned paths a class hash is a field
  /// read, so indexed insert is O(1); the pre-interner representation
  /// pays a structural hash per probe.
  struct IndexT {
    /// sameLockIgnoringEffect class hash -> positions in Locks (more
    /// than one only on hash collision).
    std::unordered_map<size_t, std::vector<uint32_t>> Classes;
    /// Region -> position of the coarse lock over it (unique per the
    /// set's canonical form).
    std::unordered_map<RegionId, uint32_t> CoarseByRegion;
    /// Region -> positions of fine locks over it (the victims of a
    /// coarse insert).
    std::unordered_map<RegionId, std::vector<uint32_t>> FineByRegion;
    bool HasTop = false;
  };

  void buildIndex() const;
  void indexAdd(const LockName &L, uint32_t Pos) const;
  bool insertIndexed(const LockName &L);
  /// Drops every element whose position is flagged in \p Dead (ascending
  /// order preserved) and reindexes.
  void purge(const std::vector<uint32_t> &Dead);

  std::vector<LockName> Locks;
  mutable std::unique_ptr<IndexT> Index;
};

} // namespace lockin

#endif // LOCKIN_INFER_LOCKSET_H
