//===--- LockSet.h - Normalized sets of lock names --------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow fact of the inference: a set of lock names N_p with no
/// internal redundancy, maintaining the invariant of §4.1(b): for any pair
/// l1, l2 in the set, neither l1 < l2 nor l2 < l1. The merge operation is
/// the paper's N1 ⊔ N2: union, dropping locks subsumed by coarser ones.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_LOCKSET_H
#define LOCKIN_INFER_LOCKSET_H

#include "locks/LockName.h"

#include <string>
#include <vector>

namespace lockin {

class LockSet {
public:
  /// Inserts \p L, maintaining normalization:
  ///  - if an existing lock is ≥ L, nothing changes;
  ///  - otherwise every existing lock ≤ L is removed and L is added;
  ///  - two locks equal up to effect collapse into one with the joined
  ///    effect (ro ⊔ rw = rw).
  /// Returns true if the set changed.
  bool insert(const LockName &L);

  /// N := N ⊔ Other; returns true if the set changed.
  bool merge(const LockSet &Other);

  /// True if some held lock is ≥ L (i.e. L's protection is already
  /// guaranteed).
  bool covers(const LockName &L) const;

  bool contains(const LockName &L) const;
  bool empty() const { return Locks.empty(); }
  size_t size() const { return Locks.size(); }

  auto begin() const { return Locks.begin(); }
  auto end() const { return Locks.end(); }
  const std::vector<LockName> &locks() const { return Locks; }

  bool operator==(const LockSet &Other) const;

  /// Deterministic rendering, sorted by lock text; used in tests and the
  /// transformed-program printer.
  std::string str() const;

private:
  std::vector<LockName> Locks;
};

} // namespace lockin

#endif // LOCKIN_INFER_LOCKSET_H
