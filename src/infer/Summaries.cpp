//===--- Summaries.cpp - Function summaries and the SCC fixpoint ---------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/Summaries.h"

#include <algorithm>
#include <cassert>

using namespace lockin;
using namespace lockin::ir;

//===----------------------------------------------------------------------===//
// Path/expressibility helpers
//===----------------------------------------------------------------------===//

bool lockin::lockPathRootedIn(const LockExpr &Path, const IrFunction *F) {
  if (Path.base()->owner() == F)
    return true;
  for (const LockOp &Op : Path.ops()) {
    if (Op.K != LockOp::Kind::Index)
      continue;
    std::vector<const IdxExpr *> Work = {Op.Idx};
    while (!Work.empty()) {
      const IdxExpr *E = Work.back();
      Work.pop_back();
      if (E->kind() == IdxExpr::Kind::VarVal && E->var()->owner() == F)
        return true;
      if (E->kind() == IdxExpr::Kind::Bin) {
        Work.push_back(E->lhs());
        Work.push_back(E->rhs());
      }
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Transitive write regions (eager, bottom-up over the condensation)
//===----------------------------------------------------------------------===//

namespace {

/// Collects the regions directly written by statements of \p S into
/// \p Writes.
void collectDirectWrites(const IrStmt *S, const PointsToAnalysis &PT,
                         std::set<RegionId> &Writes) {
  switch (S->kind()) {
  case IrStmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    RegionId R = PT.derefRegion(PT.regionOfVarCell(St->addr()));
    if (R != InvalidRegion)
      Writes.insert(R);
    return;
  }
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectDirectWrites(Child.get(), PT, Writes);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    collectDirectWrites(I->thenStmt(), PT, Writes);
    if (I->elseStmt())
      collectDirectWrites(I->elseStmt(), PT, Writes);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    collectDirectWrites(W->prelude(), PT, Writes);
    collectDirectWrites(W->body(), PT, Writes);
    return;
  }
  case IrStmt::Kind::Atomic:
    collectDirectWrites(cast<AtomicIrStmt>(S)->body(), PT, Writes);
    return;
  default:
    break;
  }
  // Definitions of shared variables write their cells.
  if (const auto *Inst = dyn_cast<InstStmt>(S)) {
    const Variable *Def = Inst->def();
    if (Def && (Def->isGlobal() || Def->isAddressTaken())) {
      RegionId R = PT.regionOfVarCell(Def);
      if (R != InvalidRegion)
        Writes.insert(R);
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// FunctionSummaries
//===----------------------------------------------------------------------===//

FunctionSummaries::FunctionSummaries(const IrModule &M,
                                     const analysis::CallGraph &CG,
                                     const TransferContext &Ctx,
                                     SummaryBodyEvaluator &Eval,
                                     unsigned MaxSccRounds,
                                     bool DedupSummaries)
    : Module(M), CG(CG), Ctx(Ctx), Eval(Eval), MaxSccRounds(MaxSccRounds),
      Dedup(DedupSummaries) {
  Sccs.resize(CG.numSccs());
  for (auto &S : Sccs)
    S = std::make_unique<SccState>();

  // Transitive write regions in one bottom-up pass: members of one SCC all
  // reach each other, so they share one set — the union of the members'
  // direct writes and the (already computed) callee-SCC sets.
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc) {
    std::set<RegionId> SccWrites;
    for (unsigned FnIdx : CG.sccMembers(Scc)) {
      const IrFunction *F = CG.function(FnIdx);
      if (F->body())
        collectDirectWrites(F->body(), Ctx.PT, SccWrites);
    }
    for (unsigned CScc : CG.sccCallees(Scc)) {
      const std::set<RegionId> &Theirs =
          WriteRegions[CG.function(CG.sccMembers(CScc).front())];
      SccWrites.insert(Theirs.begin(), Theirs.end());
    }
    const auto &Members = CG.sccMembers(Scc);
    for (size_t I = 0; I + 1 < Members.size(); ++I)
      WriteRegions[CG.function(Members[I])] = SccWrites;
    if (!Members.empty())
      WriteRegions[CG.function(Members.back())] = std::move(SccWrites);
  }
}

const std::set<RegionId> &
FunctionSummaries::writeRegions(const IrFunction *F) const {
  return WriteRegions.at(F);
}

void FunctionSummaries::unmapLock(const LockName &L, const CallStmt *Call,
                                  LockSet &Out) const {
  const IrFunction *F = Call->callee();
  LockSet Cur;
  Cur.insert(L);
  // Reverse of the parameter bindings p_i = a_i.
  for (size_t I = Call->args().size(); I-- > 0;) {
    CopyStmt Binding(F->param(static_cast<unsigned>(I)), Call->args()[I],
                     Call->loc());
    LockSet Next;
    for (const LockName &Lock : Cur)
      transferLock(Lock, &Binding, Ctx, Next);
    Cur = std::move(Next);
  }
  for (const LockName &Lock : Cur) {
    if (Lock.isFine() && lockPathRootedIn(Lock.path(), F))
      Out.insert(Ctx.coarsen(Lock));
    else
      Out.insert(Lock);
  }
}

const LockSet &FunctionSummaries::summary(const IrFunction *F,
                                          const LockName &L) {
  return query(Key{F, /*Own=*/false, L});
}

const LockSet &FunctionSummaries::ownLocks(const IrFunction *F) {
  return query(Key{F, /*Own=*/true, LockName::top()});
}

void FunctionSummaries::prewarmScc(unsigned Scc) {
  for (unsigned FnIdx : CG.sccMembers(Scc))
    ownLocks(CG.function(FnIdx));
}

LockSet FunctionSummaries::evaluate(SccState &S, const Key &K, bool Hot) {
  ++S.Evaluations;
  LockSet Exit;
  if (!K.Own)
    Exit.insert(K.L);
  return Eval.evaluateEntry(K.F, Exit, Hot);
}

void FunctionSummaries::publish(Entry &E) {
  if (Dedup) {
    size_t H = E.Locks.contentHash();
    std::lock_guard<std::mutex> Guard(DedupMu);
    auto &Bucket = DedupTable[H];
    for (const auto &Shared : Bucket)
      if (Shared->sameSequence(E.Locks)) {
        // An identical set was already published: share it and free the
        // local copy. The shared object is element-wise equal, so every
        // reader sees the same value it would have seen.
        E.Published = Shared;
        E.Locks = LockSet();
        E.Final = true;
        ++DedupHits;
        return;
      }
    auto Shared = std::make_shared<const LockSet>(std::move(E.Locks));
    Bucket.push_back(Shared);
    E.Published = std::move(Shared);
  } else {
    E.Published = std::make_shared<const LockSet>(std::move(E.Locks));
  }
  E.Locks = LockSet();
  E.Final = true;
}

const LockSet &FunctionSummaries::query(Key K) {
  unsigned SccIdx = CG.sccOfFunction(K.F);
  SccState &S = *Sccs[SccIdx];
  std::lock_guard<std::recursive_mutex> Guard(S.M);

  auto [It, Inserted] = S.Entries.try_emplace(std::move(K));
  Entry &E = It->second; // value references are stable across inserts
  const Key &StoredKey = It->first;
  if (E.Final) {
    ++S.FinalHits;
    return *E.Published;
  }
  if (!Inserted) {
    // A recursive demand (the entry is being evaluated higher in this
    // thread's stack) or a mid-fixpoint read: return the current partial
    // value; the SCC-local fixpoint re-evaluates until it is stable.
    return E.Locks;
  }

  bool Recursive = CG.isRecursive(SccIdx);
  ++S.EvalDepth;
  E.InProgress = true;
  LockSet First = evaluate(S, StoredKey, Recursive);
  E.InProgress = false;
  E.Locks.merge(First);
  S.PeakEntryLocks = std::max<uint64_t>(S.PeakEntryLocks, E.Locks.size());
  --S.EvalDepth;

  if (!Recursive) {
    // Every callee lies in a lower, already-final SCC: the very first
    // evaluation is exact. Non-recursive functions are summarized once.
    publish(E);
    return *E.Published;
  }

  S.Pending.push_back(StoredKey);
  if (S.EvalDepth == 0 && !S.InFixpoint) {
    // Outermost demand on this SCC: run the local worklist fixpoint over
    // every entry demanded so far (the list may grow while we iterate),
    // then publish all of them as final.
    S.InFixpoint = true;
    for (unsigned Round = 0; Round < MaxSccRounds; ++Round) {
      ++S.FixpointRounds;
      bool Changed = false;
      for (size_t I = 0; I < S.Pending.size(); ++I) {
        Key Cur = S.Pending[I]; // copy: Pending may reallocate
        Entry &PE = S.Entries.find(Cur)->second;
        PE.InProgress = true;
        LockSet Next = evaluate(S, Cur, /*Hot=*/true);
        PE.InProgress = false;
        Changed |= PE.Locks.merge(Next);
        S.PeakEntryLocks =
            std::max<uint64_t>(S.PeakEntryLocks, PE.Locks.size());
      }
      if (!Changed)
        break;
      // On round overflow we stop like the seed's MaxSummaryRounds cap
      // did; the k-limited domain is finite, so this is unreachable in
      // practice.
    }
    for (const Key &PK : S.Pending)
      publish(S.Entries.find(PK)->second);
    S.Pending.clear();
    S.InFixpoint = false;
  }
  return E.Final ? *E.Published : E.Locks;
}

SummaryStats FunctionSummaries::stats() const {
  SummaryStats Out;
  for (const auto &S : Sccs) {
    std::lock_guard<std::recursive_mutex> Guard(S->M);
    Out.Entries += S->Entries.size();
    Out.Evaluations += S->Evaluations;
    Out.SccFixpointRounds += S->FixpointRounds;
    Out.FinalHits += S->FinalHits;
    Out.PeakEntryLocks = std::max(Out.PeakEntryLocks, S->PeakEntryLocks);
  }
  {
    std::lock_guard<std::mutex> Guard(DedupMu);
    Out.Deduped = DedupHits;
  }
  return Out;
}
