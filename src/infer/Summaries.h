//===--- Summaries.h - Function summaries and the SCC fixpoint --*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interprocedural half of the §4.3 analysis: FunctionSummary storage
/// (f_s : LockName -> {LockName} plus the per-function "own accesses"
/// G-set), the map/unmap discipline at call boundaries, and the fixpoint
/// that makes summaries exact.
///
/// The fixpoint is scheduled by the call graph's SCC condensation instead
/// of the seed's whole-program re-iteration loop:
///
///  - Summaries live in per-SCC stores. A function in a non-recursive
///    (trivial) SCC is summarized exactly once: every callee lies in a
///    strictly lower SCC whose entries are already final, so the first
///    evaluation is exact and the entry is published as final immediately.
///  - A recursive SCC runs a local worklist fixpoint: the demanded entries
///    of that SCC are re-evaluated (reading monotonically growing
///    same-SCC entries and final lower-SCC entries) until none changes,
///    then all of them are published as final. Later demands for new locks
///    in the same SCC start fresh local fixpoints; already-final entries
///    are immutable and stay valid.
///
/// Publication discipline (the parallel determinism argument): an entry is
/// mutated only while its SCC's mutex is held, and a reference to a
/// non-final entry never escapes a frame that holds that mutex. Every
/// entry a caller can observe after summary()/ownLocks() returns is final
/// and immutable. Final values are least fixpoints of a monotone equation
/// system over a join-semilattice, which are unique regardless of
/// evaluation order or thread interleaving — hence serial and parallel
/// runs produce identical lock sets.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_SUMMARIES_H
#define LOCKIN_INFER_SUMMARIES_H

#include "analysis/CallGraph.h"
#include "infer/LockSet.h"
#include "infer/Transfer.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace lockin {

/// True if \p Path is rooted in (or indexes through) a variable owned by
/// \p F; such paths are not expressible in F's callers and must coarsen
/// when unmapped out of F.
bool lockPathRootedIn(const LockExpr &Path, const ir::IrFunction *F);

/// Evaluates one function body: the locks needed at F's entry given the
/// locks \p Exit needed at its exit. Implemented by LockInference (the
/// structural backward walk); must be safe to call from worker threads.
class SummaryBodyEvaluator {
public:
  virtual ~SummaryBodyEvaluator() = default;
  /// \p Hot is true when this evaluation is (or will be) repeated — a
  /// recursive SCC's local fixpoint — so per-statement memoization pays;
  /// one-shot evaluations of non-recursive functions pass false.
  virtual LockSet evaluateEntry(const ir::IrFunction *F,
                                const LockSet &Exit, bool Hot) = 0;
};

/// Counters the pass manager surfaces via --stats.
struct SummaryStats {
  uint64_t Entries = 0;          ///< distinct (function, lock) + own entries
  uint64_t Evaluations = 0;      ///< body evaluations (seed: per round per key)
  uint64_t SccFixpointRounds = 0;///< re-evaluation rounds in recursive SCCs
  uint64_t FinalHits = 0;        ///< queries answered by a final entry
  uint64_t PeakEntryLocks = 0;   ///< largest summary lock set seen
  uint64_t Deduped = 0;          ///< final entries sharing another's lock set
};

/// Whole-program summary store, scheduled by the SCC condensation.
/// Thread-safe: any thread may query any function; see the publication
/// discipline above.
class FunctionSummaries {
public:
  /// \p DedupSummaries shares the lock-set storage of structurally
  /// identical final entries behind a content hash. Sharing never changes
  /// a returned set's value (the shared object is element-wise equal to
  /// the one it replaces), so reports stay byte-identical with the flag
  /// either way; it only drops duplicate storage.
  FunctionSummaries(const ir::IrModule &M, const analysis::CallGraph &CG,
                    const TransferContext &Ctx, SummaryBodyEvaluator &Eval,
                    unsigned MaxSccRounds, bool DedupSummaries = true);

  /// Locks needed at F's entry (in F's naming) to cover \p L at F's exit.
  /// The returned set is final and immutable unless the query is re-entered
  /// from inside F's own SCC evaluation (recursion), where the current
  /// partial value is returned exactly as the seed's in-progress guard did.
  const LockSet &summary(const ir::IrFunction *F, const LockName &L);

  /// Locks needed at F's entry to protect every access F and its callees
  /// perform (the G-set part of the call transfer).
  const LockSet &ownLocks(const ir::IrFunction *F);

  /// Regions possibly written by F or its transitive callees; computed
  /// eagerly bottom-up over the condensation (read-only afterwards).
  const std::set<RegionId> &writeRegions(const ir::IrFunction *F) const;

  /// Rewrites \p L backward through the parameter bindings p_i = a_i of
  /// \p Call and coarsens locks still rooted in callee-local state.
  void unmapLock(const LockName &L, const ir::CallStmt *Call,
                 LockSet &Out) const;

  /// Evaluates ownLocks for every member of \p Scc (the bottom-up prewarm
  /// phase). Callee SCCs must already be prewarmed or final on demand.
  void prewarmScc(unsigned Scc);

  /// Aggregated counters (takes each SCC's mutex; call after analysis).
  SummaryStats stats() const;

private:
  struct Key {
    const ir::IrFunction *F;
    bool Own; ///< true: the G-set entry; L is ignored
    LockName L;
    bool operator==(const Key &O) const {
      return F == O.F && Own == O.Own && (Own || L == O.L);
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = std::hash<const void *>()(K.F);
      return K.Own ? ~H : H ^ K.L.hash();
    }
  };
  struct Entry {
    /// Working value while the entry is being computed. Cleared at
    /// publication when the final value is shared with another entry.
    LockSet Locks;
    /// The published, immutable value; non-null exactly when Final. May
    /// point at another entry's identical set (dedup).
    std::shared_ptr<const LockSet> Published;
    bool Final = false;
    bool InProgress = false;
  };
  struct SccState {
    /// Recursive: evaluating an entry demands other entries of the same
    /// SCC while the lock is already held.
    std::recursive_mutex M;
    std::unordered_map<Key, Entry, KeyHash> Entries;
    /// Non-final keys awaiting the local fixpoint, in demand order.
    std::vector<Key> Pending;
    /// Re-entrancy depth of query() on this SCC for the lock-holding
    /// thread; the outermost frame runs the fixpoint.
    unsigned EvalDepth = 0;
    /// True while the local fixpoint loop is draining Pending; new keys
    /// demanded meanwhile are appended to Pending instead of starting a
    /// nested fixpoint.
    bool InFixpoint = false;
    // Local counters, merged by stats().
    uint64_t Evaluations = 0;
    uint64_t FixpointRounds = 0;
    uint64_t FinalHits = 0;
    uint64_t PeakEntryLocks = 0;
  };

  const LockSet &query(Key K);
  LockSet evaluate(SccState &S, const Key &K, bool Hot);
  /// Marks \p E final, moving its locks into shared storage (reusing an
  /// identical published set when deduplication is on).
  void publish(Entry &E);

  const ir::IrModule &Module;
  const analysis::CallGraph &CG;
  const TransferContext &Ctx;
  SummaryBodyEvaluator &Eval;
  const unsigned MaxSccRounds;
  const bool Dedup;

  std::vector<std::unique_ptr<SccState>> Sccs; // indexed by SCC id
  std::unordered_map<const ir::IrFunction *, std::set<RegionId>>
      WriteRegions;

  /// Published-set dedup table, keyed by an order-sensitive content hash
  /// (identical cones produce their locks in identical order, so ordered
  /// equality is enough and cheap). Guarded by its own mutex; always
  /// acquired after an SCC mutex, never the other way around.
  mutable std::mutex DedupMu;
  std::unordered_map<size_t, std::vector<std::shared_ptr<const LockSet>>>
      DedupTable;
  uint64_t DedupHits = 0;
};

} // namespace lockin

#endif // LOCKIN_INFER_SUMMARIES_H
