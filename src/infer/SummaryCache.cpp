//===--- SummaryCache.cpp - Content-hashed per-section summary cache ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/SummaryCache.h"

using namespace lockin;

bool SummaryCache::lookup(uint64_t Key, SectionSummary &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end()) {
    ++Counters.Misses;
    return false;
  }
  ++Counters.Hits;
  Lru.splice(Lru.begin(), Lru, It->second);
  Out = It->second->Value;
  return true;
}

std::shared_ptr<const std::string>
SummaryCache::internText(std::shared_ptr<const std::string> Text) {
  if (!Text)
    return Text;
  size_t H = std::hash<std::string>{}(*Text);
  auto &Bucket = TextPool[H];
  for (size_t I = 0; I < Bucket.size();) {
    std::shared_ptr<const std::string> Live = Bucket[I].lock();
    if (!Live) {
      Bucket[I] = Bucket.back();
      Bucket.pop_back();
      continue;
    }
    if (*Live == *Text) {
      ++Counters.TextPoolHits;
      return Live;
    }
    ++I;
  }
  Bucket.push_back(Text);
  return Text;
}

void SummaryCache::insert(uint64_t Key, SectionSummary Value) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  Value.LocksText = internText(std::move(Value.LocksText));
  auto It = Index.find(Key);
  if (It != Index.end()) {
    It->second->Value = std::move(Value);
    Lru.splice(Lru.begin(), Lru, It->second);
    return;
  }
  Lru.push_front(EntryT{Key, std::move(Value)});
  Index[Key] = Lru.begin();
  ++Counters.Insertions;
  while (Index.size() > Capacity) {
    Index.erase(Lru.back().Key);
    Lru.pop_back();
    ++Counters.Evictions;
  }
}

void SummaryCache::erase(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Index.find(Key);
  if (It == Index.end())
    return;
  Lru.erase(It->second);
  Index.erase(It);
  ++Counters.Invalidations;
}

void SummaryCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counters.Invalidations += Index.size();
  Index.clear();
  Lru.clear();
  TextPool.clear();
}

SummaryCache::Stats SummaryCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats Out = Counters;
  Out.Entries = Index.size();
  Out.Capacity = Capacity;
  return Out;
}
