//===--- SummaryCache.cpp - Content-hashed per-section summary cache ------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/SummaryCache.h"

#include <algorithm>

using namespace lockin;

SummaryCache::SummaryCache(size_t Capacity, size_t Shards)
    : TotalCapacity(Capacity) {
  size_t N = std::max<size_t>(1, std::min(Shards, std::max<size_t>(
                                                      1, Capacity)));
  ShardsV.reserve(N);
  for (size_t I = 0; I < N; ++I) {
    auto S = std::make_unique<ShardT>();
    // Split capacity evenly; the first shards absorb the remainder so the
    // shares sum exactly to the configured total.
    S->Capacity = Capacity / N + (I < Capacity % N ? 1 : 0);
    ShardsV.push_back(std::move(S));
  }
}

size_t SummaryCache::shardOf(uint64_t Key) const {
  if (ShardsV.size() == 1)
    return 0;
  // Fibonacci mix: the fingerprint keys are already hashes, but the
  // multiply spreads any residual structure across the shard index bits.
  return static_cast<size_t>((Key * 0x9e3779b97f4a7c15ull) >> 32) %
         ShardsV.size();
}

bool SummaryCache::lookup(uint64_t Key, SectionSummary &Out) {
  ShardT &S = *ShardsV[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Index.find(Key);
  if (It == S.Index.end()) {
    ++S.Counters.Misses;
    return false;
  }
  ++S.Counters.Hits;
  S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
  Out = It->second->Value;
  return true;
}

std::shared_ptr<const std::string>
SummaryCache::ShardT::internText(std::shared_ptr<const std::string> Text) {
  if (!Text)
    return Text;
  size_t H = std::hash<std::string>{}(*Text);
  auto &Bucket = TextPool[H];
  for (size_t I = 0; I < Bucket.size();) {
    std::shared_ptr<const std::string> Live = Bucket[I].lock();
    if (!Live) {
      Bucket[I] = Bucket.back();
      Bucket.pop_back();
      continue;
    }
    if (*Live == *Text) {
      ++Counters.TextPoolHits;
      return Live;
    }
    ++I;
  }
  Bucket.push_back(Text);
  return Text;
}

void SummaryCache::insert(uint64_t Key, SectionSummary Value) {
  if (TotalCapacity == 0)
    return;
  ShardT &S = *ShardsV[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Capacity == 0)
    return;
  Value.LocksText = S.internText(std::move(Value.LocksText));
  auto It = S.Index.find(Key);
  if (It != S.Index.end()) {
    It->second->Value = std::move(Value);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  S.Lru.push_front(EntryT{Key, std::move(Value)});
  S.Index[Key] = S.Lru.begin();
  ++S.Counters.Insertions;
  while (S.Index.size() > S.Capacity) {
    S.Index.erase(S.Lru.back().Key);
    S.Lru.pop_back();
    ++S.Counters.Evictions;
  }
}

void SummaryCache::erase(uint64_t Key) {
  ShardT &S = *ShardsV[shardOf(Key)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Index.find(Key);
  if (It == S.Index.end())
    return;
  S.Lru.erase(It->second);
  S.Index.erase(It);
  ++S.Counters.Invalidations;
}

void SummaryCache::clear() {
  for (auto &SP : ShardsV) {
    ShardT &S = *SP;
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Counters.Invalidations += S.Index.size();
    S.Index.clear();
    S.Lru.clear();
    S.TextPool.clear();
  }
}

SummaryCache::Stats SummaryCache::stats() const {
  Stats Out;
  for (size_t I = 0; I < ShardsV.size(); ++I) {
    Stats S = shardStats(I);
    Out.Hits += S.Hits;
    Out.Misses += S.Misses;
    Out.Insertions += S.Insertions;
    Out.Evictions += S.Evictions;
    Out.Invalidations += S.Invalidations;
    Out.TextPoolHits += S.TextPoolHits;
    Out.Entries += S.Entries;
  }
  Out.Capacity = TotalCapacity;
  return Out;
}

SummaryCache::Stats SummaryCache::shardStats(size_t Shard) const {
  const ShardT &S = *ShardsV[Shard];
  std::lock_guard<std::mutex> Lock(S.Mu);
  Stats Out = S.Counters;
  Out.Entries = S.Index.size();
  Out.Capacity = S.Capacity;
  return Out;
}
