//===--- SummaryCache.h - Content-hashed per-section summary cache -*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental layer's persistent store: rendered per-section lock
/// summaries keyed by a 64-bit content hash. A key captures everything the
/// section's inferred lock set depends on — the normalized IR of its
/// enclosing function, the normalized IR of every function transitively
/// callable from that function's SCC (via the condensation closure hash),
/// the canonicalized points-to region signature of that closure, and k —
/// so a hit may be served without re-running the analysis and is
/// guaranteed byte-identical to a cold run (see service/Fingerprint.h for
/// the key construction, DESIGN.md "Service & incremental analysis" for
/// the argument).
///
/// The cache is bounded: least-recently-used entries are evicted once
/// capacity is reached, so a long-lived daemon's memory stays flat under
/// edit storms. All operations are thread-safe (one mutex; entries are
/// small rendered strings, not IR, so the critical sections are short).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_SUMMARYCACHE_H
#define LOCKIN_INFER_SUMMARYCACHE_H

#include "infer/Inference.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace lockin {

/// The cached value: everything needed to reproduce one section's share
/// of the tool report without an InferenceResult.
struct SectionSummary {
  /// LockSet::str() of the inferred set — the acquireAll(...) annotation
  /// and the "; section #N in F: ..." line body.
  std::string LocksText;
  /// Figure-7 census contribution of the set (for the census line).
  LockCensus Census;
};

/// Bounded, thread-safe, LRU-evicting map from content-hash keys to
/// rendered section summaries.
class SummaryCache {
public:
  /// \p Capacity = max resident entries; 0 disables caching entirely
  /// (every lookup misses, inserts are dropped).
  explicit SummaryCache(size_t Capacity) : Capacity(Capacity) {}

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t Invalidations = 0; ///< explicit erase/clear removals
    size_t Entries = 0;
    size_t Capacity = 0;
  };

  /// True and fills \p Out on a hit (refreshing recency); counts the
  /// outcome either way.
  bool lookup(uint64_t Key, SectionSummary &Out);

  /// Inserts or refreshes \p Key, evicting the LRU tail past capacity.
  void insert(uint64_t Key, SectionSummary Value);

  /// Drops \p Key if resident (explicit invalidation).
  void erase(uint64_t Key);

  /// Drops everything (the protocol's whole-cache invalidate).
  void clear();

  Stats stats() const;

private:
  struct EntryT {
    uint64_t Key;
    SectionSummary Value;
  };

  mutable std::mutex Mu;
  size_t Capacity;
  std::list<EntryT> Lru; // front = most recent
  std::unordered_map<uint64_t, std::list<EntryT>::iterator> Index;
  Stats Counters;
};

} // namespace lockin

#endif // LOCKIN_INFER_SUMMARYCACHE_H
