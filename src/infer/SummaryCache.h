//===--- SummaryCache.h - Content-hashed per-section summary cache -*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental layer's persistent store: rendered per-section lock
/// summaries keyed by a 64-bit content hash. A key captures everything the
/// section's inferred lock set depends on — the normalized IR of its
/// enclosing function, the normalized IR of every function transitively
/// callable from that function's SCC (via the condensation closure hash),
/// the canonicalized points-to region signature of that closure, and k —
/// so a hit may be served without re-running the analysis and is
/// guaranteed byte-identical to a cold run (see service/Fingerprint.h for
/// the key construction, DESIGN.md "Service & incremental analysis" for
/// the argument).
///
/// The cache is bounded: least-recently-used entries are evicted once
/// capacity is reached, so a long-lived daemon's memory stays flat under
/// edit storms. All operations are thread-safe. The store is sharded by a
/// mix of the fingerprint key — each shard owns its own mutex, LRU list,
/// text pool, and counters — so concurrent tenants hitting the daemon's
/// event loops do not serialize on one lock. Shards=1 (the default)
/// reproduces the original single-LRU behavior exactly, which the unit
/// tests and the byte-identity contract rely on; the daemon constructs
/// the sharded variant (ServerOptions::CacheShards).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_SUMMARYCACHE_H
#define LOCKIN_INFER_SUMMARYCACHE_H

#include "infer/Inference.h"

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockin {

/// The cached value: everything needed to reproduce one section's share
/// of the tool report without an InferenceResult.
struct SectionSummary {
  /// LockSet::str() of the inferred set — the acquireAll(...) annotation
  /// and the "; section #N in F: ..." line body. Shared and immutable:
  /// the cache pools identical texts, so the thousands of sections of a
  /// megaprogram that infer the same lock set cost one string between
  /// them instead of one per entry.
  std::shared_ptr<const std::string> LocksText;
  /// Figure-7 census contribution of the set (for the census line).
  LockCensus Census;

  const std::string &text() const {
    static const std::string Empty;
    return LocksText ? *LocksText : Empty;
  }
  void setText(std::string S) {
    LocksText = std::make_shared<const std::string>(std::move(S));
  }
};

/// Bounded, thread-safe, LRU-evicting map from content-hash keys to
/// rendered section summaries, sharded by key hash.
class SummaryCache {
public:
  /// \p Capacity = max resident entries across all shards; 0 disables
  /// caching entirely (every lookup misses, inserts are dropped).
  /// \p Shards = independent mutex+LRU domains; clamped to [1, Capacity]
  /// so a tiny cache never gets zero-capacity shards.
  explicit SummaryCache(size_t Capacity, size_t Shards = 1);

  struct Stats {
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    uint64_t Insertions = 0;
    uint64_t Evictions = 0;
    uint64_t Invalidations = 0; ///< explicit erase/clear removals
    uint64_t TextPoolHits = 0;  ///< inserts served by an existing text
    size_t Entries = 0;
    size_t Capacity = 0;
  };

  /// True and fills \p Out on a hit (refreshing recency); counts the
  /// outcome either way.
  bool lookup(uint64_t Key, SectionSummary &Out);

  /// Inserts or refreshes \p Key, evicting the shard's LRU tail past its
  /// share of capacity.
  void insert(uint64_t Key, SectionSummary Value);

  /// Drops \p Key if resident (explicit invalidation).
  void erase(uint64_t Key);

  /// Drops everything (the protocol's whole-cache invalidate).
  void clear();

  /// Aggregated over all shards: Hits/Misses/... are the sums of the
  /// per-shard counters (shardStats(i).Hits summed == stats().Hits — the
  /// sharding invariant tests pin).
  Stats stats() const;

  size_t numShards() const { return ShardsV.size(); }
  /// One shard's counters (Capacity = that shard's share).
  Stats shardStats(size_t Shard) const;

  /// The shard \p Key lands in — exposed so tests can place keys.
  size_t shardOf(uint64_t Key) const;

private:
  struct EntryT {
    uint64_t Key;
    SectionSummary Value;
  };

  /// One mutex domain: its own LRU, index, text pool, and counters.
  struct ShardT {
    mutable std::mutex Mu;
    size_t Capacity = 0;
    std::list<EntryT> Lru; // front = most recent
    std::unordered_map<uint64_t, std::list<EntryT>::iterator> Index;
    /// Text pool: string hash -> live texts with that hash. Weak refs so
    /// eviction actually frees the text once the last entry drops it.
    std::unordered_map<size_t,
                       std::vector<std::weak_ptr<const std::string>>>
        TextPool;
    Stats Counters;

    std::shared_ptr<const std::string>
    internText(std::shared_ptr<const std::string> Text);
  };

  size_t TotalCapacity;
  std::vector<std::unique_ptr<ShardT>> ShardsV;
};

} // namespace lockin

#endif // LOCKIN_INFER_SUMMARYCACHE_H
