//===--- Transfer.cpp - Backward transfer functions ----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "infer/Transfer.h"

#include "locks/Interner.h"

#include <cassert>
#include <optional>

using namespace lockin;
using namespace lockin::ir;

LockName TransferContext::finalize(LockExpr Path, RegionId Region,
                                   Effect Eff) const {
  if (Path.size() > K) {
    if (Region == InvalidRegion)
      return LockName::top();
    return LockName::coarse(Region, Eff);
  }
  return LockName::fine(Path, Region, Eff, Interner);
}

LockName TransferContext::coarsen(const LockName &L) const {
  if (L.region() == InvalidRegion)
    return LockName::top();
  return LockName::coarse(L.region(), L.effect());
}

namespace {

/// Result of substituting index variables in one IdxExpr.
struct IdxSubst {
  IdxExpr::Ptr Expr;  // null => substitution impossible
  bool Dropped = false; // assigned var became null: path unreachable
};

/// Substitutes occurrences of VarVal(X) in \p E according to the defining
/// statement \p St (which assigns X). Returns a null Expr with
/// Dropped=false when the definition cannot be traced (load, call,
/// address); the caller coarsens.
IdxSubst substIdx(IdxExpr::Ptr E, const Variable *X, const InstStmt *St,
                  LockInterner &IN) {
  if (!E->mentionsVar(X))
    return {E, false};
  switch (E->kind()) {
  case IdxExpr::Kind::Const:
    return {E, false};
  case IdxExpr::Kind::VarVal: {
    assert(E->var() == X && "mentionsVar mismatch");
    switch (St->kind()) {
    case IrStmt::Kind::Copy:
      return {IN.idxVar(cast<CopyStmt>(St)->src()), false};
    case IrStmt::Kind::ConstInt:
      return {IN.idxConst(cast<ConstIntStmt>(St)->value()), false};
    case IrStmt::Kind::IntBin: {
      const auto *B = cast<IntBinStmt>(St);
      return {IN.idxBin(B->op(), IN.idxVar(B->lhs()), IN.idxVar(B->rhs())),
              false};
    }
    case IrStmt::Kind::ConstNull:
      // The index variable would hold null; any path using it is
      // unreachable at runtime.
      return {nullptr, true};
    default:
      // Load, Cmp, Alloc, AddrOf: the value is not expressible as an index
      // expression at an earlier point; coarsen.
      return {nullptr, false};
    }
  }
  case IdxExpr::Kind::Bin: {
    IdxSubst L = substIdx(E->lhs(), X, St, IN);
    if (!L.Expr)
      return L;
    IdxSubst R = substIdx(E->rhs(), X, St, IN);
    if (!R.Expr)
      return R;
    return {IN.idxBin(E->op(), L.Expr, R.Expr), false};
  }
  }
  return {nullptr, false};
}

/// Substitutes index variables across the whole path. Outcome is one of:
/// unchanged/new path (Path set), Dropped, or Coarsen (neither).
struct PathSubst {
  std::optional<LockExpr> Path;
  bool Dropped = false;
};

PathSubst substPathIdx(const LockExpr &P, const Variable *X,
                       const InstStmt *St, LockInterner &IN) {
  std::vector<LockOp> NewOps;
  NewOps.reserve(P.ops().size());
  for (const LockOp &Op : P.ops()) {
    if (Op.K != LockOp::Kind::Index || !Op.Idx->mentionsVar(X)) {
      NewOps.push_back(Op);
      continue;
    }
    IdxSubst S = substIdx(Op.Idx, X, St, IN);
    if (!S.Expr)
      return {std::nullopt, S.Dropped};
    NewOps.push_back(LockOp::index(S.Expr));
  }
  return {LockExpr(P.base(), std::move(NewOps)), false};
}

/// True if any index component of \p P reads a variable whose cell lies in
/// \p Region (and so may be changed by a store into that region).
bool pathIdxReadsRegion(const LockExpr &P, RegionId Region,
                        const TransferContext &Ctx) {
  if (Region == InvalidRegion)
    return false;
  for (const LockOp &Op : P.ops()) {
    if (Op.K != LockOp::Kind::Index)
      continue;
    // Walk the index expression's variables.
    std::vector<const IdxExpr *> Work = {Op.Idx};
    while (!Work.empty()) {
      const IdxExpr *E = Work.back();
      Work.pop_back();
      switch (E->kind()) {
      case IdxExpr::Kind::Const:
        break;
      case IdxExpr::Kind::VarVal:
        if (Ctx.PT.regionOfVarCell(E->var()) == Region)
          return true;
        break;
      case IdxExpr::Kind::Bin:
        Work.push_back(E->lhs());
        Work.push_back(E->rhs());
        break;
      }
    }
  }
  return false;
}

/// Head replacements for a path rooted at the assigned variable whose
/// first op is a Deref: the S_{x=e} relations of Fig. 4.
struct HeadRewrite {
  enum class Kind { Replace, Drop, Coarsen };
  Kind K;
  LockExpr Head; // valid for Replace; replaces [x, Deref]

  static HeadRewrite replace(LockExpr E) {
    return {Kind::Replace, std::move(E)};
  }
  static HeadRewrite drop() { return {Kind::Drop, LockExpr(nullptr)}; }
  static HeadRewrite coarsen() { return {Kind::Coarsen, LockExpr(nullptr)}; }
};

HeadRewrite headRewriteFor(const InstStmt *St, LockInterner &IN) {
  switch (St->kind()) {
  case IrStmt::Kind::Copy:
    // S_{x=y}: *x̄ -> *ȳ
    return HeadRewrite::replace(LockExpr(cast<CopyStmt>(St)->src())
                                    .plusDeref());
  case IrStmt::Kind::AddrOf:
    // S_{x=&y}: *x̄ -> ȳ
    return HeadRewrite::replace(LockExpr(cast<AddrOfStmt>(St)->target()));
  case IrStmt::Kind::FieldAddr: {
    // S_{x=y+i}: *x̄ -> *ȳ + i
    const auto *F = cast<FieldAddrStmt>(St);
    return HeadRewrite::replace(LockExpr(F->base()).plusDeref().plusField(
        F->structDecl(), F->fieldIndex()));
  }
  case IrStmt::Kind::IndexAddr: {
    // x = y @ i: *x̄ -> *ȳ @ value(i)
    const auto *Ix = cast<IndexAddrStmt>(St);
    return HeadRewrite::replace(LockExpr(Ix->base()).plusDeref().plusIndex(
        IN.idxVar(Ix->index())));
  }
  case IrStmt::Kind::Load: {
    // S_{x=*y}: *x̄ -> *(*ȳ)
    const auto *L = cast<LoadStmt>(St);
    return HeadRewrite::replace(LockExpr(L->addr()).plusDeref().plusDeref());
  }
  case IrStmt::Kind::Alloc:
  case IrStmt::Kind::ConstNull:
    // S_{x=new} = S_{x=null} = {}: locations reached through x after the
    // statement are fresh (or nonexistent); they are unreachable before
    // it, so the lock is dropped (Lemma 2's unreachability escape).
    return HeadRewrite::drop();
  case IrStmt::Kind::ConstInt:
  case IrStmt::Kind::IntBin:
  case IrStmt::Kind::Cmp:
    // Dereferencing an integer value cannot denote a location.
    return HeadRewrite::drop();
  default:
    assert(false && "headRewriteFor on unexpected statement");
    return HeadRewrite::coarsen();
  }
}

void transferStore(const LockName &L, const StoreStmt *St,
                   const TransferContext &Ctx, LockSet &Out) {
  const LockExpr &P = L.path();
  RegionId WrittenRegion =
      Ctx.PT.derefRegion(Ctx.PT.regionOfVarCell(St->addr()));

  // If an index component reads a may-aliased cell, the precise variant
  // set would fork per occurrence; the region lock covers all variants.
  if (pathIdxReadsRegion(P, WrittenRegion, Ctx)) {
    Out.insert(Ctx.coarsen(L));
    return;
  }

  // closure(Id) − closure(Q_{*x}): identity unless the path starts
  // *(*x̄)... (i.e. [x, Deref, Deref, ...]).
  const auto &Ops = P.ops();
  bool QExcluded = P.base() == St->addr() && Ops.size() >= 2 &&
                   Ops[0].K == LockOp::Kind::Deref &&
                   Ops[1].K == LockOp::Kind::Deref;
  if (!QExcluded)
    Out.insert(L);

  // S_{*x=y} closed under suffixes: every deref position whose cell may
  // alias *x̄ may now yield the stored value, so the suffix re-roots at
  // *ȳ. (The j-th prefix is the cell; Ops[j] is the deref reading it.)
  if (WrittenRegion == InvalidRegion)
    return;
  LockExpr Prefix(P.base());
  for (size_t J = 0; J < Ops.size(); ++J) {
    if (Ops[J].K == LockOp::Kind::Deref) {
      RegionId CellRegion = evalPathRegion(Prefix, Ctx.PT);
      if (Ctx.PT.mayAlias(CellRegion, WrittenRegion)) {
        LockExpr Candidate =
            P.withPrefix(LockExpr(St->value()).plusDeref(), J + 1);
        Out.insert(Ctx.finalize(std::move(Candidate), L.region(),
                                L.effect()));
      }
    }
    // Extend the prefix by this op.
    switch (Ops[J].K) {
    case LockOp::Kind::Deref:
      Prefix = Prefix.plusDeref();
      break;
    case LockOp::Kind::Field:
      Prefix = Prefix.plusField(Ops[J].Struct, Ops[J].FieldIdx);
      break;
    case LockOp::Kind::Index:
      Prefix = Prefix.plusIndex(Ops[J].Idx);
      break;
    }
  }
}

} // namespace

void lockin::transferLock(const LockName &L, const InstStmt *St,
                          const TransferContext &Ctx, LockSet &Out) {
  assert(St->kind() != IrStmt::Kind::Call &&
         "calls are handled interprocedurally");

  // Coarse and top locks are flow-insensitive (§4.3).
  if (!L.isFine()) {
    Out.insert(L);
    return;
  }

  if (St->kind() == IrStmt::Kind::Store) {
    transferStore(L, cast<StoreStmt>(St), Ctx, Out);
    return;
  }

  const Variable *X = St->def();
  assert(X && "non-store primitive statements define a variable");

  // Mask fast path: if the path certainly does not read X, both rewrite
  // steps below are the identity, and re-finalizing would rebuild the
  // same lock. (No false negatives: the mask covers the base and every
  // index leaf.)
  if (Ctx.FastPaths && !L.pathMayMention(X)) {
    Out.insert(L);
    return;
  }

  const LockExpr &P = L.path();

  // Step 1: rewrite the pointer head if the path depends on the value of
  // the assigned variable.
  std::optional<LockExpr> Rewritten;
  if (P.base() == X && P.startsWithDeref()) {
    HeadRewrite HR = headRewriteFor(St, Ctx.Interner);
    switch (HR.K) {
    case HeadRewrite::Kind::Drop:
      return;
    case HeadRewrite::Kind::Coarsen:
      Out.insert(Ctx.coarsen(L));
      return;
    case HeadRewrite::Kind::Replace:
      Rewritten = P.withPrefix(HR.Head, 1);
      break;
    }
  } else {
    Rewritten = P; // identity (closure(Id))
  }

  // Step 2: substitute the assigned variable in index components.
  PathSubst Sub = substPathIdx(*Rewritten, X, St, Ctx.Interner);
  if (!Sub.Path) {
    if (!Sub.Dropped)
      Out.insert(Ctx.coarsen(L));
    return;
  }

  Out.insert(Ctx.finalize(std::move(*Sub.Path), L.region(), L.effect()));
}

void lockin::genVarRead(const Variable *V, const TransferContext &Ctx,
                        LockSet &Out) {
  if (!Ctx.isLockableVar(V))
    return;
  Out.insert(LockName::fine(LockExpr(V), Ctx.PT.regionOfVarCell(V),
                            Effect::RO, Ctx.Interner));
}

static void genVarWrite(const Variable *V, const TransferContext &Ctx,
                        LockSet &Out) {
  if (!V || !Ctx.isLockableVar(V))
    return;
  Out.insert(LockName::fine(LockExpr(V), Ctx.PT.regionOfVarCell(V),
                            Effect::RW, Ctx.Interner));
}

void lockin::genLocks(const InstStmt *St, const TransferContext &Ctx,
                      LockSet &Out) {
  genVarWrite(St->def(), Ctx, Out);
  switch (St->kind()) {
  case IrStmt::Kind::Copy:
    genVarRead(cast<CopyStmt>(St)->src(), Ctx, Out);
    return;
  case IrStmt::Kind::ConstInt:
  case IrStmt::Kind::ConstNull:
    return;
  case IrStmt::Kind::AddrOf:
    // Taking an address performs no memory access.
    return;
  case IrStmt::Kind::FieldAddr:
    genVarRead(cast<FieldAddrStmt>(St)->base(), Ctx, Out);
    return;
  case IrStmt::Kind::IndexAddr: {
    const auto *Ix = cast<IndexAddrStmt>(St);
    genVarRead(Ix->base(), Ctx, Out);
    genVarRead(Ix->index(), Ctx, Out);
    return;
  }
  case IrStmt::Kind::Load: {
    // G_{*y}: the dereferenced cell is read (ro); y itself is read.
    const auto *L = cast<LoadStmt>(St);
    genVarRead(L->addr(), Ctx, Out);
    LockExpr Path = LockExpr(L->addr()).plusDeref();
    RegionId Region = evalPathRegion(Path, Ctx.PT);
    Out.insert(Ctx.finalize(std::move(Path), Region, Effect::RO));
    return;
  }
  case IrStmt::Kind::Store: {
    // G for *x = y: the written cell needs rw; x and y are read.
    const auto *S = cast<StoreStmt>(St);
    genVarRead(S->addr(), Ctx, Out);
    genVarRead(S->value(), Ctx, Out);
    LockExpr Path = LockExpr(S->addr()).plusDeref();
    RegionId Region = evalPathRegion(Path, Ctx.PT);
    Out.insert(Ctx.finalize(std::move(Path), Region, Effect::RW));
    return;
  }
  case IrStmt::Kind::Alloc: {
    const auto *A = cast<AllocStmt>(St);
    if (A->sizeVar())
      genVarRead(A->sizeVar(), Ctx, Out);
    return;
  }
  case IrStmt::Kind::IntBin: {
    const auto *B = cast<IntBinStmt>(St);
    genVarRead(B->lhs(), Ctx, Out);
    genVarRead(B->rhs(), Ctx, Out);
    return;
  }
  case IrStmt::Kind::Cmp: {
    const auto *C = cast<CmpStmt>(St);
    genVarRead(C->lhs(), Ctx, Out);
    genVarRead(C->rhs(), Ctx, Out);
    return;
  }
  case IrStmt::Kind::Call:
    // Argument reads are generated by the interprocedural transfer.
    return;
  default:
    assert(false && "genLocks on structured statement");
    return;
  }
}

//===----------------------------------------------------------------------===//
// TransferCache
//===----------------------------------------------------------------------===//

void TransferCache::apply(const LockName &L, const InstStmt *St,
                          const TransferContext &Ctx, LockSet &Out) {
  // Identity transfers skip the memo: coarse/⊤ locks are flow-insensitive,
  // and a fine lock whose path cannot read the defined variable passes
  // through any non-store statement unchanged. Caching them would only
  // grow the table (these are the overwhelmingly common cases).
  if (Ctx.FastPaths) {
    if (!L.isFine()) {
      Out.insert(L);
      return;
    }
    if (St->kind() != IrStmt::Kind::Store && !L.pathMayMention(St->def())) {
      Out.insert(L);
      return;
    }
  }
  if (St->stmtId() == IrStmt::InvalidStmtId) {
    transferLock(L, St, Ctx, Out);
    return;
  }
  Key K{St->stmtId(), L};
  auto It = Xfer.find(K);
  if (It == Xfer.end()) {
    ++Misses;
    LockSet Result;
    transferLock(L, St, Ctx, Result);
    It = Xfer.emplace(std::move(K), std::move(Result)).first;
  } else {
    ++Hits;
  }
  for (const LockName &R : It->second)
    Out.insert(R);
}

void TransferCache::gen(const InstStmt *St, const TransferContext &Ctx,
                        LockSet &Out) {
  if (St->stmtId() == IrStmt::InvalidStmtId) {
    genLocks(St, Ctx, Out);
    return;
  }
  auto It = Gen.find(St->stmtId());
  if (It == Gen.end()) {
    ++GenMisses;
    LockSet Result;
    genLocks(St, Ctx, Result);
    It = Gen.emplace(St->stmtId(), std::move(Result)).first;
  } else {
    ++GenHits;
  }
  for (const LockName &R : It->second)
    Out.insert(R);
}

/// Key for the whole-set memo: statement id folded into the
/// order-sensitive set content hash.
static uint64_t setKey(uint32_t Stmt, const LockSet &After) {
  return static_cast<uint64_t>(After.contentHash()) * 1099511628211u ^ Stmt;
}

const LockSet *TransferCache::findSet(uint32_t Stmt,
                                      const LockSet &After) const {
  auto It = Sets.find(setKey(Stmt, After));
  if (It != Sets.end())
    for (const SetEntry &E : It->second)
      if (E.After.sameSequence(After))
        return &E.Result;
  return nullptr;
}

void TransferCache::storeSet(uint32_t Stmt, const LockSet &After,
                             const LockSet &Result) {
  Sets[setKey(Stmt, After)].push_back(SetEntry{After, Result});
}
