//===--- Transfer.h - Backward transfer functions ---------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transfer functions of Fig. 4, implemented by recursive substitution
/// on lock paths (as §4.3 prescribes for a practical implementation, in
/// place of the declarative closure operators):
///
///  - S_{e1=e2}: the head of a path rooted at the assigned variable is
///    replaced by the right-hand side's path; array-index components are
///    substituted through integer assignments.
///  - closure(Id) − closure(Q): paths not affected by the assignment pass
///    through unchanged; `*x = y` drops the identity only for paths with
///    the *(*x̄) prefix and re-derives them (and every may-aliased deref
///    position) from *ȳ, implementing the weak update of the paper's
///    Fig. 2 example.
///  - G: locks protecting the accesses performed directly by a statement;
///    reads yield ro locks, writes rw locks, and locks on thread-local
///    variables whose address is never taken are omitted.
///
/// Only fine locks are rewritten: coarse region locks and ⊤ are
/// flow-insensitive and pass through every statement (§4.3).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INFER_TRANSFER_H
#define LOCKIN_INFER_TRANSFER_H

#include "infer/LockSet.h"
#include "ir/Ir.h"
#include "locks/LockName.h"
#include "pointsto/Steensgaard.h"

#include <cstdint>
#include <unordered_map>

namespace lockin {

/// Shared, immutable context for transfer computations.
struct TransferContext {
  const ir::IrModule &Module;
  const PointsToAnalysis &PT;
  /// Expression-length bound of the Σ_k component; longer paths collapse
  /// to the coarse lock of their region.
  unsigned K;
  /// Interner every lock path and index expression is built through; the
  /// substitution rewrites hash-cons their results so repeated fixpoint
  /// rounds reuse one node per distinct path. Thread-safe, shared by all
  /// workers of one inference run.
  LockInterner &Interner;
  /// Enables the representation-era fast paths (variable-mask identity
  /// skip, whole-set memo). bench_mega's legacy toggle turns them off
  /// together with node sharing so the legacy configuration reproduces
  /// the pre-refactor analysis, not just its node layout; everywhere else
  /// this is true.
  bool FastPaths = true;

  /// True if accesses to the cell &V need a lock: globals and
  /// address-taken locals may be shared between threads.
  bool isLockableVar(const ir::Variable *V) const {
    return V->isGlobal() || V->isAddressTaken();
  }

  /// Builds the lock for \p Path protecting a location in \p Region;
  /// applies the k-limit (overflow coarsens to the region lock, and to ⊤
  /// if the region is unknown).
  LockName finalize(LockExpr Path, RegionId Region, Effect Eff) const;

  /// The coarse fallback for a fine lock that can no longer be expressed.
  LockName coarsen(const LockName &L) const;
};

/// Applies the backward transfer of primitive statement \p St (any
/// InstStmt except Call) to lock \p L, inserting the locks required before
/// the statement into \p Out.
void transferLock(const LockName &L, const ir::InstStmt *St,
                  const TransferContext &Ctx, LockSet &Out);

/// Inserts the G locks for the accesses performed directly by \p St.
void genLocks(const ir::InstStmt *St, const TransferContext &Ctx,
              LockSet &Out);

/// G lock for a plain read of variable \p V (condition variables, call
/// arguments, returned values).
void genVarRead(const ir::Variable *V, const TransferContext &Ctx,
                LockSet &Out);

/// Memo for the per-statement transfer results, keyed on (statement id,
/// incoming lock). Loop fixpoints and SCC summary rounds re-apply the
/// same S/Q/closure rewrites to the same locks many times; the memo turns
/// the repeats into hash hits. transferLock/genLocks are pure in
/// (statement, lock, context), so caching is exact. One instance per
/// worker thread (not shared), so no synchronization is needed.
class TransferCache {
public:
  /// transferLock with memoization; falls through uncached for statements
  /// without an id (the map/unmap binding copies built on the side).
  void apply(const LockName &L, const ir::InstStmt *St,
             const TransferContext &Ctx, LockSet &Out);

  /// genLocks with memoization, keyed on the statement id alone.
  void gen(const ir::InstStmt *St, const TransferContext &Ctx, LockSet &Out);

  /// Whole-set memo over the per-statement transfer: the cached result of
  /// gen(St) + apply(L, St) for every L of \p After, in order. Backward
  /// fixpoints re-apply identical (statement, set) pairs until
  /// convergence; a hit replaces the entire per-lock loop with one flat
  /// set copy. Keys hash the full after-set, which the interned
  /// representation answers with a field read per lock — the pre-refactor
  /// representation pays a structural hash per path, which is why this
  /// memo only became profitable with hash-consed nodes.
  /// Returns null on miss; entries are verified element-wise
  /// (sameSequence), so a hit is exact, never hash-trusting.
  const LockSet *findSet(uint32_t Stmt, const LockSet &After) const;
  void storeSet(uint32_t Stmt, const LockSet &After, const LockSet &Result);

  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t GenHits = 0;
  uint64_t GenMisses = 0;
  uint64_t SetHits = 0;
  uint64_t SetMisses = 0;

private:
  struct Key {
    uint32_t Stmt;
    LockName L;
    bool operator==(const Key &O) const {
      return Stmt == O.Stmt && L == O.L;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      return K.L.hash() * 1099511628211u ^ K.Stmt;
    }
  };
  /// One (after-set, result) pair; more than one per key slot only on a
  /// content-hash collision.
  struct SetEntry {
    LockSet After;
    LockSet Result;
  };

  std::unordered_map<Key, LockSet, KeyHash> Xfer;
  std::unordered_map<uint32_t, LockSet> Gen;
  std::unordered_map<uint64_t, std::vector<SetEntry>> Sets;
};

} // namespace lockin

#endif // LOCKIN_INFER_TRANSFER_H
