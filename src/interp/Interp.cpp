//===--- Interp.cpp - Concurrent interpreter with checking --------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "obs/Obs.h"
#include "obs/Trace.h"
#include "runtime/Adaptive.h"
#include "support/Rng.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <array>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

using namespace lockin;
using namespace lockin::ir;

namespace {

//===----------------------------------------------------------------------===//
// Values, locations, heap
//===----------------------------------------------------------------------===//

/// A runtime location: a cell within a heap/frame/global object.
struct Loc {
  uint32_t Object = 0;
  uint32_t Offset = 0;

  uint64_t packed() const {
    return (static_cast<uint64_t>(Object) << 32) | Offset;
  }
  bool operator==(const Loc &Other) const = default;
};

struct Value {
  enum class Kind : uint8_t { Null, Int, Location };
  Kind K = Kind::Null;
  int64_t Int = 0;
  Loc L;

  static Value null() { return {}; }
  static Value ofInt(int64_t I) {
    Value V;
    V.K = Kind::Int;
    V.Int = I;
    return V;
  }
  static Value ofLoc(Loc L) {
    Value V;
    V.K = Kind::Location;
    V.L = L;
    return V;
  }
};

/// One allocation: a heap object, a call frame, or the globals block.
struct HeapObject {
  std::vector<Value> Cells;
  /// Region per cell for frames/globals; heap objects use one region.
  std::vector<RegionId> CellRegions;
  RegionId UniformRegion = InvalidRegion;
  /// For frames: which cells correspond to shared (checkable) variables.
  std::vector<bool> CheckableCell;
  bool IsFrame = false;

  RegionId regionOf(uint32_t Offset) const {
    if (!CellRegions.empty() && Offset < CellRegions.size())
      return CellRegions[Offset];
    return UniformRegion;
  }
  bool checkable(uint32_t Offset) const {
    if (CheckableCell.empty())
      return true; // heap cells are always subject to checking
    return Offset < CheckableCell.size() && CheckableCell[Offset];
  }
};

/// Shared state of the STM backend (AtomicMode::Stm): a TL2-style global
/// version clock and a hashed table of versioned entries, one per
/// location bucket. Entry layout: bit 0 = latched, bits 63..1 = version.
/// Every cell access inside a transaction holds the location's latch for
/// the duration of the (single-cell) access, so concurrent transactions
/// synchronize through the atomics and the run is TSan-clean; conflicts
/// are still detected optimistically through the versions.
struct TxTable {
  static constexpr unsigned Bits = 16;
  struct alignas(64) Entry {
    std::atomic<uint64_t> V{0};
  };
  std::vector<Entry> Entries{size_t(1) << Bits};
  std::atomic<uint64_t> Clock{0};

  std::atomic<uint64_t> &entryFor(uint64_t Packed) {
    return Entries[(Packed * 0x9e3779b97f4a7c15ULL) >> (64 - Bits)].V;
  }
};

/// Append-only object table with lock-free reads: a fixed top-level
/// array of atomically published fixed-size chunks. References are
/// stable and operator[] takes no lock, so interpreter threads can
/// access disjoint objects while another thread allocates. (A deque
/// cannot do this: its operator[] walks the internal map that push_back
/// reallocates — a C++-level data race under exactly that pattern, even
/// when the interpreted program is properly locked.)
class ObjectTable {
public:
  static constexpr uint32_t ChunkBits = 13;
  static constexpr uint32_t ChunkSize = 1u << ChunkBits;
  static constexpr uint32_t MaxChunks = 1u << 13;

  ~ObjectTable() {
    for (std::atomic<HeapObject *> &C : Chunks)
      delete[] C.load(std::memory_order_relaxed);
  }

  uint32_t size() const { return Count.load(std::memory_order_acquire); }

  HeapObject &operator[](uint32_t Id) {
    return Chunks[Id >> ChunkBits].load(
        std::memory_order_acquire)[Id & (ChunkSize - 1)];
  }

  /// Appends \p Object; UINT32_MAX when the table is full.
  uint32_t push(HeapObject &&Object) {
    std::lock_guard<std::mutex> Lock(Mu);
    uint32_t Id = Count.load(std::memory_order_relaxed);
    uint32_t C = Id >> ChunkBits;
    if (C >= MaxChunks)
      return UINT32_MAX;
    HeapObject *Chunk = Chunks[C].load(std::memory_order_relaxed);
    if (!Chunk) {
      Chunk = new HeapObject[ChunkSize];
      Chunks[C].store(Chunk, std::memory_order_release);
    }
    Chunk[Id & (ChunkSize - 1)] = std::move(Object);
    Count.store(Id + 1, std::memory_order_release);
    return Id;
  }

private:
  std::mutex Mu;
  std::atomic<uint32_t> Count{0};
  std::array<std::atomic<HeapObject *>, MaxChunks> Chunks{};
};

struct Shared {
  const IrModule &Module;
  const PointsToAnalysis &PT;
  const InferenceResult *Inference;
  const InterpOptions &Options;

  std::unique_ptr<rt::LockRuntime> LockRT;
  std::unique_ptr<TxTable> Tx; ///< non-null iff Mode == Stm or Adaptive
  std::atomic<uint64_t> StmCommits{0};
  std::atomic<uint64_t> StmAborts{0};

  /// AtomicMode::Adaptive: the policy engine and the static section →
  /// migration-domain map (built over the inference's lock sets; see
  /// buildMigrationDomains). Declared after LockRT so the engine — whose
  /// epoch thread walks the runtime's nodes — dies first.
  std::unique_ptr<rt::adaptive::AdaptiveEngine> Engine;
  std::vector<uint32_t> SectionDomain;

  ObjectTable Objects;

  /// Striped guards for physical accesses to shared cells. The VM reads
  /// lock-path cells before acquiring their locks (the
  /// evaluate-then-acquire window, closed semantically by revalidation)
  /// and deliberately runs unprotected programs (AtomicMode::None); both
  /// race at the interpreted level, which is the §4.2 checker's to
  /// report. The stripes keep the C++ level race-free, so a
  /// ThreadSanitizer report on the interpreter is always a real VM bug.
  std::array<std::mutex, 256> CellStripes;
  std::mutex &stripeFor(uint64_t Packed) {
    return CellStripes[(Packed * 0x9e3779b97f4a7c15ULL) >> 56];
  }

  // First error wins; all threads stop.
  std::atomic<bool> Stop{false};
  std::mutex ErrorMu;
  std::string Error;

  std::atomic<uint64_t> TotalSteps{0};
  std::atomic<uint64_t> ProtectionChecks{0};

  // Spawned threads; joined when main finishes.
  std::mutex ThreadsMu;
  std::vector<std::thread> Threads;

  void fail(const std::string &Message) {
    {
      std::lock_guard<std::mutex> Lock(ErrorMu);
      if (Error.empty())
        Error = Message;
    }
    Stop.store(true, std::memory_order_release);
  }

  uint32_t allocate(HeapObject Object) {
    uint32_t Id = Objects.push(std::move(Object));
    if (Id == UINT32_MAX)
      fail("heap exhausted: object table is full");
    return Id;
  }

  HeapObject &object(uint32_t Id) { return Objects[Id]; }
};

//===----------------------------------------------------------------------===//
// Thread execution
//===----------------------------------------------------------------------===//

/// Control-flow result of executing a statement.
enum class Flow { Normal, Returned, Stopped };

class ThreadExec {
public:
  ThreadExec(Shared &S, uint64_t YieldSeed)
      : S(S), LockCtx(*S.LockRT), YieldRng(YieldSeed) {
    if (S.Engine)
      GateSlot = S.Engine->registerThread();
  }
  ~ThreadExec() {
    if (S.Engine)
      S.Engine->unregisterThread(GateSlot);
  }

  /// Runs \p F with \p Args; the return value (or null) in ReturnValue.
  Flow callFunction(const IrFunction *F, const std::vector<Value> &Args);

  Value returnValue() const { return ReturnValue; }

private:
  struct Frame {
    const IrFunction *F;
    uint32_t ObjectId;
  };

  bool step() {
    if (S.Stop.load(std::memory_order_acquire))
      return false;
    if (++Steps > S.Options.MaxSteps) {
      S.fail("step limit exceeded (runaway loop?)");
      return false;
    }
    if ((Steps & 0xFFF) == 0 && S.Options.CancelFlag &&
        S.Options.CancelFlag->load(std::memory_order_acquire)) {
      S.fail("canceled");
      return false;
    }
    if constexpr (obs::kEnabled) {
      // Periodic counter samples give the trace a progress track without
      // touching the tracer on the other 65535 steps.
      if ((Steps & 0xFFFF) == 0 && obs::tracer().enabled())
        obs::tracer().span(obs::EventKind::StepsCount, obs::nowNs(), 0,
                           Steps);
    }
    return true;
  }

  void maybeYield() {
    if (S.Options.InjectYields && YieldRng.chance(1, 8))
      std::this_thread::yield();
  }

  // Variable cells. Globals live in object 0.
  Loc varCell(const Frame &Fr, const Variable *V) const {
    if (V->isGlobal())
      return Loc{0, V->id()};
    return Loc{Fr.ObjectId, V->id()};
  }

  /// The §4.2 access check. \p Direct is true for direct variable
  /// accesses (x = ..., ... = x), which are exempt when the variable is
  /// provably thread-local (address never taken).
  bool checkAccess(Loc L, bool IsWrite) {
    if (!S.Options.Checked || !LockCtx.insideAtomic())
      return true;
    // Inside the dynamic extent of an elided outermost section the static
    // never-parallel proof replaces the lock-coverage proof: no lock is
    // held by design, and no conflicting access can be co-scheduled.
    if (InElidedSection)
      return true;
    HeapObject &Obj = S.object(L.Object);
    if (!Obj.checkable(L.Offset))
      return true;
    // Objects this thread allocated inside the current outermost section
    // are unreachable by other threads at section entry.
    for (uint32_t Id : SectionAllocs)
      if (Id == L.Object)
        return true;
    S.ProtectionChecks.fetch_add(1, std::memory_order_relaxed);
    if (LockCtx.coversAccess(L.packed(), Obj.regionOf(L.Offset), IsWrite))
      return true;
    S.fail("protection violation: unprotected " +
           std::string(IsWrite ? "write" : "read") + " of object " +
           std::to_string(L.Object) + " offset " +
           std::to_string(L.Offset) + " in region " +
           std::to_string(Obj.regionOf(L.Offset)));
    return false;
  }

  std::optional<Value> readCell(Loc L, bool Check) {
    HeapObject &Obj = S.object(L.Object);
    if (L.Offset >= Obj.Cells.size()) {
      S.fail("out-of-bounds read");
      return std::nullopt;
    }
    if (InTx && !txLocal(L.Object))
      return txRead(L, Obj);
    if (Check && !checkAccess(L, /*IsWrite=*/false))
      return std::nullopt;
    maybeYield();
    if (!Obj.checkable(L.Offset))
      return Obj.Cells[L.Offset]; // thread-private frame cell
    std::lock_guard<std::mutex> Guard(S.stripeFor(L.packed()));
    return Obj.Cells[L.Offset];
  }

  bool writeCell(Loc L, Value V, bool Check) {
    HeapObject &Obj = S.object(L.Object);
    if (L.Offset >= Obj.Cells.size()) {
      S.fail("out-of-bounds write");
      return false;
    }
    if (InTx && !txLocal(L.Object)) {
      maybeYield();
      TxWrites[L.packed()] = V;
      return true;
    }
    if (Check && !checkAccess(L, /*IsWrite=*/true))
      return false;
    maybeYield();
    if (!Obj.checkable(L.Offset)) {
      Obj.Cells[L.Offset] = V; // thread-private frame cell
      return true;
    }
    std::lock_guard<std::mutex> Guard(S.stripeFor(L.packed()));
    Obj.Cells[L.Offset] = V;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // STM backend (AtomicMode::Stm)
  //===--------------------------------------------------------------------===//

  bool txLocal(uint32_t Object) const {
    for (uint32_t Id : TxAllocs)
      if (Id == Object)
        return true;
    return false;
  }

  /// Spins until \p E is latched by this thread; \p V receives the
  /// pre-latch (even) word. Fails only on a global stop.
  bool latchEntry(std::atomic<uint64_t> &E, uint64_t &V) {
    for (uint64_t Spin = 0;; ++Spin) {
      V = E.load(std::memory_order_acquire);
      if ((V & 1) == 0 &&
          E.compare_exchange_weak(V, V | 1, std::memory_order_acq_rel))
        return true;
      if ((Spin & 0x3FF) == 0 &&
          S.Stop.load(std::memory_order_acquire))
        return false;
      std::this_thread::yield();
    }
  }

  /// Transactional load: read-own-writes, then a latched validated read.
  /// Aborts (TxFailed) when the location changed after this
  /// transaction's read version — the TL2 opacity rule, so every
  /// snapshot the body observes is consistent.
  std::optional<Value> txRead(Loc L, HeapObject &Obj) {
    if (auto It = TxWrites.find(L.packed()); It != TxWrites.end())
      return It->second;
    std::atomic<uint64_t> &E = S.Tx->entryFor(L.packed());
    uint64_t V;
    if (!latchEntry(E, V))
      return std::nullopt; // stopping; propagate as Stopped
    if ((V >> 1) > TxRV) {
      E.store(V, std::memory_order_release);
      TxFailed = true;
      return std::nullopt;
    }
    maybeYield();
    Value Val;
    {
      std::lock_guard<std::mutex> Guard(S.stripeFor(L.packed()));
      Val = Obj.Cells[L.Offset];
    }
    E.store(V, std::memory_order_release);
    TxReadLog.emplace_back(&E, V);
    return Val;
  }

  void txBegin() {
    InTx = true;
    TxFailed = false;
    TxWrites.clear();
    TxReadLog.clear();
    TxAllocs.clear();
    TxRV = S.Tx->Clock.load(std::memory_order_acquire);
  }

  void txReset() {
    InTx = false;
    TxFailed = false;
    TxWrites.clear();
    TxReadLog.clear();
    TxAllocs.clear();
  }

  /// Commit-time locking and validation: latch the write set's entries
  /// in a canonical order, re-validate every logged read, then apply the
  /// buffered writes and publish a fresh version.
  bool txCommit() {
    if (TxWrites.empty())
      return true; // per-read validation suffices for read-only bodies
    std::vector<std::atomic<uint64_t> *> ToLatch;
    ToLatch.reserve(TxWrites.size());
    for (const auto &[Packed, Val] : TxWrites) {
      std::atomic<uint64_t> *E = &S.Tx->entryFor(Packed);
      if (std::find(ToLatch.begin(), ToLatch.end(), E) == ToLatch.end())
        ToLatch.push_back(E);
    }
    std::sort(ToLatch.begin(), ToLatch.end());
    std::vector<uint64_t> PreVersions(ToLatch.size());
    auto UnlatchAll = [&](size_t Count) {
      for (size_t I = 0; I < Count; ++I)
        ToLatch[I]->store(PreVersions[I], std::memory_order_release);
    };
    for (size_t I = 0; I < ToLatch.size(); ++I) {
      // Bounded try-latch: a busy entry means a concurrent commit or
      // reader; give it a moment, then abort rather than risk deadlock.
      bool Latched = false;
      for (unsigned Spin = 0; Spin < 4096; ++Spin) {
        uint64_t V = ToLatch[I]->load(std::memory_order_acquire);
        if ((V & 1) == 0 && ToLatch[I]->compare_exchange_weak(
                                V, V | 1, std::memory_order_acq_rel)) {
          PreVersions[I] = V;
          Latched = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!Latched) {
        UnlatchAll(I);
        return false;
      }
    }
    // Validate the read log. Entries we latched ourselves compare by
    // version; foreign entries must be unlatched and unchanged.
    for (const auto &[E, Seen] : TxReadLog) {
      auto It = std::find(ToLatch.begin(), ToLatch.end(), E);
      bool Ok = false;
      if (It != ToLatch.end()) {
        Ok = PreVersions[static_cast<size_t>(It - ToLatch.begin())] == Seen;
      } else {
        for (unsigned Spin = 0; Spin < 4096 && !Ok; ++Spin) {
          uint64_t Cur = E->load(std::memory_order_acquire);
          if ((Cur & 1) == 0) {
            Ok = Cur == Seen;
            break;
          }
          std::this_thread::yield();
        }
      }
      if (!Ok) {
        UnlatchAll(ToLatch.size());
        return false;
      }
    }
    uint64_t WV = S.Tx->Clock.fetch_add(1, std::memory_order_acq_rel) + 1;
    for (const auto &[Packed, Val] : TxWrites) {
      Loc L{static_cast<uint32_t>(Packed >> 32),
            static_cast<uint32_t>(Packed)};
      std::lock_guard<std::mutex> Guard(S.stripeFor(Packed));
      S.object(L.Object).Cells[L.Offset] = Val;
    }
    for (std::atomic<uint64_t> *E : ToLatch)
      E->store(WV << 1, std::memory_order_release);
    return true;
  }

  /// Runs \p A as a closed transaction: speculative execution of the
  /// body with buffered writes, retried until a commit succeeds.
  /// StmCallCommitted/StmCallAborts summarize the outermost call for the
  /// adaptive engine's abort-storm signal.
  Flow execAtomicStm(const Frame &Fr, const AtomicIrStmt *A) {
    if (InTx) // flattened nesting: the outer transaction covers it
      return execStmt(Fr, A->body());
    StmCallCommitted = false;
    StmCallAborts = 0;
    for (unsigned Attempt = 0; Attempt < 100'000; ++Attempt) {
      txBegin();
      Flow F = execStmt(Fr, A->body());
      if (TxFailed || (F != Flow::Stopped && !txCommit())) {
        txReset();
        ++StmCallAborts;
        S.StmAborts.fetch_add(1, std::memory_order_relaxed);
        if (S.Stop.load(std::memory_order_acquire))
          return Flow::Stopped;
        for (unsigned Spin = 0;
             Spin < (1u << (Attempt > 10 ? 10 : Attempt)); ++Spin)
          std::this_thread::yield();
        continue;
      }
      txReset();
      if (F != Flow::Stopped) {
        S.StmCommits.fetch_add(1, std::memory_order_relaxed);
        StmCallCommitted = true;
      }
      return F;
    }
    S.fail("stm livelock: section never committed");
    return Flow::Stopped;
  }

  /// AtomicMode::Adaptive outermost dispatch: pass the drain gate, run
  /// the section on whichever backend the domain currently uses, and
  /// report STM outcomes back to the policy engine. Nested sections
  /// never touch the gate: a lock-backend outer section covers them via
  /// the nesting counter, a transactional one via flattening — so a
  /// thread is inside at most one gated domain at a time and the drain
  /// in AdaptiveEngine::flipDomain cannot deadlock against it.
  Flow execAtomicAdaptive(const Frame &Fr, const AtomicIrStmt *A) {
    if (InTx)
      return execAtomicStm(Fr, A); // flattens into the outer transaction
    if (LockCtx.insideAtomic())
      return execAtomicLocked(Fr, A); // nesting counter, no locks taken
    uint32_t Dom = S.SectionDomain[A->sectionId()];
    S.Engine->maybeTick(GateSlot);
    rt::adaptive::Backend B = S.Engine->enterSection(GateSlot, Dom);
    Flow F;
    if (B == rt::adaptive::Backend::Stm) {
      F = execAtomicStm(Fr, A);
      S.Engine->noteStm(Dom, StmCallCommitted ? 1 : 0, StmCallAborts);
    } else {
      F = execAtomicLocked(Fr, A);
    }
    S.Engine->exitSection(GateSlot);
    return F;
  }

  std::optional<Value> readVar(const Frame &Fr, const Variable *V) {
    bool Check = V->isGlobal() || V->isAddressTaken();
    return readCell(varCell(Fr, V), Check);
  }

  bool writeVar(const Frame &Fr, const Variable *V, Value Val) {
    bool Check = V->isGlobal() || V->isAddressTaken();
    return writeCell(varCell(Fr, V), Val, Check);
  }

  // Lock-expression evaluation at section entry (unchecked reads).
  std::optional<int64_t> evalIdx(const Frame &Fr, const IdxExpr &E);
  std::optional<Loc> evalLockPath(const Frame &Fr, const LockExpr &Path);
  bool buildDescriptors(const Frame &Fr, const LockSet &Locks,
                        std::vector<rt::LockDescriptor> &Out,
                        std::vector<std::pair<const LockExpr *, Loc>>
                            &FinePaths);
  bool enterSection(const Frame &Fr, const AtomicIrStmt *A);
  Flow execAtomicLocked(const Frame &Fr, const AtomicIrStmt *A);

  Flow execStmt(const Frame &Fr, const IrStmt *St);
  Flow execInst(const Frame &Fr, const InstStmt *St);

  Shared &S;
  rt::ThreadLockContext LockCtx;
  Rng YieldRng;
  uint64_t Steps = 0;
  uint64_t StepsAtLastCall = 0;
  Value ReturnValue = Value::null();
  /// Objects allocated by this thread inside the current outermost
  /// section; cleared at releaseAll.
  std::vector<uint32_t> SectionAllocs;
  /// True while executing the dynamic extent of an elided outermost
  /// section (AtomicMode::Inferred with ElideNeverParallel): the §4.2
  /// check is replaced by the static never-parallel proof.
  bool InElidedSection = false;

  /// Adaptive-gate inflight slot (valid iff S.Engine).
  uint32_t GateSlot = 0;
  /// Outcome of the last outermost execAtomicStm call.
  bool StmCallCommitted = false;
  uint64_t StmCallAborts = 0;

  // STM transaction state (AtomicMode::Stm or the STM backend of
  // AtomicMode::Adaptive).
  bool InTx = false;
  bool TxFailed = false;
  uint64_t TxRV = 0;
  std::unordered_map<uint64_t, Value> TxWrites;
  std::vector<std::pair<std::atomic<uint64_t> *, uint64_t>> TxReadLog;
  /// Objects (including frames) created by the running transaction:
  /// invisible to other threads, accessed directly.
  std::vector<uint32_t> TxAllocs;
};

std::optional<int64_t> ThreadExec::evalIdx(const Frame &Fr,
                                           const IdxExpr &E) {
  switch (E.kind()) {
  case IdxExpr::Kind::Const:
    return E.constValue();
  case IdxExpr::Kind::VarVal: {
    std::optional<Value> V = readCell(varCell(Fr, E.var()), false);
    if (!V || V->K != Value::Kind::Int)
      return std::nullopt;
    return V->Int;
  }
  case IdxExpr::Kind::Bin: {
    std::optional<int64_t> L = evalIdx(Fr, *E.lhs());
    std::optional<int64_t> R = evalIdx(Fr, *E.rhs());
    if (!L || !R)
      return std::nullopt;
    switch (E.op()) {
    case IntBinOp::Add:
      return *L + *R;
    case IntBinOp::Sub:
      return *L - *R;
    case IntBinOp::Mul:
      return *L * *R;
    case IntBinOp::Div:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L / *R);
    case IntBinOp::Rem:
      return *R == 0 ? std::nullopt : std::optional<int64_t>(*L % *R);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

std::optional<Loc> ThreadExec::evalLockPath(const Frame &Fr,
                                            const LockExpr &Path) {
  // A lock path denotes an address: &base, then ops.
  Loc Cur = varCell(Fr, Path.base());
  for (const LockOp &Op : Path.ops()) {
    switch (Op.K) {
    case LockOp::Kind::Deref: {
      std::optional<Value> V = readCell(Cur, false);
      if (!V || V->K != Value::Kind::Location)
        return std::nullopt; // null or non-pointer: lock unreachable
      Cur = V->L;
      break;
    }
    case LockOp::Kind::Field:
      Cur.Offset += static_cast<uint32_t>(Op.FieldIdx);
      break;
    case LockOp::Kind::Index: {
      std::optional<int64_t> I = evalIdx(Fr, *Op.Idx);
      if (!I || *I < 0)
        return std::nullopt;
      Cur.Offset += static_cast<uint32_t>(*I);
      break;
    }
    }
    if (Cur.Offset >= S.object(Cur.Object).Cells.size())
      return std::nullopt; // out of bounds: no such location
  }
  return Cur;
}

bool ThreadExec::buildDescriptors(
    const Frame &Fr, const LockSet &Locks,
    std::vector<rt::LockDescriptor> &Out,
    std::vector<std::pair<const LockExpr *, Loc>> &FinePaths) {
  Out.clear();
  FinePaths.clear();
  for (const LockName &L : Locks) {
    switch (L.kind()) {
    case LockName::Kind::Top:
      Out.push_back(rt::LockDescriptor::global());
      break;
    case LockName::Kind::Coarse:
      Out.push_back(rt::LockDescriptor::coarse(L.region(),
                                               L.effect() == Effect::RW));
      break;
    case LockName::Kind::Fine: {
      std::optional<Loc> Addr = evalLockPath(Fr, L.path());
      if (!Addr)
        break; // unreachable location: nothing to protect
      RegionId Region = S.object(Addr->Object).regionOf(Addr->Offset);
      Out.push_back(rt::LockDescriptor::fine(
          Region == InvalidRegion ? 0 : Region, Addr->packed(),
          L.effect() == Effect::RW));
      FinePaths.emplace_back(&L.path(), *Addr);
      break;
    }
    }
  }
  return true;
}

bool ThreadExec::enterSection(const Frame &Fr, const AtomicIrStmt *A) {
  if constexpr (obs::kEnabled) {
    // Tag sections 1-based so tag 0 stays "untagged" in the profiler.
    if (!LockCtx.insideAtomic())
      LockCtx.setSectionTag(A->sectionId() + 1);
  }
  switch (S.Options.Mode) {
  case AtomicMode::None:
    LockCtx.acquireAll(); // tracks nesting; acquires nothing
    return true;
  case AtomicMode::GlobalLock:
    LockCtx.toAcquire(rt::LockDescriptor::global());
    LockCtx.acquireAll();
    return true;
  case AtomicMode::Stm:
    assert(false && "STM sections are handled by execAtomicStm");
    return true;
  case AtomicMode::Adaptive:
    // Lock backend of an adaptive domain: inferred locks when available,
    // the global-lock baseline otherwise.
    if (!S.Inference) {
      LockCtx.toAcquire(rt::LockDescriptor::global());
      LockCtx.acquireAll();
      return true;
    }
    break;
  case AtomicMode::Inferred:
    break;
  }

  assert(S.Inference && "Inferred mode requires an inference result");
  const LockSet &Locks = S.Inference->sectionLocks(A->sectionId());

  // Nested sections skip the protocol entirely.
  if (LockCtx.insideAtomic()) {
    LockCtx.acquireAll();
    return true;
  }

  // Elided outermost section: the MHP proof says nothing conflicting can
  // run concurrently, so acquire nothing (and exempt the whole extent
  // from the §4.2 check — see checkAccess).
  if (S.Inference->sectionElided(A->sectionId())) {
    InElidedSection = true;
    LockCtx.acquireAll(); // tracks nesting; acquires nothing
    return true;
  }

  std::vector<rt::LockDescriptor> Descs;
  std::vector<std::pair<const LockExpr *, Loc>> FinePaths;
  for (unsigned Attempt = 0; Attempt < 128; ++Attempt) {
    buildDescriptors(Fr, Locks, Descs, FinePaths);
    for (const rt::LockDescriptor &D : Descs)
      LockCtx.toAcquire(D);
    LockCtx.acquireAll();
    if (!S.Options.Revalidate)
      return true;
    // Re-evaluate fine paths under the locks; a change means another
    // thread rewrote a cell between evaluation and acquisition.
    bool Valid = true;
    for (const auto &[Path, Addr] : FinePaths) {
      std::optional<Loc> Now = evalLockPath(Fr, *Path);
      if (!Now || !(*Now == Addr)) {
        Valid = false;
        break;
      }
    }
    if (Valid)
      return true;
    LockCtx.releaseAll();
  }
  S.fail("lock descriptor revalidation livelock");
  return false;
}

/// One atomic section on the lock backend: enter (acquire per the mode),
/// run the body, release. Shared by the dedicated lock modes and the
/// lock half of AtomicMode::Adaptive.
Flow ThreadExec::execAtomicLocked(const Frame &Fr, const AtomicIrStmt *A) {
  uint64_t SpanT0 = 0;
  if constexpr (obs::kEnabled) {
    if (!LockCtx.insideAtomic() && obs::tracer().enabled())
      SpanT0 = obs::nowNs();
  }
  if (!enterSection(Fr, A))
    return Flow::Stopped;
  Flow F = execStmt(Fr, A->body());
  // Release on both normal exit and return; a Stopped run aborts anyway.
  LockCtx.releaseAll();
  if (!LockCtx.insideAtomic()) {
    SectionAllocs.clear();
    InElidedSection = false;
    if constexpr (obs::kEnabled) {
      if (SpanT0)
        obs::tracer().span(obs::EventKind::SectionSpan, SpanT0,
                           obs::nowNs() - SpanT0, A->sectionId());
    }
  }
  return F;
}

Flow ThreadExec::execInst(const Frame &Fr, const InstStmt *St) {
  auto Get = [&](const Variable *V) { return readVar(Fr, V); };
  auto Put = [&](const Variable *V, Value Val) {
    return writeVar(Fr, V, Val);
  };

  switch (St->kind()) {
  case IrStmt::Kind::Copy: {
    const auto *C = cast<CopyStmt>(St);
    std::optional<Value> V = Get(C->src());
    if (!V || !Put(C->def(), *V))
      return Flow::Stopped;
    return Flow::Normal;
  }
  case IrStmt::Kind::ConstInt:
    return Put(St->def(), Value::ofInt(cast<ConstIntStmt>(St)->value()))
               ? Flow::Normal
               : Flow::Stopped;
  case IrStmt::Kind::ConstNull:
    return Put(St->def(), Value::null()) ? Flow::Normal : Flow::Stopped;
  case IrStmt::Kind::AddrOf: {
    const auto *A = cast<AddrOfStmt>(St);
    return Put(A->def(), Value::ofLoc(varCell(Fr, A->target())))
               ? Flow::Normal
               : Flow::Stopped;
  }
  case IrStmt::Kind::FieldAddr: {
    const auto *F = cast<FieldAddrStmt>(St);
    std::optional<Value> Base = Get(F->base());
    if (!Base)
      return Flow::Stopped;
    if (Base->K != Value::Kind::Location) {
      S.fail("null dereference (field of null)");
      return Flow::Stopped;
    }
    Loc L = Base->L;
    L.Offset += static_cast<uint32_t>(F->fieldIndex());
    return Put(F->def(), Value::ofLoc(L)) ? Flow::Normal : Flow::Stopped;
  }
  case IrStmt::Kind::IndexAddr: {
    const auto *Ix = cast<IndexAddrStmt>(St);
    std::optional<Value> Base = Get(Ix->base());
    std::optional<Value> Idx = Get(Ix->index());
    if (!Base || !Idx)
      return Flow::Stopped;
    if (Base->K != Value::Kind::Location || Idx->K != Value::Kind::Int) {
      S.fail("invalid array indexing");
      return Flow::Stopped;
    }
    if (Idx->Int < 0) {
      S.fail("negative array index");
      return Flow::Stopped;
    }
    Loc L = Base->L;
    L.Offset += static_cast<uint32_t>(Idx->Int);
    return Put(Ix->def(), Value::ofLoc(L)) ? Flow::Normal : Flow::Stopped;
  }
  case IrStmt::Kind::Load: {
    const auto *L = cast<LoadStmt>(St);
    std::optional<Value> Addr = Get(L->addr());
    if (!Addr)
      return Flow::Stopped;
    if (Addr->K != Value::Kind::Location) {
      S.fail("null dereference (load)");
      return Flow::Stopped;
    }
    std::optional<Value> V = readCell(Addr->L, /*Check=*/true);
    if (!V || !Put(L->def(), *V))
      return Flow::Stopped;
    return Flow::Normal;
  }
  case IrStmt::Kind::Store: {
    const auto *StS = cast<StoreStmt>(St);
    std::optional<Value> Addr = Get(StS->addr());
    std::optional<Value> V = Get(StS->value());
    if (!Addr || !V)
      return Flow::Stopped;
    if (Addr->K != Value::Kind::Location) {
      S.fail("null dereference (store)");
      return Flow::Stopped;
    }
    return writeCell(Addr->L, *V, /*Check=*/true) ? Flow::Normal
                                                  : Flow::Stopped;
  }
  case IrStmt::Kind::Alloc: {
    const auto *A = cast<AllocStmt>(St);
    const AllocSite &Site = S.Module.allocSites()[A->siteId()];
    size_t Count = 1;
    if (A->sizeVar()) {
      std::optional<Value> Size = Get(A->sizeVar());
      if (!Size)
        return Flow::Stopped;
      if (Size->K != Value::Kind::Int || Size->Int < 0 ||
          Size->Int > (1 << 26)) {
        S.fail("invalid allocation size");
        return Flow::Stopped;
      }
      Count = static_cast<size_t>(Size->Int);
    }
    HeapObject Obj;
    Obj.UniformRegion = S.PT.regionOfAllocSite(A->siteId());
    size_t Cells = Count;
    if (!Site.IsArray && Site.Elem)
      Cells = Site.Elem->fields().size();
    Obj.Cells.resize(Cells);
    for (size_t I = 0; I < Cells; ++I) {
      bool IntCell;
      if (!Site.IsArray && Site.Elem)
        IntCell = Site.Elem->fields()[I].Ty->isInt();
      else
        IntCell = Site.Elem == nullptr && Site.PtrDepth == 0;
      Obj.Cells[I] = IntCell ? Value::ofInt(0) : Value::null();
    }
    uint32_t Id = S.allocate(std::move(Obj));
    if (Id == UINT32_MAX)
      return Flow::Stopped;
    if (LockCtx.insideAtomic())
      SectionAllocs.push_back(Id);
    if (InTx)
      TxAllocs.push_back(Id);
    return Put(A->def(), Value::ofLoc(Loc{Id, 0})) ? Flow::Normal
                                                   : Flow::Stopped;
  }
  case IrStmt::Kind::IntBin: {
    const auto *B = cast<IntBinStmt>(St);
    std::optional<Value> L = Get(B->lhs());
    std::optional<Value> R = Get(B->rhs());
    if (!L || !R)
      return Flow::Stopped;
    if (L->K != Value::Kind::Int || R->K != Value::Kind::Int) {
      S.fail("arithmetic on non-integer");
      return Flow::Stopped;
    }
    int64_t Result = 0;
    switch (B->op()) {
    case IntBinOp::Add:
      Result = L->Int + R->Int;
      break;
    case IntBinOp::Sub:
      Result = L->Int - R->Int;
      break;
    case IntBinOp::Mul:
      Result = L->Int * R->Int;
      break;
    case IntBinOp::Div:
    case IntBinOp::Rem:
      if (R->Int == 0) {
        S.fail("division by zero");
        return Flow::Stopped;
      }
      Result = B->op() == IntBinOp::Div ? L->Int / R->Int : L->Int % R->Int;
      break;
    }
    return Put(B->def(), Value::ofInt(Result)) ? Flow::Normal
                                               : Flow::Stopped;
  }
  case IrStmt::Kind::Cmp: {
    const auto *C = cast<CmpStmt>(St);
    std::optional<Value> L = Get(C->lhs());
    std::optional<Value> R = Get(C->rhs());
    if (!L || !R)
      return Flow::Stopped;
    bool Result = false;
    if (L->K == Value::Kind::Int && R->K == Value::Kind::Int) {
      switch (C->op()) {
      case CmpOp::Eq:
        Result = L->Int == R->Int;
        break;
      case CmpOp::Ne:
        Result = L->Int != R->Int;
        break;
      case CmpOp::Lt:
        Result = L->Int < R->Int;
        break;
      case CmpOp::Le:
        Result = L->Int <= R->Int;
        break;
      case CmpOp::Gt:
        Result = L->Int > R->Int;
        break;
      case CmpOp::Ge:
        Result = L->Int >= R->Int;
        break;
      }
    } else {
      // Pointer comparison (null counts as a distinct value).
      bool Eq = (L->K == Value::Kind::Null && R->K == Value::Kind::Null) ||
                (L->K == Value::Kind::Location &&
                 R->K == Value::Kind::Location && L->L == R->L);
      if (C->op() == CmpOp::Eq)
        Result = Eq;
      else if (C->op() == CmpOp::Ne)
        Result = !Eq;
      else {
        S.fail("ordered comparison of pointers");
        return Flow::Stopped;
      }
    }
    return Put(C->def(), Value::ofInt(Result ? 1 : 0)) ? Flow::Normal
                                                       : Flow::Stopped;
  }
  case IrStmt::Kind::Call: {
    const auto *C = cast<CallStmt>(St);
    std::vector<Value> Args;
    Args.reserve(C->args().size());
    for (const Variable *Arg : C->args()) {
      std::optional<Value> V = Get(Arg);
      if (!V)
        return Flow::Stopped;
      Args.push_back(*V);
    }
    Flow F = callFunction(C->callee(), Args);
    if (F == Flow::Stopped)
      return F;
    if (C->def() && !Put(C->def(), ReturnValue))
      return Flow::Stopped;
    return Flow::Normal;
  }
  default:
    assert(false && "not a primitive statement");
    return Flow::Stopped;
  }
}

Flow ThreadExec::execStmt(const Frame &Fr, const IrStmt *St) {
  if (!step())
    return Flow::Stopped;

  switch (St->kind()) {
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(St)->stmts()) {
      Flow F = execStmt(Fr, Child.get());
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(St);
    std::optional<Value> Cond = readVar(Fr, I->condVar());
    if (!Cond)
      return Flow::Stopped;
    if (Cond->K == Value::Kind::Int && Cond->Int != 0)
      return execStmt(Fr, I->thenStmt());
    if (I->elseStmt())
      return execStmt(Fr, I->elseStmt());
    return Flow::Normal;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(St);
    while (true) {
      Flow F = execStmt(Fr, W->prelude());
      if (F != Flow::Normal)
        return F;
      std::optional<Value> Cond = readVar(Fr, W->condVar());
      if (!Cond)
        return Flow::Stopped;
      if (Cond->K != Value::Kind::Int || Cond->Int == 0)
        return Flow::Normal;
      F = execStmt(Fr, W->body());
      if (F != Flow::Normal)
        return F;
      if (!step())
        return Flow::Stopped;
    }
  }
  case IrStmt::Kind::Atomic: {
    const auto *A = cast<AtomicIrStmt>(St);
    if (S.Options.Mode == AtomicMode::Stm)
      return execAtomicStm(Fr, A);
    if (S.Options.Mode == AtomicMode::Adaptive)
      return execAtomicAdaptive(Fr, A);
    return execAtomicLocked(Fr, A);
  }
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(St);
    if (R->value()) {
      std::optional<Value> V = readVar(Fr, R->value());
      if (!V)
        return Flow::Stopped;
      ReturnValue = *V;
    } else {
      ReturnValue = Value::null();
    }
    return Flow::Returned;
  }
  case IrStmt::Kind::Spawn: {
    const auto *Sp = cast<SpawnIrStmt>(St);
    if (InTx) {
      // Thread creation cannot be rolled back on abort.
      S.fail("spawn reached inside a transactional section");
      return Flow::Stopped;
    }
    std::vector<Value> Args;
    for (const Variable *Arg : Sp->args()) {
      std::optional<Value> V = readVar(Fr, Arg);
      if (!V)
        return Flow::Stopped;
      Args.push_back(*V);
    }
    const IrFunction *Callee = Sp->callee();
    uint64_t Seed = YieldRng.next();
    std::lock_guard<std::mutex> Lock(S.ThreadsMu);
    S.Threads.emplace_back([&Shared = S, Callee, Args, Seed] {
      ThreadExec Exec(Shared, Seed);
      Exec.callFunction(Callee, Args);
    });
    return Flow::Normal;
  }
  case IrStmt::Kind::Assert: {
    const auto *As = cast<AssertIrStmt>(St);
    std::optional<Value> Cond = readVar(Fr, As->condVar());
    if (!Cond)
      return Flow::Stopped;
    if (Cond->K != Value::Kind::Int || Cond->Int == 0) {
      S.fail("assertion failed at " + As->loc().str());
      return Flow::Stopped;
    }
    return Flow::Normal;
  }
  default:
    return execInst(Fr, cast<InstStmt>(St));
  }
}

Flow ThreadExec::callFunction(const IrFunction *F,
                              const std::vector<Value> &Args) {
  assert(Args.size() == F->numParams() && "arity mismatch");

  HeapObject FrameObj;
  FrameObj.IsFrame = true;
  FrameObj.Cells.resize(F->variables().size());
  FrameObj.CellRegions.resize(F->variables().size(), InvalidRegion);
  FrameObj.CheckableCell.resize(F->variables().size(), false);
  for (const auto &V : F->variables()) {
    FrameObj.CellRegions[V->id()] = S.PT.regionOfVarCell(V.get());
    FrameObj.CheckableCell[V->id()] = V->isAddressTaken();
    FrameObj.Cells[V->id()] =
        V->type()->isInt() ? Value::ofInt(0) : Value::null();
  }
  Frame Fr{F, S.allocate(std::move(FrameObj))};
  if (Fr.ObjectId == UINT32_MAX)
    return Flow::Stopped;
  if (InTx)
    TxAllocs.push_back(Fr.ObjectId);
  for (size_t I = 0; I < Args.size(); ++I)
    S.object(Fr.ObjectId).Cells[F->param(static_cast<unsigned>(I))->id()] =
        Args[I];

  ReturnValue = Value::null();
  Flow Result = execStmt(Fr, F->body());
  S.TotalSteps.fetch_add(Steps - StepsAtLastCall, std::memory_order_relaxed);
  StepsAtLastCall = Steps;
  if (Result == Flow::Returned)
    return Flow::Normal; // the return was consumed by this frame
  return Result;
}

/// Partitions the program's atomic sections into migration domains:
/// groups that must flip between the lock and STM backends together
/// because their lock sets may cover overlapping data. Union-find over
/// region keys: a coarse or fine lock contributes its static region
/// (fine locks materialize as leaves/stripes under that region node), so
/// two sections land in one domain iff their regions are connected
/// through some section's lock set. A Top (global) lock conflicts with
/// everything, so any section carrying one merges all keys. Lockless
/// sections touch no shared state and get singleton domains.
static void buildMigrationDomains(const IrModule &Module,
                                  const InferenceResult *Inference,
                                  unsigned NumRegions,
                                  rt::adaptive::AdaptiveEngine &Engine,
                                  std::vector<uint32_t> &SectionDomain) {
  uint32_t NumSections = Module.numAtomicSections();
  SectionDomain.assign(NumSections, 0);

  // Keys: one per region, plus one "global" key for Top locks.
  uint32_t NumKeys = NumRegions + 1;
  std::vector<uint32_t> Parent(NumKeys);
  for (uint32_t I = 0; I < NumKeys; ++I)
    Parent[I] = I;
  auto Find = [&](uint32_t X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto Unite = [&](uint32_t A, uint32_t B) { Parent[Find(A)] = Find(B); };

  auto keyOf = [&](const LockName &L) -> uint32_t {
    if (L.isTop())
      return NumRegions; // the global key
    RegionId R = L.region();
    return (R == InvalidRegion || R >= NumRegions) ? 0 : R;
  };

  bool AnyTop = false;
  if (Inference) {
    for (const InferenceResult::Section &Sec : Inference->sections()) {
      uint32_t First = UINT32_MAX;
      for (const LockName &L : Sec.Locks) {
        if (L.isTop())
          AnyTop = true;
        uint32_t K = keyOf(L);
        if (First == UINT32_MAX)
          First = K;
        else
          Unite(First, K);
      }
    }
  } else {
    // Global-lock baseline: every section holds the one global lock.
    AnyTop = true;
  }
  if (AnyTop)
    for (uint32_t I = 1; I < NumKeys; ++I)
      Unite(0, I);

  // One domain per live component; sections with no locks get their own.
  std::vector<uint32_t> KeyDomain(NumKeys, UINT32_MAX);
  for (uint32_t Id = 0; Id < NumSections; ++Id) {
    uint32_t First = UINT32_MAX;
    if (Inference) {
      const LockSet &Locks = Inference->sectionLocks(Id);
      for (const LockName &L : Locks) {
        First = keyOf(L);
        break;
      }
    } else {
      First = NumRegions;
    }
    uint32_t Dom;
    if (First == UINT32_MAX) {
      Dom = Engine.addDomain(); // lockless: private domain
    } else {
      uint32_t Root = Find(First);
      if (KeyDomain[Root] == UINT32_MAX)
        KeyDomain[Root] = Engine.addDomain();
      Dom = KeyDomain[Root];
    }
    SectionDomain[Id] = Dom;
    Engine.bindSection(Dom, Id + 1); // profiler tags are 1-based
  }
}

} // namespace

InterpResult lockin::interpret(const IrModule &Module,
                               const PointsToAnalysis &PT,
                               const InferenceResult *Inference,
                               const InterpOptions &Options,
                               const std::string &MainFunction) {
  InterpResult Result;

  const IrFunction *Main = Module.findFunction(MainFunction);
  if (!Main) {
    Result.Error = "no function named '" + MainFunction + "'";
    return Result;
  }
  if (Main->numParams() != 0) {
    Result.Error = "main must take no parameters";
    return Result;
  }

  Shared S{Module, PT, Inference, Options};
  S.LockRT = std::make_unique<rt::LockRuntime>(PT.numRegions());
  if (Options.Mode == AtomicMode::Stm ||
      Options.Mode == AtomicMode::Adaptive)
    S.Tx = std::make_unique<TxTable>();
  if (Options.Mode == AtomicMode::Adaptive) {
    rt::adaptive::AdaptiveConfig AC;
    AC.EveryNSections = Options.AdaptiveEveryN;
    AC.EpochMs = Options.AdaptiveEpochMs;
    AC.ForceFlip = Options.AdaptiveForceFlip;
    S.Engine =
        std::make_unique<rt::adaptive::AdaptiveEngine>(*S.LockRT, AC);
    buildMigrationDomains(Module, Inference, PT.numRegions(), *S.Engine,
                          S.SectionDomain);
    S.Engine->start();
  }

  // Object 0: the globals block.
  HeapObject GlobalsObj;
  GlobalsObj.Cells.resize(Module.globals().size());
  GlobalsObj.CellRegions.resize(Module.globals().size(), InvalidRegion);
  for (const auto &G : Module.globals()) {
    GlobalsObj.CellRegions[G->id()] = PT.regionOfVarCell(G.get());
    const IrModule::GlobalInit &Init = Module.GlobalInits[G->id()];
    if (!Init.IsNull)
      GlobalsObj.Cells[G->id()] = Value::ofInt(Init.IntValue);
    else if (G->type()->isInt())
      GlobalsObj.Cells[G->id()] = Value::ofInt(0);
    else
      GlobalsObj.Cells[G->id()] = Value::null();
  }
  S.Objects.push(std::move(GlobalsObj));

  {
    ThreadExec MainExec(S, Options.YieldSeed);
    Flow F = MainExec.callFunction(Main, {});
    if (F == Flow::Normal) {
      // Propagate main's return value if it is an int.
      // (callFunction stores it in ReturnValue.)
      if (MainExec.returnValue().K == Value::Kind::Int)
        Result.MainResult = MainExec.returnValue().Int;
    }
  }

  // Join every spawned thread (spawn may race with joining: threads are
  // only spawned by running threads, and main has finished, but spawned
  // threads may spawn more; loop until quiescent).
  while (true) {
    std::vector<std::thread> ToJoin;
    {
      std::lock_guard<std::mutex> Lock(S.ThreadsMu);
      ToJoin.swap(S.Threads);
    }
    if (ToJoin.empty())
      break;
    for (std::thread &T : ToJoin)
      T.join();
  }

  Result.TotalSteps = S.TotalSteps.load();
  Result.ProtectionChecks = S.ProtectionChecks.load();
  Result.StmCommits = S.StmCommits.load();
  Result.StmAborts = S.StmAborts.load();

  if (Options.FingerprintHeap && S.Error.empty()) {
    // Canonical walk of the heap reachable from the globals block:
    // objects are numbered in first-visit order, so the hash is
    // independent of allocation order (and of garbage left behind by
    // aborted transactions or dead temporaries).
    std::vector<uint32_t> CanonId(S.Objects.size(), UINT32_MAX);
    std::vector<uint32_t> Order;
    CanonId[0] = 0;
    Order.push_back(0);
    uint64_t H = 0xcbf29ce484222325ULL;
    auto Mix = [&H](uint64_t X) {
      H ^= X;
      H *= 0x100000001b3ULL;
      H ^= H >> 29;
    };
    for (size_t I = 0; I < Order.size(); ++I) {
      HeapObject &Obj = S.Objects[Order[I]];
      Mix(Obj.Cells.size());
      for (const Value &V : Obj.Cells) {
        switch (V.K) {
        case Value::Kind::Null:
          Mix(0x6e);
          break;
        case Value::Kind::Int:
          Mix(0x17);
          Mix(static_cast<uint64_t>(V.Int));
          break;
        case Value::Kind::Location:
          if (CanonId[V.L.Object] == UINT32_MAX) {
            CanonId[V.L.Object] = static_cast<uint32_t>(Order.size());
            Order.push_back(V.L.Object);
          }
          Mix(0x70);
          Mix(CanonId[V.L.Object]);
          Mix(V.L.Offset);
          break;
        }
      }
    }
    Result.HeapFingerprint = H;
    Result.HeapObjects = static_cast<uint32_t>(Order.size());
  }
  if constexpr (obs::kEnabled) {
    obs::MetricsRegistry &Reg = S.LockRT->registry();
    Reg.counter("interp.total_steps").add(Result.TotalSteps);
    Reg.counter("interp.protection_checks").add(Result.ProtectionChecks);
  }
  {
    std::lock_guard<std::mutex> Lock(S.ErrorMu);
    Result.Error = S.Error;
  }
  Result.Ok = Result.Error.empty();
  return Result;
}
