//===--- Interp.h - Concurrent interpreter with checking --------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A concurrent interpreter for the (transformed) IR. Threads are real
/// std::threads created by `spawn`; atomic sections acquire locks through
/// the multi-granularity runtime according to the configured mode:
///
///  - None: sections acquire nothing (exposes the unprotected program).
///  - GlobalLock: one global lock per section (the paper's baseline).
///  - Inferred: the acquireAll(N) sets computed by the lock inference;
///    fine lock expressions are evaluated to addresses at section entry
///    and re-validated after acquisition (see DESIGN.md).
///
/// In checked mode the interpreter implements the instrumented operational
/// semantics of §4.2: every shared-location access inside an atomic
/// section must be covered by a held lock under the concrete lock
/// semantics, otherwise the run stops with a protection violation — the
/// "stuck state" of Theorem 1. The soundness property tests assert that
/// transformed programs never get stuck.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_INTERP_INTERP_H
#define LOCKIN_INTERP_INTERP_H

#include "infer/Inference.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"
#include "runtime/LockRuntime.h"

#include <atomic>
#include <memory>
#include <string>

namespace lockin {

/// How atomic sections are protected during execution.
///
/// Stm runs sections as TL2-style transactions instead of lock
/// acquisitions: reads are validated against a global version clock,
/// writes are buffered and applied at commit under per-location
/// versioned latches, and conflicting sections abort and retry. It is
/// the differential fuzzer's third execution backend; the §4.2
/// protection checking does not apply to it (there are no held locks).
///
/// Adaptive starts every section on the Inferred lock backend (GlobalLock
/// when no inference is supplied) and lets the contention-adaptive policy
/// engine migrate migration domains — groups of sections closed under
/// potential data overlap — between the lock and STM backends at run
/// time, through a drain gate that keeps the two regimes from ever
/// overlapping on the same domain (see DESIGN.md "Adaptive runtime").
enum class AtomicMode { None, GlobalLock, Inferred, Stm, Adaptive };

struct InterpOptions {
  AtomicMode Mode = AtomicMode::Inferred;
  /// Enforce the checking semantics of §4.2.
  bool Checked = true;
  /// Re-evaluate fine lock descriptors after acquisition and retry on
  /// mismatch (closes the evaluate-then-acquire window).
  bool Revalidate = true;
  /// Inject scheduler yields at shared accesses to diversify
  /// interleavings in property tests (seeded, per thread).
  bool InjectYields = false;
  uint64_t YieldSeed = 1;
  /// Per-thread step budget; exceeding it fails the run (runaway loop).
  uint64_t MaxSteps = 50'000'000;
  /// Cooperative cancellation: when non-null and set, the run stops with
  /// a "canceled" error. Watchdogs that abandon a hung run set this so
  /// the orphaned threads wind down instead of executing to the step
  /// limit (threads parked in a genuine lock deadlock stay parked).
  const std::atomic<bool> *CancelFlag = nullptr;
  /// Compute InterpResult::HeapFingerprint after the run: a canonical
  /// hash of the heap reachable from the globals (garbage excluded, so
  /// aborted STM attempts don't perturb it). The differential oracles
  /// compare it across protection backends.
  bool FingerprintHeap = false;
  /// AtomicMode::Adaptive: per-thread sections between count-based policy
  /// epochs (the interpreter has no wall clock worth trusting in tests;
  /// the CLI driver layers wall-clock epochs on top via AdaptiveEpochMs).
  uint32_t AdaptiveEveryN = 64;
  /// AtomicMode::Adaptive: wall-clock policy epoch period in ms; 0 runs
  /// count-based epochs only.
  unsigned AdaptiveEpochMs = 0;
  /// AtomicMode::Adaptive stress knob (differential fuzzer): flip every
  /// migration domain's backend every epoch instead of following the
  /// contention policy, maximizing mid-run migrations.
  bool AdaptiveForceFlip = false;
};

struct InterpResult {
  bool Ok = false;
  /// Failure description: "assert failed", "null dereference",
  /// "protection violation: ...", "deadlock suspected", ...
  std::string Error;
  /// Return value of main when it returns an int; 0 otherwise.
  int64_t MainResult = 0;
  uint64_t TotalSteps = 0;
  uint64_t ProtectionChecks = 0;
  /// Canonical hash of the reachable final heap (with
  /// InterpOptions::FingerprintHeap); identical programs under any sound
  /// protection regime must agree on it.
  uint64_t HeapFingerprint = 0;
  /// Objects visited by the fingerprint walk.
  uint32_t HeapObjects = 0;
  /// STM backend counters (AtomicMode::Stm only).
  uint64_t StmCommits = 0;
  uint64_t StmAborts = 0;
};

/// Executes \p Module starting at \p MainFunction ("main" by default).
/// \p Inference is required for AtomicMode::Inferred and ignored
/// otherwise; \p PT provides the region map shared with the analysis.
InterpResult interpret(const ir::IrModule &Module,
                       const PointsToAnalysis &PT,
                       const InferenceResult *Inference,
                       const InterpOptions &Options,
                       const std::string &MainFunction = "main");

} // namespace lockin

#endif // LOCKIN_INTERP_INTERP_H
