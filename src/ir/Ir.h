//===--- Ir.h - Normalized intermediate representation ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The normalized IR the lock inference operates on. Every assignment is
/// lowered to one of the canonical statement forms of the paper's Fig. 4
/// (x=y, x=y+i, x=&y, x=*y, x=new, x=null, *x=y) plus the implementation
/// extensions (integer ops, comparisons, array-element addresses, calls,
/// spawn). Control flow stays structured (seq / if / while / atomic), which
/// lets the backward dataflow analysis run by structural recursion with a
/// fixpoint at loops.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_IR_IR_H
#define LOCKIN_IR_IR_H

#include "lang/Ast.h"
#include "support/Arena.h"
#include "support/Casting.h"

#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace ir {

class IrFunction;

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

/// One variable slot: global, parameter, source local, or compiler temp.
/// Identity is the pointer; ids order variables deterministically.
class Variable {
public:
  Variable(std::string Name, Type *Ty, uint32_t Id, bool IsGlobal,
           bool IsParam)
      : Name(std::move(Name)), Ty(Ty), Id(Id), Global(IsGlobal),
        Param(IsParam) {}

  const std::string &name() const { return Name; }
  Type *type() const { return Ty; }
  uint32_t id() const { return Id; }
  bool isGlobal() const { return Global; }
  bool isParam() const { return Param; }

  /// True once some `&x` was lowered; such locals may be shared between
  /// threads, so accesses to them need locks (paper §4.3: locks on
  /// thread-local variables whose address is never taken are omitted).
  bool isAddressTaken() const { return AddressTaken; }
  void setAddressTaken() { AddressTaken = true; }

  /// The function owning this local/param/temp; null for globals.
  IrFunction *owner() const { return Owner; }
  void setOwner(IrFunction *F) { Owner = F; }

private:
  std::string Name;
  Type *Ty;
  uint32_t Id;
  bool Global;
  bool Param;
  bool AddressTaken = false;
  IrFunction *Owner = nullptr;
};

//===----------------------------------------------------------------------===//
// Allocation sites
//===----------------------------------------------------------------------===//

/// A static `new` occurrence. The points-to analysis assigns every site to
/// a region; the runtime tags every allocated object with its site so
/// coarse region locks can be checked and acquired dynamically.
struct AllocSite {
  uint32_t Id;
  /// Element struct; null for int arrays and arrays of pointers.
  StructDecl *Elem;
  /// Pointer depth of array elements (new node*[n] has depth 1).
  unsigned PtrDepth;
  bool IsArray;
  std::string InFunction;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class IntBinOp { Add, Sub, Mul, Div, Rem };
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

class IrStmt {
public:
  enum class Kind {
    // Normalized primitive statements.
    Copy,      ///< x = y
    ConstInt,  ///< x = n
    ConstNull, ///< x = null
    AddrOf,    ///< x = &y
    FieldAddr, ///< x = y + f        (address of field f of *y)
    IndexAddr, ///< x = y @ i        (address of element i of array y)
    Load,      ///< x = *y
    Store,     ///< *x = y
    Alloc,     ///< x = new(site)    (optionally sized by an int variable)
    IntBin,    ///< x = y op z
    Cmp,       ///< x = (y cmp z)    (int 0/1; y,z int or pointer vars)
    Call,      ///< x = f(a0..an)    (x null for void calls)
    // Structured statements.
    Seq,
    If,
    While,
    Atomic,
    Return,
    Spawn,
    Assert,
  };

  virtual ~IrStmt() = default;
  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Module-unique statement number, assigned by lowering; the inference
  /// uses it to memoize per-statement transfer results. Statements built
  /// on the side (the map/unmap parameter-binding copies) keep
  /// InvalidStmtId and bypass the cache.
  static constexpr uint32_t InvalidStmtId = ~0u;
  uint32_t stmtId() const { return Id; }
  void setStmtId(uint32_t NewId) { Id = NewId; }

protected:
  IrStmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
  uint32_t Id = InvalidStmtId;
};

/// Destroy-only deleter for statements owned by the module's bump arena:
/// unique_ptr ownership (and the `.get()`-shaped call sites) stay exactly
/// as before, but destruction only runs the destructor — the memory is
/// released in bulk when the module's arena dies.
template <typename T> struct ArenaDelete {
  ArenaDelete() = default;
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U *, T *>>>
  ArenaDelete(const ArenaDelete<U> &) {}
  void operator()(T *P) const { P->~T(); }
};

using IrStmtPtr = std::unique_ptr<IrStmt, ArenaDelete<IrStmt>>;

/// Base for the primitive (non-structured) statements; Def is the assigned
/// variable (null only for void calls).
class InstStmt : public IrStmt {
public:
  Variable *def() const { return Def; }

  static bool classof(const IrStmt *S) {
    return S->kind() <= Kind::Call;
  }

protected:
  InstStmt(Kind K, Variable *Def, SourceLoc Loc) : IrStmt(K, Loc), Def(Def) {}

private:
  Variable *Def;
};

class CopyStmt : public InstStmt {
public:
  CopyStmt(Variable *Def, Variable *Src, SourceLoc Loc)
      : InstStmt(Kind::Copy, Def, Loc), Src(Src) {}
  Variable *src() const { return Src; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Copy; }

private:
  Variable *Src;
};

class ConstIntStmt : public InstStmt {
public:
  ConstIntStmt(Variable *Def, int64_t Value, SourceLoc Loc)
      : InstStmt(Kind::ConstInt, Def, Loc), Value(Value) {}
  int64_t value() const { return Value; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::ConstInt; }

private:
  int64_t Value;
};

class ConstNullStmt : public InstStmt {
public:
  ConstNullStmt(Variable *Def, SourceLoc Loc)
      : InstStmt(Kind::ConstNull, Def, Loc) {}
  static bool classof(const IrStmt *S) {
    return S->kind() == Kind::ConstNull;
  }
};

class AddrOfStmt : public InstStmt {
public:
  AddrOfStmt(Variable *Def, Variable *Target, SourceLoc Loc)
      : InstStmt(Kind::AddrOf, Def, Loc), Target(Target) {}
  Variable *target() const { return Target; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::AddrOf; }

private:
  Variable *Target;
};

class FieldAddrStmt : public InstStmt {
public:
  FieldAddrStmt(Variable *Def, Variable *Base, StructDecl *Struct,
                int FieldIdx, SourceLoc Loc)
      : InstStmt(Kind::FieldAddr, Def, Loc), Base(Base), Struct(Struct),
        FieldIdx(FieldIdx) {}
  Variable *base() const { return Base; }
  StructDecl *structDecl() const { return Struct; }
  int fieldIndex() const { return FieldIdx; }
  const std::string &fieldName() const {
    return Struct->fields()[FieldIdx].Name;
  }
  static bool classof(const IrStmt *S) {
    return S->kind() == Kind::FieldAddr;
  }

private:
  Variable *Base;
  StructDecl *Struct;
  int FieldIdx;
};

class IndexAddrStmt : public InstStmt {
public:
  IndexAddrStmt(Variable *Def, Variable *Base, Variable *Index,
                SourceLoc Loc)
      : InstStmt(Kind::IndexAddr, Def, Loc), Base(Base), Index(Index) {}
  Variable *base() const { return Base; }
  Variable *index() const { return Index; }
  static bool classof(const IrStmt *S) {
    return S->kind() == Kind::IndexAddr;
  }

private:
  Variable *Base;
  Variable *Index;
};

class LoadStmt : public InstStmt {
public:
  LoadStmt(Variable *Def, Variable *Addr, SourceLoc Loc)
      : InstStmt(Kind::Load, Def, Loc), Addr(Addr) {}
  Variable *addr() const { return Addr; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Load; }

private:
  Variable *Addr;
};

class StoreStmt : public InstStmt {
public:
  StoreStmt(Variable *Addr, Variable *Value, SourceLoc Loc)
      : InstStmt(Kind::Store, /*Def=*/nullptr, Loc), Addr(Addr),
        Value(Value) {}
  Variable *addr() const { return Addr; }
  Variable *value() const { return Value; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Store; }

private:
  Variable *Addr;
  Variable *Value;
};

class AllocStmt : public InstStmt {
public:
  AllocStmt(Variable *Def, uint32_t SiteId, Variable *SizeVar, SourceLoc Loc)
      : InstStmt(Kind::Alloc, Def, Loc), SiteId(SiteId), SizeVar(SizeVar) {}
  uint32_t siteId() const { return SiteId; }
  /// Null for single-struct allocations.
  Variable *sizeVar() const { return SizeVar; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Alloc; }

private:
  uint32_t SiteId;
  Variable *SizeVar;
};

class IntBinStmt : public InstStmt {
public:
  IntBinStmt(Variable *Def, IntBinOp Op, Variable *Lhs, Variable *Rhs,
             SourceLoc Loc)
      : InstStmt(Kind::IntBin, Def, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  IntBinOp op() const { return Op; }
  Variable *lhs() const { return Lhs; }
  Variable *rhs() const { return Rhs; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::IntBin; }

private:
  IntBinOp Op;
  Variable *Lhs;
  Variable *Rhs;
};

class CmpStmt : public InstStmt {
public:
  CmpStmt(Variable *Def, CmpOp Op, Variable *Lhs, Variable *Rhs,
          SourceLoc Loc)
      : InstStmt(Kind::Cmp, Def, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  CmpOp op() const { return Op; }
  Variable *lhs() const { return Lhs; }
  Variable *rhs() const { return Rhs; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Cmp; }

private:
  CmpOp Op;
  Variable *Lhs;
  Variable *Rhs;
};

class CallStmt : public InstStmt {
public:
  CallStmt(Variable *Def, IrFunction *Callee, std::vector<Variable *> Args,
           SourceLoc Loc)
      : InstStmt(Kind::Call, Def, Loc), Callee(Callee),
        Args(std::move(Args)) {}
  IrFunction *callee() const { return Callee; }
  const std::vector<Variable *> &args() const { return Args; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Call; }

private:
  IrFunction *Callee;
  std::vector<Variable *> Args;
};

class SeqStmt : public IrStmt {
public:
  SeqStmt(std::vector<IrStmtPtr> Stmts, SourceLoc Loc)
      : IrStmt(Kind::Seq, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<IrStmtPtr> &stmts() const { return Stmts; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Seq; }

private:
  std::vector<IrStmtPtr> Stmts;
};

/// if (CondVar != 0) Then else Else. Else may be null.
class IfIrStmt : public IrStmt {
public:
  IfIrStmt(Variable *CondVar, IrStmtPtr Then, IrStmtPtr Else, SourceLoc Loc)
      : IrStmt(Kind::If, Loc), CondVar(CondVar), Then(std::move(Then)),
        Else(std::move(Else)) {}
  Variable *condVar() const { return CondVar; }
  IrStmt *thenStmt() const { return Then.get(); }
  IrStmt *elseStmt() const { return Else.get(); }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::If; }

private:
  Variable *CondVar;
  IrStmtPtr Then;
  IrStmtPtr Else;
};

/// loop { Prelude; if (CondVar == 0) break; Body }. Prelude re-evaluates
/// the source condition into CondVar on every iteration, preserving
/// short-circuit semantics via nested ifs.
class WhileIrStmt : public IrStmt {
public:
  WhileIrStmt(IrStmtPtr Prelude, Variable *CondVar, IrStmtPtr Body,
              SourceLoc Loc)
      : IrStmt(Kind::While, Loc), Prelude(std::move(Prelude)),
        CondVar(CondVar), Body(std::move(Body)) {}
  IrStmt *prelude() const { return Prelude.get(); }
  Variable *condVar() const { return CondVar; }
  IrStmt *body() const { return Body.get(); }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::While; }

private:
  IrStmtPtr Prelude;
  Variable *CondVar;
  IrStmtPtr Body;
};

/// An atomic section. Before the transformation, Locks is empty and the
/// interpreter treats entry as acquiring nothing (checked mode then flags
/// every shared access). The transformation fills Locks with the inferred
/// acquireAll set (serialized lock descriptors; see infer/LockSet.h).
class AtomicIrStmt : public IrStmt {
public:
  AtomicIrStmt(uint32_t SectionId, IrStmtPtr Body, SourceLoc Loc)
      : IrStmt(Kind::Atomic, Loc), SectionId(SectionId),
        Body(std::move(Body)) {}
  uint32_t sectionId() const { return SectionId; }
  IrStmt *body() const { return Body.get(); }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Atomic; }

private:
  uint32_t SectionId;
  IrStmtPtr Body;
};

class ReturnIrStmt : public IrStmt {
public:
  ReturnIrStmt(Variable *Value, SourceLoc Loc)
      : IrStmt(Kind::Return, Loc), Value(Value) {}
  /// Null for void returns.
  Variable *value() const { return Value; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Return; }

private:
  Variable *Value;
};

class SpawnIrStmt : public IrStmt {
public:
  SpawnIrStmt(IrFunction *Callee, std::vector<Variable *> Args,
              SourceLoc Loc)
      : IrStmt(Kind::Spawn, Loc), Callee(Callee), Args(std::move(Args)) {}
  IrFunction *callee() const { return Callee; }
  const std::vector<Variable *> &args() const { return Args; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Spawn; }

private:
  IrFunction *Callee;
  std::vector<Variable *> Args;
};

class AssertIrStmt : public IrStmt {
public:
  AssertIrStmt(Variable *CondVar, SourceLoc Loc)
      : IrStmt(Kind::Assert, Loc), CondVar(CondVar) {}
  Variable *condVar() const { return CondVar; }
  static bool classof(const IrStmt *S) { return S->kind() == Kind::Assert; }

private:
  Variable *CondVar;
};

//===----------------------------------------------------------------------===//
// Functions and modules
//===----------------------------------------------------------------------===//

class IrFunction {
public:
  IrFunction(std::string Name, Type *ReturnTy)
      : Name(std::move(Name)), ReturnTy(ReturnTy) {}

  const std::string &name() const { return Name; }
  Type *returnType() const { return ReturnTy; }

  Variable *addVariable(std::string VarName, Type *Ty, bool IsParam) {
    auto Var = std::make_unique<Variable>(
        std::move(VarName), Ty, static_cast<uint32_t>(Vars.size()),
        /*IsGlobal=*/false, IsParam);
    Var->setOwner(this);
    Vars.push_back(std::move(Var));
    if (IsParam)
      ++ParamCount;
    return Vars.back().get();
  }

  const std::vector<std::unique_ptr<Variable>> &variables() const {
    return Vars;
  }
  unsigned numParams() const { return ParamCount; }
  Variable *param(unsigned I) const { return Vars[I].get(); }

  /// The variable modeling ret_f; null for void functions.
  Variable *retVar() const { return RetVar; }
  void setRetVar(Variable *V) { RetVar = V; }

  IrStmt *body() const { return Body.get(); }
  void setBody(IrStmtPtr B) { Body = std::move(B); }

  /// All atomic sections lexically inside this function, in section-id
  /// order; populated by lowering.
  const std::vector<AtomicIrStmt *> &atomicSections() const {
    return Atomics;
  }
  void noteAtomicSection(AtomicIrStmt *S) { Atomics.push_back(S); }

private:
  std::string Name;
  Type *ReturnTy;
  std::vector<std::unique_ptr<Variable>> Vars;
  unsigned ParamCount = 0;
  Variable *RetVar = nullptr;
  IrStmtPtr Body;
  std::vector<AtomicIrStmt *> Atomics;
};

/// A lowered whole program. Keeps a non-owning pointer to the source
/// Program (for types); the Program must outlive the module.
class IrModule {
public:
  explicit IrModule(Program &Source) : Source(&Source) {}

  Program &sourceProgram() const { return *Source; }

  /// Allocates a statement in the module's arena. The returned unique_ptr
  /// runs only the destructor; the memory outlives it (until the module
  /// dies), which is what keeps statement pointers stable for the
  /// analysis' memo keys. Not thread-safe; lowering is single-threaded.
  template <typename T, typename... Args>
  std::unique_ptr<T, ArenaDelete<T>> create(Args &&...As) {
    static_assert(std::is_base_of_v<IrStmt, T>,
                  "arena creation is for IR statements");
    return std::unique_ptr<T, ArenaDelete<T>>(
        Arena.createUnowned<T>(std::forward<Args>(As)...));
  }

  /// Payload bytes of arena-allocated IR statements.
  size_t arenaBytes() const { return Arena.bytesAllocated(); }

  Variable *addGlobal(std::string Name, Type *Ty) {
    auto Var = std::make_unique<Variable>(
        std::move(Name), Ty, static_cast<uint32_t>(Globals.size()),
        /*IsGlobal=*/true, /*IsParam=*/false);
    Globals.push_back(std::move(Var));
    GlobalMap[Globals.back()->name()] = Globals.back().get();
    return Globals.back().get();
  }

  IrFunction *addFunction(std::string Name, Type *ReturnTy) {
    Functions.push_back(std::make_unique<IrFunction>(std::move(Name),
                                                     ReturnTy));
    FunctionMap[Functions.back()->name()] = Functions.back().get();
    return Functions.back().get();
  }

  uint32_t addAllocSite(AllocSite Site) {
    Site.Id = static_cast<uint32_t>(AllocSites.size());
    AllocSites.push_back(Site);
    return Site.Id;
  }

  Variable *findGlobal(const std::string &Name) const {
    auto It = GlobalMap.find(Name);
    return It == GlobalMap.end() ? nullptr : It->second;
  }
  IrFunction *findFunction(const std::string &Name) const {
    auto It = FunctionMap.find(Name);
    return It == FunctionMap.end() ? nullptr : It->second;
  }

  const std::vector<std::unique_ptr<Variable>> &globals() const {
    return Globals;
  }
  const std::vector<std::unique_ptr<IrFunction>> &functions() const {
    return Functions;
  }
  const std::vector<AllocSite> &allocSites() const { return AllocSites; }

  /// Global initializer values (int or null), parallel to globals().
  struct GlobalInit {
    bool IsNull = true;
    int64_t IntValue = 0;
  };
  std::vector<GlobalInit> GlobalInits;

  /// Total number of atomic sections across all functions.
  uint32_t numAtomicSections() const { return NumAtomicSections; }
  uint32_t takeAtomicSectionId() { return NumAtomicSections++; }

private:
  Program *Source;
  /// Declared before Functions: function bodies' statement destructors
  /// (run when Functions is destroyed) touch arena memory, so the arena
  /// must die last.
  support::BumpArena Arena;
  std::vector<std::unique_ptr<Variable>> Globals;
  std::vector<std::unique_ptr<IrFunction>> Functions;
  std::vector<AllocSite> AllocSites;
  std::unordered_map<std::string, Variable *> GlobalMap;
  std::unordered_map<std::string, IrFunction *> FunctionMap;
  uint32_t NumAtomicSections = 0;
};

} // namespace ir
} // namespace lockin

#endif // LOCKIN_IR_IR_H
