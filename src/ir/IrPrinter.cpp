//===--- IrPrinter.cpp - Textual IR dump --------------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "ir/IrPrinter.h"

using namespace lockin;
using namespace lockin::ir;

static std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

static const char *intBinOpSpelling(IntBinOp Op) {
  switch (Op) {
  case IntBinOp::Add:
    return "+";
  case IntBinOp::Sub:
    return "-";
  case IntBinOp::Mul:
    return "*";
  case IntBinOp::Div:
    return "/";
  case IntBinOp::Rem:
    return "%";
  }
  return "?";
}

static const char *cmpOpSpelling(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "==";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  }
  return "?";
}

std::string ir::printIrStmt(const IrStmt *S, unsigned Indent,
                            const SectionAnnotator &Annotate) {
  std::string P = pad(Indent);
  switch (S->kind()) {
  case IrStmt::Kind::Copy: {
    const auto *C = cast<CopyStmt>(S);
    return P + C->def()->name() + " = " + C->src()->name() + ";\n";
  }
  case IrStmt::Kind::ConstInt: {
    const auto *C = cast<ConstIntStmt>(S);
    return P + C->def()->name() + " = " + std::to_string(C->value()) + ";\n";
  }
  case IrStmt::Kind::ConstNull:
    return P + cast<ConstNullStmt>(S)->def()->name() + " = null;\n";
  case IrStmt::Kind::AddrOf: {
    const auto *A = cast<AddrOfStmt>(S);
    return P + A->def()->name() + " = &" + A->target()->name() + ";\n";
  }
  case IrStmt::Kind::FieldAddr: {
    const auto *F = cast<FieldAddrStmt>(S);
    return P + F->def()->name() + " = " + F->base()->name() + " + ." +
           F->fieldName() + ";\n";
  }
  case IrStmt::Kind::IndexAddr: {
    const auto *Ix = cast<IndexAddrStmt>(S);
    return P + Ix->def()->name() + " = " + Ix->base()->name() + " @ " +
           Ix->index()->name() + ";\n";
  }
  case IrStmt::Kind::Load: {
    const auto *L = cast<LoadStmt>(S);
    return P + L->def()->name() + " = *" + L->addr()->name() + ";\n";
  }
  case IrStmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    return P + "*" + St->addr()->name() + " = " + St->value()->name() +
           ";\n";
  }
  case IrStmt::Kind::Alloc: {
    const auto *A = cast<AllocStmt>(S);
    std::string Out = P + A->def()->name() + " = new#" +
                      std::to_string(A->siteId());
    if (A->sizeVar())
      Out += "[" + A->sizeVar()->name() + "]";
    return Out + ";\n";
  }
  case IrStmt::Kind::IntBin: {
    const auto *B = cast<IntBinStmt>(S);
    return P + B->def()->name() + " = " + B->lhs()->name() + " " +
           intBinOpSpelling(B->op()) + " " + B->rhs()->name() + ";\n";
  }
  case IrStmt::Kind::Cmp: {
    const auto *C = cast<CmpStmt>(S);
    return P + C->def()->name() + " = " + C->lhs()->name() + " " +
           cmpOpSpelling(C->op()) + " " + C->rhs()->name() + ";\n";
  }
  case IrStmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    std::string Out = P;
    if (C->def())
      Out += C->def()->name() + " = ";
    Out += C->callee()->name() + "(";
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += C->args()[I]->name();
    }
    return Out + ");\n";
  }
  case IrStmt::Kind::Seq: {
    std::string Out;
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      Out += printIrStmt(Child.get(), Indent, Annotate);
    return Out;
  }
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    std::string Out = P + "if (" + I->condVar()->name() + ") {\n" +
                      printIrStmt(I->thenStmt(), Indent + 1, Annotate) + P +
                      "}";
    if (I->elseStmt())
      Out += " else {\n" + printIrStmt(I->elseStmt(), Indent + 1, Annotate) +
             P + "}";
    return Out + "\n";
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    return P + "loop {\n" + printIrStmt(W->prelude(), Indent + 1, Annotate) +
           pad(Indent + 1) + "if (!" + W->condVar()->name() + ") break;\n" +
           printIrStmt(W->body(), Indent + 1, Annotate) + P + "}\n";
  }
  case IrStmt::Kind::Atomic: {
    const auto *A = cast<AtomicIrStmt>(S);
    std::string Annotation = Annotate ? Annotate(A->sectionId()) : "";
    if (Annotation.empty()) {
      return P + "atomic #" + std::to_string(A->sectionId()) + " {\n" +
             printIrStmt(A->body(), Indent + 1, Annotate) + P + "}\n";
    }
    return P + "acquireAll(" + Annotation + ");\n" +
           printIrStmt(A->body(), Indent, Annotate) + P + "releaseAll();\n";
  }
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(S);
    if (!R->value())
      return P + "return;\n";
    return P + "return " + R->value()->name() + ";\n";
  }
  case IrStmt::Kind::Spawn: {
    const auto *Sp = cast<SpawnIrStmt>(S);
    std::string Out = P + "spawn " + Sp->callee()->name() + "(";
    for (size_t I = 0; I < Sp->args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Sp->args()[I]->name();
    }
    return Out + ");\n";
  }
  case IrStmt::Kind::Assert:
    return P + "assert(" + cast<AssertIrStmt>(S)->condVar()->name() + ");\n";
  }
  return P + "<?>;\n";
}

std::string ir::printIrFunction(const IrFunction &F,
                                const SectionAnnotator &Annotate) {
  std::string Out = F.returnType()->str() + " " + F.name() + "(";
  for (unsigned I = 0; I < F.numParams(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += F.param(I)->type()->str() + " " + F.param(I)->name();
  }
  Out += ") {\n";
  Out += printIrStmt(F.body(), 1, Annotate);
  Out += "}\n";
  return Out;
}

std::string ir::printIrModule(const IrModule &M,
                              const SectionAnnotator &Annotate) {
  std::string Out;
  for (const auto &G : M.globals())
    Out += G->type()->str() + " " + G->name() + ";\n";
  if (!M.globals().empty())
    Out += "\n";
  for (const auto &F : M.functions()) {
    Out += printIrFunction(*F, Annotate);
    Out += "\n";
  }
  return Out;
}
