//===--- IrPrinter.h - Textual IR dump --------------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_IR_IRPRINTER_H
#define LOCKIN_IR_IRPRINTER_H

#include "ir/Ir.h"

#include <functional>
#include <string>

namespace lockin {
namespace ir {

/// Maps an atomic section id to the text printed inside acquireAll(...).
/// When absent (or returning ""), sections print as plain `atomic`.
using SectionAnnotator = std::function<std::string(uint32_t SectionId)>;

/// Renders \p S with the given indent.
std::string printIrStmt(const IrStmt *S, unsigned Indent = 0,
                        const SectionAnnotator &Annotate = {});

/// Renders one function.
std::string printIrFunction(const IrFunction &F,
                            const SectionAnnotator &Annotate = {});

/// Renders the whole module. With an annotator this shows the transformed
/// output program: atomic sections become acquireAll(...)/releaseAll pairs.
std::string printIrModule(const IrModule &M,
                          const SectionAnnotator &Annotate = {});

} // namespace ir
} // namespace lockin

#endif // LOCKIN_IR_IRPRINTER_H
