//===--- Lowering.cpp - AST to normalized IR ---------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "ir/Lowering.h"

#include <cassert>

using namespace lockin;
using namespace lockin::ir;

namespace {

class Lowerer {
public:
  Lowerer(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags),
        Module(std::make_unique<IrModule>(Prog)) {}

  std::unique_ptr<IrModule> run();

private:
  // Emission into the innermost open statement list.
  void emit(IrStmtPtr S) { Blocks.back().push_back(std::move(S)); }
  void pushBlock() { Blocks.emplace_back(); }
  IrStmtPtr popBlock(SourceLoc Loc) {
    std::vector<IrStmtPtr> Stmts = std::move(Blocks.back());
    Blocks.pop_back();
    return Module->create<SeqStmt>(std::move(Stmts), Loc);
  }

  Variable *newTemp(Type *Ty) {
    return CurFunction->addVariable("%t" + std::to_string(NextTemp++), Ty,
                                    /*IsParam=*/false);
  }

  Variable *varFor(const VarDecl *Decl) {
    if (Decl->isGlobal()) {
      Variable *G = Module->findGlobal(Decl->name());
      assert(G && "global not pre-registered");
      return G;
    }
    auto It = LocalMap.find(Decl);
    assert(It != LocalMap.end() && "local not registered");
    return It->second;
  }

  Variable *lowerExpr(const Expr *E);
  Variable *lowerAddr(const Expr *E);
  void lowerCond(const Expr *E, Variable *Out);
  void lowerStmt(const Stmt *S);
  void lowerFunction(const FunctionDecl *F, IrFunction *Ir);
  Variable *lowerCall(const CallExpr *C);

  Program &Prog;
  [[maybe_unused]] DiagnosticEngine &Diags;
  std::unique_ptr<IrModule> Module;
  IrFunction *CurFunction = nullptr;
  std::vector<std::vector<IrStmtPtr>> Blocks;
  std::unordered_map<const VarDecl *, Variable *> LocalMap;
  unsigned NextTemp = 0;
};

} // namespace

Variable *Lowerer::lowerCall(const CallExpr *C) {
  std::vector<Variable *> Args;
  for (const ExprPtr &Arg : C->args())
    Args.push_back(lowerExpr(Arg.get()));
  IrFunction *Callee = Module->findFunction(C->calleeName());
  assert(Callee && "callee not pre-registered");
  Variable *Def = nullptr;
  if (!C->callee()->returnType()->isVoid())
    Def = newTemp(C->callee()->returnType());
  emit(Module->create<CallStmt>(Def, Callee, std::move(Args), C->loc()));
  return Def;
}

/// Lowers an lvalue to a variable holding its address.
Variable *Lowerer::lowerAddr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::VarRef: {
    Variable *Var = varFor(cast<VarRefExpr>(E)->decl());
    Var->setAddressTaken();
    Variable *T = newTemp(Prog.types().getPointer(Var->type()));
    emit(Module->create<AddrOfStmt>(T, Var, E->loc()));
    return T;
  }
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    assert(U->op() == UnaryOp::Deref && "not an lvalue");
    return lowerExpr(U->sub());
  }
  case Expr::Kind::Arrow: {
    const auto *A = cast<ArrowExpr>(E);
    Variable *Base = lowerExpr(A->base());
    Variable *T = newTemp(Prog.types().getPointer(E->type()));
    StructDecl *SD = A->base()->type()->pointee()->structDecl();
    emit(Module->create<FieldAddrStmt>(T, Base, SD, A->fieldIndex(),
                                         E->loc()));
    return T;
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    Variable *Base = lowerExpr(Ix->base());
    Variable *Idx = lowerExpr(Ix->index());
    Variable *T = newTemp(Prog.types().getPointer(E->type()));
    emit(Module->create<IndexAddrStmt>(T, Base, Idx, E->loc()));
    return T;
  }
  default:
    assert(false && "not an lvalue");
    return nullptr;
  }
}

Variable *Lowerer::lowerExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit: {
    Variable *T = newTemp(Prog.types().getInt());
    emit(Module->create<ConstIntStmt>(T, cast<IntLitExpr>(E)->value(),
                                        E->loc()));
    return T;
  }
  case Expr::Kind::NullLit: {
    // Null literals get the type of their context in sema; for IR purposes
    // a generic pointer temp suffices.
    Variable *T = newTemp(E->type());
    emit(Module->create<ConstNullStmt>(T, E->loc()));
    return T;
  }
  case Expr::Kind::VarRef:
    return varFor(cast<VarRefExpr>(E)->decl());
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->op()) {
    case UnaryOp::Deref: {
      Variable *Addr = lowerExpr(U->sub());
      Variable *T = newTemp(E->type());
      emit(Module->create<LoadStmt>(T, Addr, E->loc()));
      return T;
    }
    case UnaryOp::AddrOf:
      return lowerAddr(U->sub());
    case UnaryOp::Neg: {
      Variable *Zero = newTemp(Prog.types().getInt());
      emit(Module->create<ConstIntStmt>(Zero, 0, E->loc()));
      Variable *Sub = lowerExpr(U->sub());
      Variable *T = newTemp(Prog.types().getInt());
      emit(Module->create<IntBinStmt>(T, IntBinOp::Sub, Zero, Sub,
                                        E->loc()));
      return T;
    }
    case UnaryOp::Not:
      assert(false && "boolean expressions are lowered by lowerCond");
      return nullptr;
    }
    return nullptr;
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    assert(!isComparisonOp(B->op()) && !isLogicalOp(B->op()) &&
           "boolean expressions are lowered by lowerCond");
    IntBinOp Op;
    switch (B->op()) {
    case BinaryOp::Add:
      Op = IntBinOp::Add;
      break;
    case BinaryOp::Sub:
      Op = IntBinOp::Sub;
      break;
    case BinaryOp::Mul:
      Op = IntBinOp::Mul;
      break;
    case BinaryOp::Div:
      Op = IntBinOp::Div;
      break;
    default:
      Op = IntBinOp::Rem;
      break;
    }
    Variable *Lhs = lowerExpr(B->lhs());
    Variable *Rhs = lowerExpr(B->rhs());
    Variable *T = newTemp(Prog.types().getInt());
    emit(Module->create<IntBinStmt>(T, Op, Lhs, Rhs, E->loc()));
    return T;
  }
  case Expr::Kind::Arrow:
  case Expr::Kind::Index: {
    Variable *Addr = lowerAddr(E);
    Variable *T = newTemp(E->type());
    emit(Module->create<LoadStmt>(T, Addr, E->loc()));
    return T;
  }
  case Expr::Kind::Call:
    return lowerCall(cast<CallExpr>(E));
  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    Variable *SizeVar = nullptr;
    if (N->arraySize())
      SizeVar = lowerExpr(N->arraySize());
    AllocSite Site;
    Site.Elem = N->elemStruct();
    Site.PtrDepth = N->ptrDepth();
    Site.IsArray = N->arraySize() != nullptr;
    Site.InFunction = CurFunction->name();
    Site.Loc = E->loc();
    uint32_t SiteId = Module->addAllocSite(Site);
    Variable *T = newTemp(E->type());
    emit(Module->create<AllocStmt>(T, SiteId, SizeVar, E->loc()));
    return T;
  }
  }
  return nullptr;
}

static CmpOp cmpOpFor(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
    return CmpOp::Eq;
  case BinaryOp::Ne:
    return CmpOp::Ne;
  case BinaryOp::Lt:
    return CmpOp::Lt;
  case BinaryOp::Le:
    return CmpOp::Le;
  case BinaryOp::Gt:
    return CmpOp::Gt;
  default:
    return CmpOp::Ge;
  }
}

/// Lowers a boolean expression into \p Out (0 or 1), preserving
/// short-circuit evaluation with nested ifs.
void Lowerer::lowerCond(const Expr *E, Variable *Out) {
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    if (B->op() == BinaryOp::And) {
      lowerCond(B->lhs(), Out);
      pushBlock();
      lowerCond(B->rhs(), Out);
      IrStmtPtr Rhs = popBlock(E->loc());
      emit(Module->create<IfIrStmt>(Out, std::move(Rhs), nullptr,
                                      E->loc()));
      return;
    }
    if (B->op() == BinaryOp::Or) {
      lowerCond(B->lhs(), Out);
      pushBlock();
      lowerCond(B->rhs(), Out);
      IrStmtPtr Rhs = popBlock(E->loc());
      pushBlock();
      IrStmtPtr Empty = popBlock(E->loc());
      emit(Module->create<IfIrStmt>(Out, std::move(Empty), std::move(Rhs),
                                      E->loc()));
      return;
    }
    assert(isComparisonOp(B->op()) && "unexpected boolean operator");
    Variable *Lhs = lowerExpr(B->lhs());
    Variable *Rhs = lowerExpr(B->rhs());
    emit(Module->create<CmpStmt>(Out, cmpOpFor(B->op()), Lhs, Rhs,
                                   E->loc()));
    return;
  }
  const auto *U = cast<UnaryExpr>(E);
  assert(U->op() == UnaryOp::Not && "unexpected boolean expression");
  lowerCond(U->sub(), Out);
  Variable *Zero = newTemp(Prog.types().getInt());
  emit(Module->create<ConstIntStmt>(Zero, 0, E->loc()));
  emit(Module->create<CmpStmt>(Out, CmpOp::Eq, Out, Zero, E->loc()));
}

void Lowerer::lowerStmt(const Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Block:
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      lowerStmt(Child.get());
    return;
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    Variable *Var = CurFunction->addVariable(D->var()->name(),
                                             D->var()->type(),
                                             /*IsParam=*/false);
    LocalMap[D->var()] = Var;
    if (D->init()) {
      Variable *Init = lowerExpr(D->init());
      emit(Module->create<CopyStmt>(Var, Init, S->loc()));
    }
    return;
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    if (const auto *VR = dyn_cast<VarRefExpr>(A->lhs())) {
      Variable *Rhs = lowerExpr(A->rhs());
      emit(Module->create<CopyStmt>(varFor(VR->decl()), Rhs, S->loc()));
      return;
    }
    Variable *Addr = lowerAddr(A->lhs());
    Variable *Rhs = lowerExpr(A->rhs());
    emit(Module->create<StoreStmt>(Addr, Rhs, S->loc()));
    return;
  }
  case Stmt::Kind::ExprStmt:
    lowerExpr(cast<ExprStmt>(S)->expr());
    return;
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    Variable *Cond = newTemp(Prog.types().getInt());
    lowerCond(I->cond(), Cond);
    pushBlock();
    lowerStmt(I->thenStmt());
    IrStmtPtr Then = popBlock(S->loc());
    IrStmtPtr Else;
    if (I->elseStmt()) {
      pushBlock();
      lowerStmt(I->elseStmt());
      Else = popBlock(S->loc());
    }
    emit(Module->create<IfIrStmt>(Cond, std::move(Then), std::move(Else),
                                    S->loc()));
    return;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    Variable *Cond = newTemp(Prog.types().getInt());
    pushBlock();
    lowerCond(W->cond(), Cond);
    IrStmtPtr Prelude = popBlock(S->loc());
    pushBlock();
    lowerStmt(W->body());
    IrStmtPtr Body = popBlock(S->loc());
    emit(Module->create<WhileIrStmt>(std::move(Prelude), Cond,
                                       std::move(Body), S->loc()));
    return;
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    Variable *Value = nullptr;
    if (R->value())
      Value = lowerExpr(R->value());
    emit(Module->create<ReturnIrStmt>(Value, S->loc()));
    return;
  }
  case Stmt::Kind::Atomic: {
    const auto *A = cast<AtomicStmt>(S);
    pushBlock();
    lowerStmt(A->body());
    IrStmtPtr Body = popBlock(S->loc());
    auto Atomic = Module->create<AtomicIrStmt>(
        Module->takeAtomicSectionId(), std::move(Body), S->loc());
    CurFunction->noteAtomicSection(Atomic.get());
    emit(std::move(Atomic));
    return;
  }
  case Stmt::Kind::Spawn: {
    const auto *Sp = cast<SpawnStmt>(S);
    std::vector<Variable *> Args;
    for (const ExprPtr &Arg : Sp->args())
      Args.push_back(lowerExpr(Arg.get()));
    IrFunction *Callee = Module->findFunction(Sp->calleeName());
    assert(Callee && "spawn callee not pre-registered");
    emit(Module->create<SpawnIrStmt>(Callee, std::move(Args), S->loc()));
    return;
  }
  case Stmt::Kind::Assert: {
    const auto *As = cast<AssertStmt>(S);
    Variable *Cond = newTemp(Prog.types().getInt());
    lowerCond(As->cond(), Cond);
    emit(Module->create<AssertIrStmt>(Cond, S->loc()));
    return;
  }
  }
}

void Lowerer::lowerFunction(const FunctionDecl *F, IrFunction *Ir) {
  CurFunction = Ir;
  LocalMap.clear();
  NextTemp = 0;

  for (const auto &Param : F->params()) {
    Variable *Var = Ir->addVariable(Param->name(), Param->type(),
                                    /*IsParam=*/true);
    LocalMap[Param.get()] = Var;
  }
  if (!F->returnType()->isVoid())
    Ir->setRetVar(Ir->addVariable("%ret", F->returnType(),
                                  /*IsParam=*/false));

  pushBlock();
  lowerStmt(F->body());
  Ir->setBody(popBlock(F->loc()));
  CurFunction = nullptr;
}

namespace {

/// Assigns module-unique statement ids in a deterministic pre-order walk;
/// the inference keys its transfer memo on them.
void numberStmts(IrStmt *S, uint32_t &Next) {
  S->setStmtId(Next++);
  switch (S->kind()) {
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      numberStmts(Child.get(), Next);
    return;
  case IrStmt::Kind::If: {
    auto *I = cast<IfIrStmt>(S);
    numberStmts(I->thenStmt(), Next);
    if (I->elseStmt())
      numberStmts(I->elseStmt(), Next);
    return;
  }
  case IrStmt::Kind::While: {
    auto *W = cast<WhileIrStmt>(S);
    numberStmts(W->prelude(), Next);
    numberStmts(W->body(), Next);
    return;
  }
  case IrStmt::Kind::Atomic:
    numberStmts(cast<AtomicIrStmt>(S)->body(), Next);
    return;
  default:
    return;
  }
}

} // namespace

std::unique_ptr<IrModule> Lowerer::run() {
  for (size_t I = 0; I < Prog.globals().size(); ++I) {
    const VarDecl *G = Prog.globals()[I].get();
    Module->addGlobal(G->name(), G->type());
    IrModule::GlobalInit Init;
    if (const Expr *E = Prog.globalInits()[I].get()) {
      if (const auto *IL = dyn_cast<IntLitExpr>(E)) {
        Init.IsNull = false;
        Init.IntValue = IL->value();
      }
    }
    Module->GlobalInits.push_back(Init);
  }
  // Register all functions first so calls resolve in one pass.
  for (const auto &F : Prog.functions())
    Module->addFunction(F->name(), F->returnType());
  for (const auto &F : Prog.functions())
    lowerFunction(F.get(), Module->findFunction(F->name()));
  uint32_t NextStmtId = 0;
  for (const auto &F : Module->functions())
    if (F->body())
      numberStmts(F->body(), NextStmtId);
  return std::move(Module);
}

std::unique_ptr<IrModule> lockin::lowerProgram(Program &Prog,
                                               DiagnosticEngine &Diags) {
  Lowerer L(Prog, Diags);
  return L.run();
}
