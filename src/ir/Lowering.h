//===--- Lowering.h - AST to normalized IR ----------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_IR_LOWERING_H
#define LOCKIN_IR_LOWERING_H

#include "ir/Ir.h"
#include "support/Diagnostics.h"

#include <memory>

namespace lockin {

/// Lowers a sema-checked \p Prog to the normalized IR. Never fails on
/// checked input; \p Diags is used only for internal-consistency reports.
/// The returned module keeps pointers into \p Prog (types, structs), which
/// must outlive it.
std::unique_ptr<ir::IrModule> lowerProgram(Program &Prog,
                                           DiagnosticEngine &Diags);

} // namespace lockin

#endif // LOCKIN_IR_LOWERING_H
