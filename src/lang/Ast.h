//===--- Ast.h - Abstract syntax of the input language ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the paper's input language (PLDI'08 Fig. 3) with the
/// implementation extensions from DESIGN.md. The AST is produced by the
/// Parser, annotated by Sema (types, declaration links), and lowered to the
/// normalized IR by ir/Lowering.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_AST_H
#define LOCKIN_LANG_AST_H

#include "lang/Type.h"
#include "support/Casting.h"
#include "support/SourceLoc.h"

#include <memory>
#include <string>
#include <vector>

namespace lockin {

class Expr;
class Stmt;
class FunctionDecl;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// A variable: global, function parameter, or local. Locals are owned by
/// their DeclStmt; parameters by their FunctionDecl; globals by the Program.
class VarDecl {
public:
  VarDecl(std::string Name, Type *Ty, SourceLoc Loc, bool IsGlobal)
      : Name(std::move(Name)), Ty(Ty), Loc(Loc), Global(IsGlobal) {}

  const std::string &name() const { return Name; }
  Type *type() const { return Ty; }
  SourceLoc loc() const { return Loc; }
  bool isGlobal() const { return Global; }

private:
  std::string Name;
  Type *Ty;
  SourceLoc Loc;
  bool Global;
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class UnaryOp { Deref, AddrOf, Neg, Not };
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or
};

/// Returns true for ==, !=, <, <=, >, >=.
bool isComparisonOp(BinaryOp Op);
/// Returns true for && and ||.
bool isLogicalOp(BinaryOp Op);
/// Source spelling of \p Op, e.g. "==".
const char *binaryOpSpelling(BinaryOp Op);

class Expr {
public:
  enum class Kind { IntLit, NullLit, VarRef, Unary, Binary, Arrow, Index,
                    Call, New };

  virtual ~Expr() = default;

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// The expression's type; set by Sema, null before.
  Type *type() const { return Ty; }
  void setType(Type *T) { Ty = T; }

protected:
  Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
  Type *Ty = nullptr;
};

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(Kind::IntLit, Loc), Value(Value) {}

  int64_t value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == Kind::IntLit; }

private:
  int64_t Value;
};

class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(Kind::NullLit, Loc) {}

  static bool classof(const Expr *E) { return E->kind() == Kind::NullLit; }
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string Name, SourceLoc Loc)
      : Expr(Kind::VarRef, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  /// The resolved declaration; set by Sema.
  VarDecl *decl() const { return Decl; }
  void setDecl(VarDecl *D) { Decl = D; }

  static bool classof(const Expr *E) { return E->kind() == Kind::VarRef; }

private:
  std::string Name;
  VarDecl *Decl = nullptr;
};

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Sub, SourceLoc Loc)
      : Expr(Kind::Unary, Loc), Op(Op), Sub(std::move(Sub)) {}

  UnaryOp op() const { return Op; }
  Expr *sub() const { return Sub.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Unary; }

private:
  UnaryOp Op;
  ExprPtr Sub;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Expr(Kind::Binary, Loc), Op(Op), Lhs(std::move(Lhs)),
        Rhs(std::move(Rhs)) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs.get(); }
  Expr *rhs() const { return Rhs.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Binary; }

private:
  BinaryOp Op;
  ExprPtr Lhs;
  ExprPtr Rhs;
};

/// Field access through a pointer: base->field.
class ArrowExpr : public Expr {
public:
  ArrowExpr(ExprPtr Base, std::string Field, SourceLoc Loc)
      : Expr(Kind::Arrow, Loc), Base(std::move(Base)),
        Field(std::move(Field)) {}

  Expr *base() const { return Base.get(); }
  const std::string &fieldName() const { return Field; }

  /// Field index within the struct; set by Sema.
  int fieldIndex() const { return FieldIdx; }
  void setFieldIndex(int Idx) { FieldIdx = Idx; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Arrow; }

private:
  ExprPtr Base;
  std::string Field;
  int FieldIdx = -1;
};

/// Array element access through a pointer: base[index].
class IndexExpr : public Expr {
public:
  IndexExpr(ExprPtr Base, ExprPtr Index, SourceLoc Loc)
      : Expr(Kind::Index, Loc), Base(std::move(Base)),
        Index(std::move(Index)) {}

  Expr *base() const { return Base.get(); }
  Expr *index() const { return Index.get(); }

  static bool classof(const Expr *E) { return E->kind() == Kind::Index; }

private:
  ExprPtr Base;
  ExprPtr Index;
};

class CallExpr : public Expr {
public:
  CallExpr(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(Kind::Call, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &calleeName() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }

  /// The resolved callee; set by Sema.
  FunctionDecl *callee() const { return CalleeDecl; }
  void setCallee(FunctionDecl *F) { CalleeDecl = F; }

  static bool classof(const Expr *E) { return E->kind() == Kind::Call; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  FunctionDecl *CalleeDecl = nullptr;
};

/// Heap allocation: `new T` for one struct, `new E[n]` for an array whose
/// element type E is `int`, a struct, or a pointer (e.g. `new node*[16]`).
/// The result type is a pointer to the element type.
class NewExpr : public Expr {
public:
  NewExpr(std::string TypeName, bool IsIntElem, unsigned PtrDepth,
          ExprPtr ArraySize, SourceLoc Loc)
      : Expr(Kind::New, Loc), TypeName(std::move(TypeName)),
        IntElem(IsIntElem), PtrDepth(PtrDepth),
        ArraySize(std::move(ArraySize)) {}

  /// Named struct element type; empty when the element type is int.
  const std::string &typeName() const { return TypeName; }
  bool isIntElem() const { return IntElem; }

  /// Number of '*' after the element type name, e.g. 1 for `new node*[16]`.
  unsigned ptrDepth() const { return PtrDepth; }

  /// Null for single-object allocations.
  Expr *arraySize() const { return ArraySize.get(); }

  /// Element struct declaration; set by Sema (null for int arrays).
  StructDecl *elemStruct() const { return ElemStruct; }
  void setElemStruct(StructDecl *SD) { ElemStruct = SD; }

  static bool classof(const Expr *E) { return E->kind() == Kind::New; }

private:
  std::string TypeName;
  bool IntElem;
  unsigned PtrDepth;
  ExprPtr ArraySize;
  StructDecl *ElemStruct = nullptr;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

class Stmt {
public:
  enum class Kind { Block, Decl, Assign, ExprStmt, If, While, Return, Atomic,
                    Spawn, Assert };

  virtual ~Stmt() = default;

  Kind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  Kind K;
  SourceLoc Loc;
};

class BlockStmt : public Stmt {
public:
  BlockStmt(std::vector<StmtPtr> Stmts, SourceLoc Loc)
      : Stmt(Kind::Block, Loc), Stmts(std::move(Stmts)) {}

  const std::vector<StmtPtr> &stmts() const { return Stmts; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Block; }

private:
  std::vector<StmtPtr> Stmts;
};

class DeclStmt : public Stmt {
public:
  DeclStmt(std::unique_ptr<VarDecl> Var, ExprPtr Init, SourceLoc Loc)
      : Stmt(Kind::Decl, Loc), Var(std::move(Var)), Init(std::move(Init)) {}

  VarDecl *var() const { return Var.get(); }
  Expr *init() const { return Init.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Decl; }

private:
  std::unique_ptr<VarDecl> Var;
  ExprPtr Init;
};

class AssignStmt : public Stmt {
public:
  AssignStmt(ExprPtr Lhs, ExprPtr Rhs, SourceLoc Loc)
      : Stmt(Kind::Assign, Loc), Lhs(std::move(Lhs)), Rhs(std::move(Rhs)) {}

  Expr *lhs() const { return Lhs.get(); }
  Expr *rhs() const { return Rhs.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assign; }

private:
  ExprPtr Lhs;
  ExprPtr Rhs;
};

/// An expression evaluated for effect; Sema requires it to be a call.
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr E, SourceLoc Loc) : Stmt(Kind::ExprStmt, Loc),
                                       E(std::move(E)) {}

  Expr *expr() const { return E.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::ExprStmt; }

private:
  ExprPtr E;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr Cond, StmtPtr Then, StmtPtr Else, SourceLoc Loc)
      : Stmt(Kind::If, Loc), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *thenStmt() const { return Then.get(); }
  Stmt *elseStmt() const { return Else.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::If; }

private:
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::While, Loc), Cond(std::move(Cond)), Body(std::move(Body)) {}

  Expr *cond() const { return Cond.get(); }
  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::While; }

private:
  ExprPtr Cond;
  StmtPtr Body;
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr Value, SourceLoc Loc)
      : Stmt(Kind::Return, Loc), Value(std::move(Value)) {}

  /// Null for `return;` in void functions.
  Expr *value() const { return Value.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Return; }

private:
  ExprPtr Value;
};

class AtomicStmt : public Stmt {
public:
  AtomicStmt(StmtPtr Body, SourceLoc Loc)
      : Stmt(Kind::Atomic, Loc), Body(std::move(Body)) {}

  Stmt *body() const { return Body.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Atomic; }

private:
  StmtPtr Body;
};

/// Creates a new thread running callee(args). Not allowed inside atomic
/// sections; the callee must return void.
class SpawnStmt : public Stmt {
public:
  SpawnStmt(std::string Callee, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Stmt(Kind::Spawn, Loc), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &calleeName() const { return Callee; }
  const std::vector<ExprPtr> &args() const { return Args; }

  FunctionDecl *callee() const { return CalleeDecl; }
  void setCallee(FunctionDecl *F) { CalleeDecl = F; }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Spawn; }

private:
  std::string Callee;
  std::vector<ExprPtr> Args;
  FunctionDecl *CalleeDecl = nullptr;
};

class AssertStmt : public Stmt {
public:
  AssertStmt(ExprPtr Cond, SourceLoc Loc)
      : Stmt(Kind::Assert, Loc), Cond(std::move(Cond)) {}

  Expr *cond() const { return Cond.get(); }

  static bool classof(const Stmt *S) { return S->kind() == Kind::Assert; }

private:
  ExprPtr Cond;
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

class FunctionDecl {
public:
  FunctionDecl(std::string Name, Type *ReturnTy,
               std::vector<std::unique_ptr<VarDecl>> Params,
               std::unique_ptr<BlockStmt> Body, SourceLoc Loc)
      : Name(std::move(Name)), ReturnTy(ReturnTy), Params(std::move(Params)),
        Body(std::move(Body)), Loc(Loc) {}

  const std::string &name() const { return Name; }
  Type *returnType() const { return ReturnTy; }
  const std::vector<std::unique_ptr<VarDecl>> &params() const {
    return Params;
  }
  BlockStmt *body() const { return Body.get(); }
  SourceLoc loc() const { return Loc; }

private:
  std::string Name;
  Type *ReturnTy;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<BlockStmt> Body;
  SourceLoc Loc;
};

/// A whole input program: struct declarations, globals, and functions.
/// Owns the TypeContext used by every annotation.
class Program {
public:
  TypeContext &types() { return Types; }

  void addStruct(std::unique_ptr<StructDecl> SD) {
    StructMap[SD->name()] = SD.get();
    Structs.push_back(std::move(SD));
  }

  void addGlobal(std::unique_ptr<VarDecl> Var, ExprPtr Init) {
    GlobalMap[Var->name()] = Var.get();
    Globals.push_back(std::move(Var));
    GlobalInits.push_back(std::move(Init));
  }

  void addFunction(std::unique_ptr<FunctionDecl> F) {
    FunctionMap[F->name()] = F.get();
    Functions.push_back(std::move(F));
  }

  StructDecl *findStruct(const std::string &Name) const {
    auto It = StructMap.find(Name);
    return It == StructMap.end() ? nullptr : It->second;
  }

  VarDecl *findGlobal(const std::string &Name) const {
    auto It = GlobalMap.find(Name);
    return It == GlobalMap.end() ? nullptr : It->second;
  }

  FunctionDecl *findFunction(const std::string &Name) const {
    auto It = FunctionMap.find(Name);
    return It == FunctionMap.end() ? nullptr : It->second;
  }

  const std::vector<std::unique_ptr<StructDecl>> &structs() const {
    return Structs;
  }
  const std::vector<std::unique_ptr<VarDecl>> &globals() const {
    return Globals;
  }
  /// Global initializers, parallel to globals(); entries may be null.
  const std::vector<ExprPtr> &globalInits() const { return GlobalInits; }
  const std::vector<std::unique_ptr<FunctionDecl>> &functions() const {
    return Functions;
  }

private:
  TypeContext Types;
  std::vector<std::unique_ptr<StructDecl>> Structs;
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<ExprPtr> GlobalInits;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;
  std::unordered_map<std::string, StructDecl *> StructMap;
  std::unordered_map<std::string, VarDecl *> GlobalMap;
  std::unordered_map<std::string, FunctionDecl *> FunctionMap;
};

} // namespace lockin

#endif // LOCKIN_LANG_AST_H
