//===--- AstPrinter.cpp - Source pretty-printer ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

using namespace lockin;

std::string lockin::printExpr(const Expr *E) {
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    return std::to_string(cast<IntLitExpr>(E)->value());
  case Expr::Kind::NullLit:
    return "null";
  case Expr::Kind::VarRef:
    return cast<VarRefExpr>(E)->name();
  case Expr::Kind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    const char *Op = "";
    switch (U->op()) {
    case UnaryOp::Deref:
      Op = "*";
      break;
    case UnaryOp::AddrOf:
      Op = "&";
      break;
    case UnaryOp::Neg:
      Op = "-";
      break;
    case UnaryOp::Not:
      Op = "!";
      break;
    }
    return std::string(Op) + "(" + printExpr(U->sub()) + ")";
  }
  case Expr::Kind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return "(" + printExpr(B->lhs()) + " " + binaryOpSpelling(B->op()) +
           " " + printExpr(B->rhs()) + ")";
  }
  case Expr::Kind::Arrow: {
    const auto *A = cast<ArrowExpr>(E);
    return "(" + printExpr(A->base()) + ")->" + A->fieldName();
  }
  case Expr::Kind::Index: {
    const auto *Ix = cast<IndexExpr>(E);
    return "(" + printExpr(Ix->base()) + ")[" + printExpr(Ix->index()) + "]";
  }
  case Expr::Kind::Call: {
    const auto *C = cast<CallExpr>(E);
    std::string Out = C->calleeName() + "(";
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(C->args()[I].get());
    }
    return Out + ")";
  }
  case Expr::Kind::New: {
    const auto *N = cast<NewExpr>(E);
    std::string Out = "new ";
    Out += N->isIntElem() ? "int" : N->typeName();
    for (unsigned I = 0; I < N->ptrDepth(); ++I)
      Out += "*";
    if (N->arraySize())
      Out += "[" + printExpr(N->arraySize()) + "]";
    return Out;
  }
  }
  return "<?>";
}

static std::string pad(unsigned Indent) { return std::string(Indent * 2, ' '); }

std::string lockin::printStmt(const Stmt *S, unsigned Indent) {
  std::string P = pad(Indent);
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    std::string Out = P + "{\n";
    for (const StmtPtr &Child : cast<BlockStmt>(S)->stmts())
      Out += printStmt(Child.get(), Indent + 1);
    return Out + P + "}\n";
  }
  case Stmt::Kind::Decl: {
    const auto *D = cast<DeclStmt>(S);
    std::string Out = P + D->var()->type()->str() + " " + D->var()->name();
    if (D->init())
      Out += " = " + printExpr(D->init());
    return Out + ";\n";
  }
  case Stmt::Kind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return P + printExpr(A->lhs()) + " = " + printExpr(A->rhs()) + ";\n";
  }
  case Stmt::Kind::ExprStmt:
    return P + printExpr(cast<ExprStmt>(S)->expr()) + ";\n";
  case Stmt::Kind::If: {
    const auto *I = cast<IfStmt>(S);
    std::string Out = P + "if (" + printExpr(I->cond()) + ")\n" +
                      printStmt(I->thenStmt(), Indent + 1);
    if (I->elseStmt())
      Out += P + "else\n" + printStmt(I->elseStmt(), Indent + 1);
    return Out;
  }
  case Stmt::Kind::While: {
    const auto *W = cast<WhileStmt>(S);
    return P + "while (" + printExpr(W->cond()) + ")\n" +
           printStmt(W->body(), Indent + 1);
  }
  case Stmt::Kind::Return: {
    const auto *R = cast<ReturnStmt>(S);
    if (!R->value())
      return P + "return;\n";
    return P + "return " + printExpr(R->value()) + ";\n";
  }
  case Stmt::Kind::Atomic:
    return P + "atomic\n" +
           printStmt(cast<AtomicStmt>(S)->body(), Indent + 1);
  case Stmt::Kind::Spawn: {
    const auto *Sp = cast<SpawnStmt>(S);
    std::string Out = P + "spawn " + Sp->calleeName() + "(";
    for (size_t I = 0; I < Sp->args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(Sp->args()[I].get());
    }
    return Out + ");\n";
  }
  case Stmt::Kind::Assert:
    return P + "assert(" + printExpr(cast<AssertStmt>(S)->cond()) + ");\n";
  }
  return P + "<?>;\n";
}

std::string lockin::printProgram(const Program &Prog) {
  std::string Out;
  for (const auto &SD : Prog.structs()) {
    Out += "struct " + SD->name() + " {\n";
    for (const StructDecl::Field &F : SD->fields())
      Out += "  " + F.Ty->str() + " " + F.Name + ";\n";
    Out += "};\n\n";
  }
  for (size_t I = 0; I < Prog.globals().size(); ++I) {
    const VarDecl *Var = Prog.globals()[I].get();
    Out += Var->type()->str() + " " + Var->name();
    if (Prog.globalInits()[I])
      Out += " = " + printExpr(Prog.globalInits()[I].get());
    Out += ";\n";
  }
  if (!Prog.globals().empty())
    Out += "\n";
  for (const auto &F : Prog.functions()) {
    Out += F->returnType()->str() + " " + F->name() + "(";
    for (size_t I = 0; I < F->params().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += F->params()[I]->type()->str() + " " + F->params()[I]->name();
    }
    Out += ")\n";
    Out += printStmt(F->body(), 0);
    Out += "\n";
  }
  return Out;
}
