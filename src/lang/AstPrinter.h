//===--- AstPrinter.h - Source pretty-printer -------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_ASTPRINTER_H
#define LOCKIN_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace lockin {

/// Renders \p E back to source syntax (fully parenthesized subterms where
/// precedence would be ambiguous).
std::string printExpr(const Expr *E);

/// Renders \p S as an indented source block.
std::string printStmt(const Stmt *S, unsigned Indent = 0);

/// Renders the whole program; the result reparses to an equivalent AST.
std::string printProgram(const Program &Prog);

} // namespace lockin

#endif // LOCKIN_LANG_ASTPRINTER_H
