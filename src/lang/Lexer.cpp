//===--- Lexer.cpp - Tokenizer for the input language ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace lockin;

const char *lockin::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Invalid:
    return "invalid token";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwAtomic:
    return "'atomic'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwAssert:
    return "'assert'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  }
  return "unknown";
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      while (Pos < Source.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Source.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

static TokenKind keywordKind(const std::string &Text) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"struct", TokenKind::KwStruct}, {"int", TokenKind::KwInt},
      {"void", TokenKind::KwVoid},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},     {"while", TokenKind::KwWhile},
      {"return", TokenKind::KwReturn}, {"atomic", TokenKind::KwAtomic},
      {"new", TokenKind::KwNew},       {"null", TokenKind::KwNull},
      {"spawn", TokenKind::KwSpawn},   {"assert", TokenKind::KwAssert},
  };
  auto It = Keywords.find(Text);
  return It == Keywords.end() ? TokenKind::Identifier : It->second;
}

Token Lexer::lex() {
  skipTrivia();
  SourceLoc Start = loc();
  if (Pos >= Source.size())
    return makeSimple(TokenKind::Eof, Start);

  char C = advance();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Text(1, C);
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      Text += advance();
    Token Tok;
    Tok.Kind = keywordKind(Text);
    Tok.Loc = Start;
    if (Tok.Kind == TokenKind::Identifier)
      Tok.Text = std::move(Text);
    return Tok;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t Value = C - '0';
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Value = Value * 10 + (advance() - '0');
    Token Tok;
    Tok.Kind = TokenKind::IntLiteral;
    Tok.Loc = Start;
    Tok.IntValue = Value;
    return Tok;
  }

  switch (C) {
  case '{':
    return makeSimple(TokenKind::LBrace, Start);
  case '}':
    return makeSimple(TokenKind::RBrace, Start);
  case '(':
    return makeSimple(TokenKind::LParen, Start);
  case ')':
    return makeSimple(TokenKind::RParen, Start);
  case '[':
    return makeSimple(TokenKind::LBracket, Start);
  case ']':
    return makeSimple(TokenKind::RBracket, Start);
  case ';':
    return makeSimple(TokenKind::Semi, Start);
  case ',':
    return makeSimple(TokenKind::Comma, Start);
  case '*':
    return makeSimple(TokenKind::Star, Start);
  case '+':
    return makeSimple(TokenKind::Plus, Start);
  case '/':
    return makeSimple(TokenKind::Slash, Start);
  case '%':
    return makeSimple(TokenKind::Percent, Start);
  case '-':
    if (peek() == '>') {
      advance();
      return makeSimple(TokenKind::Arrow, Start);
    }
    return makeSimple(TokenKind::Minus, Start);
  case '=':
    if (peek() == '=') {
      advance();
      return makeSimple(TokenKind::EqEq, Start);
    }
    return makeSimple(TokenKind::Assign, Start);
  case '!':
    if (peek() == '=') {
      advance();
      return makeSimple(TokenKind::NotEq, Start);
    }
    return makeSimple(TokenKind::Bang, Start);
  case '<':
    if (peek() == '=') {
      advance();
      return makeSimple(TokenKind::LessEq, Start);
    }
    return makeSimple(TokenKind::Less, Start);
  case '>':
    if (peek() == '=') {
      advance();
      return makeSimple(TokenKind::GreaterEq, Start);
    }
    return makeSimple(TokenKind::Greater, Start);
  case '&':
    if (peek() == '&') {
      advance();
      return makeSimple(TokenKind::AmpAmp, Start);
    }
    return makeSimple(TokenKind::Amp, Start);
  case '|':
    if (peek() == '|') {
      advance();
      return makeSimple(TokenKind::PipePipe, Start);
    }
    Diags.error(Start, "expected '||'");
    return makeSimple(TokenKind::Invalid, Start);
  default:
    Diags.error(Start, std::string("unexpected character '") + C + "'");
    return makeSimple(TokenKind::Invalid, Start);
  }
}
