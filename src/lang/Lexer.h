//===--- Lexer.h - Tokenizer for the input language -------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_LEXER_H
#define LOCKIN_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace lockin {

/// Hand-written scanner. Supports `//` line comments and `/* */` block
/// comments. Produces an Eof token at end of input and keeps returning it.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  /// Scans and returns the next token.
  Token lex();

private:
  char peek(unsigned Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance();
  void skipTrivia();
  SourceLoc loc() const { return SourceLoc(Line, Col); }

  Token makeSimple(TokenKind Kind, SourceLoc Loc) const {
    Token Tok;
    Tok.Kind = Kind;
    Tok.Loc = Loc;
    return Tok;
  }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace lockin

#endif // LOCKIN_LANG_LEXER_H
