//===--- Parser.cpp - Recursive-descent parser ------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace lockin;

bool Parser::expect(TokenKind Kind) {
  if (Tok.is(Kind)) {
    consume();
    return true;
  }
  errorHere(std::string("expected ") + tokenKindName(Kind) + " but found " +
            tokenKindName(Tok.Kind));
  return false;
}

bool Parser::startsType() const {
  if (Tok.is(TokenKind::KwInt) || Tok.is(TokenKind::KwVoid) ||
      Tok.is(TokenKind::KwStruct))
    return true;
  return Tok.is(TokenKind::Identifier) && TypeNames.count(Tok.Text);
}

/// type := ('int' | 'void' | 'struct'? ID) '*'*
Type *Parser::parseType() {
  Type *Base = nullptr;
  if (accept(TokenKind::KwInt)) {
    Base = Prog->types().getInt();
  } else if (accept(TokenKind::KwVoid)) {
    Base = Prog->types().getVoid();
  } else {
    accept(TokenKind::KwStruct);
    if (!Tok.is(TokenKind::Identifier)) {
      errorHere("expected type name");
      return nullptr;
    }
    StructDecl *SD = Prog->findStruct(Tok.Text);
    if (!SD) {
      errorHere("unknown struct type '" + Tok.Text + "'");
      return nullptr;
    }
    consume();
    Base = Prog->types().getStruct(SD);
  }
  while (accept(TokenKind::Star))
    Base = Prog->types().getPointer(Base);
  return Base;
}

/// structdecl := 'struct' ID '{' (type ID ';')* '}' ';'
bool Parser::parseStructDecl() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'struct'
  if (!Tok.is(TokenKind::Identifier)) {
    errorHere("expected struct name");
    return false;
  }
  std::string Name = Tok.Text;
  consume();
  if (Prog->findStruct(Name)) {
    Diags.error(Loc, "redefinition of struct '" + Name + "'");
    return false;
  }
  // Register the struct before parsing fields so recursive types
  // (e.g. struct elem { elem* next; }) resolve.
  auto SD = std::make_unique<StructDecl>(Name, Loc);
  StructDecl *Raw = SD.get();
  TypeNames.insert(Name);
  Prog->addStruct(std::move(SD));
  if (!expect(TokenKind::LBrace))
    return false;
  while (!Tok.is(TokenKind::RBrace)) {
    Type *FieldTy = parseType();
    if (!FieldTy)
      return false;
    if (FieldTy->isVoid() || FieldTy->isStruct()) {
      errorHere("struct fields must be int or pointer typed");
      return false;
    }
    if (!Tok.is(TokenKind::Identifier)) {
      errorHere("expected field name");
      return false;
    }
    if (Raw->fieldIndex(Tok.Text) >= 0) {
      errorHere("duplicate field '" + Tok.Text + "'");
      return false;
    }
    Raw->addField(Tok.Text, FieldTy);
    consume();
    if (!expect(TokenKind::Semi))
      return false;
  }
  consume(); // '}'
  return expect(TokenKind::Semi);
}

bool Parser::parseCallArgs(std::vector<ExprPtr> &Args) {
  if (!expect(TokenKind::LParen))
    return false;
  if (accept(TokenKind::RParen))
    return true;
  while (true) {
    ExprPtr Arg = parseExpr();
    if (!Arg)
      return false;
    Args.push_back(std::move(Arg));
    if (accept(TokenKind::RParen))
      return true;
    if (!expect(TokenKind::Comma))
      return false;
  }
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    int64_t Value = Tok.IntValue;
    consume();
    return std::make_unique<IntLitExpr>(Value, Loc);
  }
  case TokenKind::KwNull:
    consume();
    return std::make_unique<NullLitExpr>(Loc);
  case TokenKind::LParen: {
    consume();
    ExprPtr E = parseExpr();
    if (!E || !expect(TokenKind::RParen))
      return nullptr;
    return E;
  }
  case TokenKind::KwNew: {
    consume();
    bool IsInt = false;
    std::string TypeName;
    if (accept(TokenKind::KwInt)) {
      IsInt = true;
    } else {
      accept(TokenKind::KwStruct);
      if (!Tok.is(TokenKind::Identifier)) {
        errorHere("expected type name after 'new'");
        return nullptr;
      }
      TypeName = Tok.Text;
      consume();
    }
    unsigned PtrDepth = 0;
    while (accept(TokenKind::Star))
      ++PtrDepth;
    ExprPtr ArraySize;
    if (accept(TokenKind::LBracket)) {
      ArraySize = parseExpr();
      if (!ArraySize || !expect(TokenKind::RBracket))
        return nullptr;
    } else if (IsInt || PtrDepth != 0) {
      errorHere("only struct objects can be allocated singly; "
                "use new T[n] for arrays");
      return nullptr;
    }
    return std::make_unique<NewExpr>(std::move(TypeName), IsInt, PtrDepth,
                                     std::move(ArraySize), Loc);
  }
  case TokenKind::Identifier: {
    std::string Name = Tok.Text;
    consume();
    if (Tok.is(TokenKind::LParen)) {
      std::vector<ExprPtr> Args;
      if (!parseCallArgs(Args))
        return nullptr;
      return std::make_unique<CallExpr>(std::move(Name), std::move(Args), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  default:
    errorHere(std::string("expected expression, found ") +
              tokenKindName(Tok.Kind));
    return nullptr;
  }
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  if (!E)
    return nullptr;
  while (true) {
    SourceLoc Loc = Tok.Loc;
    if (accept(TokenKind::Arrow)) {
      if (!Tok.is(TokenKind::Identifier)) {
        errorHere("expected field name after '->'");
        return nullptr;
      }
      std::string Field = Tok.Text;
      consume();
      E = std::make_unique<ArrowExpr>(std::move(E), std::move(Field), Loc);
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      ExprPtr Idx = parseExpr();
      if (!Idx || !expect(TokenKind::RBracket))
        return nullptr;
      E = std::make_unique<IndexExpr>(std::move(E), std::move(Idx), Loc);
      continue;
    }
    return E;
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  if (accept(TokenKind::Star)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Deref, std::move(Sub), Loc);
  }
  if (accept(TokenKind::Amp)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::AddrOf, std::move(Sub), Loc);
  }
  if (accept(TokenKind::Minus)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Neg, std::move(Sub), Loc);
  }
  if (accept(TokenKind::Bang)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Sub), Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (true) {
    BinaryOp Op;
    if (Tok.is(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (Tok.is(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (Tok.is(TokenKind::Percent))
      Op = BinaryOp::Rem;
    else
      return Lhs;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr Lhs = parseMultiplicative();
  if (!Lhs)
    return nullptr;
  while (true) {
    BinaryOp Op;
    if (Tok.is(TokenKind::Plus))
      Op = BinaryOp::Add;
    else if (Tok.is(TokenKind::Minus))
      Op = BinaryOp::Sub;
    else
      return Lhs;
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Rhs = parseMultiplicative();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs),
                                       Loc);
  }
}

ExprPtr Parser::parseComparison() {
  ExprPtr Lhs = parseAdditive();
  if (!Lhs)
    return nullptr;
  BinaryOp Op;
  switch (Tok.Kind) {
  case TokenKind::EqEq:
    Op = BinaryOp::Eq;
    break;
  case TokenKind::NotEq:
    Op = BinaryOp::Ne;
    break;
  case TokenKind::Less:
    Op = BinaryOp::Lt;
    break;
  case TokenKind::LessEq:
    Op = BinaryOp::Le;
    break;
  case TokenKind::Greater:
    Op = BinaryOp::Gt;
    break;
  case TokenKind::GreaterEq:
    Op = BinaryOp::Ge;
    break;
  default:
    return Lhs;
  }
  SourceLoc Loc = Tok.Loc;
  consume();
  ExprPtr Rhs = parseAdditive();
  if (!Rhs)
    return nullptr;
  return std::make_unique<BinaryExpr>(Op, std::move(Lhs), std::move(Rhs), Loc);
}

ExprPtr Parser::parseAnd() {
  ExprPtr Lhs = parseComparison();
  if (!Lhs)
    return nullptr;
  while (Tok.is(TokenKind::AmpAmp)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Rhs = parseComparison();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseOr() {
  ExprPtr Lhs = parseAnd();
  if (!Lhs)
    return nullptr;
  while (Tok.is(TokenKind::PipePipe)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    ExprPtr Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(Lhs),
                                       std::move(Rhs), Loc);
  }
  return Lhs;
}

ExprPtr Parser::parseExpr() { return parseOr(); }

/// declstmt := type ID ('=' expr)? ';'
StmtPtr Parser::parseDeclStmt() {
  SourceLoc Loc = Tok.Loc;
  Type *Ty = parseType();
  if (!Ty)
    return nullptr;
  if (Ty->isVoid() || Ty->isStruct()) {
    Diags.error(Loc, "variables must be int or pointer typed");
    return nullptr;
  }
  if (!Tok.is(TokenKind::Identifier)) {
    errorHere("expected variable name");
    return nullptr;
  }
  auto Var = std::make_unique<VarDecl>(Tok.Text, Ty, Tok.Loc,
                                       /*IsGlobal=*/false);
  consume();
  ExprPtr Init;
  if (accept(TokenKind::Assign)) {
    Init = parseExpr();
    if (!Init)
      return nullptr;
  }
  if (!expect(TokenKind::Semi))
    return nullptr;
  return std::make_unique<DeclStmt>(std::move(Var), std::move(Init), Loc);
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  if (!expect(TokenKind::LBrace))
    return nullptr;
  std::vector<StmtPtr> Stmts;
  while (!Tok.is(TokenKind::RBrace)) {
    if (Tok.is(TokenKind::Eof)) {
      errorHere("unexpected end of input inside block");
      return nullptr;
    }
    StmtPtr S = parseStmt();
    if (!S)
      return nullptr;
    Stmts.push_back(std::move(S));
  }
  consume(); // '}'
  return std::make_unique<BlockStmt>(std::move(Stmts), Loc);
}

StmtPtr Parser::parseStmt() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf: {
    consume();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Then = parseStmt();
    if (!Then)
      return nullptr;
    StmtPtr Else;
    if (accept(TokenKind::KwElse)) {
      Else = parseStmt();
      if (!Else)
        return nullptr;
    }
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }
  case TokenKind::KwWhile: {
    consume();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen))
      return nullptr;
    StmtPtr Body = parseStmt();
    if (!Body)
      return nullptr;
    return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
  }
  case TokenKind::KwReturn: {
    consume();
    ExprPtr Value;
    if (!Tok.is(TokenKind::Semi)) {
      Value = parseExpr();
      if (!Value)
        return nullptr;
    }
    if (!expect(TokenKind::Semi))
      return nullptr;
    return std::make_unique<ReturnStmt>(std::move(Value), Loc);
  }
  case TokenKind::KwAtomic: {
    consume();
    std::unique_ptr<BlockStmt> Body = parseBlock();
    if (!Body)
      return nullptr;
    return std::make_unique<AtomicStmt>(std::move(Body), Loc);
  }
  case TokenKind::KwSpawn: {
    consume();
    if (!Tok.is(TokenKind::Identifier)) {
      errorHere("expected function name after 'spawn'");
      return nullptr;
    }
    std::string Callee = Tok.Text;
    consume();
    std::vector<ExprPtr> Args;
    if (!parseCallArgs(Args) || !expect(TokenKind::Semi))
      return nullptr;
    return std::make_unique<SpawnStmt>(std::move(Callee), std::move(Args),
                                       Loc);
  }
  case TokenKind::KwAssert: {
    consume();
    if (!expect(TokenKind::LParen))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond || !expect(TokenKind::RParen) || !expect(TokenKind::Semi))
      return nullptr;
    return std::make_unique<AssertStmt>(std::move(Cond), Loc);
  }
  default:
    break;
  }

  if (startsType())
    return parseDeclStmt();

  // Assignment or expression statement.
  ExprPtr Lhs = parseExpr();
  if (!Lhs)
    return nullptr;
  if (accept(TokenKind::Assign)) {
    ExprPtr Rhs = parseExpr();
    if (!Rhs || !expect(TokenKind::Semi))
      return nullptr;
    return std::make_unique<AssignStmt>(std::move(Lhs), std::move(Rhs), Loc);
  }
  if (!expect(TokenKind::Semi))
    return nullptr;
  return std::make_unique<ExprStmt>(std::move(Lhs), Loc);
}

std::unique_ptr<FunctionDecl> Parser::parseFunctionRest(Type *ReturnTy,
                                                        std::string Name,
                                                        SourceLoc Loc) {
  // '(' already peeked by caller; parse parameter list.
  consume(); // '('
  std::vector<std::unique_ptr<VarDecl>> Params;
  if (!accept(TokenKind::RParen)) {
    while (true) {
      SourceLoc ParamLoc = Tok.Loc;
      Type *Ty = parseType();
      if (!Ty)
        return nullptr;
      if (Ty->isVoid() || Ty->isStruct()) {
        Diags.error(ParamLoc, "parameters must be int or pointer typed");
        return nullptr;
      }
      if (!Tok.is(TokenKind::Identifier)) {
        errorHere("expected parameter name");
        return nullptr;
      }
      Params.push_back(std::make_unique<VarDecl>(Tok.Text, Ty, Tok.Loc,
                                                 /*IsGlobal=*/false));
      consume();
      if (accept(TokenKind::RParen))
        break;
      if (!expect(TokenKind::Comma))
        return nullptr;
    }
  }
  std::unique_ptr<BlockStmt> Body = parseBlock();
  if (!Body)
    return nullptr;
  return std::make_unique<FunctionDecl>(std::move(Name), ReturnTy,
                                        std::move(Params), std::move(Body),
                                        Loc);
}

bool Parser::parseTopLevel() {
  if (Tok.is(TokenKind::KwStruct)) {
    // Could be a struct definition or a declaration using 'struct T'.
    // A definition is 'struct ID {'. Peek by lexing conservatively: we only
    // support definitions with the brace immediately after the name.
    // Declarations at top level use the bare type name, so 'struct' here
    // always begins a definition.
    return parseStructDecl();
  }

  SourceLoc Loc = Tok.Loc;
  Type *Ty = parseType();
  if (!Ty)
    return false;
  if (!Tok.is(TokenKind::Identifier)) {
    errorHere("expected declaration name");
    return false;
  }
  std::string Name = Tok.Text;
  SourceLoc NameLoc = Tok.Loc;
  consume();

  if (Tok.is(TokenKind::LParen)) {
    std::unique_ptr<FunctionDecl> F = parseFunctionRest(Ty, Name, Loc);
    if (!F)
      return false;
    if (Prog->findFunction(F->name())) {
      Diags.error(Loc, "redefinition of function '" + F->name() + "'");
      return false;
    }
    Prog->addFunction(std::move(F));
    return true;
  }

  // Global variable.
  if (Ty->isVoid() || Ty->isStruct()) {
    Diags.error(Loc, "globals must be int or pointer typed");
    return false;
  }
  if (Prog->findGlobal(Name)) {
    Diags.error(NameLoc, "redefinition of global '" + Name + "'");
    return false;
  }
  ExprPtr Init;
  if (accept(TokenKind::Assign)) {
    Init = parseExpr();
    if (!Init)
      return false;
  }
  if (!expect(TokenKind::Semi))
    return false;
  Prog->addGlobal(std::make_unique<VarDecl>(Name, Ty, NameLoc,
                                            /*IsGlobal=*/true),
                  std::move(Init));
  return true;
}

std::unique_ptr<Program> Parser::parseProgram() {
  Prog = std::make_unique<Program>();
  while (!Tok.is(TokenKind::Eof)) {
    if (!parseTopLevel())
      return nullptr;
  }
  return std::move(Prog);
}
