//===--- Parser.h - Recursive-descent parser --------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_PARSER_H
#define LOCKIN_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>
#include <unordered_set>

namespace lockin {

/// Parses one whole program. On syntax errors, reports diagnostics and
/// returns null; there is no error recovery (inputs are machine-generated
/// or small).
class Parser {
public:
  Parser(std::string_view Source, DiagnosticEngine &Diags)
      : Lex(Source, Diags), Diags(Diags) {
    Tok = Lex.lex();
  }

  /// Parses the whole input; null on error.
  std::unique_ptr<Program> parseProgram();

private:
  // Token helpers.
  void consume() { Tok = Lex.lex(); }
  bool expect(TokenKind Kind);
  bool accept(TokenKind Kind) {
    if (!Tok.is(Kind))
      return false;
    consume();
    return true;
  }
  void errorHere(const std::string &Message) { Diags.error(Tok.Loc, Message); }

  // Grammar productions. All return null (or false) after reporting an
  // error; callers propagate.
  bool parseStructDecl();
  bool parseTopLevel();
  Type *parseType();
  bool startsType() const;
  std::unique_ptr<FunctionDecl> parseFunctionRest(Type *ReturnTy,
                                                  std::string Name,
                                                  SourceLoc Loc);
  StmtPtr parseStmt();
  std::unique_ptr<BlockStmt> parseBlock();
  StmtPtr parseDeclStmt();
  ExprPtr parseExpr();
  ExprPtr parseOr();
  ExprPtr parseAnd();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  bool parseCallArgs(std::vector<ExprPtr> &Args);

  Lexer Lex;
  DiagnosticEngine &Diags;
  Token Tok;
  std::unique_ptr<Program> Prog;
  std::unordered_set<std::string> TypeNames;
};

} // namespace lockin

#endif // LOCKIN_LANG_PARSER_H
