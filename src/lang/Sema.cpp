//===--- Sema.cpp - Semantic analysis ---------------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

#include <unordered_map>
#include <vector>

using namespace lockin;

bool lockin::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

bool lockin::isLogicalOp(BinaryOp Op) {
  return Op == BinaryOp::And || Op == BinaryOp::Or;
}

const char *lockin::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

namespace {

/// Lexically scoped symbol table plus the checking visitor.
class SemaChecker {
public:
  SemaChecker(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  bool run();

private:
  // Scope management.
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  bool declare(VarDecl *Var);
  VarDecl *lookup(const std::string &Name);

  // The type used for `null`; compatible with every pointer.
  Type *nullType() { return Prog.types().getPointer(Prog.types().getVoid()); }
  bool isNullType(Type *Ty) {
    return Ty->isPointer() && Ty->pointee()->isVoid();
  }
  /// True if a value of type \p Src can be stored into a location of type
  /// \p Dst.
  bool assignable(Type *Dst, Type *Src) {
    return Dst == Src || (Dst->isPointer() && isNullType(Src));
  }

  bool isLvalue(const Expr *E) const {
    switch (E->kind()) {
    case Expr::Kind::VarRef:
    case Expr::Kind::Arrow:
    case Expr::Kind::Index:
      return true;
    case Expr::Kind::Unary:
      return cast<UnaryExpr>(E)->op() == UnaryOp::Deref;
    default:
      return false;
    }
  }

  // Checking; all return null/false after reporting an error.
  Type *checkExpr(Expr *E);
  bool checkStmt(Stmt *S);
  bool checkFunction(FunctionDecl *F);
  bool checkCallArgs(FunctionDecl *Callee, const std::vector<ExprPtr> &Args,
                     SourceLoc Loc, const char *What);

  Program &Prog;
  DiagnosticEngine &Diags;
  std::vector<std::unordered_map<std::string, VarDecl *>> Scopes;
  FunctionDecl *CurFunction = nullptr;
  unsigned AtomicDepth = 0;
};

} // namespace

bool SemaChecker::declare(VarDecl *Var) {
  auto &Top = Scopes.back();
  if (Top.count(Var->name())) {
    Diags.error(Var->loc(),
                "redefinition of variable '" + Var->name() + "'");
    return false;
  }
  Top[Var->name()] = Var;
  return true;
}

VarDecl *SemaChecker::lookup(const std::string &Name) {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return Prog.findGlobal(Name);
}

bool SemaChecker::checkCallArgs(FunctionDecl *Callee,
                                const std::vector<ExprPtr> &Args,
                                SourceLoc Loc, const char *What) {
  if (Args.size() != Callee->params().size()) {
    Diags.error(Loc, std::string(What) + " to '" + Callee->name() +
                         "' passes " + std::to_string(Args.size()) +
                         " arguments; expected " +
                         std::to_string(Callee->params().size()));
    return false;
  }
  for (size_t I = 0; I < Args.size(); ++I) {
    Type *ArgTy = checkExpr(Args[I].get());
    if (!ArgTy)
      return false;
    Type *ParamTy = Callee->params()[I]->type();
    if (!assignable(ParamTy, ArgTy)) {
      Diags.error(Args[I]->loc(), "argument " + std::to_string(I + 1) +
                                      " has type " + ArgTy->str() +
                                      "; expected " + ParamTy->str());
      return false;
    }
  }
  return true;
}

Type *SemaChecker::checkExpr(Expr *E) {
  Type *Result = nullptr;
  switch (E->kind()) {
  case Expr::Kind::IntLit:
    Result = Prog.types().getInt();
    break;
  case Expr::Kind::NullLit:
    Result = nullType();
    break;
  case Expr::Kind::VarRef: {
    auto *VR = cast<VarRefExpr>(E);
    VarDecl *Var = lookup(VR->name());
    if (!Var) {
      Diags.error(E->loc(), "use of undeclared variable '" + VR->name() +
                                "'");
      return nullptr;
    }
    VR->setDecl(Var);
    Result = Var->type();
    break;
  }
  case Expr::Kind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Type *SubTy = checkExpr(U->sub());
    if (!SubTy)
      return nullptr;
    switch (U->op()) {
    case UnaryOp::Deref:
      if (!SubTy->isPointer() || SubTy->pointee()->isVoid()) {
        Diags.error(E->loc(), "cannot dereference value of type " +
                                  SubTy->str());
        return nullptr;
      }
      if (SubTy->pointee()->isStruct()) {
        Diags.error(E->loc(), "struct values cannot be used directly; "
                              "access fields with '->'");
        return nullptr;
      }
      Result = SubTy->pointee();
      break;
    case UnaryOp::AddrOf:
      if (!isLvalue(U->sub())) {
        Diags.error(E->loc(), "cannot take the address of this expression");
        return nullptr;
      }
      Result = Prog.types().getPointer(SubTy);
      break;
    case UnaryOp::Neg:
      if (!SubTy->isInt()) {
        Diags.error(E->loc(), "operand of unary '-' must be int");
        return nullptr;
      }
      Result = SubTy;
      break;
    case UnaryOp::Not:
      if (!SubTy->isBool()) {
        Diags.error(E->loc(), "operand of '!' must be a condition");
        return nullptr;
      }
      Result = SubTy;
      break;
    }
    break;
  }
  case Expr::Kind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Type *LhsTy = checkExpr(B->lhs());
    Type *RhsTy = checkExpr(B->rhs());
    if (!LhsTy || !RhsTy)
      return nullptr;
    if (isLogicalOp(B->op())) {
      if (!LhsTy->isBool() || !RhsTy->isBool()) {
        Diags.error(E->loc(), "operands of '" +
                                  std::string(binaryOpSpelling(B->op())) +
                                  "' must be conditions");
        return nullptr;
      }
      Result = Prog.types().getBool();
    } else if (isComparisonOp(B->op())) {
      bool BothInt = LhsTy->isInt() && RhsTy->isInt();
      bool PtrCompare =
          (B->op() == BinaryOp::Eq || B->op() == BinaryOp::Ne) &&
          LhsTy->isPointer() && RhsTy->isPointer() &&
          (LhsTy == RhsTy || isNullType(LhsTy) || isNullType(RhsTy));
      if (!BothInt && !PtrCompare) {
        Diags.error(E->loc(), "cannot compare " + LhsTy->str() + " with " +
                                  RhsTy->str());
        return nullptr;
      }
      Result = Prog.types().getBool();
    } else {
      if (!LhsTy->isInt() || !RhsTy->isInt()) {
        Diags.error(E->loc(), "operands of '" +
                                  std::string(binaryOpSpelling(B->op())) +
                                  "' must be int");
        return nullptr;
      }
      Result = Prog.types().getInt();
    }
    break;
  }
  case Expr::Kind::Arrow: {
    auto *A = cast<ArrowExpr>(E);
    Type *BaseTy = checkExpr(A->base());
    if (!BaseTy)
      return nullptr;
    if (!BaseTy->isPointer() || !BaseTy->pointee()->isStruct()) {
      Diags.error(E->loc(), "'->' requires a pointer to struct; got " +
                                BaseTy->str());
      return nullptr;
    }
    StructDecl *SD = BaseTy->pointee()->structDecl();
    int Idx = SD->fieldIndex(A->fieldName());
    if (Idx < 0) {
      Diags.error(E->loc(), "struct '" + SD->name() + "' has no field '" +
                                A->fieldName() + "'");
      return nullptr;
    }
    A->setFieldIndex(Idx);
    Result = SD->fields()[Idx].Ty;
    break;
  }
  case Expr::Kind::Index: {
    auto *Ix = cast<IndexExpr>(E);
    Type *BaseTy = checkExpr(Ix->base());
    Type *IdxTy = checkExpr(Ix->index());
    if (!BaseTy || !IdxTy)
      return nullptr;
    if (!BaseTy->isPointer() || BaseTy->pointee()->isVoid()) {
      Diags.error(E->loc(), "subscript requires a pointer; got " +
                                BaseTy->str());
      return nullptr;
    }
    if (BaseTy->pointee()->isStruct()) {
      Diags.error(E->loc(), "arrays of structs are accessed via pointer "
                            "elements; use an array of pointers");
      return nullptr;
    }
    if (!IdxTy->isInt()) {
      Diags.error(Ix->index()->loc(), "array index must be int");
      return nullptr;
    }
    Result = BaseTy->pointee();
    break;
  }
  case Expr::Kind::Call: {
    auto *C = cast<CallExpr>(E);
    FunctionDecl *Callee = Prog.findFunction(C->calleeName());
    if (!Callee) {
      Diags.error(E->loc(), "call to undeclared function '" +
                                C->calleeName() + "'");
      return nullptr;
    }
    C->setCallee(Callee);
    if (!checkCallArgs(Callee, C->args(), E->loc(), "call"))
      return nullptr;
    Result = Callee->returnType();
    break;
  }
  case Expr::Kind::New: {
    auto *N = cast<NewExpr>(E);
    Type *ElemTy = nullptr;
    if (N->isIntElem()) {
      ElemTy = Prog.types().getInt();
    } else {
      StructDecl *SD = Prog.findStruct(N->typeName());
      if (!SD) {
        Diags.error(E->loc(), "unknown struct type '" + N->typeName() + "'");
        return nullptr;
      }
      N->setElemStruct(SD);
      ElemTy = Prog.types().getStruct(SD);
    }
    for (unsigned I = 0; I < N->ptrDepth(); ++I)
      ElemTy = Prog.types().getPointer(ElemTy);
    if (N->arraySize()) {
      Type *SizeTy = checkExpr(N->arraySize());
      if (!SizeTy)
        return nullptr;
      if (!SizeTy->isInt()) {
        Diags.error(N->arraySize()->loc(), "array size must be int");
        return nullptr;
      }
      if (ElemTy->isStruct()) {
        Diags.error(E->loc(), "arrays of structs are not supported; "
                              "allocate an array of pointers instead");
        return nullptr;
      }
    }
    Result = Prog.types().getPointer(ElemTy);
    break;
  }
  }
  E->setType(Result);
  return Result;
}

bool SemaChecker::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case Stmt::Kind::Block: {
    auto *B = cast<BlockStmt>(S);
    pushScope();
    for (const StmtPtr &Child : B->stmts()) {
      if (!checkStmt(Child.get())) {
        popScope();
        return false;
      }
    }
    popScope();
    return true;
  }
  case Stmt::Kind::Decl: {
    auto *D = cast<DeclStmt>(S);
    if (D->init()) {
      Type *InitTy = checkExpr(D->init());
      if (!InitTy)
        return false;
      if (!assignable(D->var()->type(), InitTy)) {
        Diags.error(S->loc(), "cannot initialize " + D->var()->type()->str() +
                                  " from " + InitTy->str());
        return false;
      }
    }
    return declare(D->var());
  }
  case Stmt::Kind::Assign: {
    auto *A = cast<AssignStmt>(S);
    Type *LhsTy = checkExpr(A->lhs());
    Type *RhsTy = checkExpr(A->rhs());
    if (!LhsTy || !RhsTy)
      return false;
    if (!isLvalue(A->lhs())) {
      Diags.error(A->lhs()->loc(), "left side of '=' is not assignable");
      return false;
    }
    if (!assignable(LhsTy, RhsTy)) {
      Diags.error(S->loc(), "cannot assign " + RhsTy->str() + " to " +
                                LhsTy->str());
      return false;
    }
    return true;
  }
  case Stmt::Kind::ExprStmt: {
    auto *ES = cast<ExprStmt>(S);
    if (!isa<CallExpr>(ES->expr())) {
      Diags.error(S->loc(), "expression statements must be calls");
      return false;
    }
    return checkExpr(ES->expr()) != nullptr;
  }
  case Stmt::Kind::If: {
    auto *I = cast<IfStmt>(S);
    Type *CondTy = checkExpr(I->cond());
    if (!CondTy)
      return false;
    if (!CondTy->isBool()) {
      Diags.error(I->cond()->loc(), "if condition must be a comparison");
      return false;
    }
    if (!checkStmt(I->thenStmt()))
      return false;
    return !I->elseStmt() || checkStmt(I->elseStmt());
  }
  case Stmt::Kind::While: {
    auto *W = cast<WhileStmt>(S);
    Type *CondTy = checkExpr(W->cond());
    if (!CondTy)
      return false;
    if (!CondTy->isBool()) {
      Diags.error(W->cond()->loc(), "while condition must be a comparison");
      return false;
    }
    return checkStmt(W->body());
  }
  case Stmt::Kind::Return: {
    auto *R = cast<ReturnStmt>(S);
    Type *RetTy = CurFunction->returnType();
    if (!R->value()) {
      if (!RetTy->isVoid()) {
        Diags.error(S->loc(), "non-void function must return a value");
        return false;
      }
      return true;
    }
    if (RetTy->isVoid()) {
      Diags.error(S->loc(), "void function cannot return a value");
      return false;
    }
    Type *ValueTy = checkExpr(R->value());
    if (!ValueTy)
      return false;
    if (!assignable(RetTy, ValueTy)) {
      Diags.error(S->loc(), "cannot return " + ValueTy->str() + " from a "
                            "function returning " + RetTy->str());
      return false;
    }
    return true;
  }
  case Stmt::Kind::Atomic: {
    auto *A = cast<AtomicStmt>(S);
    ++AtomicDepth;
    bool Ok = checkStmt(A->body());
    --AtomicDepth;
    return Ok;
  }
  case Stmt::Kind::Spawn: {
    auto *Sp = cast<SpawnStmt>(S);
    if (AtomicDepth != 0) {
      Diags.error(S->loc(), "spawn is not allowed inside an atomic section");
      return false;
    }
    FunctionDecl *Callee = Prog.findFunction(Sp->calleeName());
    if (!Callee) {
      Diags.error(S->loc(), "spawn of undeclared function '" +
                                Sp->calleeName() + "'");
      return false;
    }
    if (!Callee->returnType()->isVoid()) {
      Diags.error(S->loc(), "spawned functions must return void");
      return false;
    }
    Sp->setCallee(Callee);
    return checkCallArgs(Callee, Sp->args(), S->loc(), "spawn");
  }
  case Stmt::Kind::Assert: {
    auto *As = cast<AssertStmt>(S);
    Type *CondTy = checkExpr(As->cond());
    if (!CondTy)
      return false;
    if (!CondTy->isBool()) {
      Diags.error(As->cond()->loc(), "assert condition must be a comparison");
      return false;
    }
    return true;
  }
  }
  return false;
}

bool SemaChecker::checkFunction(FunctionDecl *F) {
  CurFunction = F;
  AtomicDepth = 0;
  pushScope();
  bool Ok = true;
  for (const auto &Param : F->params())
    Ok = Ok && declare(Param.get());
  Ok = Ok && checkStmt(F->body());
  popScope();
  CurFunction = nullptr;
  return Ok;
}

bool SemaChecker::run() {
  // Global initializers must be compile-time constants: the interpreter
  // installs them before main runs.
  for (size_t I = 0; I < Prog.globals().size(); ++I) {
    const ExprPtr &Init = Prog.globalInits()[I];
    if (!Init)
      continue;
    VarDecl *Var = Prog.globals()[I].get();
    if (!isa<IntLitExpr>(Init.get()) && !isa<NullLitExpr>(Init.get())) {
      Diags.error(Init->loc(), "global initializers must be integer "
                               "literals or null");
      return false;
    }
    Type *InitTy = checkExpr(Init.get());
    if (!InitTy)
      return false;
    if (!assignable(Var->type(), InitTy)) {
      Diags.error(Init->loc(), "cannot initialize " + Var->type()->str() +
                                   " from " + InitTy->str());
      return false;
    }
  }

  for (const auto &F : Prog.functions())
    if (!checkFunction(F.get()))
      return false;
  return true;
}

bool lockin::runSema(Program &Prog, DiagnosticEngine &Diags) {
  SemaChecker Checker(Prog, Diags);
  return Checker.run() && !Diags.hasErrors();
}
