//===--- Sema.h - Semantic analysis -----------------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for the input language. Annotates the
/// AST in place (expression types, VarRef/Call declaration links, Arrow
/// field indices) and enforces the language restrictions that the lock
/// inference relies on (no spawn inside atomic sections, structs only
/// behind pointers, conditions are boolean).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_SEMA_H
#define LOCKIN_LANG_SEMA_H

#include "lang/Ast.h"
#include "support/Diagnostics.h"

namespace lockin {

/// Runs semantic analysis over \p Prog; returns true on success. Errors are
/// reported to \p Diags.
bool runSema(Program &Prog, DiagnosticEngine &Diags);

} // namespace lockin

#endif // LOCKIN_LANG_SEMA_H
