//===--- Token.h - Lexical tokens -------------------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the Lexer. The language
/// is the paper's input language (PLDI'08, Fig. 3) with a C-like concrete
/// syntax plus the implementation extensions documented in DESIGN.md
/// (integers, arithmetic, spawn, assert).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_TOKEN_H
#define LOCKIN_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>

namespace lockin {

enum class TokenKind {
  // Markers.
  Eof,
  Invalid,

  // Literals and identifiers.
  Identifier,
  IntLiteral,

  // Keywords.
  KwStruct,
  KwInt,
  KwVoid,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwAtomic,
  KwNew,
  KwNull,
  KwSpawn,
  KwAssert,

  // Punctuation and operators.
  LBrace,
  RBrace,
  LParen,
  RParen,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Assign,    // =
  Star,      // *
  Amp,       // &
  Plus,      // +
  Minus,     // -
  Slash,     // /
  Percent,   // %
  Arrow,     // ->
  EqEq,      // ==
  NotEq,     // !=
  Less,      // <
  LessEq,    // <=
  Greater,   // >
  GreaterEq, // >=
  AmpAmp,    // &&
  PipePipe,  // ||
  Bang,      // !
};

/// Returns a human-readable name for \p Kind, used in parse diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text is only populated for identifiers; IntValue only
/// for integer literals.
struct Token {
  TokenKind Kind = TokenKind::Invalid;
  SourceLoc Loc;
  std::string Text;
  int64_t IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace lockin

#endif // LOCKIN_LANG_TOKEN_H
