//===--- Type.cpp - Types of the input language ----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "lang/Type.h"

using namespace lockin;

std::string Type::str() const {
  switch (K) {
  case Kind::Int:
    return "int";
  case Kind::Bool:
    return "bool";
  case Kind::Void:
    return "void";
  case Kind::Struct:
    return SD->name();
  case Kind::Pointer:
    return Pointee->str() + "*";
  }
  return "<invalid>";
}

TypeContext::TypeContext() {
  IntTy = create(Type::Kind::Int);
  BoolTy = create(Type::Kind::Bool);
  VoidTy = create(Type::Kind::Void);
}

Type *TypeContext::getStruct(StructDecl *SD) {
  Type *&Slot = StructTypes[SD];
  if (!Slot) {
    Slot = create(Type::Kind::Struct);
    Slot->SD = SD;
  }
  return Slot;
}

Type *TypeContext::getPointer(Type *Pointee) {
  Type *&Slot = PointerTypes[Pointee];
  if (!Slot) {
    Slot = create(Type::Kind::Pointer);
    Slot->Pointee = Pointee;
  }
  return Slot;
}
