//===--- Type.h - Types of the input language -------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input language's type system: int, bool (the type of conditions,
/// never stored), void (function returns), named structs (only used behind
/// pointers), and pointers. Types are uniqued by a TypeContext so pointer
/// equality is type equality.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LANG_TYPE_H
#define LOCKIN_LANG_TYPE_H

#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockin {

class Type;

/// A named struct type declaration; fields give symbolic offsets, exactly
/// the offset domain F of the paper's language (Fig. 3).
class StructDecl {
public:
  struct Field {
    std::string Name;
    Type *Ty;
  };

  StructDecl(std::string Name, SourceLoc Loc)
      : Name(std::move(Name)), Loc(Loc) {}

  const std::string &name() const { return Name; }
  SourceLoc loc() const { return Loc; }

  void addField(std::string FieldName, Type *Ty) {
    Fields.push_back({std::move(FieldName), Ty});
  }

  const std::vector<Field> &fields() const { return Fields; }

  /// Returns the index of \p FieldName, or -1 if absent.
  int fieldIndex(const std::string &FieldName) const {
    for (size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == FieldName)
        return static_cast<int>(I);
    return -1;
  }

private:
  std::string Name;
  SourceLoc Loc;
  std::vector<Field> Fields;
};

/// A uniqued type. Compare with ==; the context guarantees canonicity.
class Type {
public:
  enum class Kind { Int, Bool, Void, Struct, Pointer };

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isVoid() const { return K == Kind::Void; }
  bool isStruct() const { return K == Kind::Struct; }
  bool isPointer() const { return K == Kind::Pointer; }

  /// The pointed-to type; only valid for pointers.
  Type *pointee() const {
    assert(isPointer() && "pointee() on non-pointer");
    return Pointee;
  }

  /// The struct declaration; only valid for struct types.
  StructDecl *structDecl() const {
    assert(isStruct() && "structDecl() on non-struct");
    return SD;
  }

  /// Renders the type in source syntax, e.g. "elem*" or "int**".
  std::string str() const;

private:
  friend class TypeContext;
  explicit Type(Kind K) : K(K) {}

  Kind K;
  StructDecl *SD = nullptr;
  Type *Pointee = nullptr;
};

/// Owns and uniques all Type instances for one program.
class TypeContext {
public:
  TypeContext();

  Type *getInt() { return IntTy; }
  Type *getBool() { return BoolTy; }
  Type *getVoid() { return VoidTy; }
  Type *getStruct(StructDecl *SD);
  Type *getPointer(Type *Pointee);

private:
  Type *create(Type::Kind K) {
    Owned.push_back(std::unique_ptr<Type>(new Type(K)));
    return Owned.back().get();
  }

  std::vector<std::unique_ptr<Type>> Owned;
  Type *IntTy;
  Type *BoolTy;
  Type *VoidTy;
  std::unordered_map<StructDecl *, Type *> StructTypes;
  std::unordered_map<Type *, Type *> PointerTypes;
};

} // namespace lockin

#endif // LOCKIN_LANG_TYPE_H
