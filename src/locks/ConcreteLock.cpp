//===--- ConcreteLock.cpp - Denotational lock semantics -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "locks/ConcreteLock.h"

#include <algorithm>

using namespace lockin;

ConcreteLock ConcreteLock::meet(const ConcreteLock &Other) const {
  Effect E = (Eff == Effect::RO || Other.Eff == Effect::RO) ? Effect::RO
                                                            : Effect::RW;
  if (Universe && Other.Universe)
    return ConcreteLock(true, {}, E);
  if (Universe)
    return ConcreteLock(false, Other.Locs, E);
  if (Other.Universe)
    return ConcreteLock(false, Locs, E);
  std::set<Loc> Common;
  std::set_intersection(Locs.begin(), Locs.end(), Other.Locs.begin(),
                        Other.Locs.end(),
                        std::inserter(Common, Common.begin()));
  return ConcreteLock(false, std::move(Common), E);
}

ConcreteLock ConcreteLock::join(const ConcreteLock &Other) const {
  Effect E = effectJoin(Eff, Other.Eff);
  if (Universe || Other.Universe)
    return ConcreteLock(true, {}, E);
  std::set<Loc> All = Locs;
  All.insert(Other.Locs.begin(), Other.Locs.end());
  return ConcreteLock(false, std::move(All), E);
}

bool ConcreteLock::leq(const ConcreteLock &Other) const {
  if (!effectLeq(Eff, Other.Eff))
    return false;
  if (Other.Universe)
    return true;
  if (Universe)
    return false;
  return std::includes(Other.Locs.begin(), Other.Locs.end(), Locs.begin(),
                       Locs.end());
}

std::string ConcreteLock::str() const {
  std::string Out = "(";
  if (Universe) {
    Out += "Loc";
  } else {
    Out += "{";
    bool First = true;
    for (Loc L : Locs) {
      if (!First)
        Out += ",";
      First = false;
      Out += std::to_string(L);
    }
    Out += "}";
  }
  Out += ", ";
  Out += effectName(Eff);
  return Out + ")";
}

bool lockin::locksConflict(const ConcreteLock &A, const ConcreteLock &B) {
  // conflict(la, lb) <=> [[la]] ⊓ [[lb]] != (∅, _) ∧ [[la]] ⊔ [[lb]] != (_, ro)
  ConcreteLock Meet = A.meet(B);
  if (Meet.empty())
    return false;
  return effectJoin(A.effect(), B.effect()) != Effect::RO;
}

bool lockin::lockCoarserThan(const ConcreteLock &B, const ConcreteLock &A) {
  return A.leq(B);
}
