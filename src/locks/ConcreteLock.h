//===--- ConcreteLock.h - Denotational lock semantics -----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable model of the concrete lock semantics of §3.2:
/// [[l]] : 2^Loc × Eff. Locations are abstract integers. This model backs
/// the unit/property tests for conflict, coarser-than, lock pairs, and the
/// soundness conditions that relate abstract schemes to concrete locks; the
/// runtime uses the same definitions specialized to real addresses.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_CONCRETELOCK_H
#define LOCKIN_LOCKS_CONCRETELOCK_H

#include "locks/Effect.h"

#include <cstdint>
#include <set>
#include <string>

namespace lockin {

/// The denotation of one lock: a set of protected locations and the
/// allowed effect. Universe encodes Loc (the set of all locations) without
/// enumerating it.
class ConcreteLock {
public:
  using Loc = uint64_t;

  /// [[l_g]] = (Loc, rw): the global lock.
  static ConcreteLock global() { return ConcreteLock(true, {}, Effect::RW); }
  /// A lock protecting exactly \p Locs with effect \p Eff.
  static ConcreteLock of(std::set<Loc> Locs, Effect Eff) {
    return ConcreteLock(false, std::move(Locs), Eff);
  }
  /// A fine-grain lock: a single location.
  static ConcreteLock fine(Loc L, Effect Eff) {
    return ConcreteLock(false, {L}, Eff);
  }
  /// A read lock / write lock over all locations (§3.2 examples).
  static ConcreteLock globalRead() {
    return ConcreteLock(true, {}, Effect::RO);
  }

  bool isUniverse() const { return Universe; }
  const std::set<Loc> &locations() const { return Locs; }
  Effect effect() const { return Eff; }

  bool protects(Loc L) const { return Universe || Locs.count(L) != 0; }
  bool isFineGrain() const { return !Universe && Locs.size() == 1; }
  bool empty() const { return !Universe && Locs.empty(); }

  /// The lattice meet ([[l1]] ⊓ [[l2]]): used by lock pairs.
  ConcreteLock meet(const ConcreteLock &Other) const;
  /// The lattice join.
  ConcreteLock join(const ConcreteLock &Other) const;
  /// The lattice order [[this]] ⊑ [[Other]].
  bool leq(const ConcreteLock &Other) const;

  std::string str() const;

private:
  ConcreteLock(bool Universe, std::set<Loc> Locs, Effect Eff)
      : Universe(Universe), Locs(std::move(Locs)), Eff(Eff) {}

  bool Universe;
  std::set<Loc> Locs;
  Effect Eff;
};

/// §3.2: two locks conflict if they protect a common location and at least
/// one allows writes.
bool locksConflict(const ConcreteLock &A, const ConcreteLock &B);

/// §3.2: B is coarser than A iff [[A]] ⊑ [[B]].
bool lockCoarserThan(const ConcreteLock &B, const ConcreteLock &A);

} // namespace lockin

#endif // LOCKIN_LOCKS_CONCRETELOCK_H
