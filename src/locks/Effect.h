//===--- Effect.h - Access effects ------------------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-point effect lattice Eff = {ro, rw} of §3.2, with ro ⊑ rw.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_EFFECT_H
#define LOCKIN_LOCKS_EFFECT_H

namespace lockin {

enum class Effect : unsigned char { RO = 0, RW = 1 };

/// ro ⊑ rw; the lattice order of the effect component.
inline bool effectLeq(Effect A, Effect B) {
  return A == Effect::RO || B == Effect::RW;
}

inline Effect effectJoin(Effect A, Effect B) {
  return (A == Effect::RW || B == Effect::RW) ? Effect::RW : Effect::RO;
}

inline const char *effectName(Effect E) {
  return E == Effect::RO ? "ro" : "rw";
}

} // namespace lockin

#endif // LOCKIN_LOCKS_EFFECT_H
