//===--- Interner.cpp - Hash-consing of lock paths -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "locks/Interner.h"

#include <cassert>

using namespace lockin;
using namespace lockin::ir;

// Mirrors the hashCombine in LockExpr.cpp; construction-time hashes and
// IdxExpr::deepHash must agree so sharing and legacy nodes hash alike.
static size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

IdxExpr *LockInterner::newIdx() {
  // IdxExpr's constructor is private (friend access); it is trivially
  // destructible, so the arena needs no destructor registration.
  void *Mem = Arena.allocate(sizeof(IdxExpr), alignof(IdxExpr));
  return ::new (Mem) IdxExpr();
}

IdxExpr::Ptr LockInterner::idxConst(int64_t Value) {
  size_t H = hashCombine(static_cast<size_t>(IdxExpr::Kind::Const),
                         static_cast<size_t>(Value));
  std::lock_guard<std::mutex> Lock(Mu);
  if (Share) {
    for (IdxExpr::Ptr E : IdxTable[H])
      if (E->kind() == IdxExpr::Kind::Const && E->constValue() == Value) {
        ++Counters.IdxHits;
        return E;
      }
  }
  IdxExpr *E = newIdx();
  E->K = IdxExpr::Kind::Const;
  E->Value = Value;
  E->Sz = 1;
  E->H = H;
  E->Shared = Share;
  ++Counters.IdxNodes;
  if (Share)
    IdxTable[H].push_back(E);
  return E;
}

IdxExpr::Ptr LockInterner::idxVar(const Variable *Var) {
  assert(Var && "null index variable");
  size_t H = hashCombine(static_cast<size_t>(IdxExpr::Kind::VarVal),
                         reinterpret_cast<size_t>(Var));
  std::lock_guard<std::mutex> Lock(Mu);
  if (Share) {
    for (IdxExpr::Ptr E : IdxTable[H])
      if (E->kind() == IdxExpr::Kind::VarVal && E->var() == Var) {
        ++Counters.IdxHits;
        return E;
      }
  }
  IdxExpr *E = newIdx();
  E->K = IdxExpr::Kind::VarVal;
  E->Var = Var;
  E->VarMask = varBit(Var);
  E->Sz = 1;
  E->H = H;
  E->Shared = Share;
  ++Counters.IdxNodes;
  if (Share)
    IdxTable[H].push_back(E);
  return E;
}

IdxExpr::Ptr LockInterner::idxBin(IntBinOp Op, IdxExpr::Ptr Lhs,
                                  IdxExpr::Ptr Rhs) {
  assert(Lhs && Rhs && "null index operand");
  size_t H = static_cast<size_t>(IdxExpr::Kind::Bin);
  H = hashCombine(H, static_cast<size_t>(Op));
  H = hashCombine(H, Lhs->hash());
  H = hashCombine(H, Rhs->hash());
  std::lock_guard<std::mutex> Lock(Mu);
  if (Share) {
    // Operands of interned expressions are canonical, so child identity is
    // pointer identity.
    for (IdxExpr::Ptr E : IdxTable[H])
      if (E->kind() == IdxExpr::Kind::Bin && E->op() == Op &&
          E->lhs() == Lhs && E->rhs() == Rhs) {
        ++Counters.IdxHits;
        return E;
      }
  }
  IdxExpr *E = newIdx();
  E->K = IdxExpr::Kind::Bin;
  E->Op = Op;
  E->Lhs = Lhs;
  E->Rhs = Rhs;
  E->VarMask = Lhs->varMask() | Rhs->varMask();
  E->Sz = 1 + Lhs->size() + Rhs->size();
  E->H = H;
  E->Shared = Share;
  ++Counters.IdxNodes;
  if (Share)
    IdxTable[H].push_back(E);
  return E;
}

const LockPathNode *LockInterner::intern(const LockExpr &Path) {
  size_t H = Path.hash();
  std::lock_guard<std::mutex> Lock(Mu);
  if (Share) {
    for (const LockPathNode *N : PathTable[H])
      if (N->Path == Path) {
        ++Counters.PathHits;
        return N;
      }
  }
  const LockPathNode *N =
      Arena.create<LockPathNode>(Path, NextId++, H, Share);
  ++Counters.PathNodes;
  if (Share)
    PathTable[H].push_back(N);
  return N;
}

LockInterner::Stats LockInterner::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  Stats S = Counters;
  S.ArenaBytes = Arena.bytesAllocated();
  return S;
}
