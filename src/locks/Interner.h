//===--- Interner.h - Hash-consing of lock paths ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LockInterner is the single construction point for IdxExpr trees and
/// interned lock paths (LockPathNode). In sharing mode (the default) it
/// hash-conses: structurally equal index expressions come back as the same
/// arena node, and structurally equal paths come back as the same
/// LockPathNode carrying a dense 32-bit LockId. That makes LockName a
/// small POD whose path equality is a pointer compare and whose hash is a
/// field read, which is what lets the Fig.-4 transfer functions and the
/// SCC summary maps scale to megaprograms.
///
/// With sharing off (used only by bench_mega's legacy toggle) every call
/// allocates a fresh node with Shared=false, restoring the pre-refactor
/// costs: deep structural hashing and comparison on every use, one
/// allocation per construction.
///
/// Thread-safe: one inference run shares a single interner across its
/// worker pool; all mutation is serialized by an internal mutex. Interned
/// pointers stay valid for the interner's lifetime (the inference result
/// keeps the interner alive via shared_ptr).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_INTERNER_H
#define LOCKIN_LOCKS_INTERNER_H

#include "locks/LockExpr.h"
#include "support/Arena.h"

#include <mutex>
#include <unordered_map>
#include <vector>

namespace lockin {

class LockInterner {
public:
  struct Stats {
    uint64_t IdxNodes = 0;  ///< distinct IdxExpr nodes allocated
    uint64_t IdxHits = 0;   ///< constructions answered by an existing node
    uint64_t PathNodes = 0; ///< distinct lock paths interned
    uint64_t PathHits = 0;  ///< interns answered by an existing node
    uint64_t ArenaBytes = 0;

    uint64_t nodes() const { return IdxNodes + PathNodes; }
    uint64_t hits() const { return IdxHits + PathHits; }
  };

  explicit LockInterner(bool Share = true) : Share(Share) {}

  bool sharing() const { return Share; }

  /// IdxExpr construction (replaces the old IdxExpr::make* factories).
  IdxExpr::Ptr idxConst(int64_t Value);
  IdxExpr::Ptr idxVar(const ir::Variable *Var);
  IdxExpr::Ptr idxBin(ir::IntBinOp Op, IdxExpr::Ptr Lhs, IdxExpr::Ptr Rhs);

  /// Returns the canonical node for \p Path, interning it on first sight.
  const LockPathNode *intern(const LockExpr &Path);

  Stats stats() const;

private:
  IdxExpr *newIdx();

  bool Share;
  mutable std::mutex Mu;
  support::BumpArena Arena;

  // Hash buckets; collisions are resolved by a structural scan. Children
  // of canonical nodes are themselves canonical, so the IdxExpr scan
  // compares child pointers.
  std::unordered_map<size_t, std::vector<IdxExpr::Ptr>> IdxTable;
  std::unordered_map<size_t, std::vector<const LockPathNode *>> PathTable;
  LockId NextId = 1; // 0 reserved for "no path"
  Stats Counters;
};

} // namespace lockin

#endif // LOCKIN_LOCKS_INTERNER_H
