//===--- LockExpr.cpp - Expression locks (paths) -------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "locks/LockExpr.h"

#include <cassert>

using namespace lockin;
using namespace lockin::ir;

//===----------------------------------------------------------------------===//
// IdxExpr
//===----------------------------------------------------------------------===//

bool IdxExpr::equals(const IdxExpr &Other) const {
  // Canonical nodes of one interner are unique per structure, so equal
  // structures arrive here as the same pointer.
  if (this == &Other)
    return true;
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Const:
    return Value == Other.Value;
  case Kind::VarVal:
    return Var == Other.Var;
  case Kind::Bin:
    return Op == Other.Op && Lhs->equals(*Other.Lhs) &&
           Rhs->equals(*Other.Rhs);
  }
  return false;
}

bool IdxExpr::mentionsVar(const Variable *V) const {
  switch (K) {
  case Kind::Const:
    return false;
  case Kind::VarVal:
    return Var == V;
  case Kind::Bin:
    return Lhs->mentionsVar(V) || Rhs->mentionsVar(V);
  }
  return false;
}

static const char *intBinOpSpelling(IntBinOp Op) {
  switch (Op) {
  case IntBinOp::Add:
    return "+";
  case IntBinOp::Sub:
    return "-";
  case IntBinOp::Mul:
    return "*";
  case IntBinOp::Div:
    return "/";
  case IntBinOp::Rem:
    return "%";
  }
  return "?";
}

std::string IdxExpr::str() const {
  switch (K) {
  case Kind::Const:
    return std::to_string(Value);
  case Kind::VarVal:
    return Var->name();
  case Kind::Bin:
    return "(" + Lhs->str() + " " + intBinOpSpelling(Op) + " " + Rhs->str() +
           ")";
  }
  return "?";
}

static size_t hashCombine(size_t Seed, size_t Value) {
  return Seed ^ (Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2));
}

size_t IdxExpr::deepHash() const {
  size_t H = static_cast<size_t>(K);
  switch (K) {
  case Kind::Const:
    return hashCombine(H, static_cast<size_t>(Value));
  case Kind::VarVal:
    return hashCombine(H, reinterpret_cast<size_t>(Var));
  case Kind::Bin:
    H = hashCombine(H, static_cast<size_t>(Op));
    H = hashCombine(H, Lhs->hash());
    return hashCombine(H, Rhs->hash());
  }
  return H;
}

//===----------------------------------------------------------------------===//
// LockOp / LockExpr
//===----------------------------------------------------------------------===//

bool LockOp::operator==(const LockOp &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Deref:
    return true;
  case Kind::Field:
    return Struct == Other.Struct && FieldIdx == Other.FieldIdx;
  case Kind::Index:
    return Idx->equals(*Other.Idx);
  }
  return false;
}

LockExpr LockExpr::withPrefix(const LockExpr &NewPrefix,
                              size_t PrefixLen) const {
  assert(PrefixLen <= Ops.size() && "prefix longer than path");
  LockExpr Result = NewPrefix;
  Result.Ops.reserve(Result.Ops.size() + (Ops.size() - PrefixLen));
  Result.Ops.insert(Result.Ops.end(), Ops.begin() + PrefixLen, Ops.end());
  return Result;
}

unsigned LockExpr::size() const {
  unsigned Size = 0;
  for (const LockOp &Op : Ops) {
    switch (Op.K) {
    case LockOp::Kind::Deref:
    case LockOp::Kind::Field:
      Size += 1;
      break;
    case LockOp::Kind::Index:
      Size += Op.Idx->size();
      break;
    }
  }
  return Size;
}

bool LockExpr::operator==(const LockExpr &Other) const {
  return Base == Other.Base && Ops == Other.Ops;
}

size_t LockExpr::hash() const {
  size_t H = reinterpret_cast<size_t>(Base);
  for (const LockOp &Op : Ops) {
    H = hashCombine(H, static_cast<size_t>(Op.K));
    switch (Op.K) {
    case LockOp::Kind::Deref:
      break;
    case LockOp::Kind::Field:
      H = hashCombine(H, static_cast<size_t>(Op.FieldIdx));
      break;
    case LockOp::Kind::Index:
      H = hashCombine(H, Op.Idx->hash());
      break;
    }
  }
  return H;
}

std::string LockExpr::str() const {
  // The empty path is the address lock &x; each deref peels one &.
  std::string Out = "&" + Base->name();
  for (const LockOp &Op : Ops) {
    switch (Op.K) {
    case LockOp::Kind::Deref:
      if (Out.size() > 1 && Out[0] == '&') {
        Out = Out.substr(1); // *&x == x
      } else {
        Out = "*(" + Out + ")";
      }
      break;
    case LockOp::Kind::Field:
      Out = "(" + Out + ")." + Op.Struct->fields()[Op.FieldIdx].Name;
      break;
    case LockOp::Kind::Index:
      Out = "(" + Out + ")[" + Op.Idx->str() + "]";
      break;
    }
  }
  return Out;
}
