//===--- LockExpr.h - Expression locks (paths) ------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grain expression locks. A LockExpr is the inductive lock
/// construction of §3.3 applied to one expression: starting from the base
/// lock x̄ (which protects the cell &x), each op applies *_p^ε or +_p^ε.
/// Evaluating the path in a program state yields the single location the
/// lock protects, so these are fine-grain locks in the formal sense.
///
/// Array offsets carry a small integer index expression (IdxExpr) over
/// program variables and constants: these are the "computed offsets" a real
/// compiler sees for t->buckets[key % n]. The index contributes to the
/// k-limit size, and index variables are rewritten by the same backward
/// transfer machinery as pointer components.
///
/// Representation: IdxExpr nodes are immutable and created only by a
/// LockInterner (locks/Interner.h), which hash-conses them into an arena —
/// structurally equal index trees are one node, so equality is usually a
/// pointer compare and hash() reads a precomputed field. Whole paths are
/// likewise interned into LockPathNode flyweights identified by a 32-bit
/// LockId; LockName holds a pointer to the canonical node instead of an
/// inline copy of the path.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_LOCKEXPR_H
#define LOCKIN_LOCKS_LOCKEXPR_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lockin {

class LockInterner;

/// Bloom bit of one program variable in a path's 64-bit variable mask.
/// The transfer functions test the mask to skip locks a statement cannot
/// affect; false positives only cost the precise re-check, never
/// correctness.
inline uint64_t varBit(const ir::Variable *V) {
  return 1ull << ((reinterpret_cast<uintptr_t>(V) >> 4) & 63);
}

//===----------------------------------------------------------------------===//
// Index expressions
//===----------------------------------------------------------------------===//

/// Immutable integer expression tree used in array-offset lock components.
/// Nodes live in a LockInterner's arena and are shared by plain pointer;
/// within one interner in sharing mode, structural equality coincides with
/// pointer equality.
class IdxExpr {
public:
  enum class Kind { Const, VarVal, Bin };
  using Ptr = const IdxExpr *;

  Kind kind() const { return K; }
  int64_t constValue() const { return Value; }
  const ir::Variable *var() const { return Var; }
  ir::IntBinOp op() const { return Op; }
  Ptr lhs() const { return Lhs; }
  Ptr rhs() const { return Rhs; }

  /// Number of nodes; contributes to the k-limit. Precomputed.
  unsigned size() const { return Sz; }
  bool equals(const IdxExpr &Other) const;
  /// True if \p V appears as a VarVal leaf.
  bool mentionsVar(const ir::Variable *V) const;
  std::string str() const;
  /// O(1) for hash-consed nodes; the bench's legacy (non-sharing) mode
  /// recomputes the structural hash on every call, as the pre-interner
  /// representation did.
  size_t hash() const { return Shared ? H : deepHash(); }
  /// Bloom mask over the VarVal leaves (union of the children's masks,
  /// folded at construction).
  uint64_t varMask() const { return VarMask; }

private:
  friend class LockInterner;
  IdxExpr() = default;

  size_t deepHash() const;

  Kind K = Kind::Const;
  bool Shared = false; ///< canonical (hash-consed) node: H is valid
  unsigned Sz = 1;
  size_t H = 0;
  uint64_t VarMask = 0;
  int64_t Value = 0;
  const ir::Variable *Var = nullptr;
  ir::IntBinOp Op = ir::IntBinOp::Add;
  Ptr Lhs = nullptr;
  Ptr Rhs = nullptr;
};

//===----------------------------------------------------------------------===//
// Lock path expressions
//===----------------------------------------------------------------------===//

/// One step of a lock path. Trivially copyable: the index expression is a
/// pointer into the interner's arena.
struct LockOp {
  enum class Kind { Deref, Field, Index };

  Kind K;
  // Field: the struct and field index (for printing and identity).
  const StructDecl *Struct = nullptr;
  int FieldIdx = -1;
  // Index: the offset expression.
  IdxExpr::Ptr Idx = nullptr;

  static LockOp deref() { return {Kind::Deref, nullptr, -1, nullptr}; }
  static LockOp field(const StructDecl *SD, int Idx) {
    return {Kind::Field, SD, Idx, nullptr};
  }
  static LockOp index(IdxExpr::Ptr Idx) {
    return {Kind::Index, nullptr, -1, Idx};
  }

  bool operator==(const LockOp &Other) const;
};

/// A lock path: base variable plus a sequence of ops. The empty path is the
/// lock x̄ protecting the cell &base; each Deref moves to the pointed-to
/// cell, each Field/Index moves within an object.
class LockExpr {
public:
  explicit LockExpr(const ir::Variable *Base) : Base(Base) {}
  LockExpr(const ir::Variable *Base, std::vector<LockOp> Ops)
      : Base(Base), Ops(std::move(Ops)) {}

  const ir::Variable *base() const { return Base; }
  const std::vector<LockOp> &ops() const { return Ops; }

  LockExpr plusDeref() const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::deref());
    return E;
  }
  LockExpr plusField(const StructDecl *SD, int Idx) const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::field(SD, Idx));
    return E;
  }
  LockExpr plusIndex(IdxExpr::Ptr Idx) const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::index(Idx));
    return E;
  }

  /// Builds a new path with the first \p PrefixLen ops replaced by
  /// \p NewPrefix (base and ops); the remaining ops are appended.
  LockExpr withPrefix(const LockExpr &NewPrefix, size_t PrefixLen) const;

  /// Expression length for k-limiting: every Deref and Field counts 1;
  /// Index ops count the size of their index expression.
  unsigned size() const;

  /// True if the first Op is a Deref (i.e. the path depends on the value of
  /// the base variable rather than only its address).
  bool startsWithDeref() const {
    return !Ops.empty() && Ops.front().K == LockOp::Kind::Deref;
  }

  bool operator==(const LockExpr &Other) const;
  size_t hash() const;

  /// Bloom mask over every variable the path reads: the base plus all
  /// index-expression leaves. O(#ops): index subtrees carry precomputed
  /// masks.
  uint64_t varMask() const {
    uint64_t M = varBit(Base);
    for (const LockOp &Op : Ops)
      if (Op.K == LockOp::Kind::Index && Op.Idx)
        M |= Op.Idx->varMask();
    return M;
  }

  /// Source-ish rendering, e.g. "*((*t) + .buckets @ (key % 16))".
  std::string str() const;

private:
  const ir::Variable *Base;
  std::vector<LockOp> Ops;
};

//===----------------------------------------------------------------------===//
// Interned path flyweight
//===----------------------------------------------------------------------===//

/// Dense identity of an interned lock path, unique within one interner
/// while sharing is on.
using LockId = uint32_t;

/// A lock path interned into a LockInterner's arena. In sharing mode there
/// is one canonical node per distinct path, so LockName equality over
/// paths is a pointer compare and Hash is read, not recomputed. In the
/// bench's legacy mode every construction gets a fresh node with
/// Shared=false, restoring the pre-refactor deep-compare/deep-hash costs.
struct LockPathNode {
  LockExpr Path;
  LockId Id = 0;
  size_t Hash = 0; ///< == Path.hash(); valid only when Shared
  /// Bloom mask of the variables the path reads; one fold per canonical
  /// node in sharing mode, one per construction in legacy mode (as the
  /// pre-refactor representation paid per check).
  uint64_t VarMask = 0;
  bool Shared = false;

  LockPathNode(LockExpr P, LockId Id, size_t Hash, bool Shared)
      : Path(std::move(P)), Id(Id), Hash(Hash), VarMask(Path.varMask()),
        Shared(Shared) {}

  size_t hash() const { return Shared ? Hash : Path.hash(); }
};

/// True if the two nodes denote the same path. Pointer equality settles it
/// for canonical nodes; otherwise falls back to structural comparison.
inline bool samePath(const LockPathNode *A, const LockPathNode *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  if (A->Shared && B->Shared && A->Hash != B->Hash)
    return false;
  return A->Path == B->Path;
}

} // namespace lockin

#endif // LOCKIN_LOCKS_LOCKEXPR_H
