//===--- LockExpr.h - Expression locks (paths) ------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grain expression locks. A LockExpr is the inductive lock
/// construction of §3.3 applied to one expression: starting from the base
/// lock x̄ (which protects the cell &x), each op applies *_p^ε or +_p^ε.
/// Evaluating the path in a program state yields the single location the
/// lock protects, so these are fine-grain locks in the formal sense.
///
/// Array offsets carry a small integer index expression (IdxExpr) over
/// program variables and constants: these are the "computed offsets" a real
/// compiler sees for t->buckets[key % n]. The index contributes to the
/// k-limit size, and index variables are rewritten by the same backward
/// transfer machinery as pointer components.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_LOCKEXPR_H
#define LOCKIN_LOCKS_LOCKEXPR_H

#include "ir/Ir.h"

#include <memory>
#include <string>
#include <vector>

namespace lockin {

//===----------------------------------------------------------------------===//
// Index expressions
//===----------------------------------------------------------------------===//

/// Immutable integer expression tree used in array-offset lock components.
/// Shared by pointer; all combinators return shared nodes.
class IdxExpr {
public:
  enum class Kind { Const, VarVal, Bin };
  using Ptr = std::shared_ptr<const IdxExpr>;

  static Ptr makeConst(int64_t Value);
  /// The runtime value of \p Var (an int variable) at evaluation time.
  static Ptr makeVar(const ir::Variable *Var);
  static Ptr makeBin(ir::IntBinOp Op, Ptr Lhs, Ptr Rhs);

  Kind kind() const { return K; }
  int64_t constValue() const { return Value; }
  const ir::Variable *var() const { return Var; }
  ir::IntBinOp op() const { return Op; }
  const Ptr &lhs() const { return Lhs; }
  const Ptr &rhs() const { return Rhs; }

  /// Number of nodes; contributes to the k-limit.
  unsigned size() const;
  bool equals(const IdxExpr &Other) const;
  /// True if \p V appears as a VarVal leaf.
  bool mentionsVar(const ir::Variable *V) const;
  std::string str() const;
  size_t hash() const;

private:
  Kind K;
  int64_t Value = 0;
  const ir::Variable *Var = nullptr;
  ir::IntBinOp Op = ir::IntBinOp::Add;
  Ptr Lhs;
  Ptr Rhs;
};

//===----------------------------------------------------------------------===//
// Lock path expressions
//===----------------------------------------------------------------------===//

/// One step of a lock path.
struct LockOp {
  enum class Kind { Deref, Field, Index };

  Kind K;
  // Field: the struct and field index (for printing and identity).
  const StructDecl *Struct = nullptr;
  int FieldIdx = -1;
  // Index: the offset expression.
  IdxExpr::Ptr Idx;

  static LockOp deref() { return {Kind::Deref, nullptr, -1, nullptr}; }
  static LockOp field(const StructDecl *SD, int Idx) {
    return {Kind::Field, SD, Idx, nullptr};
  }
  static LockOp index(IdxExpr::Ptr Idx) {
    return {Kind::Index, nullptr, -1, std::move(Idx)};
  }

  bool operator==(const LockOp &Other) const;
};

/// A lock path: base variable plus a sequence of ops. The empty path is the
/// lock x̄ protecting the cell &base; each Deref moves to the pointed-to
/// cell, each Field/Index moves within an object.
class LockExpr {
public:
  explicit LockExpr(const ir::Variable *Base) : Base(Base) {}
  LockExpr(const ir::Variable *Base, std::vector<LockOp> Ops)
      : Base(Base), Ops(std::move(Ops)) {}

  const ir::Variable *base() const { return Base; }
  const std::vector<LockOp> &ops() const { return Ops; }

  LockExpr plusDeref() const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::deref());
    return E;
  }
  LockExpr plusField(const StructDecl *SD, int Idx) const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::field(SD, Idx));
    return E;
  }
  LockExpr plusIndex(IdxExpr::Ptr Idx) const {
    LockExpr E = *this;
    E.Ops.push_back(LockOp::index(std::move(Idx)));
    return E;
  }

  /// Builds a new path with the first \p PrefixLen ops replaced by
  /// \p NewPrefix (base and ops); the remaining ops are appended.
  LockExpr withPrefix(const LockExpr &NewPrefix, size_t PrefixLen) const;

  /// Expression length for k-limiting: every Deref and Field counts 1;
  /// Index ops count the size of their index expression.
  unsigned size() const;

  /// True if the first Op is a Deref (i.e. the path depends on the value of
  /// the base variable rather than only its address).
  bool startsWithDeref() const {
    return !Ops.empty() && Ops.front().K == LockOp::Kind::Deref;
  }

  bool operator==(const LockExpr &Other) const;
  size_t hash() const;

  /// Source-ish rendering, e.g. "*((*t) + .buckets @ (key % 16))".
  std::string str() const;

private:
  const ir::Variable *Base;
  std::vector<LockOp> Ops;
};

} // namespace lockin

#endif // LOCKIN_LOCKS_LOCKEXPR_H
