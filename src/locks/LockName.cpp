//===--- LockName.cpp - The compiler's lock domain -----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "locks/LockName.h"

#include "locks/Interner.h"

using namespace lockin;

LockName LockName::fine(const LockExpr &Path, RegionId Region, Effect Eff,
                        LockInterner &Interner) {
  LockName L(Kind::Fine, Region, Eff);
  L.Node = Interner.intern(Path);
  return L;
}

bool LockName::leq(const LockName &Other) const {
  if (Other.K == Kind::Top)
    return true;
  if (K == Kind::Top)
    return false;
  if (!effectLeq(Eff, Other.Eff))
    return false;
  if (Other.K == Kind::Coarse)
    return Region != InvalidRegion && Region == Other.Region;
  // Other is fine: only a fine lock over the identical path is below it.
  return K == Kind::Fine && Region == Other.Region &&
         samePath(Node, Other.Node);
}

bool LockName::sameLockIgnoringEffect(const LockName &Other) const {
  if (K != Other.K)
    return false;
  switch (K) {
  case Kind::Top:
    return true;
  case Kind::Coarse:
    return Region == Other.Region;
  case Kind::Fine:
    return Region == Other.Region && samePath(Node, Other.Node);
  }
  return false;
}

bool LockName::operator==(const LockName &Other) const {
  return Eff == Other.Eff && sameLockIgnoringEffect(Other);
}

size_t LockName::hash() const {
  size_t H = static_cast<size_t>(K) * 0x9e3779b97f4a7c15ULL +
             static_cast<size_t>(Eff);
  H ^= static_cast<size_t>(Region) * 0xbf58476d1ce4e5b9ULL;
  if (Node)
    H ^= Node->hash();
  return H;
}

size_t LockName::classHash() const {
  size_t H = static_cast<size_t>(K) * 0x9e3779b97f4a7c15ULL;
  H ^= static_cast<size_t>(Region) * 0xbf58476d1ce4e5b9ULL;
  if (Node)
    H ^= Node->hash();
  return H;
}

std::string LockName::str() const {
  switch (K) {
  case Kind::Top:
    return "TOP";
  case Kind::Coarse:
    return "region#" + std::to_string(Region) + ":" + effectName(Eff);
  case Kind::Fine:
    return Node->Path.str() + "@region#" + std::to_string(Region) + ":" +
           effectName(Eff);
  }
  return "?";
}

RegionId lockin::evalPathRegion(const LockExpr &Path,
                                const PointsToAnalysis &PT) {
  RegionId R = PT.regionOfVarCell(Path.base());
  for (const LockOp &Op : Path.ops()) {
    if (R == InvalidRegion)
      return InvalidRegion;
    switch (Op.K) {
    case LockOp::Kind::Deref:
      R = PT.derefRegion(R);
      break;
    case LockOp::Kind::Field:
    case LockOp::Kind::Index:
      R = PT.offsetRegion(R);
      break;
    }
  }
  return R;
}
