//===--- LockName.h - The compiler's lock domain ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock names for the instantiated scheme Σ_k × Σ_≡ × Σ_ε of §4.3. The
/// relevant combinations form a tree (not a general lattice):
///
///   Top                        the global lock (Loc, rw)
///   Coarse(R, ε)               everything in points-to region R
///   Fine(path, R, ε)           the single location `path` evaluates to,
///                              which lies inside region R
///
/// leq() is the coarser-than order used by the merge operation: a fine lock
/// is below the coarse lock of its region, ro is below rw, and everything
/// is below Top.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_LOCKNAME_H
#define LOCKIN_LOCKS_LOCKNAME_H

#include "locks/Effect.h"
#include "locks/LockExpr.h"
#include "pointsto/Steensgaard.h"

#include <optional>
#include <string>

namespace lockin {

class LockName {
public:
  enum class Kind { Top, Coarse, Fine };

  static LockName top() { return LockName(Kind::Top, InvalidRegion,
                                          Effect::RW); }
  static LockName coarse(RegionId Region, Effect Eff) {
    return LockName(Kind::Coarse, Region, Eff);
  }
  static LockName fine(LockExpr Path, RegionId Region, Effect Eff) {
    LockName L(Kind::Fine, Region, Eff);
    L.Path = std::move(Path);
    return L;
  }

  Kind kind() const { return K; }
  bool isTop() const { return K == Kind::Top; }
  bool isCoarse() const { return K == Kind::Coarse; }
  bool isFine() const { return K == Kind::Fine; }

  RegionId region() const { return Region; }
  Effect effect() const { return Eff; }
  const LockExpr &path() const { return *Path; }

  /// The coarser-than partial order: this ≤ Other means Other protects at
  /// least the locations of this lock, with at least its effects.
  bool leq(const LockName &Other) const;

  /// Same lock identity modulo the effect component (used to join effects
  /// when merging sets).
  bool sameLockIgnoringEffect(const LockName &Other) const;

  /// This lock with the joined effect.
  LockName withEffect(Effect NewEff) const {
    LockName L = *this;
    L.Eff = NewEff;
    return L;
  }

  bool operator==(const LockName &Other) const;
  size_t hash() const;
  std::string str() const;

private:
  LockName(Kind K, RegionId Region, Effect Eff)
      : K(K), Region(Region), Eff(Eff) {}

  Kind K;
  RegionId Region;
  Effect Eff;
  std::optional<LockExpr> Path;
};

/// Region of the location a lock path evaluates to: start at the cell of
/// the base variable, follow pointee edges at each Deref, stay put at
/// Field/Index. InvalidRegion when the points-to graph has no edge (the
/// path can only evaluate by dereferencing a pointer that is never
/// initialized anywhere in the program).
RegionId evalPathRegion(const LockExpr &Path, const PointsToAnalysis &PT);

} // namespace lockin

#endif // LOCKIN_LOCKS_LOCKNAME_H
