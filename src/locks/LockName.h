//===--- LockName.h - The compiler's lock domain ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock names for the instantiated scheme Σ_k × Σ_≡ × Σ_ε of §4.3. The
/// relevant combinations form a tree (not a general lattice):
///
///   Top                        the global lock (Loc, rw)
///   Coarse(R, ε)               everything in points-to region R
///   Fine(path, R, ε)           the single location `path` evaluates to,
///                              which lies inside region R
///
/// leq() is the coarser-than order used by the merge operation: a fine lock
/// is below the coarse lock of its region, ro is below rw, and everything
/// is below Top.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_LOCKNAME_H
#define LOCKIN_LOCKS_LOCKNAME_H

#include "locks/Effect.h"
#include "locks/LockExpr.h"
#include "pointsto/Steensgaard.h"

#include <string>

namespace lockin {

/// A lock name is a small trivially-copyable value: kind, region, effect,
/// and (for fine locks) a pointer to the interned path flyweight. With the
/// interner in sharing mode path equality is a pointer compare and the
/// path hash is a field read, so LockName equality/hash are O(1).
class LockName {
public:
  enum class Kind { Top, Coarse, Fine };

  static LockName top() { return LockName(Kind::Top, InvalidRegion,
                                          Effect::RW); }
  static LockName coarse(RegionId Region, Effect Eff) {
    return LockName(Kind::Coarse, Region, Eff);
  }
  /// Fine lock over \p Path; the path is interned through \p Interner,
  /// which must outlive every LockName built from it.
  static LockName fine(const LockExpr &Path, RegionId Region, Effect Eff,
                       LockInterner &Interner);

  Kind kind() const { return K; }
  bool isTop() const { return K == Kind::Top; }
  bool isCoarse() const { return K == Kind::Coarse; }
  bool isFine() const { return K == Kind::Fine; }

  RegionId region() const { return Region; }
  Effect effect() const { return Eff; }
  const LockExpr &path() const { return Node->Path; }
  /// Dense interned-path identity (unique per distinct path within one
  /// interner in sharing mode).
  LockId pathId() const { return Node->Id; }

  /// Conservative O(1) test: false means the path certainly does not read
  /// \p V, so any transfer that only rewrites occurrences of V is the
  /// identity on this lock. True may be a bloom false positive; callers
  /// fall through to the precise rewrite. Fine locks only.
  bool pathMayMention(const ir::Variable *V) const {
    return (Node->VarMask & varBit(V)) != 0;
  }

  /// The coarser-than partial order: this ≤ Other means Other protects at
  /// least the locations of this lock, with at least its effects.
  bool leq(const LockName &Other) const;

  /// Same lock identity modulo the effect component (used to join effects
  /// when merging sets).
  bool sameLockIgnoringEffect(const LockName &Other) const;

  /// This lock with the joined effect.
  LockName withEffect(Effect NewEff) const {
    LockName L = *this;
    L.Eff = NewEff;
    return L;
  }

  bool operator==(const LockName &Other) const;
  size_t hash() const;
  /// Hash over the effect-ignoring identity (kind, region, path): equal for
  /// any two names where sameLockIgnoringEffect holds. O(1) with interned
  /// paths; structural on the bench's legacy representation.
  size_t classHash() const;
  std::string str() const;

private:
  LockName(Kind K, RegionId Region, Effect Eff)
      : K(K), Region(Region), Eff(Eff) {}

  Kind K;
  RegionId Region;
  Effect Eff;
  const LockPathNode *Node = nullptr;
};

/// Region of the location a lock path evaluates to: start at the cell of
/// the base variable, follow pointee edges at each Deref, stay put at
/// Field/Index. InvalidRegion when the points-to graph has no edge (the
/// path can only evaluate by dereferencing a pointer that is never
/// initialized anywhere in the program).
RegionId evalPathRegion(const LockExpr &Path, const PointsToAnalysis &PT);

} // namespace lockin

#endif // LOCKIN_LOCKS_LOCKNAME_H
