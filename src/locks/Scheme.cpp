//===--- Scheme.cpp - Abstract lock schemes (§3.3) -----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "locks/Scheme.h"

#include <cassert>

using namespace lockin;

AbstractLockScheme::~AbstractLockScheme() = default;

AbstractLockScheme::Lock AbstractLockScheme::exprLock(const LockExpr &Path,
                                                      Effect Eff) {
  const auto &Ops = Path.ops();
  Lock L = varLock(Path.base(), Ops.empty() ? Eff : Effect::RO);
  for (size_t I = 0; I < Ops.size(); ++I) {
    Effect StepEff = (I + 1 == Ops.size()) ? Eff : Effect::RO;
    switch (Ops[I].K) {
    case LockOp::Kind::Deref:
      L = starDeref(L, StepEff);
      break;
    case LockOp::Kind::Field:
      L = plusField(L, Ops[I].FieldIdx, StepEff);
      break;
    case LockOp::Kind::Index:
      // Array offsets use the pseudo-field -1 in offset-based schemes.
      L = plusField(L, -1, StepEff);
      break;
    }
  }
  return L;
}

namespace {

//===----------------------------------------------------------------------===//
// Σ_ε
//===----------------------------------------------------------------------===//

class EffectScheme final : public AbstractLockScheme {
public:
  // Lock 0 = rw (top), lock 1 = ro.
  bool leq(Lock A, Lock B) override { return B == TopLock || A == B; }
  Lock join(Lock A, Lock B) override {
    return (A == TopLock || B == TopLock) ? TopLock : A;
  }
  Lock varLock(const ir::Variable *, Effect Eff) override {
    return Eff == Effect::RW ? 0u : 1u;
  }
  Lock plusField(Lock, int, Effect Eff) override {
    return Eff == Effect::RW ? 0u : 1u;
  }
  Lock starDeref(Lock, Effect Eff) override {
    return Eff == Effect::RW ? 0u : 1u;
  }
  std::string str(Lock L) override { return L == TopLock ? "rw" : "ro"; }
};

//===----------------------------------------------------------------------===//
// Σ_i
//===----------------------------------------------------------------------===//

class FieldScheme final : public AbstractLockScheme {
public:
  FieldScheme() {
    // Lock 0 is ⊤ = F (all offsets).
    Sets.push_back({});
  }

  bool leq(Lock A, Lock B) override {
    if (B == TopLock)
      return true;
    if (A == TopLock)
      return false;
    const std::set<int> &SA = Sets[A];
    const std::set<int> &SB = Sets[B];
    for (int I : SA)
      if (!SB.count(I))
        return false;
    return true;
  }

  Lock join(Lock A, Lock B) override {
    if (A == TopLock || B == TopLock)
      return TopLock;
    std::set<int> U = Sets[A];
    U.insert(Sets[B].begin(), Sets[B].end());
    return intern(std::move(U));
  }

  Lock varLock(const ir::Variable *, Effect) override { return TopLock; }
  Lock plusField(Lock, int FieldIdx, Effect) override {
    return intern({FieldIdx});
  }
  Lock starDeref(Lock, Effect) override { return TopLock; }

  std::string str(Lock L) override {
    if (L == TopLock)
      return "F";
    std::string Out = "{";
    bool First = true;
    for (int I : Sets[L]) {
      if (!First)
        Out += ",";
      First = false;
      Out += std::to_string(I);
    }
    return Out + "}";
  }

private:
  Lock intern(std::set<int> S) {
    auto [It, Inserted] = Interned.try_emplace(S, 0);
    if (Inserted) {
      It->second = static_cast<Lock>(Sets.size());
      Sets.push_back(std::move(S));
    }
    return It->second;
  }

  std::vector<std::set<int>> Sets;
  std::map<std::set<int>, Lock> Interned;
};

//===----------------------------------------------------------------------===//
// Σ_k
//===----------------------------------------------------------------------===//

class KLimitScheme final : public AbstractLockScheme {
public:
  explicit KLimitScheme(unsigned K) : K(K) {
    Lengths.push_back(0);
    Keys.push_back("TOP");
  }

  bool leq(Lock A, Lock B) override { return B == TopLock || A == B; }
  Lock join(Lock A, Lock B) override { return A == B ? A : TopLock; }

  Lock varLock(const ir::Variable *Var, Effect) override {
    return intern("&" + Var->name() + "#" +
                      std::to_string(reinterpret_cast<uintptr_t>(Var)),
                  0);
  }

  Lock plusField(Lock L, int FieldIdx, Effect) override {
    if (L == TopLock)
      return TopLock;
    unsigned Len = Lengths[L] + 1;
    if (Len > K)
      return TopLock;
    return intern(Keys[L] + "+" + std::to_string(FieldIdx), Len);
  }

  Lock starDeref(Lock L, Effect) override {
    if (L == TopLock)
      return TopLock;
    unsigned Len = Lengths[L] + 1;
    if (Len > K)
      return TopLock;
    return intern("*" + Keys[L], Len);
  }

  std::string str(Lock L) override { return Keys[L]; }

private:
  Lock intern(std::string Key, unsigned Len) {
    auto [It, Inserted] = Interned.try_emplace(Key, 0);
    if (Inserted) {
      It->second = static_cast<Lock>(Keys.size());
      Keys.push_back(std::move(Key));
      Lengths.push_back(Len);
    }
    return It->second;
  }

  unsigned K;
  std::vector<std::string> Keys;
  std::vector<unsigned> Lengths;
  std::map<std::string, Lock> Interned;
};

//===----------------------------------------------------------------------===//
// Σ_≡
//===----------------------------------------------------------------------===//

class RegionScheme final : public AbstractLockScheme {
public:
  explicit RegionScheme(const PointsToAnalysis &PT) : PT(PT) {}

  bool leq(Lock A, Lock B) override { return B == TopLock || A == B; }
  Lock join(Lock A, Lock B) override { return A == B ? A : TopLock; }

  Lock varLock(const ir::Variable *Var, Effect) override {
    return fromRegion(PT.regionOfVarCell(Var));
  }
  Lock plusField(Lock L, int, Effect) override { return L; }
  Lock starDeref(Lock L, Effect) override {
    if (L == TopLock)
      return TopLock;
    return fromRegion(PT.derefRegion(toRegion(L)));
  }

  std::string str(Lock L) override {
    if (L == TopLock)
      return "TOP";
    return "region#" + std::to_string(toRegion(L)) + " " +
           PT.describeRegion(toRegion(L));
  }

private:
  Lock fromRegion(RegionId R) const {
    return R == InvalidRegion ? TopLock : static_cast<Lock>(R + 1);
  }
  RegionId toRegion(Lock L) const {
    assert(L != TopLock && "top has no region");
    return static_cast<RegionId>(L - 1);
  }

  const PointsToAnalysis &PT;
};

//===----------------------------------------------------------------------===//
// Σ_1 × Σ_2
//===----------------------------------------------------------------------===//

class ProductScheme final : public AbstractLockScheme {
public:
  ProductScheme(AbstractLockScheme &First, AbstractLockScheme &Second)
      : First(First), Second(Second) {
    // Lock 0 is (⊤, ⊤).
    intern(TopLock, TopLock);
  }

  bool leq(Lock A, Lock B) override {
    return First.leq(Pairs[A].first, Pairs[B].first) &&
           Second.leq(Pairs[A].second, Pairs[B].second);
  }
  Lock join(Lock A, Lock B) override {
    return intern(First.join(Pairs[A].first, Pairs[B].first),
                  Second.join(Pairs[A].second, Pairs[B].second));
  }
  Lock varLock(const ir::Variable *Var, Effect Eff) override {
    return intern(First.varLock(Var, Eff), Second.varLock(Var, Eff));
  }
  Lock plusField(Lock L, int FieldIdx, Effect Eff) override {
    return intern(First.plusField(Pairs[L].first, FieldIdx, Eff),
                  Second.plusField(Pairs[L].second, FieldIdx, Eff));
  }
  Lock starDeref(Lock L, Effect Eff) override {
    return intern(First.starDeref(Pairs[L].first, Eff),
                  Second.starDeref(Pairs[L].second, Eff));
  }
  std::string str(Lock L) override {
    return "(" + First.str(Pairs[L].first) + ", " +
           Second.str(Pairs[L].second) + ")";
  }

private:
  Lock intern(Lock A, Lock B) {
    auto [It, Inserted] = Interned.try_emplace({A, B}, 0);
    if (Inserted) {
      It->second = static_cast<Lock>(Pairs.size());
      Pairs.emplace_back(A, B);
    }
    return It->second;
  }

  AbstractLockScheme &First;
  AbstractLockScheme &Second;
  std::vector<std::pair<Lock, Lock>> Pairs;
  std::map<std::pair<Lock, Lock>, Lock> Interned;
};

} // namespace

std::unique_ptr<AbstractLockScheme> lockin::makeEffectScheme() {
  return std::make_unique<EffectScheme>();
}
std::unique_ptr<AbstractLockScheme> lockin::makeFieldScheme() {
  return std::make_unique<FieldScheme>();
}
std::unique_ptr<AbstractLockScheme> lockin::makeKLimitScheme(unsigned K) {
  return std::make_unique<KLimitScheme>(K);
}
std::unique_ptr<AbstractLockScheme>
lockin::makeRegionScheme(const PointsToAnalysis &PT) {
  return std::make_unique<RegionScheme>(PT);
}
std::unique_ptr<AbstractLockScheme>
lockin::makeProductScheme(AbstractLockScheme &First,
                          AbstractLockScheme &Second) {
  return std::make_unique<ProductScheme>(First, Second);
}
