//===--- Scheme.h - Abstract lock schemes (§3.3) ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract lock scheme framework of §3.3: a scheme is a bounded
/// join-semilattice (L, ≤, ⊤) with three operators
///
///   varLock   x̄_p^ε : V → L        lock protecting &x
///   plusField +_p^ε : L × F → L    lock protecting an offset of a
///                                  protected location
///   starDeref *_p^ε : L → L        lock protecting the pointed-to location
///
/// All instances here are program-point independent (as are all examples in
/// the paper), so the point argument is omitted. Locks are dense interned
/// handles, which makes the Cartesian product construction uniform.
///
/// Instances: Σ_ε (read/write), Σ_i (field-based), Σ_k (k-limited
/// expressions), Σ_≡ (Steensgaard regions), and Σ_1 × Σ_2 (products).
///
/// The production inference engine (infer/) uses the specialized
/// LockName/LockExpr representation of the Σ_k × Σ_≡ × Σ_ε instance, as
/// the paper's implementation does (§4.3); this module is the general
/// framework it instantiates, and is exercised directly by the tests.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_LOCKS_SCHEME_H
#define LOCKIN_LOCKS_SCHEME_H

#include "locks/Effect.h"
#include "locks/LockExpr.h"
#include "pointsto/Steensgaard.h"

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace lockin {

/// Interface for abstract lock schemes. Implementations intern lock values
/// and return dense ids; handle 0 is always ⊤.
class AbstractLockScheme {
public:
  using Lock = uint32_t;
  static constexpr Lock TopLock = 0;

  virtual ~AbstractLockScheme();

  Lock top() const { return TopLock; }

  /// The semilattice order; must be reflexive, transitive, antisymmetric,
  /// with top() as greatest element. (Checked by property tests.)
  virtual bool leq(Lock A, Lock B) = 0;

  /// Least upper bound.
  virtual Lock join(Lock A, Lock B) = 0;

  /// The operator x̄^ε.
  virtual Lock varLock(const ir::Variable *Var, Effect Eff) = 0;

  /// The operator l +^ε i.
  virtual Lock plusField(Lock L, int FieldIdx, Effect Eff) = 0;

  /// The operator *^ε l.
  virtual Lock starDeref(Lock L, Effect Eff) = 0;

  /// Debug rendering.
  virtual std::string str(Lock L) = 0;

  /// Builds the lock ê^ε for an expression given as a LockExpr path, using
  /// the inductive construction of §3.3 (subexpressions use ro).
  Lock exprLock(const LockExpr &Path, Effect Eff);
};

/// Σ_ε: protects locations by the kind of access performed on them.
/// L = Eff, ≤ = ⊑, ⊤ = rw, and every operator returns its effect argument.
std::unique_ptr<AbstractLockScheme> makeEffectScheme();

/// Σ_i: protects locations by the offset at which they are accessed.
/// L = 2^F, x̄ = ⊤, l + i = {i}, *l = ⊤.
std::unique_ptr<AbstractLockScheme> makeFieldScheme();

/// Σ_k: k-limited expression locks. Expressions longer than k collapse to
/// ⊤. Effects are ignored (all locks are rw), as in the paper's example.
std::unique_ptr<AbstractLockScheme> makeKLimitScheme(unsigned K);

/// Σ_≡: one lock per Steensgaard points-to region. x̄ = region of &x,
/// l + i = l, *l = pointee region. The analysis must outlive the scheme.
std::unique_ptr<AbstractLockScheme>
makeRegionScheme(const PointsToAnalysis &PT);

/// Σ_1 × Σ_2: the Cartesian product construction. Both components must
/// outlive the product.
std::unique_ptr<AbstractLockScheme>
makeProductScheme(AbstractLockScheme &First, AbstractLockScheme &Second);

} // namespace lockin

#endif // LOCKIN_LOCKS_SCHEME_H
