//===--- LockProfiler.cpp - Per-node lock contention profiler ------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "obs/LockProfiler.h"

#include "runtime/Mode.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

using namespace lockin;
using namespace lockin::obs;

LockProfiler::~LockProfiler() = default;

uint32_t LockProfiler::registerNode(const LockNodeInfo &Info) {
  uint32_t Id = NextNodeId.fetch_add(1, std::memory_order_acq_rel);
  if (Id >= ChunkedTable<NodeSlot>::MaxChunks *
                ChunkedTable<NodeSlot>::ChunkSize)
    return 0; // table exhausted: the node simply goes unprofiled
  Nodes.ensure(Id, Mu);
  Infos.ensure(Id, Mu) = Info;
  return Id;
}

SectionSlot &LockProfiler::sectionSlot(uint32_t SectionId) {
  uint32_t Cur = MaxSectionId.load(std::memory_order_relaxed);
  while (SectionId > Cur &&
         !MaxSectionId.compare_exchange_weak(Cur, SectionId,
                                             std::memory_order_relaxed)) {
  }
  return Sections.ensure(SectionId, Mu);
}

LockNodeInfo LockProfiler::nodeInfo(uint32_t Id) const {
  const LockNodeInfo *Info = Infos.get(Id);
  return Info ? *Info : LockNodeInfo{};
}

void LockProfiler::reset() {
  uint32_t N = NextNodeId.load(std::memory_order_acquire);
  for (uint32_t Id = 1; Id < N; ++Id) {
    NodeSlot *S = Nodes.get(Id);
    if (!S)
      continue;
    S->Acquires.reset();
    S->Contentions.reset();
    for (Counter &M : S->ModeCounts)
      M.reset();
    S->WaitNs.reset();
    S->HoldNs.reset();
    S->ContenderMask.store(0, std::memory_order_relaxed);
  }
  uint32_t MaxSec = MaxSectionId.load(std::memory_order_relaxed);
  for (uint32_t Id = 0; Id <= MaxSec; ++Id) {
    SectionSlot *S = Sections.get(Id);
    if (!S)
      continue;
    S->Entries.reset();
    S->NestedSkips.reset();
    S->Locks.reset();
    S->Nodes.reset();
    for (Counter &M : S->ModeCounts)
      M.reset();
    S->WaitNs.reset();
    S->HoldNs.reset();
  }
}

namespace {

void describeNode(char *Buf, size_t N, const LockNodeInfo &Info) {
  switch (Info.K) {
  case LockNodeInfo::Kind::Root:
    std::snprintf(Buf, N, "root");
    break;
  case LockNodeInfo::Kind::Region:
    std::snprintf(Buf, N, "region %" PRIu32, Info.Region);
    break;
  case LockNodeInfo::Kind::Leaf:
    std::snprintf(Buf, N, "leaf r%" PRIu32 " 0x%" PRIx64, Info.Region,
                  Info.Address);
    break;
  case LockNodeInfo::Kind::Stripe:
    std::snprintf(Buf, N, "stripe r%" PRIu32 " #%" PRIu64, Info.Region,
                  Info.Address);
    break;
  }
}

} // namespace

std::string LockProfiler::renderTable() const {
  std::string Out = "; lock profile (timings sampled 1/";
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%u sections unless traced):\n",
                kSampleEvery);
  Out += Line;

  // Per-node table, worst contention first.
  struct RankedNode {
    uint32_t Id;
    const NodeSlot *S;
  };
  std::vector<RankedNode> Ranked;
  uint32_t N = NextNodeId.load(std::memory_order_acquire);
  for (uint32_t Id = 1; Id < N; ++Id) {
    const NodeSlot *S = const_cast<LockProfiler *>(this)->Nodes.get(Id);
    if (S && (S->Acquires.value() || S->Contentions.value() ||
              S->WaitNs.count()))
      Ranked.push_back({Id, S});
  }
  std::sort(Ranked.begin(), Ranked.end(),
            [](const RankedNode &A, const RankedNode &B) {
              if (A.S->Contentions.value() != B.S->Contentions.value())
                return A.S->Contentions.value() > B.S->Contentions.value();
              if (A.S->WaitNs.sum() != B.S->WaitNs.sum())
                return A.S->WaitNs.sum() > B.S->WaitNs.sum();
              return A.Id < B.Id;
            });
  constexpr size_t MaxRows = 24;

  std::snprintf(Line, sizeof(Line),
                ";   %-20s %10s %9s %12s %12s %12s %12s\n", "node",
                "acquires", "contend", "wait-p50ns", "wait-p99ns",
                "hold-p50ns", "hold-p99ns");
  Out += Line;
  for (size_t I = 0; I < Ranked.size() && I < MaxRows; ++I) {
    char Desc[64];
    describeNode(Desc, sizeof(Desc), nodeInfo(Ranked[I].Id));
    const NodeSlot &S = *Ranked[I].S;
    std::snprintf(Line, sizeof(Line),
                  ";   %-20s %10" PRIu64 " %9" PRIu64 " %12" PRIu64
                  " %12" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
                  Desc, S.Acquires.value(), S.Contentions.value(),
                  S.WaitNs.quantile(0.50), S.WaitNs.quantile(0.99),
                  S.HoldNs.quantile(0.50), S.HoldNs.quantile(0.99));
    Out += Line;
  }
  if (Ranked.size() > MaxRows) {
    std::snprintf(Line, sizeof(Line), ";   ... %zu more nodes\n",
                  Ranked.size() - MaxRows);
    Out += Line;
  }
  if (Ranked.empty())
    Out += ";   (no lock activity recorded)\n";

  // Per-section rollup: the live Table-2 shape.
  Out += "; sections:\n";
  std::snprintf(Line, sizeof(Line),
                ";   %-8s %10s %12s %12s %12s  %s\n", "section", "entries",
                "locks/entry", "nodes/entry", "nested-skip",
                "mode mix IS/IX/S/SIX/X");
  Out += Line;
  uint32_t MaxSec = MaxSectionId.load(std::memory_order_relaxed);
  bool AnySection = false;
  for (uint32_t Id = 0; Id <= MaxSec; ++Id) {
    const SectionSlot *S = const_cast<LockProfiler *>(this)->Sections.get(Id);
    if (!S || (S->Entries.value() == 0 && S->NestedSkips.value() == 0))
      continue;
    AnySection = true;
    uint64_t E = S->Entries.value();
    double LocksPer = E ? static_cast<double>(S->Locks.value()) /
                              static_cast<double>(E)
                        : 0;
    double NodesPer = E ? static_cast<double>(S->Nodes.value()) /
                              static_cast<double>(E)
                        : 0;
    uint64_t Inner = S->NestedSkips.value();
    double SkipRate = (E + Inner)
                          ? static_cast<double>(Inner) /
                                static_cast<double>(E + Inner)
                          : 0;
    // Tags are 1-based static section ids (0 = untagged callers).
    char SecName[16];
    if (Id == 0)
      std::snprintf(SecName, sizeof(SecName), "(untagged)");
    else
      std::snprintf(SecName, sizeof(SecName), "s%" PRIu32, Id - 1);
    std::snprintf(Line, sizeof(Line),
                  ";   %-8s %10" PRIu64 " %12.2f %12.2f %11.0f%%  "
                  "%" PRIu64 "/%" PRIu64 "/%" PRIu64 "/%" PRIu64
                  "/%" PRIu64 "\n",
                  SecName, E, LocksPer, NodesPer, SkipRate * 100.0,
                  S->ModeCounts[0].value(), S->ModeCounts[1].value(),
                  S->ModeCounts[2].value(), S->ModeCounts[3].value(),
                  S->ModeCounts[4].value());
    Out += Line;
  }
  if (!AnySection)
    Out += ";   (no tagged sections recorded)\n";
  return Out;
}

LockProfiler &obs::lockProfiler() {
  static LockProfiler P;
  return P;
}
