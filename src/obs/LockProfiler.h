//===--- LockProfiler.h - Per-node lock contention profiler -----*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock-contention profiler, layered on the metrics registry: every
/// lock node the runtime creates registers here and gets a slot holding
/// acquire counts, contention (parked) counts, and wait/hold-time log₂
/// histograms; atomic sections tagged by the interpreter additionally get
/// per-section rollups (entries, locks and nodes per entry, mode mix,
/// nested skips) — live-execution counterparts of the paper's Table 2.
///
/// Cost model: contention events and their wait times are recorded
/// exactly (parking already costs microseconds); acquire counts, mode
/// mix, hold times, and section rollups come from sampled sections (1 in
/// kSampleEvery, recorded with weight kSampleEvery so reported counts
/// stay in absolute units; every section when the tracer is armed,
/// weight 1). Disabled, the profiler costs one relaxed load per
/// acquireAll.
///
/// Slot storage is a two-level chunked table: reads are lock-free
/// (registration is mutexed, updates are relaxed atomics), and slot
/// addresses are stable so the runtime can cache them.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_LOCKPROFILER_H
#define LOCKIN_OBS_LOCKPROFILER_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lockin {
namespace obs {

/// 1-in-N section sampling for timed instrumentation (see file comment).
inline constexpr unsigned kSampleEvery = 128;

/// What a registered lock node is, for rendering. Stripe nodes are the
/// cache-line-padded shards of an escalated region (Address = stripe
/// index, not a memory address).
struct LockNodeInfo {
  enum class Kind : uint8_t { Root, Region, Leaf, Stripe };
  Kind K = Kind::Root;
  uint32_t Region = 0;
  uint64_t Address = 0;
};

struct NodeSlot {
  Counter Acquires;        ///< sampled, weight-corrected
  Counter Contentions;     ///< exact parked count
  Counter ModeCounts[5];   ///< sampled grant mode mix, weight-corrected
  Histogram WaitNs;        ///< parked waits, exact
  Histogram HoldNs;        ///< sampled acquire-to-release times
  /// Hashed-thread-id bitmap of parked waiters; popcount estimates the
  /// distinct contender count (the adaptive engine sizes stripe tables
  /// from it, and clears it after reading).
  std::atomic<uint64_t> ContenderMask{0};
};

struct SectionSlot {
  Counter Entries;       ///< outermost acquireAll calls
  Counter NestedSkips;   ///< inner acquireAll calls (no locks taken)
  Counter Locks;         ///< descriptors protected, summed over entries
  Counter Nodes;         ///< hierarchy nodes acquired, summed over entries
  Counter ModeCounts[5]; ///< grant mode mix, summed over entries
  Counter WaitNs;        ///< parked ns summed over entries, exact
  Counter HoldNs;        ///< section hold ns, sampled weight-corrected
};

class LockProfiler {
public:
  LockProfiler() = default;
  LockProfiler(const LockProfiler &) = delete;
  LockProfiler &operator=(const LockProfiler &) = delete;
  ~LockProfiler();

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Registers a lock node; returns its id (> 0; 0 is "unregistered").
  uint32_t registerNode(const LockNodeInfo &Info);

  NodeSlot &nodeSlot(uint32_t Id) { return *node(Id); }
  SectionSlot &sectionSlot(uint32_t SectionId);

  uint32_t numNodes() const {
    return NextNodeId.load(std::memory_order_acquire) - 1;
  }
  LockNodeInfo nodeInfo(uint32_t Id) const;

  /// The human `--profile-locks` report: per-node wait/hold histograms
  /// (top nodes by contention, then wait time) and the Table-2-style
  /// per-section rollup. Lines are ";"-prefixed like the other reports.
  std::string renderTable() const;

  /// Zero every slot (benchmark phases); registrations survive.
  void reset();

private:
  template <typename T> struct ChunkedTable {
    static constexpr unsigned ChunkBits = 6;
    static constexpr unsigned ChunkSize = 1u << ChunkBits;
    static constexpr unsigned MaxChunks = 4096; // 256K slots
    std::atomic<T *> Chunks[MaxChunks]{};

    ~ChunkedTable() {
      for (auto &C : Chunks)
        delete[] C.load(std::memory_order_relaxed);
    }
    /// Lock-free once the chunk exists; call ensure() first (mutexed).
    T *get(uint32_t I) const {
      T *Chunk = Chunks[I >> ChunkBits].load(std::memory_order_acquire);
      return Chunk ? &Chunk[I & (ChunkSize - 1)] : nullptr;
    }
    T &ensure(uint32_t I, std::mutex &Mu) {
      std::atomic<T *> &Slot = Chunks[I >> ChunkBits];
      T *Chunk = Slot.load(std::memory_order_acquire);
      if (!Chunk) {
        std::lock_guard<std::mutex> Lock(Mu);
        Chunk = Slot.load(std::memory_order_acquire);
        if (!Chunk) {
          Chunk = new T[ChunkSize]();
          Slot.store(Chunk, std::memory_order_release);
        }
      }
      return Chunk[I & (ChunkSize - 1)];
    }
  };

  NodeSlot *node(uint32_t Id) { return Nodes.get(Id); }

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu;
  std::atomic<uint32_t> NextNodeId{1};
  ChunkedTable<NodeSlot> Nodes;
  ChunkedTable<LockNodeInfo> Infos;
  ChunkedTable<SectionSlot> Sections;
  std::atomic<uint32_t> MaxSectionId{0};
};

/// The process-wide default profiler (what --profile-locks renders).
LockProfiler &lockProfiler();

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_LOCKPROFILER_H
