//===--- Log.cpp - Leveled structured JSON logging -----------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

using namespace lockin;
using namespace lockin::obs;

const char *obs::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Debug:
    return "debug";
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Off:
    return "off";
  }
  return "info";
}

bool obs::parseLogLevel(std::string_view Text, LogLevel &Out) {
  for (LogLevel L : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                     LogLevel::Error, LogLevel::Off})
    if (Text == logLevelName(L)) {
      Out = L;
      return true;
    }
  return false;
}

namespace {

void jsonEscape(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

uint64_t wallUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

} // namespace

LogEvent::LogEvent(Logger *Owner, LogLevel Level, std::string_view Event)
    : L(Owner) {
  Buf.reserve(160);
  char Head[64];
  std::snprintf(Head, sizeof(Head), "{\"ts_us\": %" PRIu64 ", \"level\": \"%s\"",
                wallUs(), logLevelName(Level));
  Buf += Head;
  Buf += ", \"event\": \"";
  jsonEscape(Buf, Event);
  Buf += '"';
}

LogEvent::~LogEvent() {
  if (!L)
    return;
  Buf += "}\n";
  L->write(Buf);
}

void LogEvent::key(std::string_view Key) {
  Buf += ", \"";
  jsonEscape(Buf, Key);
  Buf += "\": ";
}

LogEvent &LogEvent::str(std::string_view Key, std::string_view Value) {
  if (!L)
    return *this;
  key(Key);
  Buf += '"';
  jsonEscape(Buf, Value);
  Buf += '"';
  return *this;
}

LogEvent &LogEvent::num(std::string_view Key, uint64_t Value) {
  if (!L)
    return *this;
  key(Key);
  char Buf2[24];
  std::snprintf(Buf2, sizeof(Buf2), "%" PRIu64, Value);
  Buf += Buf2;
  return *this;
}

LogEvent &LogEvent::snum(std::string_view Key, int64_t Value) {
  if (!L)
    return *this;
  key(Key);
  char Buf2[24];
  std::snprintf(Buf2, sizeof(Buf2), "%" PRId64, Value);
  Buf += Buf2;
  return *this;
}

LogEvent &LogEvent::real(std::string_view Key, double Value) {
  if (!L)
    return *this;
  key(Key);
  char Buf2[32];
  std::snprintf(Buf2, sizeof(Buf2), "%.6g", Value);
  Buf += Buf2;
  return *this;
}

LogEvent &LogEvent::flag(std::string_view Key, bool Value) {
  if (!L)
    return *this;
  key(Key);
  Buf += Value ? "true" : "false";
  return *this;
}

void Logger::setSink(std::FILE *To) {
  std::lock_guard<std::mutex> Lock(Mu);
  Sink = To;
}

LogEvent Logger::event(LogLevel L, std::string_view Event) {
  if (!enabled(L))
    return LogEvent();
  return LogEvent(this, L, Event);
}

void Logger::write(std::string_view Line) {
  std::lock_guard<std::mutex> Lock(Mu);
  std::FILE *To = Sink ? Sink : stderr;
  std::fwrite(Line.data(), 1, Line.size(), To);
  std::fflush(To);
  Lines.fetch_add(1, std::memory_order_relaxed);
}

Logger &obs::log() {
  static Logger L;
  return L;
}
