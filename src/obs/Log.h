//===--- Log.h - Leveled structured JSON logging ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured logging for the analysis service: one JSON object per line,
/// written atomically (one mutex-guarded fwrite per event) so concurrent
/// worker/connection threads never interleave within a line. Every line
/// carries a wall-clock timestamp in microseconds, a level, and an event
/// name; callers append typed fields through the LogEvent builder:
///
///   obs::log().event(obs::LogLevel::Warn, "service.overloaded")
///       .num("req", Id).str("peer", Peer).num("queue_depth", Depth);
///
/// The event is emitted when the builder goes out of scope. A builder
/// whose level is below the logger's threshold is a null object: the
/// field appenders are no-ops and nothing is allocated or written. The
/// default sink is stderr; tests redirect it with setSink(tmpfile()).
///
/// Like the rest of obs/, the Logger class is always compiled;
/// instrumentation *sites* in the service and runtime are guarded by
/// `if constexpr (obs::kEnabled)` so LOCKIN_OBS=OFF builds carry none of
/// the formatting code in their hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_LOG_H
#define LOCKIN_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace lockin {
namespace obs {

enum class LogLevel : uint8_t { Debug = 0, Info, Warn, Error, Off };

const char *logLevelName(LogLevel L);
/// Parses "debug"/"info"/"warn"/"error"/"off"; returns false (and leaves
/// \p Out untouched) on anything else.
bool parseLogLevel(std::string_view Text, LogLevel &Out);

class Logger;

/// One structured log line under construction. Move-only; the destructor
/// emits the finished line through the owning Logger. A suppressed event
/// (level below threshold) has a null Logger and every appender returns
/// immediately.
class LogEvent {
public:
  LogEvent(const LogEvent &) = delete;
  LogEvent &operator=(const LogEvent &) = delete;
  LogEvent(LogEvent &&Other) noexcept : L(Other.L), Buf(std::move(Other.Buf)) {
    Other.L = nullptr;
  }
  ~LogEvent();

  LogEvent &str(std::string_view Key, std::string_view Value);
  LogEvent &num(std::string_view Key, uint64_t Value);
  LogEvent &snum(std::string_view Key, int64_t Value);
  LogEvent &real(std::string_view Key, double Value);
  LogEvent &flag(std::string_view Key, bool Value);

private:
  friend class Logger;
  LogEvent() = default; // suppressed
  LogEvent(Logger *Owner, LogLevel Level, std::string_view Event);
  void key(std::string_view Key);

  Logger *L = nullptr;
  std::string Buf;
};

/// A leveled line-oriented JSON logger. Level reads are one relaxed atomic
/// load, so `log().event(Debug, ...)` on a hot path costs a branch when
/// debug logging is off.
class Logger {
public:
  Logger() = default;
  Logger(const Logger &) = delete;
  Logger &operator=(const Logger &) = delete;

  LogLevel level() const {
    return static_cast<LogLevel>(Level.load(std::memory_order_relaxed));
  }
  void setLevel(LogLevel L) {
    Level.store(static_cast<uint8_t>(L), std::memory_order_relaxed);
  }
  bool enabled(LogLevel L) const {
    return L != LogLevel::Off && L >= level();
  }

  /// Redirects output; null restores the default (stderr). The logger
  /// never closes the sink.
  void setSink(std::FILE *To);

  /// Starts a line: {"ts_us":...,"level":"...","event":"..."}. Returns a
  /// suppressed builder when \p L is below the threshold.
  LogEvent event(LogLevel L, std::string_view Event);

  /// Lines actually written (suppressed events excluded); tests.
  uint64_t lines() const { return Lines.load(std::memory_order_relaxed); }

private:
  friend class LogEvent;
  void write(std::string_view Line);

  std::atomic<uint8_t> Level{static_cast<uint8_t>(LogLevel::Info)};
  std::atomic<uint64_t> Lines{0};
  std::mutex Mu; // serializes sink writes and sink swaps
  std::FILE *Sink = nullptr; // null = stderr
};

/// The process-wide logger (what the service and adaptive engine write to).
Logger &log();

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_LOG_H
