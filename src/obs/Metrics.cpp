//===--- Metrics.cpp - Named counters and log2 histograms ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

using namespace lockin;
using namespace lockin::obs;

Counter &MetricsRegistry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Histogram &MetricsRegistry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

uint64_t Histogram::quantile(double P) const {
  uint64_t N = count();
  if (N == 0)
    return 0;
  if (P < 0)
    P = 0;
  if (P > 1)
    P = 1;
  // Rank of the requested observation, 1-based.
  uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(N - 1)) + 1;
  uint64_t Seen = 0;
  for (unsigned B = 0; B < NumBuckets; ++B) {
    Seen += bucketCount(B);
    if (Seen >= Rank) {
      if (B <= 1)
        return B; // exact: bucket 0 = {0}, bucket 1 = {1}
      // Geometric midpoint of [2^(B-1), 2^B): 2^(B-1) * sqrt(2).
      uint64_t Lo = bucketLo(B);
      return Lo + (Lo >> 1); // ~1.5*Lo, close to sqrt(2)*Lo = 1.41*Lo
    }
  }
  return bucketHi(NumBuckets - 1);
}

void MetricsRegistry::writeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name
       << "\": " << C->value();
    First = false;
  }
  OS << (First ? "" : "\n  ") << "},\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    OS << (First ? "\n" : ",\n") << "    \"" << Name << "\": {\"count\": "
       << H->count() << ", \"sum\": " << H->sum()
       << ", \"p50\": " << H->quantile(0.50)
       << ", \"p99\": " << H->quantile(0.99) << ", \"buckets\": [";
    bool FirstBucket = true;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      uint64_t N = H->bucketCount(B);
      if (N == 0)
        continue;
      OS << (FirstBucket ? "" : ", ") << "[" << Histogram::bucketHi(B)
         << ", " << N << "]";
      FirstBucket = false;
    }
    OS << "]}";
    First = false;
  }
  OS << (First ? "" : "\n  ") << "}\n}\n";
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dotted lockin names
/// become underscored and get a "lockin_" namespace prefix.
std::string promName(const std::string &Name) {
  std::string Out = "lockin_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

} // namespace

void MetricsRegistry::writePrometheus(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &[Name, C] : Counters) {
    std::string P = promName(Name);
    OS << "# TYPE " << P << "_total counter\n"
       << P << "_total " << C->value() << "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string P = promName(Name);
    OS << "# TYPE " << P << " histogram\n";
    uint64_t Cum = 0;
    for (unsigned B = 0; B < Histogram::NumBuckets; ++B) {
      uint64_t N = H->bucketCount(B);
      if (N == 0)
        continue;
      Cum += N;
      OS << P << "_bucket{le=\"" << Histogram::bucketHi(B) << "\"} " << Cum
         << "\n";
    }
    OS << P << "_bucket{le=\"+Inf\"} " << Cum << "\n"
       << P << "_sum " << H->sum() << "\n"
       << P << "_count " << H->count() << "\n";
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

MetricsRegistry &obs::metrics() {
  static MetricsRegistry Registry;
  return Registry;
}
