//===--- Metrics.h - Named counters and log2 histograms ---------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics registry: named monotonic counters and fixed-bucket log₂
/// histograms, registered once (registration takes a mutex; the returned
/// handle is valid for the registry's lifetime) and updated with relaxed
/// atomics. Hot paths are expected to buffer increments in per-thread
/// plain cells and flush them through a handle in one batched add — the
/// pattern the lock runtime's ThreadLockContext uses.
///
/// Exported as JSON (`--metrics-out=FILE`, `-` = stdout) and consumed by
/// the lock-contention profiler's human table (`--profile-locks`).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_METRICS_H
#define LOCKIN_OBS_METRICS_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace lockin {
namespace obs {

/// A monotonic counter. add/inc are relaxed: counters are statistics, not
/// synchronization.
class Counter {
public:
  void inc() { add(1); }
  void add(uint64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// A log₂ histogram: bucket i counts values whose bit width is i, i.e.
/// bucket 0 holds exactly 0, bucket i (i ≥ 1) holds [2^(i-1), 2^i).
/// 64 buckets cover the whole uint64_t range, so recording never clamps.
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65; // bit widths 0..64

  static unsigned bucketOf(uint64_t Value) {
    return static_cast<unsigned>(std::bit_width(Value));
  }
  /// Smallest value the bucket admits (inclusive).
  static uint64_t bucketLo(unsigned Bucket) {
    return Bucket <= 1 ? 0 : (1ull << (Bucket - 1));
  }
  /// Largest value the bucket admits (inclusive).
  static uint64_t bucketHi(unsigned Bucket) {
    if (Bucket == 0)
      return 0;
    if (Bucket >= 64)
      return ~0ull;
    return (1ull << Bucket) - 1;
  }

  void record(uint64_t Value) {
    Buckets[bucketOf(Value)].fetch_add(1, std::memory_order_relaxed);
    Cnt.fetch_add(1, std::memory_order_relaxed);
    Total.fetch_add(Value, std::memory_order_relaxed);
  }
  /// Record \p Weight observations of \p Value at once (sampled inputs).
  void recordWeighted(uint64_t Value, uint64_t Weight) {
    Buckets[bucketOf(Value)].fetch_add(Weight, std::memory_order_relaxed);
    Cnt.fetch_add(Weight, std::memory_order_relaxed);
    Total.fetch_add(Value * Weight, std::memory_order_relaxed);
  }

  uint64_t count() const { return Cnt.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Total.load(std::memory_order_relaxed); }
  uint64_t bucketCount(unsigned Bucket) const {
    return Buckets[Bucket].load(std::memory_order_relaxed);
  }

  /// Approximate quantile: walks the buckets and returns the geometric
  /// midpoint of the one containing the \p P-quantile observation
  /// (exact for bucket 0/1; within 2x above — adequate for a log₂ scale).
  uint64_t quantile(double P) const;

  void reset() {
    for (auto &B : Buckets)
      B.store(0, std::memory_order_relaxed);
    Cnt.store(0, std::memory_order_relaxed);
    Total.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[NumBuckets]{};
  std::atomic<uint64_t> Cnt{0};
  std::atomic<uint64_t> Total{0};
};

/// Registry of named metrics. Registration (counter()/histogram()) takes a
/// mutex and interns the name; updates through the returned references are
/// lock-free. Names use dotted paths ("runtime.acquire_all_calls").
class MetricsRegistry {
public:
  Counter &counter(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// {"counters": {...}, "histograms": {...}} — keys sorted, buckets
  /// emitted sparsely as [le, count] pairs.
  void writeJson(std::ostream &OS) const;

  /// Prometheus text exposition (format 0.0.4) of the whole registry:
  /// counters as `lockin_<name>_total`, histograms as cumulative
  /// `_bucket{le="..."}` series (non-empty buckets plus "+Inf") with
  /// `_sum`/`_count`. Dotted metric names are sanitized to underscores.
  /// This is what the daemon's `metrics` request op serves, so a running
  /// service can be scraped without restart.
  void writePrometheus(std::ostream &OS) const;

  /// Zero every registered metric (benchmarks reuse one registry across
  /// phases). Handles stay valid.
  void reset();

  template <typename Fn> void forEachCounter(Fn &&F) const {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &[Name, C] : Counters)
      F(Name, *C);
  }

  template <typename Fn> void forEachHistogram(Fn &&F) const {
    std::lock_guard<std::mutex> Lock(Mu);
    for (const auto &[Name, H] : Histograms)
      F(Name, *H);
  }

private:
  mutable std::mutex Mu;
  // std::map: deterministic JSON key order; unique_ptr: stable addresses.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

/// The process-wide default registry (what --metrics-out exports).
MetricsRegistry &metrics();

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_METRICS_H
