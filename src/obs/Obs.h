//===--- Obs.h - Observability master switch and clock ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The root of the `lockin_obs` observability layer (see DESIGN.md
/// "Observability"): the compile-time master switch and the shared
/// monotonic clock.
///
/// The classes in obs/ (MetricsRegistry, Tracer, LockProfiler) are always
/// compiled — tests exercise them directly in every configuration. What
/// the LOCKIN_OBS CMake option controls is the *instrumentation sites* in
/// the runtime, interpreter, pass manager, and simulator: every hook is
/// guarded by `if constexpr (obs::kEnabled)`, so an OFF build compiles
/// them out to nothing.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_OBS_H
#define LOCKIN_OBS_OBS_H

#include <chrono>
#include <cstdint>

namespace lockin {
namespace obs {

#if defined(LOCKIN_OBS) && LOCKIN_OBS
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Monotonic nanoseconds since an arbitrary epoch; the timestamp base of
/// every trace event and wait/hold measurement.
inline uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_OBS_H
