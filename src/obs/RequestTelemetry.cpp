//===--- RequestTelemetry.cpp - Request-scoped spans + flight recorder ---------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "obs/RequestTelemetry.h"

#include <cinttypes>
#include <cstdio>

using namespace lockin;
using namespace lockin::obs;

const char *obs::reqPhaseName(ReqPhase P) {
  switch (P) {
  case ReqPhase::Queue:
    return "queue";
  case ReqPhase::Parse:
    return "parse";
  case ReqPhase::Fingerprint:
    return "fingerprint";
  case ReqPhase::Analyze:
    return "analyze";
  case ReqPhase::Render:
    return "render";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(size_t Capacity)
    : Cap(Capacity < 1 ? 1 : Capacity) {}

void FlightRecorder::record(FlightRecord R) {
  std::lock_guard<std::mutex> Lock(Mu);
  if (Ring.size() < Cap) {
    Ring.push_back(std::move(R));
  } else {
    Ring[Written % Cap] = std::move(R);
  }
  ++Written;
}

void FlightRecorder::record(const RequestContext &Ctx, uint64_t TotalNs) {
  FlightRecord R;
  R.Id = Ctx.id();
  R.StartNs = Ctx.startNs();
  R.TotalNs = TotalNs;
  for (unsigned I = 0; I < kNumReqPhases; ++I)
    R.PhaseNs[I] = Ctx.phaseNs(static_cast<ReqPhase>(I));
  R.CacheHits = Ctx.CacheHits;
  R.CacheMisses = Ctx.CacheMisses;
  R.DirtyCone = Ctx.DirtyCone;
  R.Sections = Ctx.Sections;
  R.Peer = Ctx.Peer;
  R.Op = Ctx.Op;
  R.Unit = Ctx.Unit;
  R.Outcome = Ctx.Outcome;
  record(std::move(R));
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::vector<FlightRecord> Out;
  Out.reserve(Ring.size());
  if (Ring.size() < Cap) {
    Out = Ring;
  } else {
    for (size_t I = 0; I < Cap; ++I)
      Out.push_back(Ring[(Written + I) % Cap]);
  }
  return Out;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Written;
}

namespace {

void jsonEscape(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

} // namespace

void FlightRecorder::appendJson(std::string &Out,
                                const FlightRecord &R) const {
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"id\": %" PRIu64 ", \"start_ns\": %" PRIu64
                ", \"total_ns\": %" PRIu64,
                R.Id, R.StartNs, R.TotalNs);
  Out += Buf;
  Out += ", \"op\": \"";
  jsonEscape(Out, R.Op);
  Out += "\", \"unit\": \"";
  jsonEscape(Out, R.Unit);
  Out += "\", \"peer\": \"";
  jsonEscape(Out, R.Peer);
  Out += "\", \"outcome\": \"";
  jsonEscape(Out, R.Outcome);
  Out += "\", \"phases_ns\": {";
  for (unsigned I = 0; I < kNumReqPhases; ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %" PRIu64, I ? ", " : "",
                  reqPhaseName(static_cast<ReqPhase>(I)), R.PhaseNs[I]);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf),
                "}, \"cache_hits\": %" PRIu32 ", \"cache_misses\": %" PRIu32
                ", \"dirty_cone\": %" PRIu32 ", \"sections\": %" PRIu32 "}",
                R.CacheHits, R.CacheMisses, R.DirtyCone, R.Sections);
  Out += Buf;
}

void FlightRecorder::writeJson(std::ostream &OS) const {
  std::vector<FlightRecord> Records = snapshot();
  uint64_t Total;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Total = Written;
  }
  std::string Out;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf),
                "{\"capacity\": %zu, \"recorded\": %" PRIu64
                ", \"records\": [",
                Cap, Total);
  Out += Buf;
  for (size_t I = 0; I < Records.size(); ++I) {
    Out += I ? ",\n  " : "\n  ";
    appendJson(Out, Records[I]);
  }
  Out += Records.empty() ? "]}\n" : "\n]}\n";
  OS << Out;
}

bool FlightRecorder::dump(Logger &Log, std::string_view Reason,
                          uint64_t MinGapNs) {
  std::vector<FlightRecord> Records;
  uint64_t Total;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Written == 0)
      return false;
    uint64_t Now = nowNs();
    if (LastDumpNs != 0 && Now - LastDumpNs < MinGapNs)
      return false;
    LastDumpNs = Now;
    Total = Written;
  }
  Records = snapshot();
  if (!Log.enabled(LogLevel::Warn))
    return false;
  Log.event(LogLevel::Warn, "flightrecord.dump")
      .str("reason", Reason)
      .num("records", Records.size())
      .num("recorded", Total);
  for (const FlightRecord &R : Records) {
    LogEvent E = Log.event(LogLevel::Warn, "flightrecord.record");
    E.num("req", R.Id)
        .str("op", R.Op)
        .str("unit", R.Unit)
        .str("peer", R.Peer)
        .str("outcome", R.Outcome)
        .num("total_ns", R.TotalNs);
    for (unsigned I = 0; I < kNumReqPhases; ++I)
      E.num(std::string(reqPhaseName(static_cast<ReqPhase>(I))) + "_ns",
            R.PhaseNs[I]);
    E.num("cache_hits", R.CacheHits)
        .num("cache_misses", R.CacheMisses)
        .num("dirty_cone", R.DirtyCone)
        .num("sections", R.Sections);
  }
  return true;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Ring.clear();
  Written = 0;
  LastDumpNs = 0;
}
