//===--- RequestTelemetry.h - Request-scoped spans + flight recorder -*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped telemetry for the analysis service. A RequestContext is
/// created per request at read time and travels with the request through
/// the queue and the incremental analyzer; each pipeline phase brackets
/// itself with a PhaseScope. When the request completes, the server rolls
/// the spans into the metrics registry (`service.queue_ns`,
/// `service.phase.*_ns`, `service.total_ns`), emits a per-request track
/// into the Chrome tracer (EventKind::RequestPhaseSpan, pid 3), and
/// pushes a FlightRecord into the FlightRecorder — a bounded ring of the
/// last N completed-request summaries that is dumped through the
/// structured logger on overload rejection, request timeout, and SIGTERM
/// drain, and served on demand by the `flightrecord` request op.
///
/// Threading: a RequestContext is owned by exactly one thread at a time
/// (connection thread → queue → worker thread; the queue's mutex orders
/// the hand-off), so its members are plain. The FlightRecorder is shared
/// and mutex-guarded — it is touched once per request, never on a hot
/// path.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_REQUESTTELEMETRY_H
#define LOCKIN_OBS_REQUESTTELEMETRY_H

#include "obs/Log.h"
#include "obs/Obs.h"

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lockin {
namespace obs {

/// The phases a service request moves through. Queue is the wait between
/// enqueue and a worker picking the job up; the rest are the incremental
/// analyzer's pipeline stages.
enum class ReqPhase : uint8_t {
  Queue = 0,   ///< bounded-queue wait before a worker dequeues
  Parse,       ///< front half of compile(): parse + sema + lower + callgraph
  Fingerprint, ///< module fingerprint, section keys, dirty-cone accounting
  Analyze,     ///< cache probe + lock inference over the dirty cone
  Render,      ///< report assembly + snapshot publication
};
inline constexpr unsigned kNumReqPhases = 5;

const char *reqPhaseName(ReqPhase P);

/// One bracketed interval. StartNs of 0 means the phase never ran.
struct PhaseSpan {
  uint64_t StartNs = 0;
  uint64_t DurNs = 0;
};

/// Per-request telemetry carrier: dense id, monotonic start timestamp
/// (stamped at request read time), one span per phase, and the outcome
/// metadata the flight recorder keeps.
class RequestContext {
public:
  RequestContext(uint64_t Id, std::string PeerLabel, std::string OpName)
      : Peer(std::move(PeerLabel)), Op(std::move(OpName)), IdV(Id),
        StartNsV(nowNs()) {}

  uint64_t id() const { return IdV; }
  uint64_t startNs() const { return StartNsV; }

  void begin(ReqPhase P) {
    Phases[static_cast<unsigned>(P)].StartNs = nowNs();
  }
  void end(ReqPhase P) {
    PhaseSpan &S = Phases[static_cast<unsigned>(P)];
    S.DurNs += nowNs() - S.StartNs;
  }
  const PhaseSpan &span(ReqPhase P) const {
    return Phases[static_cast<unsigned>(P)];
  }
  /// Overwrites a phase with an externally measured interval (e.g. the
  /// read-to-rejection wait of an overload-rejected request).
  void setSpan(ReqPhase P, uint64_t StartNs, uint64_t DurNs) {
    Phases[static_cast<unsigned>(P)] = PhaseSpan{StartNs, DurNs};
  }
  uint64_t phaseNs(ReqPhase P) const { return span(P).DurNs; }

  // Filled in by the server / analyzer as the request progresses.
  std::string Peer;
  std::string Op;
  std::string Unit;
  std::string Outcome = "ok";
  uint32_t CacheHits = 0;
  uint32_t CacheMisses = 0;
  uint32_t DirtyCone = 0;
  uint32_t Sections = 0;

private:
  uint64_t IdV;
  uint64_t StartNsV;
  PhaseSpan Phases[kNumReqPhases];
};

/// RAII phase bracket; a null context makes it a no-op, so analyzer code
/// can open scopes unconditionally.
class PhaseScope {
public:
  PhaseScope(RequestContext *Context, ReqPhase Phase)
      : Ctx(Context), P(Phase) {
    if (Ctx)
      Ctx->begin(P);
  }
  ~PhaseScope() {
    if (Ctx)
      Ctx->end(P);
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
  RequestContext *Ctx;
  ReqPhase P;
};

/// A completed-request summary, small enough to keep hundreds of.
struct FlightRecord {
  uint64_t Id = 0;
  uint64_t StartNs = 0;
  uint64_t TotalNs = 0;
  uint64_t PhaseNs[kNumReqPhases] = {};
  uint32_t CacheHits = 0;
  uint32_t CacheMisses = 0;
  uint32_t DirtyCone = 0;
  uint32_t Sections = 0;
  std::string Peer;
  std::string Op;
  std::string Unit;
  std::string Outcome;
};

/// Bounded ring of the last N FlightRecords. record() is O(1); snapshot()
/// copies oldest-first. dump() writes every retained record through the
/// structured logger, rate-limited so an overload storm produces one dump,
/// not one per rejected request.
class FlightRecorder {
public:
  explicit FlightRecorder(size_t Capacity = 256);

  void record(FlightRecord R);
  /// Convenience: summarize a finished context (TotalNs measured by the
  /// caller so recording cost is excluded).
  void record(const RequestContext &Ctx, uint64_t TotalNs);

  /// Retained records, oldest-first.
  std::vector<FlightRecord> snapshot() const;
  /// Total records ever pushed (monotonic).
  uint64_t recorded() const;
  size_t capacity() const { return Cap; }

  /// {"capacity":..,"recorded":..,"records":[...]} oldest-first.
  void writeJson(std::ostream &OS) const;

  /// Emits one "flightrecord.dump" header line plus one line per retained
  /// record at Warn level. Returns false when suppressed by the rate
  /// limit (one dump per \p MinGapNs) or when the ring is empty.
  bool dump(Logger &Log, std::string_view Reason,
            uint64_t MinGapNs = 5'000'000'000ull);

  void clear();

private:
  void appendJson(std::string &Out, const FlightRecord &R) const;

  mutable std::mutex Mu;
  std::vector<FlightRecord> Ring; // Ring[Written % Cap] is the write slot
  size_t Cap;
  uint64_t Written = 0;
  uint64_t LastDumpNs = 0;
};

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_REQUESTTELEMETRY_H
