//===--- Trace.cpp - Per-thread ring-buffer event tracer -----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/RequestTelemetry.h"
#include "runtime/Mode.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

using namespace lockin;
using namespace lockin::obs;

namespace {

/// Distinguishes tracer instances (and clear() generations) in the
/// per-thread buffer cache without dangling-pointer ABA.
std::atomic<uint64_t> NextTracerGen{1};

struct TlCacheEntry {
  uint64_t Gen = 0;
  const Tracer *T = nullptr;
  ThreadTraceBuffer *B = nullptr;
};

} // namespace

ThreadTraceBuffer::ThreadTraceBuffer(size_t Capacity) {
  size_t Cap = std::bit_ceil(Capacity < 2 ? size_t(2) : Capacity);
  Ring.resize(Cap);
  Mask = Cap - 1;
  Owner = std::this_thread::get_id();
}

ThreadTraceBuffer &Tracer::buffer() {
  thread_local TlCacheEntry Cache[4] = {};
  uint64_t Gen = Epoch.load(std::memory_order_acquire);
  if (Gen == 0) {
    // First buffer() on this tracer instance: take a process-unique
    // generation so cache entries never alias across instances.
    uint64_t Fresh = NextTracerGen.fetch_add(1, std::memory_order_relaxed);
    uint64_t Expected = 0;
    Epoch.compare_exchange_strong(Expected, Fresh,
                                  std::memory_order_acq_rel);
    Gen = Epoch.load(std::memory_order_acquire);
  }
  for (TlCacheEntry &E : Cache)
    if (E.T == this && E.Gen == Gen)
      return *E.B;

  std::lock_guard<std::mutex> Lock(Mu);
  ThreadTraceBuffer *B = nullptr;
  std::thread::id Me = std::this_thread::get_id();
  for (const auto &Buf : Buffers)
    if (Buf->Owner == Me) {
      B = Buf.get();
      break;
    }
  if (!B) {
    Buffers.push_back(std::make_unique<ThreadTraceBuffer>(Capacity));
    B = Buffers.back().get();
    B->TidV = static_cast<uint32_t>(Buffers.size());
    MetricsRegistry &Reg = Metrics ? *Metrics : obs::metrics();
    B->DroppedCounter = &Reg.counter("trace.dropped_events");
  }
  // Shift-in LRU: slot 0 is most recent.
  for (size_t I = std::size(Cache) - 1; I > 0; --I)
    Cache[I] = Cache[I - 1];
  Cache[0] = {Gen, this, B};
  return *B;
}

uint32_t Tracer::internName(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return static_cast<uint32_t>(I);
  Names.emplace_back(Name);
  return static_cast<uint32_t>(Names.size() - 1);
}

uint64_t Tracer::totalDropped() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->dropped();
  return N;
}

uint64_t Tracer::totalWritten() const {
  std::lock_guard<std::mutex> Lock(Mu);
  uint64_t N = 0;
  for (const auto &B : Buffers)
    N += B->written();
  return N;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Buffers.clear();
  Names.clear();
  Epoch.store(NextTracerGen.fetch_add(1, std::memory_order_relaxed),
              std::memory_order_release);
}

namespace {

void jsonEscape(std::string &Out, std::string_view S) {
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
}

bool isSimKind(EventKind K) {
  return K == EventKind::SimOpSpan || K == EventKind::SimWaitSpan ||
         K == EventKind::SimAbort;
}

} // namespace

void Tracer::writeChromeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(Mu);
  OS << "{\"traceEvents\": [\n";
  bool First = true;
  auto Emit = [&](const char *Line) {
    OS << (First ? "" : ",\n") << Line;
    First = false;
  };
  char Line[256];

  // Process/thread metadata rows. pid 1 = real time, pid 2 = simulated.
  Emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
       "\"args\": {\"name\": \"lockin\"}}");
  Emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 2, "
       "\"args\": {\"name\": \"lockin-sim (ts in cycles)\"}}");
  Emit("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 3, "
       "\"args\": {\"name\": \"lockin-service (per-request)\"}}");
  for (const auto &B : Buffers) {
    std::snprintf(Line, sizeof(Line),
                  "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                  "\"tid\": %" PRIu32
                  ", \"args\": {\"name\": \"thread %" PRIu32 "\"}}",
                  B->tid(), B->tid());
    Emit(Line);
  }

  for (const auto &B : Buffers) {
    size_t N = B->size();
    for (size_t I = 0; I < N; ++I) {
      const TraceEvent &E = B->at(I);
      // pid 1 = real time, pid 2 = simulated time, pid 3 = service
      // requests (one Chrome "thread" row per request id).
      unsigned Pid = isSimKind(E.Kind)                      ? 2
                     : E.Kind == EventKind::RequestPhaseSpan ? 3
                                                             : 1;
      uint32_t Tid = E.Tid ? E.Tid : B->tid();
      // Chrome wants microseconds; simulated events pass cycles through
      // 1:1 (the sim's own time base).
      double Ts = isSimKind(E.Kind) ? static_cast<double>(E.TsNs)
                                    : static_cast<double>(E.TsNs) / 1000.0;
      double Dur = isSimKind(E.Kind) ? static_cast<double>(E.DurNs)
                                     : static_cast<double>(E.DurNs) / 1000.0;
      std::string Name;
      std::string Args;
      // Sized for the worst-case X-span tail: two %.3f timestamps can
      // each run ~17 chars when the clock origin is large, plus the
      // longest args payload.
      char Buf[192];
      switch (E.Kind) {
      case EventKind::SectionSpan:
        Name = "section";
        std::snprintf(Buf, sizeof(Buf), "{\"section\": %" PRIu64 "}", E.A);
        Args = Buf;
        break;
      case EventKind::AcquireSpan:
        Name = "acquireAll";
        std::snprintf(Buf, sizeof(Buf), "{\"nodes\": %" PRIu64 "}", E.A);
        Args = Buf;
        break;
      case EventKind::NodeWaitSpan:
        Name = "lock-wait";
        std::snprintf(Buf, sizeof(Buf),
                      "{\"node\": %" PRIu64 ", \"mode\": \"%s\"}", E.A,
                      rt::modeName(static_cast<rt::Mode>(E.Mode)));
        Args = Buf;
        break;
      case EventKind::PassSpan:
        if (E.A < Names.size())
          jsonEscape(Name, Names[E.A]);
        else
          Name = "pass";
        Args = "{}";
        break;
      case EventKind::StepsCount:
        Name = "interp-steps";
        break;
      case EventKind::SimOpSpan:
        Name = "sim-op";
        std::snprintf(Buf, sizeof(Buf), "{\"op\": %" PRIu64 "}", E.A);
        Args = Buf;
        break;
      case EventKind::SimWaitSpan:
        Name = "sim-blocked";
        Args = "{}";
        break;
      case EventKind::SimAbort:
        Name = "sim-abort";
        Args = "{}";
        break;
      case EventKind::PolicyEvent: {
        // Mirrors rt::adaptive::PolicyAction (obs cannot include the
        // runtime's adaptive header without a dependency cycle).
        static const char *const Actions[] = {
            "bias-set",     "bias-clear", "escalate", "deescalate",
            "migrate-stm",  "migrate-lock"};
        unsigned A = E.Mode < 6 ? E.Mode : 0;
        Name = "policy:";
        Name += Actions[A];
        std::snprintf(Buf, sizeof(Buf), "{\"target\": %" PRIu64 "}", E.A);
        Args = Buf;
        break;
      }
      case EventKind::RequestPhaseSpan: {
        unsigned P = E.Mode < kNumReqPhases ? E.Mode : 0;
        Name = "req:";
        Name += reqPhaseName(static_cast<ReqPhase>(P));
        std::snprintf(Buf, sizeof(Buf), "{\"request\": %" PRIu64 "}", E.A);
        Args = Buf;
        break;
      }
      }
      std::string Out = "{\"name\": \"";
      Out += Name;
      Out += "\", \"ph\": \"";
      if (E.Kind == EventKind::StepsCount) {
        std::snprintf(Buf, sizeof(Buf),
                      "C\", \"ts\": %.3f, \"pid\": %u, \"tid\": %" PRIu32
                      ", \"args\": {\"steps\": %" PRIu64 "}}",
                      Ts, Pid, Tid, E.A);
        Out += Buf;
      } else if (E.Kind == EventKind::SimAbort ||
                 E.Kind == EventKind::PolicyEvent) {
        std::snprintf(Buf, sizeof(Buf),
                      "i\", \"s\": \"t\", \"ts\": %.3f, \"pid\": %u, "
                      "\"tid\": %" PRIu32 ", \"args\": %s}",
                      Ts, Pid, Tid, Args.c_str());
        Out += Buf;
      } else {
        std::snprintf(Buf, sizeof(Buf),
                      "X\", \"ts\": %.3f, \"dur\": %.3f, \"pid\": %u, "
                      "\"tid\": %" PRIu32 ", \"args\": %s}",
                      Ts, Dur, Pid, Tid, Args.c_str());
        Out += Buf;
      }
      Emit(Out.c_str());
    }
  }
  OS << "\n], \"droppedEvents\": ";
  uint64_t Dropped = 0;
  for (const auto &B : Buffers)
    Dropped += B->dropped();
  OS << Dropped << "}\n";
}

Tracer &obs::tracer() {
  static Tracer T;
  return T;
}
