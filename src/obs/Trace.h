//===--- Trace.h - Per-thread ring-buffer event tracer ----------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Event tracing for runtime + pipeline: each thread writes POD TraceEvent
/// records into its own fixed-capacity ring buffer — plain stores plus one
/// release store of the cursor, no locks, no allocation after the buffer
/// exists — and the Tracer drains every buffer into Chrome trace-event
/// JSON ("traceEvents" array of "X" complete events) at shutdown. The
/// output loads directly in chrome://tracing and Perfetto.
///
/// Overflow policy: the ring wraps, overwriting the oldest events; the
/// monotonically increasing cursor makes the number of overwritten
/// ("dropped") events exact. The drained trace is the most recent
/// `capacity` events per thread plus a per-thread drop count in metadata.
///
/// Concurrency: one writer per buffer (the owning thread). Draining is
/// race-free once writers have quiesced — the cursor's release/acquire
/// pair publishes every slot write — which is the shutdown situation the
/// tool uses; the TSan test covers exactly this write-join-drain pattern.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_OBS_TRACE_H
#define LOCKIN_OBS_TRACE_H

#include "obs/Metrics.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace lockin {
namespace obs {

/// What a trace event describes; determines its rendered name and which
/// Chrome "process" row it lands on (real-time vs simulated-time).
enum class EventKind : uint8_t {
  SectionSpan,  ///< atomic section, A = section id
  AcquireSpan,  ///< one acquireAll call, A = nodes acquired
  NodeWaitSpan, ///< parked wait for one lock node, A = node id
  PassSpan,     ///< pipeline pass, A = interned name id
  StepsCount,   ///< interpreter steps counter sample, A = steps so far
  SimOpSpan,    ///< simulated atomic op, A = op index, Tid = logical thread
  SimWaitSpan,  ///< simulated blocked interval, Tid = logical thread
  SimAbort,     ///< simulated STM abort (instant), Tid = logical thread
  PolicyEvent,  ///< adaptive-runtime transition (instant), A = target id,
                ///< Mode = adaptive::PolicyAction
  RequestPhaseSpan, ///< service request phase, A = request id,
                    ///< Mode = obs::ReqPhase, Tid = low 32 bits of id
};

/// One POD trace record. Spans use TsNs/DurNs; instants and counters use
/// TsNs with DurNs = 0. Tid = 0 means "the emitting thread"; simulated
/// events carry a logical thread id instead (and TsNs in abstract cycles).
struct TraceEvent {
  uint64_t TsNs = 0;
  uint64_t DurNs = 0;
  uint64_t A = 0;
  uint32_t Tid = 0;
  EventKind Kind = EventKind::SectionSpan;
  uint8_t Mode = 0; ///< lock mode for NodeWaitSpan
};

/// Fixed-capacity single-writer ring of TraceEvents.
class ThreadTraceBuffer {
public:
  /// \p Capacity is rounded up to a power of two.
  explicit ThreadTraceBuffer(size_t Capacity);

  void emit(const TraceEvent &E) {
    uint64_t C = Cursor.load(std::memory_order_relaxed);
    // A full ring means this write overwrites the oldest retained event;
    // surface the truncation in the metrics registry instead of losing
    // it silently (`trace.dropped_events`).
    if (C >= Ring.size() && DroppedCounter)
      DroppedCounter->inc();
    Ring[C & Mask] = E;
    // Release: a drainer that acquires the cursor sees the slot contents.
    Cursor.store(C + 1, std::memory_order_release);
  }

  size_t capacity() const { return Ring.size(); }
  /// Total events ever written (monotonic).
  uint64_t written() const {
    return Cursor.load(std::memory_order_acquire);
  }
  /// Events overwritten by ring wrap-around.
  uint64_t dropped() const {
    uint64_t W = written();
    return W > Ring.size() ? W - Ring.size() : 0;
  }
  /// Events currently retained.
  size_t size() const {
    uint64_t W = written();
    return W < Ring.size() ? static_cast<size_t>(W) : Ring.size();
  }
  /// Retained events oldest-first: I in [0, size()).
  const TraceEvent &at(size_t I) const {
    uint64_t W = written();
    uint64_t Start = W > Ring.size() ? W - Ring.size() : 0;
    return Ring[(Start + I) & Mask];
  }

  std::thread::id ownerThread() const { return Owner; }
  uint32_t tid() const { return TidV; }

private:
  friend class Tracer;
  std::vector<TraceEvent> Ring;
  uint64_t Mask;
  std::atomic<uint64_t> Cursor{0};
  std::thread::id Owner;
  uint32_t TidV = 0;
  Counter *DroppedCounter = nullptr; // set once at creation by the Tracer
};

/// Owns one ThreadTraceBuffer per emitting thread (created on first use,
/// kept until the tracer is cleared so buffers outlive their threads) and
/// serializes them to Chrome trace JSON.
class Tracer {
public:
  Tracer() = default;
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Per-thread ring capacity for buffers created after this call.
  void setCapacity(size_t Events) { Capacity = Events; }

  /// Registry that receives the `trace.dropped_events` overflow counter
  /// for buffers created after this call; null (the default) means the
  /// process-wide obs::metrics(). Tests point private tracers at private
  /// registries.
  void setMetrics(MetricsRegistry *Reg) { Metrics = Reg; }

  /// The calling thread's buffer (created on first use).
  ThreadTraceBuffer &buffer();

  /// Emit on the calling thread's buffer iff the tracer is enabled.
  void emit(const TraceEvent &E) {
    if (enabled())
      buffer().emit(E);
  }
  void span(EventKind Kind, uint64_t TsNs, uint64_t DurNs, uint64_t A,
            uint32_t Tid = 0, uint8_t Mode = 0) {
    emit(TraceEvent{TsNs, DurNs, A, Tid, Kind, Mode});
  }

  /// Interns \p Name for PassSpan events; returns its id.
  uint32_t internName(std::string_view Name);

  /// Drains every buffer into one Chrome trace-event JSON document.
  /// Call after emitting threads have quiesced (see file comment).
  void writeChromeJson(std::ostream &OS) const;

  uint64_t totalDropped() const;
  uint64_t totalWritten() const;

  /// Drops every buffer and interned name (tests).
  void clear();

private:
  std::atomic<bool> Enabled{false};
  size_t Capacity = 1 << 15;
  MetricsRegistry *Metrics = nullptr; // null = obs::metrics()
  mutable std::mutex Mu; // guards Buffers + Names
  std::vector<std::unique_ptr<ThreadTraceBuffer>> Buffers;
  std::vector<std::string> Names;
  // Bumped on clear() so stale thread-local buffer caches miss.
  std::atomic<uint64_t> Epoch{0};
};

/// The process-wide default tracer (what --trace-out drains).
Tracer &tracer();

} // namespace obs
} // namespace lockin

#endif // LOCKIN_OBS_TRACE_H
