//===--- Steensgaard.cpp - Unification-based points-to analysis ---------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "pointsto/Steensgaard.h"

#include <algorithm>
#include <cassert>

using namespace lockin;
using namespace lockin::ir;

static constexpr uint32_t NoCell = ~0u;

PointsToAnalysis::Cell PointsToAnalysis::find(Cell C) const {
  while (Parent[C] != C) {
    Parent[C] = Parent[Parent[C]];
    C = Parent[C];
  }
  return C;
}

void PointsToAnalysis::unify(Cell A, Cell B) {
  A = find(A);
  B = find(B);
  if (A == B)
    return;
  // Deterministic root choice: the smaller index wins. Cells are created in
  // a fixed order, so region numbering is reproducible.
  if (B < A)
    std::swap(A, B);
  Cell PointeeA = Pointee[A];
  Cell PointeeB = Pointee[B];
  Parent[B] = A;
  if (PointeeB == NoCell)
    return;
  if (PointeeA == NoCell) {
    Pointee[A] = PointeeB;
    return;
  }
  // Both classes point somewhere: their targets collapse too. This is the
  // recursive step that makes Steensgaard's analysis almost linear.
  unify(PointeeA, PointeeB);
}

PointsToAnalysis::Cell PointsToAnalysis::pointeeCell(Cell C) {
  C = find(C);
  if (Pointee[C] == NoCell) {
    Cell Fresh = static_cast<Cell>(Parent.size());
    Parent.push_back(Fresh);
    Pointee.push_back(NoCell);
    Pointee[C] = Fresh;
  }
  return find(Pointee[C]);
}

PointsToAnalysis::Cell
PointsToAnalysis::cellOfVar(const ir::Variable *V) const {
  auto It = VarCells.find(V);
  assert(It != VarCells.end() && "variable has no cell");
  return It->second;
}

void PointsToAnalysis::processStmt(const IrStmt *S) {
  switch (S->kind()) {
  case IrStmt::Kind::Copy: {
    const auto *C = cast<CopyStmt>(S);
    unify(pointeeCell(cellOfVar(C->def())), pointeeCell(cellOfVar(C->src())));
    return;
  }
  case IrStmt::Kind::AddrOf: {
    const auto *A = cast<AddrOfStmt>(S);
    unify(pointeeCell(cellOfVar(A->def())), cellOfVar(A->target()));
    return;
  }
  case IrStmt::Kind::FieldAddr: {
    const auto *F = cast<FieldAddrStmt>(S);
    unify(pointeeCell(cellOfVar(F->def())), pointeeCell(cellOfVar(F->base())));
    return;
  }
  case IrStmt::Kind::IndexAddr: {
    const auto *Ix = cast<IndexAddrStmt>(S);
    unify(pointeeCell(cellOfVar(Ix->def())),
          pointeeCell(cellOfVar(Ix->base())));
    return;
  }
  case IrStmt::Kind::Load: {
    const auto *L = cast<LoadStmt>(S);
    unify(pointeeCell(cellOfVar(L->def())),
          pointeeCell(pointeeCell(cellOfVar(L->addr()))));
    return;
  }
  case IrStmt::Kind::Store: {
    const auto *St = cast<StoreStmt>(S);
    unify(pointeeCell(pointeeCell(cellOfVar(St->addr()))),
          pointeeCell(cellOfVar(St->value())));
    return;
  }
  case IrStmt::Kind::Alloc: {
    const auto *A = cast<AllocStmt>(S);
    unify(pointeeCell(cellOfVar(A->def())), AllocCells[A->siteId()]);
    return;
  }
  case IrStmt::Kind::Call: {
    const auto *C = cast<CallStmt>(S);
    const IrFunction *Callee = C->callee();
    for (size_t I = 0; I < C->args().size(); ++I)
      unify(pointeeCell(cellOfVar(Callee->param(static_cast<unsigned>(I)))),
            pointeeCell(cellOfVar(C->args()[I])));
    if (C->def() && Callee->retVar())
      unify(pointeeCell(cellOfVar(C->def())),
            pointeeCell(cellOfVar(Callee->retVar())));
    return;
  }
  case IrStmt::Kind::Spawn: {
    const auto *Sp = cast<SpawnIrStmt>(S);
    for (size_t I = 0; I < Sp->args().size(); ++I)
      unify(pointeeCell(
                cellOfVar(Sp->callee()->param(static_cast<unsigned>(I)))),
            pointeeCell(cellOfVar(Sp->args()[I])));
    return;
  }
  case IrStmt::Kind::Return: {
    const auto *R = cast<ReturnIrStmt>(S);
    // Handled per-function in the constructor (needs the enclosing
    // function's ret var); nothing to do here.
    (void)R;
    return;
  }
  case IrStmt::Kind::ConstInt:
  case IrStmt::Kind::ConstNull:
  case IrStmt::Kind::IntBin:
  case IrStmt::Kind::Cmp:
  case IrStmt::Kind::Assert:
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      processStmt(Child.get());
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    processStmt(I->thenStmt());
    if (I->elseStmt())
      processStmt(I->elseStmt());
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    processStmt(W->prelude());
    processStmt(W->body());
    return;
  }
  case IrStmt::Kind::Atomic:
    processStmt(cast<AtomicIrStmt>(S)->body());
    return;
  }
}

/// Unifies ret_f with every returned value in \p S.
static void collectReturns(const IrStmt *S,
                           std::vector<const ReturnIrStmt *> &Out) {
  switch (S->kind()) {
  case IrStmt::Kind::Return:
    Out.push_back(cast<ReturnIrStmt>(S));
    return;
  case IrStmt::Kind::Seq:
    for (const IrStmtPtr &Child : cast<SeqStmt>(S)->stmts())
      collectReturns(Child.get(), Out);
    return;
  case IrStmt::Kind::If: {
    const auto *I = cast<IfIrStmt>(S);
    collectReturns(I->thenStmt(), Out);
    if (I->elseStmt())
      collectReturns(I->elseStmt(), Out);
    return;
  }
  case IrStmt::Kind::While: {
    const auto *W = cast<WhileIrStmt>(S);
    collectReturns(W->prelude(), Out);
    collectReturns(W->body(), Out);
    return;
  }
  case IrStmt::Kind::Atomic:
    collectReturns(cast<AtomicIrStmt>(S)->body(), Out);
    return;
  default:
    return;
  }
}

PointsToAnalysis::PointsToAnalysis(const IrModule &M) : Module(M) {
  // Create cells in a canonical order: globals, alloc sites, then each
  // function's variables.
  auto NewCell = [&]() {
    Cell C = static_cast<Cell>(Parent.size());
    Parent.push_back(C);
    Pointee.push_back(NoCell);
    return C;
  };

  for (const auto &G : M.globals())
    VarCells[G.get()] = NewCell();
  AllocCells.reserve(M.allocSites().size());
  for (size_t I = 0; I < M.allocSites().size(); ++I)
    AllocCells.push_back(NewCell());
  for (const auto &F : M.functions())
    for (const auto &V : F->variables())
      VarCells[V.get()] = NewCell();

  // One pass over every statement; unification is order-insensitive.
  for (const auto &F : M.functions()) {
    if (F->body())
      processStmt(F->body());
    if (F->retVar()) {
      std::vector<const ReturnIrStmt *> Returns;
      collectReturns(F->body(), Returns);
      for (const ReturnIrStmt *R : Returns)
        if (R->value())
          unify(pointeeCell(cellOfVar(F->retVar())),
                pointeeCell(cellOfVar(R->value())));
    }
  }

  // Number the regions: walk location cells in creation order; each root
  // gets an id the first time it is seen. Pointee links are resolved after
  // all ids exist.
  auto AddRegion = [&](Cell Root, const std::string &MemberName) {
    auto [It, Inserted] = RegionOfRoot.try_emplace(
        Root, static_cast<RegionId>(RegionPointee.size()));
    if (Inserted) {
      RegionPointee.push_back(InvalidRegion);
      RegionNames.emplace_back();
    }
    std::string &Name = RegionNames[It->second];
    if (Name.size() < 80) {
      if (!Name.empty())
        Name += ",";
      Name += MemberName;
    }
  };

  for (const auto &G : M.globals())
    AddRegion(find(VarCells[G.get()]), "&" + G->name());
  for (size_t I = 0; I < M.allocSites().size(); ++I)
    AddRegion(find(AllocCells[I]), "new#" + std::to_string(I));
  for (const auto &F : M.functions())
    for (const auto &V : F->variables())
      AddRegion(find(VarCells[V.get()]), "&" + F->name() + "::" + V->name());

  // A pointee class that contains no variable or allocation site can still
  // be dereferenced through (e.g. chains built only from other pointees);
  // give every reachable pointee a region as well. Iterate to closure.
  size_t Before;
  do {
    Before = RegionOfRoot.size();
    std::vector<std::pair<Cell, RegionId>> Roots(RegionOfRoot.begin(),
                                                 RegionOfRoot.end());
    std::sort(Roots.begin(), Roots.end(),
              [](const auto &A, const auto &B) {
                return A.second < B.second;
              });
    for (const auto &[Root, Id] : Roots) {
      Cell P = Pointee[Root];
      if (P == NoCell)
        continue;
      AddRegion(find(P), "*region" + std::to_string(Id));
    }
  } while (RegionOfRoot.size() != Before);

  // Resolve deref links.
  for (const auto &[Root, Id] : RegionOfRoot) {
    Cell P = Pointee[Root];
    if (P == NoCell)
      continue;
    auto It = RegionOfRoot.find(find(P));
    if (It != RegionOfRoot.end())
      RegionPointee[Id] = It->second;
  }
}

RegionId PointsToAnalysis::regionOfVarCell(const ir::Variable *V) const {
  auto It = VarCells.find(V);
  if (It == VarCells.end())
    return InvalidRegion;
  auto RIt = RegionOfRoot.find(find(It->second));
  return RIt == RegionOfRoot.end() ? InvalidRegion : RIt->second;
}

RegionId PointsToAnalysis::regionOfAllocSite(uint32_t SiteId) const {
  if (SiteId >= AllocCells.size())
    return InvalidRegion;
  auto It = RegionOfRoot.find(find(AllocCells[SiteId]));
  return It == RegionOfRoot.end() ? InvalidRegion : It->second;
}

RegionId PointsToAnalysis::derefRegion(RegionId R) const {
  if (R == InvalidRegion || R >= RegionPointee.size())
    return InvalidRegion;
  return RegionPointee[R];
}

std::string PointsToAnalysis::describeRegion(RegionId R) const {
  if (R == InvalidRegion)
    return "<invalid>";
  if (R >= RegionNames.size())
    return "<out-of-range>";
  return "{" + RegionNames[R] + "}";
}
