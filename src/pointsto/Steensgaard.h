//===--- Steensgaard.h - Unification-based points-to analysis ---*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steensgaard's flow-insensitive, context-insensitive, unification-based
/// pointer analysis [Steensgaard, POPL'96], the instance the paper uses for
/// both the coarse lock scheme Σ_≡ and the mayAlias oracle (§4.3).
///
/// The abstraction is field-insensitive: every variable has one cell (the
/// location &x), every allocation site has one cell covering the whole
/// object, and each equivalence class of cells (ECR) has at most one
/// pointee class. Pointed-to equivalence classes are the *regions* used as
/// coarse-grain locks; two expressions may alias iff their locations fall
/// in the same region.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_POINTSTO_STEENSGAARD_H
#define LOCKIN_POINTSTO_STEENSGAARD_H

#include "ir/Ir.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockin {

/// Identifies one points-to region (one pointed-to ECR). Region ids are
/// dense, deterministic across runs, and shared with the lock runtime.
using RegionId = uint32_t;
constexpr RegionId InvalidRegion = ~0u;

/// Runs on construction; all queries are O(alpha) afterwards.
class PointsToAnalysis {
public:
  explicit PointsToAnalysis(const ir::IrModule &M);

  /// Region containing the location &V (the cell that stores V's value).
  RegionId regionOfVarCell(const ir::Variable *V) const;

  /// Region containing every location of objects allocated at \p SiteId.
  RegionId regionOfAllocSite(uint32_t SiteId) const;

  /// Region reached by dereferencing a value stored in \p R, or
  /// InvalidRegion if nothing in R was ever assigned a pointer.
  RegionId derefRegion(RegionId R) const;

  /// Field/array offsets stay within the same (field-insensitive) region.
  RegionId offsetRegion(RegionId R) const { return R; }

  /// Number of region ids handed out; ids are in [0, numRegions()).
  unsigned numRegions() const {
    return static_cast<unsigned>(RegionPointee.size());
  }

  /// Two locations may alias iff they are in the same region.
  bool mayAlias(RegionId A, RegionId B) const {
    return A != InvalidRegion && A == B;
  }

  /// Debug rendering: the variables and allocation sites in \p R.
  std::string describeRegion(RegionId R) const;

private:
  using Cell = uint32_t;

  Cell find(Cell C) const;
  void unify(Cell A, Cell B);
  Cell pointeeCell(Cell C);
  Cell cellOfVar(const ir::Variable *V) const;

  void processStmt(const ir::IrStmt *S);

  // Union-find state. Parent/pointee are indexed by cell.
  mutable std::vector<Cell> Parent;
  std::vector<Cell> Pointee; // ~0u when absent; valid only at roots.

  std::unordered_map<const ir::Variable *, Cell> VarCells;
  std::vector<Cell> AllocCells; // indexed by alloc-site id

  // Region numbering, assigned after unification completes.
  std::unordered_map<Cell, RegionId> RegionOfRoot;
  std::vector<RegionId> RegionPointee;   // region -> deref region
  std::vector<std::string> RegionNames;  // region -> debug description

  const ir::IrModule &Module;
};

} // namespace lockin

#endif // LOCKIN_POINTSTO_STEENSGAARD_H
