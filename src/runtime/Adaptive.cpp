//===--- Adaptive.cpp - Contention-adaptive hybrid lock runtime ----------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "runtime/Adaptive.h"

#include "obs/Log.h"
#include "obs/Obs.h"

#include <bit>
#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

using namespace lockin;
using namespace lockin::rt;
using namespace lockin::rt::adaptive;

//===----------------------------------------------------------------------===//
// Gate barriers
//===----------------------------------------------------------------------===//

namespace {

// linux/membarrier.h command values (spelled out so the build does not
// depend on kernel headers being present).
constexpr int kMembarrierCmdQuery = 0;
constexpr int kMembarrierCmdPrivateExpedited = 1 << 3;
constexpr int kMembarrierCmdRegisterPrivateExpedited = 1 << 4;

bool detectMembarrier() {
#if defined(__linux__) && defined(SYS_membarrier)
  long Supported = syscall(SYS_membarrier, kMembarrierCmdQuery, 0, 0);
  if (Supported < 0 || !(Supported & kMembarrierCmdPrivateExpedited))
    return false;
  if (syscall(SYS_membarrier, kMembarrierCmdRegisterPrivateExpedited, 0, 0) <
      0)
    return false;
  return true;
#else
  return false;
#endif
}

} // namespace

bool AdaptiveEngine::useMembarrier() {
  // First call registers PRIVATE_EXPEDITED for the process; the engine
  // constructor forces that before any thread reaches the gate.
  static const bool Use = detectMembarrier();
  return Use;
}

void AdaptiveEngine::gateHeavyBarrier() {
#if defined(__linux__) && defined(SYS_membarrier)
  if (useMembarrier()) {
    syscall(SYS_membarrier, kMembarrierCmdPrivateExpedited, 0, 0);
    return;
  }
#endif
  // Fallback Dekker: the fast side runs a real seq_cst fence between its
  // slot store and backend load (gateFastBarrier), pairing with this one.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

//===----------------------------------------------------------------------===//
// Construction / threads / domains
//===----------------------------------------------------------------------===//

AdaptiveEngine::AdaptiveEngine(LockRuntime &RT, AdaptiveConfig Config)
    : RT(RT), Config(Config), Slots(new InflightSlot[kMaxSlots]) {
  ProfInitiallyOn = RT.profiler().enabled();
  (void)useMembarrier();
  obs::MetricsRegistry &Reg = RT.registry();
  MEpochs = &Reg.counter("adaptive.epochs");
  MBiasSet = &Reg.counter("adaptive.reader_bias_set");
  MBiasCleared = &Reg.counter("adaptive.reader_bias_cleared");
  MEscalations = &Reg.counter("adaptive.region_escalations");
  MDeescalations = &Reg.counter("adaptive.region_deescalations");
  MStmMigrations = &Reg.counter("adaptive.stm_migrations");
  MStmFallbacks = &Reg.counter("adaptive.stm_fallbacks");
  RegionStates.resize(RT.numRegions());
}

AdaptiveEngine::~AdaptiveEngine() {
  {
    std::lock_guard<std::mutex> Lock(StopMu);
    StopFlag = true;
  }
  StopCv.notify_all();
  if (EpochThread.joinable())
    EpochThread.join();
  // The engine duty-cycles the profiler only when it owned the arming
  // decision; a user-armed profiler is left exactly as found.
  if (!ProfInitiallyOn)
    RT.profiler().setEnabled(false);
}

uint32_t AdaptiveEngine::addDomain() {
  Domains.push_back(std::make_unique<DomainState>());
  return static_cast<uint32_t>(Domains.size() - 1);
}

void AdaptiveEngine::bindSection(uint32_t Domain, uint32_t SectionTag) {
  Domains[Domain]->Tags.push_back(SectionTag);
}

void AdaptiveEngine::start() {
  if (Config.EpochMs == 0 || EpochThread.joinable())
    return;
  EpochThread = std::thread([this] {
    std::unique_lock<std::mutex> Lock(StopMu);
    while (!StopFlag) {
      if (StopCv.wait_for(Lock, std::chrono::milliseconds(Config.EpochMs),
                          [this] { return StopFlag; }))
        break;
      Lock.unlock();
      tick();
      Lock.lock();
    }
  });
}

uint32_t AdaptiveEngine::registerThread() {
  std::lock_guard<std::mutex> Lock(SlotMu);
  if (!FreeSlots.empty()) {
    uint32_t S = FreeSlots.back();
    FreeSlots.pop_back();
    return S;
  }
  uint32_t S = SlotHighWater.load(std::memory_order_relaxed);
  assert(S < kMaxSlots && "more live threads than inflight slots");
  SlotHighWater.store(S + 1, std::memory_order_release);
  return S;
}

void AdaptiveEngine::unregisterThread(uint32_t Slot) {
  Slots[Slot].V.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(SlotMu);
  Slots[Slot].LocalSections = 0;
  FreeSlots.push_back(Slot);
}

//===----------------------------------------------------------------------===//
// Backend flips
//===----------------------------------------------------------------------===//

void AdaptiveEngine::flipDomain(uint32_t Domain, Backend To) {
  DomainState &D = *Domains[Domain];
  uint32_t Cur = D.Word.load(std::memory_order_relaxed);
  if ((Cur & 1u) == static_cast<uint32_t>(To))
    return;
  // 1. Announce the transition; new entrants now bounce off the gate.
  D.Word.fetch_or(kTransitioningBit, std::memory_order_seq_cst);
  // 2. Heavy half of the asymmetric Dekker against the entry protocol's
  //    slot-store → backend-load: after this, every thread has either
  //    seen the transitioning bit (and backed off) or its inflight slot
  //    store is visible to the scan below.
  gateHeavyBarrier();
  // 3. Drain: wait until no thread is inside a section of this domain.
  //    Sections always exit (locks are released at section end), so this
  //    terminates. The acquire loads pair with each exiting thread's
  //    release store, carrying its section's memory effects into the
  //    flip — and the release publish below carries them into the first
  //    entrant on the new backend.
  uint32_t N = SlotHighWater.load(std::memory_order_acquire);
  for (uint32_t I = 0; I < N; ++I)
    while (Slots[I].V.load(std::memory_order_acquire) == Domain + 1)
      std::this_thread::yield();
  // 4. Publish the new backend and lift the gate.
  D.Word.store(static_cast<uint32_t>(To), std::memory_order_release);
}

void AdaptiveEngine::forceBackend(uint32_t Domain, Backend B) {
  // Callers must hold no locks and be outside any gated section.
  std::lock_guard<std::mutex> Lock(PolicyMu);
  flipDomain(Domain, B);
}

//===----------------------------------------------------------------------===//
// Policy epochs
//===----------------------------------------------------------------------===//

void AdaptiveEngine::policyTrace(PolicyAction A, uint64_t Target) {
  obs::tracer().span(obs::EventKind::PolicyEvent, obs::nowNs(), 0, Target, 0,
                     static_cast<uint8_t>(A));
  if constexpr (obs::kEnabled) {
    // Mirror every policy decision into the structured log so a daemon's
    // adaptive-runtime behaviour lands in the same stream as its request
    // telemetry (the trace ring only surfaces on --trace-out).
    static const char *const Names[] = {"bias-set",   "bias-clear",
                                        "escalate",   "deescalate",
                                        "migrate-stm", "migrate-lock"};
    obs::log()
        .event(obs::LogLevel::Info, "adaptive.policy")
        .str("action", Names[static_cast<uint8_t>(A)])
        .num("target", Target);
  }
}

void AdaptiveEngine::snapshot() {
  obs::LockProfiler &P = RT.profiler();
  RT.forEachNode([&](LockNode &N, const obs::LockNodeInfo &Info) {
    if (!N.ObsId)
      return;
    NodeState &St = NodeStates[&N];
    bool Fresh = !St.Node;
    if (Fresh) {
      St.Node = &N;
      St.Info = Info;
      St.Slot = &P.nodeSlot(N.ObsId);
    }
    obs::NodeSlot &S = *St.Slot;
    // Quiet known leaf: counters are frozen while the profiler is
    // dormant, so an unchanged contention count means the baseline is
    // still current — skip the 5-counter re-read and the mask store.
    // Leaf walks dominate this loop (every touched address registers
    // one), and on a converged workload nearly all of them take this
    // early out.
    if (!Fresh && Info.K == obs::LockNodeInfo::Kind::Leaf &&
        S.Contentions.value() == St.SnapCont &&
        !S.ContenderMask.load(std::memory_order_relaxed))
      return;
    for (unsigned M = 0; M < 5; ++M)
      St.SnapModes[M] = S.ModeCounts[M].value();
    St.SnapCont = S.Contentions.value();
    // Start the contender bitmap window at the arm point.
    S.ContenderMask.store(0, std::memory_order_relaxed);
  });
  for (auto &DPtr : Domains) {
    DomainState &D = *DPtr;
    uint64_t Wait = 0, Hold = 0;
    for (uint32_t Tag : D.Tags) {
      obs::SectionSlot &SS = P.sectionSlot(Tag);
      Wait += SS.WaitNs.value();
      Hold += SS.HoldNs.value();
    }
    D.SnapWaitNs = Wait;
    D.SnapHoldNs = Hold;
    D.SnapCommits = D.Commits.load(std::memory_order_relaxed);
    D.SnapAborts = D.Aborts.load(std::memory_order_relaxed);
  }
}

bool AdaptiveEngine::runPolicy() {
  obs::LockProfiler &P = RT.profiler();
  bool AnyTransition = false;

  if (RegionStates.size() < RT.numRegions())
    RegionStates.resize(RT.numRegions());

  // Per-region grant-mix deltas (from the region node itself) and the OR
  // of contender bitmaps under the region, gathered during the walk.
  struct RegionAgg {
    uint64_t Fine = 0, Coarse = 0;
  };
  std::vector<RegionAgg> Agg(RT.numRegions());
  for (RegionState &RS : RegionStates)
    RS.ContenderBits = 0;

  // --- walk every node: rung 1 (RW bias) + aggregation for rung 2 ---
  RT.forEachNode([&](LockNode &N, const obs::LockNodeInfo &Info) {
    if (!N.ObsId)
      return;
    NodeState &St = NodeStates[&N];
    bool Fresh = !St.Node;
    if (Fresh) {
      // Node appeared after the snapshot: adopt it, deltas start next
      // epoch.
      St.Node = &N;
      St.Info = Info;
      St.Slot = &P.nodeSlot(N.ObsId);
    }
    obs::NodeSlot &S = *St.Slot;
    uint64_t Cont = S.Contentions.value();
    // Quiet leaf fast path: with no contention since the last read,
    // neither rung can act on it — bias needs a contention delta and
    // stripe sizing needs contender bits — so leave its mode snapshot
    // stale (the next active epoch reads the widened window; fractions
    // are scale-free) and skip the 5-counter read plus the mask RMW.
    // Streaks persist exactly as on an idle epoch; cooldown still ages.
    // Biased leaves stay on the full path: clearing bias watches the
    // mode mix and must not wait for fresh contention.
    if (!Fresh && !St.Biased && Info.K == obs::LockNodeInfo::Kind::Leaf &&
        Cont == St.SnapCont &&
        !S.ContenderMask.load(std::memory_order_relaxed)) {
      if (St.Cooldown)
        --St.Cooldown;
      return;
    }
    uint64_t DModes[5];
    uint64_t DTotal = 0;
    for (unsigned M = 0; M < 5; ++M) {
      uint64_t V = S.ModeCounts[M].value();
      DModes[M] = V - St.SnapModes[M];
      St.SnapModes[M] = V;
      DTotal += DModes[M];
    }
    uint64_t DCont = Cont - St.SnapCont;
    St.SnapCont = Cont;
    uint64_t Mask = S.ContenderMask.load(std::memory_order_relaxed);
    if (Mask)
      Mask = S.ContenderMask.exchange(0, std::memory_order_relaxed);

    if (Info.K == obs::LockNodeInfo::Kind::Region) {
      // Mode mix at the region node tells fine (intention grants) from
      // coarse (full grants) traffic.
      Agg[Info.Region].Fine = DModes[0] + DModes[1];          // IS + IX
      Agg[Info.Region].Coarse = DModes[2] + DModes[3] + DModes[4];
    }
    if (Info.K != obs::LockNodeInfo::Kind::Root &&
        Info.Region < RegionStates.size())
      RegionStates[Info.Region].ContenderBits |= Mask;

    // Rung 1: reader bias. Root is exempt (biasing ⊤ would let global
    // readers starve every writer in the program).
    if (Info.K == obs::LockNodeInfo::Kind::Root)
      return;
    if (St.Cooldown) {
      --St.Cooldown;
      return;
    }
    if (!DTotal)
      return; // idle epoch: keep streaks, no verdict
    double ReadFrac =
        static_cast<double>(DModes[0] + DModes[2]) / static_cast<double>(DTotal);
    if (!St.Biased && ReadFrac >= Config.BiasReadHi &&
        DCont >= Config.BiasMinContentions) {
      St.LoStreak = 0;
      if (++St.HiStreak >= Config.BiasEpochs) {
        N.setReaderBias(true, Config.BargeCredit);
        St.Biased = true;
        St.HiStreak = 0;
        St.Cooldown = Config.TransitionCooldownTicks;
        MBiasSet->inc();
        policyTrace(PolicyAction::BiasSet, N.ObsId);
        AnyTransition = true;
      }
    } else if (St.Biased && ReadFrac <= Config.BiasReadLo) {
      St.HiStreak = 0;
      if (++St.LoStreak >= Config.BiasEpochs) {
        N.setReaderBias(false);
        St.Biased = false;
        St.LoStreak = 0;
        St.Cooldown = Config.TransitionCooldownTicks;
        MBiasCleared->inc();
        policyTrace(PolicyAction::BiasClear, N.ObsId);
        AnyTransition = true;
      }
    } else {
      St.HiStreak = St.LoStreak = 0;
    }
  });

  // --- rung 2: stripe escalation, per region ---
  for (uint32_t R = 0; R < RT.numRegions(); ++R) {
    RegionState &RS = RegionStates[R];
    if (RS.Cooldown) {
      --RS.Cooldown;
      continue;
    }
    uint64_t Total = Agg[R].Fine + Agg[R].Coarse;
    double FineFrac =
        Total ? static_cast<double>(Agg[R].Fine) / static_cast<double>(Total)
              : 0.0;
    if (!RT.regionLayout(R)) {
      RS.DeescStreak = 0;
      if (Total && FineFrac >= Config.EscalateFineFrac &&
          RT.regionLeafCount(R) >= Config.EscalateLeafPressure)
        ++RS.EscStreak;
      else
        RS.EscStreak = 0;
      if (RS.EscStreak >= Config.EscalateEpochs) {
        unsigned Contenders =
            static_cast<unsigned>(std::popcount(RS.ContenderBits));
        unsigned Want = std::max(Config.MinStripes, Contenders * 4);
        Want = std::min(Want, Config.MaxStripes);
        if (RT.escalateRegion(R, Want)) {
          MEscalations->inc();
          policyTrace(PolicyAction::Escalate, R);
          AnyTransition = true;
        }
        RS.EscStreak = 0;
        RS.Cooldown = Config.TransitionCooldownTicks;
      }
    } else {
      RS.EscStreak = 0;
      if (Total && FineFrac <= Config.DeescalateFineFrac)
        ++RS.DeescStreak;
      else
        RS.DeescStreak = 0;
      if (RS.DeescStreak >= Config.DeescalateEpochs) {
        if (RT.deescalateRegion(R)) {
          MDeescalations->inc();
          policyTrace(PolicyAction::Deescalate, R);
          AnyTransition = true;
        }
        RS.DeescStreak = 0;
        RS.Cooldown = Config.TransitionCooldownTicks;
      }
    }
  }

  // --- rung 3: STM migration, per domain ---
  for (uint32_t DI = 0; DI < Domains.size(); ++DI) {
    DomainState &D = *Domains[DI];
    uint64_t Wait = 0, Hold = 0;
    for (uint32_t Tag : D.Tags) {
      obs::SectionSlot &SS = P.sectionSlot(Tag);
      Wait += SS.WaitNs.value();
      Hold += SS.HoldNs.value();
    }
    uint64_t DWait = Wait - D.SnapWaitNs;
    uint64_t DHold = Hold - D.SnapHoldNs;
    D.SnapWaitNs = Wait;
    D.SnapHoldNs = Hold;
    uint64_t Commits = D.Commits.load(std::memory_order_relaxed);
    uint64_t Aborts = D.Aborts.load(std::memory_order_relaxed);
    uint64_t DCommits = Commits - D.SnapCommits;
    uint64_t DAborts = Aborts - D.SnapAborts;
    D.SnapCommits = Commits;
    D.SnapAborts = Aborts;

    if (D.Cooldown) {
      --D.Cooldown;
      continue;
    }
    if (domainBackend(DI) == Backend::Lock) {
      D.FallbackStreak = 0;
      // Sustained parking that dwarfs useful hold time: the hierarchy is
      // the bottleneck, optimistic execution should win.
      if (DWait >= Config.StmMinWaitNs &&
          static_cast<double>(DWait) >=
              Config.StmWaitHoldRatio * static_cast<double>(DHold ? DHold : 1))
        ++D.StmStreak;
      else
        D.StmStreak = 0;
      if (D.StmStreak >= Config.StmEpochs) {
        flipDomain(DI, Backend::Stm);
        D.StmStreak = 0;
        D.Cooldown = Config.TransitionCooldownTicks;
        MStmMigrations->inc();
        policyTrace(PolicyAction::MigrateStm, DI);
        AnyTransition = true;
      }
    } else {
      D.StmStreak = 0;
      uint64_t Attempts = DCommits + DAborts;
      if (Attempts >= Config.StmMinAttempts &&
          static_cast<double>(DAborts) >
              Config.StmAbortRatio * static_cast<double>(Attempts))
        ++D.FallbackStreak;
      else
        D.FallbackStreak = 0;
      if (D.FallbackStreak >= Config.StmFallbackEpochs) {
        flipDomain(DI, Backend::Lock);
        D.FallbackStreak = 0;
        // A storming domain sits out longer before re-migrating, so an
        // abort storm cannot set up a migrate/fallback oscillation.
        D.Cooldown = 4 * Config.TransitionCooldownTicks;
        MStmFallbacks->inc();
        policyTrace(PolicyAction::MigrateLock, DI);
        AnyTransition = true;
      }
    }
  }
  return AnyTransition;
}

void AdaptiveEngine::tick() {
  // One tick at a time; concurrent callers simply skip (count-based
  // callers retry after another EveryNSections of their own sections).
  std::unique_lock<std::mutex> Lock(PolicyMu, std::try_to_lock);
  if (!Lock.owns_lock())
    return;
  TickCount.fetch_add(1, std::memory_order_relaxed);
  MEpochs->inc();

  if (Config.ForceFlip) {
    for (uint32_t D = 0; D < Domains.size(); ++D) {
      Backend To = domainBackend(D) == Backend::Lock ? Backend::Stm
                                                     : Backend::Lock;
      flipDomain(D, To);
      if (To == Backend::Stm) {
        MStmMigrations->inc();
        policyTrace(PolicyAction::MigrateStm, D);
      } else {
        MStmFallbacks->inc();
        policyTrace(PolicyAction::MigrateLock, D);
      }
    }
    return;
  }

  obs::LockProfiler &P = RT.profiler();
  if (ProfInitiallyOn || Config.ArmDutyTicks <= 1) {
    // Always armed: every tick reads a full epoch's deltas.
    if (!P.enabled())
      P.setEnabled(true);
    if (!HaveSnapshot) {
      snapshot();
      HaveSnapshot = true;
      return;
    }
    StableReads = runPolicy() ? 0 : StableReads + 1;
    return;
  }

  if (ArmedThisTick) {
    // The profiler has been armed since the previous tick: read the
    // epoch's deltas, act, disarm.
    StableReads = runPolicy() ? 0 : StableReads + 1;
    P.setEnabled(false);
    ArmedThisTick = false;
    LastSlowEvents = slowEvents();
    return;
  }
  // Contention alarm: the park counter and the STM abort counters run
  // even while the profiler sleeps. A burst during a dormant tick means
  // the workload shifted under a backed-off duty cycle — re-arm now
  // rather than staying blind for up to 64 x ArmDutyTicks ticks.
  if (Config.ReArmSlowEvents) {
    uint64_t Slow = slowEvents();
    uint64_t DSlow = Slow - LastSlowEvents;
    LastSlowEvents = Slow;
    if (DSlow >= Config.ReArmSlowEvents) {
      StableReads = 0;
      DormantTicks = 0;
      P.setEnabled(true);
      snapshot();
      HaveSnapshot = true;
      ArmedThisTick = true;
      return;
    }
  }
  // Decisions gone quiet widen the duty interval 4x per stability
  // window, capped at 64x: a converged policy pays an armed epoch (and
  // its node walk) a vanishing fraction of the time, and any transition
  // resets StableReads so the next anomaly is re-sampled at full rate
  // within one widened interval.
  unsigned Duty = Config.ArmDutyTicks;
  for (unsigned Step = 0,
                Steps = std::min(3u, Config.StableTicksToBackoff
                                         ? StableReads /
                                               Config.StableTicksToBackoff
                                         : 0);
       Step < Steps; ++Step)
    Duty *= 4;
  if (++DormantTicks + 1 >= Duty) {
    DormantTicks = 0;
    P.setEnabled(true);
    snapshot();
    HaveSnapshot = true;
    ArmedThisTick = true;
  }
}

//===----------------------------------------------------------------------===//
// Introspection
//===----------------------------------------------------------------------===//

std::string AdaptiveEngine::renderPolicy() const {
  std::lock_guard<std::mutex> Lock(PolicyMu);
  std::string Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "; adaptive: epochs=%" PRIu64 " domains=%zu\n",
                TickCount.load(std::memory_order_relaxed), Domains.size());
  Out += Buf;
  for (size_t D = 0; D < Domains.size(); ++D) {
    const DomainState &DS = *Domains[D];
    uint32_t W = DS.Word.load(std::memory_order_acquire);
    std::snprintf(Buf, sizeof(Buf),
                  ";   domain %zu: backend=%s sections=%zu commits=%" PRIu64
                  " aborts=%" PRIu64 "\n",
                  D, (W & 1u) ? "stm" : "lock", DS.Tags.size(),
                  DS.Commits.load(std::memory_order_relaxed),
                  DS.Aborts.load(std::memory_order_relaxed));
    Out += Buf;
  }
  for (uint32_t R = 0; R < RT.numRegions(); ++R)
    if (StripeTable *T = RT.regionLayout(R)) {
      std::snprintf(Buf, sizeof(Buf), ";   region %" PRIu32 ": striped x%u\n",
                    R, T->Count);
      Out += Buf;
    }
  unsigned Biased = 0;
  for (const auto &[Node, St] : NodeStates)
    if (St.Biased)
      ++Biased;
  std::snprintf(Buf, sizeof(Buf), ";   reader-biased nodes: %u\n", Biased);
  Out += Buf;
  return Out;
}
