//===--- Adaptive.h - Contention-adaptive hybrid lock runtime ---*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention-adaptive policy engine over the §5 lock runtime: the
/// inference picks lock granularity statically, and this engine corrects
/// it at runtime using the lock-contention profiler as the feedback
/// signal. On a low-frequency epoch tick it reads per-node and
/// per-section stat deltas and applies a three-rung policy ladder, each
/// rung guarded by hysteresis (K consecutive epochs over the threshold
/// to act, a cooldown after acting) so decisions never ping-pong:
///
///   1. RW bias — nodes whose grant mix stays read-mostly get the
///      LockNode reader-barge valve; write-heavy shifts clear it.
///   2. Stripe escalation — fine-dominated regions under leaf pressure
///      swap their per-address leaves for a cache-line-padded stripe
///      table (stripe count sized by the observed contender bitmap);
///      regions whose traffic turns coarse swap back.
///   3. STM migration — migration domains (groups of sections closed
///      under potential data overlap) whose parked-wait/hold ratio
///      stays above threshold switch from the lock backend to the TL2
///      STM; repeated abort storms switch them back.
///
/// Safety at the acquireAll seam: rungs 1-2 change only *how* a node
/// admits requests or *which* node a fine request maps to — the sorted
/// top-down acquisition order of the hierarchy is untouched, and layout
/// swaps take the region node in X so every holder drains first (a
/// holder's region grant pins the layout it read). Rung 3 crosses
/// backends, so each migration domain has a drain gate: sections enter
/// through a per-thread inflight slot; a backend flip marks the domain
/// transitioning, executes a heavy barrier (membarrier
/// PRIVATE_EXPEDITED when available, a paired seq_cst fence otherwise)
/// against the entry protocol's store-then-check, waits until no slot
/// is inside the domain, and only then publishes the new backend — so
/// lock-mode and STM-mode executions of overlapping sections never run
/// concurrently.
///
/// Profiler cost: the engine arms the profiler for one epoch out of
/// ArmDutyTicks (backing off 4x once decisions go quiet), so adaptation
/// adds only the duty-cycled fraction of the armed-profiler overhead
/// plus the entry gate (two cache-local atomics per section).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_ADAPTIVE_H
#define LOCKIN_RUNTIME_ADAPTIVE_H

#include "runtime/LockRuntime.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace rt {
namespace adaptive {

/// Which backend a migration domain currently executes sections on.
enum class Backend : uint8_t { Lock = 0, Stm = 1 };

/// PolicyEvent trace-instant codes (order mirrored by Trace.cpp).
enum class PolicyAction : uint8_t {
  BiasSet = 0,
  BiasClear,
  Escalate,
  Deescalate,
  MigrateStm,
  MigrateLock,
};

struct AdaptiveConfig {
  /// Wall-clock epoch tick thread period; 0 = no thread (use
  /// EveryNSections or manual tick()).
  unsigned EpochMs = 0;
  /// Count-based epochs: a thread calling maybeTick() attempts a tick
  /// after this many of its own sections; 0 disables.
  uint32_t EveryNSections = 0;

  /// Arm the profiler 1 epoch in ArmDutyTicks (1 = always armed, the
  /// deterministic-test setting); after StableTicksToBackoff policy
  /// reads without a transition, the duty interval widens 4x. Backoff
  /// is deliberately eager — the ReArmSlowEvents alarm below restores
  /// full sampling the moment anything actually waits, so a stable
  /// workload should stop paying for armed epochs quickly.
  unsigned ArmDutyTicks = 4;
  unsigned StableTicksToBackoff = 4;
  /// Contention alarm: this many slow events (parked acquisitions or
  /// STM aborts) within one dormant tick re-arm the profiler at once,
  /// resetting the stability backoff — the duty cycle only saves money
  /// while nothing is waiting. 0 disables the alarm.
  uint64_t ReArmSlowEvents = 8;

  // Rung 1: RW bias (per node, read fraction of sampled grants).
  double BiasReadHi = 0.90;        ///< set bias at/above, K epochs
  double BiasReadLo = 0.70;        ///< clear bias at/below, K epochs
  unsigned BiasEpochs = 2;
  uint64_t BiasMinContentions = 4; ///< per epoch, to consider setting
  uint32_t BargeCredit = 256;      ///< reader overtakes per queue grant

  // Rung 2: stripe escalation (per region).
  uint32_t EscalateLeafPressure = 2048; ///< distinct leaves under region
  double EscalateFineFrac = 0.80;       ///< IS+IX share of region grants
  double DeescalateFineFrac = 0.50;     ///< coarse traffic took over
  unsigned EscalateEpochs = 2;
  unsigned DeescalateEpochs = 2;
  unsigned MinStripes = 8;
  unsigned MaxStripes = 64;

  // Rung 3: STM migration (per domain). The ratio line is deliberately
  // high: with the profiler duty-cycled, one policy read's deltas span
  // the whole dormant window, so a few sporadic preemption parks can
  // reach wait ~ 3x hold on an oversubscribed box — only a standing
  // convoy (waiters parked on most acquisitions, wait/hold in the
  // hundreds) should clear this bar.
  double StmWaitHoldRatio = 6.0;  ///< parked-wait / hold, sustained
  uint64_t StmMinWaitNs = 200'000; ///< per epoch, below = not contended
  unsigned StmEpochs = 2;
  double StmAbortRatio = 0.5;     ///< aborts/(commits+aborts) storm line
  uint64_t StmMinAttempts = 16;   ///< per epoch, below = no verdict
  unsigned StmFallbackEpochs = 2;

  /// Ticks a node/region/domain sits out after any transition.
  unsigned TransitionCooldownTicks = 8;

  /// Stress mode for the differential fuzzer: ignore the policy and
  /// flip every domain's backend every tick, exercising the drain gate
  /// and mid-run migration on every program.
  bool ForceFlip = false;
};

/// The per-section policy engine. One instance per LockRuntime; worker
/// threads register once, then bracket every outermost section with
/// enterSection/exitSection. Policy runs on tick(), driven by the
/// wall-clock epoch thread (start()), by count-based maybeTick(), or
/// manually (tests).
class AdaptiveEngine {
  struct InflightSlot; // per-thread inflight slot (defined below)

public:
  /// A resolved (thread slot, migration domain) pair for the section
  /// protocol: pins the slot and backend-word addresses at bind time so
  /// steady-state loops — one domain per worker, the common shape — pay
  /// no pointer chasing per section, just two cache-local stores and
  /// one shared acquire load. Valid until unregisterThread on the slot.
  class Gate {
    friend class AdaptiveEngine;
    InflightSlot *S = nullptr;
    std::atomic<uint32_t> *W = nullptr;
    uint32_t DomainPlus1 = 0;
    uint32_t EveryN = 0; ///< cached Config.EveryNSections
    Gate(InflightSlot *S, std::atomic<uint32_t> *W, uint32_t DomainPlus1,
         uint32_t EveryN)
        : S(S), W(W), DomainPlus1(DomainPlus1), EveryN(EveryN) {}

  public:
    Gate() = default;
  };

  explicit AdaptiveEngine(LockRuntime &RT, AdaptiveConfig Config = {});
  ~AdaptiveEngine();

  AdaptiveEngine(const AdaptiveEngine &) = delete;
  AdaptiveEngine &operator=(const AdaptiveEngine &) = delete;

  // -- setup (single-threaded, before sections run) --

  /// Creates a migration domain; sections bound to it flip backends
  /// together. Domains must be closed under potential data overlap
  /// (the caller's responsibility; the interpreter merges by region
  /// components, conservatively).
  uint32_t addDomain();
  /// Associates a profiler section tag with a domain: the tag's
  /// wait/hold sums feed the domain's migration decision.
  void bindSection(uint32_t Domain, uint32_t SectionTag);
  /// Launches the wall-clock epoch thread (EpochMs > 0).
  void start();

  // -- per-thread section protocol --

  /// Claims an inflight slot for the calling thread. Slots are a
  /// bounded resource (one per live thread); release with
  /// unregisterThread.
  uint32_t registerThread();
  void unregisterThread(uint32_t Slot);

  /// Resolves the section protocol's addresses once for a
  /// (slot, domain) pair; enter/exit through the gate skip the
  /// per-section Slots/Domains indexing.
  Gate gate(uint32_t Slot, uint32_t Domain) {
    return Gate(&Slots[Slot], &Domains[Domain]->Word, Domain + 1,
                Config.EveryNSections);
  }

  /// Enters a section through \p G: publishes the inflight slot, then
  /// reads the domain's backend (spinning out transitions). The
  /// returned backend is stable until exit.
  Backend enter(Gate &G) {
    for (;;) {
      G.S->V.store(G.DomainPlus1, std::memory_order_relaxed);
      gateFastBarrier();
      uint32_t Mode = G.W->load(std::memory_order_acquire);
      if (__builtin_expect(!(Mode & kTransitioningBit), 1))
        return static_cast<Backend>(Mode & 1);
      G.S->V.store(0, std::memory_order_release);
      while (G.W->load(std::memory_order_acquire) & kTransitioningBit)
        std::this_thread::yield();
    }
  }
  void exit(Gate &G) { G.S->V.store(0, std::memory_order_release); }

  /// Index-addressed convenience forms (tests, callers whose domain
  /// varies section to section, e.g. the interpreter).
  Backend enterSection(uint32_t Slot, uint32_t Domain) {
    Gate G = gate(Slot, Domain);
    return enter(G);
  }
  void exitSection(uint32_t Slot) {
    Slots[Slot].V.store(0, std::memory_order_release);
  }

  /// Records one STM section execution for \p Domain (commits are 0/1,
  /// aborts the retry count) — the abort-storm fallback signal.
  void noteStm(uint32_t Domain, uint64_t Commits, uint64_t Aborts) {
    DomainState &D = *Domains[Domain];
    D.Commits.fetch_add(Commits, std::memory_order_relaxed);
    D.Aborts.fetch_add(Aborts, std::memory_order_relaxed);
  }

  /// Count-based epoch driver: cheap per-slot counter; every
  /// EveryNSections of the calling thread's sections, one thread runs a
  /// tick. Call while holding no locks (section entry).
  void maybeTick(uint32_t Slot) {
    if (!Config.EveryNSections)
      return;
    if (++Slots[Slot].LocalSections < Config.EveryNSections)
      return;
    Slots[Slot].LocalSections = 0;
    tick();
  }
  /// Gate form of maybeTick; same contract (call holding no locks,
  /// outside the enter/exit bracket — a tick may drain this slot).
  void maybeTick(Gate &G) {
    if (!G.EveryN)
      return;
    if (__builtin_expect(++G.S->LocalSections < G.EveryN, 1))
      return;
    G.S->LocalSections = 0;
    tick();
  }

  // -- policy --

  /// One policy epoch: arms/reads the profiler per the duty cycle and
  /// applies the ladder. Serialized internally; safe from any thread
  /// holding no locks.
  void tick();

  Backend domainBackend(uint32_t Domain) const {
    return static_cast<Backend>(
        Domains[Domain]->Word.load(std::memory_order_acquire) & 1);
  }
  uint32_t numDomains() const {
    return static_cast<uint32_t>(Domains.size());
  }
  uint64_t epochCount() const {
    return TickCount.load(std::memory_order_relaxed);
  }

  /// Directly flips a domain through the drain gate (tests, bench
  /// warm-start). Blocks until the flip completes.
  void forceBackend(uint32_t Domain, Backend B);

  /// Human-readable policy state (";"-prefixed lines).
  std::string renderPolicy() const;

  const AdaptiveConfig &config() const { return Config; }

private:
  static constexpr uint32_t kTransitioningBit = 2;
  static constexpr uint32_t kMaxSlots = 512;

  struct alignas(64) InflightSlot {
    /// 0 = outside any gated section; Domain+1 while inside.
    std::atomic<uint32_t> V{0};
    /// Owner-thread section counter for count-based ticks.
    uint32_t LocalSections = 0;
  };

  struct DomainState {
    /// bit 0 = backend, bit 1 = transitioning.
    std::atomic<uint32_t> Word{0};
    std::atomic<uint64_t> Commits{0};
    std::atomic<uint64_t> Aborts{0};
    std::vector<uint32_t> Tags; ///< profiler section tags feeding stats
    // Policy state (touched only under PolicyMu).
    uint64_t SnapWaitNs = 0, SnapHoldNs = 0;
    uint64_t SnapCommits = 0, SnapAborts = 0;
    unsigned StmStreak = 0, FallbackStreak = 0, Cooldown = 0;
  };

  struct NodeState {
    LockNode *Node = nullptr;
    obs::LockNodeInfo Info;
    obs::NodeSlot *Slot = nullptr;
    uint64_t SnapModes[5] = {};
    uint64_t SnapCont = 0;
    unsigned HiStreak = 0, LoStreak = 0, Cooldown = 0;
    bool Biased = false;
  };

  struct RegionState {
    unsigned EscStreak = 0, DeescStreak = 0, Cooldown = 0;
    uint64_t ContenderBits = 0; ///< OR of leaf masks, refreshed per read
  };

  /// Fast-side half of the asymmetric gate fence: compiler-only when
  /// the flip side runs membarrier, a real seq_cst fence otherwise.
  static void gateFastBarrier() {
    if (useMembarrier())
      std::atomic_signal_fence(std::memory_order_seq_cst);
    else
      std::atomic_thread_fence(std::memory_order_seq_cst);
  }
  static bool useMembarrier();
  static void gateHeavyBarrier();

  /// Parks + STM aborts: the signals that stay live while the profiler
  /// is dormant, feeding the ReArmSlowEvents alarm.
  uint64_t slowEvents() const {
    uint64_t N = RT.parkEvents();
    for (const auto &D : Domains)
      N += D->Aborts.load(std::memory_order_relaxed);
    return N;
  }

  void flipDomain(uint32_t Domain, Backend To);
  /// Returns true when any transition fired (resets the stability
  /// backoff).
  bool runPolicy();
  void snapshot();
  void policyTrace(PolicyAction A, uint64_t Target);

  LockRuntime &RT;
  AdaptiveConfig Config;

  std::unique_ptr<InflightSlot[]> Slots;
  std::atomic<uint32_t> SlotHighWater{0};
  std::mutex SlotMu;
  std::vector<uint32_t> FreeSlots;

  std::vector<std::unique_ptr<DomainState>> Domains;

  // Policy state, serialized by PolicyMu.
  mutable std::mutex PolicyMu;
  std::unordered_map<const LockNode *, NodeState> NodeStates;
  std::vector<RegionState> RegionStates;
  bool HaveSnapshot = false;
  bool ArmedThisTick = false; ///< duty cycle: profiler armed, read next
  bool ProfInitiallyOn = false;
  unsigned StableReads = 0;
  unsigned DormantTicks = 0;
  uint64_t LastSlowEvents = 0; ///< parks + aborts at the previous tick
  std::atomic<uint64_t> TickCount{0};

  // Metrics (resolved once from the runtime's registry).
  obs::Counter *MEpochs = nullptr;
  obs::Counter *MBiasSet = nullptr;
  obs::Counter *MBiasCleared = nullptr;
  obs::Counter *MEscalations = nullptr;
  obs::Counter *MDeescalations = nullptr;
  obs::Counter *MStmMigrations = nullptr;
  obs::Counter *MStmFallbacks = nullptr;

  // Epoch thread.
  std::thread EpochThread;
  std::mutex StopMu;
  std::condition_variable StopCv;
  bool StopFlag = false;
};

} // namespace adaptive
} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_ADAPTIVE_H
