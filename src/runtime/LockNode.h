//===--- LockNode.h - One node of the lock hierarchy ------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_LOCKNODE_H
#define LOCKIN_RUNTIME_LOCKNODE_H

#include "runtime/Mode.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace lockin {
namespace rt {

namespace detail {
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  asm volatile("pause");
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}
} // namespace detail

/// A blocking multi-mode lock: one node of the tree hierarchy
/// (root ⊤ → region → address). Requests are granted FIFO — a request
/// waits until it is at the head of the queue and compatible with every
/// currently granted mode — which prevents writer starvation while still
/// letting compatible holders (e.g. many S readers) overlap.
///
/// The whole grant state lives in one atomic word: a 12-bit grant count
/// per mode (IS, IX, S, SIX, X) plus a has-waiters bit. Uncontended
/// acquire is a single CAS (compatibility is one AND against a
/// precomputed conflict mask) and uncontended release a single fetch_sub;
/// neither touches the mutex or the condition variable. A request that
/// observes a conflict — or the waiter bit, which means barging would
/// overtake parked threads — spins briefly and then parks on the FIFO
/// ticket queue of the original design. Releases notify only when the
/// waiter bit was set, so uncontended sections never pay a wakeup.
class LockNode {
public:
  /// Blocks until the node is granted in \p M. Returns true iff the
  /// thread had to park (the contended slow path); when \p WaitNs is
  /// non-null it receives the parked wait in nanoseconds (and is left
  /// untouched on the uncontended path, which never reads the clock).
  bool acquire(Mode M, uint64_t *WaitNs = nullptr) {
    if (fastAcquire(M))
      return false;
    slowAcquire(M, WaitNs);
    return true;
  }

  /// Releases one grant of \p M.
  void release(Mode M) {
    uint64_t Prev = Word.fetch_sub(grantOne(M), std::memory_order_acq_rel);
    assert((Prev & grantMask(M)) != 0 && "release without matching grant");
    if (Prev & WaiterBit) {
      // Taking the mutex before notifying closes the race with a waiter
      // that evaluated its predicate (pre-decrement) but has not yet
      // blocked: it still holds the mutex at that point.
      std::lock_guard<std::mutex> Lock(Mu);
      CV.notify_all();
    }
  }

  /// Non-blocking variant; fails when the node is incompatible or any
  /// thread is parked (queue-jumping would break FIFO).
  bool tryAcquire(Mode M) {
    uint64_t W = Word.load(std::memory_order_relaxed);
    while (!(W & (WaiterBit | conflictMask(M)))) {
      if (Word.compare_exchange_weak(W, W + grantOne(M),
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed))
        return true;
    }
    return false;
  }

  /// Number of current grants of \p M (diagnostics/tests only).
  unsigned grantedCount(Mode M) const {
    uint64_t W = Word.load(std::memory_order_acquire);
    return static_cast<unsigned>((W >> countShift(M)) & CountMask);
  }

  /// Reader-preference bias (set by the adaptive engine on persistently
  /// read-mostly nodes): while on, an IS/S request that is compatible
  /// with every granted mode may keep its optimistic grant even though
  /// waiters are parked, spending one barge credit per overtake. The
  /// credit refills whenever a queued waiter is granted, so a parked
  /// writer is overtaken by at most \p Credit readers per queue grant —
  /// a bounded-bypass valve, not an unfair lock.
  void setReaderBias(bool On, uint32_t Credit = 256) {
    BargeRefill.store(On ? Credit : 0, std::memory_order_relaxed);
    BargeCredit.store(On ? static_cast<int32_t>(Credit) : 0,
                      std::memory_order_relaxed);
    Bias.store(On ? 1 : 0, std::memory_order_relaxed);
  }
  bool readerBias() const {
    return Bias.load(std::memory_order_relaxed) != 0;
  }

private:
  // Word layout: five 12-bit grant counts (mode i at bits [12i, 12i+12))
  // and the has-waiters bit above them. 12 bits bound concurrent holders
  // per mode at 4095, far above any realistic thread count.
  static constexpr unsigned BitsPerMode = 12;
  static constexpr uint64_t CountMask = (1ull << BitsPerMode) - 1;
  static constexpr uint64_t WaiterBit = 1ull << (BitsPerMode * NumModes);
  static constexpr unsigned SpinLimit = 48;

  static constexpr unsigned countShift(Mode M) {
    return static_cast<unsigned>(M) * BitsPerMode;
  }
  static constexpr uint64_t grantOne(Mode M) { return 1ull << countShift(M); }
  static constexpr uint64_t grantMask(Mode M) {
    return CountMask << countShift(M);
  }

  /// All-ones across the count fields of every mode incompatible with
  /// \p M: `word & conflictMask(M) == 0` ⇔ M is compatible with every
  /// currently granted mode.
  static constexpr uint64_t conflictMaskFor(Mode M) {
    uint64_t Mask = 0;
    uint8_t Bits = modeConflictSet(M);
    for (unsigned I = 0; I < NumModes; ++I)
      if (Bits & (1u << I))
        Mask |= CountMask << (I * BitsPerMode);
    return Mask;
  }
  static uint64_t conflictMask(Mode M) {
    static constexpr uint64_t Table[NumModes] = {
        conflictMaskFor(Mode::IS), conflictMaskFor(Mode::IX),
        conflictMaskFor(Mode::S), conflictMaskFor(Mode::SIX),
        conflictMaskFor(Mode::X)};
    return Table[static_cast<unsigned>(M)];
  }

  bool fastAcquire(Mode M) {
    const uint64_t Conflicts = conflictMask(M);
    const uint64_t One = grantOne(M);
    unsigned Budget = SpinLimit;
    for (;;) {
      // Optimistic: add the grant first and validate against the
      // *pre-add* value, so the uncontended acquire is one fetch_add
      // rather than load + CAS. The RMW order totally orders racing
      // optimists — the first one sees a clean word and keeps its grant,
      // later incompatible ones see the winner and undo, so there is no
      // mutual kill. A transient optimistic grant can only make a
      // concurrent compatibility check conservatively fail, never
      // wrongly succeed.
      uint64_t W = Word.fetch_add(One, std::memory_order_acquire);
      assert((W & grantMask(M)) != grantMask(M) && "grant count overflow");
      if (!(W & (Conflicts | WaiterBit)))
        return true;
      // Reader barge: compatible with everything granted, blocked only
      // by the waiter bit. With bias on and credit left, keep the grant
      // instead of queueing behind the parked (writer) waiters.
      if (!(W & Conflicts) && (M == Mode::IS || M == Mode::S) &&
          Bias.load(std::memory_order_relaxed) &&
          BargeCredit.fetch_sub(1, std::memory_order_relaxed) > 0)
        return true;
      uint64_t Prev = Word.fetch_sub(One, std::memory_order_acq_rel);
      if (Prev & WaiterBit) {
        // Our phantom grant may have made the queue head's own grant
        // attempt fail; re-notify so it retries.
        std::lock_guard<std::mutex> Lock(Mu);
        CV.notify_all();
      }
      if (W & WaiterBit)
        return false; // parked waiters have priority: join the queue
      // Conflict: spin on plain loads until it clears, then retry the
      // optimistic add; park once the budget runs out.
      for (;;) {
        if (Budget-- == 0)
          return false;
        W = Word.load(std::memory_order_relaxed);
        if (W & WaiterBit)
          return false;
        if (!(W & Conflicts))
          break;
        detail::cpuRelax();
      }
    }
  }

  static uint64_t clockNs() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void slowAcquire(Mode M, uint64_t *WaitNs) {
    const uint64_t T0 = WaitNs ? clockNs() : 0;
    const uint64_t Conflicts = conflictMask(M);
    const uint64_t One = grantOne(M);
    std::unique_lock<std::mutex> Lock(Mu);
    uint64_t Ticket = NextTicket++;
    Waiters.push_back({Ticket, M});
    // RMW, not store: fast-path CASes concurrently mutate the counts.
    Word.fetch_or(WaiterBit, std::memory_order_relaxed);
    CV.wait(Lock, [&] {
      if (Waiters.front().Ticket != Ticket)
        return false;
      // Head of the queue: claim the grant with the same CAS the fast
      // path uses, so the check and the grant are one atomic step even
      // against fast-path acquirers on other threads.
      uint64_t W = Word.load(std::memory_order_relaxed);
      while (!(W & Conflicts)) {
        if (Word.compare_exchange_weak(W, W + One, std::memory_order_acquire,
                                       std::memory_order_relaxed))
          return true;
        detail::cpuRelax();
      }
      return false;
    });
    Waiters.pop_front();
    // A queued waiter got through: replenish the reader barge allowance
    // (the anti-starvation half of the bias valve).
    if (uint32_t R = BargeRefill.load(std::memory_order_relaxed))
      BargeCredit.store(static_cast<int32_t>(R), std::memory_order_relaxed);
    if (Waiters.empty())
      Word.fetch_and(~WaiterBit, std::memory_order_relaxed);
    // The next waiter may also be compatible (e.g. another reader).
    CV.notify_all();
    if (WaitNs)
      *WaitNs = clockNs() - T0;
  }

  struct Waiter {
    uint64_t Ticket;
    Mode M;
  };

public:
  /// Slot id in the lock profiler's node table; 0 = unregistered. Set
  /// once at node creation by the owning LockRuntime, read-only after.
  uint32_t ObsId = 0;

private:
  std::atomic<uint64_t> Word{0};
  std::mutex Mu;                // guards Waiters/NextTicket + CV protocol
  std::condition_variable CV;
  std::deque<Waiter> Waiters;
  uint64_t NextTicket = 0;
  // Reader-bias valve (see setReaderBias). Credit may transiently drift
  // below zero under concurrent failed barges; refills store the
  // absolute allowance, so the drift never accumulates.
  std::atomic<uint8_t> Bias{0};
  std::atomic<int32_t> BargeCredit{0};
  std::atomic<uint32_t> BargeRefill{0};
};

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_LOCKNODE_H
