//===--- LockNode.h - One node of the lock hierarchy ------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_LOCKNODE_H
#define LOCKIN_RUNTIME_LOCKNODE_H

#include "runtime/Mode.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace lockin {
namespace rt {

/// A blocking multi-mode lock: one node of the tree hierarchy
/// (root ⊤ → region → address). Requests are granted FIFO — a request
/// waits until it is at the head of the queue and compatible with every
/// currently granted mode — which prevents writer starvation while still
/// letting compatible holders (e.g. many S readers) overlap.
class LockNode {
public:
  /// Blocks until the node is granted in \p M.
  void acquire(Mode M) {
    std::unique_lock<std::mutex> Lock(Mu);
    uint64_t Ticket = NextTicket++;
    Waiters.push_back({Ticket, M});
    CV.wait(Lock, [&] {
      return Waiters.front().Ticket == Ticket && compatibleWithGranted(M);
    });
    Waiters.pop_front();
    ++Granted[static_cast<unsigned>(M)];
    // The next waiter may also be compatible (e.g. another reader).
    CV.notify_all();
  }

  /// Releases one grant of \p M.
  void release(Mode M) {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Granted[static_cast<unsigned>(M)];
    }
    CV.notify_all();
  }

  /// Non-blocking variant; used by tests.
  bool tryAcquire(Mode M) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Waiters.empty() || !compatibleWithGranted(M))
      return false;
    ++Granted[static_cast<unsigned>(M)];
    return true;
  }

  /// Number of current grants of \p M (diagnostics/tests only).
  unsigned grantedCount(Mode M) {
    std::lock_guard<std::mutex> Lock(Mu);
    return Granted[static_cast<unsigned>(M)];
  }

private:
  bool compatibleWithGranted(Mode M) const {
    for (unsigned I = 0; I < NumModes; ++I)
      if (Granted[I] != 0 && !modesCompatible(M, static_cast<Mode>(I)))
        return false;
    return true;
  }

  struct Waiter {
    uint64_t Ticket;
    Mode M;
  };

  std::mutex Mu;
  std::condition_variable CV;
  std::deque<Waiter> Waiters;
  unsigned Granted[NumModes] = {0, 0, 0, 0, 0};
  uint64_t NextTicket = 0;
};

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_LOCKNODE_H
