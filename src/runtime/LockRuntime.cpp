//===--- LockRuntime.cpp - Multi-granularity lock runtime ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "runtime/LockRuntime.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace lockin;
using namespace lockin::rt;

LockRuntime::LockRuntime(unsigned NumRegions) {
  Regions.reserve(NumRegions);
  for (unsigned I = 0; I < NumRegions; ++I)
    Regions.push_back(std::make_unique<LockNode>());
}

LockNode &LockRuntime::regionNode(uint32_t Region) {
  assert(Region < Regions.size() && "region id out of range");
  return *Regions[Region];
}

LockNode &LockRuntime::leafNode(uint32_t Region, uint64_t Address) {
  Shard &S = Shards[(Address ^ Region) % NumShards];
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::unique_ptr<LockNode> &Slot = S.Leaves[LeafKey{Region, Address}];
  if (!Slot)
    Slot = std::make_unique<LockNode>();
  return *Slot;
}

ThreadLockContext::~ThreadLockContext() {
  assert(HeldNodes.empty() && "thread exited while holding locks");
}

void ThreadLockContext::toAcquire(const LockDescriptor &D) {
  if (NLevel > 0)
    return; // inner section: the outer section's locks already protect it
  Pending.push_back(D);
}

void ThreadLockContext::acquireAll() {
  if (NLevel++ > 0) {
    RT.stats().NestedSkips.fetch_add(1, std::memory_order_relaxed);
    Pending.clear();
    return;
  }
  RT.stats().AcquireAllCalls.fetch_add(1, std::memory_order_relaxed);

  // Phase 1: fold the pending descriptors into the required mode at every
  // node of the hierarchy.
  bool NeedRootX = false;
  Mode RootMode = Mode::IS;
  bool RootUsed = false;
  std::map<uint32_t, Mode> RegionModes;             // ascending region id
  std::map<std::pair<uint32_t, uint64_t>, Mode> LeafModes; // (region, addr)

  auto FoldRegion = [&](uint32_t Region, Mode M) {
    auto [It, Inserted] = RegionModes.try_emplace(Region, M);
    if (!Inserted)
      It->second = combineModes(It->second, M);
  };
  auto FoldRoot = [&](Mode M) {
    RootMode = RootUsed ? combineModes(RootMode, M) : M;
    RootUsed = true;
  };

  for (const LockDescriptor &D : Pending) {
    switch (D.K) {
    case LockDescriptor::Kind::Global:
      NeedRootX = true;
      break;
    case LockDescriptor::Kind::Coarse:
      FoldRoot(D.Write ? Mode::IX : Mode::IS);
      FoldRegion(D.Region, D.Write ? Mode::X : Mode::S);
      break;
    case LockDescriptor::Kind::Fine: {
      FoldRoot(D.Write ? Mode::IX : Mode::IS);
      FoldRegion(D.Region, D.Write ? Mode::IX : Mode::IS);
      auto Key = std::make_pair(D.Region, D.Address);
      Mode M = D.Write ? Mode::X : Mode::S;
      auto [It, Inserted] = LeafModes.try_emplace(Key, M);
      if (!Inserted)
        It->second = combineModes(It->second, M);
      break;
    }
    }
  }
  if (NeedRootX) {
    RootMode = Mode::X;
    RootUsed = true;
    // Root X subsumes every descendant; no other node is needed.
    RegionModes.clear();
    LeafModes.clear();
  }

  // Phase 2: acquire top-down in the global total order.
  auto Grab = [&](LockNode &Node, Mode M) {
    Node.acquire(M);
    HeldNodes.push_back({&Node, M});
    RT.stats().NodeAcquisitions.fetch_add(1, std::memory_order_relaxed);
  };
  if (RootUsed)
    Grab(RT.root(), RootMode);
  for (const auto &[Region, M] : RegionModes)
    Grab(RT.regionNode(Region), M);
  for (const auto &[Key, M] : LeafModes)
    Grab(RT.leafNode(Key.first, Key.second), M);

  HeldDescriptors = std::move(Pending);
  Pending.clear();
}

void ThreadLockContext::releaseAll() {
  assert(NLevel > 0 && "releaseAll without matching acquireAll");
  if (--NLevel > 0)
    return;
  // Bottom-up release: reverse acquisition order.
  for (size_t I = HeldNodes.size(); I-- > 0;)
    HeldNodes[I].Node->release(HeldNodes[I].M);
  HeldNodes.clear();
  HeldDescriptors.clear();
}
