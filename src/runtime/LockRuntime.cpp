//===--- LockRuntime.cpp - Multi-granularity lock runtime ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "runtime/LockRuntime.h"

#include <algorithm>
#include <cassert>

using namespace lockin;
using namespace lockin::rt;

LockRuntime::LockRuntime(unsigned NumRegions, obs::MetricsRegistry *Registry,
                         obs::LockProfiler *Profiler)
    : Reg(Registry ? Registry : &obs::metrics()),
      Prof(Profiler ? Profiler : &obs::lockProfiler()) {
  Regions.reserve(NumRegions);
  for (unsigned I = 0; I < NumRegions; ++I)
    Regions.push_back(std::make_unique<LockNode>());
  Dyn = std::make_unique<RegionDyn[]>(NumRegions ? NumRegions : 1);
  SC.AcquireAllCalls = &Reg->counter("runtime.acquire_all_calls");
  SC.NodeAcquisitions = &Reg->counter("runtime.node_acquisitions");
  SC.NestedSkips = &Reg->counter("runtime.nested_skips");
  SC.LeafCacheHits = &Reg->counter("runtime.leaf_cache_hits");
  SC.LeafCacheMisses = &Reg->counter("runtime.leaf_cache_misses");
  if constexpr (obs::kEnabled) {
    Root.ObsId = Prof->registerNode(
        {obs::LockNodeInfo::Kind::Root, 0, 0});
    for (unsigned I = 0; I < NumRegions; ++I)
      Regions[I]->ObsId = Prof->registerNode(
          {obs::LockNodeInfo::Kind::Region, I, 0});
  }
}

LockRuntimeStats LockRuntime::stats() const {
  return {SC.AcquireAllCalls->value(), SC.NodeAcquisitions->value(),
          SC.NestedSkips->value(), SC.LeafCacheHits->value(),
          SC.LeafCacheMisses->value()};
}

LockNode &LockRuntime::regionNode(uint32_t Region) {
  assert(Region < Regions.size() && "region id out of range");
  return *Regions[Region];
}

LockNode &LockRuntime::leafNode(uint32_t Region, uint64_t Address) {
  LeafKey Key{Region, Address};
  Shard &S = Shards[LeafKeyHash{}(Key) & (NumShards - 1)];
  std::lock_guard<std::mutex> Lock(S.Mu);
  std::unique_ptr<LockNode> &Slot = S.Leaves[Key];
  if (!Slot) {
    Slot = std::make_unique<LockNode>();
    if constexpr (obs::kEnabled)
      Slot->ObsId = Prof->registerNode(
          {obs::LockNodeInfo::Kind::Leaf, Region, Address});
    Dyn[Region].LeafCount.fetch_add(1, std::memory_order_relaxed);
  }
  return *Slot;
}

bool LockRuntime::escalateRegion(uint32_t Region, unsigned Stripes) {
  assert(Region < Regions.size() && "region id out of range");
  if (Dyn[Region].Layout.load(std::memory_order_acquire))
    return false; // already striped; resize = deescalate + escalate
  unsigned N = 2;
  while (N < Stripes && N < 1024)
    N <<= 1;
  auto Table = std::make_unique<StripeTable>(N);
  if constexpr (obs::kEnabled)
    for (unsigned I = 0; I < N; ++I)
      Table->stripe(I).ObsId =
          Prof->registerNode({obs::LockNodeInfo::Kind::Stripe, Region, I});
  StripeTable *T = Table.get();
  {
    std::lock_guard<std::mutex> Lock(TablesMu);
    StripeTables.push_back(std::move(Table));
  }
  // X on the region node drains every holder (their grants pin the old
  // layout) and queues new entrants until the swap is published; the
  // engine holds no other node, so no acquisition cycle can form.
  LockNode &R = *Regions[Region];
  R.acquire(Mode::X);
  Dyn[Region].Layout.store(T, std::memory_order_release);
  R.release(Mode::X);
  return true;
}

bool LockRuntime::deescalateRegion(uint32_t Region) {
  assert(Region < Regions.size() && "region id out of range");
  if (!Dyn[Region].Layout.load(std::memory_order_acquire))
    return false;
  LockNode &R = *Regions[Region];
  R.acquire(Mode::X);
  Dyn[Region].Layout.store(nullptr, std::memory_order_release);
  R.release(Mode::X);
  // The retired table stays in StripeTables: profiler ids and late
  // readers that pinned it remain valid until the runtime dies.
  return true;
}

ThreadLockContext::~ThreadLockContext() {
  assert(HeldNodes.empty() && "thread exited while holding locks");
  flushStats();
}

// The general multi-descriptor path; the single-descriptor fast path
// lives inline in the header.
void ThreadLockContext::acquireAllSlow() {
  // Phase 1: fold the pending descriptors into the required mode at every
  // node of the hierarchy, on reusable scratch vectors (no allocation
  // once their capacity has grown to the section's working-set size).
  bool NeedRootX = false;
  Mode RootMode = Mode::IS;
  bool RootUsed = false;
  RegionScratch.clear();
  LeafScratch.clear();

  auto FoldRoot = [&](Mode M) {
    RootMode = RootUsed ? combineModes(RootMode, M) : M;
    RootUsed = true;
  };

  for (const LockDescriptor &D : Pending) {
    switch (D.K) {
    case LockDescriptor::Kind::Global:
      NeedRootX = true;
      break;
    case LockDescriptor::Kind::Coarse:
      FoldRoot(D.Write ? Mode::IX : Mode::IS);
      RegionScratch.push_back({D.Region, D.Write ? Mode::X : Mode::S});
      break;
    case LockDescriptor::Kind::Fine:
      FoldRoot(D.Write ? Mode::IX : Mode::IS);
      RegionScratch.push_back({D.Region, D.Write ? Mode::IX : Mode::IS});
      LeafScratch.push_back(
          {D.Region, D.Address, D.Write ? Mode::X : Mode::S});
      break;
    }
  }
  if (NeedRootX) {
    RootMode = Mode::X;
    RootUsed = true;
    // Root X subsumes every descendant; no other node is needed.
    RegionScratch.clear();
    LeafScratch.clear();
  } else {
    // Sort into the global acquisition order, then merge duplicate keys
    // in place with the mode join.
    std::sort(RegionScratch.begin(), RegionScratch.end(),
              [](const RegionReq &A, const RegionReq &B) {
                return A.Region < B.Region;
              });
    size_t Out = 0;
    for (size_t I = 0; I < RegionScratch.size(); ++I) {
      if (Out > 0 && RegionScratch[Out - 1].Region == RegionScratch[I].Region)
        RegionScratch[Out - 1].M =
            combineModes(RegionScratch[Out - 1].M, RegionScratch[I].M);
      else
        RegionScratch[Out++] = RegionScratch[I];
    }
    RegionScratch.resize(Out);

    std::sort(LeafScratch.begin(), LeafScratch.end(),
              [](const LeafReq &A, const LeafReq &B) {
                return A.Region != B.Region ? A.Region < B.Region
                                            : A.Address < B.Address;
              });
    Out = 0;
    for (size_t I = 0; I < LeafScratch.size(); ++I) {
      if (Out > 0 && LeafScratch[Out - 1].Region == LeafScratch[I].Region &&
          LeafScratch[Out - 1].Address == LeafScratch[I].Address)
        LeafScratch[Out - 1].M =
            combineModes(LeafScratch[Out - 1].M, LeafScratch[I].M);
      else
        LeafScratch[Out++] = LeafScratch[I];
    }
    LeafScratch.resize(Out);
  }

  // Phase 2: acquire top-down in the global total order.
  if (RootUsed)
    grab(RT.root(), RootMode);
  for (const RegionReq &R : RegionScratch)
    grab(RT.regionNode(R.Region), R.M);
  // Leaf phase, one run per region (LeafScratch is sorted by region).
  // Each region's grant — taken above — pins its layout, so the read
  // here is stable for the whole section. A striped run re-sorts by
  // stripe index and merges duplicates: every thread sees the same
  // layout, hence the same order, preserving deadlock freedom.
  for (size_t I = 0; I < LeafScratch.size();) {
    uint32_t Region = LeafScratch[I].Region;
    size_t End = I + 1;
    while (End < LeafScratch.size() && LeafScratch[End].Region == Region)
      ++End;
    if (StripeTable *T = RT.regionLayout(Region)) {
      StripeScratch.clear();
      for (size_t J = I; J < End; ++J)
        StripeScratch.push_back(
            {T->indexFor(LeafScratch[J].Address), LeafScratch[J].M});
      std::sort(StripeScratch.begin(), StripeScratch.end(),
                [](const StripeReq &A, const StripeReq &B) {
                  return A.Index < B.Index;
                });
      size_t SOut = 0;
      for (size_t J = 0; J < StripeScratch.size(); ++J) {
        if (SOut > 0 &&
            StripeScratch[SOut - 1].Index == StripeScratch[J].Index)
          StripeScratch[SOut - 1].M =
              combineModes(StripeScratch[SOut - 1].M, StripeScratch[J].M);
        else
          StripeScratch[SOut++] = StripeScratch[J];
      }
      StripeScratch.resize(SOut);
      for (const StripeReq &SR : StripeScratch)
        grab(T->stripe(SR.Index), SR.M);
    } else {
      for (size_t J = I; J < End; ++J)
        grab(cachedLeaf(Region, LeafScratch[J].Address), LeafScratch[J].M);
    }
    I = End;
  }
  statAdd(LStats.NodeAcquisitions, HeldNodes.size());

  // Swap, not move: the old HeldDescriptors buffer becomes the next
  // section's Pending buffer, so neither side reallocates in steady
  // state.
  std::swap(HeldDescriptors, Pending);
  Pending.clear();
  buildCoverIndex();
  if constexpr (obs::kEnabled) {
    if (ObsActive)
      endObsAcquire();
  }
}

// Recording tail of an instrumented grab: the node has already been
// acquired on the inline path; this runs only for parked (exact wait
// recording — parking already costs microseconds, so the bookkeeping
// vanishes in the noise) or sampled grabs, so it can afford the chunked
// table lookup.
void ThreadLockContext::grabObs(LockNode &Node, Mode M, bool Parked,
                                uint64_t ParkNs) {
  if (Node.ObsId) {
    obs::NodeSlot &Slot = RT.Prof->nodeSlot(Node.ObsId);
    if (Parked) {
      Slot.Contentions.inc();
      Slot.WaitNs.record(ParkNs);
      Slot.ContenderMask.fetch_or(TidBit, std::memory_order_relaxed);
      SectionParkNs += ParkNs;
      obs::tracer().span(obs::EventKind::NodeWaitSpan,
                         obs::nowNs() - ParkNs, ParkNs, Node.ObsId, 0,
                         static_cast<uint8_t>(M));
    }
    if (ObsActive) {
      Slot.Acquires.add(ObsWeight);
      Slot.ModeCounts[static_cast<unsigned>(M)].add(ObsWeight);
    }
  }
  HeldNodes.push_back({&Node, M});
}

void ThreadLockContext::endObsAcquire() {
  AcquireEndNs = obs::nowNs();
  obs::SectionSlot &S = RT.Prof->sectionSlot(SectionTag);
  S.Entries.add(ObsWeight);
  S.Locks.add(HeldDescriptors.size() * ObsWeight);
  S.Nodes.add(HeldNodes.size() * ObsWeight);
  for (const HeldNode &H : HeldNodes)
    S.ModeCounts[static_cast<unsigned>(H.M)].add(ObsWeight);
  if (AcquireStartNs) // start timestamp is only taken when tracing
    obs::tracer().span(obs::EventKind::AcquireSpan, AcquireStartNs,
                       AcquireEndNs - AcquireStartNs, HeldNodes.size());
}

// Hold times are approximated as end-of-acquire → release for every node
// of the section; the per-node grant instants are at most the acquire
// span apart, far below the microsecond scale hold histograms resolve.
void ThreadLockContext::recordHoldTimes() {
  uint64_t Now = obs::nowNs();
  for (const HeldNode &H : HeldNodes)
    if (H.Node->ObsId)
      RT.Prof->nodeSlot(H.Node->ObsId)
          .HoldNs.recordWeighted(Now - AcquireEndNs, ObsWeight);
  // Section-level hold sum (the denominator of the adaptive engine's
  // wait/hold migration ratio), weight-corrected like the entries.
  RT.Prof->sectionSlot(SectionTag)
      .HoldNs.add((Now - AcquireEndNs) * ObsWeight);
}

void ThreadLockContext::buildCoverIndex() {
  HasGlobal = false;
  HasGlobalWrite = false;
  CoarseIndex.clear();
  FineIndex.clear();
  for (const LockDescriptor &D : HeldDescriptors) {
    switch (D.K) {
    case LockDescriptor::Kind::Global:
      HasGlobal = true;
      HasGlobalWrite |= D.Write;
      break;
    case LockDescriptor::Kind::Coarse:
      CoarseIndex.push_back({D.Region, D.Write});
      break;
    case LockDescriptor::Kind::Fine:
      FineIndex.push_back({D.Address, D.Write});
      break;
    }
  }
  std::sort(CoarseIndex.begin(), CoarseIndex.end(),
            [](const CoarseCover &A, const CoarseCover &B) {
              return A.Region < B.Region;
            });
  size_t Out = 0;
  for (size_t I = 0; I < CoarseIndex.size(); ++I) {
    if (Out > 0 && CoarseIndex[Out - 1].Region == CoarseIndex[I].Region)
      CoarseIndex[Out - 1].Write |= CoarseIndex[I].Write;
    else
      CoarseIndex[Out++] = CoarseIndex[I];
  }
  CoarseIndex.resize(Out);

  std::sort(FineIndex.begin(), FineIndex.end(),
            [](const FineCover &A, const FineCover &B) {
              return A.Address < B.Address;
            });
  Out = 0;
  for (size_t I = 0; I < FineIndex.size(); ++I) {
    if (Out > 0 && FineIndex[Out - 1].Address == FineIndex[I].Address)
      FineIndex[Out - 1].Write |= FineIndex[I].Write;
    else
      FineIndex[Out++] = FineIndex[I];
  }
  FineIndex.resize(Out);
}
