//===--- LockRuntime.h - Multi-granularity lock runtime ---------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library of §5: the lock hierarchy (root ⊤ → one node per
/// points-to region → one leaf node per address) and the three-call API
/// *to-acquire*, *acquire-all*, *release-all* on a per-thread context.
///
/// Deadlock freedom: acquire-all first computes the combined mode required
/// at every node (fine ro → IS/S, fine rw → IX/X, coarse ro → S, coarse rw
/// → X, with SIX when a region is both read coarsely and written finely),
/// then acquires top-down — root, regions in ascending region id, leaves
/// in ascending (region, address) — a total order shared by all threads.
/// Locks are released bottom-up at release-all. Nested sections are
/// handled with the per-thread nesting counter of §5.3.
///
/// Fast path (see DESIGN.md "Runtime fast path"): the per-call mode
/// folding runs on reusable per-context scratch vectors (steady-state
/// acquire-all performs zero heap allocations), repeat leaf lookups hit a
/// per-thread direct-mapped cache instead of the sharded table, and the
/// per-access cover check is a binary search over a sorted index.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_LOCKRUNTIME_H
#define LOCKIN_RUNTIME_LOCKRUNTIME_H

#include "obs/LockProfiler.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "runtime/LockNode.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace rt {

/// A serialized lock as handed to the runtime (§5.2): an address for the
/// Σ_k component, a region id for the Σ_≡ component, and the effect.
struct LockDescriptor {
  enum class Kind : uint8_t { Global, Coarse, Fine };

  Kind K = Kind::Global;
  uint32_t Region = 0;
  uint64_t Address = 0;
  bool Write = true;

  static LockDescriptor global() { return {Kind::Global, 0, 0, true}; }
  static LockDescriptor coarse(uint32_t Region, bool Write) {
    return {Kind::Coarse, Region, 0, Write};
  }
  static LockDescriptor fine(uint32_t Region, uint64_t Address, bool Write) {
    return {Kind::Fine, Region, Address, Write};
  }

  /// True if holding this descriptor permits the given access under the
  /// concrete lock semantics of §3.2.
  bool covers(uint64_t Addr, uint32_t AddrRegion, bool IsWrite) const {
    if (IsWrite && !Write)
      return false;
    switch (K) {
    case Kind::Global:
      return true;
    case Kind::Coarse:
      return Region == AddrRegion;
    case Kind::Fine:
      return Address == Addr;
    }
    return false;
  }
};

/// Snapshot of the aggregate protocol statistics (for the ablation
/// benchmark and --stats). The live counts are "runtime.*" counters in
/// the runtime's metrics registry; contexts buffer counts in plain
/// per-thread cells and flush them there on destruction (or an explicit
/// flushStats()), so the steady-state fast path performs no shared atomic
/// RMWs at all. Recording is compiled out entirely when the LOCKIN_OBS
/// CMake option is OFF; the struct itself stays so callers compile
/// either way.
struct LockRuntimeStats {
  uint64_t AcquireAllCalls = 0;
  uint64_t NodeAcquisitions = 0;
  uint64_t NestedSkips = 0;
  uint64_t LeafCacheHits = 0;
  uint64_t LeafCacheMisses = 0;
};

/// Shared lock table for one program run. Threads interact through
/// ThreadLockContext instances bound to this runtime.
class LockRuntime {
public:
  /// \p NumRegions must cover every region id used in descriptors.
  /// \p Registry and \p Profiler default to the process-global instances;
  /// tests inject fresh ones for exact, isolated counts.
  explicit LockRuntime(unsigned NumRegions,
                       obs::MetricsRegistry *Registry = nullptr,
                       obs::LockProfiler *Profiler = nullptr);

  LockNode &root() { return Root; }
  LockNode &regionNode(uint32_t Region);
  /// The leaf node for \p Address under \p Region, created on first use
  /// (never freed; leaf count is bounded by the number of distinct locked
  /// addresses — which is what makes per-thread pointer caching sound).
  /// Leaves are children of their region node, so the pair is the
  /// identity.
  LockNode &leafNode(uint32_t Region, uint64_t Address);

  unsigned numRegions() const {
    return static_cast<unsigned>(Regions.size());
  }

  /// Current values of the shared "runtime.*" counters (see
  /// ThreadLockContext::flushStats for when buffered counts land).
  LockRuntimeStats stats() const;

  obs::MetricsRegistry &registry() { return *Reg; }
  obs::LockProfiler &profiler() { return *Prof; }

  struct LeafKey {
    uint32_t Region;
    uint64_t Address;
    bool operator==(const LeafKey &Other) const = default;
  };
  struct LeafKeyHash {
    size_t operator()(const LeafKey &Key) const {
      // Fibonacci-multiply then fold the high bits down: the shard index
      // takes the LOW bits, and for aligned addresses the low product
      // bits barely vary, so fold before masking.
      uint64_t H = (Key.Address + 0x9e3779b97f4a7c15ULL * (Key.Region + 1)) *
                   0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

private:
  LockNode Root;
  std::vector<std::unique_ptr<LockNode>> Regions;

  static constexpr unsigned NumShards = 64;
  static_assert((NumShards & (NumShards - 1)) == 0,
                "shard index uses a power-of-two mask");
  struct Shard {
    std::mutex Mu;
    std::unordered_map<LeafKey, std::unique_ptr<LockNode>, LeafKeyHash>
        Leaves;
  };
  Shard Shards[NumShards];

  friend class ThreadLockContext;
  obs::MetricsRegistry *Reg;
  obs::LockProfiler *Prof;
  /// Registry counter handles, resolved once at construction so context
  /// flushes are pointer chases, not name lookups.
  struct StatCounters {
    obs::Counter *AcquireAllCalls = nullptr;
    obs::Counter *NodeAcquisitions = nullptr;
    obs::Counter *NestedSkips = nullptr;
    obs::Counter *LeafCacheHits = nullptr;
    obs::Counter *LeafCacheMisses = nullptr;
  };
  StatCounters SC;
};

/// Per-thread façade implementing the §5.2 API. Not thread-safe; create
/// one per thread.
class ThreadLockContext {
public:
  explicit ThreadLockContext(LockRuntime &RT)
      : RT(RT), Trc(&obs::tracer()) {}
  ~ThreadLockContext();

  ThreadLockContext(const ThreadLockContext &) = delete;
  ThreadLockContext &operator=(const ThreadLockContext &) = delete;

  /// Adds \p D to the pending list (the *to-acquire* call).
  void toAcquire(const LockDescriptor &D) {
    if (NLevel > 0)
      return; // inner section: the outer section's locks already protect it
    Pending.push_back(D);
  }

  /// Tags subsequent acquireAll calls with the static id of the atomic
  /// section being entered, keying the profiler's per-section rollups
  /// (entries, locks/entry, mode mix). 0 = untagged; the interpreter
  /// passes static section id + 1.
  void setSectionTag(uint32_t SectionId) { SectionTag = SectionId; }
  uint32_t sectionTag() const { return SectionTag; }

  /// Acquires every pending lock using the multi-grain protocol. Nested
  /// calls (nesting level > 0) acquire nothing (§5.3). Single-descriptor
  /// sections — the overwhelmingly common case, one inferred lock per
  /// section — inline into a fixed two/three-node walk; everything else
  /// goes through the general fold in acquireAllSlow.
  void acquireAll() {
    if (NLevel++ > 0) {
      statInc(LStats.NestedSkips);
      if constexpr (obs::kEnabled) {
        if (ObsActive)
          RT.Prof->sectionSlot(SectionTag).NestedSkips.add(ObsWeight);
      }
      Pending.clear();
      return;
    }
    statInc(LStats.AcquireAllCalls);
    if constexpr (obs::kEnabled)
      beginObsSection();
    // The cover index and HeldNodes are invariably empty here: the
    // outermost acquireAll always follows a full releaseAll (or a fresh
    // context), so nothing needs clearing on this path.
    if (Pending.size() == 1 &&
        Pending[0].K != LockDescriptor::Kind::Global) {
      const LockDescriptor &D = Pending[0];
      if (D.K == LockDescriptor::Kind::Coarse) {
        grab(RT.root(), D.Write ? Mode::IX : Mode::IS);
        grab(RT.regionNode(D.Region), D.Write ? Mode::X : Mode::S);
        CoarseIndex.push_back({D.Region, D.Write});
      } else {
        grab(RT.root(), D.Write ? Mode::IX : Mode::IS);
        grab(RT.regionNode(D.Region), D.Write ? Mode::IX : Mode::IS);
        grab(cachedLeaf(D.Region, D.Address), D.Write ? Mode::X : Mode::S);
        FineIndex.push_back({D.Address, D.Write});
      }
      statAdd(LStats.NodeAcquisitions, HeldNodes.size());
      // Swap, not move: the old HeldDescriptors buffer becomes the next
      // section's Pending buffer, so neither side reallocates in steady
      // state.
      std::swap(HeldDescriptors, Pending);
      Pending.clear();
      if constexpr (obs::kEnabled) {
        if (ObsActive)
          endObsAcquire();
      }
      return;
    }
    acquireAllSlow();
  }

  /// Releases all locks held by this thread, bottom-up. Inner nested
  /// sections only decrement the nesting counter.
  void releaseAll() {
    assert(NLevel > 0 && "releaseAll without matching acquireAll");
    if (--NLevel > 0)
      return;
    if constexpr (obs::kEnabled) {
      if (ObsActive && !HeldNodes.empty())
        recordHoldTimes();
    }
    // Bottom-up release: reverse acquisition order.
    for (size_t I = HeldNodes.size(); I-- > 0;)
      HeldNodes[I].Node->release(HeldNodes[I].M);
    HeldNodes.clear();
    HeldDescriptors.clear();
    HasGlobal = false;
    HasGlobalWrite = false;
    CoarseIndex.clear();
    FineIndex.clear();
  }

  /// Descriptors currently protected (outermost section), for the
  /// checking interpreter.
  const std::vector<LockDescriptor> &heldDescriptors() const {
    return HeldDescriptors;
  }

  /// True if the held set permits the access (checking semantics, §4.2).
  /// Binary search over the cover index built at acquireAll — this runs
  /// once per memory access in the checking interpreter.
  bool coversAccess(uint64_t Addr, uint32_t Region, bool IsWrite) const {
    if (HasGlobalWrite || (HasGlobal && !IsWrite))
      return true;
    auto C = std::lower_bound(
        CoarseIndex.begin(), CoarseIndex.end(), Region,
        [](const CoarseCover &E, uint32_t R) { return E.Region < R; });
    if (C != CoarseIndex.end() && C->Region == Region &&
        (C->Write || !IsWrite))
      return true;
    auto F = std::lower_bound(
        FineIndex.begin(), FineIndex.end(), Addr,
        [](const FineCover &E, uint64_t A) { return E.Address < A; });
    return F != FineIndex.end() && F->Address == Addr &&
           (F->Write || !IsWrite);
  }

  int nestingLevel() const { return NLevel; }
  bool insideAtomic() const { return NLevel > 0; }

  /// Adds this context's buffered statistics to the runtime's registry
  /// counters. Called automatically on destruction; call explicitly to
  /// observe exact counts while the context lives.
  void flushStats() {
    if constexpr (obs::kEnabled) {
      RT.SC.AcquireAllCalls->add(LStats.AcquireAllCalls);
      RT.SC.NodeAcquisitions->add(LStats.NodeAcquisitions);
      RT.SC.NestedSkips->add(LStats.NestedSkips);
      RT.SC.LeafCacheHits->add(LStats.LeafCacheHits);
      RT.SC.LeafCacheMisses->add(LStats.LeafCacheMisses);
      LStats = {};
    }
  }

private:
  struct HeldNode {
    LockNode *Node;
    Mode M;
  };
  /// Scratch entries for the per-call mode fold; the vectors keep their
  /// capacity across sections, so steady-state acquireAll is
  /// allocation-free.
  struct RegionReq {
    uint32_t Region;
    Mode M;
  };
  struct LeafReq {
    uint32_t Region;
    uint64_t Address;
    Mode M;
  };
  /// Cover-index entries (write flag is the OR of the merged
  /// descriptors: a rw lock also covers reads).
  struct CoarseCover {
    uint32_t Region;
    bool Write;
  };
  struct FineCover {
    uint64_t Address;
    bool Write;
  };

  /// Per-context stat cells: plain increments here, one batched atomic
  /// flush per context lifetime (see flushStats). Mirrors
  /// LockRuntimeStats field for field.
  struct LocalStats {
    uint64_t AcquireAllCalls = 0;
    uint64_t NodeAcquisitions = 0;
    uint64_t NestedSkips = 0;
    uint64_t LeafCacheHits = 0;
    uint64_t LeafCacheMisses = 0;
  };
  static void statInc(uint64_t &Cell) {
    if constexpr (obs::kEnabled)
      ++Cell;
    else
      (void)Cell;
  }
  static void statAdd(uint64_t &Cell, uint64_t N) {
    if constexpr (obs::kEnabled)
      Cell += N;
    else
      (void)Cell, (void)N;
  }

  /// Decides whether this outermost section is observed and at what
  /// weight. Profiler dormant: one relaxed load and a branch.
  void beginObsSection() {
    ObsActive = false;
    ObsOn = RT.Prof->enabled();
    if (!ObsOn)
      return;
    bool Traced = Trc->enabled();
    if (Traced || SectionSeq++ % obs::kSampleEvery == 0) {
      ObsActive = true;
      ObsWeight = Traced ? 1 : obs::kSampleEvery;
      // The section-start timestamp only feeds the acquire trace span;
      // profiling alone gets by on the end-of-acquire read.
      AcquireStartNs = Traced ? obs::nowNs() : 0;
    }
  }

  void grab(LockNode &Node, Mode M) {
    if constexpr (obs::kEnabled) {
      // Any enabled profiler must see parked waits exactly, so every
      // grab checks the park flag while it is on; the common unsampled
      // uncontended grab stays on this inline path and records nothing.
      if (ObsOn) {
        uint64_t ParkNs = 0;
        bool Parked = Node.acquire(M, &ParkNs);
        if (Parked || ObsActive) {
          grabObs(Node, M, Parked, ParkNs);
          return;
        }
        HeldNodes.push_back({&Node, M});
        return;
      }
    }
    Node.acquire(M);
    HeldNodes.push_back({&Node, M});
  }
  void grabObs(LockNode &Node, Mode M, bool Parked, uint64_t ParkNs);
  void endObsAcquire();
  void recordHoldTimes();
  LockNode &cachedLeaf(uint32_t Region, uint64_t Address) {
    size_t Idx = LockRuntime::LeafKeyHash{}(
                     LockRuntime::LeafKey{Region, Address}) &
                 (LeafCacheSize - 1);
    LeafCacheEntry &E = LeafCache[Idx];
    if (E.Node && E.Address == Address && E.Region == Region) {
      statInc(LStats.LeafCacheHits);
      return *E.Node;
    }
    statInc(LStats.LeafCacheMisses);
    LockNode &N = RT.leafNode(Region, Address);
    E = {Address, Region, &N};
    return N;
  }
  void acquireAllSlow();
  void buildCoverIndex();

  LockRuntime &RT;
  std::vector<LockDescriptor> Pending;
  std::vector<LockDescriptor> HeldDescriptors;
  std::vector<HeldNode> HeldNodes; // in acquisition order
  std::vector<RegionReq> RegionScratch;
  std::vector<LeafReq> LeafScratch;
  std::vector<CoarseCover> CoarseIndex; // sorted by Region
  std::vector<FineCover> FineIndex;     // sorted by Address
  bool HasGlobal = false;
  bool HasGlobalWrite = false;
  int NLevel = 0;
  LocalStats LStats;

  /// Observability state for the current outermost section (set by
  /// beginObsSection, consumed through releaseAll).
  uint32_t SectionTag = 0;
  uint32_t SectionSeq = 0;    ///< sections seen, drives 1/kSampleEvery
  obs::Tracer *Trc;           ///< cached singleton, hot-path enabled() check
  bool ObsOn = false;         ///< profiler enabled at section entry
  bool ObsActive = false;     ///< this section is sampled (or traced)
  uint64_t ObsWeight = 1;     ///< count weight for sampled updates
  uint64_t AcquireStartNs = 0;
  uint64_t AcquireEndNs = 0;

  /// Direct-mapped (region, address) → leaf cache; leaves are never
  /// freed, so hits stay valid for the lifetime of the runtime.
  struct LeafCacheEntry {
    uint64_t Address = 0;
    uint32_t Region = 0;
    LockNode *Node = nullptr;
  };
  static constexpr unsigned LeafCacheSize = 256;
  static_assert((LeafCacheSize & (LeafCacheSize - 1)) == 0,
                "cache index uses a power-of-two mask");
  std::array<LeafCacheEntry, LeafCacheSize> LeafCache{};
};

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_LOCKRUNTIME_H
