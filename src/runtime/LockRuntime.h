//===--- LockRuntime.h - Multi-granularity lock runtime ---------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library of §5: the lock hierarchy (root ⊤ → one node per
/// points-to region → one leaf node per address) and the three-call API
/// *to-acquire*, *acquire-all*, *release-all* on a per-thread context.
///
/// Deadlock freedom: acquire-all first computes the combined mode required
/// at every node (fine ro → IS/S, fine rw → IX/X, coarse ro → S, coarse rw
/// → X, with SIX when a region is both read coarsely and written finely),
/// then acquires top-down — root, regions in ascending region id, leaves
/// in ascending (region, address) — a total order shared by all threads.
/// Locks are released bottom-up at release-all. Nested sections are
/// handled with the per-thread nesting counter of §5.3.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_LOCKRUNTIME_H
#define LOCKIN_RUNTIME_LOCKRUNTIME_H

#include "runtime/LockNode.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace rt {

/// A serialized lock as handed to the runtime (§5.2): an address for the
/// Σ_k component, a region id for the Σ_≡ component, and the effect.
struct LockDescriptor {
  enum class Kind : uint8_t { Global, Coarse, Fine };

  Kind K = Kind::Global;
  uint32_t Region = 0;
  uint64_t Address = 0;
  bool Write = true;

  static LockDescriptor global() { return {Kind::Global, 0, 0, true}; }
  static LockDescriptor coarse(uint32_t Region, bool Write) {
    return {Kind::Coarse, Region, 0, Write};
  }
  static LockDescriptor fine(uint32_t Region, uint64_t Address, bool Write) {
    return {Kind::Fine, Region, Address, Write};
  }

  /// True if holding this descriptor permits the given access under the
  /// concrete lock semantics of §3.2.
  bool covers(uint64_t Addr, uint32_t AddrRegion, bool IsWrite) const {
    if (IsWrite && !Write)
      return false;
    switch (K) {
    case Kind::Global:
      return true;
    case Kind::Coarse:
      return Region == AddrRegion;
    case Kind::Fine:
      return Address == Addr;
    }
    return false;
  }
};

/// Aggregate protocol statistics (for the ablation benchmark).
struct LockRuntimeStats {
  std::atomic<uint64_t> AcquireAllCalls{0};
  std::atomic<uint64_t> NodeAcquisitions{0};
  std::atomic<uint64_t> NestedSkips{0};
};

/// Shared lock table for one program run. Threads interact through
/// ThreadLockContext instances bound to this runtime.
class LockRuntime {
public:
  /// \p NumRegions must cover every region id used in descriptors.
  explicit LockRuntime(unsigned NumRegions);

  LockNode &root() { return Root; }
  LockNode &regionNode(uint32_t Region);
  /// The leaf node for \p Address under \p Region, created on first use
  /// (never freed; leaf count is bounded by the number of distinct locked
  /// addresses). Leaves are children of their region node, so the pair is
  /// the identity.
  LockNode &leafNode(uint32_t Region, uint64_t Address);

  unsigned numRegions() const {
    return static_cast<unsigned>(Regions.size());
  }

  LockRuntimeStats &stats() { return Stats; }

private:
  LockNode Root;
  std::vector<std::unique_ptr<LockNode>> Regions;

  struct LeafKey {
    uint32_t Region;
    uint64_t Address;
    bool operator==(const LeafKey &Other) const = default;
  };
  struct LeafKeyHash {
    size_t operator()(const LeafKey &Key) const {
      return (Key.Address * 0x9e3779b97f4a7c15ULL) ^ Key.Region;
    }
  };

  static constexpr unsigned NumShards = 64;
  struct Shard {
    std::mutex Mu;
    std::unordered_map<LeafKey, std::unique_ptr<LockNode>, LeafKeyHash>
        Leaves;
  };
  Shard Shards[NumShards];

  LockRuntimeStats Stats;
};

/// Per-thread façade implementing the §5.2 API. Not thread-safe; create
/// one per thread.
class ThreadLockContext {
public:
  explicit ThreadLockContext(LockRuntime &RT) : RT(RT) {}
  ~ThreadLockContext();

  ThreadLockContext(const ThreadLockContext &) = delete;
  ThreadLockContext &operator=(const ThreadLockContext &) = delete;

  /// Adds \p D to the pending list (the *to-acquire* call).
  void toAcquire(const LockDescriptor &D);

  /// Acquires every pending lock using the multi-grain protocol. Nested
  /// calls (nesting level > 0) acquire nothing (§5.3).
  void acquireAll();

  /// Releases all locks held by this thread, bottom-up. Inner nested
  /// sections only decrement the nesting counter.
  void releaseAll();

  /// Descriptors currently protected (outermost section), for the
  /// checking interpreter.
  const std::vector<LockDescriptor> &heldDescriptors() const {
    return HeldDescriptors;
  }

  /// True if the held set permits the access (checking semantics, §4.2).
  bool coversAccess(uint64_t Addr, uint32_t Region, bool IsWrite) const {
    for (const LockDescriptor &D : HeldDescriptors)
      if (D.covers(Addr, Region, IsWrite))
        return true;
    return false;
  }

  int nestingLevel() const { return NLevel; }
  bool insideAtomic() const { return NLevel > 0; }

private:
  struct HeldNode {
    LockNode *Node;
    Mode M;
  };

  LockRuntime &RT;
  std::vector<LockDescriptor> Pending;
  std::vector<LockDescriptor> HeldDescriptors;
  std::vector<HeldNode> HeldNodes; // in acquisition order
  int NLevel = 0;
};

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_LOCKRUNTIME_H
