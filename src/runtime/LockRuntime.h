//===--- LockRuntime.h - Multi-granularity lock runtime ---------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime library of §5: the lock hierarchy (root ⊤ → one node per
/// points-to region → one leaf node per address) and the three-call API
/// *to-acquire*, *acquire-all*, *release-all* on a per-thread context.
///
/// Deadlock freedom: acquire-all first computes the combined mode required
/// at every node (fine ro → IS/S, fine rw → IX/X, coarse ro → S, coarse rw
/// → X, with SIX when a region is both read coarsely and written finely),
/// then acquires top-down — root, regions in ascending region id, leaves
/// in ascending (region, address) — a total order shared by all threads.
/// Locks are released bottom-up at release-all. Nested sections are
/// handled with the per-thread nesting counter of §5.3.
///
/// Fast path (see DESIGN.md "Runtime fast path"): the per-call mode
/// folding runs on reusable per-context scratch vectors (steady-state
/// acquire-all performs zero heap allocations), repeat leaf lookups hit a
/// per-thread direct-mapped cache instead of the sharded table, and the
/// per-access cover check is a binary search over a sorted index.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_LOCKRUNTIME_H
#define LOCKIN_RUNTIME_LOCKRUNTIME_H

#include "obs/LockProfiler.h"
#include "obs/Obs.h"
#include "obs/Trace.h"
#include "runtime/LockNode.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace rt {

/// A serialized lock as handed to the runtime (§5.2): an address for the
/// Σ_k component, a region id for the Σ_≡ component, and the effect.
struct LockDescriptor {
  enum class Kind : uint8_t { Global, Coarse, Fine };

  Kind K = Kind::Global;
  uint32_t Region = 0;
  uint64_t Address = 0;
  bool Write = true;

  static LockDescriptor global() { return {Kind::Global, 0, 0, true}; }
  static LockDescriptor coarse(uint32_t Region, bool Write) {
    return {Kind::Coarse, Region, 0, Write};
  }
  static LockDescriptor fine(uint32_t Region, uint64_t Address, bool Write) {
    return {Kind::Fine, Region, Address, Write};
  }

  /// True if holding this descriptor permits the given access under the
  /// concrete lock semantics of §3.2.
  bool covers(uint64_t Addr, uint32_t AddrRegion, bool IsWrite) const {
    if (IsWrite && !Write)
      return false;
    switch (K) {
    case Kind::Global:
      return true;
    case Kind::Coarse:
      return Region == AddrRegion;
    case Kind::Fine:
      return Address == Addr;
    }
    return false;
  }
};

/// Snapshot of the aggregate protocol statistics (for the ablation
/// benchmark and --stats). The live counts are "runtime.*" counters in
/// the runtime's metrics registry; contexts buffer counts in plain
/// per-thread cells and flush them there on destruction (or an explicit
/// flushStats()), so the steady-state fast path performs no shared atomic
/// RMWs at all. Recording is compiled out entirely when the LOCKIN_OBS
/// CMake option is OFF; the struct itself stays so callers compile
/// either way.
struct LockRuntimeStats {
  uint64_t AcquireAllCalls = 0;
  uint64_t NodeAcquisitions = 0;
  uint64_t NestedSkips = 0;
  uint64_t LeafCacheHits = 0;
  uint64_t LeafCacheMisses = 0;
};

/// A cache-line-padded striped lock table: the escalated layout of one
/// hot region. Fine requests hash their address to a stripe instead of
/// taking a per-address leaf — shorter path (no shard map, no leaf
/// cache) at the cost of false conflicts between addresses sharing a
/// stripe, which is why escalation is a policy decision, not the
/// default. Stripe count is a power of two, sized from the observed
/// contender count by the adaptive engine.
struct StripeTable {
  struct alignas(64) PaddedNode {
    LockNode Node;
  };

  explicit StripeTable(unsigned CountPow2)
      : Count(CountPow2), Stripes(new PaddedNode[CountPow2]) {}

  unsigned indexFor(uint64_t Address) const {
    // Word-align then Fibonacci-spread; take high product bits.
    uint64_t H = (Address >> 3) * 0x9e3779b97f4a7c15ULL;
    return static_cast<unsigned>(H >> 32) & (Count - 1);
  }
  LockNode &stripe(unsigned Idx) { return Stripes[Idx].Node; }

  const unsigned Count; ///< power of two
  std::unique_ptr<PaddedNode[]> Stripes;
};

/// Shared lock table for one program run. Threads interact through
/// ThreadLockContext instances bound to this runtime.
class LockRuntime {
public:
  /// \p NumRegions must cover every region id used in descriptors.
  /// \p Registry and \p Profiler default to the process-global instances;
  /// tests inject fresh ones for exact, isolated counts.
  explicit LockRuntime(unsigned NumRegions,
                       obs::MetricsRegistry *Registry = nullptr,
                       obs::LockProfiler *Profiler = nullptr);

  LockNode &root() { return Root; }
  LockNode &regionNode(uint32_t Region);
  /// The leaf node for \p Address under \p Region, created on first use
  /// (never freed; leaf count is bounded by the number of distinct locked
  /// addresses — which is what makes per-thread pointer caching sound).
  /// Leaves are children of their region node, so the pair is the
  /// identity.
  LockNode &leafNode(uint32_t Region, uint64_t Address);

  unsigned numRegions() const {
    return static_cast<unsigned>(Regions.size());
  }

  /// The striped layout installed for \p Region, or null for the flat
  /// per-address leaves. Only meaningful while the caller holds a grant
  /// on the region node: any granted mode conflicts with the X the
  /// escalation protocol takes, so the layout read after the grant is
  /// pinned until release.
  StripeTable *regionLayout(uint32_t Region) const {
    return Dyn[Region].Layout.load(std::memory_order_acquire);
  }

  /// Distinct leaf nodes ever created under \p Region (the adaptive
  /// engine's leaf-pressure escalation signal).
  uint32_t regionLeafCount(uint32_t Region) const {
    return Dyn[Region].LeafCount.load(std::memory_order_relaxed);
  }

  /// Installs a striped layout of ~\p Stripes stripes (rounded up to a
  /// power of two, clamped to [2, 1024]) for \p Region, or removes it.
  /// Both take the region node in X, which drains every current holder
  /// — a holder's region grant pins the layout it read — and block new
  /// entrants until the swap is published; the sorted acquisition order
  /// is unchanged, so deadlock freedom is preserved across the swap.
  /// Returns false when already in the requested state. Retired tables
  /// stay owned (and profiler-registered) until runtime destruction, so
  /// no node ever dangles.
  bool escalateRegion(uint32_t Region, unsigned Stripes);
  bool deescalateRegion(uint32_t Region);

  /// Visits every lock node: root, regions, stripes of installed
  /// layouts, then leaves (briefly locking each shard). \p F is called
  /// as F(LockNode &, const obs::LockNodeInfo &). Nodes created
  /// concurrently may be missed; the adaptive engine re-scans each
  /// epoch.
  template <typename Fn> void forEachNode(Fn &&F) {
    F(Root, obs::LockNodeInfo{obs::LockNodeInfo::Kind::Root, 0, 0});
    for (uint32_t R = 0; R < Regions.size(); ++R) {
      F(*Regions[R], obs::LockNodeInfo{obs::LockNodeInfo::Kind::Region, R, 0});
      if (StripeTable *T = regionLayout(R))
        for (unsigned I = 0; I < T->Count; ++I)
          F(T->stripe(I),
            obs::LockNodeInfo{obs::LockNodeInfo::Kind::Stripe, R, I});
    }
    for (Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mu);
      for (auto &[Key, Node] : S.Leaves)
        F(*Node, obs::LockNodeInfo{obs::LockNodeInfo::Kind::Leaf, Key.Region,
                                   Key.Address});
    }
  }

  /// Current values of the shared "runtime.*" counters (see
  /// ThreadLockContext::flushStats for when buffered counts land).
  LockRuntimeStats stats() const;

  /// Live count of parked acquisitions, maintained even while the
  /// profiler is dormant (a park costs microseconds; one relaxed RMW on
  /// that path is noise). The adaptive engine reads the per-epoch delta
  /// as its always-on contention alarm: parking appearing during a
  /// quiet spell re-arms the profiler immediately instead of waiting
  /// out the duty-cycle backoff.
  uint64_t parkEvents() const {
    return ParkEvents.load(std::memory_order_relaxed);
  }

  obs::MetricsRegistry &registry() { return *Reg; }
  obs::LockProfiler &profiler() { return *Prof; }

  struct LeafKey {
    uint32_t Region;
    uint64_t Address;
    bool operator==(const LeafKey &Other) const = default;
  };
  struct LeafKeyHash {
    size_t operator()(const LeafKey &Key) const {
      // Fibonacci-multiply then fold the high bits down: the shard index
      // takes the LOW bits, and for aligned addresses the low product
      // bits barely vary, so fold before masking.
      uint64_t H = (Key.Address + 0x9e3779b97f4a7c15ULL * (Key.Region + 1)) *
                   0x9e3779b97f4a7c15ULL;
      return static_cast<size_t>(H ^ (H >> 32));
    }
  };

private:
  LockNode Root;
  std::vector<std::unique_ptr<LockNode>> Regions;

  /// Per-region dynamic-layout state.
  struct RegionDyn {
    std::atomic<StripeTable *> Layout{nullptr};
    std::atomic<uint32_t> LeafCount{0};
  };
  std::unique_ptr<RegionDyn[]> Dyn;
  /// Owns every stripe table ever installed (active and retired): a
  /// de-escalated table may still be referenced by profiler slot ids,
  /// so tables live until the runtime dies.
  std::mutex TablesMu;
  std::vector<std::unique_ptr<StripeTable>> StripeTables;

  static constexpr unsigned NumShards = 64;
  static_assert((NumShards & (NumShards - 1)) == 0,
                "shard index uses a power-of-two mask");
  struct Shard {
    std::mutex Mu;
    std::unordered_map<LeafKey, std::unique_ptr<LockNode>, LeafKeyHash>
        Leaves;
  };
  Shard Shards[NumShards];

  friend class ThreadLockContext;
  std::atomic<uint64_t> ParkEvents{0};
  obs::MetricsRegistry *Reg;
  obs::LockProfiler *Prof;
  /// Registry counter handles, resolved once at construction so context
  /// flushes are pointer chases, not name lookups.
  struct StatCounters {
    obs::Counter *AcquireAllCalls = nullptr;
    obs::Counter *NodeAcquisitions = nullptr;
    obs::Counter *NestedSkips = nullptr;
    obs::Counter *LeafCacheHits = nullptr;
    obs::Counter *LeafCacheMisses = nullptr;
  };
  StatCounters SC;
};

/// Per-thread façade implementing the §5.2 API. Not thread-safe; create
/// one per thread.
class ThreadLockContext {
public:
  explicit ThreadLockContext(LockRuntime &RT)
      : RT(RT), Trc(&obs::tracer()) {
    // One stable pseudo-random bit per context for NodeSlot::ContenderMask.
    uint64_t H = reinterpret_cast<uintptr_t>(this) * 0x9e3779b97f4a7c15ULL;
    TidBit = 1ull << (H >> 58);
  }
  ~ThreadLockContext();

  ThreadLockContext(const ThreadLockContext &) = delete;
  ThreadLockContext &operator=(const ThreadLockContext &) = delete;

  /// Adds \p D to the pending list (the *to-acquire* call).
  void toAcquire(const LockDescriptor &D) {
    if (NLevel > 0)
      return; // inner section: the outer section's locks already protect it
    Pending.push_back(D);
  }

  /// Tags subsequent acquireAll calls with the static id of the atomic
  /// section being entered, keying the profiler's per-section rollups
  /// (entries, locks/entry, mode mix). 0 = untagged; the interpreter
  /// passes static section id + 1.
  void setSectionTag(uint32_t SectionId) { SectionTag = SectionId; }
  uint32_t sectionTag() const { return SectionTag; }

  /// Acquires every pending lock using the multi-grain protocol. Nested
  /// calls (nesting level > 0) acquire nothing (§5.3). Single-descriptor
  /// sections — the overwhelmingly common case, one inferred lock per
  /// section — inline into a fixed two/three-node walk; everything else
  /// goes through the general fold in acquireAllSlow.
  void acquireAll() {
    if (NLevel++ > 0) {
      statInc(LStats.NestedSkips);
      if constexpr (obs::kEnabled) {
        if (ObsActive)
          RT.Prof->sectionSlot(SectionTag).NestedSkips.add(ObsWeight);
      }
      Pending.clear();
      return;
    }
    statInc(LStats.AcquireAllCalls);
    if constexpr (obs::kEnabled)
      beginObsSection();
    // The cover index and HeldNodes are invariably empty here: the
    // outermost acquireAll always follows a full releaseAll (or a fresh
    // context), so nothing needs clearing on this path.
    if (Pending.size() == 1 &&
        Pending[0].K != LockDescriptor::Kind::Global) {
      const LockDescriptor &D = Pending[0];
      if (D.K == LockDescriptor::Kind::Coarse) {
        grab(RT.root(), D.Write ? Mode::IX : Mode::IS);
        grab(RT.regionNode(D.Region), D.Write ? Mode::X : Mode::S);
        CoarseIndex.push_back({D.Region, D.Write});
      } else {
        grab(RT.root(), D.Write ? Mode::IX : Mode::IS);
        grab(RT.regionNode(D.Region), D.Write ? Mode::IX : Mode::IS);
        // Layout is read *after* the region grant, which pins it (see
        // LockRuntime::regionLayout): on the flat layout this is one
        // extra acquire load; on a striped region the stripe replaces
        // the leaf — a hash instead of the cache/shard-map lookup.
        if (StripeTable *T = RT.regionLayout(D.Region))
          grab(T->stripe(T->indexFor(D.Address)),
               D.Write ? Mode::X : Mode::S);
        else
          grab(cachedLeaf(D.Region, D.Address), D.Write ? Mode::X : Mode::S);
        FineIndex.push_back({D.Address, D.Write});
      }
      statAdd(LStats.NodeAcquisitions, HeldNodes.size());
      // Swap, not move: the old HeldDescriptors buffer becomes the next
      // section's Pending buffer, so neither side reallocates in steady
      // state.
      std::swap(HeldDescriptors, Pending);
      Pending.clear();
      if constexpr (obs::kEnabled) {
        if (ObsActive)
          endObsAcquire();
      }
      return;
    }
    acquireAllSlow();
  }

  /// Releases all locks held by this thread, bottom-up. Inner nested
  /// sections only decrement the nesting counter.
  void releaseAll() {
    assert(NLevel > 0 && "releaseAll without matching acquireAll");
    if (--NLevel > 0)
      return;
    if constexpr (obs::kEnabled) {
      if (ObsActive && !HeldNodes.empty())
        recordHoldTimes();
      // Parked time is recorded exactly per section (the adaptive
      // engine's wait/hold migration signal), sampled or not.
      if (SectionParkNs) {
        RT.Prof->sectionSlot(SectionTag).WaitNs.add(SectionParkNs);
        SectionParkNs = 0;
      }
    }
    // Bottom-up release: reverse acquisition order.
    for (size_t I = HeldNodes.size(); I-- > 0;)
      HeldNodes[I].Node->release(HeldNodes[I].M);
    HeldNodes.clear();
    HeldDescriptors.clear();
    HasGlobal = false;
    HasGlobalWrite = false;
    CoarseIndex.clear();
    FineIndex.clear();
  }

  /// Descriptors currently protected (outermost section), for the
  /// checking interpreter.
  const std::vector<LockDescriptor> &heldDescriptors() const {
    return HeldDescriptors;
  }

  /// True if the held set permits the access (checking semantics, §4.2).
  /// Binary search over the cover index built at acquireAll — this runs
  /// once per memory access in the checking interpreter.
  bool coversAccess(uint64_t Addr, uint32_t Region, bool IsWrite) const {
    if (HasGlobalWrite || (HasGlobal && !IsWrite))
      return true;
    auto C = std::lower_bound(
        CoarseIndex.begin(), CoarseIndex.end(), Region,
        [](const CoarseCover &E, uint32_t R) { return E.Region < R; });
    if (C != CoarseIndex.end() && C->Region == Region &&
        (C->Write || !IsWrite))
      return true;
    auto F = std::lower_bound(
        FineIndex.begin(), FineIndex.end(), Addr,
        [](const FineCover &E, uint64_t A) { return E.Address < A; });
    return F != FineIndex.end() && F->Address == Addr &&
           (F->Write || !IsWrite);
  }

  int nestingLevel() const { return NLevel; }
  bool insideAtomic() const { return NLevel > 0; }

  /// Adds this context's buffered statistics to the runtime's registry
  /// counters. Called automatically on destruction; call explicitly to
  /// observe exact counts while the context lives.
  void flushStats() {
    if constexpr (obs::kEnabled) {
      RT.SC.AcquireAllCalls->add(LStats.AcquireAllCalls);
      RT.SC.NodeAcquisitions->add(LStats.NodeAcquisitions);
      RT.SC.NestedSkips->add(LStats.NestedSkips);
      RT.SC.LeafCacheHits->add(LStats.LeafCacheHits);
      RT.SC.LeafCacheMisses->add(LStats.LeafCacheMisses);
      LStats = {};
    }
  }

private:
  struct HeldNode {
    LockNode *Node;
    Mode M;
  };
  /// Scratch entries for the per-call mode fold; the vectors keep their
  /// capacity across sections, so steady-state acquireAll is
  /// allocation-free.
  struct RegionReq {
    uint32_t Region;
    Mode M;
  };
  struct LeafReq {
    uint32_t Region;
    uint64_t Address;
    Mode M;
  };
  struct StripeReq {
    unsigned Index;
    Mode M;
  };
  /// Cover-index entries (write flag is the OR of the merged
  /// descriptors: a rw lock also covers reads).
  struct CoarseCover {
    uint32_t Region;
    bool Write;
  };
  struct FineCover {
    uint64_t Address;
    bool Write;
  };

  /// Per-context stat cells: plain increments here, one batched atomic
  /// flush per context lifetime (see flushStats). Mirrors
  /// LockRuntimeStats field for field.
  struct LocalStats {
    uint64_t AcquireAllCalls = 0;
    uint64_t NodeAcquisitions = 0;
    uint64_t NestedSkips = 0;
    uint64_t LeafCacheHits = 0;
    uint64_t LeafCacheMisses = 0;
  };
  static void statInc(uint64_t &Cell) {
    if constexpr (obs::kEnabled)
      ++Cell;
    else
      (void)Cell;
  }
  static void statAdd(uint64_t &Cell, uint64_t N) {
    if constexpr (obs::kEnabled)
      Cell += N;
    else
      (void)Cell, (void)N;
  }

  /// Decides whether this outermost section is observed and at what
  /// weight. Profiler dormant: one relaxed load and a branch. Armed,
  /// the unsampled path is the counter bump and two predictable
  /// branches: the tracer state is cached and refreshed once per
  /// sample period instead of loaded per section (so arming the tracer
  /// takes effect within kSampleEvery sections), which is what brought
  /// the armed overhead back under the ≤5% budget.
  void beginObsSection() {
    static_assert((obs::kSampleEvery & (obs::kSampleEvery - 1)) == 0,
                  "sampling uses a power-of-two mask");
    ObsActive = false;
    ObsOn = RT.Prof->enabled();
    if (!ObsOn)
      return;
    if ((SectionSeq++ & (obs::kSampleEvery - 1)) == 0) {
      TrcArmed = Trc->enabled();
      ObsActive = true;
      ObsWeight = TrcArmed ? 1 : obs::kSampleEvery;
      // The section-start timestamp only feeds the acquire trace span;
      // profiling alone gets by on the end-of-acquire read.
      AcquireStartNs = TrcArmed ? obs::nowNs() : 0;
    } else if (TrcArmed) {
      ObsActive = true;
      ObsWeight = 1;
      AcquireStartNs = obs::nowNs();
    }
  }

  void grab(LockNode &Node, Mode M) {
    if constexpr (obs::kEnabled) {
      // Any enabled profiler must see parked waits exactly, so every
      // grab checks the park flag while it is on; the common unsampled
      // uncontended grab stays on this inline path and records nothing.
      if (ObsOn) {
        uint64_t ParkNs = 0;
        bool Parked = Node.acquire(M, &ParkNs);
        if (Parked) {
          RT.ParkEvents.fetch_add(1, std::memory_order_relaxed);
          grabObs(Node, M, Parked, ParkNs);
          return;
        }
        if (ObsActive) {
          grabObs(Node, M, Parked, ParkNs);
          return;
        }
        HeldNodes.push_back({&Node, M});
        return;
      }
    }
    if (Node.acquire(M))
      RT.ParkEvents.fetch_add(1, std::memory_order_relaxed);
    HeldNodes.push_back({&Node, M});
  }
  void grabObs(LockNode &Node, Mode M, bool Parked, uint64_t ParkNs);
  void endObsAcquire();
  void recordHoldTimes();
  LockNode &cachedLeaf(uint32_t Region, uint64_t Address) {
    size_t Idx = LockRuntime::LeafKeyHash{}(
                     LockRuntime::LeafKey{Region, Address}) &
                 (LeafCacheSize - 1);
    LeafCacheEntry &E = LeafCache[Idx];
    if (E.Node && E.Address == Address && E.Region == Region) {
      statInc(LStats.LeafCacheHits);
      return *E.Node;
    }
    statInc(LStats.LeafCacheMisses);
    LockNode &N = RT.leafNode(Region, Address);
    E = {Address, Region, &N};
    return N;
  }
  void acquireAllSlow();
  void buildCoverIndex();

  LockRuntime &RT;
  std::vector<LockDescriptor> Pending;
  std::vector<LockDescriptor> HeldDescriptors;
  std::vector<HeldNode> HeldNodes; // in acquisition order
  std::vector<RegionReq> RegionScratch;
  std::vector<LeafReq> LeafScratch;
  std::vector<StripeReq> StripeScratch;
  std::vector<CoarseCover> CoarseIndex; // sorted by Region
  std::vector<FineCover> FineIndex;     // sorted by Address
  bool HasGlobal = false;
  bool HasGlobalWrite = false;
  int NLevel = 0;
  LocalStats LStats;

  /// Observability state for the current outermost section (set by
  /// beginObsSection, consumed through releaseAll).
  uint32_t SectionTag = 0;
  uint32_t SectionSeq = 0;    ///< sections seen, drives 1/kSampleEvery
  obs::Tracer *Trc;           ///< cached singleton
  bool TrcArmed = false;      ///< tracer state, refreshed 1/kSampleEvery
  bool ObsOn = false;         ///< profiler enabled at section entry
  bool ObsActive = false;     ///< this section is sampled (or traced)
  uint64_t ObsWeight = 1;     ///< count weight for sampled updates
  uint64_t AcquireStartNs = 0;
  uint64_t AcquireEndNs = 0;
  uint64_t SectionParkNs = 0; ///< parked ns in this section, exact
  uint64_t TidBit = 0;        ///< hashed-thread bit for ContenderMask

  /// Direct-mapped (region, address) → leaf cache; leaves are never
  /// freed, so hits stay valid for the lifetime of the runtime.
  struct LeafCacheEntry {
    uint64_t Address = 0;
    uint32_t Region = 0;
    LockNode *Node = nullptr;
  };
  static constexpr unsigned LeafCacheSize = 256;
  static_assert((LeafCacheSize & (LeafCacheSize - 1)) == 0,
                "cache index uses a power-of-two mask");
  std::array<LeafCacheEntry, LeafCacheSize> LeafCache{};
};

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_LOCKRUNTIME_H
