//===--- Mode.h - Multi-granularity access modes ----------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five access modes of the multi-granularity locking protocol
/// (Gray et al., VLDB'75), with the compatibility matrix of the paper's
/// Fig. 6(b):
///
///           IS   IX    S   SIX    X
///     IS     ✓    ✓    ✓    ✓    ✗
///     IX     ✓    ✓    ✗    ✗    ✗
///     S      ✓    ✗    ✓    ✗    ✗
///     SIX    ✓    ✗    ✗    ✗    ✗
///     X      ✗    ✗    ✗    ✗    ✗
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_RUNTIME_MODE_H
#define LOCKIN_RUNTIME_MODE_H

#include <cstdint>

namespace lockin {
namespace rt {

enum class Mode : uint8_t { IS = 0, IX = 1, S = 2, SIX = 3, X = 4 };
constexpr unsigned NumModes = 5;

/// True if two threads may hold the node in modes \p A and \p B
/// concurrently (Fig. 6(b)).
constexpr bool modesCompatible(Mode A, Mode B) {
  constexpr bool Table[NumModes][NumModes] = {
      //            IS     IX     S      SIX    X
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return Table[static_cast<unsigned>(A)][static_cast<unsigned>(B)];
}

/// The weakest mode granting the permissions of both \p A and \p B; this
/// is the join in the mode lattice IS < {IX, S} < SIX < X. A thread that
/// needs a region both shared (coarse read) and with intention-to-write
/// children (fine writes below) holds it in SIX.
constexpr Mode combineModes(Mode A, Mode B) {
  if (A == B)
    return A;
  constexpr Mode Table[NumModes][NumModes] = {
      //            IS         IX         S          SIX        X
      /* IS  */ {Mode::IS, Mode::IX, Mode::S, Mode::SIX, Mode::X},
      /* IX  */ {Mode::IX, Mode::IX, Mode::SIX, Mode::SIX, Mode::X},
      /* S   */ {Mode::S, Mode::SIX, Mode::S, Mode::SIX, Mode::X},
      /* SIX */ {Mode::SIX, Mode::SIX, Mode::SIX, Mode::SIX, Mode::X},
      /* X   */ {Mode::X, Mode::X, Mode::X, Mode::X, Mode::X},
  };
  return Table[static_cast<unsigned>(A)][static_cast<unsigned>(B)];
}

/// Bitmap (bit i set ⇔ mode i conflicts) of the modes incompatible with
/// \p M — the complement row of Fig. 6(b). Lock implementations expand
/// this into word-level masks so a compatibility check is one AND.
constexpr uint8_t modeConflictSet(Mode M) {
  uint8_t Bits = 0;
  for (unsigned I = 0; I < NumModes; ++I)
    if (!modesCompatible(M, static_cast<Mode>(I)))
      Bits |= static_cast<uint8_t>(1u << I);
  return Bits;
}

constexpr const char *modeName(Mode M) {
  switch (M) {
  case Mode::IS:
    return "IS";
  case Mode::IX:
    return "IX";
  case Mode::S:
    return "S";
  case Mode::SIX:
    return "SIX";
  case Mode::X:
    return "X";
  }
  return "?";
}

} // namespace rt
} // namespace lockin

#endif // LOCKIN_RUNTIME_MODE_H
