//===--- Client.cpp - Daemon client connection ----------------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include "service/Protocol.h"

#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lockin;
using namespace lockin::service;

bool Client::connectUnix(const std::string &Path, std::string &Err) {
  close();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: " + Path;
    return false;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = "connect " + Path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Client::connectTcp(int Port, std::string &Err) {
  close();
  Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = "connect port " + std::to_string(Port) + ": " +
          std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

bool Client::call(const Json &Request, Json &Response, std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  if (!writeJson(Fd, Request, Err))
    return false;
  int Rc = readJson(Fd, Response, Err);
  if (Rc == 0) {
    Err = "connection closed by daemon";
    return false;
  }
  return Rc > 0;
}

bool Client::analyze(const std::string &Unit, const std::string &Source,
                     Json &Response, std::string &Err, unsigned K,
                     bool Force) {
  Json Request = Json::object();
  Request.set("op", Json::string("analyze"));
  Request.set("unit", Json::string(Unit));
  Request.set("source", Json::string(Source));
  Request.set("k", Json::integer(K));
  if (Force)
    Request.set("force", Json::boolean(true));
  return call(Request, Response, Err);
}
