//===--- Client.h - Daemon client connection --------------------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A blocking client for the lockin daemon: connects over the unix
/// socket or loopback TCP, sends one length-prefixed JSON request at a
/// time, and returns the daemon's response. Shared by the lockin-client
/// subcommand, the service tests, and bench_service's load generator.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_CLIENT_H
#define LOCKIN_SERVICE_CLIENT_H

#include "service/Json.h"

#include <string>

namespace lockin {
namespace service {

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Client &operator=(Client &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }

  /// Connects to a unix-domain socket path.
  bool connectUnix(const std::string &Path, std::string &Err);
  /// Connects to 127.0.0.1:port.
  bool connectTcp(int Port, std::string &Err);

  bool connected() const { return Fd >= 0; }
  void close();

  /// One request/response round trip. False + Err on transport or parse
  /// failure (protocol-level failures come back as Response.ok=false).
  bool call(const Json &Request, Json &Response, std::string &Err);

  /// Convenience wrapper: builds and sends an analyze request.
  bool analyze(const std::string &Unit, const std::string &Source,
               Json &Response, std::string &Err, unsigned K = 3,
               bool Force = false);

private:
  int Fd = -1;
};

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_CLIENT_H
