//===--- EventLoop.cpp - Epoll-driven connection event loop ---------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/EventLoop.h"

#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define LOCKIN_HAVE_EPOLL 1
#endif

using namespace lockin;
using namespace lockin::service;

namespace {

/// Poller key reserved for the wakeup fd.
constexpr uint64_t kWakeKey = ~0ull;

void setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

//===----------------------------------------------------------------------===//
// Poller
//===----------------------------------------------------------------------===//

bool EventLoop::Poller::init(bool UsePoll, std::string &Err) {
  (void)Err;
#if LOCKIN_HAVE_EPOLL
  if (!UsePoll) {
    EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
    if (EpollFd >= 0)
      return true;
    // Fall through to the poll() backend — epoll is an optimization, not
    // a requirement.
  }
#else
  (void)UsePoll;
#endif
  EpollFd = -1;
  return true;
}

void EventLoop::Poller::close() {
#if LOCKIN_HAVE_EPOLL
  if (EpollFd >= 0) {
    ::close(EpollFd);
    EpollFd = -1;
  }
#endif
  Fallback.clear();
}

void EventLoop::Poller::add(int Fd, uint64_t Key, bool WantRead,
                            bool WantWrite, bool Et) {
#if LOCKIN_HAVE_EPOLL
  if (EpollFd >= 0) {
    epoll_event Ev{};
    Ev.events = (WantRead ? (EPOLLIN | EPOLLRDHUP) : 0u) |
                (WantWrite ? EPOLLOUT : 0u) | (Et ? EPOLLET : 0u);
    Ev.data.u64 = Key;
    ::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev);
    return;
  }
#endif
  (void)Et;
  Fallback[Key] = Watched{Fd, WantRead, WantWrite};
}

void EventLoop::Poller::mod(int Fd, uint64_t Key, bool WantRead,
                            bool WantWrite, bool Et) {
#if LOCKIN_HAVE_EPOLL
  if (EpollFd >= 0) {
    epoll_event Ev{};
    Ev.events = (WantRead ? (EPOLLIN | EPOLLRDHUP) : 0u) |
                (WantWrite ? EPOLLOUT : 0u) | (Et ? EPOLLET : 0u);
    Ev.data.u64 = Key;
    ::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev);
    return;
  }
#endif
  (void)Et;
  Fallback[Key] = Watched{Fd, WantRead, WantWrite};
}

void EventLoop::Poller::del(int Fd, uint64_t Key) {
#if LOCKIN_HAVE_EPOLL
  if (EpollFd >= 0) {
    ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
    return;
  }
#endif
  (void)Fd;
  Fallback.erase(Key);
}

int EventLoop::Poller::wait(std::vector<Ev> &Out, int TimeoutMs) {
  Out.clear();
#if LOCKIN_HAVE_EPOLL
  if (EpollFd >= 0) {
    epoll_event Evs[64];
    int N = ::epoll_wait(EpollFd, Evs, 64, TimeoutMs);
    if (N < 0)
      return errno == EINTR ? 0 : -1;
    for (int I = 0; I < N; ++I) {
      uint32_t E = Evs[I].events;
      Out.push_back(Ev{Evs[I].data.u64,
                       (E & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) != 0,
                       (E & EPOLLOUT) != 0, (E & EPOLLERR) != 0});
    }
    return N;
  }
#endif
  std::vector<pollfd> Fds;
  std::vector<uint64_t> Keys;
  Fds.reserve(Fallback.size());
  Keys.reserve(Fallback.size());
  for (const auto &[Key, W] : Fallback) {
    short Events = static_cast<short>((W.WantRead ? POLLIN : 0) |
                                      (W.WantWrite ? POLLOUT : 0));
    Fds.push_back(pollfd{W.Fd, Events, 0});
    Keys.push_back(Key);
  }
  int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
  if (N < 0)
    return errno == EINTR ? 0 : -1;
  for (size_t I = 0; I < Fds.size(); ++I) {
    short R = Fds[I].revents;
    if (!R)
      continue;
    Out.push_back(Ev{Keys[I], (R & (POLLIN | POLLHUP)) != 0,
                     (R & POLLOUT) != 0, (R & (POLLERR | POLLNVAL)) != 0});
  }
  return static_cast<int>(Out.size());
}

//===----------------------------------------------------------------------===//
// EventLoop
//===----------------------------------------------------------------------===//

EventLoop::EventLoop(Config C, EventLoopHandler &H)
    : Cfg(std::move(C)), Handler(H) {}

EventLoop::~EventLoop() {
  if (Thread.joinable())
    Thread.join();
  P.close();
  if (WakeWriteFd >= 0 && WakeWriteFd != WakeFd)
    ::close(WakeWriteFd);
  if (WakeFd >= 0)
    ::close(WakeFd);
}

bool EventLoop::start(std::string &Err) {
  if (!P.init(Cfg.UsePoll, Err))
    return false;
#if LOCKIN_HAVE_EPOLL
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  WakeWriteFd = WakeFd;
#endif
  if (WakeFd < 0) {
    int Pipe[2];
    if (::pipe(Pipe) != 0) {
      Err = std::string("pipe: ") + std::strerror(errno);
      return false;
    }
    setNonBlocking(Pipe[0]);
    setNonBlocking(Pipe[1]);
    WakeFd = Pipe[0];
    WakeWriteFd = Pipe[1];
  }
  P.add(WakeFd, kWakeKey, /*WantRead=*/true, /*WantWrite=*/false,
        /*Et=*/false);
  Thread = std::thread([this] { run(); });
  return true;
}

void EventLoop::join() {
  if (Thread.joinable())
    Thread.join();
}

void EventLoop::wake() {
  uint64_t One = 1;
  (void)!::write(WakeWriteFd, &One, sizeof(One));
}

void EventLoop::adoptConnection(int Fd, std::string Peer) {
  {
    std::lock_guard<std::mutex> Lock(ControlMu);
    if (!Exited) {
      NewConns.emplace_back(Fd, std::move(Peer));
      wake();
      return;
    }
  }
  ::close(Fd); // loop already gone (late accept during drain)
}

void EventLoop::sendResponse(Response R) {
  if (Thread.get_id() == std::this_thread::get_id()) {
    applyResponse(std::move(R));
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(ControlMu);
    if (!Exited) {
      Responses.push_back(std::move(R));
      wake();
      return;
    }
  }
  // The loop exited before this worker finished (its connection is long
  // gone): finalize on the caller's thread so the telemetry still lands.
  if (R.Ctx)
    Handler.onResponseDone(std::move(R.Ctx), /*Aborted=*/true,
                           /*Counted=*/false);
}

void EventLoop::beginDrain() {
  {
    std::lock_guard<std::mutex> Lock(ControlMu);
    if (Exited)
      return;
    DrainRequested = true;
  }
  wake();
}

void EventLoop::run() {
  std::vector<Poller::Ev> Evs;
  while (!(Draining && Conns.empty())) {
    int N = P.wait(Evs, pollTimeoutMs(obs::nowNs()));
    if (N < 0) {
      // Poller broke (can only mean corrupted fd state); bail rather
      // than spin — the daemon's drain will still join this thread.
      if constexpr (obs::kEnabled)
        obs::log()
            .event(obs::LogLevel::Error, "service.loop_failed")
            .num("loop", Cfg.Index)
            .str("error", std::strerror(errno));
      break;
    }
    obs::metrics().counter("service.loop.wakeups").inc();
    if (N > 0)
      obs::metrics().counter("service.loop.events").add(
          static_cast<uint64_t>(N));
    // Drain the wakeup fd BEFORE consuming the control queue. The other
    // order loses wakeups: a worker that posts a response between the
    // queue swap and the eventfd read would have its wake swallowed here
    // while its response stays queued — and with every thread then idle,
    // nothing ever flushes it. Drained first, a post-swap wake leaves the
    // eventfd readable and the next wait() returns immediately.
    for (const Poller::Ev &Ev : Evs) {
      if (Ev.Key == kWakeKey) {
        char Buf[64];
        while (::read(WakeFd, Buf, sizeof(Buf)) > 0)
          ;
        break;
      }
    }
    drainControl();
    for (const Poller::Ev &Ev : Evs) {
      if (Ev.Key == kWakeKey)
        continue;
      auto It = Conns.find(Ev.Key);
      if (It == Conns.end())
        continue; // closed earlier this iteration
      Conn &C = *It->second;
      if (Ev.Error) {
        abortConn(C, "socket error");
        continue;
      }
      if (Ev.Writable) {
        writeOut(C);
        if (Conns.find(Ev.Key) == Conns.end())
          continue; // writeOut closed it
      }
      if (Ev.Readable)
        readable(C);
    }
    sweepReadDeadlines(obs::nowNs());
    if (FireShutdownOp) {
      FireShutdownOp = false;
      Handler.onShutdownOp();
    }
  }

  // Late worker completions for connections that died before their jobs
  // finished would otherwise sit in the control queue forever.
  std::vector<Response> Late;
  {
    std::lock_guard<std::mutex> Lock(ControlMu);
    Exited = true;
    Late.swap(Responses);
  }
  for (Response &R : Late)
    if (R.Ctx)
      Handler.onResponseDone(std::move(R.Ctx), /*Aborted=*/true,
                             /*Counted=*/false);
}

int EventLoop::pollTimeoutMs(uint64_t NowNs) const {
  if (!Cfg.ReadTimeoutMs)
    return -1;
  uint64_t LimitNs = uint64_t(Cfg.ReadTimeoutMs) * 1'000'000ull;
  int64_t Best = -1;
  for (const auto &[Id, C] : Conns) {
    if (C->ReadClosed || !C->Asm.midFrame())
      continue;
    uint64_t DeadlineNs = C->LastReadNs + LimitNs;
    int64_t RemainMs =
        DeadlineNs > NowNs
            ? static_cast<int64_t>((DeadlineNs - NowNs) / 1'000'000ull) + 1
            : 0;
    Best = Best < 0 ? RemainMs : std::min(Best, RemainMs);
  }
  return static_cast<int>(Best);
}

void EventLoop::drainControl() {
  std::vector<std::pair<int, std::string>> NC;
  std::vector<Response> Rs;
  bool Drain = false;
  {
    std::lock_guard<std::mutex> Lock(ControlMu);
    NC.swap(NewConns);
    Rs.swap(Responses);
    if (DrainRequested) {
      DrainRequested = false;
      Drain = true;
    }
  }
  for (auto &[Fd, Peer] : NC)
    addConn(Fd, std::move(Peer));
  for (Response &R : Rs)
    applyResponse(std::move(R));
  if (Drain && !Draining) {
    Draining = true;
    // Half-close every read side: no new frames; dispatched requests
    // complete and their responses flush before the connection closes.
    std::vector<uint64_t> Ids;
    Ids.reserve(Conns.size());
    for (const auto &[Id, C] : Conns)
      Ids.push_back(Id);
    for (uint64_t Id : Ids) {
      auto It = Conns.find(Id);
      if (It == Conns.end())
        continue;
      Conn &C = *It->second;
      ::shutdown(C.Fd, SHUT_RD);
      C.ReadClosed = true;
      updateInterest(C);
      maybeClose(C);
    }
  }
}

void EventLoop::addConn(int Fd, std::string Peer) {
  if (Draining) {
    ::close(Fd);
    return;
  }
  setNonBlocking(Fd);
  if (Peer.compare(0, 4, "tcp:") == 0) {
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  }
  auto C = std::make_unique<Conn>();
  C->Fd = Fd;
  C->Id = NextConnId++;
  C->Peer = std::move(Peer);
  C->LastReadNs = obs::nowNs();
  P.add(Fd, C->Id, /*WantRead=*/true, /*WantWrite=*/false,
        Cfg.EdgeTriggered);
  uint64_t Id = C->Id;
  Conns.emplace(Id, std::move(C));
  // A client may have written its first request before the adopt message
  // reached us; with edge-triggered epoll that edge predates ADD, so probe
  // once instead of waiting for an edge that already fired.
  auto It = Conns.find(Id);
  if (It != Conns.end())
    readable(*It->second);
}

void EventLoop::applyResponse(Response R) {
  auto It = Conns.find(R.ConnId);
  if (It == Conns.end()) {
    if (R.Ctx)
      Handler.onResponseDone(std::move(R.Ctx), /*Aborted=*/true,
                             /*Counted=*/false);
    return;
  }
  Conn &C = *It->second;
  for (Pending &Slot : C.Pendings) {
    if (Slot.Seq != R.Seq)
      continue;
    Slot.Payload = std::move(R.Payload);
    Slot.Ctx = std::move(R.Ctx);
    Slot.Counted = R.Counted;
    Slot.CloseAfter = R.CloseAfter;
    Slot.ShutdownAfter = R.ShutdownAfter;
    Slot.Ready = true;
    flushPendings(C);
    return;
  }
  // No slot (aborted connection reused nothing — ids are never reused, so
  // this is a response for a slot dropped by abortConn).
  if (R.Ctx)
    Handler.onResponseDone(std::move(R.Ctx), /*Aborted=*/true,
                           /*Counted=*/false);
}

void EventLoop::readable(Conn &C) {
  if (C.ReadClosed) {
    maybeClose(C);
    return;
  }
  char Buf[65536];
  std::vector<std::string> Frames;
  std::string FrameErr;
  bool Eof = false, Fatal = false;
  for (;;) {
    ssize_t N = doRead(C.Fd, Buf, sizeof(Buf));
    if (N > 0) {
      C.LastReadNs = obs::nowNs();
      if (!C.Asm.feed(Buf, static_cast<size_t>(N), Frames, FrameErr)) {
        Fatal = true;
        break;
      }
      continue; // until EAGAIN — required under EPOLLET
    }
    if (N == 0) {
      Eof = true;
      break;
    }
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      break;
    abortConn(C, "read");
    return;
  }

  if (!Frames.empty()) {
    obs::metrics().counter("service.loop.frames").add(Frames.size());
    obs::metrics().counter("service.loop.batches").inc();
    uint64_t Id = C.Id;
    std::string Peer = C.Peer;
    for (std::string &F : Frames) {
      // onFrame may answer synchronously, which can flush, fail the
      // write, and close the connection — re-find it for every frame.
      auto It = Conns.find(Id);
      if (It == Conns.end())
        return;
      Conn &Cur = *It->second;
      uint64_t Seq = Cur.NextSeq++;
      Pending Slot;
      Slot.Seq = Seq;
      Cur.Pendings.push_back(std::move(Slot));
      Handler.onFrame(*this, Id, Seq, std::move(F), Peer);
    }
    auto It = Conns.find(Id);
    if (It == Conns.end())
      return;
  }

  if (Fatal) {
    // Oversized length prefix: answer exactly like the blocking path,
    // then drop the connection — framing is unrecoverable.
    if constexpr (obs::kEnabled)
      obs::log()
          .event(obs::LogLevel::Warn, "service.bad_frame")
          .str("peer", C.Peer)
          .str("error", FrameErr);
    Pending Slot;
    Slot.Seq = C.NextSeq++;
    Slot.Ready = true;
    Slot.Counted = false;
    Slot.CloseAfter = true;
    Slot.Payload = errorResponse(FrameErr).str();
    C.Pendings.push_back(std::move(Slot));
    ::shutdown(C.Fd, SHUT_RD);
    C.ReadClosed = true;
    updateInterest(C);
    flushPendings(C);
    return;
  }
  if (Eof) {
    C.ReadClosed = true;
    updateInterest(C);
    maybeClose(C);
  }
}

void EventLoop::flushPendings(Conn &C) {
  while (!C.Pendings.empty() && C.Pendings.front().Ready) {
    Pending Slot = std::move(C.Pendings.front());
    C.Pendings.pop_front();
    size_t Before = C.OutBuf.size();
    appendFrame(C.OutBuf, Slot.Payload);
    C.QueuedBytes += C.OutBuf.size() - Before;
    InflightWrite W;
    W.EndOffset = C.QueuedBytes;
    W.Counted = Slot.Counted;
    W.ShutdownAfter = Slot.ShutdownAfter;
    W.Ctx = std::move(Slot.Ctx);
    C.Flushing.push_back(std::move(W));
    if (Slot.CloseAfter)
      C.CloseAfterFlush = true;
  }
  writeOut(C);
}

void EventLoop::writeOut(Conn &C) {
  while (C.OutOff < C.OutBuf.size()) {
    ssize_t N =
        doWrite(C.Fd, C.OutBuf.data() + C.OutOff, C.OutBuf.size() - C.OutOff);
    if (N > 0) {
      C.OutOff += static_cast<size_t>(N);
      C.WrittenBytes += static_cast<uint64_t>(N);
      retireFlushed(C);
      continue;
    }
    if (N == 0)
      return;
    if (errno == EINTR)
      continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!C.WantWrite) {
        C.WantWrite = true;
        updateInterest(C);
      }
      return;
    }
    abortConn(C, "write");
    return;
  }
  // Fully drained: reclaim the buffer and disarm EPOLLOUT.
  C.OutBuf.clear();
  C.OutOff = 0;
  if (C.WantWrite) {
    C.WantWrite = false;
    updateInterest(C);
  }
  maybeClose(C);
}

void EventLoop::retireFlushed(Conn &C) {
  while (!C.Flushing.empty() &&
         C.Flushing.front().EndOffset <= C.WrittenBytes) {
    InflightWrite W = std::move(C.Flushing.front());
    C.Flushing.pop_front();
    if (W.ShutdownAfter) {
      FireShutdownOp = true;
      C.CloseAfterFlush = true;
    }
    Handler.onResponseDone(std::move(W.Ctx), /*Aborted=*/false, W.Counted);
  }
}

void EventLoop::maybeClose(Conn &C) {
  bool Idle = C.Pendings.empty() && C.Flushing.empty() &&
              C.OutOff >= C.OutBuf.size();
  if (Idle && (C.CloseAfterFlush || C.ReadClosed))
    closeConn(C);
}

void EventLoop::abortConn(Conn &C, const char *Reason) {
  obs::metrics().counter("service.aborted").inc();
  if constexpr (obs::kEnabled)
    obs::log()
        .event(obs::LogLevel::Warn, "service.conn_aborted")
        .str("peer", C.Peer)
        .str("reason", Reason)
        .num("loop", Cfg.Index);
  // Responses mid-write or queued-but-unflushed die with the connection;
  // their telemetry records the abort. Slots whose job is still running
  // finalize later, when the worker's response finds no connection.
  for (InflightWrite &W : C.Flushing)
    if (W.Ctx)
      Handler.onResponseDone(std::move(W.Ctx), /*Aborted=*/true,
                             /*Counted=*/false);
  C.Flushing.clear();
  for (Pending &Slot : C.Pendings)
    if (Slot.Ctx)
      Handler.onResponseDone(std::move(Slot.Ctx), /*Aborted=*/true,
                             /*Counted=*/false);
  C.Pendings.clear();
  closeConn(C);
}

void EventLoop::closeConn(Conn &C) {
  if constexpr (obs::kEnabled)
    obs::log()
        .event(obs::LogLevel::Debug, "service.disconnect")
        .str("peer", C.Peer);
  P.del(C.Fd, C.Id);
  ::close(C.Fd);
  Conns.erase(C.Id); // destroys C — callers must not touch it again
}

void EventLoop::updateInterest(Conn &C) {
  P.mod(C.Fd, C.Id, /*WantRead=*/!C.ReadClosed, C.WantWrite,
        Cfg.EdgeTriggered);
}

void EventLoop::sweepReadDeadlines(uint64_t NowNs) {
  if (!Cfg.ReadTimeoutMs)
    return;
  uint64_t LimitNs = uint64_t(Cfg.ReadTimeoutMs) * 1'000'000ull;
  std::vector<uint64_t> Timed;
  for (const auto &[Id, C] : Conns)
    if (!C->ReadClosed && C->Asm.midFrame() &&
        NowNs - C->LastReadNs >= LimitNs)
      Timed.push_back(Id);
  for (uint64_t Id : Timed) {
    auto It = Conns.find(Id);
    if (It == Conns.end())
      continue;
    Conn &C = *It->second;
    obs::metrics().counter("service.read_timeouts").inc();
    if constexpr (obs::kEnabled)
      obs::log()
          .event(obs::LogLevel::Warn, "service.read_timeout")
          .str("peer", C.Peer)
          .num("timeout_ms", Cfg.ReadTimeoutMs)
          .num("pending_bytes", C.Asm.pendingBytes());
    Pending Slot;
    Slot.Seq = C.NextSeq++;
    Slot.Ready = true;
    Slot.Counted = false;
    Slot.CloseAfter = true;
    Slot.Payload = errorResponse("read timeout").str();
    C.Pendings.push_back(std::move(Slot));
    ::shutdown(C.Fd, SHUT_RD);
    C.ReadClosed = true;
    updateInterest(C);
    flushPendings(C);
  }
}

ssize_t EventLoop::doRead(int Fd, char *Buf, size_t N) {
  if (Cfg.Faults && Cfg.Faults->Fail) {
    if (int E = Cfg.Faults->Fail("read", Fd)) {
      errno = E;
      return -1;
    }
  }
  return ::read(Fd, Buf, N);
}

ssize_t EventLoop::doWrite(int Fd, const char *Buf, size_t N) {
  if (Cfg.Faults) {
    if (Cfg.Faults->Fail) {
      if (int E = Cfg.Faults->Fail("write", Fd)) {
        errno = E;
        return -1;
      }
    }
    if (Cfg.Faults->ShortWriteBytes)
      N = std::min(N, Cfg.Faults->ShortWriteBytes);
  }
  // MSG_NOSIGNAL: a peer that resets mid-write must surface as EPIPE to
  // abortConn, not raise SIGPIPE — the loop cannot assume the embedding
  // process ignores it (the daemon does; tests and embedders may not).
  return ::send(Fd, Buf, N, MSG_NOSIGNAL);
}
