//===--- EventLoop.h - Epoll-driven connection event loop -------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's async service tier: N event-loop threads, each owning an
/// epoll instance (or a poll() fallback where epoll is unavailable or
/// when ServerOptions asks for it), a wakeup fd, and a set of
/// non-blocking connections. The accept thread hands fresh sockets to a
/// loop round-robin; from then on every byte of that connection is read,
/// assembled (service/Protocol.h FrameAssembler), dispatched, and written
/// back on that one loop thread — no thread per connection, no blocking
/// read parked on a socket.
///
/// Request flow: readable fd → read() until EAGAIN → feed the frame
/// assembler → one Pending slot per completed frame, in arrival order →
/// EventLoopHandler::onFrame. Cheap ops answer synchronously on the loop
/// thread; analyze jobs go to the worker pool and their responses come
/// back through sendResponse(), which is thread-safe (posts to the loop's
/// control queue and writes the wakeup fd). Responses always flush in
/// request order per connection — a pipelined client that sends requests
/// A B C gets answers A B C even when B's analysis finishes first.
///
/// Write path: ready responses are framed into a per-connection output
/// buffer and written until EAGAIN; a partial write arms EPOLLOUT. The
/// loop tracks cumulative queued/written byte counts so each response's
/// telemetry context is finalized exactly when its last byte reaches the
/// kernel — and finalized as *aborted* when the peer vanishes mid-write,
/// which must never wedge the loop (the fault-injection tests drive
/// exactly this).
///
/// Slow-loris defense: a connection that has started a frame but stops
/// feeding bytes for ReadTimeoutMs gets a "read timeout" error response
/// and is closed. Idle connections *between* frames are left alone.
///
/// Drain: beginDrain() half-closes every connection's read side. Frames
/// already dispatched finish, their responses flush, and the loop thread
/// exits once the last connection closes — zero in-flight drops.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_EVENTLOOP_H
#define LOCKIN_SERVICE_EVENTLOOP_H

#include "obs/RequestTelemetry.h"
#include "service/Protocol.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace service {

/// Test-only fault injection, threaded through ServerOptions. The loop
/// consults Fail before every read/write syscall; a nonzero return is the
/// errno the syscall pretends to fail with (EAGAIN, ECONNRESET, EPIPE,
/// ...). ShortWriteBytes caps each write() so partial-write handling is
/// exercised deterministically.
struct FaultInjector {
  std::function<int(const char *Op, int Fd)> Fail;
  size_t ShortWriteBytes = 0;
};

class EventLoop;

/// The server-side of the loop: frame dispatch and request finalization.
/// All callbacks must be thread-safe — onFrame runs on loop threads,
/// onResponseDone on whichever thread retires the response (loop thread
/// normally; a worker thread when the connection died first and the loop
/// already exited).
class EventLoopHandler {
public:
  virtual ~EventLoopHandler() = default;

  /// One complete frame arrived on \p ConnId (sequence \p Seq within the
  /// connection). Must eventually cause exactly one sendResponse for
  /// (ConnId, Seq) — synchronously for cheap ops, from a worker for
  /// analyze jobs.
  virtual void onFrame(EventLoop &Loop, uint64_t ConnId, uint64_t Seq,
                       std::string Frame, const std::string &Peer) = 0;

  /// A response retired: fully flushed (Aborted=false) or dropped because
  /// the connection died first (Aborted=true). \p Ctx may be null (no
  /// telemetry); \p Counted mirrors Response::Counted and gates the
  /// requests-served counter.
  virtual void onResponseDone(std::unique_ptr<obs::RequestContext> Ctx,
                              bool Aborted, bool Counted) = 0;

  /// A shutdown op's response has flushed; begin the daemon drain.
  virtual void onShutdownOp() = 0;
};

class EventLoop {
public:
  struct Config {
    unsigned Index = 0;        ///< loop number, for logs
    unsigned ReadTimeoutMs = 0; ///< mid-frame read deadline; 0 = off
    bool EdgeTriggered = false; ///< EPOLLET (epoll backend only)
    bool UsePoll = false;       ///< force the poll() fallback backend
    std::shared_ptr<FaultInjector> Faults;
  };

  /// A response for one (ConnId, Seq) slot. Payload is the JSON text
  /// (unframed; the loop prepends the length prefix).
  struct Response {
    uint64_t ConnId = 0;
    uint64_t Seq = 0;
    std::string Payload;
    std::unique_ptr<obs::RequestContext> Ctx;
    bool Counted = true;       ///< increments requests-served when flushed
    bool CloseAfter = false;   ///< close the connection once flushed
    bool ShutdownAfter = false; ///< fire onShutdownOp once flushed
  };

  EventLoop(Config C, EventLoopHandler &H);
  ~EventLoop();
  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// Creates the poller + wakeup fd and spawns the loop thread.
  bool start(std::string &Err);
  /// Joins the loop thread (returns after drain completes).
  void join();

  /// Hands a fresh accepted socket to this loop (thread-safe). The loop
  /// makes it non-blocking and starts reading.
  void adoptConnection(int Fd, std::string Peer);

  /// Delivers a response for a dispatched frame (thread-safe). If the
  /// connection already died, the context is finalized as aborted; if
  /// the loop already exited (late worker completion during drain), the
  /// finalization happens on the caller's thread.
  void sendResponse(Response R);

  /// Half-closes every connection's read side; the loop exits once all
  /// in-flight responses have flushed and every connection closed.
  void beginDrain();

  unsigned index() const { return Cfg.Index; }

private:
  struct Pending {
    uint64_t Seq = 0;
    bool Ready = false;
    bool Counted = true;
    bool CloseAfter = false;
    bool ShutdownAfter = false;
    std::string Payload;
    std::unique_ptr<obs::RequestContext> Ctx;
  };

  /// A response whose framed bytes sit in OutBuf: EndOffset is the
  /// cumulative queued-byte offset of its last byte; once WrittenBytes
  /// crosses it the response has fully reached the kernel.
  struct InflightWrite {
    uint64_t EndOffset = 0;
    bool Counted = true;
    bool ShutdownAfter = false;
    std::unique_ptr<obs::RequestContext> Ctx;
  };

  struct Conn {
    int Fd = -1;
    uint64_t Id = 0;
    std::string Peer;
    FrameAssembler Asm;
    uint64_t NextSeq = 0;
    std::deque<Pending> Pendings; ///< arrival order; front flushes first
    std::string OutBuf;
    size_t OutOff = 0; ///< consumed prefix of OutBuf
    uint64_t QueuedBytes = 0;  ///< cumulative framed bytes queued
    uint64_t WrittenBytes = 0; ///< cumulative bytes written to the kernel
    std::deque<InflightWrite> Flushing;
    bool WantWrite = false; ///< EPOLLOUT armed
    bool ReadClosed = false;
    bool CloseAfterFlush = false;
    uint64_t LastReadNs = 0;
  };

  /// Backend-neutral readiness poller: epoll on Linux, poll() elsewhere
  /// or when Config::UsePoll forces the fallback.
  class Poller {
  public:
    struct Ev {
      uint64_t Key;
      bool Readable;
      bool Writable;
      bool Error;
    };
    bool init(bool UsePoll, std::string &Err);
    void close();
    bool usingEpoll() const { return EpollFd >= 0; }
    void add(int Fd, uint64_t Key, bool WantRead, bool WantWrite, bool Et);
    void mod(int Fd, uint64_t Key, bool WantRead, bool WantWrite, bool Et);
    void del(int Fd, uint64_t Key);
    /// Fills \p Out; returns the event count, 0 on timeout, -1 on error.
    int wait(std::vector<Ev> &Out, int TimeoutMs);

  private:
    int EpollFd = -1;
    struct Watched {
      int Fd;
      bool WantRead;
      bool WantWrite;
    };
    std::unordered_map<uint64_t, Watched> Fallback; ///< poll() backend
  };

  void run();
  void wake();
  void drainControl();
  void applyResponse(Response R);
  void addConn(int Fd, std::string Peer);
  void readable(Conn &C);
  void flushPendings(Conn &C);
  void writeOut(Conn &C);
  void retireFlushed(Conn &C);
  void maybeClose(Conn &C);
  void abortConn(Conn &C, const char *Reason);
  void closeConn(Conn &C);
  void updateInterest(Conn &C);
  void sweepReadDeadlines(uint64_t NowNs);
  int pollTimeoutMs(uint64_t NowNs) const;
  ssize_t doRead(int Fd, char *Buf, size_t N);
  ssize_t doWrite(int Fd, const char *Buf, size_t N);

  Config Cfg;
  EventLoopHandler &Handler;
  Poller P;
  std::thread Thread;

  int WakeFd = -1;      ///< eventfd, or pipe read end
  int WakeWriteFd = -1; ///< == WakeFd for eventfd; pipe write end otherwise

  std::unordered_map<uint64_t, std::unique_ptr<Conn>> Conns;
  uint64_t NextConnId = 1;
  bool Draining = false;
  bool FireShutdownOp = false; ///< a shutdown op's response just flushed

  std::mutex ControlMu;
  std::vector<std::pair<int, std::string>> NewConns;
  std::vector<Response> Responses;
  bool DrainRequested = false;
  bool Exited = false; ///< loop thread done; late responses finalize inline
};

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_EVENTLOOP_H
