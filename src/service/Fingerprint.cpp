//===--- Fingerprint.cpp - Content hashes for incremental analysis --------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/Fingerprint.h"

#include "ir/IrPrinter.h"
#include "service/Hash.h"

#include <algorithm>
#include <set>

using namespace lockin;
using namespace lockin::service;

namespace {

/// Bump when the key derivation changes so stale daemon caches cannot
/// serve entries computed under an older scheme.
constexpr uint64_t KeyFormatVersion = 1;

} // namespace

ModuleFingerprint::ModuleFingerprint(const ir::IrModule &M,
                                     const analysis::CallGraph &CG,
                                     const PointsToAnalysis &PT)
    : M(M), CG(CG), PT(PT) {
  FnHash.resize(CG.numFunctions());
  for (unsigned I = 0; I < CG.numFunctions(); ++I) {
    const ir::IrFunction *F = CG.function(I);
    Fnv1a H;
    H.str(F->name());
    // Normalized IR, not raw source: whitespace and comment edits keep
    // the hash; temp numbering is deterministic per function body.
    H.str(ir::printIrFunction(*F));
    FnHash[I] = H.get();
  }
  // SCC ids ascend bottom-up, so every callee SCC's hash is final before
  // its callers combine it.
  SccHash.resize(CG.numSccs());
  for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc) {
    Fnv1a H;
    for (unsigned FnIdx : CG.sccMembers(Scc))
      H.u64(FnHash[FnIdx]);
    for (unsigned Callee : CG.sccCallees(Scc))
      H.u64(SccHash[Callee]);
    SccHash[Scc] = H.get();
  }
}

const std::vector<unsigned> &
ModuleFingerprint::closureFunctions(unsigned Scc) {
  auto It = ClosureMemo.find(Scc);
  if (It != ClosureMemo.end())
    return It->second;
  std::vector<char> SeenScc(CG.numSccs(), 0);
  std::vector<unsigned> Work{Scc};
  SeenScc[Scc] = 1;
  std::vector<unsigned> Fns;
  while (!Work.empty()) {
    unsigned Cur = Work.back();
    Work.pop_back();
    for (unsigned FnIdx : CG.sccMembers(Cur))
      Fns.push_back(FnIdx);
    for (unsigned Callee : CG.sccCallees(Cur)) {
      if (!SeenScc[Callee]) {
        SeenScc[Callee] = 1;
        Work.push_back(Callee);
      }
    }
  }
  std::sort(Fns.begin(), Fns.end());
  return ClosureMemo.emplace(Scc, std::move(Fns)).first->second;
}

uint64_t ModuleFingerprint::regionSignature(unsigned Scc) {
  auto It = RegionSigMemo.find(Scc);
  if (It != RegionSigMemo.end())
    return It->second;

  const std::vector<unsigned> &Fns = closureFunctions(Scc);
  Fnv1a H;
  std::set<RegionId> Chased;
  // Emit a region id and everything reachable from it by deref; the
  // deref chain stops at the first region already chased (its own chain
  // was emitted when it was first seen) or at InvalidRegion.
  auto Chase = [&](RegionId R) {
    while (true) {
      H.u32(R == InvalidRegion ? ~0u : R);
      if (R == InvalidRegion || !Chased.insert(R).second)
        return;
      R = PT.derefRegion(R);
    }
  };

  for (unsigned FnIdx : Fns) {
    const ir::IrFunction *F = CG.function(FnIdx);
    for (const auto &V : F->variables())
      Chase(PT.regionOfVarCell(V.get()));
  }
  // Globals are visible to every function; closure bodies may reach any
  // of them.
  for (const auto &G : M.globals())
    Chase(PT.regionOfVarCell(G.get()));
  // Allocation sites lexically inside closure functions.
  std::set<std::string> ClosureNames;
  for (unsigned FnIdx : Fns)
    ClosureNames.insert(CG.function(FnIdx)->name());
  for (const ir::AllocSite &Site : M.allocSites())
    if (ClosureNames.count(Site.InFunction))
      Chase(PT.regionOfAllocSite(Site.Id));

  uint64_t Sig = H.get();
  RegionSigMemo.emplace(Scc, Sig);
  return Sig;
}

uint64_t ModuleFingerprint::sectionKey(const ir::IrFunction *F,
                                       unsigned Ordinal, unsigned K) {
  unsigned Scc = CG.sccOfFunction(F);
  Fnv1a H;
  H.u64(KeyFormatVersion);
  H.u32(K);
  H.u64(functionHashOf(F));
  H.u32(Ordinal);
  H.u64(SccHash[Scc]);
  H.u64(regionSignature(Scc));
  return H.get();
}
