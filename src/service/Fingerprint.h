//===--- Fingerprint.h - Content hashes for incremental analysis -*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the content-hash components of a summary-cache key for one
/// compiled module:
///
///  - functionHash: FNV-1a over the function's normalized IR text (the
///    same canonical form the golden tests compare), so formatting-only
///    source edits hash identically and any semantic edit does not.
///  - sccClosureHash: per condensation SCC, the hash of every member's
///    functionHash combined with the closure hashes of all callee SCCs —
///    i.e. a digest of the normalized bodies of *every function the SCC
///    can transitively call*. A section's inferred locks depend on
///    exactly that set of bodies.
///  - regionSignature: per SCC, a digest of the points-to environment
///    the closure observes: the raw region id of every variable cell in
///    closure functions and of every global and closure allocation site,
///    plus the deref-edge structure between those regions. Raw ids (not
///    an isomorphism-canonical renaming) are deliberate: the rendered
///    lock text embeds region numbers ("region#1:rw"), so a cache hit is
///    only byte-identical to a cold run when the numbering also matches.
///    Renumbering caused by unrelated edits therefore (conservatively)
///    misses instead of serving stale text.
///
/// sectionKey() combines these with the section's lexical ordinal in its
/// function and the analysis k into the final 64-bit cache key.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_FINGERPRINT_H
#define LOCKIN_SERVICE_FINGERPRINT_H

#include "analysis/CallGraph.h"
#include "ir/Ir.h"
#include "pointsto/Steensgaard.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace service {

class ModuleFingerprint {
public:
  /// Function hashes and SCC closure hashes are computed eagerly (one
  /// pass over the module); region signatures lazily per queried SCC.
  ModuleFingerprint(const ir::IrModule &M, const analysis::CallGraph &CG,
                    const PointsToAnalysis &PT);

  uint64_t functionHash(unsigned FnIdx) const { return FnHash[FnIdx]; }
  uint64_t functionHashOf(const ir::IrFunction *F) const {
    return FnHash[CG.indexOf(F)];
  }
  uint64_t sccClosureHash(unsigned Scc) const { return SccHash[Scc]; }

  /// Memoized; see file comment for what the signature covers.
  uint64_t regionSignature(unsigned Scc);

  /// The summary-cache key for the \p Ordinal-th atomic section of \p F
  /// at expression-lock depth \p K.
  uint64_t sectionKey(const ir::IrFunction *F, unsigned Ordinal,
                      unsigned K);

private:
  /// Function indices transitively callable from \p Scc (including its
  /// own members), ascending; memoized.
  const std::vector<unsigned> &closureFunctions(unsigned Scc);

  const ir::IrModule &M;
  const analysis::CallGraph &CG;
  const PointsToAnalysis &PT;

  std::vector<uint64_t> FnHash;  // by CG function index
  std::vector<uint64_t> SccHash; // by SCC id
  std::unordered_map<unsigned, std::vector<unsigned>> ClosureMemo;
  std::unordered_map<unsigned, uint64_t> RegionSigMemo;
};

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_FINGERPRINT_H
