//===--- Hash.h - Stable content hashing for cache keys ---------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FNV-1a 64-bit hashing used for the incremental summary cache keys.
/// The hashes are stable across processes and runs (they depend only on
/// the bytes fed in), which is what makes content-addressed cache keys
/// meaningful for a long-lived daemon.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_HASH_H
#define LOCKIN_SERVICE_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lockin {
namespace service {

/// Incremental FNV-1a 64-bit hasher.
class Fnv1a {
public:
  static constexpr uint64_t Offset = 1469598103934665603ull;
  static constexpr uint64_t Prime = 1099511628211ull;

  void bytes(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    uint64_t Hash = H;
    for (size_t I = 0; I < Len; ++I) {
      Hash ^= P[I];
      Hash *= Prime;
    }
    H = Hash;
  }
  void str(std::string_view S) {
    // Length-prefix so ("ab","c") and ("a","bc") hash differently.
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void u64(uint64_t V) { bytes(&V, sizeof(V)); }
  void u32(uint32_t V) { bytes(&V, sizeof(V)); }

  uint64_t get() const { return H; }

private:
  uint64_t H = Offset;
};

inline uint64_t hashString(std::string_view S) {
  Fnv1a H;
  H.bytes(S.data(), S.size());
  return H.get();
}

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_HASH_H
