//===--- Incremental.cpp - Cache-backed incremental analysis --------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/Incremental.h"

#include "check/Check.h"
#include "driver/Compiler.h"
#include "ir/IrPrinter.h"
#include "service/Fingerprint.h"
#include "service/Hash.h"

#include <algorithm>
#include <cstdio>

using namespace lockin;
using namespace lockin::service;

namespace {

/// Re-analysis batch size: small enough that deadline checks between
/// batches give real cancellation granularity, large enough that the
/// per-run() scheduling overhead (reachable-closure scan) stays noise.
constexpr size_t ReanalyzeBatch = 16;

bool pastDeadline(const AnalyzeParams &P) {
  return P.Deadline != std::chrono::steady_clock::time_point{} &&
         std::chrono::steady_clock::now() > P.Deadline;
}

AnalyzeOutcome timedOut() {
  AnalyzeOutcome Out;
  Out.TimedOut = true;
  Out.Error = "timeout";
  return Out;
}

/// One section's identity within this compilation.
struct SectionInfo {
  const ir::IrFunction *Function = nullptr;
  uint64_t Key = 0;
};

} // namespace

AnalyzeOutcome IncrementalAnalyzer::analyze(const std::string &Unit,
                                            const std::string &Source,
                                            const AnalyzeParams &Params) {
  obs::RequestContext *Tel = obs::kEnabled ? Params.Telemetry : nullptr;

  // Front half of the pipeline: always runs (content hashing needs the
  // normalized IR, the region signature needs points-to).
  std::unique_ptr<Compilation> C;
  {
    obs::PhaseScope Scope(Tel, obs::ReqPhase::Parse);
    CompileOptions Options;
    Options.K = Params.K;
    Options.Jobs = Params.Jobs;
    Options.InferLocks = false;
    C = compile(Source, Options);
  }
  if (!C->ok()) {
    AnalyzeOutcome Out;
    Out.Error = C->diagnostics().str();
    if (Out.Error.empty())
      Out.Error = "compilation failed";
    return Out;
  }
  if (pastDeadline(Params))
    return timedOut();

  const ir::IrModule &Module = C->module();
  const analysis::CallGraph &CG = C->callGraph();
  if (Tel)
    Tel->begin(obs::ReqPhase::Fingerprint);
  ModuleFingerprint FP(Module, CG, C->pointsTo());

  uint32_t NumSections = Module.numAtomicSections();
  std::vector<SectionInfo> Sections(NumSections);
  for (const auto &F : Module.functions()) {
    const auto &Atomics = F->atomicSections();
    for (unsigned Ord = 0; Ord < Atomics.size(); ++Ord) {
      SectionInfo &Info = Sections[Atomics[Ord]->sectionId()];
      Info.Function = F.get();
      Info.Key = FP.sectionKey(F.get(), Ord, Params.K);
    }
  }

  AnalyzeOutcome Out;
  Out.Sections = NumSections;

  // Dirty-SCC accounting against the unit's previous snapshot.
  {
    std::lock_guard<std::mutex> Lock(SnapshotsMu);
    auto It = Snapshots.find(Unit);
    if (It != Snapshots.end()) {
      Out.HadSnapshot = true;
      std::vector<unsigned> Seeds;
      for (unsigned I = 0; I < CG.numFunctions(); ++I) {
        const ir::IrFunction *F = CG.function(I);
        auto Old = It->second.FunctionHashes.find(F->name());
        if (Old == It->second.FunctionHashes.end() ||
            Old->second != FP.functionHash(I)) {
          ++Out.DirtyFunctions;
          Seeds.push_back(CG.sccOf(I));
        }
      }
      std::vector<char> Cone = CG.upwardClosure(Seeds);
      for (char InCone : Cone)
        if (InCone)
          ++Out.DirtySccs;
      for (uint32_t Id = 0; Id < NumSections; ++Id)
        if (Cone[CG.sccOfFunction(Sections[Id].Function)])
          Out.DirtyConeSections.push_back(Id);
    }
  }
  // Check-report cache: the report depends on every reachable body, the
  // region numbering, k, and the elision flag — exactly what the module
  // fingerprint components cover. An unchanged module serves the cached
  // JSON without re-running inference or the checker.
  uint64_t CheckFp = 0;
  if (Params.Check) {
    Fnv1a H;
    for (unsigned I = 0; I < CG.numFunctions(); ++I)
      H.u64(FP.functionHash(I));
    for (unsigned Scc = 0; Scc < CG.numSccs(); ++Scc)
      H.u64(FP.regionSignature(Scc));
    H.u32(Params.K);
    H.u32(Params.ElideNeverParallel ? 1 : 0);
    CheckFp = H.get();
    if (!Params.Force) {
      std::lock_guard<std::mutex> Lock(CheckMu);
      auto It = CheckEntries.find(Unit);
      if (It != CheckEntries.end() && It->second.Fingerprint == CheckFp) {
        Out.CheckCacheHit = true;
        Out.CheckJson = It->second.Json;
        Out.CheckFindings = It->second.Findings;
        Out.CheckMhpPairs = It->second.MhpPairs;
        Out.CheckElided = It->second.Elided;
      }
    }
  }
  bool NeedChecker = Params.Check && !Out.CheckCacheHit;
  if (Tel)
    Tel->end(obs::ReqPhase::Fingerprint);

  std::vector<std::shared_ptr<const std::string>> LocksText(NumSections);
  std::vector<LockCensus> Censuses(NumSections);
  {
    obs::PhaseScope Scope(Tel, obs::ReqPhase::Analyze);

    // Cache pass: a run request needs live LockSets for the interpreter,
    // and an uncached check needs the live InferenceResult — both take
    // the uncached path (and refresh the cache).
    bool BypassLookups = Params.Force || Params.Run || NeedChecker;
    std::vector<uint32_t> Misses;
    for (uint32_t Id = 0; Id < NumSections; ++Id) {
      SectionSummary Hit;
      if (!BypassLookups && Cache.lookup(Sections[Id].Key, Hit)) {
        LocksText[Id] = std::move(Hit.LocksText);
        Censuses[Id] = Hit.Census;
        ++Out.CacheHits;
      } else {
        Misses.push_back(Id);
        ++Out.CacheMisses;
      }
    }

    InferenceOptions InferOpts;
    InferOpts.K = Params.K;
    InferOpts.Jobs = Params.Jobs;
    InferOpts.ElideNeverParallel = Params.ElideNeverParallel;
    LockInference Inference(Module, C->pointsTo(), CG, InferOpts);

    auto Harvest = [&](const InferenceResult &Result,
                       const std::vector<uint32_t> &Ids) {
      for (uint32_t Id : Ids) {
        const LockSet &Locks = Result.sectionLocks(Id);
        SectionSummary Summary;
        Summary.setText(Locks.str());
        Summary.Census = censusOf(Locks);
        LocksText[Id] = Summary.LocksText;
        Censuses[Id] = Summary.Census;
        Cache.insert(Sections[Id].Key, std::move(Summary));
        Out.Reanalyzed.push_back(Id);
      }
    };

    if (Params.Run || NeedChecker) {
      // Full inference in one shot, then check and/or execute.
      if (pastDeadline(Params))
        return timedOut();
      InferenceResult Result = Inference.run();
      std::vector<uint32_t> All(NumSections);
      for (uint32_t Id = 0; Id < NumSections; ++Id)
        All[Id] = Id;
      Harvest(Result, All);

      if (NeedChecker) {
        check::CheckReport Report = check::Checker::runAll(
            Module, CG, C->pointsTo(), Result, Params.K);
        Out.Checked = true;
        Out.CheckJson = Report.json(Unit);
        Out.CheckFindings = Report.Stats.Findings;
        Out.CheckMhpPairs = Report.Stats.MhpPairs;
        Out.CheckElided = Report.Stats.ElidedSections;
        CheckEntry Entry{CheckFp, Out.CheckJson, Out.CheckFindings,
                         Out.CheckMhpPairs, Out.CheckElided};
        std::lock_guard<std::mutex> Lock(CheckMu);
        CheckEntries[Unit] = std::move(Entry);
      }

      if (Params.Run) {
        InterpOptions RunOpts;
        RunOpts.Mode = Params.RunMode;
        RunOpts.InjectYields = Params.InjectYields;
        RunOpts.YieldSeed = Params.YieldSeed;
        InterpResult R =
            interpret(Module, C->pointsTo(), &Result, RunOpts, "main");
        Out.RanProgram = true;
        Out.RunOk = R.Ok;
        Out.RunError = R.Error;
        Out.MainResult = R.MainResult;
        Out.TotalSteps = R.TotalSteps;
      }
    } else {
      // Re-analyze only the misses, in batches with deadline checks. The
      // LockInference instance is reused so summaries computed for one
      // batch warm the next.
      for (size_t Begin = 0; Begin < Misses.size();
           Begin += ReanalyzeBatch) {
        if (pastDeadline(Params))
          return timedOut();
        size_t End = std::min(Misses.size(), Begin + ReanalyzeBatch);
        std::vector<uint32_t> Batch(Misses.begin() + Begin,
                                    Misses.begin() + End);
        InferenceResult Result = Inference.run(Batch);
        Harvest(Result, Batch);
      }
    }
  }

  obs::PhaseScope RenderScope(Tel, obs::ReqPhase::Render);

  // Assemble the report — the exact shape of Compilation::report().
  Out.Report = ir::printIrModule(Module, [&](uint32_t SectionId) {
    const auto &Text = LocksText[SectionId];
    return Text ? *Text : std::string();
  });
  char Line[64];
  LockCensus Census;
  for (uint32_t Id = 0; Id < NumSections; ++Id) {
    Out.Report += "; section #";
    std::snprintf(Line, sizeof(Line), "%u", Id);
    Out.Report += Line;
    Out.Report += " in ";
    Out.Report += Sections[Id].Function
                      ? Sections[Id].Function->name()
                      : std::string("?");
    Out.Report += ": ";
    if (LocksText[Id])
      Out.Report += *LocksText[Id];
    Out.Report += "\n";
    Census += Censuses[Id];
  }
  std::snprintf(Line, sizeof(Line),
                "fine-ro=%u fine-rw=%u coarse-ro=%u coarse-rw=%u\n",
                Census.FineRO, Census.FineRW, Census.CoarseRO,
                Census.CoarseRW);
  Out.Report += "; locks: ";
  Out.Report += Line;

  // Publish the new snapshot.
  {
    Snapshot Snap;
    for (unsigned I = 0; I < CG.numFunctions(); ++I)
      Snap.FunctionHashes[CG.function(I)->name()] = FP.functionHash(I);
    Snap.SectionKeys.reserve(NumSections);
    for (const SectionInfo &Info : Sections)
      Snap.SectionKeys.push_back(Info.Key);
    std::lock_guard<std::mutex> Lock(SnapshotsMu);
    Snapshots[Unit] = std::move(Snap);
  }

  Out.Ok = true;
  return Out;
}

bool IncrementalAnalyzer::invalidateUnit(const std::string &Unit) {
  {
    std::lock_guard<std::mutex> Lock(SnapshotsMu);
    auto It = Snapshots.find(Unit);
    if (It == Snapshots.end())
      return false;
    for (uint64_t Key : It->second.SectionKeys)
      Cache.erase(Key);
    Snapshots.erase(It);
  }
  std::lock_guard<std::mutex> Lock(CheckMu);
  CheckEntries.erase(Unit);
  return true;
}

void IncrementalAnalyzer::invalidateAll() {
  {
    std::lock_guard<std::mutex> Lock(SnapshotsMu);
    Snapshots.clear();
  }
  {
    std::lock_guard<std::mutex> Lock(CheckMu);
    CheckEntries.clear();
  }
  Cache.clear();
}

size_t IncrementalAnalyzer::numUnits() const {
  std::lock_guard<std::mutex> Lock(SnapshotsMu);
  return Snapshots.size();
}
