//===--- Incremental.h - Cache-backed incremental analysis ------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's analysis engine: each `analyze` request re-runs the
/// cheap front half of the pipeline (parse → sema → lower → call graph →
/// points-to), fingerprints the module (service/Fingerprint.h), and then
/// serves every atomic section whose content-hash key is resident in the
/// SummaryCache without re-running the lock inference. Only cache misses
/// are re-analyzed, batched through InferenceOptions::OnlySections so one
/// summary store is shared across the batch.
///
/// Per-unit snapshots (function-name → body hash from the previous
/// analyze of that unit) drive the dirty-SCC accounting: a changed
/// function seeds its SCC, CallGraph::upwardClosure expands to every
/// caller SCC, and the sections inside that cone are exactly the expected
/// re-analysis set — surfaced in the outcome so tests and clients can
/// verify the invalidation rule.
///
/// Everything here is re-entrant; one analyzer may serve concurrent
/// requests from the daemon's worker pool.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_INCREMENTAL_H
#define LOCKIN_SERVICE_INCREMENTAL_H

#include "infer/SummaryCache.h"
#include "interp/Interp.h"
#include "obs/RequestTelemetry.h"

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace lockin {
namespace service {

struct AnalyzeParams {
  unsigned K = 3;
  unsigned Jobs = 1;
  /// Skip cache lookups (still refreshes entries) — a client-forced cold
  /// run.
  bool Force = false;
  /// Execute the transformed program after analysis. Runs force a full
  /// (uncached) inference: the interpreter needs live LockSets, which
  /// cache entries (rendered text) cannot provide.
  bool Run = false;
  AtomicMode RunMode = AtomicMode::Inferred;
  /// Run the concurrency checker and return its JSON report. Check runs
  /// need the live InferenceResult, so a cache-served analysis cannot
  /// satisfy them — but the rendered report itself is cached per unit,
  /// keyed by the module fingerprint: an unchanged module serves the
  /// previous check verbatim (and the summary path stays warm).
  bool Check = false;
  /// InferenceOptions::ElideNeverParallel for check/run requests.
  bool ElideNeverParallel = false;
  /// Deterministic scheduling knobs forwarded to the checked interpreter
  /// (mirrors the tool's --inject-yields / --yield-seed).
  bool InjectYields = false;
  uint64_t YieldSeed = 1;
  /// Cooperative cancellation: checked between pipeline phases and
  /// between re-analysis batches. Zero time_point = no deadline.
  std::chrono::steady_clock::time_point Deadline{};
  /// Request-scoped telemetry carrier (null = untelemetered). The
  /// analyzer brackets its pipeline stages (parse, fingerprint, analyze,
  /// render) with PhaseScopes on this context; the server rolls the
  /// spans up when the request completes. Ignored in LOCKIN_OBS=OFF
  /// builds — the bracketing sites compile out.
  obs::RequestContext *Telemetry = nullptr;
};

struct AnalyzeOutcome {
  bool Ok = false;
  bool TimedOut = false;
  std::string Error;

  /// Byte-identical to Compilation::report() of a cold run.
  std::string Report;

  unsigned Sections = 0;
  unsigned CacheHits = 0;
  unsigned CacheMisses = 0;
  /// Section ids actually re-analyzed this request (== misses).
  std::vector<uint32_t> Reanalyzed;

  /// Dirty-SCC accounting vs the unit's previous snapshot.
  bool HadSnapshot = false;
  unsigned DirtyFunctions = 0;
  unsigned DirtySccs = 0;
  /// Sections whose SCC lies in the dirty cone — the predicted
  /// re-analysis set under the invalidation rule.
  std::vector<uint32_t> DirtyConeSections;

  /// Checker results when AnalyzeParams::Check was set.
  bool Checked = false;        ///< the checker actually ran this request
  bool CheckCacheHit = false;  ///< served from the per-unit check cache
  std::string CheckJson;       ///< CheckReport::json(unit)
  unsigned CheckFindings = 0;
  uint64_t CheckMhpPairs = 0;
  unsigned CheckElided = 0;

  /// Interpreter results when AnalyzeParams::Run was set.
  bool RanProgram = false;
  bool RunOk = false;
  std::string RunError;
  int64_t MainResult = 0;
  uint64_t TotalSteps = 0;
};

/// See file comment. Owns the per-unit snapshots; shares (does not own)
/// the summary cache.
class IncrementalAnalyzer {
public:
  explicit IncrementalAnalyzer(SummaryCache &Cache) : Cache(Cache) {}

  AnalyzeOutcome analyze(const std::string &Unit, const std::string &Source,
                         const AnalyzeParams &Params);

  /// Drops the unit's snapshot and evicts its cached section summaries.
  /// Returns true if the unit was known.
  bool invalidateUnit(const std::string &Unit);

  /// Drops every snapshot and the whole cache.
  void invalidateAll();

  size_t numUnits() const;
  SummaryCache &cache() { return Cache; }

private:
  struct Snapshot {
    std::unordered_map<std::string, uint64_t> FunctionHashes;
    std::vector<uint64_t> SectionKeys;
  };

  /// Cached check report for one unit: valid while the module fingerprint
  /// (every function body + every SCC's region signature + k + the
  /// elision flag) is unchanged.
  struct CheckEntry {
    uint64_t Fingerprint = 0;
    std::string Json;
    unsigned Findings = 0;
    uint64_t MhpPairs = 0;
    unsigned Elided = 0;
  };

  SummaryCache &Cache;
  // Separate mutex domains: snapshot publication, check-report caching,
  // and the (itself sharded) summary cache never serialize each other —
  // a check-heavy tenant cannot block another tenant's snapshot reads.
  mutable std::mutex SnapshotsMu; // guards Snapshots only
  mutable std::mutex CheckMu;     // guards CheckEntries only
  std::unordered_map<std::string, Snapshot> Snapshots;
  std::unordered_map<std::string, CheckEntry> CheckEntries;
};

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_INCREMENTAL_H
