//===--- Json.cpp - Minimal JSON value, parser, and writer ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace lockin;
using namespace lockin::service;

void lockin::service::appendJsonString(std::string &Out,
                                       std::string_view S) {
  Out += '"';
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  Out += '"';
}

void Json::write(std::string &Out) const {
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::Int: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
    Out += Buf;
    break;
  }
  case Kind::Double: {
    if (!std::isfinite(D)) {
      Out += "null"; // JSON has no Inf/NaN
      break;
    }
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case Kind::String:
    appendJsonString(Out, S);
    break;
  case Kind::Array: {
    Out += '[';
    for (size_t Idx = 0; Idx < Items.size(); ++Idx) {
      if (Idx)
        Out += ',';
      Items[Idx].write(Out);
    }
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    for (size_t Idx = 0; Idx < Members.size(); ++Idx) {
      if (Idx)
        Out += ',';
      appendJsonString(Out, Members[Idx].first);
      Out += ':';
      Members[Idx].second.write(Out);
    }
    Out += '}';
    break;
  }
  }
}

namespace {

constexpr unsigned MaxDepth = 64;

class Parser {
public:
  Parser(std::string_view Text, std::string &Error)
      : Cur(Text.data()), End(Text.data() + Text.size()), Error(Error) {}

  bool run(Json &Out) {
    skipSpace();
    if (!parseValue(Out, 0))
      return false;
    skipSpace();
    if (Cur != End)
      return fail("trailing characters after document");
    return true;
  }

private:
  bool fail(const char *Msg) {
    Error = Msg;
    return false;
  }

  void skipSpace() {
    while (Cur != End &&
           (*Cur == ' ' || *Cur == '\t' || *Cur == '\n' || *Cur == '\r'))
      ++Cur;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (static_cast<size_t>(End - Cur) < Len ||
        std::strncmp(Cur, Word, Len) != 0)
      return false;
    Cur += Len;
    return true;
  }

  bool parseValue(Json &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Cur == End)
      return fail("unexpected end of input");
    switch (*Cur) {
    case 'n':
      if (!literal("null"))
        return fail("bad literal");
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("bad literal");
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("bad literal");
      Out = Json::boolean(false);
      return true;
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = Json::string(std::move(S));
      return true;
    }
    case '[': {
      ++Cur;
      Out = Json::array();
      skipSpace();
      if (Cur != End && *Cur == ']') {
        ++Cur;
        return true;
      }
      while (true) {
        Json Item;
        skipSpace();
        if (!parseValue(Item, Depth + 1))
          return false;
        Out.push(std::move(Item));
        skipSpace();
        if (Cur == End)
          return fail("unterminated array");
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == ']') {
          ++Cur;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    case '{': {
      ++Cur;
      Out = Json::object();
      skipSpace();
      if (Cur != End && *Cur == '}') {
        ++Cur;
        return true;
      }
      while (true) {
        skipSpace();
        if (Cur == End || *Cur != '"')
          return fail("expected object key");
        std::string Key;
        if (!parseString(Key))
          return false;
        skipSpace();
        if (Cur == End || *Cur != ':')
          return fail("expected ':' after object key");
        ++Cur;
        skipSpace();
        Json Value;
        if (!parseValue(Value, Depth + 1))
          return false;
        Out.set(std::move(Key), std::move(Value));
        skipSpace();
        if (Cur == End)
          return fail("unterminated object");
        if (*Cur == ',') {
          ++Cur;
          continue;
        }
        if (*Cur == '}') {
          ++Cur;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    default:
      return parseNumber(Out);
    }
  }

  bool parseHex4(unsigned &Out) {
    if (End - Cur < 4)
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = *Cur++;
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("bad hex digit in \\u escape");
    }
    return true;
  }

  void appendUtf8(std::string &S, unsigned Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xC0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      S += static_cast<char>(0xE0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (Code >> 18));
      S += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseString(std::string &S) {
    ++Cur; // opening quote
    while (true) {
      if (Cur == End)
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(*Cur);
      if (C == '"') {
        ++Cur;
        return true;
      }
      if (C == '\\') {
        ++Cur;
        if (Cur == End)
          return fail("unterminated escape");
        char E = *Cur++;
        switch (E) {
        case '"':
          S += '"';
          break;
        case '\\':
          S += '\\';
          break;
        case '/':
          S += '/';
          break;
        case 'n':
          S += '\n';
          break;
        case 'r':
          S += '\r';
          break;
        case 't':
          S += '\t';
          break;
        case 'b':
          S += '\b';
          break;
        case 'f':
          S += '\f';
          break;
        case 'u': {
          unsigned Code;
          if (!parseHex4(Code))
            return false;
          // Surrogate pair: combine; a lone surrogate becomes U+FFFD.
          if (Code >= 0xD800 && Code <= 0xDBFF) {
            if (End - Cur >= 6 && Cur[0] == '\\' && Cur[1] == 'u') {
              Cur += 2;
              unsigned Low;
              if (!parseHex4(Low))
                return false;
              if (Low >= 0xDC00 && Low <= 0xDFFF)
                Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
              else
                Code = 0xFFFD;
            } else {
              Code = 0xFFFD;
            }
          } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
            Code = 0xFFFD;
          }
          appendUtf8(S, Code);
          break;
        }
        default:
          return fail("bad escape character");
        }
        continue;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      S += static_cast<char>(C);
      ++Cur;
    }
  }

  bool parseNumber(Json &Out) {
    const char *Start = Cur;
    if (Cur != End && *Cur == '-')
      ++Cur;
    bool SawDigit = false;
    while (Cur != End && *Cur >= '0' && *Cur <= '9') {
      ++Cur;
      SawDigit = true;
    }
    bool IsInt = true;
    if (Cur != End && *Cur == '.') {
      IsInt = false;
      ++Cur;
      while (Cur != End && *Cur >= '0' && *Cur <= '9')
        ++Cur;
    }
    if (Cur != End && (*Cur == 'e' || *Cur == 'E')) {
      IsInt = false;
      ++Cur;
      if (Cur != End && (*Cur == '+' || *Cur == '-'))
        ++Cur;
      while (Cur != End && *Cur >= '0' && *Cur <= '9')
        ++Cur;
    }
    if (!SawDigit)
      return fail("bad number");
    std::string Text(Start, Cur);
    if (IsInt) {
      errno = 0;
      char *NumEnd = nullptr;
      long long V = std::strtoll(Text.c_str(), &NumEnd, 10);
      if (errno == 0 && NumEnd && *NumEnd == '\0') {
        Out = Json::integer(V);
        return true;
      }
      // Overflowed int64: fall through to double.
    }
    Out = Json::number(std::strtod(Text.c_str(), nullptr));
    return true;
  }

  const char *Cur;
  const char *End;
  std::string &Error;
};

} // namespace

bool Json::parse(std::string_view Text, Json &Out, std::string &Error) {
  Parser P(Text, Error);
  return P.run(Out);
}
