//===--- Json.h - Minimal JSON value, parser, and writer --------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JSON dialect of the analysis service protocol: a small value tree,
/// a strict recursive-descent parser (depth-limited, full escape handling
/// including surrogate pairs), and a compact writer. Objects preserve
/// insertion order, so serialized responses are deterministic.
///
/// This intentionally stays tiny — the service exchanges flat request and
/// response objects, not arbitrary documents. Numbers are kept as int64
/// when they parse exactly (seeds and section ids round-trip losslessly)
/// and as double otherwise.
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_JSON_H
#define LOCKIN_SERVICE_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lockin {
namespace service {

class Json {
public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : K(Kind::Null) {}
  static Json null() { return Json(); }
  static Json boolean(bool B) {
    Json J;
    J.K = Kind::Bool;
    J.B = B;
    return J;
  }
  static Json integer(int64_t I) {
    Json J;
    J.K = Kind::Int;
    J.I = I;
    return J;
  }
  static Json number(double D) {
    Json J;
    J.K = Kind::Double;
    J.D = D;
    return J;
  }
  static Json string(std::string S) {
    Json J;
    J.K = Kind::String;
    J.S = std::move(S);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Int || K == Kind::Double; }
  bool isBool() const { return K == Kind::Bool; }

  bool asBool(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
  int64_t asInt(int64_t Default = 0) const {
    if (K == Kind::Int)
      return I;
    if (K == Kind::Double)
      return static_cast<int64_t>(D);
    return Default;
  }
  uint64_t asUint(uint64_t Default = 0) const {
    if (K == Kind::Int)
      return I < 0 ? Default : static_cast<uint64_t>(I);
    if (K == Kind::Double)
      return D < 0 ? Default : static_cast<uint64_t>(D);
    return Default;
  }
  double asDouble(double Default = 0) const {
    if (K == Kind::Double)
      return D;
    if (K == Kind::Int)
      return static_cast<double>(I);
    return Default;
  }
  const std::string &asString() const { return S; }

  // Array access.
  const std::vector<Json> &items() const { return Items; }
  Json &push(Json V) {
    Items.push_back(std::move(V));
    return Items.back();
  }

  // Object access.
  const std::vector<std::pair<std::string, Json>> &members() const {
    return Members;
  }
  /// Null if absent.
  const Json *get(std::string_view Key) const {
    for (const auto &[Name, Value] : Members)
      if (Name == Key)
        return &Value;
    return nullptr;
  }
  Json &set(std::string Key, Json V) {
    for (auto &[Name, Value] : Members)
      if (Name == Key) {
        Value = std::move(V);
        return Value;
      }
    Members.emplace_back(std::move(Key), std::move(V));
    return Members.back().second;
  }

  /// Convenience typed getters for flat request objects.
  std::string getString(std::string_view Key,
                        std::string Default = {}) const {
    const Json *V = get(Key);
    return V && V->isString() ? V->asString() : Default;
  }
  int64_t getInt(std::string_view Key, int64_t Default = 0) const {
    const Json *V = get(Key);
    return V && V->isNumber() ? V->asInt(Default) : Default;
  }
  uint64_t getUint(std::string_view Key, uint64_t Default = 0) const {
    const Json *V = get(Key);
    return V && V->isNumber() ? V->asUint(Default) : Default;
  }
  bool getBool(std::string_view Key, bool Default = false) const {
    const Json *V = get(Key);
    return V && V->isBool() ? V->asBool(Default) : Default;
  }

  /// Compact serialization (no whitespace); appends to \p Out.
  void write(std::string &Out) const;
  std::string str() const {
    std::string Out;
    write(Out);
    return Out;
  }

  /// Strict parse of a full document; trailing non-space input is an
  /// error. On failure returns false and fills \p Error.
  static bool parse(std::string_view Text, Json &Out, std::string &Error);

private:
  Kind K;
  bool B = false;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<Json> Items;
  std::vector<std::pair<std::string, Json>> Members;
};

/// Escapes \p S as a JSON string literal (with quotes) into \p Out.
void appendJsonString(std::string &Out, std::string_view S);

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_JSON_H
