//===--- Protocol.cpp - Length-prefixed JSON wire protocol ----------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace lockin;
using namespace lockin::service;

namespace {

/// Reads exactly \p Len bytes. Returns 1 on success, 0 on EOF before the
/// first byte, -1 on error or EOF mid-buffer.
int readExact(int Fd, char *Buf, size_t Len, std::string &Err) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::read(Fd, Buf + Done, Len - Done);
    if (N > 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (N == 0) {
      if (Done == 0)
        return 0;
      Err = "unexpected EOF mid-frame";
      return -1;
    }
    if (errno == EINTR)
      continue;
    Err = std::strerror(errno);
    return -1;
  }
  return 1;
}

bool writeExact(int Fd, const char *Buf, size_t Len, std::string &Err) {
  size_t Done = 0;
  while (Done < Len) {
    ssize_t N = ::write(Fd, Buf + Done, Len - Done);
    if (N >= 0) {
      Done += static_cast<size_t>(N);
      continue;
    }
    if (errno == EINTR)
      continue;
    Err = std::strerror(errno);
    return false;
  }
  return true;
}

} // namespace

bool FrameAssembler::feed(const char *Data, size_t N,
                          std::vector<std::string> &Frames,
                          std::string &Err) {
  size_t Pos = 0;
  while (Pos < N) {
    if (!InBody) {
      size_t Take = std::min<size_t>(4 - HeaderGot, N - Pos);
      std::memcpy(Header + HeaderGot, Data + Pos, Take);
      HeaderGot += Take;
      Pos += Take;
      if (HeaderGot < 4)
        return true;
      Need = (uint32_t(Header[0]) << 24) | (uint32_t(Header[1]) << 16) |
             (uint32_t(Header[2]) << 8) | uint32_t(Header[3]);
      // Reject before reserving a byte of payload — a hostile header can
      // never make the daemon allocate.
      if (Need > MaxFrameBytes) {
        Err = "frame too large (" + std::to_string(Need) + " bytes)";
        return false;
      }
      HeaderGot = 0;
      InBody = true;
      Body.clear();
    }
    size_t Take = std::min<size_t>(Need - Body.size(), N - Pos);
    Body.append(Data + Pos, Take);
    Pos += Take;
    if (Body.size() == Need) {
      Frames.push_back(std::move(Body));
      Body.clear();
      Need = 0;
      InBody = false;
    } else {
      return true; // body incomplete; wait for more bytes
    }
  }
  return true;
}

void lockin::service::appendFrame(std::string &Out,
                                  std::string_view Payload) {
  uint32_t Len = static_cast<uint32_t>(Payload.size());
  Out.push_back(static_cast<char>((Len >> 24) & 0xff));
  Out.push_back(static_cast<char>((Len >> 16) & 0xff));
  Out.push_back(static_cast<char>((Len >> 8) & 0xff));
  Out.push_back(static_cast<char>(Len & 0xff));
  Out.append(Payload);
}

int lockin::service::readFrame(int Fd, std::string &Out, std::string &Err) {
  unsigned char Header[4];
  int Rc = readExact(Fd, reinterpret_cast<char *>(Header), 4, Err);
  if (Rc <= 0)
    return Rc;
  uint32_t Len = (uint32_t(Header[0]) << 24) | (uint32_t(Header[1]) << 16) |
                 (uint32_t(Header[2]) << 8) | uint32_t(Header[3]);
  if (Len > MaxFrameBytes) {
    Err = "frame too large (" + std::to_string(Len) + " bytes)";
    return -1;
  }
  Out.resize(Len);
  if (Len == 0)
    return 1;
  Rc = readExact(Fd, Out.data(), Len, Err);
  if (Rc == 0) {
    Err = "unexpected EOF mid-frame";
    return -1;
  }
  return Rc;
}

bool lockin::service::writeFrame(int Fd, std::string_view Payload,
                                 std::string &Err) {
  if (Payload.size() > MaxFrameBytes) {
    Err = "frame too large";
    return false;
  }
  // One buffer, one stream of writes: no interleaving hazard when two
  // threads would share a socket (they must not, but keep frames atomic
  // at this layer anyway for short messages).
  std::string Buf;
  Buf.reserve(4 + Payload.size());
  appendFrame(Buf, Payload);
  return writeExact(Fd, Buf.data(), Buf.size(), Err);
}

int lockin::service::readJson(int Fd, Json &Out, std::string &Err) {
  std::string Payload;
  int Rc = readFrame(Fd, Payload, Err);
  if (Rc <= 0)
    return Rc;
  if (!Json::parse(Payload, Out, Err))
    return -1;
  return 1;
}

bool lockin::service::writeJson(int Fd, const Json &Message,
                                std::string &Err) {
  return writeFrame(Fd, Message.str(), Err);
}

Json lockin::service::errorResponse(std::string_view Message) {
  Json R = Json::object();
  R.set("ok", Json::boolean(false));
  R.set("error", Json::string(std::string(Message)));
  return R;
}
