//===--- Protocol.h - Length-prefixed JSON wire protocol --------*- C++ -*-===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon's wire format: each message is a 4-byte big-endian length
/// followed by that many bytes of UTF-8 JSON. Requests are flat objects
/// with an "op" member:
///
///   {"op":"ping"}
///   {"op":"analyze","unit":"U","source":"...","k":3,"jobs":1,
///    "force":false,"run":false,"mode":"inferred",
///    "injectYields":false,"yieldSeed":1}
///   {"op":"check","unit":"U","source":"...","k":3,"jobs":1,
///    "force":false,"elideNeverParallel":false}
///                                  (analyze + concurrency checker; the
///                                   response adds "check" — the
///                                   lockin-check JSON report as an
///                                   object — and "checkCached", true
///                                   when the unchanged-module cache
///                                   served the report)
///   {"op":"invalidate"}            (whole cache)
///   {"op":"invalidate","unit":"U"} (one unit)
///   {"op":"stats"}
///   {"op":"metrics"}               (live registry: Prometheus text +
///                                   counter/histogram summaries)
///   {"op":"flightrecord"}          (last-N completed-request summaries;
///                                   "debug/flightrecord" is an alias)
///   {"op":"shutdown"}
///
/// Responses always carry "ok"; failures add "error". See DESIGN.md
/// "Service & incremental analysis" for the full response schemas.
///
/// Framing helpers below loop over partial reads/writes and retry EINTR;
/// oversized frames are rejected before any allocation so a malformed
/// peer cannot balloon the daemon. The blocking helpers serve the client
/// and the tests; the daemon's event loops use the incremental
/// FrameAssembler, which accepts bytes as they arrive (down to one at a
/// time) and never parks a thread waiting for the rest of a frame.
///
/// Overload responses add "retryAfterMs" — the daemon's estimate of when
/// capacity frees up — and deadline-shed responses add "shed":true next
/// to the usual "timedOut":true (see Server.h for the shedding policy).
///
//===----------------------------------------------------------------------===//

#ifndef LOCKIN_SERVICE_PROTOCOL_H
#define LOCKIN_SERVICE_PROTOCOL_H

#include "service/Json.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace lockin {
namespace service {

/// Hard cap on one frame (source files are the large payloads).
constexpr uint32_t MaxFrameBytes = 64u << 20;

/// Incremental length-prefix frame assembly for non-blocking sockets.
/// Feed whatever bytes recv() produced; complete frames pop out. An
/// oversized length prefix fails fast — before the payload buffer is
/// allocated — with the same message the blocking readFrame produces, so
/// both paths answer a hostile header identically.
class FrameAssembler {
public:
  /// Consumes \p N bytes. Every frame completed by this chunk is appended
  /// to \p Frames (possibly several — pipelined peers batch). Returns
  /// false and fills \p Err on an oversized prefix; the stream is
  /// unrecoverable afterwards and the connection must be dropped.
  bool feed(const char *Data, size_t N, std::vector<std::string> &Frames,
            std::string &Err);

  /// True while bytes of an unfinished frame (header or body) are held —
  /// the "mid-frame" predicate the read-deadline sweep uses.
  bool midFrame() const { return HeaderGot > 0 || InBody; }

  /// Bytes of the current unfinished frame buffered so far.
  size_t pendingBytes() const { return HeaderGot + Body.size(); }

private:
  unsigned char Header[4];
  size_t HeaderGot = 0;
  bool InBody = false;
  uint32_t Need = 0; ///< body bytes promised by the last complete header
  std::string Body;  ///< body bytes received so far (Body.size() <= Need)
};

/// Appends the 4-byte big-endian length prefix + \p Payload to \p Out —
/// the wire encoding writeFrame sends, reusable by buffered writers.
void appendFrame(std::string &Out, std::string_view Payload);

/// Reads one length-prefixed frame from \p Fd into \p Out. Returns 1 on
/// success, 0 on clean EOF at a frame boundary, -1 on error (Err filled;
/// EOF mid-frame is an error).
int readFrame(int Fd, std::string &Out, std::string &Err);

/// Writes \p Payload as one frame. False + Err on failure.
bool writeFrame(int Fd, std::string_view Payload, std::string &Err);

/// readFrame + JSON parse. Same return convention as readFrame.
int readJson(int Fd, Json &Out, std::string &Err);

/// Serialize + writeFrame.
bool writeJson(int Fd, const Json &Message, std::string &Err);

/// Canonical error response body.
Json errorResponse(std::string_view Message);

} // namespace service
} // namespace lockin

#endif // LOCKIN_SERVICE_PROTOCOL_H
