//===--- ServeTool.cpp - lockinfer --serve entry point --------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
//
// tool::runServe, declared in driver/Tool.h but defined here: the daemon
// pulls in the service library, which the driver library must not depend
// on (the dependency runs the other way).
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"
#include "service/Server.h"

#include <cstdio>

using namespace lockin;

int tool::runServe(const cli::CliOptions &Opts) {
  service::ServerOptions SO;
  SO.UnixSocketPath = Opts.Socket;
  SO.TcpPort = Opts.Port;
  SO.Workers = Opts.ServiceWorkers;
  SO.QueueDepth = Opts.QueueDepth;
  SO.RequestTimeoutMs = Opts.RequestTimeoutMs;
  SO.CacheCapacity = Opts.CacheCapacity;
  SO.DefaultK = Opts.K;
  SO.DefaultJobs = Opts.Jobs ? Opts.Jobs : 1;

  service::Server Server(SO);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return 1;
  }
  Server.installSignalHandlers();

  // Readiness line for scripts: printed (and flushed) only once the
  // listeners are bound, with the resolved ephemeral port.
  if (!Opts.Socket.empty())
    std::printf("lockin-serve: listening on %s\n", Opts.Socket.c_str());
  if (Opts.Port >= 0)
    std::printf("lockin-serve: listening on 127.0.0.1:%d\n", Server.port());
  std::fflush(stdout);

  Server.run();
  std::printf("lockin-serve: drained after %llu requests\n",
              static_cast<unsigned long long>(Server.requestsServed()));
  std::fflush(stdout);
  return 0;
}
