//===--- ServeTool.cpp - lockinfer --serve entry point --------------------------===//
//
// Part of the lockin project: lock inference for atomic sections.
//
//===----------------------------------------------------------------------===//
//
// tool::runServe, declared in driver/Tool.h but defined here: the daemon
// pulls in the service library, which the driver library must not depend
// on (the dependency runs the other way).
//
//===----------------------------------------------------------------------===//

#include "driver/Tool.h"
#include "obs/Log.h"
#include "service/Server.h"

#include <cstdio>
#include <fstream>

using namespace lockin;

int tool::runServe(const cli::CliOptions &Opts) {
  service::ServerOptions SO;
  SO.UnixSocketPath = Opts.Socket;
  SO.TcpPort = Opts.Port;
  SO.Workers = Opts.ServiceWorkers;
  SO.QueueDepth = Opts.QueueDepth;
  SO.RequestTimeoutMs = Opts.RequestTimeoutMs;
  SO.CacheCapacity = Opts.CacheCapacity;
  SO.CacheShards = Opts.CacheShards;
  SO.DefaultK = Opts.K;
  SO.DefaultJobs = Opts.Jobs ? Opts.Jobs : 1;
  SO.FlightCapacity = Opts.FlightCapacity;
  SO.Model = Opts.ServiceModel == "threads"
                 ? service::ServerOptions::ServiceModel::ThreadPerConnection
                 : service::ServerOptions::ServiceModel::EventLoop;
  SO.EventLoops = Opts.EventLoops;
  SO.MaxInflight = Opts.MaxInflight;
  SO.TenantQuota = Opts.TenantQuota;
  SO.ReadTimeoutMs = Opts.ReadTimeoutMs;

  service::Server Server(SO);
  std::string Err;
  if (!Server.start(Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    if constexpr (obs::kEnabled)
      obs::log()
          .event(obs::LogLevel::Error, "service.start_failed")
          .str("error", Err);
    return 1;
  }
  Server.installSignalHandlers();

  // Readiness line for scripts: printed (and flushed) only once the
  // listeners are bound, with the resolved ephemeral port.
  if (!Opts.Socket.empty())
    std::printf("lockin-serve: listening on %s\n", Opts.Socket.c_str());
  if (Opts.Port >= 0)
    std::printf("lockin-serve: listening on 127.0.0.1:%d\n", Server.port());
  std::fflush(stdout);
  if constexpr (obs::kEnabled)
    obs::log()
        .event(obs::LogLevel::Info, "service.listening")
        .str("socket", Opts.Socket)
        .num("port", Opts.Port >= 0 ? static_cast<uint64_t>(Server.port())
                                    : 0)
        .num("workers", SO.Workers)
        .num("queue_depth", SO.QueueDepth)
        .num("event_loops",
             SO.Model == service::ServerOptions::ServiceModel::EventLoop
                 ? SO.EventLoops
                 : 0)
        .num("max_inflight", SO.MaxInflight)
        .num("tenant_quota", SO.TenantQuota);

  Server.run();

  // Drain-time telemetry: dump the flight recorder through the log and
  // (optionally) to a JSON file, then write the --metrics-out /
  // --trace-out snapshots that one-shot runs write at process exit — so
  // a SIGTERM'd daemon is not blind (the snapshots used to be lost).
  int Rc = 0;
  if constexpr (obs::kEnabled) {
    Server.flightRecorder().dump(obs::log(), "drain", /*MinGapNs=*/0);
    obs::log()
        .event(obs::LogLevel::Info, "service.drained")
        .num("requests_served", Server.requestsServed());
  }
  if (!Opts.FlightRecordOut.empty()) {
    std::ofstream Out(Opts.FlightRecordOut);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   Opts.FlightRecordOut.c_str());
      Rc = 1;
    } else {
      Server.flightRecorder().writeJson(Out);
    }
  }
  if (int DrainRc = drainObsOutputs(Opts))
    Rc = DrainRc;

  std::printf("lockin-serve: drained after %llu requests\n",
              static_cast<unsigned long long>(Server.requestsServed()));
  std::fflush(stdout);
  return Rc;
}
